#!/usr/bin/env bash
# Service smoke test: boots a ringsim_serve daemon, routes fig3 sweeps
# through it from four concurrent bench clients (faults off and on),
# and checks the acceptance properties end to end:
#
#   * every routed client's bytes equal a direct (library) run,
#   * a warm resubmission is answered from the result cache,
#   * nothing was shed or timed out along the way.
#
# The final /statsz snapshot is written to $STATSZ_OUT (default
# SERVICE_statsz.json) so CI can upload it as an artifact.
#
# usage: scripts/service_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
REFS="${SMOKE_REFS:-12000}"
STATSZ_OUT="${STATSZ_OUT:-SERVICE_statsz.json}"

SERVE="$BUILD_DIR/src/service/ringsim_serve"
SUBMIT="$BUILD_DIR/src/service/ringsim_submit"
FIG3="$BUILD_DIR/bench/fig3_snoop_vs_dir"
for bin in "$SERVE" "$SUBMIT" "$FIG3"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

WORK="$(mktemp -d)"
SOCK="$WORK/ringsim.sock"
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ]; then
        "$SUBMIT" --endpoint "$SOCK" shutdown >/dev/null 2>&1 || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVE" --endpoint "$SOCK" --workers 4 --queue-depth 16 \
    --cache-dir "$WORK/cache" &
SERVE_PID=$!

ready=0
for _ in $(seq 1 100); do
    if "$SUBMIT" --endpoint "$SOCK" ping >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { echo "daemon never became ready" >&2; exit 1; }

echo "== direct fig3 sweeps (faults off / on) =="
"$FIG3" --fast --refs "$REFS" > "$WORK/direct.txt"
"$FIG3" --fast --refs "$REFS" --fault-rate 0.001 --fault-seed 7 \
    > "$WORK/direct_faults.txt"

echo "== four concurrent routed clients =="
pids=()
for i in 1 2 3 4; do
    "$FIG3" --fast --refs "$REFS" --service "$SOCK" \
        > "$WORK/routed_$i.txt" &
    pids+=("$!")
done
for p in "${pids[@]}"; do
    wait "$p"
done
for i in 1 2 3 4; do
    cmp "$WORK/direct.txt" "$WORK/routed_$i.txt"
done
echo "ok: 4 concurrent clients byte-identical to direct run"

echo "== routed faulted sweep matches direct (cold, timed) =="
t0=$(date +%s%N)
"$FIG3" --fast --refs "$REFS" --fault-rate 0.001 --fault-seed 7 \
    --service "$SOCK" > "$WORK/routed_faults.txt"
t1=$(date +%s%N)
cmp "$WORK/direct_faults.txt" "$WORK/routed_faults.txt"
COLD_MS=$(( (t1 - t0) / 1000000 ))
echo "ok: faulted sweep byte-identical to direct run (${COLD_MS} ms)"

echo "== warm resubmission answers from cache (timed) =="
t0=$(date +%s%N)
"$FIG3" --fast --refs "$REFS" --fault-rate 0.001 --fault-seed 7 \
    --service "$SOCK" > "$WORK/routed_faults_warm.txt"
t1=$(date +%s%N)
cmp "$WORK/direct_faults.txt" "$WORK/routed_faults_warm.txt"
WARM_MS=$(( (t1 - t0) / 1000000 ))
[ "$WARM_MS" -lt 1 ] && WARM_MS=1
echo "warm resubmission: ${WARM_MS} ms (cold: ${COLD_MS} ms)"
if [ "$COLD_MS" -lt $(( WARM_MS * 50 )) ]; then
    echo "FAIL: warm resubmission not >=50x faster than cold" >&2
    exit 1
fi
echo "ok: warm resubmission $(( COLD_MS / WARM_MS ))x faster"

"$FIG3" --fast --refs "$REFS" --service "$SOCK" \
    > "$WORK/routed_warm.txt"
cmp "$WORK/direct.txt" "$WORK/routed_warm.txt"

"$SUBMIT" --endpoint "$SOCK" statsz | tee "$STATSZ_OUT"
python3 - "$STATSZ_OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    sz = json.load(f)
assert sz["ok"] is True, sz
assert sz["cache_answers"] > 0, f"no warm cache hits: {sz}"
hits = sz["cache"]["mem_hits"] + sz["cache"]["disk_hits"]
assert hits > 0, f"cache tiers report no hits: {sz}"
assert sz["shed"] == 0, f"smoke load should never shed: {sz}"
assert sz["timed_out"] == 0, f"smoke jobs timed out: {sz}"
assert sz["failed"] == 0, f"smoke jobs failed: {sz}"
print(f"ok: {sz['cache_answers']} cache answer(s), "
      f"{sz['completed']} completed, 0 shed/failed/timed out")
EOF

echo "== a new code-version/operator salt invalidates the cache =="
"$SUBMIT" --endpoint "$SOCK" shutdown >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
RINGSIM_CACHE_SALT=smoke-salt-v2 "$SERVE" --endpoint "$SOCK" \
    --workers 4 --queue-depth 16 --cache-dir "$WORK/cache" &
SERVE_PID=$!
ready=0
for _ in $(seq 1 100); do
    if "$SUBMIT" --endpoint "$SOCK" ping >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { echo "resalted daemon never ready" >&2; exit 1; }

"$FIG3" --fast --refs "$REFS" --service "$SOCK" \
    > "$WORK/routed_resalted.txt"
cmp "$WORK/direct.txt" "$WORK/routed_resalted.txt"
"$SUBMIT" --endpoint "$SOCK" statsz > "$WORK/statsz_resalted.json"
python3 - "$WORK/statsz_resalted.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    sz = json.load(f)
# The old entries are unreachable under the new salt: the sweep must
# have recomputed (a miss), never answered from cache.
assert sz["cache_answers"] == 0, f"resalted daemon hit stale cache: {sz}"
assert sz["cache"]["misses"] > 0, sz
assert sz["cache"]["mem_hits"] + sz["cache"]["disk_hits"] == 0, sz
print("ok: new salt misses every old entry (and bytes still match)")
EOF

echo "service smoke: all checks passed"
