#!/usr/bin/env python3
"""Custom lint rules for ringsim, run by scripts/lint.sh.

Rules (suppress a finding with a trailing `// lint: allow(<rule>)`):

  raw-new
      No raw `new` outside the event kernel's pooled allocator
      (src/sim/kernel.hpp). Everything else uses containers,
      std::make_unique, or the kernel pools, so leaks cannot hide.

  unordered-iteration
      No iteration over std::unordered_{map,set,multimap,multiset}.
      Hash iteration order is implementation-defined; iterating one in
      a result-affecting path makes runs nondeterministic across
      libstdc++ versions. Keyed lookup is fine; anything that must be
      walked belongs in an ordered container (stats::Registry keeps an
      insertion-ordered vector for exactly this reason).

  nodiscard
      Header declarations of result-returning validators and fallible
      operations (check*/try[A-Z]*) must be [[nodiscard]]: silently
      dropping a config-error list or a try-result is always a bug.

  raw-getenv
      No direct std::getenv outside src/util/. Environment lookups go
      through util::envString / util::envU64 so defaults, validation,
      and fallback-on-malformed behavior stay in one place and config
      surfaces (service, runner watchdog) remain enumerable.

  hot-path-deque
      No std::deque in src/ring/ or src/core/. Those directories hold
      the per-cycle ring tick and the protocol engines; deque's
      segmented storage costs an indirection per touch and scatters
      queue heads across the heap, which is exactly what the flat
      insert-queue rewrite removed. Use core::FlatQueue
      (src/core/flat_queue.hpp) — or justify the exception with a
      trailing allow.

  naked-thread
      No std::thread construction (and no .detach()) outside the two
      sanctioned thread owners: the runner's worker pool
      (src/runner/experiment_runner.cpp) and the service's
      ConnectionRegistry (src/service/connection_registry.*). Ad-hoc
      threads are how join-leaks and shutdown races get in; new
      concurrency goes through one of those wrappers, which carry the
      thread-safety annotations and the tests.
      (std::thread::hardware_concurrency() is fine anywhere.)

  unguarded-mutex
      Every core::Mutex / std::mutex member must have at least one
      sibling member annotated GUARDED_BY(that mutex) in the same
      file. A mutex guarding nothing the analyzer can see is either
      dead or, worse, guarding data by convention only — exactly the
      bug class -Wthread-safety exists to kill. Use the macros from
      src/core/thread_annotations.hpp.

  manual-mutex-lock
      No manual .lock()/.unlock() calls outside
      src/core/thread_annotations.hpp. Unlock/relock juggling defeats
      both RAII and the static analysis; hold scopes are expressed
      with core::MutexLock / core::UniqueLock, and code needing a
      window without the lock is restructured into two locked
      sections.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["src"]
ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")

# The event kernel's free-list allocator is the one sanctioned use of
# raw allocation (placement new into pooled storage).
RAW_NEW_ALLOWED_FILES = {"src/sim/kernel.hpp"}

# The two sanctioned thread owners; everything else delegates to them.
THREAD_ALLOWED_FILES = {
    "src/runner/experiment_runner.cpp",
    "src/service/connection_registry.hpp",
    "src/service/connection_registry.cpp",
}
# Abandoning a doomed worker is the runner watchdog's one detach site.
DETACH_ALLOWED_FILES = {"src/runner/experiment_runner.cpp"}

# The annotated wrappers themselves must touch the raw mutex.
MUTEX_WRAPPER_FILES = {"src/core/thread_annotations.hpp"}

findings = []


def flag(rule, path, lineno, message):
    findings.append(f"{path}:{lineno}: [{rule}] {message}")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so line numbers keep working."""
    out = []
    i, n = 0, len(text)
    state = None  # None, '//', '/*', '"', "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "//"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "/*"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                if state == "//":
                    state = None
                out.append("\n")
            elif state == "/*" and c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            elif state in "\"'":
                if c == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if c == state:
                    state = None
                    out.append(c)
                else:
                    out.append(" ")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allowed(raw_lines, lineno, rule):
    line = raw_lines[lineno - 1]
    m = ALLOW_RE.search(line)
    return bool(m and m.group(1) == rule)


NEW_RE = re.compile(r"\bnew\b(?!\s*\()|\bnew\s*\(")
DEQUE_RE = re.compile(r"\bstd\s*::\s*deque\s*<")
GETENV_RE = re.compile(r"\b(?:std\s*::\s*)?getenv\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*&?\s*"
    r"(\w+)\s*[;{=(,)]"
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*:\s*&?(\w+(?:\.\w+|->\w+)*)\s*\)")
ITER_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")

# std::thread but not std::thread::hardware_concurrency etc.
THREAD_RE = re.compile(r"\bstd\s*::\s*thread\b(?!\s*::)")
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:core\s*::\s*Mutex|std\s*::\s*mutex)\s+(\w+)\s*;"
)
MANUAL_LOCK_RE = re.compile(r"\.\s*(?:lock|unlock)\s*\(\s*\)")

DECL_NAME = r"(?:check\w*|try[A-Z]\w*)"
NODISCARD_DECL_RE = re.compile(
    r"(?:virtual\s+)?"
    r"(bool|std::vector<std::string>|[A-Za-z_][\w:]*Result|"
    r"[A-Za-z_][\w:]*Report)\s+\n?\s*"
    rf"({DECL_NAME})\s*\("
)


def check_file(path):
    rel = path.relative_to(ROOT).as_posix()
    raw = path.read_text()
    raw_lines = raw.splitlines()
    clean = strip_comments_and_strings(raw)
    clean_lines = clean.splitlines()

    # raw-new
    if rel not in RAW_NEW_ALLOWED_FILES:
        for lineno, line in enumerate(clean_lines, 1):
            if NEW_RE.search(line) and not allowed(raw_lines, lineno,
                                                   "raw-new"):
                flag("raw-new", rel, lineno,
                     "raw `new`: use containers, std::make_unique, or "
                     "the kernel pools")

    # raw-getenv (env access is centralized in src/util/)
    if not rel.startswith("src/util/"):
        for lineno, line in enumerate(clean_lines, 1):
            if GETENV_RE.search(line) and not allowed(
                    raw_lines, lineno, "raw-getenv"):
                flag("raw-getenv", rel, lineno,
                     "direct getenv: use util::envString / "
                     "util::envU64 (src/util/env.hpp)")

    # hot-path-deque (ring tick + protocol engine directories)
    if rel.startswith("src/ring/") or rel.startswith("src/core/"):
        for lineno, line in enumerate(clean_lines, 1):
            if DEQUE_RE.search(line) and not allowed(
                    raw_lines, lineno, "hot-path-deque"):
                flag("hot-path-deque", rel, lineno,
                     "std::deque on a hot path: use core::FlatQueue "
                     "(src/core/flat_queue.hpp)")

    # unordered-iteration
    unordered_names = set(UNORDERED_DECL_RE.findall(clean))
    if unordered_names:
        for lineno, line in enumerate(clean_lines, 1):
            names = set()
            for m in RANGE_FOR_RE.finditer(line):
                names.add(m.group(1).split(".")[-1].split("->")[-1])
            for m in ITER_CALL_RE.finditer(line):
                names.add(m.group(1))
            hits = names & unordered_names
            if hits and not allowed(raw_lines, lineno,
                                    "unordered-iteration"):
                flag("unordered-iteration", rel, lineno,
                     f"iterating unordered container "
                     f"'{sorted(hits)[0]}': order is nondeterministic; "
                     f"use an ordered structure or collect-and-sort")

    # naked-thread (thread ownership is centralized)
    if rel not in THREAD_ALLOWED_FILES:
        for lineno, line in enumerate(clean_lines, 1):
            if THREAD_RE.search(line) and not allowed(
                    raw_lines, lineno, "naked-thread"):
                flag("naked-thread", rel, lineno,
                     "naked std::thread: use ExperimentRunner's pool "
                     "or service::ConnectionRegistry")
    if rel not in DETACH_ALLOWED_FILES:
        for lineno, line in enumerate(clean_lines, 1):
            if DETACH_RE.search(line) and not allowed(
                    raw_lines, lineno, "naked-thread"):
                flag("naked-thread", rel, lineno,
                     ".detach(): detached threads outlive their "
                     "owner; join through a registry instead")

    # unguarded-mutex (a mutex must guard annotated data)
    if rel not in MUTEX_WRAPPER_FILES:
        guards = set(re.findall(r"GUARDED_BY\(\s*(\w+)\s*\)", clean))
        for m in MUTEX_MEMBER_RE.finditer(clean):
            name = m.group(1)
            lineno = clean.count("\n", 0, m.start()) + 1
            if name in guards:
                continue
            if allowed(raw_lines, lineno, "unguarded-mutex"):
                continue
            flag("unguarded-mutex", rel, lineno,
                 f"mutex member '{name}' has no sibling "
                 f"GUARDED_BY({name}) member in this file "
                 f"(src/core/thread_annotations.hpp)")

    # manual-mutex-lock (hold scopes are RAII + annotations only)
    if rel not in MUTEX_WRAPPER_FILES:
        for lineno, line in enumerate(clean_lines, 1):
            if MANUAL_LOCK_RE.search(line) and not allowed(
                    raw_lines, lineno, "manual-mutex-lock"):
                flag("manual-mutex-lock", rel, lineno,
                     "manual .lock()/.unlock(): use core::MutexLock "
                     "or core::UniqueLock scopes")

    # nodiscard (headers only; declarations carry the contract)
    if path.suffix == ".hpp":
        for m in NODISCARD_DECL_RE.finditer(clean):
            lineno = clean.count("\n", 0, m.start()) + 1
            window_start = max(0, m.start() - 120)
            window = clean[window_start:m.start()]
            if "[[nodiscard]]" in window:
                continue
            if allowed(raw_lines, lineno, "nodiscard"):
                continue
            flag("nodiscard", rel, lineno,
                 f"'{m.group(2)}' returns {m.group(1)} but is not "
                 f"[[nodiscard]]")


def main():
    targets = sys.argv[1:]
    if targets:
        files = [Path(t).resolve() for t in targets]
        files = [f for f in files if f.suffix in (".hpp", ".cpp")]
    else:
        files = []
        for d in SCAN_DIRS:
            files.extend(sorted((ROOT / d).rglob("*.hpp")))
            files.extend(sorted((ROOT / d).rglob("*.cpp")))
    for f in files:
        if f.exists():
            check_file(f)
    for msg in findings:
        print(msg)
    if findings:
        print(f"{len(findings)} lint finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
