#!/usr/bin/env bash
# Chaos smoke test: boots ringsim_serve with deterministic fault
# injection (--chaos) and drives it the way an unlucky production day
# would, checking the robustness acceptance properties end to end:
#
#   * four concurrent bench clients, each retrying through injected
#     slow writes, garbled lines and mid-response disconnects, all
#     receive non-degraded answers byte-identical to a direct run;
#   * the daemon is SIGKILL'd mid-life and restarted on the same
#     cache directory: the startup scan quarantines every torn or
#     bit-flipped entry and the service recomputes them, never
#     serving corrupt bytes;
#   * /statsz accounts for the whole ordeal (injected faults,
#     quarantined entries) and nothing crashed or hung.
#
# The final /statsz snapshot is written to $STATSZ_OUT (default
# CHAOS_statsz.json) so CI can upload it as an artifact.
#
# usage: scripts/chaos_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
REFS="${SMOKE_REFS:-12000}"
CHAOS_SEED="${CHAOS_SEED:-7}"
STATSZ_OUT="${STATSZ_OUT:-CHAOS_statsz.json}"

SERVE="$BUILD_DIR/src/service/ringsim_serve"
SUBMIT="$BUILD_DIR/src/service/ringsim_submit"
FIG3="$BUILD_DIR/bench/fig3_snoop_vs_dir"
for bin in "$SERVE" "$SUBMIT" "$FIG3"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

WORK="$(mktemp -d)"
SOCK="$WORK/ringsim.sock"
CACHE="$WORK/cache"
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ]; then
        "$SUBMIT" --endpoint "$SOCK" shutdown >/dev/null 2>&1 || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$SERVE" --endpoint "$SOCK" --workers 4 --queue-depth 16 \
        --cache-dir "$CACHE" --chaos "$CHAOS_SEED" \
        2> "$WORK/serve_$1.log" &
    SERVE_PID=$!
    local ready=0
    for _ in $(seq 1 100); do
        if "$SUBMIT" --endpoint "$SOCK" ping >/dev/null 2>&1; then
            ready=1
            break
        fi
        sleep 0.1
    done
    [ "$ready" = 1 ] || {
        echo "chaotic daemon never became ready" >&2
        cat "$WORK/serve_$1.log" >&2
        exit 1
    }
}

echo "== direct fig3 sweep (the reference bytes) =="
"$FIG3" --fast --refs "$REFS" > "$WORK/direct.txt"

echo "== chaotic daemon, four concurrent clients =="
start_daemon boot1
pids=()
for i in 1 2 3 4; do
    "$FIG3" --fast --refs "$REFS" --service "$SOCK" \
        > "$WORK/routed_$i.txt" &
    pids+=("$!")
done
for p in "${pids[@]}"; do
    wait "$p"
done
for i in 1 2 3 4; do
    cmp "$WORK/direct.txt" "$WORK/routed_$i.txt"
done
echo "ok: 4 clients through injected faults, bytes identical"

echo "== resilient CLI rides out garbles and disconnects =="
# Enough response sites that the preset rates (5-10% each) fire many
# times under any seed; every request must still succeed because the
# client reconnects and retries.
for _ in $(seq 1 100); do
    "$SUBMIT" --endpoint "$SOCK" ping >/dev/null
done
echo "ok: 100 pings against the chaotic transport"

"$SUBMIT" --endpoint "$SOCK" statsz > "$WORK/statsz_mid.json"

echo "== SIGKILL mid-life, restart on the same cache dir =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -f "$SOCK"

# Tear one published entry the way the interrupted daemon would have:
# whatever chaos already damaged, this guarantees at least one
# corrupt file greets the restart scan.
VICTIM="$(ls "$CACHE"/*.json | head -1)"
truncate -s 10 "$VICTIM"

start_daemon boot2

# The restarted daemon scanned the (chaos-damaged) store. A re-routed
# sweep must still produce the reference bytes: a clean entry answers
# from disk, a quarantined one recomputes — corrupt bytes are never
# served either way.
"$FIG3" --fast --refs "$REFS" --service "$SOCK" \
    > "$WORK/routed_after_restart.txt"
cmp "$WORK/direct.txt" "$WORK/routed_after_restart.txt"
echo "ok: post-restart answer byte-identical (recovered cache)"

ls "$CACHE" | grep -c '\.quarantined$' > "$WORK/quarantined_count" \
    || true

"$SUBMIT" --endpoint "$SOCK" statsz | tee "$STATSZ_OUT"
python3 - "$STATSZ_OUT" "$WORK/statsz_mid.json" \
    "$WORK/quarantined_count" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    after = json.load(f)
with open(sys.argv[2]) as f:
    mid = json.load(f)
with open(sys.argv[3]) as f:
    aside = int(f.read().strip() or 0)

assert after["ok"] is True, after

# The injector really fired: across 100+ response sites the preset
# rates must trip transport faults, and the retried requests all
# still succeeded (the pings above would have failed otherwise).
chaos = mid.get("chaos") or {}
fired = sum(chaos.get(k, 0) for k in
            ("slow_writes", "disconnects", "garbles",
             "torn_writes", "bit_flips"))
assert fired > 0, f"chaos injector never fired: {mid}"

# Recovery: the restart scan verified the store and quarantined the
# entry torn at "crash" time (plus anything chaos damage left
# behind); nothing corrupt was ever served.
assert after["cache"]["scanned"] > 0, f"startup scan saw nothing: {after}"
quarantined = after["cache"]["quarantined"]
assert quarantined > 0, f"torn entry not quarantined at restart: {after}"
assert aside > 0, "no .quarantined file left for post-mortem"

# No crashes or hangs: every job either completed or was answered
# from cache; nothing failed or timed out in either life.
for sz in (mid, after):
    assert sz["failed"] == 0, f"jobs failed under chaos: {sz}"
    assert sz["timed_out"] == 0, f"jobs timed out under chaos: {sz}"

print(f"ok: {fired} injected fault(s), "
      f"{quarantined} quarantined at restart ({aside} on disk), "
      f"0 failed/timed out")
EOF

echo "chaos smoke: all checks passed"
