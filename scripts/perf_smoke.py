#!/usr/bin/env python3
"""Compare a freshly generated BENCH_ring.json against the committed one.

The guarded set is the saturated schedule-driven ring-tick configs
(BM_RingTick at occ:50/occ:100 with ref:0) — the rows the
data-oriented tick rewrite is accountable for. A fresh rate more than
THRESHOLD (default 20%) below the committed rate prints a GitHub
`::warning` annotation per offending config; with --strict the script
also exits 1. Everything else in the file is reported informationally.

Warn-only is the CI default on purpose: shared runners are noisy
enough that a hard gate on absolute throughput would flake. --strict
is for local runs on a quiet machine.

Usage:
  perf_smoke.py [--fresh BENCH_ring.json] [--committed PATH]
                [--threshold 0.20] [--strict]

Without --committed, the committed copy is read from `git show
HEAD:BENCH_ring.json`.
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

SATURATED_RE = re.compile(
    r"^BM_RingTick/nodes:\d+/occ:(?:50|100)/ref:0$")

ROOT = Path(__file__).resolve().parent.parent


def load_rates(text, label):
    """name -> rate map from a BENCH_ring.json body; the nested
    saturated_multiplier block is metadata, not a rate."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as e:
        print(f"error: {label} is not valid JSON: {e}", file=sys.stderr)
        return None
    return {k: v for k, v in data.items() if isinstance(v, (int, float))}


def committed_text(path):
    if path is not None:
        return Path(path).read_text()
    proc = subprocess.run(
        ["git", "show", "HEAD:BENCH_ring.json"],
        cwd=ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    return proc.stdout


def main():
    ap = argparse.ArgumentParser(
        description="ring-tick perf smoke: fresh vs committed")
    ap.add_argument("--fresh", default="BENCH_ring.json",
                    help="freshly generated rates (default: %(default)s)")
    ap.add_argument("--committed", default=None,
                    help="committed rates; default reads "
                         "HEAD:BENCH_ring.json via git")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional regression that triggers a "
                         "warning (default: %(default)s)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on any saturated regression")
    args = ap.parse_args()

    fresh_path = Path(args.fresh)
    if not fresh_path.exists():
        print(f"error: {fresh_path} not found (run ring_bench_json "
              f"first)", file=sys.stderr)
        return 2
    fresh = load_rates(fresh_path.read_text(), str(fresh_path))
    if fresh is None:
        return 2

    base_text = committed_text(args.committed)
    if base_text is None:
        print("no committed BENCH_ring.json to compare against; "
              "skipping (first trajectory point?)")
        return 0
    committed = load_rates(base_text, "committed BENCH_ring.json")
    if committed is None:
        return 2

    regressions = []
    print(f"{'benchmark':<44} {'committed':>12} {'fresh':>12} "
          f"{'ratio':>7}")
    for name in sorted(fresh):
        if name not in committed or committed[name] <= 0:
            continue
        ratio = fresh[name] / committed[name]
        guarded = bool(SATURATED_RE.match(name))
        marker = ""
        if guarded and ratio < 1.0 - args.threshold:
            regressions.append((name, ratio))
            marker = "  <-- REGRESSION"
        elif guarded:
            marker = "  (guarded)"
        print(f"{name:<44} {committed[name]:>12.4g} "
              f"{fresh[name]:>12.4g} {ratio:>6.2f}x{marker}")

    if not regressions:
        print("perf smoke: no saturated regression beyond "
              f"{args.threshold:.0%}")
        return 0

    for name, ratio in regressions:
        print(f"::warning ::saturated ring-tick config {name} at "
              f"{ratio:.2f}x of committed rate "
              f"(threshold {1 - args.threshold:.2f}x)")
    print(f"perf smoke: {len(regressions)} saturated regression(s) "
          f"beyond {args.threshold:.0%}", file=sys.stderr)
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
