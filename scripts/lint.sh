#!/usr/bin/env bash
# ringsim lint driver: custom rules (always) + clang-tidy (when
# available — the dev container may not ship it; CI installs it).
#
# usage: scripts/lint.sh [file.cpp ...]
#   With no arguments, lints all of src/. With arguments (e.g. the
#   files changed on a branch), restricts both layers to those files.
#
# environment:
#   LINT_TIDY_WERROR=1   promote clang-tidy warnings to errors (CI)
#   LINT_BUILD_DIR       build dir with compile_commands.json
#                        (default: build)
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${LINT_BUILD_DIR:-build}"
status=0

# ---- custom rules (raw-new, unordered-iteration, nodiscard,
# ---- raw-getenv, hot-path-deque) ----
if ! python3 scripts/lint_rules.py "$@"; then
    status=1
fi

# ---- clang-tidy ----
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not installed; skipped (custom rules" \
         "still enforced)"
    exit "$status"
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint.sh: generating $BUILD_DIR/compile_commands.json"
    cmake -B "$BUILD_DIR" -S . >/dev/null || exit 1
fi

tidy_args=(-p "$BUILD_DIR" --quiet)
if [ "${LINT_TIDY_WERROR:-0}" = "1" ]; then
    tidy_args+=(--warnings-as-errors='*')
fi

if [ "$#" -gt 0 ]; then
    files=()
    for f in "$@"; do
        case "$f" in
          *.cpp) [ -f "$f" ] && files+=("$f") ;;
        esac
    done
else
    # Sources in the compilation database (headers ride along via
    # HeaderFilterRegex).
    mapfile -t files < <(git ls-files 'src/*.cpp' 'src/**/*.cpp')
fi

if [ "${#files[@]}" -eq 0 ]; then
    exit "$status"
fi

if ! clang-tidy "${tidy_args[@]}" "${files[@]}"; then
    status=1
fi
exit "$status"
