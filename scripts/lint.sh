#!/usr/bin/env bash
# ringsim lint driver: custom rules (always) + clang-tidy.
#
# usage: scripts/lint.sh [file.cpp ...]
#   With no arguments, lints all of src/. With arguments (e.g. the
#   files changed on a branch), restricts both layers to those files.
#
# environment:
#   LINT_TIDY_WERROR=1   promote clang-tidy warnings to errors (CI)
#   LINT_BUILD_DIR       build dir with compile_commands.json
#                        (default: build)
#   LINT_SKIP_TIDY=1     run the custom rules only (for dev
#                        containers without clang-tidy; CI never
#                        sets it)
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${LINT_BUILD_DIR:-build}"
status=0

# ---- custom rules (raw-new, unordered-iteration, nodiscard,
# ---- raw-getenv, hot-path-deque, naked-thread, unguarded-mutex,
# ---- manual-mutex-lock) ----
if ! python3 scripts/lint_rules.py "$@"; then
    status=1
fi

# ---- clang-tidy ----
if [ "${LINT_SKIP_TIDY:-0}" = "1" ]; then
    echo "lint.sh: LINT_SKIP_TIDY=1; clang-tidy layer skipped"
    exit "$status"
fi

# Fail fast when the tidy layer cannot run: silently passing a lint
# gate that never executed is how findings rot. Local runs without
# clang-tidy opt out explicitly with LINT_SKIP_TIDY=1.
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: ERROR: clang-tidy not found on PATH." >&2
    echo "lint.sh: install it, or set LINT_SKIP_TIDY=1 to run the" \
         "custom rules only." >&2
    exit 1
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint.sh: generating $BUILD_DIR/compile_commands.json"
    if ! cmake -B "$BUILD_DIR" -S . >/dev/null; then
        echo "lint.sh: ERROR: cmake failed; no" \
             "compile_commands.json for clang-tidy" \
             "(set LINT_BUILD_DIR to a configured build dir)." >&2
        exit 1
    fi
fi

tidy_args=(-p "$BUILD_DIR" --quiet)
if [ "${LINT_TIDY_WERROR:-0}" = "1" ]; then
    tidy_args+=(--warnings-as-errors='*')
fi

if [ "$#" -gt 0 ]; then
    files=()
    for f in "$@"; do
        case "$f" in
          *.cpp) [ -f "$f" ] && files+=("$f") ;;
        esac
    done
else
    # Sources in the compilation database (headers ride along via
    # HeaderFilterRegex).
    mapfile -t files < <(git ls-files 'src/*.cpp' 'src/**/*.cpp')
fi

if [ "${#files[@]}" -eq 0 ]; then
    exit "$status"
fi

if ! clang-tidy "${tidy_args[@]}" "${files[@]}"; then
    status=1
fi
exit "$status"
