#!/usr/bin/env bash
# Fleet smoke test: boots three ringsim_serve workers behind a
# ringsim_fleetd coordinator and checks the fleet acceptance
# properties end to end:
#
#   * eight concurrent clients routed through the fleet all get bytes
#     identical to a direct (library) run — the sweep was split into
#     per-block subjobs, fanned out, reassembled, and the duplicate
#     submissions coalesced into one execution,
#   * a worker SIGKILL'd mid-sweep is detected by its broken socket
#     and its parts requeue onto the failover shard, byte-identically,
#   * a multi-endpoint ringsim_submit routes to its job's shard and
#     fails over deterministically,
#   * a daemon whose peer holds a warm cache answers a cold submit
#     from that peer instead of recomputing.
#
# The final aggregated /statsz snapshot is written to $STATSZ_OUT
# (default FLEET_statsz.json) so CI can upload it as an artifact.
#
# usage: scripts/fleet_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
REFS="${SMOKE_REFS:-12000}"
KILL_REFS="${SMOKE_KILL_REFS:-24000}"
STATSZ_OUT="${STATSZ_OUT:-FLEET_statsz.json}"

FLEETD="$BUILD_DIR/src/fleet/ringsim_fleetd"
SERVE="$BUILD_DIR/src/service/ringsim_serve"
SUBMIT="$BUILD_DIR/src/service/ringsim_submit"
FIG3="$BUILD_DIR/bench/fig3_snoop_vs_dir"
for bin in "$FLEETD" "$SERVE" "$SUBMIT" "$FIG3"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

WORK="$(mktemp -d)"
FLEET_SOCK="$WORK/fleet.sock"
WORKER_PIDS=()
FLEET_PID=""
PEER_PIDS=()

cleanup() {
    if [ -n "$FLEET_PID" ]; then
        "$SUBMIT" --endpoint "$FLEET_SOCK" shutdown \
            >/dev/null 2>&1 || true
        wait "$FLEET_PID" 2>/dev/null || true
    fi
    for i in 0 1 2; do
        "$SUBMIT" --endpoint "$WORK/worker$i.sock" shutdown \
            >/dev/null 2>&1 || true
    done
    for p in "${WORKER_PIDS[@]}" "${PEER_PIDS[@]}"; do
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() { # endpoint
    for _ in $(seq 1 100); do
        if "$SUBMIT" --endpoint "$1" ping >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon at $1 never became ready" >&2
    return 1
}

echo "== boot three workers and the coordinator =="
for i in 0 1 2; do
    "$SERVE" --endpoint "$WORK/worker$i.sock" --workers 2 \
        --queue-depth 64 --cache-dir "$WORK/cache$i" &
    WORKER_PIDS+=("$!")
done
for i in 0 1 2; do
    wait_ready "$WORK/worker$i.sock"
done
"$FLEETD" --endpoint "$FLEET_SOCK" \
    --workers "$WORK/worker0.sock,$WORK/worker1.sock,$WORK/worker2.sock" &
FLEET_PID=$!
wait_ready "$FLEET_SOCK"

echo "== direct fig3 sweep (the byte-identity reference) =="
"$FIG3" --fast --refs "$REFS" > "$WORK/direct.txt"

echo "== eight concurrent clients through the fleet =="
pids=()
for i in 1 2 3 4 5 6 7 8; do
    "$FIG3" --fast --refs "$REFS" --service "$FLEET_SOCK" \
        > "$WORK/routed_$i.txt" &
    pids+=("$!")
done
for p in "${pids[@]}"; do
    wait "$p"
done
for i in 1 2 3 4 5 6 7 8; do
    cmp "$WORK/direct.txt" "$WORK/routed_$i.txt"
done
echo "ok: 8 concurrent fleet clients byte-identical to direct run"

echo "== warm resubmission (every part cached on its shard) =="
t0=$(date +%s%N)
"$FIG3" --fast --refs "$REFS" --service "$FLEET_SOCK" \
    > "$WORK/routed_warm.txt"
t1=$(date +%s%N)
cmp "$WORK/direct.txt" "$WORK/routed_warm.txt"
echo "ok: warm fleet sweep in $(( (t1 - t0) / 1000000 )) ms"

echo "== multi-endpoint client routes to its job's shard =="
JOB='{"type":"model","benchmark":"mp3d","procs":8,"refs":2000,"fast":true}'
ENDPOINTS="$WORK/worker0.sock,$WORK/worker1.sock,$WORK/worker2.sock"
"$SUBMIT" --service "$ENDPOINTS" submit --wait "$JOB" \
    > "$WORK/route1.json"
"$SUBMIT" --service "$ENDPOINTS" submit --wait "$JOB" \
    > "$WORK/route2.json"
python3 - "$WORK/route1.json" "$WORK/route2.json" <<'EOF'
import json
import sys

first = json.load(open(sys.argv[1]))
second = json.load(open(sys.argv[2]))
assert first["ok"] and second["ok"], (first, second)
# Deterministic sharding: the repeat lands on the same worker and is
# answered from that worker's (now warm) cache.
assert first["endpoint"] == second["endpoint"], (first, second)
assert second["cached"] is True, second
assert first["result"] == second["result"]
print(f"ok: both submits routed to {first['endpoint']}, repeat cached")
EOF

echo "== SIGKILL a worker mid-sweep: parts requeue =="
"$FIG3" --fast --refs "$KILL_REFS" > "$WORK/direct_kill.txt"
"$FIG3" --fast --refs "$KILL_REFS" --service "$FLEET_SOCK" \
    > "$WORK/routed_kill.txt" &
CLIENT_PID=$!
sleep 0.2
kill -9 "${WORKER_PIDS[1]}"
wait "$CLIENT_PID"
cmp "$WORK/direct_kill.txt" "$WORK/routed_kill.txt"
echo "ok: sweep survived the SIGKILL byte-identically"

"$SUBMIT" --endpoint "$FLEET_SOCK" statsz | tee "$STATSZ_OUT"
python3 - "$STATSZ_OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    sz = json.load(f)
assert sz["ok"] is True and sz["role"] == "fleet", sz
fleet = sz["fleet"]
# 8 identical concurrent sweeps: one leader split and executed, the
# rest coalesced in the single-flight.
assert fleet["sweep_splits"] >= 2, fleet
assert fleet["coalesced"] >= 1, fleet
assert fleet["parts_forwarded"] >= 36, fleet
# The SIGKILL'd worker's in-flight parts failed over.
assert fleet["requeues"] >= 1, fleet
assert fleet["failures"] == 0, fleet
workers = sz["workers"]
assert len(workers) == 3, workers
dead = [w for w in workers if not w["alive"]]
assert len(dead) == 1 and dead[0]["statsz"] is None, workers
for w in workers:
    if w["alive"]:
        ws = w["statsz"]
        assert ws["completed"] > 0, (w["endpoint"], ws)
        assert ws["failed"] == 0 and ws["timed_out"] == 0, ws
assert sz["totals"]["completed"] > 0, sz["totals"]
print(f"ok: {fleet['coalesced']} coalesced, "
      f"{fleet['requeues']} requeue(s), "
      f"{fleet['parts_forwarded']} parts over "
      f"{fleet['sweep_splits']} splits, 1 dead worker detected")
EOF

echo "== a warm peer's cache serves a cold daemon =="
"$SERVE" --endpoint "$WORK/peer_warm.sock" --workers 2 \
    --cache-dir "$WORK/peer_warm_cache" &
PEER_PIDS+=("$!")
wait_ready "$WORK/peer_warm.sock"
t0=$(date +%s%N)
"$FIG3" --fast --refs "$REFS" --service "$WORK/peer_warm.sock" \
    > "$WORK/peer_cold_run.txt"
t1=$(date +%s%N)
COLD_MS=$(( (t1 - t0) / 1000000 ))
cmp "$WORK/direct.txt" "$WORK/peer_cold_run.txt"

"$SERVE" --endpoint "$WORK/peer_cold.sock" --workers 2 \
    --peers "$WORK/peer_warm.sock" &
PEER_PIDS+=("$!")
wait_ready "$WORK/peer_cold.sock"
t0=$(date +%s%N)
"$FIG3" --fast --refs "$REFS" --service "$WORK/peer_cold.sock" \
    > "$WORK/peer_hit_run.txt"
t1=$(date +%s%N)
PEER_MS=$(( (t1 - t0) / 1000000 ))
[ "$PEER_MS" -lt 1 ] && PEER_MS=1
cmp "$WORK/direct.txt" "$WORK/peer_hit_run.txt"
if [ "$COLD_MS" -lt $(( PEER_MS * 5 )) ]; then
    echo "FAIL: peer-served sweep (${PEER_MS} ms) not >=5x faster" \
        "than the cold compute (${COLD_MS} ms)" >&2
    exit 1
fi
"$SUBMIT" --endpoint "$WORK/peer_cold.sock" statsz \
    > "$WORK/peer_statsz.json"
python3 - "$WORK/peer_statsz.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    sz = json.load(f)
assert sz["peer"]["hits"] == 1, sz["peer"]
assert sz["cache_answers"] == 1, sz
print("ok: cold daemon answered from its peer's warm cache")
EOF
echo "ok: peer answer ${PEER_MS} ms vs ${COLD_MS} ms cold compute"

"$SUBMIT" --endpoint "$WORK/peer_warm.sock" shutdown >/dev/null
"$SUBMIT" --endpoint "$WORK/peer_cold.sock" shutdown >/dev/null

echo "fleet smoke: all checks passed"
