#include "fig_common.hpp"

namespace ringsim::bench {

const std::vector<double> &
cycleSweepNs()
{
    static const std::vector<double> sweep = {1,  2,  3,  4,  5, 6,
                                              8,  10, 12, 14, 16, 20};
    return sweep;
}

TextTable
makeFigureTable()
{
    return TextTable({"workload", "series", "source", "cycle (ns)",
                      "proc util %", "net util %", "miss lat (ns)"});
}

namespace {

void
addRow(TextTable &table, const trace::WorkloadConfig &wl,
       const std::string &label, const char *source, double cycle_ns,
       double putil, double netutil, double lat)
{
    table.addRow({wl.displayName(), label, source,
                  fmtDouble(cycle_ns, 0), fmtPercent(putil, 1),
                  fmtPercent(netutil, 1), fmtDouble(lat, 0)});
}

} // namespace

void
addRingSeries(TextTable &table, const trace::WorkloadConfig &wl,
              const coherence::Census &census, Tick ring_period,
              model::RingProtocol protocol, const std::string &label)
{
    for (double cycle_ns : cycleSweepNs()) {
        model::RingModelInput in;
        in.census = census;
        in.ring =
            core::RingSystemConfig::forProcs(wl.procs, ring_period)
                .ring;
        in.system.procCycle = nsToTicks(cycle_ns);
        in.protocol = protocol;
        model::ModelResult r = model::solveRing(in);
        addRow(table, wl, label, "model", cycle_ns,
               r.procUtilization, r.networkUtilization,
               r.missLatencyNs);
    }
}

void
addBusSeries(TextTable &table, const trace::WorkloadConfig &wl,
             const coherence::Census &census, Tick bus_period,
             const std::string &label)
{
    for (double cycle_ns : cycleSweepNs()) {
        model::BusModelInput in;
        in.census = census;
        in.bus = core::BusSystemConfig::forProcs(wl.procs, bus_period)
                     .bus;
        in.system.procCycle = nsToTicks(cycle_ns);
        model::ModelResult r = model::solveBus(in);
        addRow(table, wl, label, "model", cycle_ns,
               r.procUtilization, r.networkUtilization,
               r.missLatencyNs);
    }
}

void
addRingSimPoint(TextTable &table, const trace::WorkloadConfig &wl,
                Tick ring_period, core::ProtocolKind kind,
                const std::string &label)
{
    core::RingSystemConfig cfg =
        core::RingSystemConfig::forProcs(wl.procs, ring_period);
    core::RunResult r = core::runRingSystem(cfg, wl, kind);
    addRow(table, wl, label, "sim", 20, r.procUtilization,
           r.networkUtilization, r.missLatencyNs);
}

void
addBusSimPoint(TextTable &table, const trace::WorkloadConfig &wl,
               Tick bus_period, const std::string &label)
{
    core::BusSystemConfig cfg =
        core::BusSystemConfig::forProcs(wl.procs, bus_period);
    core::RunResult r = core::runBusSystem(cfg, wl);
    addRow(table, wl, label, "sim", 20, r.procUtilization,
           r.networkUtilization, r.missLatencyNs);
}

} // namespace ringsim::bench
