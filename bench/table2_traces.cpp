/**
 * @file
 * Reproduces Table 2: trace characteristics of the twelve workloads
 * under the paper's 128 KB direct-mapped / 16-byte-block cache.
 *
 * The paper's absolute reference counts come from multi-million-
 * reference captured traces; ringsim's synthetic traces are shorter,
 * so the comparable quantities are the *mix fractions* and the miss
 * rates, which are printed against the paper's values.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "coherence/driver.hpp"
#include "runner/experiment_runner.hpp"
#include "util/table.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"benchmark", "procs", "shared refs %",
                     "priv w% (paper)", "priv w% (ours)",
                     "shared w% (paper)", "shared w% (ours)",
                     "total mr% (paper)", "total mr% (ours)",
                     "shared mr% (paper)", "shared mr% (ours)"});

    // One functional pass per workload, fanned out as runner jobs.
    std::vector<trace::WorkloadConfig> workloads;
    std::vector<std::function<coherence::Census()>> tasks;
    for (trace::WorkloadConfig cfg : trace::allWorkloadPresets()) {
        opt.apply(cfg);
        workloads.push_back(cfg);
        tasks.push_back(
            [cfg]() { return coherence::runFunctional(cfg); });
    }
    std::vector<coherence::Census> censuses =
        runner::runAll(std::move(tasks), opt.jobs);

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const trace::WorkloadConfig &cfg = workloads[i];
        const coherence::Census &c = censuses[i];
        table.addRow({
            trace::benchmarkName(cfg.benchmark),
            std::to_string(cfg.procs),
            fmtPercent(static_cast<double>(c.sharedRefs()) /
                           static_cast<double>(c.dataRefs()),
                       1),
            fmtPercent(cfg.targets.privateWriteFrac, 0),
            fmtPercent(c.privateWriteFrac(), 0),
            fmtPercent(cfg.targets.sharedWriteFrac, 0),
            fmtPercent(c.sharedWriteFrac(), 0),
            fmtPercent(cfg.targets.totalMissRate, 2),
            fmtPercent(c.totalMissRate(), 2),
            fmtPercent(cfg.targets.sharedMissRate, 2),
            fmtPercent(c.sharedMissRate(), 2),
        });
    }

    bench::emit(opt,
                "Table 2: trace characteristics (128 KB DM cache, "
                "16 B blocks)",
                table);
    return 0;
}
