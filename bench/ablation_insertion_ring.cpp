/**
 * @file
 * Slotted vs register-insertion access control — the open question of
 * paper Section 2 ("Which one of slotted or register insertion rings
 * offers the best performance is not clear. Intuitively, under light
 * loads, the register insertion ring has a faster access time...
 * Under medium to heavy loads, the simplicity of enforcing fairness
 * on the slotted ring may yield better performance.").
 *
 * Both disciplines run the full-map directory protocol (snooping is
 * unsuitable for register insertion, Section 3.3) over the same
 * message census and ring geometry; only the bandwidth-granting rule
 * differs. The insertion model deliberately omits SCI's
 * starvation-avoidance throughput tax, so it is an optimistic bound.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "model/calibration.hpp"
#include "model/insertion_model.hpp"
#include "runner/experiment_runner.hpp"
#include "util/table.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"workload", "MIPS", "slotted lat (ns)",
                     "insertion lat (ns)", "slotted util %",
                     "insertion link util %"});

    // One job per (benchmark, procs): the calibration dominates, the
    // three MIPS points reuse its census.
    using Rows = std::vector<std::vector<std::string>>;
    std::vector<std::function<Rows()>> tasks;
    for (trace::Benchmark b : {trace::Benchmark::MP3D,
                               trace::Benchmark::WATER}) {
        for (unsigned procs : {16u, 32u}) {
            trace::WorkloadConfig wl = trace::workloadPreset(b, procs);
            opt.apply(wl);

            tasks.push_back([wl, procs]() -> Rows {
                coherence::Census census = model::calibrate(wl);
                Rows rows;
                for (double mips : {50.0, 200.0, 1000.0}) {
                    model::RingModelInput in;
                    in.census = census;
                    in.ring =
                        core::RingSystemConfig::forProcs(procs).ring;
                    in.system.procCycle = nsToTicks(1e3 / mips);
                    in.protocol = model::RingProtocol::Directory;

                    model::ModelResult slotted = model::solveRing(in);
                    model::ModelResult inserted =
                        model::solveInsertionRing(in);

                    rows.push_back(
                        {wl.displayName(), fmtDouble(mips, 0),
                         fmtDouble(slotted.missLatencyNs, 0),
                         fmtDouble(inserted.missLatencyNs, 0),
                         fmtPercent(slotted.networkUtilization, 1),
                         fmtPercent(inserted.networkUtilization, 1)});
                }
                return rows;
            });
        }
    }

    for (const Rows &rows : runner::runAll(std::move(tasks), opt.jobs))
        for (const std::vector<std::string> &cells : rows)
            table.addRow(cells);

    bench::emit(opt,
                "Slotted vs register-insertion ring (directory "
                "protocol, analytic)",
                table);
    return 0;
}
