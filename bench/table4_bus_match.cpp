/**
 * @file
 * Reproduces Table 4: the bus clock cycle (ns) a 64-bit split-
 * transaction bus needs to match the processor utilization of 32-bit
 * slotted rings clocked at 250 and 500 MHz, for processor speeds of
 * 100/200/400 MIPS, on the three SPLASH workloads at 8/16/32 CPUs.
 *
 * Methodology exactly as in the paper: calibrate once per workload,
 * evaluate the ring's utilization with the analytic model, then
 * bisect the bus model's clock to the same utilization.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "model/calibration.hpp"
#include "model/matcher.hpp"
#include "runner/experiment_runner.hpp"
#include "util/table.hpp"

using namespace ringsim;

namespace {

/** Paper Table 4 (ns): per benchmark row, 250 MHz then 500 MHz, at
 *  100/200/400 MIPS. */
struct PaperRow
{
    const char *name;
    unsigned procs;
    double ring250[3];
    double ring500[3];
};

const PaperRow paperRows[] = {
    {"MP3D", 8, {12.5, 10.3, 8.9}, {7.8, 6.6, 5.6}},
    {"WATER", 8, {19.6, 19.1, 17.7}, {10.0, 10.0, 9.9}},
    {"CHOLESKY", 8, {12.8, 10.6, 9.0}, {7.6, 6.6, 5.7}},
    {"MP3D", 16, {9.0, 7.1, 6.2}, {6.5, 4.9, 4.0}},
    {"WATER", 16, {25.4, 21.4, 16.5}, {14.1, 12.9, 10.9}},
    {"CHOLESKY", 16, {6.8, 5.4, 4.7}, {4.9, 3.7, 3.1}},
    {"MP3D", 32, {3.8, 3.7, 3.6}, {2.4, 2.1, 2.0}},
    {"WATER", 32, {21.4, 13.9, 9.2}, {16.2, 11.0, 7.3}},
    {"CHOLESKY", 32, {3.7, 3.5, 3.4}, {2.3, 2.0, 1.9}},
};

const double mipsPoints[3] = {100, 200, 400};

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"benchmark", "ring MHz", "100 MIPS (paper/ours)",
                     "200 MIPS (paper/ours)",
                     "400 MIPS (paper/ours)"});

    // One job per paper row: calibrate the workload, then bisect the
    // matching bus clock at every (ring speed, MIPS) point.
    using Rows = std::vector<std::vector<std::string>>;
    std::vector<std::function<Rows()>> tasks;
    for (const PaperRow &row : paperRows) {
        trace::WorkloadConfig cfg = trace::workloadPreset(
            trace::benchmarkFromName(row.name), row.procs);
        opt.apply(cfg);

        tasks.push_back([cfg, &row]() -> Rows {
            coherence::Census census = model::calibrate(cfg);
            Rows rows;
            for (unsigned ring_idx = 0; ring_idx < 2; ++ring_idx) {
                Tick ring_period = ring_idx == 0 ? 4000 : 2000;
                const double *paper =
                    ring_idx == 0 ? row.ring250 : row.ring500;

                std::vector<std::string> cells;
                cells.push_back(cfg.displayName());
                cells.push_back(ring_idx == 0 ? "250" : "500");
                for (unsigned m = 0; m < 3; ++m) {
                    Tick cycle = nsToTicks(1e3 / mipsPoints[m]);

                    model::RingModelInput rin;
                    rin.census = census;
                    rin.ring = core::RingSystemConfig::forProcs(
                                   row.procs, ring_period)
                                   .ring;
                    rin.system.procCycle = cycle;
                    rin.protocol = model::RingProtocol::Snoop;
                    double target =
                        model::solveRing(rin).procUtilization;

                    model::BusModelInput bin;
                    bin.census = census;
                    bin.bus =
                        core::BusSystemConfig::forProcs(row.procs).bus;
                    bin.system.procCycle = cycle;
                    double period_ns =
                        model::matchBusClock(bin, target);

                    cells.push_back(fmtDouble(paper[m], 1) + " / " +
                                    fmtDouble(period_ns, 1));
                }
                rows.push_back(std::move(cells));
            }
            return rows;
        });
    }

    for (const Rows &rows : runner::runAll(std::move(tasks), opt.jobs))
        for (const std::vector<std::string> &cells : rows)
            table.addRow(cells);

    bench::emit(opt,
                "Table 4: bus clock cycle (ns) matching slotted-ring "
                "processor utilization",
                table);
    return 0;
}
