/**
 * @file
 * Ring-tick microbenchmarks: the schedule-driven hot path against the
 * reference scan, across the paper's node counts and three occupancy
 * regimes. Registered benchmarks only (no main): linked both into
 * micro_kernel (interactive runs) and into ring_bench_json (the
 * BENCH_ring.json writer the CI perf-smoke job uploads).
 *
 * items_per_second counts simulated node-visits (cycles × nodes) per
 * wall second — the unit of work the scan-driven tick performed — so
 * the two paths are directly comparable and the idle-ring fast
 * forward shows up as a rate gain rather than a mysteriously short
 * run.
 */

#include <benchmark/benchmark.h>

#include "ring/network.hpp"
#include "sim/kernel.hpp"

using namespace ringsim;

namespace {

/**
 * Steady-state client: reacts to whatever the slot carries and never
 * queues work of its own — the protocol engines' no-op empty visit,
 * minus the protocol.
 */
class ReactorClient : public ring::RingClient
{
  public:
    void onSlot(ring::SlotHandle &slot) override
    {
        bool occupied = slot.occupied();
        benchmark::DoNotOptimize(occupied);
    }
};

/**
 * Fill client for node 0: inserts circulating messages (destination
 * nobody, so they are never removed) until the requested occupancy is
 * reached, then degenerates to a reactor.
 */
class FillClient : public ring::RingClient
{
  public:
    ring::SlotRing *ring = nullptr;
    unsigned target = 0;
    unsigned placed = 0;

    void onSlot(ring::SlotHandle &slot) override
    {
        if (placed >= target || slot.occupied())
            return;
        ring::RingMessage msg;
        msg.src = slot.node();
        msg.dst = invalidNode; // circulates forever
        // Match the probe-slot parity rule (block slots take any).
        msg.addr = slot.type() == ring::SlotType::ProbeOdd ? 0x10 : 0x0;
        slot.insert(msg);
        if (++placed >= target)
            ring->clearPending(slot.node());
    }
};

/**
 * Arguments: nodes / occupancy percent of all slots / 1 = reference
 * scan path, 0 = schedule-driven path.
 */
void
BM_RingTick(benchmark::State &state)
{
    const unsigned nodes = static_cast<unsigned>(state.range(0));
    const unsigned occ_pct = static_cast<unsigned>(state.range(1));
    const bool reference = state.range(2) != 0;

    sim::Kernel kernel;
    ring::RingConfig config;
    config.nodes = nodes;
    config.referenceTickPath = reference;
    ring::SlotRing ring_net(kernel, config);

    FillClient filler;
    filler.ring = &ring_net;
    filler.target = config.totalSlots() * occ_pct / 100;
    std::vector<ReactorClient> reactors(nodes);
    ring_net.setClient(0, filler);
    for (NodeId n = 1; n < nodes; ++n)
        ring_net.setClient(n, reactors[n]);

    ring_net.start(0);
    if (filler.target > 0) {
        ring_net.notifyPending(0);
        while (filler.placed < filler.target)
            kernel.run(kernel.now() + config.roundTripTime());
    }
    // Steady state from here on: every client is a pure reactor, so
    // all may opt into idle skipping (ignored by the reference path).
    for (NodeId n = 0; n < nodes; ++n)
        ring_net.enableIdleSkip(n);

    // Advance simulated time in fixed chunks; each iteration covers
    // the same number of ring cycles on either path.
    constexpr Tick kCyclesPerIter = 512;
    Tick until = kernel.now();
    for (auto _ : state) {
        until += kCyclesPerIter * config.clockPeriod;
        kernel.run(until);
    }
    ring_net.stop();

    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            kCyclesPerIter * nodes);
    state.counters["kernel_events"] =
        static_cast<double>(kernel.stats().processed);
}

BENCHMARK(BM_RingTick)
    ->ArgsProduct({{8, 16, 32, 64}, {0, 50, 100}, {0, 1}})
    ->ArgNames({"nodes", "occ", "ref"});

} // namespace
