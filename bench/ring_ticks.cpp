/**
 * @file
 * Ring-tick microbenchmarks: the schedule-driven hot path against the
 * reference scan, across the paper's node counts and three occupancy
 * regimes. Registered benchmarks only (no main): linked both into
 * micro_kernel (interactive runs) and into ring_bench_json (the
 * BENCH_ring.json writer the CI perf-smoke job uploads).
 *
 * items_per_second counts simulated node-visits (cycles × nodes) per
 * wall second — the unit of work the scan-driven tick performed — so
 * the two paths are directly comparable and the idle-ring fast
 * forward shows up as a rate gain rather than a mysteriously short
 * run.
 *
 * Two families:
 *  - BM_RingTick drives the ring shell with a synthetic client at a
 *    pinned occupancy (the controlled experiment);
 *  - BM_ProtocolTick drives the real snoop engine closed-loop, so the
 *    tracked numbers also cover production controllers; its occupancy
 *    emerges from the offered load and is reported as a counter.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/metrics.hpp"
#include "core/ring_snoop.hpp"
#include "ring/network.hpp"
#include "sim/kernel.hpp"
#include "trace/address_map.hpp"

using namespace ringsim;

namespace {

/**
 * One client object registered for every node — the same uniform
 * registration the protocol engines use, so the ring batch-dispatches
 * whole rotations through onVisits. Node 0 first fills the ring to
 * the requested occupancy with circulating messages (destination
 * nobody, never removed); every visit thereafter is a pure reaction.
 */
class UniformTickClient : public ring::RingClient
{
  public:
    ring::SlotRing *ring = nullptr;
    unsigned target = 0;
    unsigned placed = 0;

    void onSlot(ring::SlotHandle &slot) override { visit(slot); }

    void onVisits(ring::SlotRing &ring_net, const ring::SlotVisit *v,
                  const ring::SlotVisit *end) override
    {
        // Mirrors RingProtocolBase::onVisits: one virtual call per
        // rotation, non-virtual per-visit bodies.
        if (placed < target) {
            for (; v != end; ++v) {
                ring::SlotHandle handle = ring_net.visitHandle(*v);
                visit(handle);
            }
            return;
        }
        // Steady state: every visit is a reaction to an occupied slot.
        // Touch each handle but fence the optimizer once per batch,
        // not per visit — the object of measurement is the ring's
        // dispatch, not a per-visit asm barrier.
        unsigned seen = 0;
        for (; v != end; ++v) {
            ring::SlotHandle handle = ring_net.visitHandle(*v);
            seen += handle.occupied() ? 1u : 0u;
        }
        benchmark::DoNotOptimize(seen);
    }

  private:
    void visit(ring::SlotHandle &slot)
    {
        if (slot.occupied()) {
            bool occupied = true;
            benchmark::DoNotOptimize(occupied);
            return;
        }
        if (slot.node() == 0 && placed < target) {
            ring::RingMessage msg;
            msg.src = slot.node();
            msg.dst = invalidNode; // circulates forever
            // Match the probe-slot parity rule (block slots take any).
            msg.addr =
                slot.type() == ring::SlotType::ProbeOdd ? 0x10 : 0x0;
            slot.insert(msg);
            if (++placed >= target)
                ring->clearPending(0);
        }
    }
};

/**
 * Arguments: nodes / occupancy percent of all slots / 1 = reference
 * scan path, 0 = schedule-driven path.
 */
void
BM_RingTick(benchmark::State &state)
{
    const unsigned nodes = static_cast<unsigned>(state.range(0));
    const unsigned occ_pct = static_cast<unsigned>(state.range(1));
    const bool reference = state.range(2) != 0;

    sim::Kernel kernel;
    ring::RingConfig config;
    config.nodes = nodes;
    config.referenceTickPath = reference;
    ring::SlotRing ring_net(kernel, config);

    UniformTickClient client;
    client.ring = &ring_net;
    client.target = config.totalSlots() * occ_pct / 100;
    for (NodeId n = 0; n < nodes; ++n)
        ring_net.setClient(n, client);

    ring_net.start(0);
    if (client.target > 0) {
        ring_net.notifyPending(0);
        while (client.placed < client.target)
            kernel.run(kernel.now() + config.roundTripTime());
    }
    // Steady state from here on: every visit is a pure reaction, so
    // all nodes may opt into idle skipping (ignored by the reference
    // path).
    for (NodeId n = 0; n < nodes; ++n)
        ring_net.enableIdleSkip(n);

    // Advance simulated time in fixed chunks; each iteration covers
    // the same number of ring cycles on either path. Chunks are large
    // enough that run()'s entry/exit bookkeeping (two clock reads) is
    // noise against the cycles inside.
    constexpr Tick kCyclesPerIter = 4096;
    Tick until = kernel.now();
    for (auto _ : state) {
        until += kCyclesPerIter * config.clockPeriod;
        kernel.run(until);
    }
    ring_net.stop();

    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            kCyclesPerIter * nodes);
    state.counters["kernel_events"] =
        static_cast<double>(kernel.stats().processed);
}

BENCHMARK(BM_RingTick)
    ->ArgsProduct({{8, 16, 32, 64}, {0, 50, 100}, {0, 1}})
    ->ArgNames({"nodes", "occ", "ref"});

/**
 * Closed-loop driver for the real protocol engine: each node keeps
 * @p load transactions outstanding, issuing the next one a processor
 * cycle after a completion. Addresses walk the shared footprint so
 * the engine sees a steady miss mix rather than a warmed-up cache.
 */
class ProtocolDriver
{
  public:
    sim::Kernel *kernel = nullptr;
    core::RingProtocolBase *protocol = nullptr;
    trace::AddressMap *map = nullptr;
    Tick issueGap = 0;
    std::uint64_t counter = 0;

    void pump(NodeId p)
    {
        std::uint64_t i = counter++;
        trace::TraceRecord rec{(i & 1) ? trace::Op::Write
                                       : trace::Op::Read,
                               map->sharedBlock(i % kFootprint)};
        protocol->startTransaction(p, rec, [this, p]() {
            kernel->postIn(issueGap, [this, p]() { pump(p); });
        });
    }

  private:
    /** Shared blocks cycled through; large enough to keep missing. */
    static constexpr std::uint64_t kFootprint = 1 << 14;
};

/**
 * Arguments: nodes / outstanding transactions per node / 1 =
 * reference scan path, 0 = schedule-driven path. Items are simulated
 * node-visits, the same unit as BM_RingTick; the emergent ring
 * utilization is reported as the ring_occupancy counter.
 */
void
BM_ProtocolTick(benchmark::State &state)
{
    const unsigned nodes = static_cast<unsigned>(state.range(0));
    const unsigned load = static_cast<unsigned>(state.range(1));
    const bool reference = state.range(2) != 0;

    sim::Kernel kernel;
    auto cfg = core::RingSystemConfig::forProcs(nodes);
    cfg.ring.referenceTickPath = reference;
    trace::AddressMap map(nodes, 16, 7);
    coherence::EngineOptions eopt;
    coherence::FunctionalEngine engine(map, eopt);
    ring::SlotRing ring_net(kernel, cfg.ring);
    core::Metrics metrics(nodes);
    core::SystemConfig sys;
    core::RingSnoopProtocol protocol(kernel, sys, engine, ring_net,
                                     metrics);

    ProtocolDriver driver;
    driver.kernel = &kernel;
    driver.protocol = &protocol;
    driver.map = &map;
    driver.issueGap = sys.procCycle;

    ring_net.start(0);
    for (NodeId p = 0; p < nodes; ++p)
        for (unsigned k = 0; k < load; ++k)
            driver.pump(p);
    // Warm up: let the in-flight population and queues reach steady
    // state before timing.
    kernel.run(kernel.now() + 8 * cfg.ring.roundTripTime());
    ring_net.resetStats();

    constexpr Tick kCyclesPerIter = 512;
    Tick until = kernel.now();
    for (auto _ : state) {
        until += kCyclesPerIter * cfg.ring.clockPeriod;
        kernel.run(until);
    }
    double occupancy = ring_net.totalOccupancy();
    ring_net.stop();

    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            kCyclesPerIter * nodes);
    state.counters["ring_occupancy"] = occupancy;
    state.counters["kernel_events"] =
        static_cast<double>(kernel.stats().processed);
}

BENCHMARK(BM_ProtocolTick)
    ->ArgsProduct({{8, 64}, {1, 8}, {0, 1}})
    ->ArgNames({"nodes", "load", "ref"});

} // namespace
