/**
 * @file
 * Reproduces Figure 5: breakdown of the remote-miss types in the
 * full-map directory protocol — 1-cycle clean misses, 1-cycle dirty
 * misses and 2-cycle misses — for all twelve workloads.
 *
 * Shape checks from the paper: the 1-cycle clean fraction grows with
 * system size (random page placement sends a larger share of misses
 * to remote homes); MP3D and FFT show substantial dirty/2-cycle
 * fractions; WEATHER and SIMPLE are almost entirely 1-cycle clean.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "coherence/driver.hpp"
#include "runner/experiment_runner.hpp"
#include "util/table.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"workload", "1-cycle clean %", "1-cycle dirty %",
                     "2-cycle %"});

    // One functional-coherence job per workload; rows are assembled
    // in preset order, so the table is identical at any --jobs.
    std::vector<trace::WorkloadConfig> workloads;
    std::vector<std::function<coherence::Census()>> tasks;
    for (trace::WorkloadConfig cfg : trace::allWorkloadPresets()) {
        opt.apply(cfg);
        workloads.push_back(cfg);
        tasks.push_back(
            [cfg]() { return coherence::runFunctional(cfg); });
    }
    std::vector<coherence::Census> censuses =
        runner::runAll(std::move(tasks), opt.jobs);

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const coherence::Census &c = censuses[i];
        Count remote = c.fullMap.cleanMiss1 + c.fullMap.dirtyMiss1 +
                       c.fullMap.miss2;
        auto pct = [remote](Count n) {
            return remote ? 100.0 * static_cast<double>(n) /
                                static_cast<double>(remote)
                          : 0.0;
        };
        table.addRow({workloads[i].displayName(),
                      fmtDouble(pct(c.fullMap.cleanMiss1), 1),
                      fmtDouble(pct(c.fullMap.dirtyMiss1), 1),
                      fmtDouble(pct(c.fullMap.miss2), 1)});
    }

    bench::emit(opt,
                "Figure 5: breakdown of directory-protocol remote "
                "misses",
                table);
    return 0;
}
