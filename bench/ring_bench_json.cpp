/**
 * @file
 * Machine-readable perf trajectory for the ring tick path.
 *
 * Runs the ring-tick microbenchmarks (this binary links only
 * ring_ticks.cpp, so no filter is needed) and writes a flat JSON map
 * of benchmark name → items_per_second to BENCH_ring.json (or the
 * path given as the first argument). The CI perf-smoke job uploads
 * the file as an artifact; no thresholds are enforced yet —
 * trajectory first.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "util/json.hpp"

namespace {

/** Console output for humans, plus a name → rate capture for JSON. */
class RateCapturingReporter : public benchmark::ConsoleReporter
{
  public:
    std::map<std::string, double> rates;

    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                rates[run.benchmark_name()] = it->second.value;
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    const char *out_path = argc > 1 ? argv[1] : "BENCH_ring.json";

    RateCapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    size_t i = 0;
    for (const auto &[name, rate] : reporter.rates) {
        std::fprintf(out, "  \"%s\": %.6g%s\n",
                     ringsim::util::jsonEscape(name).c_str(), rate,
                     ++i < reporter.rates.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::fprintf(stderr, "wrote %zu rates to %s\n", reporter.rates.size(),
                 out_path);
    return 0;
}
