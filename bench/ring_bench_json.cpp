/**
 * @file
 * Machine-readable perf trajectory for the ring tick path.
 *
 * Runs the ring-tick microbenchmarks (this binary links only
 * ring_ticks.cpp, so no filter is needed) and writes a flat JSON map
 * of benchmark name → items_per_second to BENCH_ring.json (or the
 * path given as the first argument). If the output file already
 * exists, its rates become the baseline for a trailing
 * "saturated_multiplier" block: fresh/baseline speedup for every
 * saturated schedule-driven config (BM_RingTick occ:50/occ:100,
 * ref:0), plus their minimum. Regenerating over the committed file
 * therefore records the speedup against the last committed
 * trajectory point. The CI perf-smoke job regenerates the file and
 * runs scripts/perf_smoke.py against the committed copy; the JSON
 * artifact is uploaded either way.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "util/json.hpp"

namespace {

/** Console output for humans, plus a name → rate capture for JSON. */
class RateCapturingReporter : public benchmark::ConsoleReporter
{
  public:
    std::map<std::string, double> rates;

    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                rates[run.benchmark_name()] = it->second.value;
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

/**
 * Top-level "name": rate entries of a previously written
 * BENCH_ring.json (nested blocks such as saturated_multiplier are
 * skipped by depth tracking). Empty map if the file is absent — the
 * format is exactly what main() below emits, nothing more general.
 */
std::map<std::string, double>
readBaseline(const char *path)
{
    std::map<std::string, double> rates;
    std::ifstream in(path);
    if (!in)
        return rates;
    int depth = 0;
    std::string line;
    while (std::getline(in, line)) {
        long opens = 0;
        long closes = 0;
        for (char ch : line) {
            if (ch == '{')
                ++opens;
            if (ch == '}')
                ++closes;
        }
        if (depth == 1) {
            char name[256];
            double value = 0;
            if (std::sscanf(line.c_str(), " \"%255[^\"]\": %lf", name,
                            &value) == 2)
                rates[name] = value;
        }
        depth += opens - closes;
    }
    return rates;
}

/** The configs the tentpole speedup target is stated over. */
bool
isSaturatedFastConfig(const std::string &name)
{
    return name.rfind("BM_RingTick/", 0) == 0 &&
           (name.find("/occ:50/") != std::string::npos ||
            name.find("/occ:100/") != std::string::npos) &&
           name.find("ref:0") != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    const char *out_path = argc > 1 ? argv[1] : "BENCH_ring.json";

    std::map<std::string, double> baseline = readBaseline(out_path);

    RateCapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    // Speedup of each saturated schedule-driven config against the
    // rates the output file held before this run.
    std::map<std::string, double> multipliers;
    for (const auto &[name, rate] : reporter.rates) {
        if (!isSaturatedFastConfig(name))
            continue;
        auto it = baseline.find(name);
        if (it != baseline.end() && it->second > 0)
            multipliers[name] = rate / it->second;
    }

    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    size_t i = 0;
    const bool trailer = !multipliers.empty();
    for (const auto &[name, rate] : reporter.rates) {
        bool last = ++i == reporter.rates.size() && !trailer;
        std::fprintf(out, "  \"%s\": %.6g%s\n",
                     ringsim::util::jsonEscape(name).c_str(), rate,
                     last ? "" : ",");
    }
    if (trailer) {
        double min_mult = 0;
        std::fprintf(out, "  \"saturated_multiplier\": {\n");
        for (const auto &[name, mult] : multipliers) {
            if (min_mult == 0 || mult < min_mult)
                min_mult = mult;
            std::fprintf(out, "    \"%s\": %.4g,\n",
                         ringsim::util::jsonEscape(name).c_str(), mult);
        }
        std::fprintf(out, "    \"min\": %.4g\n  }\n", min_mult);
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::fprintf(stderr, "wrote %zu rates to %s\n", reporter.rates.size(),
                 out_path);
    return 0;
}
