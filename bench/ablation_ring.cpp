/**
 * @file
 * Ablations of the slotted-ring design choices the paper discusses in
 * prose but does not plot:
 *
 *  1. Anti-starvation rule (Section 5.0): "starvation of clusters in
 *     the slotted ring architecture is easily avoided by preventing a
 *     node from reusing a message slot immediately after removing a
 *     message from that slot. Our simulations show that this has no
 *     significant impact on system performance." — toggle the rule
 *     and compare.
 *
 *  2. 64-bit parallel ring (Section 4.2): "With 64-bit parallel
 *     rings, utilization levels never surpass 50% and snooping
 *     performs significantly better than directory in all cases." —
 *     rerun the snoop/directory comparison at 64-bit width.
 *
 *  3. Snooper cost context (Section 3.3): ring clock 250 vs 500 MHz
 *     under snooping, the design-space axis of Figure 6's ring pair.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "core/system.hpp"
#include "runner/experiment_runner.hpp"
#include "util/table.hpp"

using namespace ringsim;

namespace {

/** One timed simulation variant; results are assembled in
 *  registration order, independent of --jobs. */
struct Variant
{
    trace::WorkloadConfig wl;
    std::string label;
    Tick period;
    unsigned linkBits;
    bool antiStarvation;
    core::ProtocolKind kind;
};

core::RunResult
runRing(const Variant &v)
{
    core::RingSystemConfig cfg =
        core::RingSystemConfig::forProcs(v.wl.procs, v.period);
    cfg.ring.frame.linkBits = v.linkBits;
    cfg.ring.antiStarvation = v.antiStarvation;
    return core::runRingSystem(cfg, v.wl, v.kind);
}

void
addRow(TextTable &table, const Variant &v, const core::RunResult &r)
{
    table.addRow({v.wl.displayName(), v.label,
                  fmtPercent(r.procUtilization, 1),
                  fmtPercent(r.networkUtilization, 1),
                  fmtDouble(r.missLatencyNs, 0),
                  fmtDouble(r.acquireWaitNs, 1)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"workload", "variant", "proc util %", "net util %",
                     "miss lat (ns)", "slot wait (ns)"});

    std::vector<Variant> variants;

    // --- Ablation 1: anti-starvation rule on the busiest SPLASH
    // configuration (MP3D 32, fast ring).
    {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, 32);
        opt.apply(wl);
        variants.push_back({wl, "snoop, anti-starvation ON", 2000, 32,
                            true, core::ProtocolKind::RingSnoop});
        variants.push_back({wl, "snoop, anti-starvation OFF", 2000, 32,
                            false, core::ProtocolKind::RingSnoop});
    }

    // --- Ablation 2: 64-bit parallel ring, snoop vs directory.
    for (unsigned procs : {16u, 32u}) {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, procs);
        opt.apply(wl);
        variants.push_back({wl, "snoop, 32-bit ring", 2000, 32, true,
                            core::ProtocolKind::RingSnoop});
        variants.push_back({wl, "snoop, 64-bit ring", 2000, 64, true,
                            core::ProtocolKind::RingSnoop});
        variants.push_back({wl, "directory, 64-bit ring", 2000, 64,
                            true, core::ProtocolKind::RingDirectory});
    }

    // --- Ablation 3: ring clock (the Figure 6 ring pair).
    {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, 16);
        opt.apply(wl);
        variants.push_back({wl, "snoop, 500 MHz", 2000, 32, true,
                            core::ProtocolKind::RingSnoop});
        variants.push_back({wl, "snoop, 250 MHz", 4000, 32, true,
                            core::ProtocolKind::RingSnoop});
    }

    std::vector<std::function<core::RunResult()>> tasks;
    for (const Variant &v : variants)
        tasks.push_back([&v]() { return runRing(v); });
    std::vector<core::RunResult> results =
        runner::runAll(std::move(tasks), opt.jobs);

    for (std::size_t i = 0; i < variants.size(); ++i)
        addRow(table, variants[i], results[i]);

    bench::emit(opt,
                "Ring design ablations (anti-starvation, link width, "
                "clock)",
                table);
    return 0;
}
