/**
 * @file
 * Ablations of the slotted-ring design choices the paper discusses in
 * prose but does not plot:
 *
 *  1. Anti-starvation rule (Section 5.0): "starvation of clusters in
 *     the slotted ring architecture is easily avoided by preventing a
 *     node from reusing a message slot immediately after removing a
 *     message from that slot. Our simulations show that this has no
 *     significant impact on system performance." — toggle the rule
 *     and compare.
 *
 *  2. 64-bit parallel ring (Section 4.2): "With 64-bit parallel
 *     rings, utilization levels never surpass 50% and snooping
 *     performs significantly better than directory in all cases." —
 *     rerun the snoop/directory comparison at 64-bit width.
 *
 *  3. Snooper cost context (Section 3.3): ring clock 250 vs 500 MHz
 *     under snooping, the design-space axis of Figure 6's ring pair.
 */

#include <iostream>

#include "bench/common.hpp"
#include "core/system.hpp"
#include "util/table.hpp"

using namespace ringsim;

namespace {

core::RunResult
runRing(const trace::WorkloadConfig &wl, Tick period, unsigned link_bits,
        bool anti_starvation, core::ProtocolKind kind)
{
    core::RingSystemConfig cfg =
        core::RingSystemConfig::forProcs(wl.procs, period);
    cfg.ring.frame.linkBits = link_bits;
    cfg.ring.antiStarvation = anti_starvation;
    return core::runRingSystem(cfg, wl, kind);
}

void
addRow(TextTable &table, const trace::WorkloadConfig &wl,
       const std::string &variant, const core::RunResult &r)
{
    table.addRow({wl.displayName(), variant,
                  fmtPercent(r.procUtilization, 1),
                  fmtPercent(r.networkUtilization, 1),
                  fmtDouble(r.missLatencyNs, 0),
                  fmtDouble(r.acquireWaitNs, 1)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"workload", "variant", "proc util %", "net util %",
                     "miss lat (ns)", "slot wait (ns)"});

    // --- Ablation 1: anti-starvation rule on the busiest SPLASH
    // configuration (MP3D 32, fast ring).
    {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, 32);
        opt.apply(wl);
        addRow(table, wl, "snoop, anti-starvation ON",
               runRing(wl, 2000, 32, true,
                       core::ProtocolKind::RingSnoop));
        addRow(table, wl, "snoop, anti-starvation OFF",
               runRing(wl, 2000, 32, false,
                       core::ProtocolKind::RingSnoop));
    }

    // --- Ablation 2: 64-bit parallel ring, snoop vs directory.
    for (unsigned procs : {16u, 32u}) {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, procs);
        opt.apply(wl);
        addRow(table, wl, "snoop, 32-bit ring",
               runRing(wl, 2000, 32, true,
                       core::ProtocolKind::RingSnoop));
        addRow(table, wl, "snoop, 64-bit ring",
               runRing(wl, 2000, 64, true,
                       core::ProtocolKind::RingSnoop));
        addRow(table, wl, "directory, 64-bit ring",
               runRing(wl, 2000, 64, true,
                       core::ProtocolKind::RingDirectory));
    }

    // --- Ablation 3: ring clock (the Figure 6 ring pair).
    {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, 16);
        opt.apply(wl);
        addRow(table, wl, "snoop, 500 MHz",
               runRing(wl, 2000, 32, true,
                       core::ProtocolKind::RingSnoop));
        addRow(table, wl, "snoop, 250 MHz",
               runRing(wl, 4000, 32, true,
                       core::ProtocolKind::RingSnoop));
    }

    bench::emit(opt,
                "Ring design ablations (anti-starvation, link width, "
                "clock)",
                table);
    return 0;
}
