/**
 * @file
 * Reproduces Table 3: minimum probe inter-arrival time ("snooping
 * rate") per dual-directory bank, for ring widths of 16/32/64 bits
 * and block sizes of 16..128 bytes at 500 MHz, with a 2-way
 * interleaved dual directory.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "ring/frame_layout.hpp"
#include "runner/experiment_runner.hpp"
#include "util/table.hpp"

using namespace ringsim;

namespace {

/** Paper Table 3 (ns): rows = block size, cols = 16/32/64-bit. */
const double paperValues[4][3] = {
    {40, 20, 10},
    {56, 28, 14},
    {88, 44, 22},
    {152, 76, 38},
};

const size_t blockSizes[4] = {16, 32, 64, 128};
const unsigned widths[3] = {16, 32, 64};

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"block size", "16-bit (paper/ours)",
                     "32-bit (paper/ours)", "64-bit (paper/ours)"});

    // Rows are cheap arithmetic, but go through the runner anyway so
    // every table binary exercises the same job plumbing.
    const Tick period = 2000; // 500 MHz
    std::vector<std::function<std::vector<std::string>()>> tasks;
    for (unsigned row = 0; row < 4; ++row) {
        tasks.push_back([row, period]() {
            std::vector<std::string> cells;
            cells.push_back(std::to_string(blockSizes[row]) + " bytes");
            for (unsigned col = 0; col < 3; ++col) {
                Tick ours = ring::snoopInterArrival(
                    widths[col], blockSizes[row], period);
                cells.push_back(fmtDouble(paperValues[row][col], 0) +
                                " / " + fmtDouble(ticksToNs(ours), 0));
            }
            return cells;
        });
    }
    for (const std::vector<std::string> &cells :
         runner::runAll(std::move(tasks), opt.jobs))
        table.addRow(cells);

    bench::emit(opt,
                "Table 3: snooping rate (ns) — minimum probe "
                "inter-arrival per dual-directory bank at 500 MHz",
                table);
    return 0;
}
