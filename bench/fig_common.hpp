/**
 * @file
 * Shared sweep machinery for the figure benches (Figures 3, 4, 6).
 *
 * The paper's hybrid methodology: one calibration per workload, then
 * analytic-model curves over processor cycle time 1..20 ns, validated
 * by a detailed simulation at the 50 MIPS (20 ns) point. Each bench
 * prints one row per (configuration, cycle) with processor
 * utilization, network utilization and mean remote-miss latency, and
 * a "sim" row for the validation point.
 */

#ifndef RINGSIM_BENCH_FIG_COMMON_HPP
#define RINGSIM_BENCH_FIG_COMMON_HPP

#include <vector>

#include "bench/common.hpp"
#include "core/system.hpp"
#include "model/bus_model.hpp"
#include "model/calibration.hpp"
#include "model/ring_model.hpp"
#include "util/table.hpp"

namespace ringsim::bench {

/** Processor cycle sweep of the figures, in ns (x axes, 1..20). */
const std::vector<double> &cycleSweepNs();

/** Columns of a figure table. */
TextTable makeFigureTable();

/** Add the model-swept series of one ring configuration. */
void addRingSeries(TextTable &table, const trace::WorkloadConfig &wl,
                   const coherence::Census &census, Tick ring_period,
                   model::RingProtocol protocol,
                   const std::string &label);

/** Add the model-swept series of one bus configuration. */
void addBusSeries(TextTable &table, const trace::WorkloadConfig &wl,
                  const coherence::Census &census, Tick bus_period,
                  const std::string &label);

/** Add the timed-simulation validation row (50 MIPS point). */
void addRingSimPoint(TextTable &table, const trace::WorkloadConfig &wl,
                     Tick ring_period, core::ProtocolKind kind,
                     const std::string &label);

/** Add the timed bus validation row (50 MIPS point). */
void addBusSimPoint(TextTable &table, const trace::WorkloadConfig &wl,
                    Tick bus_period, const std::string &label);

} // namespace ringsim::bench

#endif // RINGSIM_BENCH_FIG_COMMON_HPP
