/**
 * @file
 * Shared sweep machinery for the figure benches (Figures 3, 4, 6).
 *
 * The paper's hybrid methodology: one calibration per workload, then
 * analytic-model curves over processor cycle time 1..20 ns, validated
 * by a detailed simulation at the 50 MIPS (20 ns) point. Each bench
 * prints one row per (configuration, cycle) with processor
 * utilization, network utilization and mean remote-miss latency, and
 * a "sim" row for the validation point.
 *
 * The sweep is built declaratively: benches register series and
 * validation points against a FigureSweep, then run() executes every
 * calibration and every registered block as an independent job on the
 * ExperimentRunner and assembles the rows in registration order — so
 * the emitted table is byte-identical whatever the worker count.
 */

#ifndef RINGSIM_BENCH_FIG_COMMON_HPP
#define RINGSIM_BENCH_FIG_COMMON_HPP

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/system.hpp"
#include "model/bus_model.hpp"
#include "model/calibration.hpp"
#include "model/ring_model.hpp"
#include "util/table.hpp"

namespace ringsim::bench {

/** Processor cycle sweep of the figures, in ns (x axes, 1..20). */
const std::vector<double> &cycleSweepNs();

/** Columns of a figure table. */
TextTable makeFigureTable();

/**
 * Declarative figure sweep: register model series and sim validation
 * points, then run() them as parallel jobs.
 */
class FigureSweep
{
  public:
    explicit FigureSweep(const Options &opt) : opt_(opt) {}

    /** Register the model-swept series of one ring configuration. */
    void addRingSeries(const trace::WorkloadConfig &wl, Tick ring_period,
                       model::RingProtocol protocol,
                       const std::string &label);

    /** Register the model-swept series of one bus configuration. */
    void addBusSeries(const trace::WorkloadConfig &wl, Tick bus_period,
                      const std::string &label);

    /** Register the timed ring validation row (50 MIPS point). */
    void addRingSimPoint(const trace::WorkloadConfig &wl,
                         Tick ring_period, core::ProtocolKind kind,
                         const std::string &label);

    /** Register the timed bus validation row (50 MIPS point). */
    void addBusSimPoint(const trace::WorkloadConfig &wl, Tick bus_period,
                        const std::string &label);

    /**
     * Execute all registered blocks — calibrations first (one job per
     * distinct workload), then every series/sim block as its own job —
     * and return the assembled table. Uses opt.jobs workers.
     */
    TextTable run() const;

  private:
    enum class BlockKind { RingSeries, BusSeries, RingSim, BusSim };

    struct Block
    {
        BlockKind kind;
        trace::WorkloadConfig wl;
        Tick period = 0;
        model::RingProtocol protocol = model::RingProtocol::Snoop;
        core::ProtocolKind simKind = core::ProtocolKind::RingSnoop;
        std::string label;
        std::size_t censusSlot = 0; //!< calibration index (series only)
        bool needsCensus = false;
    };

    std::size_t censusSlotFor(const trace::WorkloadConfig &wl);

    Options opt_;
    std::vector<Block> blocks_;
    std::vector<trace::WorkloadConfig> calibrations_;
    std::vector<std::string> calibrationKeys_;
};

} // namespace ringsim::bench

#endif // RINGSIM_BENCH_FIG_COMMON_HPP
