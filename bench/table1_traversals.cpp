/**
 * @file
 * Reproduces Table 1: distribution of the number of ring traversals,
 * full-map directory vs SCI-style linked list, for remote misses and
 * invalidations of the three 16-processor SPLASH workloads.
 *
 * Paper reference values are printed beside the measured ones.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "coherence/driver.hpp"
#include "runner/experiment_runner.hpp"
#include "util/table.hpp"

using namespace ringsim;

namespace {

/** Paper Table 1 values, in % (full map / linked list). */
struct PaperRow
{
    const char *benchmark;
    double miss_full[3];  //!< 1 / 2 / 3+ traversals
    double miss_list[3];
    double inv_full[3];
    double inv_list[3];
};

const PaperRow paperRows[] = {
    {"MP3D", {70.5, 29.5, 0.0}, {67.0, 32.0, 1.0},
     {12.6, 87.4, 0.0}, {7.1, 87.7, 5.2}},
    {"WATER", {72.4, 27.6, 0.0}, {53.5, 45.9, 0.6},
     {12.6, 87.4, 0.0}, {7.2, 88.6, 4.2}},
    {"CHOLESKY", {84.5, 15.5, 0.0}, {66.5, 31.5, 1.8},
     {17.1, 82.9, 0.0}, {5.2, 75.5, 19.3}},
};

double
pct(Count n, Count total)
{
    return total ? 100.0 * static_cast<double>(n) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"benchmark", "txn", "protocol", "1 (paper)",
                     "2 (paper)", "3+ (paper)", "1 (ours)", "2 (ours)",
                     "3+ (ours)"});

    const trace::Benchmark benchmarks[] = {trace::Benchmark::MP3D,
                                           trace::Benchmark::WATER,
                                           trace::Benchmark::CHOLESKY};
    // One functional pass per benchmark, fanned out as runner jobs.
    std::vector<trace::WorkloadConfig> workloads;
    std::vector<std::function<coherence::Census()>> tasks;
    for (unsigned bi = 0; bi < 3; ++bi) {
        trace::WorkloadConfig cfg =
            trace::workloadPreset(benchmarks[bi], 16);
        opt.apply(cfg);
        workloads.push_back(cfg);
        tasks.push_back(
            [cfg]() { return coherence::runFunctional(cfg); });
    }
    std::vector<coherence::Census> censuses =
        runner::runAll(std::move(tasks), opt.jobs);

    for (unsigned bi = 0; bi < 3; ++bi) {
        const trace::WorkloadConfig &cfg = workloads[bi];
        const coherence::Census &census = censuses[bi];
        const PaperRow &paper = paperRows[bi];

        struct Line
        {
            const char *txn;
            const char *proto;
            const double *paper_vals;
            const std::array<Count, 4> *hist;
        };
        const Line lines[] = {
            {"miss", "full map", paper.miss_full,
             &census.fullMap.missTraversals},
            {"miss", "linked list", paper.miss_list,
             &census.linkedList.missTraversals},
            {"invalidate", "full map", paper.inv_full,
             &census.fullMap.invTraversals},
            {"invalidate", "linked list", paper.inv_list,
             &census.linkedList.invTraversals},
        };
        for (const Line &line : lines) {
            const auto &h = *line.hist;
            Count remote = h[1] + h[2] + h[3];
            table.addRow({cfg.displayName(), line.txn, line.proto,
                          fmtDouble(line.paper_vals[0], 1),
                          fmtDouble(line.paper_vals[1], 1),
                          fmtDouble(line.paper_vals[2], 1),
                          fmtDouble(pct(h[1], remote), 1),
                          fmtDouble(pct(h[2], remote), 1),
                          fmtDouble(pct(h[3], remote), 1)});
        }
    }

    bench::emit(opt,
                "Table 1: ring traversals per transaction (%), "
                "full map vs linked list",
                table);
    return 0;
}
