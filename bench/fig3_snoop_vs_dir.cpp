/**
 * @file
 * Reproduces Figure 3: snooping vs full-map directory on 500 MHz
 * 32-bit slotted rings — processor utilization, ring utilization and
 * average miss latency vs processor cycle time, for MP3D, WATER and
 * CHOLESKY at 8, 16 and 32 processors.
 *
 * The sweep itself lives in figures::buildFigure (shared with the
 * experiment service); this binary parses flags and prints. Pass
 * --service ENDPOINT to route the sweep through a ringsim_serve
 * daemon — the output bytes are identical either way.
 */

#include "bench/common.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);
    return bench::runFigure(figures::FigureId::Fig3, opt);
}
