/**
 * @file
 * Reproduces Figure 3: snooping vs full-map directory on 500 MHz
 * 32-bit slotted rings — processor utilization, ring utilization and
 * average miss latency vs processor cycle time, for MP3D, WATER and
 * CHOLESKY at 8, 16 and 32 processors.
 *
 * Curves come from the analytic model (calibrated once per workload);
 * a detailed simulation validates the 50 MIPS point of each curve.
 */

#include <iostream>

#include "bench/fig_common.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);
    bench::FigureSweep sweep(opt);

    for (trace::Benchmark b : {trace::Benchmark::MP3D,
                               trace::Benchmark::WATER,
                               trace::Benchmark::CHOLESKY}) {
        for (unsigned procs : {8u, 16u, 32u}) {
            trace::WorkloadConfig wl = trace::workloadPreset(b, procs);
            opt.apply(wl);

            sweep.addRingSeries(wl, 2000, model::RingProtocol::Snoop,
                                "snooping");
            sweep.addRingSeries(wl, 2000,
                                model::RingProtocol::Directory,
                                "directory");
            sweep.addRingSimPoint(wl, 2000,
                                  core::ProtocolKind::RingSnoop,
                                  "snooping");
            sweep.addRingSimPoint(wl, 2000,
                                  core::ProtocolKind::RingDirectory,
                                  "directory");
        }
    }

    TextTable table = sweep.run();
    bench::emit(opt,
                "Figure 3: snooping vs directory, 500 MHz 32-bit "
                "rings (SPLASH, 8/16/32 CPUs)",
                table);
    return 0;
}
