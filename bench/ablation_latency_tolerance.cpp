/**
 * @file
 * Latency-tolerance extension study (paper Section 6).
 *
 * The paper argues the slotted ring's large-but-stable latencies are
 * mostly *pure delay*, not contention, so latency-tolerance
 * techniques (non-blocking writes / weak ordering, lockup-free
 * caches) should pay off on the ring — while on a split-transaction
 * bus running near saturation they are "self-defeating" because the
 * overlapped traffic only deepens the queueing.
 *
 * This bench runs the timed systems with the store-buffer extension
 * (SystemConfig::storeBufferDepth): write misses and invalidations
 * retire into a K-entry buffer and overlap with execution; reads
 * still block. Expected shape: processor utilization climbs markedly
 * with K on the ring, and barely (or not at all) on the saturated
 * bus, while the bus's utilization is pinned at ~100 %.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "core/system.hpp"
#include "runner/experiment_runner.hpp"
#include "util/table.hpp"

using namespace ringsim;

namespace {

void
addRow(TextTable &table, const char *system, unsigned depth,
       const core::RunResult &r)
{
    table.addRow({system, std::to_string(depth),
                  fmtPercent(r.procUtilization, 1),
                  fmtPercent(r.networkUtilization, 1),
                  fmtDouble(r.missLatencyNs, 0),
                  fmtDouble(r.upgradeLatencyNs, 0)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    // MP3D at 16 CPUs with 200 MIPS processors: the 50 MHz bus is
    // deep in saturation, the 500 MHz ring is comfortably below it.
    trace::WorkloadConfig wl =
        trace::workloadPreset(trace::Benchmark::MP3D, 16);
    opt.apply(wl);
    const Tick cycle = nsToTicks(5.0);

    TextTable table({"system", "store buffer", "proc util %",
                     "net util %", "miss lat (ns)", "inv lat (ns)"});

    // Each (system, depth) point is one timed simulation; fan them
    // out as runner jobs and emit rows in registration order.
    struct Point
    {
        const char *system;
        bool bus;
        unsigned depth;
    };
    std::vector<Point> points;
    for (unsigned depth : {0u, 2u, 8u})
        points.push_back({"ring 500MHz / snoop", false, depth});
    for (unsigned depth : {0u, 2u, 8u})
        points.push_back({"bus 50MHz / snoop", true, depth});

    std::vector<std::function<core::RunResult()>> tasks;
    for (const Point &p : points) {
        tasks.push_back([&p, &wl, cycle]() {
            if (p.bus) {
                core::BusSystemConfig cfg =
                    core::BusSystemConfig::forProcs(16);
                cfg.common.procCycle = cycle;
                cfg.common.storeBufferDepth = p.depth;
                return core::runBusSystem(cfg, wl);
            }
            core::RingSystemConfig cfg =
                core::RingSystemConfig::forProcs(16);
            cfg.common.procCycle = cycle;
            cfg.common.storeBufferDepth = p.depth;
            return core::runRingSystem(cfg, wl,
                                       core::ProtocolKind::RingSnoop);
        });
    }
    std::vector<core::RunResult> results =
        runner::runAll(std::move(tasks), opt.jobs);

    for (std::size_t i = 0; i < points.size(); ++i)
        addRow(table, points[i].system, points[i].depth, results[i]);

    bench::emit(opt,
                "Latency tolerance (non-blocking stores) on ring vs "
                "saturated bus — MP3D 16, 200 MIPS",
                table);
    return 0;
}
