/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates:
 * event-kernel throughput, slotted-ring cycle throughput, synthetic
 * trace generation rate, functional coherence-engine rate. These are
 * performance regression guards, not paper artifacts.
 */

#include <benchmark/benchmark.h>

#include "coherence/engine.hpp"
#include "ring/network.hpp"
#include "sim/kernel.hpp"
#include "trace/generator.hpp"

using namespace ringsim;

namespace {

void
BM_KernelPostOneShot(benchmark::State &state)
{
    sim::Kernel kernel;
    Count fired = 0;
    for (auto _ : state) {
        kernel.post(kernel.now() + 1, [&fired]() { ++fired; });
        kernel.runOne();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_KernelPostOneShot);

void
BM_KernelTicker(benchmark::State &state)
{
    sim::Kernel kernel;
    Count ticks = 0;
    sim::Ticker ticker(kernel, 1000, [&ticks](Count) { ++ticks; });
    ticker.start(0);
    for (auto _ : state)
        kernel.runOne();
    ticker.stop();
    benchmark::DoNotOptimize(ticks);
}
BENCHMARK(BM_KernelTicker);

/** A client that never touches the slots (pure rotation cost). */
class IdleClient : public ring::RingClient
{
  public:
    void onSlot(ring::SlotHandle &) override {}
};

void
BM_RingCycle(benchmark::State &state)
{
    sim::Kernel kernel;
    ring::RingConfig config;
    config.nodes = static_cast<unsigned>(state.range(0));
    ring::SlotRing ring_net(kernel, config);
    IdleClient client;
    for (NodeId n = 0; n < config.nodes; ++n)
        ring_net.setClient(n, client);
    ring_net.start(0);
    for (auto _ : state)
        kernel.runOne();
    ring_net.stop();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * config.nodes);
}
BENCHMARK(BM_RingCycle)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_TraceGeneration(benchmark::State &state)
{
    trace::WorkloadConfig cfg =
        trace::workloadPreset(trace::Benchmark::MP3D, 8);
    cfg.dataRefsPerProc = ~Count(0) / 2; // never exhausts
    trace::AddressMap map = trace::makeAddressMap(cfg);
    trace::SyntheticStream stream(cfg, map, 0);
    trace::TraceRecord rec;
    for (auto _ : state) {
        stream.next(rec);
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceGeneration);

void
BM_FunctionalEngine(benchmark::State &state)
{
    trace::WorkloadConfig cfg =
        trace::workloadPreset(trace::Benchmark::MP3D, 16);
    cfg.dataRefsPerProc = ~Count(0) / 2;
    trace::AddressMap map = trace::makeAddressMap(cfg);
    coherence::EngineOptions options;
    coherence::FunctionalEngine engine(map, options);
    std::vector<std::unique_ptr<trace::SyntheticStream>> streams;
    for (NodeId p = 0; p < cfg.procs; ++p)
        streams.push_back(
            std::make_unique<trace::SyntheticStream>(cfg, map, p));
    trace::TraceRecord rec;
    NodeId p = 0;
    for (auto _ : state) {
        streams[p]->next(rec);
        engine.access(p, rec);
        p = (p + 1) % cfg.procs;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalEngine);

} // namespace

BENCHMARK_MAIN();
