/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates:
 * event-kernel throughput, slotted-ring cycle throughput, synthetic
 * trace generation rate, functional coherence-engine rate. These are
 * performance regression guards, not paper artifacts.
 *
 * Every kernel benchmark warms up explicitly before the timed loop
 * (pre-faulting the wheel buckets and one-shot pool so the steady
 * state is measured, not first-touch costs), reports throughput as
 * items_per_second (events/sec), and attaches queue-depth counters
 * (pending events and the kernel's high-water mark) so regressions in
 * either tier of the event queue are visible.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "coherence/engine.hpp"
#include "ring/network.hpp"
#include "sim/kernel.hpp"
#include "trace/generator.hpp"

using namespace ringsim;

namespace {

/** Events fired outside the timed loop to reach steady state. */
constexpr int kWarmupEvents = 10'000;

void
warmup(sim::Kernel &kernel, int events = kWarmupEvents)
{
    for (int i = 0; i < events; ++i)
        kernel.runOne();
}

void
attachQueueStats(benchmark::State &state, const sim::Kernel &kernel)
{
    const sim::KernelStats &s = kernel.stats();
    state.counters["pending"] =
        static_cast<double>(kernel.pending());
    state.counters["max_pending"] =
        static_cast<double>(s.maxPending);
    state.counters["near_frac"] =
        s.nearScheduled + s.farScheduled
            ? static_cast<double>(s.nearScheduled) /
                  static_cast<double>(s.nearScheduled + s.farScheduled)
            : 0.0;
}

void
BM_KernelPostOneShot(benchmark::State &state)
{
    sim::Kernel kernel;
    Count fired = 0;
    for (int i = 0; i < kWarmupEvents; ++i) {
        kernel.post(kernel.now() + 1, [&fired]() { ++fired; });
        kernel.runOne();
    }
    for (auto _ : state) {
        kernel.post(kernel.now() + 1, [&fired]() { ++fired; });
        kernel.runOne();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    attachQueueStats(state, kernel);
}
BENCHMARK(BM_KernelPostOneShot);

void
BM_KernelTicker(benchmark::State &state)
{
    sim::Kernel kernel;
    Count ticks = 0;
    sim::Ticker ticker(kernel, 1000, [&ticks](Count) { ++ticks; });
    ticker.start(0);
    warmup(kernel);
    for (auto _ : state)
        kernel.runOne();
    ticker.stop();
    benchmark::DoNotOptimize(ticks);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    attachQueueStats(state, kernel);
}
BENCHMARK(BM_KernelTicker);

/**
 * A timed system's steady-state event population: N periodic events
 * with slightly detuned periods (so they do not fire in lockstep),
 * the pattern the near-horizon wheel is built for.
 */
void
BM_KernelChurn(benchmark::State &state)
{
    sim::Kernel kernel;
    const unsigned depth = static_cast<unsigned>(state.range(0));
    Count fired = 0;
    std::vector<std::unique_ptr<sim::Ticker>> tickers;
    for (unsigned i = 0; i < depth; ++i) {
        tickers.push_back(std::make_unique<sim::Ticker>(
            kernel, 2000 + 37 * i, [&fired](Count) { ++fired; }));
        tickers.back()->start(i);
    }
    warmup(kernel);
    for (auto _ : state)
        kernel.runOne();
    for (auto &t : tickers)
        t->stop();
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    attachQueueStats(state, kernel);
}
BENCHMARK(BM_KernelChurn)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

/** Self-reposting one-shot chain (protocol-leg callback pattern). */
struct Chain
{
    sim::Kernel &kernel;
    Tick period;
    Count &fired;

    void arm(Tick at) {
        kernel.post(at, [this]() {
            ++fired;
            arm(kernel.now() + period);
        });
    }
};

void
BM_KernelOneShotChurn(benchmark::State &state)
{
    sim::Kernel kernel;
    const unsigned depth = static_cast<unsigned>(state.range(0));
    Count fired = 0;
    std::vector<std::unique_ptr<Chain>> chains;
    for (unsigned i = 0; i < depth; ++i) {
        chains.push_back(std::make_unique<Chain>(
            Chain{kernel, 2000 + 37 * i, fired}));
        chains.back()->arm(i);
    }
    warmup(kernel);
    for (auto _ : state)
        kernel.runOne();
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    attachQueueStats(state, kernel);
}
BENCHMARK(BM_KernelOneShotChurn)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

/**
 * Far-future scheduling: every post lands beyond the near horizon and
 * takes the heap fallback, the worst case for the two-tier queue.
 */
void
BM_KernelFarFuture(benchmark::State &state)
{
    sim::Kernel kernel;
    const Tick far_delta = 8 * tickUs; // past the ~1 µs wheel horizon
    Count fired = 0;
    std::vector<std::unique_ptr<Chain>> chains;
    for (unsigned i = 0; i < 16; ++i) {
        chains.push_back(std::make_unique<Chain>(
            Chain{kernel, far_delta + 37 * i, fired}));
        chains.back()->arm(far_delta + i);
    }
    warmup(kernel);
    for (auto _ : state)
        kernel.runOne();
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    attachQueueStats(state, kernel);
}
BENCHMARK(BM_KernelFarFuture);

/** A client that never touches the slots (pure rotation cost). */
class IdleClient : public ring::RingClient
{
  public:
    void onSlot(ring::SlotHandle &) override {}
};

void
BM_RingCycle(benchmark::State &state)
{
    sim::Kernel kernel;
    ring::RingConfig config;
    config.nodes = static_cast<unsigned>(state.range(0));
    ring::SlotRing ring_net(kernel, config);
    IdleClient client;
    for (NodeId n = 0; n < config.nodes; ++n)
        ring_net.setClient(n, client);
    ring_net.start(0);
    warmup(kernel, 1000);
    for (auto _ : state)
        kernel.runOne();
    ring_net.stop();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * config.nodes);
    attachQueueStats(state, kernel);
}
BENCHMARK(BM_RingCycle)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_TraceGeneration(benchmark::State &state)
{
    trace::WorkloadConfig cfg =
        trace::workloadPreset(trace::Benchmark::MP3D, 8);
    cfg.dataRefsPerProc = ~Count(0) / 2; // never exhausts
    trace::AddressMap map = trace::makeAddressMap(cfg);
    trace::SyntheticStream stream(cfg, map, 0);
    trace::TraceRecord rec;
    for (auto _ : state) {
        stream.next(rec);
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceGeneration);

void
BM_FunctionalEngine(benchmark::State &state)
{
    trace::WorkloadConfig cfg =
        trace::workloadPreset(trace::Benchmark::MP3D, 16);
    cfg.dataRefsPerProc = ~Count(0) / 2;
    trace::AddressMap map = trace::makeAddressMap(cfg);
    coherence::EngineOptions options;
    coherence::FunctionalEngine engine(map, options);
    std::vector<std::unique_ptr<trace::SyntheticStream>> streams;
    for (NodeId p = 0; p < cfg.procs; ++p)
        streams.push_back(
            std::make_unique<trace::SyntheticStream>(cfg, map, p));
    trace::TraceRecord rec;
    NodeId p = 0;
    for (auto _ : state) {
        streams[p]->next(rec);
        engine.access(p, rec);
        p = (p + 1) % cfg.procs;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalEngine);

} // namespace

BENCHMARK_MAIN();
