/**
 * @file
 * Reproduces Figure 4: snooping vs full-map directory on a 500 MHz
 * 32-bit slotted ring for the 64-processor workloads FFT, WEATHER and
 * SIMPLE.
 *
 * The sweep definition is figures::buildFigure(Fig4); --service
 * routes it through a ringsim_serve daemon with identical output.
 */

#include "bench/common.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);
    return bench::runFigure(figures::FigureId::Fig4, opt);
}
