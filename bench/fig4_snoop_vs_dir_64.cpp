/**
 * @file
 * Reproduces Figure 4: snooping vs full-map directory on a 500 MHz
 * 32-bit slotted ring for the 64-processor workloads FFT, WEATHER and
 * SIMPLE.
 */

#include <iostream>

#include "bench/fig_common.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);
    bench::FigureSweep sweep(opt);

    for (trace::Benchmark b : {trace::Benchmark::FFT,
                               trace::Benchmark::WEATHER,
                               trace::Benchmark::SIMPLE}) {
        trace::WorkloadConfig wl = trace::workloadPreset(b, 64);
        opt.apply(wl);

        sweep.addRingSeries(wl, 2000, model::RingProtocol::Snoop,
                            "snooping");
        sweep.addRingSeries(wl, 2000, model::RingProtocol::Directory,
                            "directory");
        sweep.addRingSimPoint(wl, 2000,
                              core::ProtocolKind::RingSnoop,
                              "snooping");
        sweep.addRingSimPoint(wl, 2000,
                              core::ProtocolKind::RingDirectory,
                              "directory");
    }

    TextTable table = sweep.run();
    bench::emit(opt,
                "Figure 4: snooping vs directory, 500 MHz 32-bit "
                "ring (FFT/WEATHER/SIMPLE, 64 CPUs)",
                table);
    return 0;
}
