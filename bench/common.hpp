/**
 * @file
 * Shared helpers for the experiment (bench) binaries.
 *
 * Every bench reproduces one table or figure of the paper: it prints
 * the paper's reference values next to ringsim's measured values, as
 * an aligned text table (default) or CSV (--csv). Common flags:
 *
 *   --refs N    data references per processor (default 120000)
 *   --seed S    master workload seed
 *   --csv       emit CSV instead of the text table
 *   --fast      quarter-length traces (quick shape check)
 *   --jobs N    worker threads for the experiment sweep (default:
 *               $RINGSIM_JOBS, else all hardware threads; 1 = serial)
 *
 * Results are independent of --jobs: every job is self-contained and
 * result slots are ordered by submission, so parallel and serial runs
 * emit byte-identical tables.
 */

#ifndef RINGSIM_BENCH_COMMON_HPP
#define RINGSIM_BENCH_COMMON_HPP

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "figures/figures.hpp"
#include "trace/workload.hpp"
#include "util/table.hpp"

namespace ringsim::bench {

/** Parsed common options. */
struct Options
{
    Count refs = 120'000;
    std::uint64_t seed = 12345;
    bool csv = false;
    bool fast = false;
    unsigned jobs = 0; //!< sweep worker threads; 0 = auto

    /**
     * Fault injection (--fault-rate R --fault-seed S --fault-stalls R):
     * rate R applies to both corruption and drops. All zero (the
     * default) leaves every bench fault-free and byte-identical to
     * builds without the fault subsystem.
     */
    fault::FaultConfig faults;

    /**
     * Experiment-service endpoint (--service tcp:PORT|unix:PATH|PATH).
     * When set, the figure benches submit their sweep to a
     * ringsim_serve daemon instead of computing locally; the daemon
     * runs the identical figures:: sweep, so the printed bytes match
     * a local run (and a warm daemon answers from its cache).
     */
    std::string service;

    /** Apply refs/seed to a workload preset. */
    void apply(trace::WorkloadConfig &cfg) const;

    /** The figure-library view of these options. */
    figures::FigureOptions figureOptions() const;
};

/** Parse the common flags; fatal()s on unknown arguments. */
Options parseOptions(int argc, char **argv);

/** Print @p table as text or CSV per @p opt, with a title line. */
void emit(const Options &opt, const std::string &title,
          const TextTable &table);

/**
 * Run figure @p id under @p opt and print the output — locally, or
 * through the daemon named by --service. Returns the process exit
 * code (a service failure is fatal(); there is no silent fallback,
 * so a benchmark run never mixes the two paths).
 */
int runFigure(figures::FigureId id, const Options &opt,
              bool fig6_cholesky = false);

} // namespace ringsim::bench

#endif // RINGSIM_BENCH_COMMON_HPP
