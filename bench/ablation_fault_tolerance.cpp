/**
 * @file
 * Fault-tolerance ablation: graceful degradation of the slotted ring
 * under injected faults.
 *
 * The paper's ring is ideal — no slot is ever lost. This sweep
 * measures how much headroom the protocols have when that assumption
 * is relaxed: corruption/drop rates from 0 (the paper's baseline)
 * through 1e-4 per occupied slot per ring cycle, on the busiest SPLASH
 * configuration (MP3D). Reported per point: the usual utilization and
 * latency columns plus the recovery counters (retries, recovered
 * transactions, fatal transactions, NACKs, watchdog timeouts).
 *
 * The rate-0 row is byte-identical to the same run without the fault
 * subsystem; the fault schedule is a pure function of --fault-seed, so
 * the whole table is independent of --jobs.
 *
 * Uses the hardened runner: a sweep point that fails or hangs marks
 * its own row instead of killing the sweep.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "core/system.hpp"
#include "runner/experiment_runner.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace ringsim;

namespace {

struct Variant
{
    trace::WorkloadConfig wl;
    std::string label;
    double faultRate;
    double stallRate;
    core::ProtocolKind kind;
};

core::RunResult
runRing(const Variant &v, const bench::Options &opt)
{
    core::RingSystemConfig cfg =
        core::RingSystemConfig::forProcs(v.wl.procs, 2000);
    cfg.common.faults = opt.faults;
    cfg.common.faults.corruptRate = v.faultRate;
    cfg.common.faults.dropRate = v.faultRate;
    cfg.common.faults.stallRate = v.stallRate;
    return core::runRingSystem(cfg, v.wl, v.kind);
}

void
addRow(TextTable &table, const Variant &v, const core::RunResult &r,
       const runner::JobReport &rep)
{
    if (rep.status != runner::JobReport::Status::Ok) {
        table.addRow({v.wl.displayName(), v.label,
                      runner::jobStatusName(rep.status), "-", "-", "-",
                      "-", "-", "-", "-"});
        return;
    }
    table.addRow({v.wl.displayName(), v.label,
                  fmtPercent(r.procUtilization, 1),
                  fmtPercent(r.networkUtilization, 1),
                  fmtDouble(r.missLatencyNs, 0),
                  std::to_string(r.faultsInjected),
                  std::to_string(r.retries),
                  std::to_string(r.recovered),
                  std::to_string(r.fatalTxns),
                  std::to_string(r.timeouts)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    TextTable table({"workload", "variant", "proc util %", "net util %",
                     "miss lat (ns)", "faults", "retries", "recovered",
                     "fatal", "timeouts"});

    std::vector<Variant> variants;
    for (core::ProtocolKind kind : {core::ProtocolKind::RingSnoop,
                                    core::ProtocolKind::RingDirectory}) {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, 16);
        opt.apply(wl);
        const char *proto =
            kind == core::ProtocolKind::RingSnoop ? "snoop" : "directory";
        variants.push_back(
            {wl, std::string(proto) + ", fault rate 0", 0.0, 0.0, kind});
        for (double rate : {1e-6, 1e-5, 1e-4}) {
            variants.push_back({wl,
                                strprintf("%s, fault rate %.0e", proto,
                                          rate),
                                rate, 0.0, kind});
        }
        variants.push_back({wl, std::string(proto) + ", stalls 1e-4",
                            0.0, 1e-4, kind});
    }

    std::vector<std::function<core::RunResult()>> tasks;
    for (const Variant &v : variants)
        tasks.push_back([&v, &opt]() { return runRing(v, opt); });

    runner::RunPolicy policy;
    policy.jobTimeout =
        runner::watchdogBudget(std::chrono::minutes(10));
    policy.maxAttempts = 2;
    runner::SweepResult<core::RunResult> sweep =
        runner::runSweep(std::move(tasks), opt.jobs, policy);

    for (std::size_t i = 0; i < variants.size(); ++i)
        addRow(table, variants[i], sweep.results[i], sweep.reports[i]);

    bench::emit(opt,
                "Fault-tolerance ablation (injected corruption, drops, "
                "stalls)",
                table);
    if (!sweep.allOk())
        std::cerr << sweep.failureSummaryJson() << "\n";
    return sweep.allOk() ? 0 : 1;
}
