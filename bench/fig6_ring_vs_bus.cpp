/**
 * @file
 * Reproduces Figure 6: 32-bit slotted rings (250 and 500 MHz, with
 * the snooping protocol) vs 64-bit split-transaction buses (50 and
 * 100 MHz) on MP3D and WATER at 8, 16 and 32 processors — processor
 * utilization, network utilization and miss latency vs processor
 * cycle time.
 *
 * Expected shapes (paper Section 4.3): the buses are competitive at
 * 8 CPUs with slow processors, then saturate as processors speed up
 * or the system grows; the rings' utilization stays below ~80 % and
 * their latencies stay stable. CHOLESKY behaves like MP3D (the paper
 * omits it for space; pass --cholesky to include it here).
 */

#include <cstring>
#include <iostream>

#include "bench/fig_common.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    // Peel off the bench-specific flag before common parsing.
    bool with_cholesky = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--cholesky") == 0) {
            with_cholesky = true;
            continue;
        }
        args.push_back(argv[i]);
    }
    bench::Options opt =
        bench::parseOptions(static_cast<int>(args.size()), args.data());

    bench::FigureSweep sweep(opt);

    std::vector<trace::Benchmark> benchmarks = {trace::Benchmark::MP3D,
                                                trace::Benchmark::WATER};
    if (with_cholesky)
        benchmarks.push_back(trace::Benchmark::CHOLESKY);

    for (trace::Benchmark b : benchmarks) {
        for (unsigned procs : {8u, 16u, 32u}) {
            trace::WorkloadConfig wl = trace::workloadPreset(b, procs);
            opt.apply(wl);

            sweep.addRingSeries(wl, 2000, model::RingProtocol::Snoop,
                                "ring 500MHz");
            sweep.addRingSeries(wl, 4000, model::RingProtocol::Snoop,
                                "ring 250MHz");
            sweep.addBusSeries(wl, 10000, "bus 100MHz");
            sweep.addBusSeries(wl, 20000, "bus 50MHz");
            sweep.addRingSimPoint(wl, 2000,
                                  core::ProtocolKind::RingSnoop,
                                  "ring 500MHz");
            sweep.addBusSimPoint(wl, 20000, "bus 50MHz");
        }
    }

    TextTable table = sweep.run();
    bench::emit(opt,
                "Figure 6: 32-bit slotted ring vs 64-bit split "
                "transaction bus (snooping)",
                table);
    return 0;
}
