/**
 * @file
 * Reproduces Figure 6: 32-bit slotted rings (250 and 500 MHz, with
 * the snooping protocol) vs 64-bit split-transaction buses (50 and
 * 100 MHz) on MP3D and WATER at 8, 16 and 32 processors — processor
 * utilization, network utilization and miss latency vs processor
 * cycle time.
 *
 * Expected shapes (paper Section 4.3): the buses are competitive at
 * 8 CPUs with slow processors, then saturate as processors speed up
 * or the system grows; the rings' utilization stays below ~80 % and
 * their latencies stay stable. CHOLESKY behaves like MP3D (the paper
 * omits it for space; pass --cholesky to include it here).
 *
 * The sweep definition is figures::buildFigure(Fig6); --service
 * routes it through a ringsim_serve daemon with identical output.
 */

#include <cstring>
#include <vector>

#include "bench/common.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    // Peel off the bench-specific flag before common parsing.
    bool with_cholesky = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--cholesky") == 0) {
            with_cholesky = true;
            continue;
        }
        args.push_back(argv[i]);
    }
    bench::Options opt =
        bench::parseOptions(static_cast<int>(args.size()), args.data());
    return bench::runFigure(figures::FigureId::Fig6, opt,
                            with_cholesky);
}
