#include "common.hpp"

#include <cstdlib>
#include <iostream>

#include "util/logging.hpp"

namespace ringsim::bench {

void
Options::apply(trace::WorkloadConfig &cfg) const
{
    cfg.dataRefsPerProc = fast ? refs / 4 : refs;
    cfg.seed = seed;
}

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--refs") {
            opt.refs = std::strtoull(need_value("--refs").c_str(),
                                     nullptr, 10);
            if (opt.refs == 0)
                fatal("--refs must be positive");
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(need_value("--seed").c_str(),
                                     nullptr, 10);
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--fast") {
            opt.fast = true;
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(need_value("--jobs").c_str(), nullptr, 10));
            if (opt.jobs == 0)
                fatal("--jobs must be positive");
        } else if (arg == "--fault-rate") {
            double rate =
                std::strtod(need_value("--fault-rate").c_str(), nullptr);
            opt.faults.corruptRate = rate;
            opt.faults.dropRate = rate;
        } else if (arg == "--fault-stalls") {
            opt.faults.stallRate = std::strtod(
                need_value("--fault-stalls").c_str(), nullptr);
        } else if (arg == "--fault-seed") {
            opt.faults.seed = std::strtoull(
                need_value("--fault-seed").c_str(), nullptr, 10);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "flags: --refs N  --seed S  --csv  --fast  "
                         "--jobs N  --fault-rate R  --fault-stalls R  "
                         "--fault-seed S\n";
            std::exit(0);
        } else {
            fatal("unknown flag '%s' (try --help)", arg.c_str());
        }
    }
    opt.faults.validate();
    return opt;
}

void
emit(const Options &opt, const std::string &title,
     const TextTable &table)
{
    if (opt.csv) {
        table.printCsv(std::cout);
        return;
    }
    std::cout << "\n== " << title << " ==\n";
    table.print(std::cout);
}

} // namespace ringsim::bench
