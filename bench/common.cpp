#include "common.hpp"

#include <cstdlib>
#include <iostream>

#include "service/client.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace ringsim::bench {

void
Options::apply(trace::WorkloadConfig &cfg) const
{
    cfg.dataRefsPerProc = fast ? refs / 4 : refs;
    cfg.seed = seed;
}

figures::FigureOptions
Options::figureOptions() const
{
    figures::FigureOptions fo;
    fo.refs = refs;
    fo.seed = seed;
    fo.fast = fast;
    fo.jobs = jobs;
    fo.faults = faults;
    return fo;
}

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--refs") {
            opt.refs = std::strtoull(need_value("--refs").c_str(),
                                     nullptr, 10);
            if (opt.refs == 0)
                fatal("--refs must be positive");
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(need_value("--seed").c_str(),
                                     nullptr, 10);
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--fast") {
            opt.fast = true;
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(need_value("--jobs").c_str(), nullptr, 10));
            if (opt.jobs == 0)
                fatal("--jobs must be positive");
        } else if (arg == "--fault-rate") {
            double rate =
                std::strtod(need_value("--fault-rate").c_str(), nullptr);
            opt.faults.corruptRate = rate;
            opt.faults.dropRate = rate;
        } else if (arg == "--fault-stalls") {
            opt.faults.stallRate = std::strtod(
                need_value("--fault-stalls").c_str(), nullptr);
        } else if (arg == "--fault-seed") {
            opt.faults.seed = std::strtoull(
                need_value("--fault-seed").c_str(), nullptr, 10);
        } else if (arg == "--service") {
            opt.service = need_value("--service");
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "flags: --refs N  --seed S  --csv  --fast  "
                         "--jobs N  --fault-rate R  --fault-stalls R  "
                         "--fault-seed S  --service ENDPOINT\n";
            std::exit(0);
        } else {
            fatal("unknown flag '%s' (try --help)", arg.c_str());
        }
    }
    opt.faults.validate();
    return opt;
}

void
emit(const Options &opt, const std::string &title,
     const TextTable &table)
{
    if (opt.csv) {
        table.printCsv(std::cout);
        return;
    }
    std::cout << "\n== " << title << " ==\n";
    table.print(std::cout);
}

namespace {

/** The sweep-job request a figure bench submits to the daemon. */
util::JsonValue
sweepRequest(figures::FigureId id, const Options &opt,
             bool fig6_cholesky)
{
    util::JsonValue job = util::JsonValue::object();
    job.set("type", util::JsonValue::string("sweep"));
    job.set("figure",
            util::JsonValue::string(figures::figureName(id)));
    job.set("csv", util::JsonValue::boolean(opt.csv));
    job.set("cholesky", util::JsonValue::boolean(fig6_cholesky));
    job.set("refs", util::JsonValue::integer(opt.refs));
    job.set("seed", util::JsonValue::integer(opt.seed));
    job.set("fast", util::JsonValue::boolean(opt.fast));
    if (opt.faults.enabled()) {
        util::JsonValue f = util::JsonValue::object();
        f.set("corrupt_rate",
              util::JsonValue::number(opt.faults.corruptRate));
        f.set("drop_rate",
              util::JsonValue::number(opt.faults.dropRate));
        f.set("stall_rate",
              util::JsonValue::number(opt.faults.stallRate));
        f.set("stall_cycles",
              util::JsonValue::integer(opt.faults.stallCycles));
        f.set("seed", util::JsonValue::integer(opt.faults.seed));
        job.set("faults", std::move(f));
    }
    util::JsonValue req = util::JsonValue::object();
    req.set("op", util::JsonValue::string("submit"));
    req.set("wait", util::JsonValue::boolean(true));
    req.set("job", std::move(job));
    return req;
}

} // namespace

int
runFigure(figures::FigureId id, const Options &opt, bool fig6_cholesky)
{
    if (opt.service.empty()) {
        std::cout << figures::renderFigure(id, opt.figureOptions(),
                                           opt.csv, fig6_cholesky);
        return 0;
    }
    service::ServiceClient client;
    std::string error;
    if (!client.tryConnect(opt.service, &error))
        fatal("--service %s: %s", opt.service.c_str(), error.c_str());
    util::JsonValue response;
    // Resilient call: a daemon under --chaos may drop or garble the
    // response; the retry must still deliver the byte-identical text.
    if (!client.tryCallResilient(sweepRequest(id, opt, fig6_cholesky),
                                 &response, &error))
        fatal("--service %s: %s", opt.service.c_str(), error.c_str());
    std::vector<std::string> errors;
    std::string state = response.getString("state", "?", &errors);
    if (state != "done")
        fatal("--service %s: job ended %s: %s", opt.service.c_str(),
              state.c_str(),
              response.getString("error", "?", &errors).c_str());
    const util::JsonValue *result = response.find("result");
    const util::JsonValue *text = result ? result->find("text")
                                         : nullptr;
    if (!text || !text->isString())
        fatal("--service %s: response carries no result text",
              opt.service.c_str());
    std::cout << text->asString();
    return 0;
}

} // namespace ringsim::bench
