/**
 * @file
 * Unit tests for whole-ring geometry, including the paper's 8-node
 * 60 ns round-trip check value.
 */

#include <gtest/gtest.h>

#include "src/ring/config.hpp"

namespace ringsim::ring {
namespace {

TEST(RingConfig, PaperEightNodeRing)
{
    RingConfig c;
    c.nodes = 8;
    c.validate();
    // 24 minimum stages, rounded up to 3 frames = 30 stages.
    EXPECT_EQ(c.totalStages(), 30u);
    EXPECT_EQ(c.framesOnRing(), 3u);
    EXPECT_EQ(c.totalSlots(), 9u);
    EXPECT_DOUBLE_EQ(ticksToNs(c.roundTripTime()), 60.0);
}

TEST(RingConfig, LargerRings)
{
    RingConfig c;
    c.nodes = 16;
    EXPECT_EQ(c.totalStages(), 50u);
    c.nodes = 32;
    EXPECT_EQ(c.totalStages(), 100u);
    c.nodes = 64;
    EXPECT_EQ(c.totalStages(), 200u);
    EXPECT_DOUBLE_EQ(ticksToNs(c.roundTripTime()), 400.0);
}

TEST(RingConfig, FrameTime)
{
    RingConfig c;
    EXPECT_DOUBLE_EQ(ticksToNs(c.frameTime()), 20.0);
    c.clockPeriod = 4000; // 250 MHz
    EXPECT_DOUBLE_EQ(ticksToNs(c.frameTime()), 40.0);
}

TEST(RingConfig, NodePositionsSpreadAndOrdered)
{
    RingConfig c;
    c.nodes = 8;
    unsigned prev = 0;
    for (NodeId n = 0; n < 8; ++n) {
        unsigned pos = c.nodePosition(n);
        EXPECT_LT(pos, c.totalStages());
        if (n > 0) {
            EXPECT_GT(pos, prev);
        }
        prev = pos;
    }
}

TEST(RingConfig, StageDistanceWraps)
{
    RingConfig c;
    c.nodes = 8;
    unsigned s = c.totalStages();
    for (NodeId a = 0; a < 8; ++a) {
        EXPECT_EQ(c.stageDistance(a, a), 0u);
        for (NodeId b = 0; b < 8; ++b) {
            if (a == b)
                continue;
            EXPECT_EQ(c.stageDistance(a, b) + c.stageDistance(b, a), s);
        }
    }
}

TEST(RingConfig, SlotsOfTypePerFrame)
{
    RingConfig c;
    c.nodes = 16;
    EXPECT_EQ(c.slotsOfType(SlotType::ProbeEven), c.framesOnRing());
    EXPECT_EQ(c.slotsOfType(SlotType::Block), c.framesOnRing());
}

TEST(RingConfigDeathTest, Validation)
{
    RingConfig c;
    c.nodes = 0;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "node");
    c = RingConfig{};
    c.clockPeriod = 0;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "clock");
}

} // namespace
} // namespace ringsim::ring
