/**
 * @file
 * Unit tests for whole-ring geometry, including the paper's 8-node
 * 60 ns round-trip check value.
 */

#include <gtest/gtest.h>

#include "src/ring/config.hpp"

namespace ringsim::ring {
namespace {

TEST(RingConfig, PaperEightNodeRing)
{
    RingConfig c;
    c.nodes = 8;
    c.validate();
    // 24 minimum stages, rounded up to 3 frames = 30 stages.
    EXPECT_EQ(c.totalStages(), 30u);
    EXPECT_EQ(c.framesOnRing(), 3u);
    EXPECT_EQ(c.totalSlots(), 9u);
    EXPECT_DOUBLE_EQ(ticksToNs(c.roundTripTime()), 60.0);
}

TEST(RingConfig, LargerRings)
{
    RingConfig c;
    c.nodes = 16;
    EXPECT_EQ(c.totalStages(), 50u);
    c.nodes = 32;
    EXPECT_EQ(c.totalStages(), 100u);
    c.nodes = 64;
    EXPECT_EQ(c.totalStages(), 200u);
    EXPECT_DOUBLE_EQ(ticksToNs(c.roundTripTime()), 400.0);
}

TEST(RingConfig, FrameTime)
{
    RingConfig c;
    EXPECT_DOUBLE_EQ(ticksToNs(c.frameTime()), 20.0);
    c.clockPeriod = 4000; // 250 MHz
    EXPECT_DOUBLE_EQ(ticksToNs(c.frameTime()), 40.0);
}

TEST(RingConfig, NodePositionsSpreadAndOrdered)
{
    RingConfig c;
    c.nodes = 8;
    unsigned prev = 0;
    for (NodeId n = 0; n < 8; ++n) {
        unsigned pos = c.nodePosition(n);
        EXPECT_LT(pos, c.totalStages());
        if (n > 0) {
            EXPECT_GT(pos, prev);
        }
        prev = pos;
    }
}

TEST(RingConfig, StageDistanceWraps)
{
    RingConfig c;
    c.nodes = 8;
    unsigned s = c.totalStages();
    for (NodeId a = 0; a < 8; ++a) {
        EXPECT_EQ(c.stageDistance(a, a), 0u);
        for (NodeId b = 0; b < 8; ++b) {
            if (a == b)
                continue;
            EXPECT_EQ(c.stageDistance(a, b) + c.stageDistance(b, a), s);
        }
    }
}

TEST(RingConfig, SlotsOfTypePerFrame)
{
    RingConfig c;
    c.nodes = 16;
    EXPECT_EQ(c.slotsOfType(SlotType::ProbeEven), c.framesOnRing());
    EXPECT_EQ(c.slotsOfType(SlotType::Block), c.framesOnRing());
}

TEST(RingConfig, CheckReturnsStructuredErrorsWithoutExiting)
{
    RingConfig c;
    c.nodes = 0;
    c.clockPeriod = 0;
    c.minStagesPerNode = 0;
    std::vector<std::string> errors = c.check();
    // All three problems reported at once, not just the first.
    EXPECT_GE(errors.size(), 3u);
    bool saw_node = false, saw_clock = false, saw_stage = false;
    for (const std::string &e : errors) {
        saw_node |= e.find("node") != std::string::npos;
        saw_clock |= e.find("clock") != std::string::npos;
        saw_stage |= e.find("stage") != std::string::npos;
    }
    EXPECT_TRUE(saw_node);
    EXPECT_TRUE(saw_clock);
    EXPECT_TRUE(saw_stage);
}

TEST(RingConfig, PaperScaleRangeIsEnforced)
{
    RingConfig c;
    c.nodes = 4; // below the paper's 8..64 evaluation range
    std::vector<std::string> errors = c.check();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("8-64"), std::string::npos) << errors[0];
    EXPECT_NE(errors[0].find("allowNonPaperScale"), std::string::npos);

    c.allowNonPaperScale = true;
    EXPECT_TRUE(c.check().empty());

    c.allowNonPaperScale = false;
    c.nodes = 128;
    EXPECT_EQ(c.check().size(), 1u);
    for (unsigned nodes : {8u, 16u, 32u, 64u}) {
        c.nodes = nodes;
        EXPECT_TRUE(c.check().empty()) << nodes << " nodes";
    }
}

TEST(RingConfig, CheckNamesFieldAndValue)
{
    auto contains = [](const std::vector<std::string> &errors,
                       const char *needle) {
        for (const std::string &e : errors)
            if (e.find(needle) != std::string::npos)
                return true;
        return false;
    };

    RingConfig c;
    c.nodes = 0;
    EXPECT_TRUE(contains(c.check(), "nodes = 0"));

    c = RingConfig{};
    c.nodes = 4;
    EXPECT_TRUE(contains(c.check(), "nodes = 4"));

    c = RingConfig{};
    c.clockPeriod = 0;
    EXPECT_TRUE(contains(c.check(), "clockPeriod = 0"));

    c = RingConfig{};
    c.minStagesPerNode = 0;
    EXPECT_TRUE(contains(c.check(), "minStagesPerNode = 0"));
}

TEST(RingConfig, ImplausibleClockRejected)
{
    RingConfig c;
    c.clockPeriod = 2'000'000; // 0.5 MHz: three orders off the paper
    std::vector<std::string> errors = c.check();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("MHz"), std::string::npos) << errors[0];
}

TEST(RingConfigDeathTest, Validation)
{
    RingConfig c;
    c.nodes = 0;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "node");
    c = RingConfig{};
    c.clockPeriod = 0;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "clock");
    c = RingConfig{};
    c.nodes = 4;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "8-64");
}

} // namespace
} // namespace ringsim::ring
