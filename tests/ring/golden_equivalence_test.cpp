/**
 * @file
 * Golden equivalence between the ring's tick paths.
 *
 * The schedule-driven tick (visitation table, idle-visit skipping,
 * quiescence fast-forward) must be observationally indistinguishable
 * from the original scan-driven tick, which is retained behind
 * RingConfig::referenceTickPath as the executable specification. Every
 * full-system measurement a paper figure plots is compared EXACTLY
 * (doubles included — the arithmetic must be the same, not merely
 * close), across both ring protocols, the paper's node counts, fault
 * injection on/off, and warm-reset vs cold-start measurement windows
 * (warmupFrac 0.3 triggers a mid-run SlotRing::resetStats(), 0 never
 * rebases).
 */

#include <gtest/gtest.h>

#include <ostream>
#include <string>
#include <vector>

#include "src/core/system.hpp"
#include "src/trace/workload.hpp"

namespace ringsim {
namespace {

struct GoldenCase
{
    core::ProtocolKind kind;
    unsigned procs;
    bool faults;
    /**
     * Warmup fraction. 0.3 (the production default) makes the run
     * call SlotRing::resetStats() mid-flight once every processor
     * clears its warmup prefix — the measurement window then starts
     * from rebased counters while the ring is hot. 0 skips the reset
     * entirely. Both must agree with the reference path exactly: the
     * rebase arithmetic (occupancy integral accrual, rotation and
     * cycle rebasing) is part of the observable behavior.
     */
    double warmup;
};

std::string
caseName(const ::testing::TestParamInfo<GoldenCase> &info)
{
    const GoldenCase &c = info.param;
    const char *proto =
        c.kind == core::ProtocolKind::RingSnoop ? "Snoop" : "Directory";
    return proto + std::to_string(c.procs) +
           (c.faults ? "FaultsOn" : "FaultsOff") +
           (c.warmup > 0 ? "WarmReset" : "ColdStart");
}

class GoldenEquivalence : public ::testing::TestWithParam<GoldenCase>
{
};

core::RunResult
runWith(const GoldenCase &c, bool reference)
{
    auto cfg = core::RingSystemConfig::forProcs(c.procs);
    cfg.ring.referenceTickPath = reference;
    cfg.common.warmupFrac = c.warmup;
    if (c.faults) {
        cfg.common.faults.corruptRate = 1e-4;
        cfg.common.faults.dropRate = 5e-5;
        cfg.common.faults.stallRate = 1e-5;
        cfg.common.faults.seed = 11;
    }
    // MP3D presets cover the 8–32 processor points; the paper's
    // 64-processor workloads are FFT/WEATHER/SIMPLE.
    trace::Benchmark b = c.procs == 64 ? trace::Benchmark::FFT
                                       : trace::Benchmark::MP3D;
    auto wl = trace::workloadPreset(b, c.procs);
    wl.dataRefsPerProc = c.procs <= 16 ? 2000 : c.procs == 32 ? 1200
                                                              : 800;
    return core::runRingSystem(cfg, wl, c.kind);
}

TEST_P(GoldenEquivalence, FastPathMatchesReferenceExactly)
{
    core::RunResult ref = runWith(GetParam(), /*reference=*/true);
    core::RunResult fast = runWith(GetParam(), /*reference=*/false);

    EXPECT_EQ(ref.procUtilization, fast.procUtilization);
    EXPECT_EQ(ref.networkUtilization, fast.networkUtilization);
    EXPECT_EQ(ref.missLatencyNs, fast.missLatencyNs);
    EXPECT_EQ(ref.missLatencyAllNs, fast.missLatencyAllNs);
    EXPECT_EQ(ref.upgradeLatencyNs, fast.upgradeLatencyNs);
    EXPECT_EQ(ref.acquireWaitNs, fast.acquireWaitNs);
    EXPECT_EQ(ref.window, fast.window);
    EXPECT_EQ(ref.localMisses, fast.localMisses);
    EXPECT_EQ(ref.cleanMiss1, fast.cleanMiss1);
    EXPECT_EQ(ref.dirtyMiss1, fast.dirtyMiss1);
    EXPECT_EQ(ref.miss2, fast.miss2);
    EXPECT_EQ(ref.upgrades, fast.upgrades);
    EXPECT_EQ(ref.faultsInjected, fast.faultsInjected);
    EXPECT_EQ(ref.retries, fast.retries);
    EXPECT_EQ(ref.recovered, fast.recovered);
    EXPECT_EQ(ref.fatalTxns, fast.fatalTxns);
    EXPECT_EQ(ref.nacks, fast.nacks);
    EXPECT_EQ(ref.timeouts, fast.timeouts);
}

std::vector<GoldenCase>
allCases()
{
    std::vector<GoldenCase> cases;
    for (auto kind : {core::ProtocolKind::RingSnoop,
                      core::ProtocolKind::RingDirectory})
        for (unsigned procs : {8u, 16u, 32u, 64u})
            for (bool faults : {false, true})
                for (double warmup : {0.3, 0.0})
                    cases.push_back({kind, procs, faults, warmup});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(SnoopAndDirectory, GoldenEquivalence,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace ringsim
