/**
 * @file
 * Golden equivalence between the ring's tick paths.
 *
 * The schedule-driven tick (visitation table, idle-visit skipping,
 * quiescence fast-forward) must be observationally indistinguishable
 * from the original scan-driven tick, which is retained behind
 * RingConfig::referenceTickPath as the executable specification. Every
 * full-system measurement a paper figure plots is compared EXACTLY
 * (doubles included — the arithmetic must be the same, not merely
 * close), across both ring protocols, the paper's node counts, and
 * fault injection on/off.
 */

#include <gtest/gtest.h>

#include <ostream>
#include <string>

#include "src/core/system.hpp"
#include "src/trace/workload.hpp"

namespace ringsim {
namespace {

struct GoldenCase
{
    core::ProtocolKind kind;
    unsigned procs;
    bool faults;
};

std::string
caseName(const ::testing::TestParamInfo<GoldenCase> &info)
{
    const GoldenCase &c = info.param;
    const char *proto =
        c.kind == core::ProtocolKind::RingSnoop ? "Snoop" : "Directory";
    return proto + std::to_string(c.procs) +
           (c.faults ? "FaultsOn" : "FaultsOff");
}

class GoldenEquivalence : public ::testing::TestWithParam<GoldenCase>
{
};

core::RunResult
runWith(const GoldenCase &c, bool reference)
{
    auto cfg = core::RingSystemConfig::forProcs(c.procs);
    cfg.ring.referenceTickPath = reference;
    if (c.faults) {
        cfg.common.faults.corruptRate = 1e-4;
        cfg.common.faults.dropRate = 5e-5;
        cfg.common.faults.stallRate = 1e-5;
        cfg.common.faults.seed = 11;
    }
    // MP3D presets cover the 8–32 processor points; the paper's
    // 64-processor workloads are FFT/WEATHER/SIMPLE.
    trace::Benchmark b = c.procs == 64 ? trace::Benchmark::FFT
                                       : trace::Benchmark::MP3D;
    auto wl = trace::workloadPreset(b, c.procs);
    wl.dataRefsPerProc = c.procs <= 16 ? 2000 : c.procs == 32 ? 1200
                                                              : 800;
    return core::runRingSystem(cfg, wl, c.kind);
}

TEST_P(GoldenEquivalence, FastPathMatchesReferenceExactly)
{
    core::RunResult ref = runWith(GetParam(), /*reference=*/true);
    core::RunResult fast = runWith(GetParam(), /*reference=*/false);

    EXPECT_EQ(ref.procUtilization, fast.procUtilization);
    EXPECT_EQ(ref.networkUtilization, fast.networkUtilization);
    EXPECT_EQ(ref.missLatencyNs, fast.missLatencyNs);
    EXPECT_EQ(ref.missLatencyAllNs, fast.missLatencyAllNs);
    EXPECT_EQ(ref.upgradeLatencyNs, fast.upgradeLatencyNs);
    EXPECT_EQ(ref.acquireWaitNs, fast.acquireWaitNs);
    EXPECT_EQ(ref.window, fast.window);
    EXPECT_EQ(ref.localMisses, fast.localMisses);
    EXPECT_EQ(ref.cleanMiss1, fast.cleanMiss1);
    EXPECT_EQ(ref.dirtyMiss1, fast.dirtyMiss1);
    EXPECT_EQ(ref.miss2, fast.miss2);
    EXPECT_EQ(ref.upgrades, fast.upgrades);
    EXPECT_EQ(ref.faultsInjected, fast.faultsInjected);
    EXPECT_EQ(ref.retries, fast.retries);
    EXPECT_EQ(ref.recovered, fast.recovered);
    EXPECT_EQ(ref.fatalTxns, fast.fatalTxns);
    EXPECT_EQ(ref.nacks, fast.nacks);
    EXPECT_EQ(ref.timeouts, fast.timeouts);
}

INSTANTIATE_TEST_SUITE_P(
    SnoopAndDirectory, GoldenEquivalence,
    ::testing::Values(
        GoldenCase{core::ProtocolKind::RingSnoop, 8, false},
        GoldenCase{core::ProtocolKind::RingSnoop, 16, false},
        GoldenCase{core::ProtocolKind::RingSnoop, 32, false},
        GoldenCase{core::ProtocolKind::RingSnoop, 64, false},
        GoldenCase{core::ProtocolKind::RingSnoop, 8, true},
        GoldenCase{core::ProtocolKind::RingSnoop, 16, true},
        GoldenCase{core::ProtocolKind::RingSnoop, 32, true},
        GoldenCase{core::ProtocolKind::RingSnoop, 64, true},
        GoldenCase{core::ProtocolKind::RingDirectory, 8, false},
        GoldenCase{core::ProtocolKind::RingDirectory, 16, false},
        GoldenCase{core::ProtocolKind::RingDirectory, 32, false},
        GoldenCase{core::ProtocolKind::RingDirectory, 64, false},
        GoldenCase{core::ProtocolKind::RingDirectory, 8, true},
        GoldenCase{core::ProtocolKind::RingDirectory, 16, true},
        GoldenCase{core::ProtocolKind::RingDirectory, 32, true},
        GoldenCase{core::ProtocolKind::RingDirectory, 64, true}),
    caseName);

} // namespace
} // namespace ringsim
