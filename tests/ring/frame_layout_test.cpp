/**
 * @file
 * Unit tests for frame geometry, including the full Table 3 matrix.
 */

#include <gtest/gtest.h>

#include "src/ring/frame_layout.hpp"

namespace ringsim::ring {
namespace {

TEST(FrameLayout, PaperDefaultIsTenStages)
{
    FrameLayout f; // 32-bit, 16-byte blocks
    f.validate();
    EXPECT_EQ(f.probeStages(), 2u);
    EXPECT_EQ(f.blockSlotStages(), 6u); // 2 header + 4 data
    EXPECT_EQ(f.frameStages(), 10u);
}

TEST(FrameLayout, SlotOffsets)
{
    FrameLayout f;
    EXPECT_EQ(f.slotOffset(0), 0u);
    EXPECT_EQ(f.slotOffset(1), 2u);
    EXPECT_EQ(f.slotOffset(2), 4u);
}

TEST(FrameLayout, SlotTypes)
{
    EXPECT_EQ(FrameLayout::slotTypeAt(0), SlotType::ProbeEven);
    EXPECT_EQ(FrameLayout::slotTypeAt(1), SlotType::ProbeOdd);
    EXPECT_EQ(FrameLayout::slotTypeAt(2), SlotType::Block);
}

TEST(FrameLayout, SlotStagesByType)
{
    FrameLayout f;
    EXPECT_EQ(f.slotStages(SlotType::ProbeEven), 2u);
    EXPECT_EQ(f.slotStages(SlotType::ProbeOdd), 2u);
    EXPECT_EQ(f.slotStages(SlotType::Block), 6u);
}

TEST(FrameLayout, WiderLinksShrinkFrames)
{
    FrameLayout f;
    f.linkBits = 64;
    EXPECT_EQ(f.probeStages(), 1u);
    EXPECT_EQ(f.blockSlotStages(), 3u);
    EXPECT_EQ(f.frameStages(), 5u);
}

struct Table3Case
{
    unsigned linkBits;
    size_t blockBytes;
    double paperNs;
};

class Table3 : public ::testing::TestWithParam<Table3Case>
{
};

TEST_P(Table3, SnoopInterArrivalMatchesPaper)
{
    const Table3Case &c = GetParam();
    Tick t = snoopInterArrival(c.linkBits, c.blockBytes, 2000);
    EXPECT_DOUBLE_EQ(ticksToNs(t), c.paperNs);
}

INSTANTIATE_TEST_SUITE_P(
    PaperMatrix, Table3,
    ::testing::Values(Table3Case{16, 16, 40}, Table3Case{32, 16, 20},
                      Table3Case{64, 16, 10}, Table3Case{16, 32, 56},
                      Table3Case{32, 32, 28}, Table3Case{64, 32, 14},
                      Table3Case{16, 64, 88}, Table3Case{32, 64, 44},
                      Table3Case{64, 64, 22}, Table3Case{16, 128, 152},
                      Table3Case{32, 128, 76},
                      Table3Case{64, 128, 38}));

TEST(FrameLayoutDeathTest, BadWidthFatal)
{
    FrameLayout f;
    f.linkBits = 12;
    EXPECT_EXIT(f.validate(), testing::ExitedWithCode(1), "multiple");
}

TEST(FrameLayout, BlockShiftIsLog2ForPowersOfTwo)
{
    FrameLayout f;
    f.blockBytes = 1;
    EXPECT_EQ(f.blockShift(), 0);
    f.blockBytes = 8;
    EXPECT_EQ(f.blockShift(), 3);
    f.blockBytes = 16;
    EXPECT_EQ(f.blockShift(), 4);
    f.blockBytes = 32;
    EXPECT_EQ(f.blockShift(), 5);
    f.blockBytes = 128;
    EXPECT_EQ(f.blockShift(), 7);
}

TEST(FrameLayout, BlockShiftRejectsNonPowersOfTwo)
{
    FrameLayout f;
    f.blockBytes = 0;
    EXPECT_EQ(f.blockShift(), -1);
    f.blockBytes = 24;
    EXPECT_EQ(f.blockShift(), -1);
    f.blockBytes = 48;
    EXPECT_EQ(f.blockShift(), -1);
    f.blockBytes = 100;
    EXPECT_EQ(f.blockShift(), -1);
}

TEST(FrameLayout, ProbeParityShiftMatchesDivide)
{
    // SlotRing::probeTypeFor picks the probe parity with the cached
    // shift on the slot-insert hot path; the divide remains the
    // specification (and the fallback for non-power-of-two layouts).
    // Pin their agreement across every Table 3 block size and an
    // address sweep that crosses block boundaries, both parities, and
    // the high bits.
    for (size_t block_bytes : {16u, 32u, 64u, 128u}) {
        FrameLayout f;
        f.blockBytes = block_bytes;
        int shift = f.blockShift();
        ASSERT_GE(shift, 0) << "block size " << block_bytes;
        std::vector<Addr> addrs;
        for (Addr a = 0; a < 4 * 128; ++a)
            addrs.push_back(a);
        for (Addr a : {Addr{0xdeadbeef}, Addr{0x7fffffffffffffff},
                       Addr{1} << 40, (Addr{1} << 40) + block_bytes})
            addrs.push_back(a);
        for (Addr addr : addrs) {
            Addr by_shift = addr >> static_cast<unsigned>(shift);
            Addr by_divide = addr / block_bytes;
            EXPECT_EQ(by_shift % 2, by_divide % 2)
                << "block " << block_bytes << " addr " << addr;
        }
    }
}

TEST(FrameLayout, SlotTypeNames)
{
    EXPECT_STREQ(slotTypeName(SlotType::ProbeEven), "probe-even");
    EXPECT_STREQ(slotTypeName(SlotType::Block), "block");
}

} // namespace
} // namespace ringsim::ring
