/**
 * @file
 * Unit tests for the cycle-level slotted ring: delivery timing,
 * snooping visibility, parity rules, anti-starvation, occupancy.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <tuple>
#include <vector>

#include "src/ring/network.hpp"

namespace ringsim::ring {
namespace {

/** Scriptable client: calls the hook on every slot visit. */
class ScriptClient : public RingClient
{
  public:
    using Hook = std::function<void(SlotHandle &)>;

    void onSlot(SlotHandle &slot) override
    {
        if (hook)
            hook(slot);
    }

    Hook hook;
};

class RingNetworkTest : public ::testing::Test
{
  protected:
    RingNetworkTest()
    {
        config_.nodes = 8;
        ring_ = std::make_unique<SlotRing>(kernel_, config_);
        clients_.resize(8);
        for (NodeId n = 0; n < 8; ++n)
            ring_->setClient(n, clients_[n]);
    }

    sim::Kernel kernel_;
    RingConfig config_;
    std::unique_ptr<SlotRing> ring_;
    std::vector<ScriptClient> clients_;
};

TEST_F(RingNetworkTest, EveryNodeSeesEverySlotOncePerRotation)
{
    std::vector<Count> seen(8, 0);
    for (NodeId n = 0; n < 8; ++n)
        clients_[n].hook = [&seen, n](SlotHandle &) { ++seen[n]; };
    ring_->start(0);
    // One full rotation = totalStages cycles: every node sees each of
    // the 9 slots exactly once.
    kernel_.run(static_cast<Tick>(config_.totalStages() - 1) *
                config_.clockPeriod);
    ring_->stop();
    for (NodeId n = 0; n < 8; ++n)
        EXPECT_EQ(seen[n], ring_->config().totalSlots()) << "node " << n;
}

TEST_F(RingNetworkTest, MessageDeliveredAfterStageDistance)
{
    // Node 1 sends a block message to node 5; the delivery time
    // matches the stage distance between them.
    Tick inserted = 0;
    Tick delivered = 0;
    clients_[1].hook = [&](SlotHandle &slot) {
        if (inserted == 0 && slot.type() == SlotType::Block) {
            RingMessage msg;
            msg.src = 1;
            msg.dst = 5;
            msg.addr = 0x100;
            slot.insert(msg);
            inserted = kernel_.now();
        }
    };
    clients_[5].hook = [&](SlotHandle &slot) {
        if (slot.occupied() && slot.message().dst == 5) {
            slot.remove();
            delivered = kernel_.now();
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(500));
    ring_->stop();
    ASSERT_GT(inserted, 0u);
    ASSERT_GT(delivered, 0u);
    Tick expect = static_cast<Tick>(config_.stageDistance(1, 5)) *
                  config_.clockPeriod;
    EXPECT_EQ(delivered - inserted, expect);
}

TEST_F(RingNetworkTest, BroadcastProbeSnoopedByAllAndReturns)
{
    std::vector<int> snooped(8, 0);
    bool returned = false;
    Tick inserted = 0;
    Tick came_back = 0;
    for (NodeId n = 0; n < 8; ++n) {
        clients_[n].hook = [&, n](SlotHandle &slot) {
            if (n == 2 && !inserted &&
                slot.type() == SlotType::ProbeEven) {
                RingMessage msg;
                msg.src = 2;
                msg.dst = broadcastNode;
                msg.addr = 0x200; // even block
                slot.insert(msg);
                inserted = kernel_.now();
                return;
            }
            if (slot.occupied() &&
                slot.message().dst == broadcastNode) {
                if (slot.message().src == n) {
                    slot.remove();
                    returned = true;
                    came_back = kernel_.now();
                } else {
                    ++snooped[n];
                }
            }
        };
    }
    ring_->start(0);
    kernel_.run(nsToTicks(500));
    ring_->stop();
    ASSERT_TRUE(returned);
    EXPECT_EQ(came_back - inserted,
              static_cast<Tick>(config_.totalStages()) *
                  config_.clockPeriod)
        << "probe removed after exactly one traversal";
    for (NodeId n = 0; n < 8; ++n) {
        if (n == 2)
            continue;
        EXPECT_EQ(snooped[n], 1) << "node " << n;
    }
}

TEST_F(RingNetworkTest, ParityRuleEnforced)
{
    // An odd-block probe cannot enter an even probe slot.
    bool tried = false;
    clients_[0].hook = [&](SlotHandle &slot) {
        if (slot.type() == SlotType::ProbeEven && !tried) {
            tried = true;
            EXPECT_FALSE(slot.canInsert(0x30)); // block 3: odd
            EXPECT_TRUE(slot.canInsert(0x20));  // block 2: even
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(100));
    ring_->stop();
    EXPECT_TRUE(tried);
}

TEST_F(RingNetworkTest, AntiStarvationBlocksImmediateReuse)
{
    // Section 5.0: a node may not reuse a slot it just freed.
    bool checked = false;
    clients_[3].hook = [&](SlotHandle &slot) {
        if (slot.type() != SlotType::Block)
            return;
        if (!slot.occupied()) {
            if (checked)
                return;
            RingMessage msg;
            msg.src = 3;
            msg.dst = 3; // to self: comes back after a full loop
            msg.addr = 0x100;
            if (slot.canInsert(msg.addr))
                slot.insert(msg);
            return;
        }
        if (slot.message().dst == 3 && !checked) {
            slot.remove();
            EXPECT_FALSE(slot.canInsert(0x100))
                << "slot just freed by this node";
            checked = true;
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(1000));
    ring_->stop();
    EXPECT_TRUE(checked);
}

TEST_F(RingNetworkTest, OccupancyTracksInsertions)
{
    // Keep one block slot occupied forever: block occupancy tends to
    // 1/framesOnRing.
    bool inserted = false;
    clients_[0].hook = [&](SlotHandle &slot) {
        if (!inserted && slot.type() == SlotType::Block) {
            RingMessage msg;
            msg.src = 0;
            msg.dst = invalidNode; // nobody removes it
            msg.addr = 0;
            slot.insert(msg);
            inserted = true;
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(10000));
    ring_->stop();
    EXPECT_NEAR(ring_->occupancy(SlotType::Block),
                1.0 / config_.framesOnRing(), 0.05);
    EXPECT_NEAR(ring_->totalOccupancy(),
                1.0 / (3.0 * config_.framesOnRing()), 0.05);
    EXPECT_EQ(ring_->inserted(SlotType::Block), 1u);
    EXPECT_EQ(ring_->removed(SlotType::Block), 0u);
}

TEST_F(RingNetworkTest, ResetStatsZeroes)
{
    ring_->start(0);
    kernel_.run(nsToTicks(100));
    EXPECT_GT(ring_->cycles(), 0u);
    ring_->resetStats();
    EXPECT_EQ(ring_->cycles(), 0u);
    EXPECT_EQ(ring_->totalOccupancy(), 0.0);
    ring_->stop();
}

TEST_F(RingNetworkTest, ProbeTypeParity)
{
    EXPECT_EQ(ring_->probeTypeFor(0x00), SlotType::ProbeEven);
    EXPECT_EQ(ring_->probeTypeFor(0x10), SlotType::ProbeOdd);
    EXPECT_EQ(ring_->probeTypeFor(0x1f), SlotType::ProbeOdd);
    EXPECT_EQ(ring_->probeTypeFor(0x20), SlotType::ProbeEven);
}

TEST_F(RingNetworkTest, SlotTailTimes)
{
    EXPECT_EQ(ring_->slotTailTime(SlotType::ProbeEven),
              1u * config_.clockPeriod);
    EXPECT_EQ(ring_->slotTailTime(SlotType::Block),
              5u * config_.clockPeriod);
}

TEST(RingNetwork, AntiStarvationOffAllowsImmediateReuse)
{
    sim::Kernel kernel;
    RingConfig config;
    config.nodes = 8;
    config.antiStarvation = false;
    SlotRing ring_net(kernel, config);
    std::vector<ScriptClient> clients(8);
    for (NodeId n = 0; n < 8; ++n)
        ring_net.setClient(n, clients[n]);

    bool checked = false;
    clients[3].hook = [&](SlotHandle &slot) {
        if (slot.type() != SlotType::Block)
            return;
        if (!slot.occupied()) {
            if (checked)
                return;
            RingMessage msg;
            msg.src = 3;
            msg.dst = 3;
            msg.addr = 0x100;
            if (slot.canInsert(msg.addr))
                slot.insert(msg);
            return;
        }
        if (slot.message().dst == 3 && !checked) {
            slot.remove();
            EXPECT_TRUE(slot.canInsert(0x100))
                << "rule off: freed slot reusable in the same visit";
            checked = true;
        }
    };
    ring_net.start(0);
    kernel.run(nsToTicks(1000));
    ring_net.stop();
    EXPECT_TRUE(checked);
}

TEST_F(RingNetworkTest, ResetStatsMidRunOccupancy)
{
    // Pin the warm-up-reset semantics: after a mid-run resetStats()
    // the occupancy denominators restart, so a block slot that stays
    // occupied across the reset accounts for EXACTLY one slot's worth
    // of occupancy over the post-reset window.
    bool inserted = false;
    clients_[0].hook = [&](SlotHandle &slot) {
        if (!inserted && slot.type() == SlotType::Block) {
            RingMessage msg;
            msg.src = 0;
            msg.dst = invalidNode; // never removed
            msg.addr = 0;
            slot.insert(msg);
            inserted = true;
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(100));
    ASSERT_TRUE(inserted);
    ASSERT_GT(ring_->inserted(SlotType::Block), 0u);
    ring_->resetStats();
    EXPECT_EQ(ring_->cycles(), 0u);
    EXPECT_EQ(ring_->inserted(SlotType::Block), 0u);

    // Run exactly 200 more ring cycles; the message keeps circulating
    // so every post-reset cycle sees exactly one occupied block slot.
    kernel_.run(kernel_.now() + 200 * config_.clockPeriod);
    ring_->stop();
    EXPECT_EQ(ring_->cycles(), 200u);
    EXPECT_DOUBLE_EQ(ring_->occupancy(SlotType::Block),
                     1.0 / config_.framesOnRing());
    EXPECT_DOUBLE_EQ(ring_->totalOccupancy(),
                     1.0 / (3.0 * config_.framesOnRing()));
    EXPECT_EQ(ring_->inserted(SlotType::Block), 0u)
        << "pre-reset insertion must not leak into the new window";
}

TEST_F(RingNetworkTest, IdleSkipSuppressesEmptyVisitsUntilPending)
{
    // Track node 6's visits: once it opts into idle skipping it is
    // only visited for occupied slots, until notifyPending restores
    // empty-slot offers (so it can insert).
    Count visits = 0;
    Count empty_visits = 0;
    clients_[6].hook = [&](SlotHandle &slot) {
        ++visits;
        if (!slot.occupied())
            ++empty_visits;
    };
    ring_->enableIdleSkip(6);
    ring_->start(0);
    kernel_.run(nsToTicks(100));
    EXPECT_EQ(visits, 0u) << "empty ring, no pending: never visited";

    ring_->notifyPending(6);
    kernel_.run(kernel_.now() + 10 * config_.clockPeriod);
    EXPECT_GT(empty_visits, 0u) << "pending node is offered empty slots";

    Count at_clear = visits;
    ring_->clearPending(6);
    kernel_.run(kernel_.now() + 10 * config_.clockPeriod);
    ring_->stop();
    EXPECT_EQ(visits, at_clear) << "clearPending stops the offers";
}

TEST_F(RingNetworkTest, SetClientRevokesIdleSkip)
{
    ring_->enableIdleSkip(4);
    ring_->setClient(4, clients_[4]);
    Count visits = 0;
    clients_[4].hook = [&](SlotHandle &) { ++visits; };
    ring_->start(0);
    kernel_.run(nsToTicks(100));
    ring_->stop();
    EXPECT_GT(visits, 0u)
        << "a freshly attached client has not opted in";
}

TEST_F(RingNetworkTest, QuiescentRingFastForwardsInsideRunBound)
{
    // Every node tracked + empty ring: the run degenerates to O(1)
    // kernel events while the cycle count still covers the full span.
    for (NodeId n = 0; n < 8; ++n)
        ring_->enableIdleSkip(n);
    ring_->start(0);
    Count before = kernel_.stats().processed;
    kernel_.run(2000 * config_.clockPeriod);
    ring_->stop();
    EXPECT_EQ(ring_->cycles(), 2001u)
        << "ticks at 0..2000 periods inclusive, fast-forwarded or not";
    EXPECT_LT(kernel_.stats().processed - before, 10u)
        << "the idle span must cost O(1) events, not one per cycle";
}

TEST_F(RingNetworkTest, FastForwardWakesExactlyForPostedWork)
{
    // A quiescent ring fast-forwards toward a foreign event, then
    // resumes cycle-by-cycle so the woken node can insert at exactly
    // the time the cycle-accurate path would have given it.
    for (NodeId n = 0; n < 8; ++n)
        ring_->enableIdleSkip(n);
    bool want_insert = false;
    Tick inserted = 0;
    Tick delivered = 0;
    clients_[2].hook = [&](SlotHandle &slot) {
        if (slot.occupied() && slot.message().dst == 2) {
            slot.remove();
            delivered = kernel_.now();
            return;
        }
        if (want_insert && !slot.occupied() &&
            slot.type() == SlotType::Block) {
            RingMessage msg;
            msg.src = 2;
            msg.dst = 2; // full loop back to the sender
            msg.addr = 0x100;
            slot.insert(msg);
            inserted = kernel_.now();
            want_insert = false;
            ring_->clearPending(2);
        }
    };
    Tick wake = 51'000; // off the tick grid on purpose
    kernel_.post(wake, [&]() {
        want_insert = true;
        ring_->notifyPending(2);
    });
    ring_->start(0);
    kernel_.run(nsToTicks(2000));
    ring_->stop();
    ASSERT_GT(inserted, 0u);
    ASSERT_GT(delivered, 0u);
    EXPECT_GE(inserted, wake);
    // The cycle-accurate ring would offer node 2 the next block slot
    // within one frame time of the wake.
    EXPECT_LE(inserted, wake + config_.frameTime());
    EXPECT_EQ(delivered - inserted,
              static_cast<Tick>(config_.totalStages()) *
                  config_.clockPeriod)
        << "self-removal after exactly one traversal";
}

TEST_F(RingNetworkTest, ReferencePathMatchesFastPathCycleForCycle)
{
    // Ring-level golden check (the full-system one lives in
    // golden_equivalence_test.cpp): a scripted bounce between two
    // pending-tracked nodes produces identical timing and statistics
    // under both tick paths.
    auto run_one = [](bool reference) {
        sim::Kernel kernel;
        RingConfig config;
        config.nodes = 8;
        config.referenceTickPath = reference;
        SlotRing ring_net(kernel, config);
        std::vector<ScriptClient> clients(8);
        // Nodes 1 and 5 volley a block message back and forth with an
        // off-grid think time between volleys; everyone idle-skips, so
        // the fast path interleaves skipped visits and fast-forwards
        // with real work.
        std::vector<Tick> deliveries;
        std::array<bool, 8> want_insert{};
        int volleys = 5;
        for (NodeId n = 0; n < 8; ++n) {
            ring_net.setClient(n, clients[n]);
            ring_net.enableIdleSkip(n);
            clients[n].hook = [&, n](SlotHandle &slot) {
                if (slot.occupied()) {
                    if (slot.message().dst != n)
                        return;
                    slot.remove();
                    deliveries.push_back(kernel.now());
                    if (--volleys > 0) {
                        kernel.postIn(7'777, [&, n]() {
                            want_insert[n] = true;
                            ring_net.notifyPending(n);
                        });
                    }
                    return;
                }
                if (want_insert[n] &&
                    slot.type() == SlotType::Block &&
                    slot.canInsert(0x100)) {
                    RingMessage msg;
                    msg.src = n;
                    msg.dst = n == 5 ? NodeId(1) : NodeId(5);
                    msg.addr = 0x100;
                    slot.insert(msg);
                    want_insert[n] = false;
                    ring_net.clearPending(n);
                }
            };
        }
        want_insert[1] = true;
        ring_net.notifyPending(1);
        ring_net.start(0);
        kernel.run(nsToTicks(20'000));
        ring_net.stop();
        return std::tuple<std::vector<Tick>, Count, double>(
            deliveries, ring_net.cycles(), ring_net.totalOccupancy());
    };
    auto ref = run_one(true);
    auto fast = run_one(false);
    EXPECT_EQ(std::get<0>(ref), std::get<0>(fast));
    EXPECT_EQ(std::get<1>(ref), std::get<1>(fast));
    EXPECT_EQ(std::get<2>(ref), std::get<2>(fast));
    EXPECT_EQ(std::get<0>(ref).size(), 5u);
}

TEST(RingNetworkDeathTest, StartWithoutClientsPanics)
{
    sim::Kernel kernel;
    RingConfig config;
    SlotRing ring_net(kernel, config);
    EXPECT_DEATH(ring_net.start(0), "no client");
}

} // namespace
} // namespace ringsim::ring
