/**
 * @file
 * Unit tests for the cycle-level slotted ring: delivery timing,
 * snooping visibility, parity rules, anti-starvation, occupancy.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/ring/network.hpp"

namespace ringsim::ring {
namespace {

/** Scriptable client: calls the hook on every slot visit. */
class ScriptClient : public RingClient
{
  public:
    using Hook = std::function<void(SlotHandle &)>;

    void onSlot(SlotHandle &slot) override
    {
        if (hook)
            hook(slot);
    }

    Hook hook;
};

class RingNetworkTest : public ::testing::Test
{
  protected:
    RingNetworkTest()
    {
        config_.nodes = 8;
        ring_ = std::make_unique<SlotRing>(kernel_, config_);
        clients_.resize(8);
        for (NodeId n = 0; n < 8; ++n)
            ring_->setClient(n, clients_[n]);
    }

    sim::Kernel kernel_;
    RingConfig config_;
    std::unique_ptr<SlotRing> ring_;
    std::vector<ScriptClient> clients_;
};

TEST_F(RingNetworkTest, EveryNodeSeesEverySlotOncePerRotation)
{
    std::vector<Count> seen(8, 0);
    for (NodeId n = 0; n < 8; ++n)
        clients_[n].hook = [&seen, n](SlotHandle &) { ++seen[n]; };
    ring_->start(0);
    // One full rotation = totalStages cycles: every node sees each of
    // the 9 slots exactly once.
    kernel_.run(static_cast<Tick>(config_.totalStages() - 1) *
                config_.clockPeriod);
    ring_->stop();
    for (NodeId n = 0; n < 8; ++n)
        EXPECT_EQ(seen[n], ring_->config().totalSlots()) << "node " << n;
}

TEST_F(RingNetworkTest, MessageDeliveredAfterStageDistance)
{
    // Node 1 sends a block message to node 5; the delivery time
    // matches the stage distance between them.
    Tick inserted = 0;
    Tick delivered = 0;
    clients_[1].hook = [&](SlotHandle &slot) {
        if (inserted == 0 && slot.type() == SlotType::Block) {
            RingMessage msg;
            msg.src = 1;
            msg.dst = 5;
            msg.addr = 0x100;
            slot.insert(msg);
            inserted = kernel_.now();
        }
    };
    clients_[5].hook = [&](SlotHandle &slot) {
        if (slot.occupied() && slot.message().dst == 5) {
            slot.remove();
            delivered = kernel_.now();
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(500));
    ring_->stop();
    ASSERT_GT(inserted, 0u);
    ASSERT_GT(delivered, 0u);
    Tick expect = static_cast<Tick>(config_.stageDistance(1, 5)) *
                  config_.clockPeriod;
    EXPECT_EQ(delivered - inserted, expect);
}

TEST_F(RingNetworkTest, BroadcastProbeSnoopedByAllAndReturns)
{
    std::vector<int> snooped(8, 0);
    bool returned = false;
    Tick inserted = 0;
    Tick came_back = 0;
    for (NodeId n = 0; n < 8; ++n) {
        clients_[n].hook = [&, n](SlotHandle &slot) {
            if (n == 2 && !inserted &&
                slot.type() == SlotType::ProbeEven) {
                RingMessage msg;
                msg.src = 2;
                msg.dst = broadcastNode;
                msg.addr = 0x200; // even block
                slot.insert(msg);
                inserted = kernel_.now();
                return;
            }
            if (slot.occupied() &&
                slot.message().dst == broadcastNode) {
                if (slot.message().src == n) {
                    slot.remove();
                    returned = true;
                    came_back = kernel_.now();
                } else {
                    ++snooped[n];
                }
            }
        };
    }
    ring_->start(0);
    kernel_.run(nsToTicks(500));
    ring_->stop();
    ASSERT_TRUE(returned);
    EXPECT_EQ(came_back - inserted,
              static_cast<Tick>(config_.totalStages()) *
                  config_.clockPeriod)
        << "probe removed after exactly one traversal";
    for (NodeId n = 0; n < 8; ++n) {
        if (n == 2)
            continue;
        EXPECT_EQ(snooped[n], 1) << "node " << n;
    }
}

TEST_F(RingNetworkTest, ParityRuleEnforced)
{
    // An odd-block probe cannot enter an even probe slot.
    bool tried = false;
    clients_[0].hook = [&](SlotHandle &slot) {
        if (slot.type() == SlotType::ProbeEven && !tried) {
            tried = true;
            EXPECT_FALSE(slot.canInsert(0x30)); // block 3: odd
            EXPECT_TRUE(slot.canInsert(0x20));  // block 2: even
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(100));
    ring_->stop();
    EXPECT_TRUE(tried);
}

TEST_F(RingNetworkTest, AntiStarvationBlocksImmediateReuse)
{
    // Section 5.0: a node may not reuse a slot it just freed.
    bool checked = false;
    clients_[3].hook = [&](SlotHandle &slot) {
        if (slot.type() != SlotType::Block)
            return;
        if (!slot.occupied()) {
            if (checked)
                return;
            RingMessage msg;
            msg.src = 3;
            msg.dst = 3; // to self: comes back after a full loop
            msg.addr = 0x100;
            if (slot.canInsert(msg.addr))
                slot.insert(msg);
            return;
        }
        if (slot.message().dst == 3 && !checked) {
            slot.remove();
            EXPECT_FALSE(slot.canInsert(0x100))
                << "slot just freed by this node";
            checked = true;
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(1000));
    ring_->stop();
    EXPECT_TRUE(checked);
}

TEST_F(RingNetworkTest, OccupancyTracksInsertions)
{
    // Keep one block slot occupied forever: block occupancy tends to
    // 1/framesOnRing.
    bool inserted = false;
    clients_[0].hook = [&](SlotHandle &slot) {
        if (!inserted && slot.type() == SlotType::Block) {
            RingMessage msg;
            msg.src = 0;
            msg.dst = invalidNode; // nobody removes it
            msg.addr = 0;
            slot.insert(msg);
            inserted = true;
        }
    };
    ring_->start(0);
    kernel_.run(nsToTicks(10000));
    ring_->stop();
    EXPECT_NEAR(ring_->occupancy(SlotType::Block),
                1.0 / config_.framesOnRing(), 0.05);
    EXPECT_NEAR(ring_->totalOccupancy(),
                1.0 / (3.0 * config_.framesOnRing()), 0.05);
    EXPECT_EQ(ring_->inserted(SlotType::Block), 1u);
    EXPECT_EQ(ring_->removed(SlotType::Block), 0u);
}

TEST_F(RingNetworkTest, ResetStatsZeroes)
{
    ring_->start(0);
    kernel_.run(nsToTicks(100));
    EXPECT_GT(ring_->cycles(), 0u);
    ring_->resetStats();
    EXPECT_EQ(ring_->cycles(), 0u);
    EXPECT_EQ(ring_->totalOccupancy(), 0.0);
    ring_->stop();
}

TEST_F(RingNetworkTest, ProbeTypeParity)
{
    EXPECT_EQ(ring_->probeTypeFor(0x00), SlotType::ProbeEven);
    EXPECT_EQ(ring_->probeTypeFor(0x10), SlotType::ProbeOdd);
    EXPECT_EQ(ring_->probeTypeFor(0x1f), SlotType::ProbeOdd);
    EXPECT_EQ(ring_->probeTypeFor(0x20), SlotType::ProbeEven);
}

TEST_F(RingNetworkTest, SlotTailTimes)
{
    EXPECT_EQ(ring_->slotTailTime(SlotType::ProbeEven),
              1u * config_.clockPeriod);
    EXPECT_EQ(ring_->slotTailTime(SlotType::Block),
              5u * config_.clockPeriod);
}

TEST(RingNetworkDeathTest, StartWithoutClientsPanics)
{
    sim::Kernel kernel;
    RingConfig config;
    SlotRing ring_net(kernel, config);
    EXPECT_DEATH(ring_net.start(0), "no client");
}

} // namespace
} // namespace ringsim::ring
