/**
 * @file
 * Tests for the ExperimentRunner thread pool: deterministic result
 * ordering regardless of worker count, the serial inline path, the
 * seed-derivation helper, and error propagation.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "coherence/driver.hpp"
#include "model/calibration.hpp"
#include "model/ring_model.hpp"
#include "runner/experiment_runner.hpp"
#include "trace/workload.hpp"

namespace ringsim::runner {
namespace {

TEST(JobSeed, DeterministicAndDistinct)
{
    EXPECT_EQ(jobSeed(42, 0), jobSeed(42, 0));
    EXPECT_EQ(jobSeed(42, 7), jobSeed(42, 7));

    std::set<std::uint64_t> seeds;
    for (std::uint64_t key = 0; key < 64; ++key)
        seeds.insert(jobSeed(42, key));
    EXPECT_EQ(seeds.size(), 64u) << "per-job seeds must not collide";

    EXPECT_NE(jobSeed(1, 0), jobSeed(2, 0))
        << "different master seeds must derive different job seeds";
}

TEST(ResolveJobs, ExplicitValueWins)
{
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
}

TEST(ResolveJobs, ZeroFallsBackToDefault)
{
    EXPECT_EQ(resolveJobs(0), defaultJobs());
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(ResolveJobs, HonorsEnvironment)
{
    ::setenv("RINGSIM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    ::setenv("RINGSIM_JOBS", "notanumber", 1);
    unsigned fallback = defaultJobs(); // warns, ignores the value
    EXPECT_GE(fallback, 1u);
    ::unsetenv("RINGSIM_JOBS");
}

TEST(ExperimentRunner, ZeroJobsCompletesImmediately)
{
    ExperimentRunner pool(4);
    pool.wait(); // nothing submitted
    std::vector<std::function<int()>> empty;
    EXPECT_TRUE(runAll(std::move(empty), 4).empty());
}

TEST(ExperimentRunner, SerialModeRunsInline)
{
    ExperimentRunner pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::thread::id main_id = std::this_thread::get_id();
    std::thread::id job_id;
    pool.submit([&]() { job_id = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(job_id, main_id);
}

TEST(ExperimentRunner, MoreThreadsThanJobs)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 3; ++i)
        tasks.push_back([i]() { return i * 10; });
    std::vector<int> out = runAll(std::move(tasks), 16);
    EXPECT_EQ(out, (std::vector<int>{0, 10, 20}));
}

TEST(ExperimentRunner, ResultsIndexedBySubmissionOrder)
{
    // 64 jobs with deliberately uneven run times: results must still
    // land in submission slots, not completion order.
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i) {
        tasks.push_back([i]() {
            if (i % 7 == 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            return i;
        });
    }
    std::vector<int> out = runAll(std::move(tasks), 8);
    ASSERT_EQ(out.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(ExperimentRunner, AllJobsRunExactlyOnce)
{
    std::atomic<int> ran{0};
    ExperimentRunner pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran]() { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ExperimentRunner, PropagatesEarliestException)
{
    std::vector<std::function<int()>> tasks;
    tasks.push_back([]() { return 1; });
    tasks.push_back([]() -> int {
        throw std::runtime_error("job two failed");
    });
    tasks.push_back([]() -> int {
        throw std::runtime_error("job three failed");
    });
    try {
        runAll(std::move(tasks), 4);
        FAIL() << "expected the job exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job two failed")
            << "earliest-submitted failure wins";
    }
}

TEST(ExperimentRunner, ExceptionInSerialMode)
{
    std::vector<std::function<int()>> tasks;
    tasks.push_back([]() -> int {
        throw std::runtime_error("serial failure");
    });
    EXPECT_THROW(runAll(std::move(tasks), 1), std::runtime_error);
}

TEST(HardenedRunner, StatusNamesArePrintable)
{
    EXPECT_STREQ(jobStatusName(JobReport::Status::Ok), "ok");
    EXPECT_STREQ(jobStatusName(JobReport::Status::Failed), "failed");
    EXPECT_STREQ(jobStatusName(JobReport::Status::TimedOut),
                 "timed_out");
}

TEST(HardenedRunner, WatchdogTimesOutHungJobInIsolation)
{
    RunPolicy policy;
    policy.jobTimeout = std::chrono::milliseconds(200);
    // The hung job spins on a shared flag so the abandoned (detached)
    // thread can be released once the assertions are done.
    auto release = std::make_shared<std::atomic<bool>>(false);
    std::atomic<int> finished{0};

    ExperimentRunner pool(2, policy);
    pool.submit([release]() {
        while (!release->load())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
    for (int i = 0; i < 4; ++i)
        pool.submit([&finished]() { finished.fetch_add(1); });
    pool.waitAll();
    std::vector<JobReport> reports = pool.reports();
    release->store(true);

    ASSERT_EQ(reports.size(), 5u);
    EXPECT_EQ(reports[0].status, JobReport::Status::TimedOut);
    EXPECT_NE(reports[0].error.find("timed out"), std::string::npos)
        << reports[0].error;
    for (std::size_t i = 1; i < reports.size(); ++i)
        EXPECT_EQ(reports[i].status, JobReport::Status::Ok)
            << "job " << i << " must complete despite the hung job";
    EXPECT_EQ(finished.load(), 4);
}

TEST(HardenedRunner, TimedOutJobStillThrowsFromLegacyWait)
{
    RunPolicy policy;
    policy.jobTimeout = std::chrono::milliseconds(100);
    auto release = std::make_shared<std::atomic<bool>>(false);
    ExperimentRunner pool(2, policy);
    pool.submit([release]() {
        while (!release->load())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    release->store(true);
}

TEST(HardenedRunner, SweepRetriesTransientFailure)
{
    auto tries = std::make_shared<std::atomic<int>>(0);
    std::vector<std::function<int()>> tasks;
    tasks.push_back([]() { return 7; });
    tasks.push_back([tries]() -> int {
        if (tries->fetch_add(1) == 0)
            throw std::runtime_error("transient");
        return 42;
    });
    RunPolicy policy;
    policy.maxAttempts = 2;
    SweepResult<int> sweep = runSweep(std::move(tasks), 2, policy);
    EXPECT_TRUE(sweep.allOk()) << sweep.failureSummaryJson();
    EXPECT_EQ(sweep.results[0], 7);
    EXPECT_EQ(sweep.results[1], 42);
    EXPECT_EQ(sweep.reports[0].attempts, 1u);
    EXPECT_EQ(sweep.reports[1].attempts, 2u);
}

TEST(HardenedRunner, SweepIsolatesPermanentFailure)
{
    std::vector<std::function<int()>> tasks;
    tasks.push_back([]() { return 1; });
    tasks.push_back(
        []() -> int { throw std::runtime_error("doomed point"); });
    tasks.push_back([]() { return 3; });
    SweepResult<int> sweep = runSweep(std::move(tasks), 2);
    EXPECT_FALSE(sweep.allOk());
    EXPECT_EQ(sweep.failures(), 1u);
    EXPECT_EQ(sweep.results[0], 1);
    EXPECT_EQ(sweep.results[2], 3);
    EXPECT_EQ(sweep.reports[1].status, JobReport::Status::Failed);
    EXPECT_NE(sweep.reports[1].error.find("doomed point"),
              std::string::npos);

    std::string json = sweep.failureSummaryJson();
    EXPECT_NE(json.find("\"jobs\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"failed\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"index\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("doomed point"), std::string::npos) << json;
}

TEST(HardenedRunner, SerialSweepRecordsFailuresToo)
{
    std::vector<std::function<int()>> tasks;
    tasks.push_back(
        []() -> int { throw std::runtime_error("serial boom"); });
    tasks.push_back([]() { return 5; });
    SweepResult<int> sweep = runSweep(std::move(tasks), 1);
    EXPECT_EQ(sweep.failures(), 1u);
    EXPECT_EQ(sweep.reports[0].status, JobReport::Status::Failed);
    EXPECT_EQ(sweep.results[1], 5);
}

TEST(HardenedRunner, EmptySummaryForCleanSweep)
{
    std::vector<std::function<int()>> tasks;
    tasks.push_back([]() { return 9; });
    SweepResult<int> sweep = runSweep(std::move(tasks), 2);
    EXPECT_TRUE(sweep.allOk());
    std::string json = sweep.failureSummaryJson();
    EXPECT_NE(json.find("\"failed\": 0"), std::string::npos) << json;
}

/** Format a model evaluation the way the figure benches do, so the
 *  comparison is sensitive to any cross-thread nondeterminism. */
std::string
sweepRow(const coherence::Census &census, unsigned procs, double mips)
{
    model::RingModelInput in;
    in.census = census;
    in.ring = core::RingSystemConfig::forProcs(procs).ring;
    in.system.procCycle = nsToTicks(1e3 / mips);
    in.protocol = model::RingProtocol::Snoop;
    model::ModelResult r = model::solveRing(in);
    std::ostringstream os;
    os << procs << '/' << mips << ':' << r.procUtilization << ','
       << r.networkUtilization << ',' << r.missLatencyNs;
    return os.str();
}

/** Run a miniature fig3-style sweep (calibrate per workload, then
 *  model rows) at the given worker count and flatten the table. */
std::vector<std::string>
miniSweep(unsigned jobs)
{
    const unsigned procSizes[] = {8, 16};
    std::vector<trace::WorkloadConfig> workloads;
    for (unsigned procs : procSizes) {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, procs);
        wl.dataRefsPerProc = 400; // keep the test fast
        workloads.push_back(wl);
    }

    std::vector<std::function<coherence::Census()>> calibrations;
    for (const trace::WorkloadConfig &wl : workloads)
        calibrations.push_back(
            [wl]() { return model::calibrate(wl); });
    std::vector<coherence::Census> censuses =
        runAll(std::move(calibrations), jobs);

    std::vector<std::function<std::string()>> rows;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        for (double mips : {100.0, 400.0}) {
            const coherence::Census &census = censuses[i];
            unsigned procs = workloads[i].procs;
            rows.push_back([&census, procs, mips]() {
                return sweepRow(census, procs, mips);
            });
        }
    }
    return runAll(std::move(rows), jobs);
}

TEST(ExperimentRunner, ParallelSweepMatchesSerialByteForByte)
{
    std::vector<std::string> serial = miniSweep(1);
    std::vector<std::string> parallel = miniSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "row " << i;
}

} // namespace
} // namespace ringsim::runner
