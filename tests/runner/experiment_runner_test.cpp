/**
 * @file
 * Tests for the ExperimentRunner thread pool: deterministic result
 * ordering regardless of worker count, the serial inline path, the
 * seed-derivation helper, and error propagation.
 */

#include <atomic>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "coherence/driver.hpp"
#include "model/calibration.hpp"
#include "model/ring_model.hpp"
#include "runner/experiment_runner.hpp"
#include "trace/workload.hpp"

namespace ringsim::runner {
namespace {

TEST(JobSeed, DeterministicAndDistinct)
{
    EXPECT_EQ(jobSeed(42, 0), jobSeed(42, 0));
    EXPECT_EQ(jobSeed(42, 7), jobSeed(42, 7));

    std::set<std::uint64_t> seeds;
    for (std::uint64_t key = 0; key < 64; ++key)
        seeds.insert(jobSeed(42, key));
    EXPECT_EQ(seeds.size(), 64u) << "per-job seeds must not collide";

    EXPECT_NE(jobSeed(1, 0), jobSeed(2, 0))
        << "different master seeds must derive different job seeds";
}

TEST(ResolveJobs, ExplicitValueWins)
{
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
}

TEST(ResolveJobs, ZeroFallsBackToDefault)
{
    EXPECT_EQ(resolveJobs(0), defaultJobs());
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(ResolveJobs, HonorsEnvironment)
{
    ::setenv("RINGSIM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    ::setenv("RINGSIM_JOBS", "notanumber", 1);
    unsigned fallback = defaultJobs(); // warns, ignores the value
    EXPECT_GE(fallback, 1u);
    ::unsetenv("RINGSIM_JOBS");
}

TEST(ExperimentRunner, ZeroJobsCompletesImmediately)
{
    ExperimentRunner pool(4);
    pool.wait(); // nothing submitted
    std::vector<std::function<int()>> empty;
    EXPECT_TRUE(runAll(std::move(empty), 4).empty());
}

TEST(ExperimentRunner, SerialModeRunsInline)
{
    ExperimentRunner pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::thread::id main_id = std::this_thread::get_id();
    std::thread::id job_id;
    pool.submit([&]() { job_id = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(job_id, main_id);
}

TEST(ExperimentRunner, MoreThreadsThanJobs)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 3; ++i)
        tasks.push_back([i]() { return i * 10; });
    std::vector<int> out = runAll(std::move(tasks), 16);
    EXPECT_EQ(out, (std::vector<int>{0, 10, 20}));
}

TEST(ExperimentRunner, ResultsIndexedBySubmissionOrder)
{
    // 64 jobs with deliberately uneven run times: results must still
    // land in submission slots, not completion order.
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i) {
        tasks.push_back([i]() {
            if (i % 7 == 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            return i;
        });
    }
    std::vector<int> out = runAll(std::move(tasks), 8);
    ASSERT_EQ(out.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(ExperimentRunner, AllJobsRunExactlyOnce)
{
    std::atomic<int> ran{0};
    ExperimentRunner pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran]() { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ExperimentRunner, PropagatesEarliestException)
{
    std::vector<std::function<int()>> tasks;
    tasks.push_back([]() { return 1; });
    tasks.push_back([]() -> int {
        throw std::runtime_error("job two failed");
    });
    tasks.push_back([]() -> int {
        throw std::runtime_error("job three failed");
    });
    try {
        runAll(std::move(tasks), 4);
        FAIL() << "expected the job exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job two failed")
            << "earliest-submitted failure wins";
    }
}

TEST(ExperimentRunner, ExceptionInSerialMode)
{
    std::vector<std::function<int()>> tasks;
    tasks.push_back([]() -> int {
        throw std::runtime_error("serial failure");
    });
    EXPECT_THROW(runAll(std::move(tasks), 1), std::runtime_error);
}

/** Format a model evaluation the way the figure benches do, so the
 *  comparison is sensitive to any cross-thread nondeterminism. */
std::string
sweepRow(const coherence::Census &census, unsigned procs, double mips)
{
    model::RingModelInput in;
    in.census = census;
    in.ring = core::RingSystemConfig::forProcs(procs).ring;
    in.system.procCycle = nsToTicks(1e3 / mips);
    in.protocol = model::RingProtocol::Snoop;
    model::ModelResult r = model::solveRing(in);
    std::ostringstream os;
    os << procs << '/' << mips << ':' << r.procUtilization << ','
       << r.networkUtilization << ',' << r.missLatencyNs;
    return os.str();
}

/** Run a miniature fig3-style sweep (calibrate per workload, then
 *  model rows) at the given worker count and flatten the table. */
std::vector<std::string>
miniSweep(unsigned jobs)
{
    const unsigned procSizes[] = {8, 16};
    std::vector<trace::WorkloadConfig> workloads;
    for (unsigned procs : procSizes) {
        trace::WorkloadConfig wl =
            trace::workloadPreset(trace::Benchmark::MP3D, procs);
        wl.dataRefsPerProc = 400; // keep the test fast
        workloads.push_back(wl);
    }

    std::vector<std::function<coherence::Census()>> calibrations;
    for (const trace::WorkloadConfig &wl : workloads)
        calibrations.push_back(
            [wl]() { return model::calibrate(wl); });
    std::vector<coherence::Census> censuses =
        runAll(std::move(calibrations), jobs);

    std::vector<std::function<std::string()>> rows;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        for (double mips : {100.0, 400.0}) {
            const coherence::Census &census = censuses[i];
            unsigned procs = workloads[i].procs;
            rows.push_back([&census, procs, mips]() {
                return sweepRow(census, procs, mips);
            });
        }
    }
    return runAll(std::move(rows), jobs);
}

TEST(ExperimentRunner, ParallelSweepMatchesSerialByteForByte)
{
    std::vector<std::string> serial = miniSweep(1);
    std::vector<std::string> parallel = miniSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "row " << i;
}

} // namespace
} // namespace ringsim::runner
