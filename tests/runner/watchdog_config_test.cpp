/**
 * @file
 * Unit tests for watchdog-budget resolution and RunPolicy validation.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/runner/experiment_runner.hpp"

namespace ringsim::runner {
namespace {

using std::chrono::milliseconds;

class WatchdogEnvTest : public testing::Test
{
  protected:
    void TearDown() override { ::unsetenv("RINGSIM_WATCHDOG_MS"); }
};

TEST_F(WatchdogEnvTest, UnsetUsesFallback)
{
    ::unsetenv("RINGSIM_WATCHDOG_MS");
    EXPECT_EQ(watchdogBudget(milliseconds(1234)), milliseconds(1234));
}

TEST_F(WatchdogEnvTest, EnvOverridesFallback)
{
    ::setenv("RINGSIM_WATCHDOG_MS", "250", 1);
    EXPECT_EQ(watchdogBudget(milliseconds(1234)), milliseconds(250));
}

TEST_F(WatchdogEnvTest, MalformedEnvFallsBack)
{
    ::setenv("RINGSIM_WATCHDOG_MS", "soon", 1);
    EXPECT_EQ(watchdogBudget(milliseconds(1234)), milliseconds(1234));
}

TEST_F(WatchdogEnvTest, ZeroEnvDisablesWatchdog)
{
    // ringsim_serve --help documents "0 disables" for the env var, so
    // it must mean the same thing as --watchdog-ms 0 — not silently
    // fall back to the default budget.
    ::setenv("RINGSIM_WATCHDOG_MS", "0", 1);
    EXPECT_EQ(watchdogBudget(milliseconds(1234)), milliseconds(0));
}

TEST(RunPolicyCheck, SoundPolicyIsClean)
{
    RunPolicy policy;
    policy.jobTimeout = milliseconds(1000);
    policy.maxAttempts = 3;
    EXPECT_TRUE(policy.check().empty());
}

TEST(RunPolicyCheck, ZeroAttemptsNamed)
{
    RunPolicy policy;
    policy.maxAttempts = 0;
    auto errors = policy.check();
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("maxAttempts = 0"), std::string::npos)
        << errors[0];
}

TEST(RunPolicyCheck, NegativeTimeoutNamed)
{
    RunPolicy policy;
    policy.jobTimeout = milliseconds(-5);
    auto errors = policy.check();
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("jobTimeout"), std::string::npos)
        << errors[0];
}

} // namespace
} // namespace ringsim::runner
