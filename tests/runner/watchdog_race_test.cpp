/**
 * @file
 * Regression tests for the watchdog-vs-completion races the
 * concurrency-verification pass fixed in ExperimentRunner:
 *
 *  - A job finishing at the same instant the watchdog declares it
 *    overdue used to be accounted twice (the worker cleared its
 *    jobIndex outside the accounting lock section), pushing
 *    `completed` past `submitted` and hanging waitDrained() forever.
 *  - stop() used to iterate the worker vector without the lock while
 *    the watchdog could still spawn replacement workers into it
 *    (vector reallocation under a concurrent reader).
 *  - wait() used to read the error array without the lock while
 *    doomed stragglers could still be writing their slots.
 *
 * These tests drive many jobs whose runtime straddles the watchdog
 * budget so both sides of each race fire repeatedly; the assertions
 * are simply that every wait terminates and the accounting stays
 * conserved. Run them under TSan (the CI tsan job does) to turn the
 * memory-order halves of these races into hard failures.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/runner/experiment_runner.hpp"

namespace ringsim::runner {
namespace {

using namespace std::chrono_literals;

TEST(WatchdogRace, BorderlineJobsNeverOvercountCompletion)
{
    // Jobs sleeping right at the budget make "finished" and "doomed"
    // genuinely concurrent. Before the fix this hung in waitAll()
    // once a worker and the watchdog both accounted the same job.
    RunPolicy policy;
    policy.jobTimeout = 30ms;
    ExperimentRunner pool(2, policy);
    constexpr int kJobs = 24;
    for (int i = 0; i < kJobs; ++i)
        pool.submit([i]() {
            // Straddle the 30ms budget from both sides.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(24 + (i % 3) * 6));
        });
    pool.waitAll();

    std::vector<JobReport> reports = pool.reports();
    ASSERT_EQ(reports.size(), static_cast<std::size_t>(kJobs));
    int ok = 0, timed_out = 0;
    for (const JobReport &r : reports) {
        EXPECT_NE(r.status, JobReport::Status::Failed) << r.error;
        if (r.status == JobReport::Status::Ok)
            ++ok;
        else
            ++timed_out;
    }
    // Every slot resolved exactly once, whichever side won its race.
    EXPECT_EQ(ok + timed_out, kJobs);
    // Doomed threads only sleep briefly; give them a moment so the
    // process doesn't exit under their feet (they are detached).
    std::this_thread::sleep_for(60ms);
}

TEST(WatchdogRace, DestructionWhileWatchdogReplacesWorkers)
{
    // stop() must snapshot the worker vector under the lock: the
    // watchdog dooms workers and spawns replacements concurrently
    // with the join loop. Cycle several pools so construction,
    // dooming, replacement and join all overlap.
    for (int round = 0; round < 6; ++round) {
        RunPolicy policy;
        policy.jobTimeout = 20ms;
        ExperimentRunner pool(3, policy);
        for (int i = 0; i < 9; ++i)
            pool.submit([i]() {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(14 + (i % 3) * 6));
            });
        pool.waitAll();
        EXPECT_EQ(pool.reports().size(), 9u);
        // Destructor joins while late replacements may still exist.
    }
    std::this_thread::sleep_for(60ms);
}

TEST(WatchdogRace, LegacyWaitSeesErrorsWrittenByDoomedWorkers)
{
    // wait() extracts the earliest error under the lock; a doomed
    // job's error slot is written by the watchdog while healthy
    // workers are still completing. The throw must carry the
    // earliest-submitted failure and the pool must stay joinable.
    RunPolicy policy;
    policy.jobTimeout = 25ms;
    ExperimentRunner pool(2, policy);
    auto release = std::make_shared<std::atomic<bool>>(false);
    pool.submit([release]() {
        while (!release->load())
            std::this_thread::sleep_for(5ms);
    });
    for (int i = 0; i < 6; ++i)
        pool.submit([]() { std::this_thread::sleep_for(5ms); });
    try {
        pool.wait();
        FAIL() << "wait() must rethrow the timed-out job";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("timed out"),
                  std::string::npos)
            << e.what();
    }
    release->store(true);
    std::this_thread::sleep_for(20ms);
}

} // namespace
} // namespace ringsim::runner
