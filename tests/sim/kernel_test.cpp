/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/kernel.hpp"

namespace ringsim::sim {
namespace {

class RecordingEvent : public Event
{
  public:
    explicit RecordingEvent(std::vector<int> &log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

TEST(Kernel, StartsAtTimeZero)
{
    Kernel k;
    EXPECT_EQ(k.now(), 0u);
    EXPECT_TRUE(k.empty());
}

TEST(Kernel, PostsRunInTimeOrder)
{
    Kernel k;
    std::vector<int> log;
    k.post(30, [&]() { log.push_back(3); });
    k.post(10, [&]() { log.push_back(1); });
    k.post(20, [&]() { log.push_back(2); });
    k.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(k.now(), 30u);
}

TEST(Kernel, SameTickFifoOrder)
{
    Kernel k;
    std::vector<int> log;
    for (int i = 0; i < 5; ++i)
        k.post(100, [&, i]() { log.push_back(i); });
    k.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, RunUntilStopsEarly)
{
    Kernel k;
    int fired = 0;
    k.post(10, [&]() { ++fired; });
    k.post(20, [&]() { ++fired; });
    k.run(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.pending(), 1u);
    k.run();
    EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunUntilInclusive)
{
    Kernel k;
    int fired = 0;
    k.post(10, [&]() { ++fired; });
    k.run(10);
    EXPECT_EQ(fired, 1);
}

TEST(Kernel, StopFromInsideEvent)
{
    Kernel k;
    int fired = 0;
    k.post(1, [&]() {
        ++fired;
        k.stop();
    });
    k.post(2, [&]() { ++fired; });
    k.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.pending(), 1u);
}

TEST(Kernel, ScheduleEventObject)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 7);
    k.schedule(e, 5);
    EXPECT_TRUE(e.scheduled());
    EXPECT_EQ(e.when(), 5u);
    k.run();
    EXPECT_FALSE(e.scheduled());
    EXPECT_EQ(log, std::vector<int>{7});
}

TEST(Kernel, RescheduleAfterFiring)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 1);
    k.run();
    k.schedule(e, 2);
    k.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST(Kernel, DescheduleCancels)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 5);
    k.deschedule(e);
    EXPECT_FALSE(e.scheduled());
    k.post(6, []() {});
    k.run();
    EXPECT_TRUE(log.empty());
}

TEST(Kernel, DescheduleThenRescheduleFiresOnce)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 5);
    k.deschedule(e);
    k.schedule(e, 9);
    k.run();
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(k.now(), 9u);
}

TEST(Kernel, ProcessedCounter)
{
    Kernel k;
    for (int i = 0; i < 10; ++i)
        k.post(i, []() {});
    k.run();
    EXPECT_EQ(k.processed(), 10u);
}

TEST(Kernel, RunOneSteps)
{
    Kernel k;
    int fired = 0;
    k.post(1, [&]() { ++fired; });
    k.post(2, [&]() { ++fired; });
    EXPECT_TRUE(k.runOne());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(k.runOne());
    EXPECT_FALSE(k.runOne());
}

TEST(KernelDeathTest, PastSchedulingPanics)
{
    Kernel k;
    k.post(100, []() {});
    k.run();
    EXPECT_DEATH(k.post(50, []() {}), "past");
}

TEST(KernelDeathTest, DoubleSchedulePanics)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 5);
    EXPECT_DEATH(k.schedule(e, 6), "twice");
    k.deschedule(e);
}

TEST(Ticker, FiresPeriodically)
{
    Kernel k;
    std::vector<Count> cycles;
    Ticker t(k, 10, [&](Count c) { cycles.push_back(c); });
    t.start(0);
    k.run(35);
    t.stop();
    EXPECT_EQ(cycles, (std::vector<Count>{0, 1, 2, 3}));
    EXPECT_EQ(k.now(), 30u);
}

TEST(Ticker, StopInsideHandler)
{
    Kernel k;
    Count fired = 0;
    Ticker t(k, 5, [&](Count) {
        if (++fired == 3)
            k.stop();
    });
    t.start(0);
    k.run();
    t.stop();
    EXPECT_EQ(fired, 3u);
}

TEST(Ticker, StartOffset)
{
    Kernel k;
    Tick first = 0;
    Ticker t(k, 10, [&](Count) {
        if (first == 0)
            first = k.now();
        k.stop();
    });
    t.start(42);
    k.run();
    t.stop();
    EXPECT_EQ(first, 42u);
}

} // namespace
} // namespace ringsim::sim
