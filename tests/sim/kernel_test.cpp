/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "src/sim/kernel.hpp"

namespace ringsim::sim {
namespace {

class RecordingEvent : public Event
{
  public:
    explicit RecordingEvent(std::vector<int> &log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

TEST(Kernel, StartsAtTimeZero)
{
    Kernel k;
    EXPECT_EQ(k.now(), 0u);
    EXPECT_TRUE(k.empty());
}

TEST(Kernel, PostsRunInTimeOrder)
{
    Kernel k;
    std::vector<int> log;
    k.post(30, [&]() { log.push_back(3); });
    k.post(10, [&]() { log.push_back(1); });
    k.post(20, [&]() { log.push_back(2); });
    k.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(k.now(), 30u);
}

TEST(Kernel, SameTickFifoOrder)
{
    Kernel k;
    std::vector<int> log;
    for (int i = 0; i < 5; ++i)
        k.post(100, [&, i]() { log.push_back(i); });
    k.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, RunUntilStopsEarly)
{
    Kernel k;
    int fired = 0;
    k.post(10, [&]() { ++fired; });
    k.post(20, [&]() { ++fired; });
    k.run(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.pending(), 1u);
    k.run();
    EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunUntilInclusive)
{
    Kernel k;
    int fired = 0;
    k.post(10, [&]() { ++fired; });
    k.run(10);
    EXPECT_EQ(fired, 1);
}

TEST(Kernel, StopFromInsideEvent)
{
    Kernel k;
    int fired = 0;
    k.post(1, [&]() {
        ++fired;
        k.stop();
    });
    k.post(2, [&]() { ++fired; });
    k.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.pending(), 1u);
}

TEST(Kernel, ScheduleEventObject)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 7);
    k.schedule(e, 5);
    EXPECT_TRUE(e.scheduled());
    EXPECT_EQ(e.when(), 5u);
    k.run();
    EXPECT_FALSE(e.scheduled());
    EXPECT_EQ(log, std::vector<int>{7});
}

TEST(Kernel, RescheduleAfterFiring)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 1);
    k.run();
    k.schedule(e, 2);
    k.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST(Kernel, DescheduleCancels)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 5);
    k.deschedule(e);
    EXPECT_FALSE(e.scheduled());
    k.post(6, []() {});
    k.run();
    EXPECT_TRUE(log.empty());
}

TEST(Kernel, DescheduleThenRescheduleFiresOnce)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 5);
    k.deschedule(e);
    k.schedule(e, 9);
    k.run();
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(k.now(), 9u);
}

TEST(Kernel, ProcessedCounter)
{
    Kernel k;
    for (int i = 0; i < 10; ++i)
        k.post(i, []() {});
    k.run();
    EXPECT_EQ(k.processed(), 10u);
}

TEST(Kernel, RunOneSteps)
{
    Kernel k;
    int fired = 0;
    k.post(1, [&]() { ++fired; });
    k.post(2, [&]() { ++fired; });
    EXPECT_TRUE(k.runOne());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(k.runOne());
    EXPECT_FALSE(k.runOne());
}

TEST(KernelDeathTest, PastSchedulingPanics)
{
    Kernel k;
    k.post(100, []() {});
    k.run();
    EXPECT_DEATH(k.post(50, []() {}), "past");
}

TEST(KernelDeathTest, DoubleSchedulePanics)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 5);
    EXPECT_DEATH(k.schedule(e, 6), "twice");
    k.deschedule(e);
}

// The wheel covers roughly 1 µs of near-future time; anything past it
// lands in the far-future heap. Distances chosen comfortably past it.
constexpr Tick kPastHorizon = 8u * 1024u * 1024u;

TEST(TwoTierQueue, FarFutureEventsFire)
{
    Kernel k;
    std::vector<int> log;
    k.post(kPastHorizon + 30, [&]() { log.push_back(3); });
    k.post(kPastHorizon + 10, [&]() { log.push_back(1); });
    k.post(5, [&]() { log.push_back(0); });
    k.post(kPastHorizon + 20, [&]() { log.push_back(2); });
    k.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(k.now(), kPastHorizon + 30);
}

TEST(TwoTierQueue, SameTickFifoAcrossTiers)
{
    // An event posted far in advance must still fire before a
    // same-tick event posted later from close range: FIFO order is
    // defined by posting order, not by which tier held the event.
    Kernel k;
    const Tick target = kPastHorizon + 100;
    std::vector<int> log;
    k.post(target, [&]() { log.push_back(1); }); // far tier
    k.post(target - 50, [&, target]() {
        k.post(target, [&]() { log.push_back(2); }); // near tier
    });
    k.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(TwoTierQueue, CancelFarTierEvent)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent cancelled(log, 1);
    RecordingEvent kept(log, 2);
    k.schedule(cancelled, kPastHorizon + 10);
    k.schedule(kept, kPastHorizon + 20);
    k.deschedule(cancelled);
    EXPECT_FALSE(cancelled.scheduled());
    k.run();
    EXPECT_EQ(log, std::vector<int>{2});
    EXPECT_TRUE(k.empty());
}

TEST(TwoTierQueue, RescheduleFarToNear)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 9);
    k.schedule(e, kPastHorizon + 10);
    k.deschedule(e);
    k.schedule(e, 40); // near tier this time
    k.run();
    EXPECT_EQ(log, std::vector<int>{9});
    EXPECT_EQ(k.now(), 40u);
    EXPECT_TRUE(k.empty());
}

TEST(TwoTierQueue, RandomizedMixMatchesReferenceOrder)
{
    // Fire 500 one-shots at random offsets straddling the wheel
    // horizon and check the observed order against a stable sort by
    // (when, posting order) — the kernel's documented total order.
    std::mt19937_64 rng(12345);
    std::uniform_int_distribution<Tick> dist(0, 4 * kPastHorizon);

    Kernel k;
    std::vector<std::pair<Tick, int>> expected;
    std::vector<int> fired;
    for (int i = 0; i < 500; ++i) {
        Tick when = dist(rng);
        expected.emplace_back(when, i);
        k.post(when, [&fired, i]() { fired.push_back(i); });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    k.run();
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(fired[i], expected[i].second) << "position " << i;
}

TEST(TwoTierQueue, WheelWrapsAcrossRevolutions)
{
    // A self-rearming chain whose period forces many full wheel
    // revolutions; ordering must survive bucket-slot reuse.
    Kernel k;
    const Tick step = kPastHorizon / 3 + 17;
    Count fired = 0;
    std::function<void()> rearm = [&]() {
        if (++fired < 50)
            k.post(k.now() + step, rearm);
    };
    k.post(step, rearm);
    k.run();
    EXPECT_EQ(fired, 50u);
    EXPECT_EQ(k.now(), 50 * step);
}

TEST(KernelStatsTest, CountersTrackActivity)
{
    Kernel k;
    for (int i = 0; i < 10; ++i)
        k.post(10 + i, []() {});
    k.post(kPastHorizon + 5, []() {});
    EXPECT_EQ(k.stats().maxPending, 11u);
    EXPECT_EQ(k.stats().nearScheduled, 10u);
    EXPECT_EQ(k.stats().farScheduled, 1u);
    k.run();
    EXPECT_EQ(k.stats().processed, 11u);
    EXPECT_EQ(k.stats().oneShots, 11u);
    EXPECT_GE(k.stats().runSeconds, 0.0);
}

TEST(KernelStatsTest, EventObjectsAreNotOneShots)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent e(log, 1);
    k.schedule(e, 5);
    k.run();
    EXPECT_EQ(k.stats().processed, 1u);
    EXPECT_EQ(k.stats().oneShots, 0u);
}

TEST(OneShotStorage, OversizedCaptureFallsBackToHeap)
{
    // Payload larger than the inline small-buffer: must still fire
    // and destroy correctly through the heap path.
    Kernel k;
    std::array<std::uint64_t, 16> big{};
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    k.post(10, [big, &sum]() {
        for (std::uint64_t v : big)
            sum += v;
    });
    k.run();
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < big.size(); ++i)
        want += i * 3 + 1;
    EXPECT_EQ(sum, want);
}

TEST(OneShotStorage, PendingPayloadsDestroyedWithKernel)
{
    // A shared_ptr captured by never-fired one-shots (near and far)
    // must be released when the kernel is destroyed.
    auto token = std::make_shared<int>(42);
    {
        Kernel k;
        k.post(100, [token]() {});
        k.post(kPastHorizon + 100, [token]() {});
        EXPECT_EQ(token.use_count(), 3);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(Ticker, FiresPeriodically)
{
    Kernel k;
    std::vector<Count> cycles;
    Ticker t(k, 10, [&](Count c) { cycles.push_back(c); });
    t.start(0);
    k.run(35);
    t.stop();
    EXPECT_EQ(cycles, (std::vector<Count>{0, 1, 2, 3}));
    EXPECT_EQ(k.now(), 30u);
}

TEST(Ticker, StopInsideHandler)
{
    Kernel k;
    Count fired = 0;
    Ticker t(k, 5, [&](Count) {
        if (++fired == 3)
            k.stop();
    });
    t.start(0);
    k.run();
    t.stop();
    EXPECT_EQ(fired, 3u);
}

TEST(Ticker, StartOffset)
{
    Kernel k;
    Tick first = 0;
    Ticker t(k, 10, [&](Count) {
        if (first == 0)
            first = k.now();
        k.stop();
    });
    t.start(42);
    k.run();
    t.stop();
    EXPECT_EQ(first, 42u);
}

TEST(Ticker, FastForwardSkipsCyclesInOneJump)
{
    Kernel k;
    std::vector<std::pair<Count, Tick>> fired;
    Ticker t(k, 10, [&](Count cycle) {
        fired.emplace_back(cycle, k.now());
        if (cycle == 0)
            t.fastForward(3); // skip cycles 1, 2, 3
    });
    t.start(0);
    k.run(60);
    t.stop();
    ASSERT_EQ(fired.size(), 4u);
    EXPECT_EQ(fired[0], (std::pair<Count, Tick>{0, 0}));
    EXPECT_EQ(fired[1], (std::pair<Count, Tick>{4, 40}));
    EXPECT_EQ(fired[2], (std::pair<Count, Tick>{5, 50}));
    EXPECT_EQ(fired[3], (std::pair<Count, Tick>{6, 60}));
}

TEST(Ticker, FastForwardZeroIsANoop)
{
    Kernel k;
    Count fires = 0;
    Ticker t(k, 10, [&](Count) {
        ++fires;
        t.fastForward(0);
    });
    t.start(0);
    k.run(30);
    t.stop();
    EXPECT_EQ(fires, 4u);
}

TEST(Kernel, NextEventTime)
{
    Kernel k;
    EXPECT_EQ(k.nextEventTime(), Kernel::kNoEvent);
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    k.schedule(a, 50);
    k.schedule(b, 20);
    EXPECT_EQ(k.nextEventTime(), 20u);
    k.deschedule(b);
    EXPECT_EQ(k.nextEventTime(), 50u);
    k.deschedule(a);
    EXPECT_EQ(k.nextEventTime(), Kernel::kNoEvent);
}

TEST(Kernel, NextEventTimeExcluding)
{
    Kernel k;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    k.schedule(a, 20);
    // Only `a` pending: excluding it, the queue is empty.
    EXPECT_EQ(k.nextEventTimeExcluding(a), Kernel::kNoEvent);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 20u);
    k.schedule(b, 70);
    EXPECT_EQ(k.nextEventTimeExcluding(a), 70u);
    // Excluding an event that is not scheduled sees everything.
    k.deschedule(a);
    EXPECT_EQ(k.nextEventTimeExcluding(a), 70u);
    k.deschedule(b);
}

TEST(Kernel, RunLimitVisibleInsideRun)
{
    Kernel k;
    EXPECT_EQ(k.runLimit(), Kernel::kNoEvent);
    Tick seen_bounded = 0;
    Tick seen_unbounded = 0;
    k.post(10, [&]() { seen_bounded = k.runLimit(); });
    k.run(100);
    EXPECT_EQ(seen_bounded, 100u);
    EXPECT_EQ(k.runLimit(), Kernel::kNoEvent);
    k.post(20, [&]() { seen_unbounded = k.runLimit(); });
    k.run();
    EXPECT_EQ(seen_unbounded, Kernel::kNoEvent);
}

} // namespace
} // namespace ringsim::sim
