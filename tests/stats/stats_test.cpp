/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/stats/stats.hpp"

namespace ringsim::stats {
namespace {

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Sampler, EmptyIsSafe)
{
    Sampler s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Sampler, MeanAndSum)
{
    Sampler s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_EQ(s.count(), 4u);
}

TEST(Sampler, VarianceMatchesTextbook)
{
    Sampler s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    // Population variance is 4; sample variance is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Sampler, MinMax)
{
    Sampler s;
    s.add(5);
    s.add(-2);
    s.add(3);
    EXPECT_EQ(s.min(), -2.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(Sampler, Reset)
{
    Sampler s;
    s.add(1);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Sampler, LargeStreamStable)
{
    Sampler s;
    for (int i = 0; i < 100000; ++i)
        s.add(7.0);
    EXPECT_NEAR(s.mean(), 7.0, 1e-9);
    EXPECT_NEAR(s.variance(), 0.0, 1e-9);
}

TEST(Histogram, BucketsAndEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.buckets(), 5u);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(4), 8.0);
}

TEST(Histogram, CountsIntoRightBuckets)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);
    h.add(1.9);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, QuantileUniform)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(HistogramDeathTest, BadGeometryPanics)
{
    EXPECT_DEATH(Histogram(1.0, 0.0, 4), "hi > lo");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "bucket");
}

TEST(Registry, RecordAndGet)
{
    Registry r;
    r.record("a", 1.5);
    r.record("b", 2.5);
    EXPECT_TRUE(r.has("a"));
    EXPECT_FALSE(r.has("c"));
    EXPECT_DOUBLE_EQ(r.get("b"), 2.5);
}

TEST(Registry, OverwriteKeepsOrder)
{
    Registry r;
    r.record("a", 1.0);
    r.record("b", 2.0);
    r.record("a", 9.0);
    EXPECT_EQ(r.size(), 2u);
    EXPECT_DOUBLE_EQ(r.get("a"), 9.0);
    std::ostringstream os;
    r.dump(os);
    EXPECT_EQ(os.str(), "a = 9\nb = 2\n");
}

TEST(RegistryDeathTest, MissingStatPanics)
{
    Registry r;
    EXPECT_DEATH(r.get("nope"), "no stat");
}

} // namespace
} // namespace ringsim::stats
