/**
 * @file
 * Unit tests for the run metrics record.
 */

#include <gtest/gtest.h>

#include "src/core/metrics.hpp"

namespace ringsim::core {
namespace {

TEST(Metrics, Utilization)
{
    Metrics m(2);
    m.addBusy(0, 80);
    m.addStall(0, 20);
    m.addBusy(1, 50);
    m.addStall(1, 50);
    EXPECT_DOUBLE_EQ(m.procUtilization(0), 0.8);
    EXPECT_DOUBLE_EQ(m.procUtilization(1), 0.5);
    EXPECT_DOUBLE_EQ(m.meanProcUtilization(), 0.65);
}

TEST(Metrics, EmptyUtilizationIsZero)
{
    Metrics m(1);
    EXPECT_EQ(m.procUtilization(0), 0.0);
}

TEST(Metrics, LatencyClasses)
{
    Metrics m(1);
    m.addLatency(LatClass::CleanMiss1, 100);
    m.addLatency(LatClass::CleanMiss1, 200);
    m.addLatency(LatClass::DirtyMiss1, 400);
    m.addLatency(LatClass::LocalMiss, 10);
    m.addLatency(LatClass::Upgrade, 50);
    EXPECT_EQ(m.classCount(LatClass::CleanMiss1), 2u);
    EXPECT_DOUBLE_EQ(m.latency(LatClass::CleanMiss1).mean(), 150.0);
    // Remote mean: (100+200+400)/3.
    EXPECT_NEAR(m.meanMissLatency(), 233.333, 0.01);
    // Including local: (100+200+400+10)/4.
    EXPECT_NEAR(m.meanMissLatencyAll(), 177.5, 0.01);
    EXPECT_DOUBLE_EQ(m.meanUpgradeLatency(), 50.0);
}

TEST(Metrics, ResetClearsEverything)
{
    Metrics m(1);
    m.addBusy(0, 10);
    m.addStall(0, 10);
    m.addLatency(LatClass::Miss2, 5);
    m.addAcquireWait(3);
    m.reset();
    EXPECT_EQ(m.busy(0), 0u);
    EXPECT_EQ(m.stall(0), 0u);
    EXPECT_EQ(m.classCount(LatClass::Miss2), 0u);
    EXPECT_EQ(m.acquireWait().count(), 0u);
}

TEST(Metrics, ClassNames)
{
    EXPECT_STREQ(latClassName(LatClass::LocalMiss), "local-miss");
    EXPECT_STREQ(latClassName(LatClass::CleanMiss1), "1-cycle-clean");
    EXPECT_STREQ(latClassName(LatClass::DirtyMiss1), "1-cycle-dirty");
    EXPECT_STREQ(latClassName(LatClass::Miss2), "2-cycle");
    EXPECT_STREQ(latClassName(LatClass::Upgrade), "upgrade");
}

TEST(MetricsDeathTest, NeedsProcessors)
{
    EXPECT_EXIT(Metrics(0), testing::ExitedWithCode(1), "processor");
}

} // namespace
} // namespace ringsim::core
