/**
 * @file
 * Tests for the latency-tolerance extension: non-blocking stores
 * through a bounded store buffer (paper Section 6).
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/core/processor.hpp"
#include "src/core/system.hpp"

namespace ringsim::core {
namespace {

/** Stub: every data ref misses; transactions take a fixed time. */
class AlwaysMissProtocol : public Protocol
{
  public:
    AlwaysMissProtocol(sim::Kernel &kernel, Tick stall)
        : kernel_(kernel), stall_(stall)
    {}

    bool tryAccess(NodeId, const trace::TraceRecord &) override
    {
        return false;
    }

    void
    startTransaction(NodeId, const trace::TraceRecord &,
                     std::function<void()> on_complete) override
    {
        ++transactions;
        kernel_.postIn(stall_, std::move(on_complete));
    }

    int transactions = 0;

  private:
    sim::Kernel &kernel_;
    Tick stall_;
};

TEST(StoreBuffer, WritesDoNotStallWithinDepth)
{
    sim::Kernel kernel;
    AlwaysMissProtocol protocol(kernel, 50000);
    Metrics metrics(1);
    std::vector<trace::TraceRecord> recs = {{trace::Op::Write, 0x10},
                                            {trace::Op::Write, 0x20},
                                            {trace::Op::Write, 0x30}};
    auto stream = std::make_unique<trace::VectorStream>(recs);
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    cpu.setStoreBufferDepth(4);
    cpu.start(0);
    kernel.run();
    EXPECT_EQ(protocol.transactions, 3);
    EXPECT_EQ(metrics.stall(0), 0u) << "all stores fit in the buffer";
    EXPECT_EQ(metrics.busy(0), 3000u);
}

TEST(StoreBuffer, FullBufferBlocks)
{
    sim::Kernel kernel;
    AlwaysMissProtocol protocol(kernel, 50000);
    Metrics metrics(1);
    std::vector<trace::TraceRecord> recs = {{trace::Op::Write, 0x10},
                                            {trace::Op::Write, 0x20}};
    auto stream = std::make_unique<trace::VectorStream>(recs);
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    cpu.setStoreBufferDepth(1);
    cpu.start(0);
    kernel.run();
    EXPECT_EQ(protocol.transactions, 2);
    EXPECT_GT(metrics.stall(0), 0u)
        << "the second store finds the buffer full and blocks";
}

TEST(StoreBuffer, ReadsStillBlock)
{
    sim::Kernel kernel;
    AlwaysMissProtocol protocol(kernel, 50000);
    Metrics metrics(1);
    std::vector<trace::TraceRecord> recs = {{trace::Op::Read, 0x10}};
    auto stream = std::make_unique<trace::VectorStream>(recs);
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    cpu.setStoreBufferDepth(8);
    cpu.start(0);
    kernel.run();
    EXPECT_EQ(metrics.stall(0), 50000u);
}

TEST(StoreBuffer, DepthZeroIsBlockingBaseline)
{
    sim::Kernel kernel;
    AlwaysMissProtocol protocol(kernel, 50000);
    Metrics metrics(1);
    std::vector<trace::TraceRecord> recs = {{trace::Op::Write, 0x10}};
    auto stream = std::make_unique<trace::VectorStream>(recs);
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    cpu.start(0); // default depth 0
    kernel.run();
    EXPECT_EQ(metrics.stall(0), 50000u);
}

TEST(StoreBuffer, CheckedSystemRunStaysCoherent)
{
    // Full timed runs with non-blocking stores must still satisfy
    // every coherence invariant (state applies in program order at
    // issue; the checker asserts it).
    auto wl = trace::workloadPreset(trace::Benchmark::MP3D, 8);
    wl.dataRefsPerProc = 8000;
    for (auto kind :
         {ProtocolKind::RingSnoop, ProtocolKind::RingDirectory}) {
        auto cfg = RingSystemConfig::forProcs(8);
        cfg.common.check = true;
        cfg.common.storeBufferDepth = 4;
        RunResult r = runRingSystem(cfg, wl, kind);
        EXPECT_GT(r.procUtilization, 0.0);
    }
    auto bus_cfg = BusSystemConfig::forProcs(8);
    bus_cfg.common.check = true;
    bus_cfg.common.storeBufferDepth = 4;
    RunResult r = runBusSystem(bus_cfg, wl);
    EXPECT_GT(r.procUtilization, 0.0);
}

TEST(StoreBuffer, ImprovesRingUtilization)
{
    // Section 6: the ring has latency to tolerate — hiding store
    // latency buys real processor utilization.
    auto wl = trace::workloadPreset(trace::Benchmark::MP3D, 16);
    wl.dataRefsPerProc = 12000;
    auto cfg = RingSystemConfig::forProcs(16);
    cfg.common.procCycle = nsToTicks(5.0);
    RunResult blocking =
        runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    cfg.common.storeBufferDepth = 8;
    RunResult buffered =
        runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    EXPECT_GT(buffered.procUtilization,
              blocking.procUtilization + 0.03);
    EXPECT_GT(buffered.networkUtilization,
              blocking.networkUtilization)
        << "the tolerated latency shows up as extra ring load";
}

TEST(StoreBuffer, SelfDefeatingOnSaturatedBus)
{
    // Section 6: on an interconnect near saturation the overlap
    // cannot buy throughput, it only deepens the queues.
    auto wl = trace::workloadPreset(trace::Benchmark::MP3D, 16);
    wl.dataRefsPerProc = 12000;
    auto cfg = BusSystemConfig::forProcs(16);
    cfg.common.procCycle = nsToTicks(5.0);
    RunResult blocking = runBusSystem(cfg, wl);
    ASSERT_GT(blocking.networkUtilization, 0.9) << "bus saturated";
    cfg.common.storeBufferDepth = 8;
    RunResult buffered = runBusSystem(cfg, wl);
    EXPECT_LT(buffered.procUtilization,
              blocking.procUtilization + 0.03)
        << "no real gain from overlap";
    EXPECT_GT(buffered.missLatencyNs, blocking.missLatencyNs)
        << "queueing deepens instead";
}

} // namespace
} // namespace ringsim::core
