/**
 * @file
 * Direct timing tests of the ring protocol controllers: single
 * transactions on an otherwise idle ring must land inside the bounds
 * the paper's geometry dictates (round trips, service times, slot
 * waits bounded by frame times), and must put exactly the right
 * messages on the wire.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/coherence/classify.hpp"
#include "src/core/ring_directory.hpp"
#include "src/core/ring_snoop.hpp"

namespace ringsim::core {
namespace {

class ProtocolTiming : public ::testing::Test
{
  protected:
    static constexpr unsigned nodes = 8;

    ~ProtocolTiming() override
    {
        // The ring ticker must be descheduled before the kernel dies.
        ring_->stop();
    }

    ProtocolTiming() : map_(nodes, 16, 7)
    {
        ringCfg_ = core::RingSystemConfig::forProcs(nodes).ring;
        sys_.validate();
        coherence::EngineOptions eopt;
        eopt.check = true;
        engine_ =
            std::make_unique<coherence::FunctionalEngine>(map_, eopt);
        ring_ = std::make_unique<ring::SlotRing>(kernel_, ringCfg_);
        metrics_ = std::make_unique<Metrics>(nodes);
    }

    void
    useSnoop()
    {
        protocol_ = std::make_unique<RingSnoopProtocol>(
            kernel_, sys_, *engine_, *ring_, *metrics_);
        ring_->start(0);
    }

    void
    useDirectory()
    {
        protocol_ = std::make_unique<RingDirectoryProtocol>(
            kernel_, sys_, *engine_, *ring_, *metrics_);
        ring_->start(0);
    }

    /** Shared address whose home is @p home. */
    Addr
    addrHomedAt(NodeId home)
    {
        for (std::uint64_t i = 0;; ++i) {
            Addr a = map_.sharedBlock(i);
            if (map_.home(a) == home)
                return a;
        }
    }

    /** Run one transaction to completion; returns its latency. */
    Tick
    runTxn(NodeId p, Addr addr, bool is_write)
    {
        Tick start = kernel_.now();
        Tick done = 0;
        bool finished = false;
        trace::TraceRecord rec{is_write ? trace::Op::Write
                                        : trace::Op::Read,
                               addr};
        protocol_->startTransaction(p, rec, [&]() {
            finished = true;
            done = kernel_.now();
        });
        kernel_.run(start + 1'000'000); // 1 us is plenty when idle
        EXPECT_TRUE(finished) << "transaction did not complete";
        return done - start;
    }

    /** Quietly set up cache state through the functional engine. */
    void
    prime(NodeId p, Addr addr, bool is_write)
    {
        engine_->access(p, {is_write ? trace::Op::Write
                                     : trace::Op::Read,
                            addr});
    }

    Tick rtt() const { return ringCfg_.roundTripTime(); }
    Tick frame() const { return ringCfg_.frameTime(); }
    Tick blockTail() const {
        return ring_->slotTailTime(ring::SlotType::Block);
    }

    sim::Kernel kernel_;
    trace::AddressMap map_;
    ring::RingConfig ringCfg_;
    SystemConfig sys_;
    std::unique_ptr<coherence::FunctionalEngine> engine_;
    std::unique_ptr<ring::SlotRing> ring_;
    std::unique_ptr<Metrics> metrics_;
    std::unique_ptr<RingProtocolBase> protocol_;
};

TEST_F(ProtocolTiming, SnoopRemoteCleanRead)
{
    useSnoop();
    Addr a = addrHomedAt(5);
    Tick lat = runTxn(1, a, false);
    // One traversal + memory access, plus at most two slot
    // acquisitions (probe + block) and the block tail.
    Tick floor_t = rtt() + sys_.memoryLatency;
    Tick ceil_t = floor_t + 2 * frame() + blockTail();
    EXPECT_GE(lat, floor_t);
    EXPECT_LE(lat, ceil_t);
    EXPECT_EQ(ring_->inserted(ring::SlotType::Block), 1u);
    EXPECT_EQ(metrics_->classCount(LatClass::CleanMiss1), 1u);
}

TEST_F(ProtocolTiming, SnoopLatencyIndependentOfHomePosition)
{
    // The UMA property (Section 3.1): same latency whatever the
    // distance to the home, up to slot-phase differences (< one
    // frame per acquisition).
    useSnoop();
    Tick lat_near = runTxn(1, addrHomedAt(2), false);
    Tick lat_far = runTxn(1, addrHomedAt(0), false);
    Tick diff = lat_near > lat_far ? lat_near - lat_far
                                   : lat_far - lat_near;
    EXPECT_LE(diff, 2 * frame());
}

TEST_F(ProtocolTiming, SnoopUpgradeIsOneTraversal)
{
    useSnoop();
    Addr a = addrHomedAt(5);
    prime(1, a, false); // RS at node 1
    Tick lat = runTxn(1, a, true);
    EXPECT_GE(lat, rtt());
    EXPECT_LE(lat, rtt() + frame());
    EXPECT_EQ(ring_->inserted(ring::SlotType::Block), 0u)
        << "invalidations carry no data";
    EXPECT_EQ(metrics_->classCount(LatClass::Upgrade), 1u);
}

TEST_F(ProtocolTiming, SnoopDirtyReadServedByOwnerCache)
{
    useSnoop();
    Addr a = addrHomedAt(5);
    prime(3, a, true); // node 3 owns it dirty
    Tick lat = runTxn(1, a, false);
    Tick floor_t = rtt() + sys_.cacheSupply;
    EXPECT_GE(lat, floor_t);
    EXPECT_LE(lat, floor_t + 2 * frame() + blockTail());
    EXPECT_EQ(metrics_->classCount(LatClass::DirtyMiss1), 1u);
}

TEST_F(ProtocolTiming, SnoopLocalCleanStillProbes)
{
    useSnoop();
    Addr a = addrHomedAt(1);
    Tick lat = runTxn(1, a, false);
    // Commits when the probe returns (memory overlaps).
    EXPECT_GE(lat, rtt());
    EXPECT_EQ(ring_->inserted(ring::SlotType::Block), 0u);
    EXPECT_EQ(metrics_->classCount(LatClass::LocalMiss), 1u);
}

TEST_F(ProtocolTiming, DirectoryRemoteCleanRead)
{
    useDirectory();
    Addr a = addrHomedAt(5);
    Tick lat = runTxn(1, a, false);
    Tick floor_t = rtt() + sys_.dirLookup + sys_.memoryLatency;
    EXPECT_GE(lat, floor_t);
    EXPECT_LE(lat, floor_t + 2 * frame() + 2 * blockTail());
    EXPECT_EQ(metrics_->classCount(LatClass::CleanMiss1), 1u);
}

TEST_F(ProtocolTiming, DirectoryLocalCleanSkipsTheRing)
{
    useDirectory();
    Addr a = addrHomedAt(1);
    Tick lat = runTxn(1, a, false);
    EXPECT_EQ(lat, sys_.dirLookup + sys_.memoryLatency);
    EXPECT_EQ(ring_->inserted(ring::SlotType::ProbeEven) +
                  ring_->inserted(ring::SlotType::ProbeOdd),
              0u);
}

TEST_F(ProtocolTiming, DirectoryDirtyMissOneVsTwoTraversals)
{
    // Section 3.2 / Figure 2: the dirty node's position decides
    // whether the chain costs one or two traversals.
    useDirectory();

    // One traversal: owner downstream of the home on the way back.
    Addr a1 = addrHomedAt(3);
    prime(6, a1, true); // requester 1 -> home 3 -> owner 6 -> 1: 1 loop
    ASSERT_EQ(coherence::classifyDirMiss(nodes, 1, 3, true, 6, false)
                  .traversals,
              1u);
    Tick lat1 = runTxn(1, a1, false);

    // Two traversals: owner on the requester->home path.
    Addr a2 = addrHomedAt(6);
    prime(3, a2, true); // requester 1 -> home 6 -> owner 3 -> 1: 2 loops
    ASSERT_EQ(coherence::classifyDirMiss(nodes, 1, 6, true, 3, false)
                  .traversals,
              2u);
    Tick lat2 = runTxn(1, a2, false);

    EXPECT_GE(lat1, rtt() + sys_.dirLookup + sys_.cacheSupply);
    EXPECT_GE(lat2, 2 * rtt() + sys_.dirLookup + sys_.cacheSupply);
    EXPECT_GT(lat2, lat1 + rtt() / 2)
        << "the extra traversal must be visible";
    EXPECT_EQ(metrics_->classCount(LatClass::DirtyMiss1), 1u);
    EXPECT_EQ(metrics_->classCount(LatClass::Miss2), 1u);
}

TEST_F(ProtocolTiming, DirectoryUpgradeWithSharersMulticasts)
{
    useDirectory();
    Addr a = addrHomedAt(5);
    prime(1, a, false);
    prime(2, a, false); // another sharer forces the multicast
    Count probes_before = ring_->inserted(ring::SlotType::ProbeEven) +
                          ring_->inserted(ring::SlotType::ProbeOdd);
    Tick lat = runTxn(1, a, true);
    // Request to home + full-ring multicast + ack: two traversals.
    EXPECT_GE(lat, 2 * rtt() + sys_.dirLookup);
    Count probes_after = ring_->inserted(ring::SlotType::ProbeEven) +
                         ring_->inserted(ring::SlotType::ProbeOdd);
    EXPECT_EQ(probes_after - probes_before, 3u)
        << "request, multicast, ack";
}

TEST_F(ProtocolTiming, DirectoryUpgradeNoSharers)
{
    useDirectory();
    Addr a = addrHomedAt(5);
    prime(1, a, false);
    Tick lat = runTxn(1, a, true);
    EXPECT_GE(lat, rtt() + sys_.dirLookup);
    // One traversal + lookup + at most two slot waits and tails —
    // well short of a two-traversal (multicast) transaction.
    EXPECT_LE(lat, rtt() + sys_.dirLookup + 2 * frame() +
                       2 * ring_->slotTailTime(ring::SlotType::ProbeEven));
}

TEST_F(ProtocolTiming, SnoopFasterThanDirectoryForSameDirtyMiss)
{
    // The structural reason for the headline result, in one
    // transaction: the same dirty-block read (owner on the
    // requester->home path) costs one traversal under snooping and
    // two under the directory.
    useSnoop();
    Addr a = addrHomedAt(6);
    prime(3, a, true);
    Tick snoop_lat = runTxn(1, a, false);

    // A fresh directory system with identical state.
    sim::Kernel kernel2;
    trace::AddressMap map2(nodes, 16, 7);
    coherence::EngineOptions eopt;
    eopt.check = true;
    coherence::FunctionalEngine engine2(map2, eopt);
    ring::SlotRing ring2(kernel2, ringCfg_);
    Metrics metrics2(nodes);
    RingDirectoryProtocol dir(kernel2, sys_, engine2, ring2, metrics2);
    ring2.start(0);
    engine2.access(3, {trace::Op::Write, a});
    bool finished = false;
    Tick done = 0;
    dir.startTransaction(1, {trace::Op::Read, a}, [&]() {
        finished = true;
        done = kernel2.now();
    });
    kernel2.run(1'000'000);
    ring2.stop();
    ASSERT_TRUE(finished);

    EXPECT_LT(snoop_lat, done);
}

} // namespace
} // namespace ringsim::core
