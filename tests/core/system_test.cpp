/**
 * @file
 * System-level tests of the timed simulators: sanity of the measured
 * quantities, protocol-level timing invariants, determinism.
 */

#include <gtest/gtest.h>

#include "src/core/system.hpp"

namespace ringsim::core {
namespace {

trace::WorkloadConfig
smallWorkload(trace::Benchmark b, unsigned procs, Count refs = 15000)
{
    trace::WorkloadConfig cfg = trace::workloadPreset(b, procs);
    cfg.dataRefsPerProc = refs;
    return cfg;
}

TEST(RingSystem, SnoopRunProducesSaneNumbers)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8);
    auto cfg = RingSystemConfig::forProcs(8);
    RunResult r = runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    EXPECT_GT(r.procUtilization, 0.3);
    EXPECT_LT(r.procUtilization, 1.0);
    EXPECT_GT(r.networkUtilization, 0.0);
    EXPECT_LT(r.networkUtilization, 1.0);
    EXPECT_GT(r.window, 0u);
    EXPECT_GT(r.cleanMiss1 + r.dirtyMiss1, 0u);
    EXPECT_EQ(r.miss2, 0u) << "snooping never needs two traversals";
}

TEST(RingSystem, SnoopMissLatencyLowerBound)
{
    // A remote snoop miss can never beat round trip + memory access.
    auto wl = smallWorkload(trace::Benchmark::WATER, 8);
    auto cfg = RingSystemConfig::forProcs(8);
    RunResult r = runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    double floor_ns = ticksToNs(cfg.ring.roundTripTime()) +
                      ticksToNs(cfg.common.memoryLatency);
    EXPECT_GE(r.missLatencyNs, floor_ns);
}

TEST(RingSystem, DirectoryProducesTwoCycleMisses)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8);
    auto cfg = RingSystemConfig::forProcs(8);
    RunResult r = runRingSystem(cfg, wl, ProtocolKind::RingDirectory);
    EXPECT_GT(r.miss2, 0u);
    EXPECT_GT(r.dirtyMiss1, 0u);
    EXPECT_GT(r.cleanMiss1, 0u);
}

TEST(RingSystem, SnoopBeatsDirectoryOnMp3d)
{
    // The paper's headline: snooping outperforms the directory for
    // MP3D at every size.
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8);
    auto cfg = RingSystemConfig::forProcs(8);
    RunResult snoop = runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    RunResult dir =
        runRingSystem(cfg, wl, ProtocolKind::RingDirectory);
    EXPECT_GT(snoop.procUtilization, dir.procUtilization);
    EXPECT_LT(snoop.missLatencyNs, dir.missLatencyNs);
}

TEST(RingSystem, SnoopLatencyIndependentOfOwnerPosition)
{
    // UMA claim: with an idle ring, every remote clean miss costs the
    // same regardless of where the home is. Use WATER (low load) and
    // compare the per-class spread: min and max of the clean-miss
    // latency should be within a frame time of each other... the
    // spread comes only from slot waits, so it is bounded by a few
    // frame times even with contention.
    auto wl = smallWorkload(trace::Benchmark::WATER, 8);
    auto cfg = RingSystemConfig::forProcs(8);
    RunResult r = runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    EXPECT_GT(r.cleanMiss1, 0u);
}

TEST(RingSystem, CheckerCleanOnTimedRuns)
{
    for (auto kind :
         {ProtocolKind::RingSnoop, ProtocolKind::RingDirectory}) {
        auto wl = smallWorkload(trace::Benchmark::CHOLESKY, 8, 8000);
        auto cfg = RingSystemConfig::forProcs(8);
        cfg.common.check = true;
        RunResult r = runRingSystem(cfg, wl, kind);
        EXPECT_GT(r.window, 0u);
    }
}

TEST(RingSystem, Deterministic)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8, 8000);
    auto cfg = RingSystemConfig::forProcs(8);
    RunResult a = runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    RunResult b = runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    EXPECT_EQ(a.window, b.window);
    EXPECT_EQ(a.cleanMiss1, b.cleanMiss1);
    EXPECT_DOUBLE_EQ(a.procUtilization, b.procUtilization);
}

TEST(RingSystem, FasterProcessorsLoadTheRing)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8);
    auto cfg = RingSystemConfig::forProcs(8);
    RunResult slow = runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    cfg.common.procCycle = 5000; // 200 MIPS
    RunResult fast = runRingSystem(cfg, wl, ProtocolKind::RingSnoop);
    EXPECT_GT(fast.networkUtilization, slow.networkUtilization);
    EXPECT_LT(fast.procUtilization, slow.procUtilization);
}

TEST(RingSystem, SlowerRingRaisesLatency)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8);
    auto cfg500 = RingSystemConfig::forProcs(8, 2000);
    auto cfg250 = RingSystemConfig::forProcs(8, 4000);
    RunResult r500 = runRingSystem(cfg500, wl, ProtocolKind::RingSnoop);
    RunResult r250 = runRingSystem(cfg250, wl, ProtocolKind::RingSnoop);
    EXPECT_GT(r250.missLatencyNs, r500.missLatencyNs);
}

TEST(BusSystem, RunProducesSaneNumbers)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8);
    auto cfg = BusSystemConfig::forProcs(8);
    RunResult r = runBusSystem(cfg, wl);
    EXPECT_GT(r.procUtilization, 0.2);
    EXPECT_LT(r.procUtilization, 1.0);
    EXPECT_GT(r.networkUtilization, 0.0);
    EXPECT_LE(r.networkUtilization, 1.0);
}

TEST(BusSystem, CheckerClean)
{
    auto wl = smallWorkload(trace::Benchmark::WATER, 8, 8000);
    auto cfg = BusSystemConfig::forProcs(8);
    cfg.common.check = true;
    RunResult r = runBusSystem(cfg, wl);
    EXPECT_GT(r.window, 0u);
}

TEST(BusSystem, SaturatesAtSixteenFastProcessors)
{
    // Figure 6 shape: the 50 MHz bus saturates on MP3D-16 while the
    // ring stays lightly loaded.
    auto wl = smallWorkload(trace::Benchmark::MP3D, 16);
    auto bus_cfg = BusSystemConfig::forProcs(16);
    auto ring_cfg = RingSystemConfig::forProcs(16);
    RunResult bus_r = runBusSystem(bus_cfg, wl);
    RunResult ring_r =
        runRingSystem(ring_cfg, wl, ProtocolKind::RingSnoop);
    EXPECT_GT(bus_r.networkUtilization, 0.5);
    EXPECT_LT(ring_r.networkUtilization, 0.5);
    EXPECT_GT(ring_r.procUtilization, bus_r.procUtilization);
}

TEST(BusSystem, FasterBusHelps)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 16);
    auto cfg50 = BusSystemConfig::forProcs(16, 20000);
    auto cfg100 = BusSystemConfig::forProcs(16, 10000);
    RunResult r50 = runBusSystem(cfg50, wl);
    RunResult r100 = runBusSystem(cfg100, wl);
    EXPECT_GT(r100.procUtilization, r50.procUtilization);
    EXPECT_LT(r100.missLatencyNs, r50.missLatencyNs);
}

TEST(SystemDeathTest, MismatchedSizesFatal)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8, 100);
    auto cfg = RingSystemConfig::forProcs(16);
    EXPECT_EXIT(runRingSystem(cfg, wl, ProtocolKind::RingSnoop),
                testing::ExitedWithCode(1), "nodes");
    auto bus_cfg = BusSystemConfig::forProcs(16);
    EXPECT_EXIT(runBusSystem(bus_cfg, wl),
                testing::ExitedWithCode(1), "nodes");
}

TEST(SystemDeathTest, RingRunNeedsRingProtocol)
{
    auto wl = smallWorkload(trace::Benchmark::MP3D, 8, 100);
    auto cfg = RingSystemConfig::forProcs(8);
    EXPECT_EXIT(runRingSystem(cfg, wl, ProtocolKind::BusSnoop),
                testing::ExitedWithCode(1), "ring protocol");
}

TEST(Config, ProtocolNames)
{
    EXPECT_STREQ(protocolName(ProtocolKind::RingSnoop), "ring-snoop");
    EXPECT_STREQ(protocolName(ProtocolKind::RingDirectory),
                 "ring-directory");
    EXPECT_STREQ(protocolName(ProtocolKind::BusSnoop), "bus-snoop");
}

TEST(Config, ForProcsWiresBlockSizes)
{
    auto rc = RingSystemConfig::forProcs(16, 4000);
    EXPECT_EQ(rc.ring.nodes, 16u);
    EXPECT_EQ(rc.ring.clockPeriod, 4000u);
    EXPECT_EQ(rc.ring.frame.blockBytes,
              rc.common.cacheGeometry.blockBytes);
    auto bc = BusSystemConfig::forProcs(8, 10000);
    EXPECT_EQ(bc.bus.blockBytes, bc.common.cacheGeometry.blockBytes);
}

TEST(Config, CheckConfigReportsEveryProblemAtOnce)
{
    SystemConfig c;
    c.procCycle = 0;
    c.warmupFrac = 2.0;
    c.faults.corruptRate = 7.0; // not a probability
    std::vector<std::string> errors = c.checkConfig();
    EXPECT_GE(errors.size(), 3u);
    bool saw_cycle = false, saw_warmup = false, saw_fault = false;
    for (const std::string &e : errors) {
        saw_cycle |= e.find("cycle") != std::string::npos;
        saw_warmup |= e.find("warmup") != std::string::npos;
        saw_fault |= e.find("fault") != std::string::npos;
    }
    EXPECT_TRUE(saw_cycle);
    EXPECT_TRUE(saw_warmup);
    EXPECT_TRUE(saw_fault);
}

TEST(Config, CheckConfigNamesFieldAndValue)
{
    // Each message leads with "<field> = <value>: ..." so a sweep
    // log pinpoints the bad knob without a debugger.
    auto contains = [](const std::vector<std::string> &errors,
                       const char *needle) {
        for (const std::string &e : errors)
            if (e.find(needle) != std::string::npos)
                return true;
        return false;
    };

    SystemConfig c;
    c.procCycle = 0;
    c.warmupFrac = 1.5;
    std::vector<std::string> errors = c.checkConfig();
    EXPECT_TRUE(contains(errors, "procCycle = 0"));
    EXPECT_TRUE(contains(errors, "warmupFrac = 1.5"));

    c = SystemConfig{};
    c.memoryLatency = 0;
    EXPECT_TRUE(contains(c.checkConfig(), "memoryLatency = 0"));

    c = SystemConfig{};
    c.procCycle = 2'000'000; // 0.5 MIPS: three orders off the paper
    EXPECT_TRUE(contains(c.checkConfig(), "procCycle = 2000000 ps"));

    c = SystemConfig{};
    c.faults.dropRate = 7.0;
    c.faults.maxRetries = 0;
    errors = c.checkConfig();
    EXPECT_TRUE(contains(errors, "dropRate = 7"));
    EXPECT_TRUE(contains(errors, "maxRetries = 0"));
}

TEST(Config, DefaultSystemConfigIsValid)
{
    SystemConfig c;
    EXPECT_TRUE(c.checkConfig().empty());
}

TEST(ConfigDeathTest, ValidateIsFatalOnFirstError)
{
    SystemConfig c;
    c.memoryLatency = 0;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "memory");
}

} // namespace
} // namespace ringsim::core
