/**
 * @file
 * Unit tests for the trace-driven blocking processor, using a stub
 * protocol with scripted hit/miss behavior.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/core/processor.hpp"

namespace ringsim::core {
namespace {

/** Protocol stub: even block numbers hit, odd ones stall fixed time. */
class StubProtocol : public Protocol
{
  public:
    StubProtocol(sim::Kernel &kernel, Tick stall)
        : kernel_(kernel), stall_(stall)
    {}

    bool
    tryAccess(NodeId, const trace::TraceRecord &ref) override
    {
        ++accesses;
        return (ref.addr / 16) % 2 == 0;
    }

    void
    startTransaction(NodeId, const trace::TraceRecord &,
                     std::function<void()> on_complete) override
    {
        ++transactions;
        kernel_.postIn(stall_, std::move(on_complete));
    }

    int accesses = 0;
    int transactions = 0;

  private:
    sim::Kernel &kernel_;
    Tick stall_;
};

std::unique_ptr<trace::VectorStream>
makeStream(const std::vector<trace::TraceRecord> &recs)
{
    return std::make_unique<trace::VectorStream>(recs);
}

TEST(Processor, AllHitsRunAtOneCyclePerRef)
{
    sim::Kernel kernel;
    StubProtocol protocol(kernel, 0);
    Metrics metrics(1);
    auto stream = makeStream({{trace::Op::Read, 0x00},
                              {trace::Op::Instr, 0x20},
                              {trace::Op::Read, 0x40}});
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    bool done = false;
    cpu.onDone([&]() { done = true; });
    cpu.start(0);
    kernel.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(metrics.busy(0), 3000u);
    EXPECT_EQ(metrics.stall(0), 0u);
    EXPECT_EQ(cpu.transactions(), 0u);
    EXPECT_EQ(protocol.accesses, 2) << "instr refs bypass the protocol";
}

TEST(Processor, MissStallsAndResumes)
{
    sim::Kernel kernel;
    StubProtocol protocol(kernel, 5000);
    Metrics metrics(1);
    auto stream = makeStream({{trace::Op::Read, 0x00},
                              {trace::Op::Read, 0x10},   // miss
                              {trace::Op::Read, 0x20}});
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    cpu.start(0);
    kernel.run();
    EXPECT_EQ(cpu.transactions(), 1u);
    EXPECT_EQ(metrics.stall(0), 5000u);
    // 3 refs x 1 cycle each (the missed ref executes after the fill).
    EXPECT_EQ(metrics.busy(0), 3000u);
    // Timeline: 1 cycle hit, 5000 stall, then 1 cycle for the missed
    // ref; the final hit run ends the stream without another event.
    EXPECT_EQ(kernel.now(), 1000u + 5000u + 1000u);
}

TEST(Processor, CountsDataRefs)
{
    sim::Kernel kernel;
    StubProtocol protocol(kernel, 0);
    Metrics metrics(1);
    auto stream = makeStream({{trace::Op::Read, 0x00},
                              {trace::Op::Instr, 0x00},
                              {trace::Op::Write, 0x20}});
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    cpu.start(0);
    kernel.run();
    EXPECT_EQ(cpu.dataRefs(), 2u);
}

TEST(Processor, WarmupCallbackFiresOnce)
{
    sim::Kernel kernel;
    StubProtocol protocol(kernel, 0);
    Metrics metrics(1);
    std::vector<trace::TraceRecord> recs(10, {trace::Op::Read, 0x00});
    auto stream = makeStream(recs);
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    int warmed = 0;
    cpu.setWarmupRefs(4);
    cpu.onWarm([&]() { ++warmed; });
    cpu.start(0);
    kernel.run();
    EXPECT_EQ(warmed, 1);
}

TEST(Processor, BackToBackMisses)
{
    sim::Kernel kernel;
    StubProtocol protocol(kernel, 2000);
    Metrics metrics(1);
    auto stream = makeStream({{trace::Op::Read, 0x10},
                              {trace::Op::Read, 0x30},
                              {trace::Op::Read, 0x50}});
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    cpu.start(0);
    kernel.run();
    EXPECT_EQ(cpu.transactions(), 3u);
    EXPECT_EQ(metrics.stall(0), 6000u);
    EXPECT_EQ(metrics.busy(0), 3000u);
}

TEST(Processor, EmptyStreamFinishesImmediately)
{
    sim::Kernel kernel;
    StubProtocol protocol(kernel, 0);
    Metrics metrics(1);
    auto stream = makeStream({});
    Processor cpu(kernel, 0, 1000, *stream, protocol, metrics);
    bool done = false;
    cpu.onDone([&]() { done = true; });
    cpu.start(0);
    kernel.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(metrics.busy(0), 0u);
}

} // namespace
} // namespace ringsim::core
