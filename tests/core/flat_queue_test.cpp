/**
 * @file
 * Unit tests for core::FlatQueue, the cache-line-aligned circular
 * buffer that replaced std::deque on the ring's per-visit insert
 * path. The interesting cases are the ones a straight FIFO sweep
 * never hits: index wrap-around inside a fixed capacity, and growth
 * triggered while the live window straddles the buffer seam.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/core/flat_queue.hpp"

namespace ringsim::core {
namespace {

TEST(FlatQueue, StartsEmpty)
{
    FlatQueue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(FlatQueue, PushPopPreservesFifoOrder)
{
    FlatQueue<int> q;
    for (int i = 0; i < 5; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(FlatQueue, GrowthPreservesOrderAndContents)
{
    // Push far past the initial capacity so the buffer doubles
    // several times, then drain and check every element.
    FlatQueue<int> q;
    constexpr int kCount = 1000;
    for (int i = 0; i < kCount; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), static_cast<std::size_t>(kCount));
    for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(FlatQueue, IndicesWrapWithinFixedCapacity)
{
    // Keep the population below the initial capacity while cycling
    // enough elements through that head and tail wrap the buffer many
    // times. The queue must never grow (contents would survive anyway,
    // but wrap-around is the case under test) and must stay FIFO.
    FlatQueue<int> q;
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 100; ++round) {
        for (int k = 0; k < 5; ++k)
            q.push_back(next_in++);
        for (int k = 0; k < 5; ++k) {
            ASSERT_EQ(q.front(), next_out++);
            q.pop_front();
        }
    }
    EXPECT_TRUE(q.empty());
}

TEST(FlatQueue, GrowthWhileWindowStraddlesSeam)
{
    // Arrange for the live window to wrap the physical end of the
    // buffer, then push until growth relinearizes it. Order must be
    // preserved across the copy-out.
    FlatQueue<int> q;
    int next_in = 0;
    int next_out = 0;
    // Advance head into the middle of the initial buffer...
    for (int k = 0; k < 6; ++k)
        q.push_back(next_in++);
    for (int k = 0; k < 6; ++k) {
        ASSERT_EQ(q.front(), next_out++);
        q.pop_front();
    }
    // ...then fill past the physical end (window straddles the seam)
    // and keep pushing through at least one growth.
    for (int k = 0; k < 64; ++k)
        q.push_back(next_in++);
    while (!q.empty()) {
        ASSERT_EQ(q.front(), next_out++);
        q.pop_front();
    }
    EXPECT_EQ(next_out, next_in);
}

TEST(FlatQueue, MoveOnlyFriendlyTypes)
{
    // The ring queues hold message structs with owning members;
    // strings stand in for "not trivially copyable".
    FlatQueue<std::string> q;
    for (int i = 0; i < 40; ++i)
        q.push_back("payload-" + std::to_string(i));
    for (int i = 0; i < 40; ++i) {
        EXPECT_EQ(q.front(), "payload-" + std::to_string(i));
        q.pop_front();
    }
}

TEST(FlatQueueDeathTest, FrontOnEmptyPanics)
{
    FlatQueue<int> q;
    EXPECT_DEATH(q.front(), "empty FlatQueue");
}

TEST(FlatQueueDeathTest, PopOnEmptyPanics)
{
    FlatQueue<int> q;
    q.push_back(1);
    q.pop_front();
    EXPECT_DEATH(q.pop_front(), "empty FlatQueue");
}

} // namespace
} // namespace ringsim::core
