/**
 * @file
 * Unit tests for the dual-directory (snoop tag mirror) model.
 */

#include <gtest/gtest.h>

#include "src/cache/dual_directory.hpp"

namespace ringsim::cache {
namespace {

TEST(DualDirectory, BanksByBlockParity)
{
    Geometry g;
    DualDirectory dd(g, 2);
    EXPECT_EQ(dd.banks(), 2u);
    EXPECT_EQ(dd.bank(0x000), 0u); // block 0
    EXPECT_EQ(dd.bank(0x010), 1u); // block 1
    EXPECT_EQ(dd.bank(0x020), 0u); // block 2
    EXPECT_EQ(dd.bank(0x01f), 1u); // still block 1
}

TEST(DualDirectory, TracksInterArrivalPerBank)
{
    Geometry g;
    DualDirectory dd(g, 2);
    EXPECT_EQ(dd.lookup(0x000, 100), 0u) << "first lookup has no gap";
    EXPECT_EQ(dd.lookup(0x010, 110), 0u) << "other bank, first lookup";
    EXPECT_EQ(dd.lookup(0x000, 140), 40u);
    EXPECT_EQ(dd.lookup(0x010, 160), 50u);
    EXPECT_EQ(dd.minInterArrival(), 40u);
    EXPECT_EQ(dd.totalLookups(), 4u);
    EXPECT_EQ(dd.bankLookups(0), 2u);
    EXPECT_EQ(dd.bankLookups(1), 2u);
}

TEST(DualDirectory, MinGapTracksSmallest)
{
    Geometry g;
    DualDirectory dd(g, 2);
    dd.lookup(0x000, 0);
    dd.lookup(0x000, 100);
    dd.lookup(0x000, 120);
    EXPECT_EQ(dd.minInterArrival(), 20u);
}

TEST(DualDirectoryDeathTest, OutOfOrderPanics)
{
    Geometry g;
    DualDirectory dd(g, 2);
    dd.lookup(0x000, 100);
    EXPECT_DEATH(dd.lookup(0x000, 50), "order");
}

TEST(DualDirectoryDeathTest, BankRangePanics)
{
    Geometry g;
    DualDirectory dd(g, 2);
    EXPECT_DEATH(dd.bankLookups(2), "range");
}

} // namespace
} // namespace ringsim::cache
