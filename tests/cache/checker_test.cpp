/**
 * @file
 * Unit tests for the coherence invariant checker.
 */

#include <gtest/gtest.h>

#include "src/cache/checker.hpp"

namespace ringsim::cache {
namespace {

constexpr Addr blk = 0x1000;

TEST(Checker, ReadersAccumulate)
{
    CoherenceChecker ck(4);
    ck.readFill(0, blk, true);
    ck.readFill(1, blk, true);
    EXPECT_TRUE(ck.holds(0, blk));
    EXPECT_TRUE(ck.holds(1, blk));
    EXPECT_EQ(ck.sharerCount(blk), 2u);
    EXPECT_EQ(ck.writer(blk), invalidNode);
}

TEST(Checker, WriteFillTakesOwnership)
{
    CoherenceChecker ck(4);
    ck.writeFill(2, blk);
    EXPECT_TRUE(ck.holdsExclusive(2, blk));
    EXPECT_EQ(ck.writer(blk), 2u);
    EXPECT_EQ(ck.totalWrites(), 1u);
}

TEST(Checker, WriteHitBumpsVersion)
{
    CoherenceChecker ck(2);
    ck.writeFill(0, blk);
    ck.writeHit(0, blk);
    ck.writeHit(0, blk);
    EXPECT_EQ(ck.totalWrites(), 3u);
}

TEST(Checker, DowngradeMakesMemoryFresh)
{
    CoherenceChecker ck(2);
    ck.writeFill(0, blk);
    ck.downgrade(0, blk);
    // Memory was refreshed: a clean fill now observes the latest
    // version.
    ck.readFill(1, blk, true);
    EXPECT_EQ(ck.sharerCount(blk), 2u);
}

TEST(Checker, WritebackReleasesOwnership)
{
    CoherenceChecker ck(2);
    ck.writeFill(0, blk);
    ck.writeback(0, blk);
    EXPECT_EQ(ck.writer(blk), invalidNode);
    ck.readFill(1, blk, true); // memory fresh after write-back
}

TEST(Checker, UpgradeSequence)
{
    CoherenceChecker ck(3);
    ck.readFill(0, blk, true);
    ck.readFill(1, blk, true);
    // Node 1 upgrades: others drop, then it write-fills.
    ck.drop(0, blk);
    ck.writeFill(1, blk);
    EXPECT_TRUE(ck.holdsExclusive(1, blk));
    EXPECT_FALSE(ck.holds(0, blk));
}

TEST(CheckerDeathTest, StaleCleanFillCaught)
{
    CoherenceChecker ck(3);
    ck.writeFill(0, blk);
    // Node 0 silently loses WE without writing back: a later clean
    // fill would read stale memory.
    EXPECT_DEATH(
        {
            CoherenceChecker bad(3);
            bad.writeFill(0, blk);
            bad.readFill(1, blk, true);
        },
        "dirty copy");
}

TEST(CheckerDeathTest, SecondWriterCaught)
{
    EXPECT_DEATH(
        {
            CoherenceChecker ck(3);
            ck.writeFill(0, blk);
            ck.writeFill(1, blk);
        },
        "WE");
}

TEST(CheckerDeathTest, WriterWithReadersCaught)
{
    EXPECT_DEATH(
        {
            CoherenceChecker ck(3);
            ck.readFill(0, blk, true);
            ck.writeFill(1, blk);
        },
        "RS copies remain");
}

TEST(CheckerDeathTest, DropOfDirtyCopyCaught)
{
    EXPECT_DEATH(
        {
            CoherenceChecker ck(2);
            ck.writeFill(0, blk);
            ck.drop(0, blk);
        },
        "write-back");
}

TEST(CheckerDeathTest, VersionSkewCaught)
{
    EXPECT_DEATH(
        {
            CoherenceChecker ck(2);
            ck.writeFill(0, blk);
            ck.downgrade(0, blk);
            ck.drop(0, blk);
            // Another write without the reader observing it...
            ck.writeFill(0, blk);
            ck.downgrade(0, blk);
            ck.drop(0, blk);
            // ...is fine; but pretending memory still has version 1
            // while the block was written again must be caught. We
            // simulate that by a stale-memory fill path: write, drop
            // without downgrade.
            ck.writeFill(1, blk);
            ck.readFill(0, blk, true);
        },
        "");
}

TEST(CheckerDeathTest, RejectsHugeSystems)
{
    EXPECT_EXIT(CoherenceChecker ck(65), testing::ExitedWithCode(1),
                "1..64");
}

TEST(Checker, ChecksCounted)
{
    CoherenceChecker ck(2);
    ck.readFill(0, blk, true);
    ck.drop(0, blk);
    EXPECT_GE(ck.checksPerformed(), 2u);
}

} // namespace
} // namespace ringsim::cache
