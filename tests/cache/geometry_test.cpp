/**
 * @file
 * Unit tests for cache geometry math.
 */

#include <gtest/gtest.h>

#include "src/cache/geometry.hpp"

namespace ringsim::cache {
namespace {

TEST(Geometry, PaperDefaults)
{
    Geometry g;
    g.validate();
    EXPECT_EQ(g.sizeBytes, 128u * 1024u);
    EXPECT_EQ(g.blockBytes, 16u);
    EXPECT_EQ(g.assoc, 1u);
    EXPECT_EQ(g.blocks(), 8192u);
    EXPECT_EQ(g.sets(), 8192u);
}

TEST(Geometry, BlockMath)
{
    Geometry g;
    EXPECT_EQ(g.blockNumber(0x100), 0x10u);
    EXPECT_EQ(g.blockBase(0x10f), 0x100u);
    EXPECT_EQ(g.blockBase(0x100), 0x100u);
}

TEST(Geometry, SetIndexWraps)
{
    Geometry g;
    Addr a = 0x100;
    Addr b = a + g.sets() * g.blockBytes;
    EXPECT_EQ(g.setIndex(a), g.setIndex(b));
    EXPECT_NE(g.tag(a), g.tag(b));
}

TEST(Geometry, TagRoundTrip)
{
    Geometry g;
    for (Addr a : {Addr(0), Addr(0x12340), Addr(0x40'0001'0000ULL)}) {
        Addr base = g.blockBase(a);
        EXPECT_EQ(g.blockFromTag(g.tag(a), g.setIndex(a)), base);
    }
}

TEST(Geometry, Associative)
{
    Geometry g;
    g.assoc = 4;
    g.validate();
    EXPECT_EQ(g.sets(), 2048u);
}

TEST(GeometryDeathTest, RejectsBadShapes)
{
    Geometry g;
    g.blockBytes = 24;
    EXPECT_EXIT(g.validate(), testing::ExitedWithCode(1),
                "power of two");
    g = Geometry{};
    g.assoc = 0;
    EXPECT_EXIT(g.validate(), testing::ExitedWithCode(1),
                "associativity");
}

} // namespace
} // namespace ringsim::cache
