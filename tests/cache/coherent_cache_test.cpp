/**
 * @file
 * Unit tests for the 3-state coherent cache.
 */

#include <gtest/gtest.h>

#include "src/cache/coherent_cache.hpp"

namespace ringsim::cache {
namespace {

Geometry
smallGeometry()
{
    Geometry g;
    g.sizeBytes = 1024; // 64 blocks
    g.blockBytes = 16;
    return g;
}

TEST(CoherentCache, MissWhenEmpty)
{
    CoherentCache c(smallGeometry());
    EXPECT_EQ(c.classify(0x100, false), AccessResult::Miss);
    EXPECT_EQ(c.classify(0x100, true), AccessResult::Miss);
    EXPECT_EQ(c.state(0x100), State::Invalid);
}

TEST(CoherentCache, ReadFillHits)
{
    CoherentCache c(smallGeometry());
    Victim v = c.fill(0x100, State::ReadShared);
    EXPECT_FALSE(v.valid);
    EXPECT_EQ(c.classify(0x100, false), AccessResult::Hit);
    EXPECT_EQ(c.classify(0x104, false), AccessResult::Hit)
        << "same block, different byte";
    EXPECT_EQ(c.state(0x100), State::ReadShared);
}

TEST(CoherentCache, WriteToSharedIsUpgrade)
{
    CoherentCache c(smallGeometry());
    c.fill(0x100, State::ReadShared);
    EXPECT_EQ(c.classify(0x100, true), AccessResult::UpgradeMiss);
    c.upgrade(0x100);
    EXPECT_EQ(c.classify(0x100, true), AccessResult::Hit);
    EXPECT_EQ(c.state(0x100), State::WriteExcl);
}

TEST(CoherentCache, InvalidateRemoves)
{
    CoherentCache c(smallGeometry());
    c.fill(0x100, State::ReadShared);
    c.invalidate(0x100);
    EXPECT_EQ(c.state(0x100), State::Invalid);
    // Invalidating an absent block is a no-op.
    c.invalidate(0x200);
}

TEST(CoherentCache, DowngradeKeepsReadable)
{
    CoherentCache c(smallGeometry());
    c.fill(0x100, State::WriteExcl);
    c.downgrade(0x100);
    EXPECT_EQ(c.state(0x100), State::ReadShared);
    EXPECT_EQ(c.classify(0x100, true), AccessResult::UpgradeMiss);
}

TEST(CoherentCache, DirectMappedConflictEvicts)
{
    CoherentCache c(smallGeometry());
    Geometry g = smallGeometry();
    Addr a = 0x100;
    Addr b = a + g.sets() * g.blockBytes; // same set, different tag
    c.fill(a, State::ReadShared);
    Victim v = c.fill(b, State::ReadShared);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.blockAddr, g.blockBase(a));
    EXPECT_EQ(v.state, State::ReadShared);
    EXPECT_EQ(c.state(a), State::Invalid);
    EXPECT_EQ(c.state(b), State::ReadShared);
}

TEST(CoherentCache, DirtyEvictionIsWriteback)
{
    CoherentCache c(smallGeometry());
    Geometry g = smallGeometry();
    Addr a = 0x100;
    Addr b = a + g.sets() * g.blockBytes;
    c.fill(a, State::WriteExcl);
    Victim v = c.fill(b, State::ReadShared);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.state, State::WriteExcl);
    EXPECT_EQ(c.writebacks().value(), 1u);
    EXPECT_EQ(c.evictions().value(), 1u);
}

TEST(CoherentCache, RefillPresentBlockDoesNotEvict)
{
    CoherentCache c(smallGeometry());
    c.fill(0x100, State::ReadShared);
    Victim v = c.fill(0x100, State::WriteExcl);
    EXPECT_FALSE(v.valid);
    EXPECT_EQ(c.state(0x100), State::WriteExcl);
    EXPECT_EQ(c.validBlocks(), 1u);
}

TEST(CoherentCache, LruInSet)
{
    Geometry g = smallGeometry();
    g.assoc = 2;
    CoherentCache c(g);
    Addr stride = g.sets() * g.blockBytes;
    Addr a = 0x100;
    Addr b = a + stride;
    Addr d = a + 2 * stride;
    c.fill(a, State::ReadShared);
    c.fill(b, State::ReadShared);
    c.touch(a); // make b the LRU way
    Victim v = c.fill(d, State::ReadShared);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.blockAddr, g.blockBase(b));
    EXPECT_EQ(c.state(a), State::ReadShared);
}

TEST(CoherentCache, HitStats)
{
    CoherentCache c(smallGeometry());
    c.fill(0x100, State::ReadShared);
    c.touch(0x100);
    c.touch(0x104);
    EXPECT_EQ(c.hits().value(), 2u);
    EXPECT_EQ(c.fills().value(), 1u);
}

TEST(CoherentCache, ClearDropsEverything)
{
    CoherentCache c(smallGeometry());
    c.fill(0x100, State::WriteExcl);
    c.clear();
    EXPECT_EQ(c.validBlocks(), 0u);
    EXPECT_EQ(c.state(0x100), State::Invalid);
}

TEST(CoherentCacheDeathTest, MisusePanics)
{
    CoherentCache c(smallGeometry());
    EXPECT_DEATH(c.touch(0x100), "uncached");
    EXPECT_DEATH(c.upgrade(0x100), "uncached");
    EXPECT_DEATH(c.downgrade(0x100), "uncached");
    c.fill(0x100, State::WriteExcl);
    EXPECT_DEATH(c.upgrade(0x100), "WE");
}

TEST(CoherentCache, StateNames)
{
    EXPECT_STREQ(stateName(State::Invalid), "INV");
    EXPECT_STREQ(stateName(State::ReadShared), "RS");
    EXPECT_STREQ(stateName(State::WriteExcl), "WE");
}

} // namespace
} // namespace ringsim::cache
