/**
 * @file
 * Continuous invariant monitoring: the checker detects deliberately
 * broken protocol action sequences, and the monitor either aborts
 * (historical behavior) or records structured violations.
 */

#include <gtest/gtest.h>

#include "src/cache/checker.hpp"
#include "src/cache/invariant_monitor.hpp"

namespace ringsim::cache {
namespace {

TEST(InvariantMonitor, RecordsMultipleWriters)
{
    InvariantMonitor monitor(InvariantMonitor::Mode::Record);
    CoherenceChecker checker(4);
    checker.setMonitor(&monitor);

    // A broken protocol: grants a second WE copy without invalidating
    // the first. The checker must flag it and keep running.
    checker.writeFill(0, 0x100);
    checker.writeFill(1, 0x100);

    ASSERT_FALSE(monitor.clean());
    EXPECT_GE(monitor.countOf(Violation::Kind::MultipleWriters), 1u);
    const Violation &v = monitor.violations().front();
    EXPECT_EQ(v.block, 0x100u);
    EXPECT_FALSE(v.detail.empty());
}

TEST(InvariantMonitor, RecordsStaleCleanFill)
{
    InvariantMonitor monitor(InvariantMonitor::Mode::Record);
    CoherenceChecker checker(4);
    checker.setMonitor(&monitor);

    // Node 0 dirties the block; a clean fill from memory at node 1
    // without a preceding write-back reads stale data.
    checker.writeFill(0, 0x200);
    checker.readFill(1, 0x200, /*from_memory=*/true);

    ASSERT_FALSE(monitor.clean());
    EXPECT_FALSE(monitor.violations().empty());
}

TEST(InvariantMonitor, CleanSequencesStayClean)
{
    InvariantMonitor monitor(InvariantMonitor::Mode::Record);
    CoherenceChecker checker(4);
    checker.setMonitor(&monitor);

    checker.writeFill(0, 0x300);
    checker.writeHit(0, 0x300);
    checker.writeback(0, 0x300);
    checker.readFill(1, 0x300, /*from_memory=*/true);
    checker.readFill(2, 0x300, /*from_memory=*/true);
    checker.drop(1, 0x300);
    checker.drop(2, 0x300);

    EXPECT_TRUE(monitor.clean()) << monitor.summary();
    EXPECT_GT(monitor.checksPerformed(), 0u);
}

TEST(InvariantMonitor, SummaryNamesKindBlockAndNodes)
{
    InvariantMonitor monitor(InvariantMonitor::Mode::Record);
    CoherenceChecker checker(4);
    checker.setMonitor(&monitor);

    checker.writeFill(0, 0x100);
    checker.writeFill(1, 0x100);

    std::string summary = monitor.summary();
    EXPECT_NE(summary.find("violation"), std::string::npos);
    EXPECT_NE(summary.find("100"), std::string::npos) << summary;
}

TEST(InvariantMonitor, CountOfFiltersByKind)
{
    InvariantMonitor monitor(InvariantMonitor::Mode::Record);
    Violation v;
    v.kind = Violation::Kind::TraversalOverrun;
    monitor.report(v);
    v.kind = Violation::Kind::StaleRead;
    monitor.report(v);
    EXPECT_EQ(monitor.countOf(Violation::Kind::TraversalOverrun), 1u);
    EXPECT_EQ(monitor.countOf(Violation::Kind::StaleRead), 1u);
    EXPECT_EQ(monitor.countOf(Violation::Kind::MultipleWriters), 0u);
    EXPECT_EQ(monitor.violations().size(), 2u);
}

TEST(InvariantMonitor, KindNamesArePrintable)
{
    EXPECT_STREQ(violationKindName(Violation::Kind::MultipleWriters),
                 "multiple-writers");
    EXPECT_STREQ(violationKindName(Violation::Kind::TraversalOverrun),
                 "traversal-overrun");
}

TEST(InvariantMonitorDeathTest, AbortModeKeepsHistoricalPanic)
{
    InvariantMonitor monitor(InvariantMonitor::Mode::Abort);
    CoherenceChecker checker(4);
    checker.setMonitor(&monitor);
    checker.writeFill(0, 0x100);
    EXPECT_DEATH(checker.writeFill(1, 0x100), "coexists|WE");
}

TEST(InvariantMonitorDeathTest, NoMonitorPanicsAsBefore)
{
    CoherenceChecker checker(4);
    checker.writeFill(0, 0x100);
    EXPECT_DEATH(checker.writeFill(1, 0x100), "coexists|WE");
}

} // namespace
} // namespace ringsim::cache
