/**
 * @file
 * FleetCore tests against real worker daemons on Unix sockets.
 *
 * The coordinator is transport-independent (it implements the same
 * LineService interface the workers do), so the tests drive
 * FleetCore::handleLine directly and only the workers get sockets.
 * The load-bearing property is satellite (d) of the fleet PR: any
 * partition of a figure sweep across k workers must reassemble
 * byte-identically to a direct single-process run, faults on or off.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/fleet/coordinator.hpp"
#include "src/fleet/fleet_config.hpp"
#include "src/service/client.hpp"
#include "src/service/job.hpp"
#include "src/service/server.hpp"
#include "src/service/socket_server.hpp"
#include "src/util/json.hpp"

namespace ringsim::fleet {
namespace {

util::JsonValue
parse(const std::string &line)
{
    util::JsonValue v;
    std::string error;
    EXPECT_TRUE(util::tryParseJson(line, &v, &error))
        << error << " in: " << line;
    return v;
}

/** Worker endpoints must be unique per process *and* per daemon —
 *  one test may run several fleets of several workers each. */
std::string
uniqueEndpoint()
{
    static std::atomic<int> counter{0};
    return testing::TempDir() + "/ringsim_fleet_test." +
           std::to_string(::getpid()) + "." +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

service::ServiceConfig
workerConfig()
{
    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queueDepth = 16;
    cfg.memCacheEntries = 64;
    cfg.enableTestJobs = true;
    return cfg;
}

/** One live worker daemon on a Unix socket, torn down on scope exit. */
class WorkerDaemon
{
  public:
    explicit WorkerDaemon(const service::ServiceConfig &cfg)
        : core_(cfg), endpoint_(uniqueEndpoint()),
          server_(core_, endpoint_)
    {
        std::string error;
        started_ = server_.tryStart(&error);
        EXPECT_TRUE(started_) << error;
        if (started_)
            pump_ = std::thread([this]() { server_.serve(); });
    }

    ~WorkerDaemon()
    {
        if (!started_)
            return;
        service::ServiceClient client;
        std::string error, response;
        if (client.tryConnect(endpoint_, &error))
            (void)client.tryRequest("{\"op\":\"shutdown\"}",
                                    &response, &error);
        pump_.join();
    }

    const std::string &endpoint() const { return endpoint_; }

  private:
    service::ServiceCore core_;
    std::string endpoint_;
    service::SocketServer server_;
    bool started_ = false;
    std::thread pump_;
};

/** A coordinator over @p n fresh worker daemons. */
class Fleet
{
  public:
    explicit Fleet(std::size_t n, FleetConfig cfg = FleetConfig{},
                   const service::ServiceConfig &worker_cfg =
                       workerConfig())
    {
        for (std::size_t i = 0; i < n; ++i) {
            workers_.push_back(
                std::make_unique<WorkerDaemon>(worker_cfg));
            cfg.workers.push_back(workers_.back()->endpoint());
        }
        cfg.enableTestJobs = true;
        core_ = std::make_unique<FleetCore>(cfg);
    }

    util::JsonValue request(const std::string &line)
    {
        return parse(core_->handleLine("test-client", line));
    }

    /** Tear a worker down; its socket goes away with it. */
    void killWorker(std::size_t i) { workers_[i].reset(); }

    FleetCore &core() { return *core_; }

  private:
    std::vector<std::unique_ptr<WorkerDaemon>> workers_;
    std::unique_ptr<FleetCore> core_;
};

/** The reference run: same job executed directly, no fleet. */
std::string
directText(const std::string &job_json)
{
    util::JsonValue job;
    std::string error;
    EXPECT_TRUE(util::tryParseJson(job_json, &job, &error)) << error;
    service::JobSpec spec;
    EXPECT_TRUE(service::JobSpec::tryParse(job, true, &spec, &error))
        << error;
    util::JsonValue result = service::executeJob(spec, 2);
    std::vector<std::string> errors;
    std::string text = result.getString("text", "", &errors);
    EXPECT_FALSE(text.empty());
    return text;
}

std::string
submitLine(const std::string &job_json)
{
    return "{\"op\":\"submit\",\"wait\":true,\"job\":" + job_json +
           "}";
}

constexpr const char *kSweepJob =
    "{\"type\":\"sweep\",\"figure\":\"fig3\",\"refs\":600,"
    "\"fast\":true}";

constexpr const char *kFaultySweepJob =
    "{\"type\":\"sweep\",\"figure\":\"fig3\",\"refs\":600,"
    "\"fast\":true,\"faults\":{\"corrupt_rate\":0.001,\"seed\":7,"
    "\"max_faults\":50}}";

constexpr const char *kModelJob =
    "{\"type\":\"model\",\"benchmark\":\"mp3d\",\"procs\":8,"
    "\"refs\":2000,\"fast\":true}";

TEST(FleetCore, PingAndBadOps)
{
    Fleet fleet(1);
    std::vector<std::string> errors;

    util::JsonValue ping = fleet.request("{\"op\":\"ping\"}");
    EXPECT_TRUE(ping.getBool("ok", false, &errors));
    EXPECT_EQ(ping.getString("role", "", &errors), "fleet");

    util::JsonValue bad = fleet.request("{\"op\":\"warp\"}");
    EXPECT_FALSE(bad.getBool("ok", true, &errors));

    util::JsonValue cancel =
        fleet.request("{\"op\":\"cancel\",\"id\":1}");
    EXPECT_FALSE(cancel.getBool("ok", true, &errors));
    EXPECT_NE(cancel.getString("error", "", &errors).find("worker"),
              std::string::npos);

    util::JsonValue garbled = fleet.request("not json");
    EXPECT_FALSE(garbled.getBool("ok", true, &errors));

    util::JsonValue no_job = fleet.request("{\"op\":\"submit\"}");
    EXPECT_FALSE(no_job.getBool("ok", true, &errors));
}

// Satellite (d): the partition property. For every fleet size the
// split sweep must be byte-identical to the direct run — same text,
// not just same numbers — with fault injection both off and on.
TEST(FleetCore, SplitSweepMatchesDirectRunAcrossFleetSizes)
{
    const std::string expected = directText(kSweepJob);
    const std::string expected_faulty = directText(kFaultySweepJob);
    ASSERT_NE(expected, expected_faulty)
        << "fault injection changed nothing; the faulty variant "
           "is not exercising a distinct code path";

    for (std::size_t k : {1u, 2u, 3u}) {
        Fleet fleet(k);
        std::vector<std::string> errors;

        util::JsonValue r = fleet.request(submitLine(kSweepJob));
        ASSERT_TRUE(r.getBool("ok", false, &errors))
            << "k=" << k << ": "
            << r.getString("error", "", &errors);
        EXPECT_EQ(r.getString("state", "", &errors), "done");
        EXPECT_GT(r.getU64("split", 0, &errors), 1u);
        const util::JsonValue *result = r.find("result");
        ASSERT_NE(result, nullptr);
        EXPECT_EQ(result->getString("kind", "", &errors), "sweep");
        EXPECT_EQ(result->getString("text", "", &errors), expected)
            << "fleet of " << k
            << " workers diverged from the direct run";

        util::JsonValue rf =
            fleet.request(submitLine(kFaultySweepJob));
        ASSERT_TRUE(rf.getBool("ok", false, &errors))
            << "k=" << k << " (faults): "
            << rf.getString("error", "", &errors);
        const util::JsonValue *fresult = rf.find("result");
        ASSERT_NE(fresult, nullptr);
        EXPECT_EQ(fresult->getString("text", "", &errors),
                  expected_faulty)
            << "fleet of " << k
            << " workers diverged from the direct faulty run";
    }
}

TEST(FleetCore, CsvSweepMatchesDirectRun)
{
    const std::string csv_job =
        "{\"type\":\"sweep\",\"figure\":\"fig3\",\"refs\":600,"
        "\"fast\":true,\"csv\":true}";
    const std::string expected = directText(csv_job);
    Fleet fleet(2);
    std::vector<std::string> errors;
    util::JsonValue r = fleet.request(submitLine(csv_job));
    ASSERT_TRUE(r.getBool("ok", false, &errors))
        << r.getString("error", "", &errors);
    const util::JsonValue *result = r.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->getString("text", "", &errors), expected);
}

TEST(FleetCore, RequeuesPartsAroundADeadWorker)
{
    Fleet fleet(3);
    fleet.killWorker(1);

    const std::string expected = directText(kSweepJob);
    std::vector<std::string> errors;
    util::JsonValue r = fleet.request(submitLine(kSweepJob));
    ASSERT_TRUE(r.getBool("ok", false, &errors))
        << r.getString("error", "", &errors);
    const util::JsonValue *result = r.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->getString("text", "", &errors), expected)
        << "requeued parts diverged from the direct run";

    util::JsonValue stats = fleet.request("{\"op\":\"statsz\"}");
    const util::JsonValue *fstats = stats.find("fleet");
    ASSERT_NE(fstats, nullptr);
    // 36 fig3 blocks over 3 shards: some parts landed on the dead
    // worker and had to fail over to its successor.
    EXPECT_GE(fstats->getU64("requeues", 0, &errors), 1u);
    const util::JsonValue *workers = stats.find("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_EQ(workers->items().size(), 3u);
    EXPECT_FALSE(
        workers->items()[1].getBool("alive", true, &errors));
    EXPECT_TRUE(workers->items()[1].find("statsz")->isNull());
}

TEST(FleetCore, CoalescesConcurrentDuplicateSubmits)
{
    // Two executors, pinned by two sleepers: with the worker's pool
    // saturated the leader's forward stays in flight long enough for
    // the duplicate submit below to overlap deterministically. (One
    // executor would not do — ExperimentRunner runs a 1-job pool
    // inline on the submitting thread, so nothing queues.)
    service::ServiceConfig wcfg = workerConfig();
    wcfg.workers = 2;
    Fleet fleet(1, FleetConfig{}, wcfg);

    std::vector<std::thread> sleepers;
    for (int i = 0; i < 2; ++i) {
        sleepers.emplace_back([&fleet, i]() {
            std::vector<std::string> errors;
            util::JsonValue r = fleet.request(submitLine(
                "{\"type\":\"sleep\",\"ms\":" +
                std::to_string(600 + i) + "}"));
            EXPECT_TRUE(r.getBool("ok", false, &errors));
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    std::string first_line, second_line;
    std::thread leader([&fleet, &first_line]() {
        first_line =
            fleet.core().handleLine("a", submitLine(kModelJob));
    });
    // The leader is blocked on the worker (queued behind the
    // sleeper) for ~400 ms; joining within that window coalesces.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::thread waiter([&fleet, &second_line]() {
        second_line =
            fleet.core().handleLine("b", submitLine(kModelJob));
    });
    leader.join();
    waiter.join();
    for (std::thread &t : sleepers)
        t.join();

    std::vector<std::string> errors;
    util::JsonValue first = parse(first_line);
    util::JsonValue second = parse(second_line);
    ASSERT_TRUE(first.getBool("ok", false, &errors));
    ASSERT_TRUE(second.getBool("ok", false, &errors));
    EXPECT_FALSE(first.getBool("coalesced", false, &errors));
    EXPECT_TRUE(second.getBool("coalesced", false, &errors));
    EXPECT_NE(first.getU64("id", 0, &errors),
              second.getU64("id", 0, &errors));
    ASSERT_NE(first.find("result"), nullptr);
    ASSERT_NE(second.find("result"), nullptr);
    EXPECT_EQ(first.find("result")->dump(),
              second.find("result")->dump());

    util::JsonValue stats = fleet.request("{\"op\":\"statsz\"}");
    const util::JsonValue *fstats = stats.find("fleet");
    ASSERT_NE(fstats, nullptr);
    EXPECT_EQ(fstats->getU64("coalesced", 0, &errors), 1u);
    EXPECT_EQ(fstats->getU64("inflight", 1, &errors), 0u);
}

TEST(FleetCore, PollReplaysTheRetainedAnswer)
{
    Fleet fleet(1);
    std::vector<std::string> errors;
    util::JsonValue r = fleet.request(submitLine(kModelJob));
    ASSERT_TRUE(r.getBool("ok", false, &errors));
    std::uint64_t id = r.getU64("id", 0, &errors);
    ASSERT_GT(id, 0u);

    util::JsonValue p = fleet.request(
        "{\"op\":\"poll\",\"id\":" + std::to_string(id) + "}");
    ASSERT_TRUE(p.getBool("ok", false, &errors));
    EXPECT_EQ(p.getString("op", "", &errors), "poll");
    ASSERT_NE(p.find("result"), nullptr);
    EXPECT_EQ(p.find("result")->dump(), r.find("result")->dump());

    util::JsonValue unknown =
        fleet.request("{\"op\":\"poll\",\"id\":9999}");
    EXPECT_FALSE(unknown.getBool("ok", true, &errors));
}

TEST(FleetCore, DegradesToTheModelTierWhenNoWorkerAnswers)
{
    // A fleet whose one worker endpoint was never bound: every
    // forward is a transport failure.
    FleetConfig cfg;
    cfg.workers = {uniqueEndpoint()};
    cfg.degradeToModel = true;
    cfg.enableTestJobs = true;
    FleetCore degrading(cfg);

    std::vector<std::string> errors;
    util::JsonValue r = parse(
        degrading.handleLine("c", submitLine(kModelJob)));
    ASSERT_TRUE(r.getBool("ok", false, &errors))
        << r.getString("error", "", &errors);
    EXPECT_TRUE(r.getBool("degraded", false, &errors));
    ASSERT_NE(r.find("result"), nullptr);

    // Without the degrade escape hatch the same submit is a
    // structured failure with a retry hint, not a hang.
    cfg.degradeToModel = false;
    cfg.retryAfterMs = 125;
    FleetCore failing(cfg);
    util::JsonValue f =
        parse(failing.handleLine("c", submitLine(kModelJob)));
    EXPECT_FALSE(f.getBool("ok", true, &errors));
    EXPECT_NE(f.getString("error", "", &errors)
                  .find("fleet unavailable"),
              std::string::npos);
    EXPECT_EQ(f.getU64("retry_after_ms", 0, &errors), 125u);
}

TEST(FleetCore, StatszAggregatesWorkerSections)
{
    Fleet fleet(2);
    std::vector<std::string> errors;
    util::JsonValue r = fleet.request(submitLine(kModelJob));
    ASSERT_TRUE(r.getBool("ok", false, &errors));

    util::JsonValue stats = fleet.request("{\"op\":\"statsz\"}");
    ASSERT_TRUE(stats.getBool("ok", false, &errors));
    EXPECT_EQ(stats.getString("role", "", &errors), "fleet");

    const util::JsonValue *fstats = stats.find("fleet");
    ASSERT_NE(fstats, nullptr);
    EXPECT_EQ(fstats->getU64("workers", 0, &errors), 2u);
    EXPECT_EQ(fstats->getU64("submitted", 0, &errors), 1u);
    EXPECT_EQ(fstats->getU64("forwarded", 0, &errors), 1u);
    EXPECT_EQ(fstats->getU64("retained", 0, &errors), 1u);

    const util::JsonValue *workers = stats.find("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_EQ(workers->items().size(), 2u);
    for (const util::JsonValue &w : workers->items()) {
        EXPECT_FALSE(w.getString("endpoint", "", &errors).empty());
        EXPECT_TRUE(w.getBool("alive", false, &errors));
        const util::JsonValue *wstats = w.find("statsz");
        ASSERT_NE(wstats, nullptr);
        EXPECT_TRUE(wstats->isObject());
    }

    // The one model job completed on exactly one of the workers.
    const util::JsonValue *totals = stats.find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_EQ(totals->getU64("submitted", 0, &errors), 1u);
    EXPECT_EQ(totals->getU64("completed", 0, &errors), 1u);
}

} // namespace
} // namespace ringsim::fleet
