/**
 * @file
 * Tests of the coordinator's single-flight rendezvous: waiters
 * receive exactly the leader's published bytes, an aborting leader
 * promotes exactly one waiter instead of orphaning them, and
 * distinct keys never interfere. Threads are real here — the class
 * exists to synchronize them — but every assertion is on
 * deterministic post-join state, not timing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/fleet/single_flight.hpp"

namespace ringsim::fleet {
namespace {

TEST(SingleFlight, FirstJoinLeadsPublishRetiresTheFlight)
{
    SingleFlight sf;
    std::string value;
    ASSERT_EQ(sf.join("k", &value), SingleFlight::Role::Leader);
    EXPECT_EQ(sf.inflight(), 1u);
    sf.publish("k", "bytes");
    EXPECT_EQ(sf.inflight(), 0u);
    // A join after publish starts a fresh flight — the cache, not
    // the flight map, serves repeats.
    ASSERT_EQ(sf.join("k", &value), SingleFlight::Role::Leader);
    sf.abort("k");
    EXPECT_EQ(sf.coalesced(), 0u);
}

TEST(SingleFlight, DistinctKeysLeadIndependently)
{
    SingleFlight sf;
    std::string value;
    EXPECT_EQ(sf.join("a", &value), SingleFlight::Role::Leader);
    EXPECT_EQ(sf.join("b", &value), SingleFlight::Role::Leader);
    EXPECT_EQ(sf.inflight(), 2u);
    sf.publish("a", "ra");
    sf.publish("b", "rb");
    EXPECT_EQ(sf.inflight(), 0u);
}

TEST(SingleFlight, WaitersReceiveTheLeadersBytes)
{
    SingleFlight sf;
    std::string leader_value;
    ASSERT_EQ(sf.join("spec", &leader_value),
              SingleFlight::Role::Leader);

    constexpr int kWaiters = 4;
    std::vector<std::thread> threads;
    std::vector<std::string> got(kWaiters);
    std::vector<SingleFlight::Role> roles(
        kWaiters, SingleFlight::Role::Leader);
    std::atomic<int> joined{0};
    threads.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
        threads.emplace_back([&, i]() {
            joined.fetch_add(1);
            roles[i] = sf.join("spec", &got[i]);
        });
    }
    // Wait until every thread is at (or past) the join call, then
    // publish; late joiners that raced past publish would become
    // leaders and fail the role assertion below, so give them time
    // to block first.
    while (joined.load() < kWaiters)
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    sf.publish("spec", "the-answer");
    for (std::thread &t : threads)
        t.join();
    for (int i = 0; i < kWaiters; ++i) {
        EXPECT_EQ(roles[i], SingleFlight::Role::Waiter) << i;
        EXPECT_EQ(got[i], "the-answer") << i;
    }
    EXPECT_EQ(sf.coalesced(), static_cast<std::uint64_t>(kWaiters));
    EXPECT_EQ(sf.inflight(), 0u);
}

TEST(SingleFlight, AbortPromotesExactlyOneWaiter)
{
    SingleFlight sf;
    std::string leader_value;
    ASSERT_EQ(sf.join("spec", &leader_value),
              SingleFlight::Role::Leader);

    constexpr int kWaiters = 3;
    std::vector<std::thread> threads;
    std::vector<std::string> got(kWaiters);
    std::vector<SingleFlight::Role> roles(
        kWaiters, SingleFlight::Role::Waiter);
    std::atomic<int> joined{0};
    std::atomic<bool> promoted_published{false};
    threads.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
        threads.emplace_back([&, i]() {
            joined.fetch_add(1);
            roles[i] = sf.join("spec", &got[i]);
            if (roles[i] == SingleFlight::Role::Leader) {
                // The promoted waiter executes and publishes; the
                // remaining waiters must then settle with its bytes.
                // The pause stands in for the execution: publishing
                // instantly would retire the successor flight before
                // the other waiters re-attach, and they would each
                // lead a fresh flight instead of coalescing (which
                // is legal — the cache answers them — but not the
                // single-promotion schedule this test pins down).
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
                promoted_published.store(true);
                sf.publish("spec", "second-try");
            }
        });
    }
    while (joined.load() < kWaiters)
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    sf.abort("spec"); // leader dies
    for (std::thread &t : threads)
        t.join();

    int leaders = 0;
    for (int i = 0; i < kWaiters; ++i) {
        if (roles[i] == SingleFlight::Role::Leader) {
            ++leaders;
        } else {
            EXPECT_EQ(got[i], "second-try")
                << "waiter " << i
                << " was orphaned by the leader's death";
        }
    }
    EXPECT_EQ(leaders, 1)
        << "abort must promote exactly one waiter to leader";
    EXPECT_TRUE(promoted_published.load());
    EXPECT_EQ(sf.promoted(), 1u);
    EXPECT_EQ(sf.inflight(), 0u);
}

TEST(SingleFlight, PublishAfterAbortIsANoOp)
{
    SingleFlight sf;
    std::string value;
    ASSERT_EQ(sf.join("k", &value), SingleFlight::Role::Leader);
    sf.abort("k");
    sf.publish("k", "late");
    EXPECT_EQ(sf.inflight(), 0u);
    // The late publish must not have created a phantom flight a new
    // joiner would read stale bytes from.
    ASSERT_EQ(sf.join("k", &value), SingleFlight::Role::Leader);
    sf.abort("k");
}

} // namespace
} // namespace ringsim::fleet
