/**
 * @file
 * Tests of the deterministic sharding layer and fleet configuration
 * validation. The shard function is load-bearing for correctness
 * (coordinator and multi-endpoint clients must agree on placement)
 * and for performance (equal specs must reuse one warm cache), so
 * determinism and full-permutation failover get explicit coverage.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/fleet/fleet_config.hpp"
#include "src/fleet/shard.hpp"

namespace ringsim::fleet {
namespace {

TEST(Shard, DeterministicAndInRange)
{
    for (std::size_t n : {1u, 2u, 3u, 7u}) {
        for (int k = 0; k < 50; ++k) {
            std::string key = "spec-" + std::to_string(k);
            std::size_t first = shardIndex(key, n);
            EXPECT_LT(first, n);
            EXPECT_EQ(first, shardIndex(key, n))
                << "same key, same fleet size, different shard";
        }
    }
}

TEST(Shard, SingleWorkerFleetAlwaysShardZero)
{
    EXPECT_EQ(shardIndex("anything", 1), 0u);
    EXPECT_EQ(failoverOrder("anything", 1),
              std::vector<std::size_t>{0});
}

TEST(Shard, FailoverOrderIsAFullPermutationStartingAtTheShard)
{
    for (std::size_t n : {2u, 3u, 5u}) {
        for (int k = 0; k < 20; ++k) {
            std::string key = "job-" + std::to_string(k);
            std::vector<std::size_t> order = failoverOrder(key, n);
            ASSERT_EQ(order.size(), n);
            EXPECT_EQ(order.front(), shardIndex(key, n));
            std::set<std::size_t> seen(order.begin(), order.end());
            EXPECT_EQ(seen.size(), n)
                << "failover order visits some worker twice";
            // Successors wrap modulo n: a dead primary always has a
            // well-defined, agreed-upon backup.
            for (std::size_t i = 1; i < n; ++i)
                EXPECT_EQ(order[i], (order[i - 1] + 1) % n);
        }
    }
}

TEST(Shard, SpreadsKeysAcrossWorkers)
{
    // Not a statistical test — just proof the hash is not constant:
    // 200 distinct keys over 4 shards must touch every shard.
    std::set<std::size_t> touched;
    for (int k = 0; k < 200; ++k)
        touched.insert(
            shardIndex("canonical-spec-" + std::to_string(k), 4));
    EXPECT_EQ(touched.size(), 4u);
}

TEST(FleetConfig, DefaultsNeedWorkers)
{
    FleetConfig cfg;
    EXPECT_FALSE(cfg.check().empty());
    cfg.workers = {"tcp:4100", "tcp:4101"};
    EXPECT_TRUE(cfg.check().empty());
}

TEST(FleetConfig, RejectsBadEndpointsDuplicatesAndZeroBounds)
{
    FleetConfig cfg;
    cfg.workers = {"tcp:70000"};
    EXPECT_FALSE(cfg.check().empty());

    cfg.workers = {"tcp:4100", "tcp:4100"};
    std::vector<std::string> errors = cfg.check();
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("twice"), std::string::npos);

    cfg.workers = {"tcp:4100"};
    cfg.attemptsPerWorker = 0;
    EXPECT_FALSE(cfg.check().empty());

    cfg = FleetConfig{};
    cfg.workers = {"tcp:4100"};
    cfg.retainDone = 0;
    EXPECT_FALSE(cfg.check().empty());
}

} // namespace
} // namespace ringsim::fleet
