/**
 * @file
 * Unit tests for logging helpers (the fatal/panic paths use death
 * tests).
 */

#include <gtest/gtest.h>

#include "src/util/logging.hpp"

namespace ringsim {
namespace {

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strprintf("%.2f", 1.2345), "1.23");
}

TEST(Logging, StrprintfEmpty)
{
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Logging, StrprintfLong)
{
    std::string big(5000, 'x');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), 5000u);
}

TEST(Logging, LevelRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

} // namespace
} // namespace ringsim
