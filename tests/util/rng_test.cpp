/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.hpp"

namespace ringsim {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBounded(10));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(23);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ZipfSkewsLow)
{
    Rng rng(29);
    std::uint64_t low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.nextZipf(1000, 1.2) < 10)
            ++low;
    // With alpha=1.2 the first ten ranks should take a large share.
    EXPECT_GT(low, n / 4);
}

TEST(Rng, ZipfInRange)
{
    Rng rng(31);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextZipf(64, 0.8), 64u);
}

TEST(Rng, ZipfSingleton)
{
    Rng rng(37);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextZipf(1, 1.0), 0u);
}

TEST(Rng, GeometricMean)
{
    Rng rng(41);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(0.25));
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ForkIndependentButDeterministic)
{
    Rng parent(5);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    Rng c1_again = Rng(5).fork(1);
    EXPECT_NE(c1.next(), c2.next());
    Rng c1_ref = Rng(5).fork(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c1_again.next(), c1_ref.next());
}

TEST(Rng, ForkDoesNotDisturbParent)
{
    Rng a(77);
    Rng b(77);
    (void)a.fork(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), b.next());
}

} // namespace
} // namespace ringsim
