/**
 * @file
 * Unit tests for the text-table renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/util/table.hpp"

namespace ringsim {
namespace {

TEST(TextTable, CountsRowsAndColumns)
{
    TextTable t({"a", "b"});
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, PrintAligns)
{
    TextTable t({"name", "v"});
    t.addRow({"x", "1234"});
    t.addRow({"longer", "5"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| name   | v    |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 5    |"), std::string::npos);
}

TEST(TextTable, CsvBasic)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, CsvQuotesSpecials)
{
    TextTable t({"a"});
    t.addRow({"has,comma"});
    t.addRow({"has\"quote"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
    EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTableDeathTest, WrongArityPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "cells");
}

TEST(Format, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(Format, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.5, 1), "50.0");
    EXPECT_EQ(fmtPercent(1.0, 0), "100");
}

} // namespace
} // namespace ringsim
