/**
 * @file
 * Unit tests for centralized environment-variable access.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/util/env.hpp"

namespace ringsim::util {
namespace {

/** setenv/unsetenv wrapper that restores the variable on teardown. */
class EnvTest : public testing::Test
{
  protected:
    static constexpr const char *name = "RINGSIM_ENV_TEST_VAR";

    void TearDown() override { ::unsetenv(name); }

    void set(const char *value) { ::setenv(name, value, 1); }
};

TEST_F(EnvTest, UnsetIsNullopt)
{
    ::unsetenv(name);
    EXPECT_FALSE(envString(name).has_value());
    EXPECT_FALSE(envU64(name).has_value());
}

TEST_F(EnvTest, StringPassesThrough)
{
    set("hello salt");
    ASSERT_TRUE(envString(name).has_value());
    EXPECT_EQ(*envString(name), "hello salt");
}

TEST_F(EnvTest, EmptyStringIsPresent)
{
    set("");
    ASSERT_TRUE(envString(name).has_value());
    EXPECT_EQ(*envString(name), "");
}

TEST_F(EnvTest, U64Parses)
{
    set("12345");
    ASSERT_TRUE(envU64(name).has_value());
    EXPECT_EQ(*envU64(name), 12345u);
}

TEST_F(EnvTest, MalformedU64FallsBack)
{
    set("12x");
    EXPECT_FALSE(envU64(name).has_value());
    set("not a number");
    EXPECT_FALSE(envU64(name).has_value());
    set("");
    EXPECT_FALSE(envU64(name).has_value());
}

TEST_F(EnvTest, MinValueRejectsBelow)
{
    set("0");
    EXPECT_FALSE(envU64(name, 1).has_value());
    set("1");
    ASSERT_TRUE(envU64(name, 1).has_value());
    EXPECT_EQ(*envU64(name, 1), 1u);
}

} // namespace
} // namespace ringsim::util
