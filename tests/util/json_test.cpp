/**
 * @file
 * Unit tests for the JSON document model and NDJSON parser.
 */

#include <gtest/gtest.h>

#include "src/util/json.hpp"

namespace ringsim::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, EscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(jsonEscape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonValue, DumpsLeavesCompactly)
{
    EXPECT_EQ(JsonValue::null().dump(), "null");
    EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
    EXPECT_EQ(JsonValue::boolean(false).dump(), "false");
    EXPECT_EQ(JsonValue::integer(42).dump(), "42");
    EXPECT_EQ(JsonValue::string("a\"b").dump(), "\"a\\\"b\"");
}

TEST(JsonValue, ObjectKeepsInsertionOrder)
{
    JsonValue o = JsonValue::object();
    o.set("zebra", JsonValue::integer(1));
    o.set("apple", JsonValue::integer(2));
    o.set("mango", JsonValue::integer(3));
    EXPECT_EQ(o.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonValue, SetReplacesInPlace)
{
    JsonValue o = JsonValue::object();
    o.set("a", JsonValue::integer(1));
    o.set("b", JsonValue::integer(2));
    o.set("a", JsonValue::integer(9));
    EXPECT_EQ(o.dump(), "{\"a\":9,\"b\":2}");
}

TEST(JsonValue, IntegersSurviveRoundTripExactly)
{
    const std::uint64_t big = 0xFFFF'FFFF'FFFF'FFFEULL;
    JsonValue v = JsonValue::integer(big);
    std::string dumped = v.dump();
    JsonValue back;
    std::string error;
    ASSERT_TRUE(tryParseJson(dumped, &back, &error)) << error;
    EXPECT_EQ(back.asU64(), big);
}

TEST(JsonValue, TypedGettersReturnFallbacks)
{
    JsonValue o = JsonValue::object();
    o.set("n", JsonValue::number(2.5));
    o.set("s", JsonValue::string("x"));
    std::vector<std::string> errors;
    EXPECT_EQ(o.getNumber("n", 0, &errors), 2.5);
    EXPECT_EQ(o.getString("s", "", &errors), "x");
    EXPECT_EQ(o.getU64("missing", 7, &errors), 7u);
    EXPECT_TRUE(o.getBool("gone", true, &errors));
    EXPECT_TRUE(errors.empty());
}

TEST(JsonValue, TypedGettersReportTypeMismatches)
{
    JsonValue o = JsonValue::object();
    o.set("n", JsonValue::string("not a number"));
    std::vector<std::string> errors;
    o.getNumber("n", 0, &errors);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("n ="), std::string::npos) << errors[0];
}

TEST(JsonParse, RoundTripsNestedDocument)
{
    const std::string text =
        "{\"a\":[1,2.5,null,true],\"b\":{\"c\":\"hi\"},\"d\":-3}";
    JsonValue v;
    std::string error;
    ASSERT_TRUE(tryParseJson(text, &v, &error)) << error;
    EXPECT_EQ(v.dump(), text);
}

TEST(JsonParse, AcceptsSurroundingWhitespace)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(tryParseJson("  { \"a\" : 1 }\n", &v, &error)) << error;
    EXPECT_EQ(v.dump(), "{\"a\":1}");
}

TEST(JsonParse, RejectsTrailingGarbageWithOffset)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(tryParseJson("{} extra", &v, &error));
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

TEST(JsonParse, RejectsUnterminatedString)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(tryParseJson("\"abc", &v, &error));
    EXPECT_FALSE(error.empty());
}

TEST(JsonParse, RejectsExcessiveNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue v;
    std::string error;
    EXPECT_FALSE(tryParseJson(deep, &v, &error));
    EXPECT_NE(error.find("nesting too deep"), std::string::npos)
        << error;
}

TEST(JsonParse, DecodesBmpUnicodeEscapes)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(tryParseJson("\"\\u0041\\u00e9\"", &v, &error))
        << error;
    EXPECT_EQ(v.asString(), "A\xc3\xa9");
}

TEST(JsonParse, RejectsEmptyInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(tryParseJson("", &v, &error));
    EXPECT_FALSE(tryParseJson("   ", &v, &error));
}

} // namespace
} // namespace ringsim::util
