/**
 * @file
 * Replays of the schedule explorer's nastiest interleavings against
 * the real ServiceCore (src/verify/service_model.* proves them safe
 * in the model; these tests pin the implementation to the model).
 * Each test drives one counterexample-shaped race — cancel vs.
 * complete, deadline vs. dispatch, disconnect vs. shed — and then
 * asserts the slot accounting the explorer checks: `active` drains
 * to zero, every admitted job is answered exactly once, and late
 * completions are counted and discarded.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/service/server.hpp"
#include "src/util/json.hpp"

namespace ringsim::service {
namespace {

using namespace std::chrono_literals;

util::JsonValue
parse(const std::string &line)
{
    util::JsonValue v;
    std::string error;
    EXPECT_TRUE(util::tryParseJson(line, &v, &error))
        << error << " in: " << line;
    return v;
}

/** Two workers, depth three: the smallest shape with real pool
 *  threads (workers = 1 is the serial inline fallback, where dispatch
 *  cannot race anything) where queue pressure and slot release are
 *  observable. */
ServiceConfig
raceConfig()
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queueDepth = 3;
    cfg.memCacheEntries = 16;
    cfg.enableTestJobs = true;
    cfg.watchdog = std::chrono::minutes(10);
    return cfg;
}

std::string
sleeper(unsigned ms, unsigned deadline_ms = 0)
{
    std::string job = "{\"op\":\"submit\",\"job\":{\"type\":"
                      "\"sleep\",\"ms\":" +
                      std::to_string(ms);
    if (deadline_ms > 0)
        job += ",\"deadline_ms\":" + std::to_string(deadline_ms);
    return job + "}}";
}

std::uint64_t
submitOk(ServiceCore &core, const std::string &client,
         const std::string &line)
{
    util::JsonValue r = parse(core.handleLine(client, line));
    std::vector<std::string> errors;
    EXPECT_TRUE(r.getBool("ok", false, &errors)) << line;
    std::uint64_t id = r.getU64("id", 0, &errors);
    EXPECT_GT(id, 0u);
    return id;
}

std::string
pollState(ServiceCore &core, std::uint64_t id)
{
    util::JsonValue r = parse(core.handleLine(
        "t",
        "{\"op\":\"poll\",\"id\":" + std::to_string(id) + "}"));
    std::vector<std::string> errors;
    return r.getString("state", "?", &errors);
}

bool
waitForState(ServiceCore &core, std::uint64_t id,
             const std::string &want)
{
    for (int i = 0; i < 400; ++i) {
        if (pollState(core, id) == want)
            return true;
        std::this_thread::sleep_for(5ms);
    }
    return false;
}

std::uint64_t
statsU64(ServiceCore &core, const char *field)
{
    util::JsonValue sz =
        parse(core.handleLine("t", "{\"op\":\"statsz\"}"));
    std::vector<std::string> errors;
    return sz.getU64(field, 9999, &errors);
}

bool
waitForStat(ServiceCore &core, const char *field, std::uint64_t want)
{
    for (int i = 0; i < 400; ++i) {
        if (statsU64(core, field) == want)
            return true;
        std::this_thread::sleep_for(5ms);
    }
    return false;
}

/** Explorer trace: submit -> dispatch -> cancel -> complete(late).
 *  The cancel answers the job; the thread finishing afterwards is a
 *  late completion that must release the slot without re-answering. */
TEST(LifecycleRace, CancelVsCompleteCountsLateCompletion)
{
    ServiceCore core(raceConfig());
    std::uint64_t id = submitOk(core, "c", sleeper(200));
    ASSERT_TRUE(waitForState(core, id, "running"));

    util::JsonValue r = parse(core.handleLine(
        "c",
        "{\"op\":\"cancel\",\"id\":" + std::to_string(id) + "}"));
    std::vector<std::string> errors;
    EXPECT_TRUE(r.getBool("ok", false, &errors));
    EXPECT_EQ(pollState(core, id), "cancelled");

    // The abandoned thread finishes ~200ms in: counted late,
    // discarded, slot released.
    EXPECT_TRUE(waitForStat(core, "late_completions", 1))
        << "late completion never counted";
    EXPECT_EQ(statsU64(core, "active"), 0u);
    EXPECT_EQ(statsU64(core, "cancelled"), 1u);
    // The job stays answered as cancelled — never double-answered.
    EXPECT_EQ(pollState(core, id), "cancelled");

    // The slot is genuinely free again: a fresh job is admitted and
    // completes.
    util::JsonValue done = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"wait\":true,\"job\":"
             "{\"type\":\"sleep\",\"ms\":5}}"));
    EXPECT_TRUE(done.getBool("ok", false, &errors));
    EXPECT_EQ(done.getString("state", "", &errors), "done");
    EXPECT_EQ(statsU64(core, "active"), 0u);
}

/** Explorer trace: submit j0 -> dispatch j0 -> submit j1(deadline)
 *  -> deadline fires before j1 dispatches. The pool task that later
 *  picks j1 must drain it and release its slot. */
TEST(LifecycleRace, DeadlineVsDispatchReleasesSlot)
{
    ServiceCore core(raceConfig());
    std::uint64_t pin1 = submitOk(core, "c", sleeper(250));
    std::uint64_t pin2 = submitOk(core, "c", sleeper(250));
    ASSERT_TRUE(waitForState(core, pin1, "running"));
    ASSERT_TRUE(waitForState(core, pin2, "running"));

    // Queued behind both pinned workers with a deadline that expires
    // long before either frees up.
    std::uint64_t doomed = submitOk(core, "c", sleeper(50, 20));
    EXPECT_EQ(statsU64(core, "active"), 3u);

    std::this_thread::sleep_for(40ms);
    // The lazy watchdog runs on this poll and cancels it in place.
    EXPECT_EQ(pollState(core, doomed), "cancelled");
    EXPECT_EQ(statsU64(core, "deadline_expired"), 1u);

    // When a worker drains the FIFO it finds a non-Queued record
    // and releases the slot it carries; everything must settle to
    // active == 0 with the pinned jobs completed exactly once.
    EXPECT_TRUE(waitForStat(core, "active", 0))
        << "drained task leaked its admission slot";
    EXPECT_EQ(statsU64(core, "completed"), 2u);
    EXPECT_EQ(statsU64(core, "cancelled"), 1u);
    EXPECT_EQ(statsU64(core, "late_completions"), 0u);
}

/** Explorer trace: client a fills the depth -> client b sheds ->
 *  a disconnects (queued job swept) -> b is admitted. */
TEST(LifecycleRace, DisconnectVsShedFreesSlots)
{
    ServiceCore core(raceConfig());
    std::uint64_t running1 = submitOk(core, "a", sleeper(250));
    std::uint64_t running2 = submitOk(core, "a", sleeper(250));
    ASSERT_TRUE(waitForState(core, running1, "running"));
    ASSERT_TRUE(waitForState(core, running2, "running"));
    std::uint64_t queued = submitOk(core, "a", sleeper(5));
    EXPECT_EQ(statsU64(core, "active"), 3u);

    // Depth exhausted: b is shed with a backoff hint.
    util::JsonValue shed =
        parse(core.handleLine("b", sleeper(5)));
    std::vector<std::string> errors;
    EXPECT_FALSE(shed.getBool("ok", true, &errors));
    EXPECT_GT(shed.getU64("retry_after_ms", 0, &errors), 0u);
    EXPECT_EQ(statsU64(core, "shed"), 1u);
    // Shedding consumed no slot.
    EXPECT_EQ(statsU64(core, "active"), 3u);

    // a disconnects: its queued job is swept; the running one keeps
    // its slot until the thread finishes.
    core.clientGone("a");
    EXPECT_EQ(pollState(core, queued), "cancelled");
    EXPECT_EQ(statsU64(core, "cancelled"), 1u);

    // The swept job keeps its slot until the pool task drains it —
    // exactly the subtlety the drop-drain-release mutation breaks.
    // Both slots must come back on their own.
    EXPECT_TRUE(waitForStat(core, "active", 0))
        << "swept job's slot never drained";

    // b retries against the drained service and is admitted.
    util::JsonValue retry = parse(core.handleLine(
        "b", "{\"op\":\"submit\",\"wait\":true,\"job\":"
             "{\"type\":\"sleep\",\"ms\":5}}"));
    EXPECT_TRUE(retry.getBool("ok", false, &errors));
    EXPECT_EQ(retry.getString("state", "", &errors), "done");
    EXPECT_TRUE(waitForStat(core, "active", 0));
    // Conservation at quiescence: every admitted non-cancelled job
    // completed, the swept one was answered exactly once.
    EXPECT_EQ(statsU64(core, "admitted"), 4u);
    EXPECT_EQ(statsU64(core, "completed"), 3u);
    EXPECT_EQ(statsU64(core, "cancelled"), 1u);
}

} // namespace
} // namespace ringsim::service
