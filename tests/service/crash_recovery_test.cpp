/**
 * @file
 * Crash-recovery tests for the disk result cache and the service
 * around it: torn, bit-flipped and zero-length entries must be
 * quarantined (at startup or on first read), never served, and a
 * restarted service must recompute them transparently.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/service/result_cache.hpp"
#include "src/service/server.hpp"
#include "src/util/json.hpp"

namespace ringsim::service {
namespace {

/** A per-test directory emptied of any previous run's leftovers. */
std::string
freshDir(const char *name)
{
    std::string dir = testing::TempDir() + "/" + name;
    if (DIR *d = ::opendir(dir.c_str())) {
        std::vector<std::string> names;
        while (dirent *e = ::readdir(d)) {
            std::string n = e->d_name;
            if (n != "." && n != "..")
                names.push_back(n);
        }
        ::closedir(d);
        for (const std::string &n : names)
            std::remove((dir + "/" + n).c_str());
    }
    return dir;
}

void
truncateFile(const std::string &path, long keep)
{
    ASSERT_EQ(::truncate(path.c_str(), keep), 0) << path;
}

void
flipByte(const std::string &path, long offset)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_NE(std::fputc(c ^ 0x01, f), EOF);
    std::fclose(f);
}

bool
fileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

TEST(EntryFrame, RoundTrips)
{
    std::string payload = "{\"kind\":\"model\",\"mean\":1.25}";
    std::string framed = ResultCache::frameEntry(payload);
    std::string back;
    ASSERT_TRUE(ResultCache::tryUnframeEntry(framed, &back));
    EXPECT_EQ(back, payload);

    // Payloads with newlines and an empty payload must also survive.
    std::string tricky = "line1\nline2\n";
    ASSERT_TRUE(ResultCache::tryUnframeEntry(
        ResultCache::frameEntry(tricky), &back));
    EXPECT_EQ(back, tricky);
    ASSERT_TRUE(
        ResultCache::tryUnframeEntry(ResultCache::frameEntry(""),
                                     &back));
    EXPECT_EQ(back, "");
}

TEST(EntryFrame, RejectsEveryDamageClass)
{
    std::string framed = ResultCache::frameEntry("0123456789");
    std::string out;

    // Truncation (torn write), at several cut points.
    for (std::size_t keep : {std::size_t{0}, framed.size() / 2,
                             framed.size() - 1})
        EXPECT_FALSE(ResultCache::tryUnframeEntry(
            framed.substr(0, keep), &out))
            << "kept " << keep;

    // One flipped payload byte fails the checksum.
    std::string flipped = framed;
    flipped[framed.size() - 3] ^= 0x01;
    EXPECT_FALSE(ResultCache::tryUnframeEntry(flipped, &out));

    // A flipped header byte fails the magic or the checksum compare.
    flipped = framed;
    flipped[0] ^= 0x01;
    EXPECT_FALSE(ResultCache::tryUnframeEntry(flipped, &out));

    // Trailing junk is damage, not tolerated slack.
    EXPECT_FALSE(ResultCache::tryUnframeEntry(framed + "x", &out));

    // A pre-checksum (unframed) legacy file never verifies.
    EXPECT_FALSE(
        ResultCache::tryUnframeEntry("{\"kind\":\"model\"}", &out));
}

TEST(CrashRecovery, StartupScanQuarantinesCorruptEntries)
{
    std::string dir = freshDir("cr_scan");
    std::string torn, flipped, good;
    {
        ResultCache cache(4, dir);
        cache.put("torn", "payload-a");
        cache.put("flipped", "payload-b");
        cache.put("good", "payload-c");
        torn = cache.diskPath("torn");
        flipped = cache.diskPath("flipped");
        good = cache.diskPath("good");
    }
    // Simulate a crash mid-write and a failing disk.
    truncateFile(torn, 8);
    flipByte(flipped, 20);

    ResultCache fresh(4, dir);
    CacheStats s = fresh.stats();
    EXPECT_EQ(s.scanned, 3u);
    EXPECT_EQ(s.quarantined, 2u);

    // Damaged entries are misses; the good one still hits.
    EXPECT_FALSE(fresh.get("torn").has_value());
    EXPECT_FALSE(fresh.get("flipped").has_value());
    ASSERT_TRUE(fresh.get("good").has_value());
    EXPECT_EQ(*fresh.get("good"), "payload-c");

    // Quarantine renames aside for post-mortem, freeing the path.
    EXPECT_FALSE(fileExists(torn));
    EXPECT_TRUE(fileExists(torn + ".quarantined"));
    EXPECT_TRUE(fileExists(flipped + ".quarantined"));
}

TEST(CrashRecovery, ZeroLengthEntryQuarantined)
{
    std::string dir = freshDir("cr_zero");
    std::string path;
    {
        ResultCache cache(4, dir);
        cache.put("victim", "payload");
        path = cache.diskPath("victim");
    }
    truncateFile(path, 0);
    ResultCache fresh(4, dir);
    EXPECT_EQ(fresh.stats().quarantined, 1u);
    EXPECT_FALSE(fresh.get("victim").has_value());
}

TEST(CrashRecovery, ReadPathQuarantinesDamageAfterStartup)
{
    // Damage that appears *after* the startup scan (a failing disk)
    // must be caught by verify-on-load at get() time.
    std::string dir = freshDir("cr_late");
    std::string path;
    {
        ResultCache cache(4, dir);
        cache.put("victim", "payload");
        path = cache.diskPath("victim");
    }
    ResultCache fresh(4, dir); // clean scan
    EXPECT_EQ(fresh.stats().quarantined, 0u);
    flipByte(path, 12);
    EXPECT_FALSE(fresh.get("victim").has_value());
    CacheStats s = fresh.stats();
    EXPECT_EQ(s.quarantined, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(CrashRecovery, StartupScanRemovesOrphanedTempFiles)
{
    std::string dir = freshDir("cr_tmp");
    std::string orphan;
    {
        ResultCache cache(4, dir);
        cache.put("k", "v");
        orphan = cache.diskPath("k") + ".tmp99";
    }
    // An interrupted atomic publish leaves exactly this: a temp file
    // that was never renamed into place.
    std::FILE *f = std::fopen(orphan.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("RSC1 partial", f);
    std::fclose(f);

    ResultCache fresh(4, dir);
    CacheStats s = fresh.stats();
    EXPECT_EQ(s.tmpCleaned, 1u);
    EXPECT_EQ(s.quarantined, 0u);
    EXPECT_FALSE(fileExists(orphan));
    EXPECT_TRUE(fresh.get("k").has_value());
}

TEST(CrashRecovery, RecomputedEntryReplacesQuarantinedOne)
{
    std::string dir = freshDir("cr_redo");
    std::string path;
    {
        ResultCache cache(4, dir);
        cache.put("k", "first");
        path = cache.diskPath("k");
    }
    truncateFile(path, 4);
    {
        ResultCache fresh(4, dir);
        EXPECT_FALSE(fresh.get("k").has_value());
        fresh.put("k", "second"); // the recompute
    }
    ResultCache again(4, dir);
    ASSERT_TRUE(again.get("k").has_value());
    EXPECT_EQ(*again.get("k"), "second");
    EXPECT_EQ(again.stats().quarantined, 0u);
}

TEST(CrashRecovery, ChaoticPublishIsNeverServedCorrupt)
{
    // With torn writes and bit flips firing on every publish, the
    // entry can never verify after a restart — but it must never be
    // *served* either: quarantine turns each into one recompute.
    fault::ServiceFaultConfig fcfg;
    fcfg.seed = 3;
    fcfg.tornWriteRate = 1.0;
    fault::ServiceFaultInjector inj(fcfg);
    std::string dir = freshDir("cr_chaos");
    {
        ResultCache cache(4, dir);
        cache.setChaos(&inj);
        cache.put("k", "value");
        // The memory tier still answers while this instance lives.
        ASSERT_TRUE(cache.get("k").has_value());
        EXPECT_EQ(*cache.get("k"), "value");
    }
    EXPECT_EQ(inj.counters().tornWrites, 1u);
    ResultCache fresh(4, dir);
    EXPECT_EQ(fresh.stats().quarantined, 1u);
    EXPECT_FALSE(fresh.get("k").has_value());
}

TEST(CrashRecovery, ServiceRestartRecomputesQuarantinedResult)
{
    // End-to-end acceptance: a daemon is "SIGKILL'd" (destroyed), its
    // cache entry is damaged on disk, and the restarted daemon must
    // quarantine the entry and serve a recomputed — byte-identical —
    // answer.
    std::string dir = freshDir("cr_service");
    const std::string submit =
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"model\",\"benchmark\":\"mp3d\",\"procs\":8,"
        "\"refs\":2000,\"fast\":true}}";
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queueDepth = 4;
    cfg.memCacheEntries = 16;
    cfg.cacheDir = dir;

    std::string first_bytes, path;
    {
        ServiceCore core(cfg);
        util::JsonValue r;
        std::string error;
        ASSERT_TRUE(
            util::tryParseJson(core.handleLine("c", submit), &r,
                               &error));
        std::vector<std::string> errors;
        ASSERT_TRUE(r.getBool("ok", false, &errors));
        first_bytes = r.find("result")->dump();
        path = core.cache().diskPath(
            r.getString("key", "", &errors));
        ASSERT_FALSE(path.empty());
    }
    ASSERT_TRUE(fileExists(path));
    flipByte(path, 30);

    ServiceCore restarted(cfg);
    EXPECT_EQ(restarted.cache().stats().quarantined, 1u);
    util::JsonValue r;
    std::string error;
    ASSERT_TRUE(util::tryParseJson(restarted.handleLine("c", submit),
                                   &r, &error));
    std::vector<std::string> errors;
    ASSERT_TRUE(r.getBool("ok", false, &errors));
    // Not a cache answer — the entry was quarantined — but the
    // recomputation returns the identical bytes (determinism).
    EXPECT_FALSE(r.getBool("cached", true, &errors));
    EXPECT_EQ(r.find("result")->dump(), first_bytes);
}

} // namespace
} // namespace ringsim::service
