/**
 * @file
 * In-process tests of the service core: admission, shedding,
 * memoization, watchdog and the statsz surface. ServiceCore is
 * transport-independent, so these drive the NDJSON protocol directly
 * through handleLine() with no sockets involved.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/service/server.hpp"
#include "src/util/json.hpp"

namespace ringsim::service {
namespace {

util::JsonValue
parse(const std::string &line)
{
    util::JsonValue v;
    std::string error;
    EXPECT_TRUE(util::tryParseJson(line, &v, &error))
        << error << " in: " << line;
    return v;
}

ServiceConfig
testConfig()
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queueDepth = 4;
    cfg.memCacheEntries = 16;
    cfg.enableTestJobs = true;
    cfg.watchdog = std::chrono::minutes(10);
    return cfg;
}

/** Poll @p id until it leaves the pool (bounded busy-wait). */
util::JsonValue
pollUntilSettled(ServiceCore &core, std::uint64_t id)
{
    for (int i = 0; i < 400; ++i) {
        util::JsonValue r = parse(core.handleLine(
            "t", "{\"op\":\"poll\",\"id\":" + std::to_string(id) +
                     "}"));
        std::vector<std::string> errors;
        std::string state = r.getString("state", "?", &errors);
        if (state != "queued" && state != "running")
            return r;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "job " << id << " never settled";
    return util::JsonValue::null();
}

TEST(ServiceCore, PingPongs)
{
    ServiceCore core(testConfig());
    EXPECT_EQ(core.handleLine("c", "{\"op\":\"ping\"}"),
              "{\"ok\":true,\"op\":\"ping\"}");
}

TEST(ServiceCore, RejectsMalformedLines)
{
    ServiceCore core(testConfig());
    util::JsonValue r = parse(core.handleLine("c", "not json"));
    std::vector<std::string> errors;
    EXPECT_FALSE(r.getBool("ok", true, &errors));
    r = parse(core.handleLine("c", "{\"op\":\"warp\"}"));
    EXPECT_FALSE(r.getBool("ok", true, &errors));
}

TEST(ServiceCore, SubmitRejectsBadJobWithFieldError)
{
    ServiceCore core(testConfig());
    util::JsonValue r = parse(core.handleLine(
        "c",
        "{\"op\":\"submit\",\"job\":{\"type\":\"run\","
        "\"benchmark\":\"doom\"}}"));
    std::vector<std::string> errors;
    EXPECT_FALSE(r.getBool("ok", true, &errors));
    EXPECT_NE(r.getString("error", "", &errors).find("benchmark ="),
              std::string::npos);
}

TEST(ServiceCore, WaitSubmitReturnsResult)
{
    ServiceCore core(testConfig());
    util::JsonValue r = parse(core.handleLine(
        "c",
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"verify\",\"nodes\":2,\"blocks\":1}}"));
    std::vector<std::string> errors;
    EXPECT_TRUE(r.getBool("ok", false, &errors));
    EXPECT_EQ(r.getString("state", "", &errors), "done");
    const util::JsonValue *result = r.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->getBool("clean", false, &errors));
}

TEST(ServiceCore, AsyncSubmitThenPoll)
{
    ServiceCore core(testConfig());
    util::JsonValue r = parse(core.handleLine(
        "c",
        "{\"op\":\"submit\",\"job\":{\"type\":\"model\","
        "\"benchmark\":\"mp3d\",\"procs\":8,\"refs\":2000,"
        "\"fast\":true}}"));
    std::vector<std::string> errors;
    ASSERT_TRUE(r.getBool("ok", false, &errors));
    std::uint64_t id = r.getU64("id", 0, &errors);
    ASSERT_GT(id, 0u);

    util::JsonValue done = pollUntilSettled(core, id);
    EXPECT_EQ(done.getString("state", "", &errors), "done");
    ASSERT_NE(done.find("result"), nullptr);
}

TEST(ServiceCore, SecondSubmissionAnswersFromCache)
{
    ServiceCore core(testConfig());
    const std::string submit =
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"model\",\"benchmark\":\"water\",\"procs\":8,"
        "\"refs\":2000,\"fast\":true}}";
    util::JsonValue first = parse(core.handleLine("c", submit));
    util::JsonValue second = parse(core.handleLine("c", submit));
    std::vector<std::string> errors;
    EXPECT_FALSE(first.getBool("cached", true, &errors));
    EXPECT_TRUE(second.getBool("cached", false, &errors));
    // Identical result objects, served without recomputation.
    ASSERT_NE(first.find("result"), nullptr);
    ASSERT_NE(second.find("result"), nullptr);
    EXPECT_EQ(first.find("result")->dump(),
              second.find("result")->dump());
    EXPECT_EQ(core.cache().stats().memHits, 1u);
}

TEST(ServiceCore, SaltSeparatesCaches)
{
    ServiceConfig a = testConfig();
    ServiceConfig b = testConfig();
    b.salt = "other";
    ServiceCore core_a(a), core_b(b);
    const std::string submit =
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"verify\",\"nodes\":2}}";
    util::JsonValue ra = parse(core_a.handleLine("c", submit));
    util::JsonValue rb = parse(core_b.handleLine("c", submit));
    std::vector<std::string> errors;
    std::string ka = ra.getString("key", "", &errors);
    std::string kb = rb.getString("key", "", &errors);
    EXPECT_FALSE(ka.empty());
    EXPECT_NE(ka, kb);
}

TEST(ServiceCore, OverloadShedsWithRetryAfter)
{
    ServiceConfig cfg = testConfig();
    cfg.workers = 2;
    cfg.queueDepth = 2;
    cfg.retryAfterMs = 125;
    ServiceCore core(cfg);

    // Fill both admission slots with held workers...
    const std::string sleeper =
        "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
        "\"ms\":500}}";
    std::vector<std::string> errors;
    util::JsonValue r1 = parse(core.handleLine("c", sleeper));
    util::JsonValue r2 = parse(core.handleLine("c", sleeper));
    ASSERT_TRUE(r1.getBool("ok", false, &errors));
    ASSERT_TRUE(r2.getBool("ok", false, &errors));

    // ...then the third submit must shed, with a structured hint.
    util::JsonValue shed = parse(core.handleLine("c", sleeper));
    EXPECT_FALSE(shed.getBool("ok", true, &errors));
    EXPECT_NE(shed.getString("error", "", &errors).find("overloaded"),
              std::string::npos);
    EXPECT_GE(shed.getU64("retry_after_ms", 0, &errors), 125u);

    // Sleep jobs are not memoized, so the cache cannot mask shedding.
    EXPECT_EQ(core.cache().stats().stores, 0u);

    // After the pool drains, the same submit is admitted again.
    std::uint64_t id1 = r1.getU64("id", 0, &errors);
    pollUntilSettled(core, id1);
    std::uint64_t id2 = r2.getU64("id", 0, &errors);
    pollUntilSettled(core, id2);
    util::JsonValue r3 = parse(core.handleLine("c", sleeper));
    EXPECT_TRUE(r3.getBool("ok", false, &errors));
}

TEST(ServiceCore, WatchdogTimesOutStuckJobs)
{
    ServiceConfig cfg = testConfig();
    cfg.watchdog = std::chrono::milliseconds(50);
    ServiceCore core(cfg);
    util::JsonValue r = parse(core.handleLine(
        "c",
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"sleep\",\"ms\":400}}"));
    std::vector<std::string> errors;
    EXPECT_FALSE(r.getBool("ok", true, &errors) &&
                 r.getString("state", "", &errors) == "done");
    EXPECT_EQ(r.getString("state", "", &errors), "timed_out");
    EXPECT_NE(r.getString("error", "", &errors).find("watchdog"),
              std::string::npos);

    // Once the sleeper actually finishes, its completion is counted
    // as late and discarded, never overwriting the timeout verdict.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    EXPECT_EQ(sz.getU64("timed_out", 0, &errors), 1u);
    EXPECT_EQ(sz.getU64("late_completions", 0, &errors), 1u);
}

TEST(ServiceCore, StatszReportsTheFullSurface)
{
    ServiceCore core(testConfig());
    parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"wait\":true,\"job\":"
             "{\"type\":\"verify\",\"nodes\":2}}"));
    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    std::vector<std::string> errors;
    EXPECT_TRUE(sz.getBool("ok", false, &errors));
    EXPECT_EQ(sz.getU64("workers", 0, &errors), 2u);
    EXPECT_EQ(sz.getU64("queue_depth", 0, &errors), 4u);
    EXPECT_EQ(sz.getU64("submitted", 0, &errors), 1u);
    EXPECT_EQ(sz.getU64("completed", 0, &errors), 1u);
    EXPECT_EQ(sz.getU64("shed", 0, &errors), 0u);
    ASSERT_NE(sz.find("cache"), nullptr);
    const util::JsonValue *lat = sz.find("latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->getU64("count", 0, &errors), 1u);
    // A tiny verify job can finish in under a millisecond, so the
    // percentile only has to be present and non-negative.
    EXPECT_GE(lat->getNumber("p50_ms", -1, &errors), 0.0);
    EXPECT_TRUE(errors.empty());
}

TEST(ServiceCore, PollUnknownIdIsAnError)
{
    ServiceCore core(testConfig());
    util::JsonValue r =
        parse(core.handleLine("c", "{\"op\":\"poll\",\"id\":999}"));
    std::vector<std::string> errors;
    EXPECT_FALSE(r.getBool("ok", true, &errors));
    EXPECT_NE(r.getString("error", "", &errors).find("999"),
              std::string::npos);
}

TEST(ServiceCore, ShutdownLatches)
{
    ServiceCore core(testConfig());
    EXPECT_FALSE(core.shutdownRequested());
    parse(core.handleLine("c", "{\"op\":\"shutdown\"}"));
    EXPECT_TRUE(core.shutdownRequested());
}

TEST(ServiceCore, CancelQueuedJobNeverRuns)
{
    ServiceConfig cfg = testConfig();
    cfg.workers = 2;
    cfg.queueDepth = 4;
    ServiceCore core(cfg);
    std::vector<std::string> errors;

    // Pin both workers, then queue a third sleeper and cancel it.
    const std::string sleeper =
        "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
        "\"ms\":300}}";
    util::JsonValue r1 = parse(core.handleLine("c", sleeper));
    util::JsonValue r2 = parse(core.handleLine("c", sleeper));
    util::JsonValue r3 = parse(core.handleLine("c", sleeper));
    std::uint64_t id = r3.getU64("id", 0, &errors);
    ASSERT_GT(id, 0u);

    util::JsonValue c = parse(core.handleLine(
        "c",
        "{\"op\":\"cancel\",\"id\":" + std::to_string(id) + "}"));
    EXPECT_TRUE(c.getBool("ok", false, &errors));
    EXPECT_EQ(c.getString("state", "", &errors), "cancelled");

    // Drain the pinned sleepers; the cancelled job must not have
    // consumed a worker (no late completion — it never started) and
    // its admission slot must be free again.
    pollUntilSettled(core, r1.getU64("id", 0, &errors));
    pollUntilSettled(core, r2.getU64("id", 0, &errors));
    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    EXPECT_EQ(sz.getU64("cancelled", 0, &errors), 1u);
    EXPECT_EQ(sz.getU64("late_completions", 99, &errors), 0u);
    EXPECT_EQ(sz.getU64("active", 99, &errors), 0u);
}

TEST(ServiceCore, CancelRunningJobDiscardsLateCompletion)
{
    ServiceCore core(testConfig());
    std::vector<std::string> errors;
    util::JsonValue r = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
             "\"ms\":300}}"));
    std::uint64_t id = r.getU64("id", 0, &errors);

    // Wait until the sleeper is actually on a worker.
    for (int i = 0; i < 200; ++i) {
        util::JsonValue p = parse(core.handleLine(
            "c",
            "{\"op\":\"poll\",\"id\":" + std::to_string(id) + "}"));
        if (p.getString("state", "", &errors) == "running")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    util::JsonValue c = parse(core.handleLine(
        "c",
        "{\"op\":\"cancel\",\"id\":" + std::to_string(id) + "}"));
    EXPECT_EQ(c.getString("state", "", &errors), "cancelled");

    // The abandoned thread finishes eventually; its completion is
    // counted and discarded, never flipping the cancel verdict.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    util::JsonValue p = parse(core.handleLine(
        "c", "{\"op\":\"poll\",\"id\":" + std::to_string(id) + "}"));
    EXPECT_EQ(p.getString("state", "", &errors), "cancelled");
    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    EXPECT_EQ(sz.getU64("cancelled", 0, &errors), 1u);
    EXPECT_EQ(sz.getU64("late_completions", 0, &errors), 1u);
}

TEST(ServiceCore, CancelUnknownOrSettledJob)
{
    ServiceCore core(testConfig());
    std::vector<std::string> errors;
    util::JsonValue c = parse(
        core.handleLine("c", "{\"op\":\"cancel\",\"id\":777}"));
    EXPECT_FALSE(c.getBool("ok", true, &errors));
    EXPECT_NE(c.getString("error", "", &errors).find("777"),
              std::string::npos);

    // Cancelling a finished job is a no-op that reports the verdict.
    util::JsonValue r = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"wait\":true,\"job\":"
             "{\"type\":\"verify\",\"nodes\":2}}"));
    std::uint64_t id = r.getU64("id", 0, &errors);
    c = parse(core.handleLine(
        "c",
        "{\"op\":\"cancel\",\"id\":" + std::to_string(id) + "}"));
    EXPECT_TRUE(c.getBool("ok", false, &errors));
    EXPECT_EQ(c.getString("state", "", &errors), "done");
    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    EXPECT_EQ(sz.getU64("cancelled", 99, &errors), 0u);
}

TEST(ServiceCore, DeadlineExpiresQueuedJob)
{
    ServiceConfig cfg = testConfig();
    cfg.workers = 2;
    ServiceCore core(cfg);
    std::vector<std::string> errors;

    // Pin both workers for longer than the queued job's deadline.
    const std::string pin =
        "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
        "\"ms\":400}}";
    util::JsonValue p1 = parse(core.handleLine("c", pin));
    util::JsonValue p2 = parse(core.handleLine("c", pin));
    util::JsonValue r = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
             "\"ms\":10,\"deadline_ms\":50}}"));
    std::uint64_t id = r.getU64("id", 0, &errors);
    ASSERT_GT(id, 0u);

    util::JsonValue done = pollUntilSettled(core, id);
    EXPECT_EQ(done.getString("state", "", &errors), "cancelled");
    EXPECT_NE(done.getString("error", "", &errors).find("deadline"),
              std::string::npos);
    pollUntilSettled(core, p1.getU64("id", 0, &errors));
    pollUntilSettled(core, p2.getU64("id", 0, &errors));
    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    EXPECT_GE(sz.getU64("deadline_expired", 0, &errors), 1u);
    EXPECT_EQ(sz.getU64("active", 99, &errors), 0u);
}

TEST(ServiceCore, DeadlineAbandonsRunningJob)
{
    ServiceCore core(testConfig());
    std::vector<std::string> errors;
    util::JsonValue r = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"wait\":true,\"job\":"
             "{\"type\":\"sleep\",\"ms\":400,"
             "\"deadline_ms\":50}}"));
    EXPECT_EQ(r.getString("state", "", &errors), "timed_out");
    EXPECT_NE(r.getString("error", "", &errors).find("deadline"),
              std::string::npos);
    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    EXPECT_EQ(sz.getU64("deadline_expired", 0, &errors), 1u);
    EXPECT_EQ(sz.getU64("timed_out", 0, &errors), 1u);
}

TEST(ServiceCore, ClientGoneCancelsOnlyThatClientsQueuedJobs)
{
    ServiceConfig cfg = testConfig();
    cfg.workers = 2;
    ServiceCore core(cfg);
    std::vector<std::string> errors;

    // Two running jobs for "a", one queued each for "a" and "b".
    const std::string sleeper =
        "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
        "\"ms\":300}}";
    util::JsonValue a1 = parse(core.handleLine("a", sleeper));
    util::JsonValue a2 = parse(core.handleLine("a", sleeper));
    // Wait for both to be picked up: clientGone must only take jobs
    // that are still queued, and a job is only reliably Running once
    // a poll says so.
    for (std::uint64_t id : {a1.getU64("id", 0, &errors),
                             a2.getU64("id", 0, &errors)}) {
        for (int i = 0; i < 200; ++i) {
            util::JsonValue p = parse(core.handleLine(
                "t", "{\"op\":\"poll\",\"id\":" +
                         std::to_string(id) + "}"));
            if (p.getString("state", "", &errors) != "queued")
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    }
    util::JsonValue aq = parse(core.handleLine("a", sleeper));
    util::JsonValue bq = parse(core.handleLine("b", sleeper));
    std::uint64_t aq_id = aq.getU64("id", 0, &errors);
    std::uint64_t bq_id = bq.getU64("id", 0, &errors);

    core.clientGone("a");

    // a's queued job died with the connection; b's survives and the
    // running jobs finish normally.
    util::JsonValue pa = parse(core.handleLine(
        "t", "{\"op\":\"poll\",\"id\":" + std::to_string(aq_id) +
                 "}"));
    EXPECT_EQ(pa.getString("state", "", &errors), "cancelled");
    EXPECT_NE(pa.getString("error", "", &errors).find("disconnect"),
              std::string::npos);
    util::JsonValue pb = pollUntilSettled(core, bq_id);
    EXPECT_EQ(pb.getString("state", "", &errors), "done");
    util::JsonValue da =
        pollUntilSettled(core, a1.getU64("id", 0, &errors));
    EXPECT_EQ(da.getString("state", "", &errors), "done");
    pollUntilSettled(core, a2.getU64("id", 0, &errors));
}

TEST(ServiceCore, ShedDegradesToModelTierWhenEnabled)
{
    ServiceConfig cfg = testConfig();
    cfg.workers = 2;
    cfg.queueDepth = 2;
    cfg.degradeToModel = true;
    ServiceCore core(cfg);
    std::vector<std::string> errors;

    // Saturate admission with sleepers (which can never degrade)...
    const std::string sleeper =
        "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
        "\"ms\":400}}";
    util::JsonValue r1 = parse(core.handleLine("c", sleeper));
    util::JsonValue r2 = parse(core.handleLine("c", sleeper));
    ASSERT_TRUE(r1.getBool("ok", false, &errors));
    ASSERT_TRUE(r2.getBool("ok", false, &errors));

    // ...then a run submit is answered by the model tier instantly.
    util::JsonValue deg = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"wait\":true,\"job\":"
             "{\"type\":\"run\",\"benchmark\":\"mp3d\","
             "\"procs\":8,\"refs\":2000,\"fast\":true}}"));
    EXPECT_TRUE(deg.getBool("ok", false, &errors));
    EXPECT_EQ(deg.getString("state", "", &errors), "done");
    EXPECT_TRUE(deg.getBool("degraded", false, &errors));
    const util::JsonValue *result = deg.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->getBool("degraded", false, &errors));
    EXPECT_GT(result->getNumber("error_bound", -1, &errors), 0.0);

    // A sleeper (not degradable) and an opted-out run still shed.
    util::JsonValue shed = parse(core.handleLine("c", sleeper));
    EXPECT_FALSE(shed.getBool("ok", true, &errors));
    util::JsonValue optout = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"job\":{\"type\":\"run\","
             "\"benchmark\":\"mp3d\",\"procs\":8,\"refs\":2000,"
             "\"fast\":true,\"degrade\":false}}"));
    EXPECT_FALSE(optout.getBool("ok", true, &errors));
    EXPECT_GT(optout.getU64("retry_after_ms", 0, &errors), 0u);

    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    EXPECT_EQ(sz.getU64("degraded", 0, &errors), 1u);
    // Degraded answers are never memoized.
    EXPECT_EQ(core.cache().stats().stores, 0u);
}

TEST(ServiceCore, ShedNeverDegradesByDefault)
{
    ServiceConfig cfg = testConfig();
    cfg.queueDepth = 1;
    ServiceCore core(cfg);
    std::vector<std::string> errors;
    parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
             "\"ms\":300}}"));
    util::JsonValue shed = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"job\":{\"type\":\"run\","
             "\"benchmark\":\"mp3d\",\"procs\":8,\"refs\":2000,"
             "\"fast\":true}}"));
    EXPECT_FALSE(shed.getBool("ok", true, &errors));
    EXPECT_NE(shed.getString("error", "", &errors).find("overloaded"),
              std::string::npos);
}

TEST(ServiceCore, WatchdogEscalationAttachesDegradedEstimate)
{
    ServiceConfig cfg = testConfig();
    cfg.watchdog = std::chrono::milliseconds(1);
    cfg.degradeToModel = true;
    ServiceCore core(cfg);
    std::vector<std::string> errors;

    // A real (non-fast) run overruns a 1 ms watchdog for certain.
    util::JsonValue r = parse(core.handleLine(
        "c", "{\"op\":\"submit\",\"job\":{\"type\":\"run\","
             "\"benchmark\":\"mp3d\",\"procs\":8,"
             "\"refs\":50000}}"));
    std::uint64_t id = r.getU64("id", 0, &errors);
    ASSERT_GT(id, 0u);

    util::JsonValue done = pollUntilSettled(core, id);
    EXPECT_EQ(done.getString("state", "", &errors), "timed_out");
    // The poll that reaped the timeout escalated to the model tier:
    // a partial (estimated) result rides along with the verdict.
    EXPECT_TRUE(done.getBool("degraded", false, &errors));
    const util::JsonValue *result = done.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->getBool("degraded", false, &errors));
    EXPECT_GT(result->getNumber("error_bound", -1, &errors), 0.0);

    util::JsonValue sz =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    EXPECT_GE(sz.getU64("degraded", 0, &errors), 1u);
}

TEST(ServiceCore, ShedBackoffJitterIsDeterministicPerClient)
{
    ServiceConfig cfg = testConfig();
    cfg.queueDepth = 1;
    cfg.retryAfterMs = 10'000;
    ServiceCore core(cfg);
    std::vector<std::string> errors;
    parse(core.handleLine(
        "alice", "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
                 "\"ms\":400}}"));

    const std::string probe =
        "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\","
        "\"ms\":1}}";
    auto shed_hint = [&](const char *who) {
        util::JsonValue r = parse(core.handleLine(who, probe));
        EXPECT_FALSE(r.getBool("ok", true, &errors));
        return r.getU64("retry_after_ms", 0, &errors);
    };
    std::uint64_t alice1 = shed_hint("alice");
    std::uint64_t alice2 = shed_hint("alice");
    std::uint64_t bob = shed_hint("bob");

    // Same client, same hint (replayable); the jitter stays within
    // one base interval; distinct clients desynchronize.
    EXPECT_EQ(alice1, alice2);
    EXPECT_GE(alice1, 10'000u);
    EXPECT_LT(alice1, 20'000u);
    EXPECT_NE(alice1, bob);
}

TEST(ServiceCore, ConcurrentClientsGetIdenticalBytes)
{
    // The acceptance property: N concurrent clients submitting the
    // same spec all receive results byte-identical to a direct
    // execution (the first computes, later ones hit the cache or
    // recompute — either way the bytes cannot differ).
    ServiceCore core(testConfig());
    const std::string submit =
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"model\",\"benchmark\":\"mp3d\",\"procs\":16,"
        "\"refs\":2000,\"fast\":true}}";
    constexpr int clients = 4;
    std::vector<std::string> results(clients);
    std::vector<std::thread> threads;
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&, i]() {
            util::JsonValue r = parse(core.handleLine(
                "client" + std::to_string(i), submit));
            const util::JsonValue *result = r.find("result");
            results[i] = result ? result->dump() : "<none>";
        });
    }
    for (std::thread &t : threads)
        t.join();

    JobSpec spec;
    std::string error;
    util::JsonValue job;
    ASSERT_TRUE(util::tryParseJson(
        "{\"type\":\"model\",\"benchmark\":\"mp3d\",\"procs\":16,"
        "\"refs\":2000,\"fast\":true}",
        &job, &error));
    ASSERT_TRUE(JobSpec::tryParse(job, false, &spec, &error)) << error;
    std::string direct = executeJob(spec, 1).dump();
    for (int i = 0; i < clients; ++i)
        EXPECT_EQ(results[i], direct) << "client " << i;
}

} // namespace
} // namespace ringsim::service
