/**
 * @file
 * Unit tests for the two-tier result cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/service/result_cache.hpp"

namespace ringsim::service {
namespace {

std::string
tempDir(const char *name)
{
    std::string dir = testing::TempDir() + "/" + name;
    // ResultCache mkdirs it; make sure stale files don't leak between
    // test runs by using per-test names.
    return dir;
}

TEST(ResultCache, MissThenHit)
{
    ResultCache cache(4, "");
    EXPECT_FALSE(cache.get("k1").has_value());
    cache.put("k1", "v1");
    auto hit = cache.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "v1");
    CacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.memHits, 1u);
    EXPECT_EQ(s.stores, 1u);
}

TEST(ResultCache, OverwriteReplacesValue)
{
    ResultCache cache(4, "");
    cache.put("k", "old");
    cache.put("k", "new");
    EXPECT_EQ(*cache.get("k"), "new");
}

TEST(ResultCache, EvictsLeastRecentlyUsed)
{
    ResultCache cache(2, "");
    cache.put("a", "1");
    cache.put("b", "2");
    // Touch "a" so "b" is the LRU victim when "c" arrives.
    EXPECT_TRUE(cache.get("a").has_value());
    cache.put("c", "3");
    EXPECT_EQ(cache.memEntries(), 2u);
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_TRUE(cache.get("c").has_value());
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, DiskTierSurvivesRestart)
{
    std::string dir = tempDir("rc_restart");
    {
        ResultCache cache(4, dir);
        cache.put("persist", "payload");
    }
    ResultCache fresh(4, dir);
    auto hit = fresh.get("persist");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "payload");
    CacheStats s = fresh.stats();
    EXPECT_EQ(s.diskHits, 1u);
    // The disk hit is promoted: the next get is a memory hit.
    EXPECT_TRUE(fresh.get("persist").has_value());
    EXPECT_EQ(fresh.stats().memHits, 1u);
}

TEST(ResultCache, EvictedEntryStillOnDisk)
{
    std::string dir = tempDir("rc_spill");
    ResultCache cache(1, dir);
    cache.put("a", "1");
    cache.put("b", "2"); // evicts "a" from memory
    auto hit = cache.get("a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "1");
    EXPECT_EQ(cache.stats().diskHits, 1u);
}

TEST(ResultCache, MemoryOnlyModeHasNoDiskPath)
{
    ResultCache cache(4, "");
    EXPECT_EQ(cache.diskPath("abc"), "");
    cache.put("k", "v"); // must not touch the filesystem
    EXPECT_EQ(cache.stats().diskErrors, 0u);
}

TEST(ResultCache, UnwritableDirCountsDiskErrors)
{
    // A file used as the "directory" makes every disk write fail but
    // must leave the memory tier fully functional.
    std::string path = testing::TempDir() + "/rc_notadir";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);

    ResultCache cache(4, path);
    cache.put("k", "v");
    EXPECT_EQ(*cache.get("k"), "v");
    EXPECT_GT(cache.stats().diskErrors, 0u);
    std::remove(path.c_str());
}

TEST(ResultCache, LargeValueRoundTripsThroughDisk)
{
    std::string dir = tempDir("rc_large");
    std::string big(100'000, 'x');
    big[50'000] = '\n';
    {
        ResultCache cache(1, dir);
        cache.put("big", big);
    }
    ResultCache fresh(1, dir);
    auto hit = fresh.get("big");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, big);
}

} // namespace
} // namespace ringsim::service
