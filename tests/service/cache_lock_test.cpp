/**
 * @file
 * Cross-process coordination of a shared --cache-dir: the advisory
 * directory lock that keeps one daemon's startup quarantine scan
 * from reaping another daemon's in-flight publish. The lock file is
 * public protocol (".cache.lock" in the cache directory), so the
 * tests take it with raw flock() exactly as a second daemon would.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "src/service/result_cache.hpp"

namespace ringsim::service {
namespace {

std::string
tempDir(const char *name)
{
    return testing::TempDir() + "/" + name +
           std::to_string(::getpid());
}

TEST(CacheLock, TwoConcurrentOpenersShareOneDirectory)
{
    std::string dir = tempDir("ringsim_two_openers");
    // Both daemons alive at once, each publishing and reading. The
    // memory tiers are private, so cross-instance visibility proves
    // the disk tier (and its locking) carried the bytes.
    ResultCache a(4, dir);
    ResultCache b(4, dir);

    a.put("aaaa0000aaaa0000aaaa0000aaaa0000", "from-a");
    b.put("bbbb0000bbbb0000bbbb0000bbbb0000", "from-b");

    auto b_reads = b.get("aaaa0000aaaa0000aaaa0000aaaa0000");
    ASSERT_TRUE(b_reads.has_value());
    EXPECT_EQ(*b_reads, "from-a");
    auto a_reads = a.get("bbbb0000bbbb0000bbbb0000bbbb0000");
    ASSERT_TRUE(a_reads.has_value());
    EXPECT_EQ(*a_reads, "from-b");

    // Same key from both sides: last write wins, nothing corrupts.
    a.put("cccc0000cccc0000cccc0000cccc0000", "first");
    b.put("cccc0000cccc0000cccc0000cccc0000", "second");
    EXPECT_EQ(a.stats().diskErrors, 0u);
    EXPECT_EQ(b.stats().diskErrors, 0u);
    EXPECT_EQ(a.stats().quarantined, 0u);
    EXPECT_EQ(b.stats().quarantined, 0u);

    // A third opener scans a consistent store: three entries, no
    // leftovers to clean.
    ResultCache c(4, dir);
    EXPECT_EQ(c.stats().scanned, 3u);
    EXPECT_EQ(c.stats().tmpCleaned, 0u);
    auto warm = c.get("cccc0000cccc0000cccc0000cccc0000");
    ASSERT_TRUE(warm.has_value());
    EXPECT_EQ(*warm, "second");
}

// The regression satellite: opener B's startup scan must block on
// the directory lock while publisher A is mid-publish (temp file
// written, not yet renamed), instead of reaping A's temp file as an
// orphan and losing the publish.
TEST(CacheLock, StartupScanWaitsForAnInFlightPublish)
{
    std::string dir = tempDir("ringsim_scan_vs_publish");
    const std::string key = "00112233445566778899aabbccddeeff";

    // Opener A: creates the directory and the lock file.
    ResultCache a(4, dir);
    std::string path = a.diskPath(key);
    ASSERT_FALSE(path.empty());

    // Freeze A mid-publish: a complete framed entry sitting at a
    // temp name, publisher lock held, rename still to come. (diskPut
    // does exactly this between its fwrite and its rename.)
    std::string tmp = path + ".tmp99";
    std::string framed = ResultCache::frameEntry("{\"ok\":true}");
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(framed.data(), 1, framed.size(), f),
              framed.size());
    ASSERT_EQ(std::fclose(f), 0);
    int lock_fd = ::open((dir + "/.cache.lock").c_str(),
                         O_RDWR | O_CLOEXEC);
    ASSERT_GE(lock_fd, 0);
    ASSERT_EQ(::flock(lock_fd, LOCK_SH), 0);

    // Opener B arrives now. Its constructor's scan needs the lock
    // exclusive, so it blocks until the publish completes.
    std::unique_ptr<ResultCache> b;
    std::thread opener([&b, &dir]() {
        b = std::make_unique<ResultCache>(4, dir);
    });

    // Finish the publish while B is (or soon will be) blocked, then
    // release the lock. Order matters: the rename happens under the
    // publisher lock, so B's scan can only ever see the final name.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
    ::close(lock_fd);
    opener.join();

    // B saw a completed publish: the entry verified, nothing was
    // reaped as an orphan, and the bytes are servable.
    EXPECT_EQ(b->stats().tmpCleaned, 0u);
    EXPECT_EQ(b->stats().scanned, 1u);
    auto hit = b->get(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "{\"ok\":true}");
}

TEST(CacheLock, OrphanedTempFilesAreStillReapedWhenUncontended)
{
    std::string dir = tempDir("ringsim_orphan_reap");
    ResultCache a(4, dir);
    std::string tmp = a.diskPath(
        "ffff0000ffff0000ffff0000ffff0000") + ".tmp0";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("half a publish from a crashed daemon", f);
    std::fclose(f);

    // No publisher holds the lock, so the next opener's scan removes
    // the leftover — the lock defends in-flight publishes, not
    // genuine crash debris.
    ResultCache b(4, dir);
    EXPECT_EQ(b.stats().tmpCleaned, 1u);
    ASSERT_EQ(::access(tmp.c_str(), F_OK), -1);
}

} // namespace
} // namespace ringsim::service
