/**
 * @file
 * Malformed-NDJSON corpus test: every broken line a chaotic client
 * (or a garbled transport) can produce must come back as one
 * parseable {"ok":false,...} response line — never a crash, a hang,
 * or a silent drop — and must be counted in bad_requests.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/service/server.hpp"
#include "src/util/json.hpp"

namespace ringsim::service {
namespace {

ServiceConfig
testConfig()
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueDepth = 2;
    cfg.memCacheEntries = 4;
    cfg.enableTestJobs = true;
    return cfg;
}

/** Every line here must be rejected structurally. */
std::vector<std::string>
corpus()
{
    return {
        // Not JSON at all.
        "not json",
        "{",
        "}",
        "[",
        "\x01\x02\xff\xfe",
        "#{\"op\":\"ping\"}", // a chaos-garbled response echoed back
        "{\"op\":\"ping\"",   // truncated object
        std::string(1, '\0'),
        // Valid JSON, wrong shape.
        "null",
        "42",
        "\"ping\"",
        "[\"op\",\"ping\"]",
        "true",
        // Objects with missing or bogus fields.
        "{}",
        "{\"op\":\"warp\"}",
        "{\"op\":42}",
        "{\"op\":\"submit\"}",                    // no job
        "{\"op\":\"submit\",\"job\":42}",         // job not an object
        "{\"op\":\"submit\",\"job\":{\"type\":\"doom\"}}",
        "{\"op\":\"submit\",\"job\":{\"type\":\"run\","
        "\"procs\":\"many\"}}",
        "{\"op\":\"poll\"}",                      // no id
        "{\"op\":\"poll\",\"id\":\"seven\"}",
        "{\"op\":\"poll\",\"id\":0}",
        "{\"op\":\"cancel\"}",
        "{\"op\":\"cancel\",\"id\":0}",
        // A huge unterminated-string line must not wedge the parser.
        "{\"op\":\"" + std::string(100'000, 'a'),
    };
}

TEST(MalformedRequests, EveryLineGetsAStructuredRejection)
{
    ServiceCore core(testConfig());
    for (const std::string &line : corpus()) {
        std::string response = core.handleLine("fuzz", line);
        util::JsonValue r;
        std::string error;
        ASSERT_TRUE(util::tryParseJson(response, &r, &error))
            << "unparsable response " << response << " to: " << line;
        std::vector<std::string> errors;
        EXPECT_FALSE(r.getBool("ok", true, &errors))
            << "accepted: " << line;
        EXPECT_FALSE(r.getString("error", "", &errors).empty())
            << "no error text for: " << line;
        // One request, one line: a response must never embed a raw
        // newline that would desync the client's framing.
        EXPECT_EQ(response.find('\n'), std::string::npos);
    }
}

TEST(MalformedRequests, AllAreCountedAndServiceStaysUp)
{
    ServiceCore core(testConfig());
    const std::size_t n = corpus().size();
    for (const std::string &line : corpus())
        core.handleLine("fuzz", line);

    util::JsonValue sz;
    std::string error;
    ASSERT_TRUE(util::tryParseJson(
        core.handleLine("fuzz", "{\"op\":\"statsz\"}"), &sz, &error));
    std::vector<std::string> errors;
    ASSERT_TRUE(sz.getBool("ok", false, &errors));
    EXPECT_EQ(sz.getU64("bad_requests", 0, &errors), n);
    // Nothing was admitted, shed or left behind by the garbage.
    EXPECT_EQ(sz.getU64("admitted", 0, &errors), 0u);
    EXPECT_EQ(sz.getU64("active", 99, &errors), 0u);

    // The service still does real work afterwards.
    util::JsonValue r;
    ASSERT_TRUE(util::tryParseJson(
        core.handleLine(
            "fuzz", "{\"op\":\"submit\",\"wait\":true,\"job\":"
                    "{\"type\":\"verify\",\"nodes\":2}}"),
        &r, &error));
    EXPECT_TRUE(r.getBool("ok", false, &errors));
    EXPECT_EQ(r.getString("state", "", &errors), "done");
}

TEST(MalformedRequests, RepeatedGarbageDoesNotLeakSlots)
{
    // 200 rounds of the nastiest lines; admission slots must all be
    // free afterwards (a leak would eventually shed every request).
    ServiceCore core(testConfig());
    for (int round = 0; round < 200; ++round) {
        core.handleLine("fuzz", "{\"op\":\"submit\",\"job\":42}");
        core.handleLine("fuzz", "{");
    }
    util::JsonValue sz;
    std::string error;
    ASSERT_TRUE(util::tryParseJson(
        core.handleLine("fuzz", "{\"op\":\"statsz\"}"), &sz, &error));
    std::vector<std::string> errors;
    EXPECT_EQ(sz.getU64("active", 99, &errors), 0u);
}

} // namespace
} // namespace ringsim::service
