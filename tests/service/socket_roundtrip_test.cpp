/**
 * @file
 * End-to-end socket tests: a real ringsim daemon core behind a Unix
 * socket, driven by ServiceClient connections — including the
 * four-concurrent-clients byte-identity property from the service's
 * acceptance criteria.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/service/socket_server.hpp"

namespace ringsim::service {
namespace {

ServiceConfig
testConfig()
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queueDepth = 8;
    cfg.memCacheEntries = 16;
    cfg.enableTestJobs = true;
    return cfg;
}

/** A per-process socket path: gtest's TempDir() is plain /tmp on
 *  Linux, and ctest runs each SocketRoundtrip case as its own
 *  process — two concurrent cases sharing one path steal each
 *  other's bind and deadlock both daemons. */
std::string
uniqueEndpoint()
{
    return testing::TempDir() + "/ringsim_test." +
           std::to_string(::getpid()) + ".sock";
}

/** A live daemon on a temp-dir Unix socket, torn down on scope exit. */
class LiveService
{
  public:
    explicit LiveService(const ServiceConfig &cfg)
        : core_(cfg),
          endpoint_(uniqueEndpoint()),
          server_(core_, endpoint_)
    {
        std::string error;
        started_ = server_.tryStart(&error);
        EXPECT_TRUE(started_) << error;
        if (started_)
            pump_ = std::thread([this]() { server_.serve(); });
    }

    ~LiveService()
    {
        if (!started_)
            return;
        // serve() exits once the core has accepted a shutdown.
        ServiceClient client;
        std::string error, response;
        if (client.tryConnect(endpoint_, &error))
            (void)client.tryRequest("{\"op\":\"shutdown\"}",
                                    &response, &error);
        pump_.join();
    }

    const std::string &endpoint() const { return endpoint_; }

  private:
    ServiceCore core_;
    std::string endpoint_;
    SocketServer server_;
    bool started_ = false;
    std::thread pump_;
};

ServiceClient
connect(const std::string &endpoint)
{
    ServiceClient client;
    std::string error;
    EXPECT_TRUE(client.tryConnect(endpoint, &error)) << error;
    return client;
}

TEST(EndpointParse, AcceptsAllThreeForms)
{
    int port = -1;
    std::string path, error;
    ASSERT_TRUE(tryParseEndpoint("tcp:8742", &port, &path, &error));
    EXPECT_EQ(port, 8742);
    ASSERT_TRUE(
        tryParseEndpoint("unix:/tmp/x.sock", &port, &path, &error));
    EXPECT_EQ(path, "/tmp/x.sock");
    ASSERT_TRUE(tryParseEndpoint("y.sock", &port, &path, &error));
    EXPECT_EQ(path, "y.sock");
}

TEST(EndpointParse, RejectsBadForms)
{
    int port = -1;
    std::string path, error;
    EXPECT_FALSE(tryParseEndpoint("tcp:notaport", &port, &path,
                                  &error));
    EXPECT_FALSE(tryParseEndpoint("tcp:99999", &port, &path, &error));
    EXPECT_FALSE(tryParseEndpoint("", &port, &path, &error));
    EXPECT_FALSE(tryParseEndpoint(
        "unix:" + std::string(200, 'x'), &port, &path, &error));
}

TEST(SocketRoundtrip, PingOverUnixSocket)
{
    LiveService svc(testConfig());
    ServiceClient client = connect(svc.endpoint());
    std::string response, error;
    ASSERT_TRUE(client.tryRequest("{\"op\":\"ping\"}", &response,
                                  &error))
        << error;
    EXPECT_EQ(response, "{\"ok\":true,\"op\":\"ping\"}");
}

TEST(SocketRoundtrip, MultipleRequestsOnOneConnection)
{
    LiveService svc(testConfig());
    ServiceClient client = connect(svc.endpoint());
    std::string response, error;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(client.tryRequest("{\"op\":\"ping\"}", &response,
                                      &error))
            << error;
        EXPECT_EQ(response, "{\"ok\":true,\"op\":\"ping\"}");
    }
}

TEST(SocketRoundtrip, TryCallSurfacesServerErrors)
{
    LiveService svc(testConfig());
    ServiceClient client = connect(svc.endpoint());
    util::JsonValue req = util::JsonValue::object();
    req.set("op", util::JsonValue::string("warp"));
    util::JsonValue response;
    std::string error;
    EXPECT_FALSE(client.tryCall(req, &response, &error));
    EXPECT_NE(error.find("warp"), std::string::npos) << error;
}

TEST(SocketRoundtrip, ConnectToMissingSocketFails)
{
    ServiceClient client;
    std::string error;
    EXPECT_FALSE(client.tryConnect(
        testing::TempDir() + "/no_such_daemon.sock", &error));
    EXPECT_FALSE(error.empty());
}

TEST(SocketRoundtrip, SurvivesClientGoneBeforeResponse)
{
    // A client that hangs up while its wait-submit is still running
    // (Ctrl+C on ringsim_submit --wait) makes the daemon write a
    // response into a closed socket. That must surface as a write
    // error on one connection, not SIGPIPE-kill the whole daemon.
    LiveService svc(testConfig());

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, svc.endpoint().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string line =
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"sleep\",\"ms\":200}}\n";
    ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(line.size()));
    ::close(fd); // gone before the 200 ms job finishes

    // Give the abandoned response write time to happen, then prove
    // the daemon still serves other clients.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    ServiceClient client = connect(svc.endpoint());
    std::string response, error;
    ASSERT_TRUE(client.tryRequest("{\"op\":\"ping\"}", &response,
                                  &error))
        << error;
    EXPECT_EQ(response, "{\"ok\":true,\"op\":\"ping\"}");
}

TEST(SocketRoundtrip, ShutdownCompletesWithIdleClientConnected)
{
    // An idle client holding its connection open must not pin the
    // daemon's connection-thread join past a shutdown request.
    auto svc = std::make_unique<LiveService>(testConfig());
    ServiceClient idle = connect(svc->endpoint()); // never sends
    ServiceClient active = connect(svc->endpoint());
    std::string response, error;
    ASSERT_TRUE(active.tryRequest("{\"op\":\"ping\"}", &response,
                                  &error))
        << error;
    // Destruction requests shutdown and joins every connection
    // thread; a hang here fails the test via the suite timeout.
    svc.reset();
}

TEST(SocketRoundtrip, FourConcurrentClientsByteIdentical)
{
    LiveService svc(testConfig());
    const std::string submit =
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"model\",\"benchmark\":\"water\",\"procs\":16,"
        "\"refs\":2000,\"fast\":true}}";

    constexpr int clients = 4;
    std::vector<std::string> results(clients);
    std::vector<std::thread> threads;
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&, i]() {
            ServiceClient client = connect(svc.endpoint());
            std::string response, error;
            if (client.tryRequest(submit, &response, &error))
                results[i] = response;
            else
                results[i] = "error: " + error;
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Every client sees the same result object (ids and cache flags
    // may differ between responses; the result payload may not).
    std::vector<std::string> payloads;
    for (int i = 0; i < clients; ++i) {
        util::JsonValue r;
        std::string error;
        ASSERT_TRUE(util::tryParseJson(results[i], &r, &error))
            << results[i];
        const util::JsonValue *result = r.find("result");
        ASSERT_NE(result, nullptr) << results[i];
        payloads.push_back(result->dump());
    }
    for (int i = 1; i < clients; ++i)
        EXPECT_EQ(payloads[i], payloads[0]) << "client " << i;
}

TEST(SocketRoundtrip, SweepMatchesDirectRender)
{
    // A tiny fig3 sweep through the socket equals the library's own
    // rendering — the property that lets benches route via --service.
    LiveService svc(testConfig());
    ServiceClient client = connect(svc.endpoint());
    const std::string submit =
        "{\"op\":\"submit\",\"wait\":true,\"job\":"
        "{\"type\":\"sweep\",\"figure\":\"fig3\",\"refs\":600,"
        "\"fast\":true}}";
    util::JsonValue req;
    std::string error;
    ASSERT_TRUE(util::tryParseJson(submit, &req, &error));
    util::JsonValue response;
    ASSERT_TRUE(client.tryCall(req, &response, &error)) << error;
    const util::JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    const util::JsonValue *text = result->find("text");
    ASSERT_NE(text, nullptr);

    figures::FigureOptions opt;
    opt.refs = 600;
    opt.fast = true;
    EXPECT_EQ(text->asString(),
              figures::renderFigure(figures::FigureId::Fig3, opt));
}

} // namespace
} // namespace ringsim::service
