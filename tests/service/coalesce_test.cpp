/**
 * @file
 * Worker-level single-flight coalescing: a duplicate submission of a
 * cacheable spec that is already admitted attaches to the in-flight
 * leader instead of executing twice — sharing the leader's id, its
 * answer, and even its death. The schedule-level guarantees (no
 * orphaned waiter, no double answer under any interleaving) are
 * proved by the src/verify/ explorer; these tests pin the concrete
 * wire behavior to the modeled one.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/service/server.hpp"
#include "src/util/json.hpp"

namespace ringsim::service {
namespace {

util::JsonValue
parse(const std::string &line)
{
    util::JsonValue v;
    std::string error;
    EXPECT_TRUE(util::tryParseJson(line, &v, &error))
        << error << " in: " << line;
    return v;
}

ServiceConfig
testConfig()
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queueDepth = 8;
    cfg.memCacheEntries = 16;
    cfg.enableTestJobs = true;
    return cfg;
}

/** Poll @p id until it leaves the pool (bounded busy-wait). */
util::JsonValue
pollUntilSettled(ServiceCore &core, std::uint64_t id)
{
    for (int i = 0; i < 400; ++i) {
        util::JsonValue r = parse(core.handleLine(
            "t", "{\"op\":\"poll\",\"id\":" + std::to_string(id) +
                     "}"));
        std::vector<std::string> errors;
        std::string state = r.getString("state", "?", &errors);
        if (state != "queued" && state != "running")
            return r;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "job " << id << " never settled";
    return util::JsonValue::null();
}

constexpr const char *kSleeper =
    "{\"op\":\"submit\",\"job\":{\"type\":\"sleep\",\"ms\":400}}";

constexpr const char *kModelSubmit =
    "{\"op\":\"submit\",\"job\":{\"type\":\"model\","
    "\"benchmark\":\"mp3d\",\"procs\":8,\"refs\":2000,"
    "\"fast\":true}}";

/** Pin both executors so the next cacheable submit stays Queued —
 *  coalescing needs the leader deterministically in flight. */
std::vector<std::uint64_t>
pinExecutors(ServiceCore &core)
{
    std::vector<std::uint64_t> ids;
    std::vector<std::string> errors;
    for (int i = 0; i < 2; ++i) {
        util::JsonValue r = parse(core.handleLine("pin", kSleeper));
        EXPECT_TRUE(r.getBool("ok", false, &errors));
        ids.push_back(r.getU64("id", 0, &errors));
    }
    return ids;
}

TEST(Coalesce, DuplicateSubmitAttachesToTheInFlightLeader)
{
    ServiceCore core(testConfig());
    std::vector<std::uint64_t> pins = pinExecutors(core);

    std::vector<std::string> errors;
    util::JsonValue leader = parse(core.handleLine("a", kModelSubmit));
    ASSERT_TRUE(leader.getBool("ok", false, &errors));
    std::uint64_t id = leader.getU64("id", 0, &errors);
    ASSERT_GT(id, 0u);
    EXPECT_EQ(leader.getString("state", "", &errors), "queued");
    EXPECT_FALSE(leader.getBool("coalesced", false, &errors));

    // The duplicate — from a different client — shares the leader's
    // id and consumes no admission slot.
    util::JsonValue dup = parse(core.handleLine("b", kModelSubmit));
    ASSERT_TRUE(dup.getBool("ok", false, &errors));
    EXPECT_EQ(dup.getU64("id", 0, &errors), id);
    EXPECT_TRUE(dup.getBool("coalesced", false, &errors));
    EXPECT_EQ(dup.getString("key", "", &errors),
              leader.getString("key", "", &errors));

    util::JsonValue done = pollUntilSettled(core, id);
    EXPECT_EQ(done.getString("state", "", &errors), "done");
    ASSERT_NE(done.find("result"), nullptr);

    util::JsonValue stats =
        parse(core.handleLine("t", "{\"op\":\"statsz\"}"));
    EXPECT_EQ(stats.getU64("coalesced", 0, &errors), 1u);
    // Two submits, one execution: only the leader was admitted.
    EXPECT_EQ(stats.getU64("admitted", 0, &errors), 3u); // 2 pins + 1
    for (std::uint64_t pin : pins)
        pollUntilSettled(core, pin);
}

TEST(Coalesce, TerminalLeaderStopsCoalescingFurtherSubmits)
{
    ServiceCore core(testConfig());
    std::vector<std::string> errors;

    // Uncontended run: the leader completes and is memoized.
    util::JsonValue first = parse(core.handleLine(
        "a", "{\"op\":\"submit\",\"wait\":true,\"job\":"
             "{\"type\":\"model\",\"benchmark\":\"water\","
             "\"procs\":8,\"refs\":2000,\"fast\":true}}"));
    ASSERT_TRUE(first.getBool("ok", false, &errors));
    EXPECT_EQ(first.getString("state", "", &errors), "done");

    // A repeat after the flight retired is a cache answer with a
    // fresh id — not a coalesced attach to a dead leader.
    util::JsonValue second = parse(core.handleLine(
        "b", "{\"op\":\"submit\",\"wait\":true,\"job\":"
             "{\"type\":\"model\",\"benchmark\":\"water\","
             "\"procs\":8,\"refs\":2000,\"fast\":true}}"));
    ASSERT_TRUE(second.getBool("ok", false, &errors));
    EXPECT_TRUE(second.getBool("cached", false, &errors));
    EXPECT_FALSE(second.getBool("coalesced", false, &errors));
    EXPECT_NE(second.getU64("id", 0, &errors),
              first.getU64("id", 0, &errors));

    util::JsonValue stats =
        parse(core.handleLine("t", "{\"op\":\"statsz\"}"));
    EXPECT_EQ(stats.getU64("coalesced", 0, &errors), 0u);
    EXPECT_EQ(stats.getU64("cache_answers", 0, &errors), 1u);
}

TEST(Coalesce, ACancelledLeaderAnswersItsWaiterToo)
{
    ServiceCore core(testConfig());
    std::vector<std::uint64_t> pins = pinExecutors(core);

    std::vector<std::string> errors;
    util::JsonValue leader = parse(core.handleLine("a", kModelSubmit));
    std::uint64_t id = leader.getU64("id", 0, &errors);
    util::JsonValue dup = parse(core.handleLine("b", kModelSubmit));
    ASSERT_TRUE(dup.getBool("coalesced", false, &errors));
    ASSERT_EQ(dup.getU64("id", 0, &errors), id);

    // Kill the leader while it is still queued. The waiter shares the
    // leader's id, so the cancellation *is* its answer — the modeled
    // "leader death answers all waiters" property on the real wire.
    util::JsonValue c = parse(core.handleLine(
        "a", "{\"op\":\"cancel\",\"id\":" + std::to_string(id) +
                 "}"));
    ASSERT_TRUE(c.getBool("ok", false, &errors));
    util::JsonValue waiter_view = parse(core.handleLine(
        "b", "{\"op\":\"poll\",\"id\":" + std::to_string(id) + "}"));
    EXPECT_EQ(waiter_view.getString("state", "", &errors),
              "cancelled");

    // The retired flight must not capture the next duplicate: a
    // fresh submit leads (and executes) on its own.
    util::JsonValue retry = parse(core.handleLine("b", kModelSubmit));
    ASSERT_TRUE(retry.getBool("ok", false, &errors));
    EXPECT_FALSE(retry.getBool("coalesced", false, &errors));
    EXPECT_NE(retry.getU64("id", 0, &errors), id);

    pollUntilSettled(core, retry.getU64("id", 0, &errors));
    for (std::uint64_t pin : pins)
        pollUntilSettled(core, pin);
}

TEST(Coalesce, SleepJobsNeverCoalesce)
{
    ServiceCore core(testConfig());
    std::vector<std::string> errors;
    // Identical side-effect-shaped (non-cacheable) jobs must both
    // run: distinct ids, no coalesced flag.
    util::JsonValue r1 = parse(core.handleLine("a", kSleeper));
    util::JsonValue r2 = parse(core.handleLine("a", kSleeper));
    ASSERT_TRUE(r1.getBool("ok", false, &errors));
    ASSERT_TRUE(r2.getBool("ok", false, &errors));
    EXPECT_NE(r1.getU64("id", 0, &errors),
              r2.getU64("id", 0, &errors));
    EXPECT_FALSE(r2.getBool("coalesced", false, &errors));
    pollUntilSettled(core, r1.getU64("id", 0, &errors));
    pollUntilSettled(core, r2.getU64("id", 0, &errors));
}

} // namespace
} // namespace ringsim::service
