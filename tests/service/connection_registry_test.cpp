/**
 * @file
 * Tests of ConnectionRegistry, the annotated replacement for the
 * socket server's ad-hoc per-connection "done" flags: lifecycle
 * counters stay conserved through launch/reap/joinAll, instantly
 * returning bodies cannot race their own registration, and every
 * launched thread is joined exactly once no matter which path claims
 * it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/service/connection_registry.hpp"

namespace ringsim::service {
namespace {

using namespace std::chrono_literals;

TEST(ConnectionRegistry, StartsEmpty)
{
    ConnectionRegistry reg;
    ConnectionRegistry::Counts c = reg.counts();
    EXPECT_EQ(c.launched, 0u);
    EXPECT_EQ(c.finished, 0u);
    EXPECT_EQ(c.joined, 0u);
    EXPECT_EQ(c.live, 0u);
}

TEST(ConnectionRegistry, LaunchRunsBodyAndRetiresSlot)
{
    ConnectionRegistry reg;
    std::atomic<int> ran{0};
    std::uint64_t id = reg.launch([&ran]() { ++ran; });
    EXPECT_GT(id, 0u);
    // The body retires its own slot; wait for it.
    for (int i = 0; i < 400 && reg.counts().finished == 0; ++i)
        std::this_thread::sleep_for(5ms);
    EXPECT_EQ(ran.load(), 1);
    ConnectionRegistry::Counts c = reg.counts();
    EXPECT_EQ(c.launched, 1u);
    EXPECT_EQ(c.finished, 1u);
    EXPECT_EQ(c.live, 0u);

    reg.reapFinished();
    c = reg.counts();
    EXPECT_EQ(c.joined, 1u);
}

TEST(ConnectionRegistry, InstantBodiesCannotRaceRegistration)
{
    // The old shared_ptr<atomic<bool>> scheme had a window where a
    // body finishing before its bookkeeping was recorded could leak
    // the thread object. launch() registers under the lock, so even
    // a body that returns immediately is accounted for.
    ConnectionRegistry reg;
    std::atomic<int> ran{0};
    constexpr int kThreads = 64;
    for (int i = 0; i < kThreads; ++i)
        reg.launch([&ran]() { ++ran; });
    reg.joinAll();
    EXPECT_EQ(ran.load(), kThreads);
    ConnectionRegistry::Counts c = reg.counts();
    EXPECT_EQ(c.launched, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(c.finished, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(c.joined, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(c.live, 0u);
}

TEST(ConnectionRegistry, ReapJoinsOnlyFinishedThreads)
{
    ConnectionRegistry reg;
    std::mutex m;
    std::condition_variable cv;
    bool release = false;

    reg.launch([&]() {
        std::unique_lock<std::mutex> lock(m);
        while (!release)
            cv.wait(lock);
    });
    reg.launch([]() {});

    for (int i = 0; i < 400 && reg.counts().finished < 1; ++i)
        std::this_thread::sleep_for(5ms);
    reg.reapFinished();
    ConnectionRegistry::Counts c = reg.counts();
    EXPECT_EQ(c.joined, 1u);
    EXPECT_EQ(c.live, 1u);

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    reg.joinAll();
    c = reg.counts();
    EXPECT_EQ(c.joined, 2u);
    EXPECT_EQ(c.live, 0u);
}

TEST(ConnectionRegistry, RepeatedReapsAreIdempotent)
{
    ConnectionRegistry reg;
    for (int i = 0; i < 8; ++i)
        reg.launch([]() {});
    for (int i = 0; i < 400 && reg.counts().finished < 8; ++i)
        std::this_thread::sleep_for(5ms);
    reg.reapFinished();
    reg.reapFinished();
    reg.joinAll();
    ConnectionRegistry::Counts c = reg.counts();
    EXPECT_EQ(c.launched, 8u);
    EXPECT_EQ(c.finished, 8u);
    // Exactly once each, across both claiming paths.
    EXPECT_EQ(c.joined, 8u);
}

TEST(ConnectionRegistry, DestructorJoinsLiveBodiesThatExit)
{
    std::atomic<int> ran{0};
    {
        ConnectionRegistry reg;
        for (int i = 0; i < 4; ++i)
            reg.launch([&ran]() {
                std::this_thread::sleep_for(20ms);
                ++ran;
            });
        // No explicit joinAll: the destructor must claim them.
    }
    EXPECT_EQ(ran.load(), 4);
}

TEST(ConnectionRegistry, ConcurrentLaunchAndReapStayConserved)
{
    // Stress the accept-loop shape: one thread launching while
    // another reaps opportunistically. Under TSan this also proves
    // the locking; here we assert the counters stay conserved.
    ConnectionRegistry reg;
    std::atomic<bool> stop{false};
    std::atomic<int> ran{0};

    std::thread reaper([&]() {
        while (!stop.load())
            reg.reapFinished();
    });
    constexpr int kThreads = 128;
    for (int i = 0; i < kThreads; ++i)
        reg.launch([&ran]() { ++ran; });
    reg.joinAll();
    stop.store(true);
    reaper.join();
    reg.reapFinished();

    EXPECT_EQ(ran.load(), kThreads);
    ConnectionRegistry::Counts c = reg.counts();
    EXPECT_EQ(c.launched, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(c.finished, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(c.joined, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(c.live, 0u);
}

} // namespace
} // namespace ringsim::service
