/**
 * @file
 * The fleet cache tier: the cache_get wire op, promotion of a peer's
 * warm bytes into the local cache, and the failure shape — a dead
 * peer is a plain miss, never an error. One hop only: a cache_get
 * answers from the local ResultCache and never consults *its* peers.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/service/socket_server.hpp"
#include "src/util/json.hpp"

namespace ringsim::service {
namespace {

util::JsonValue
parse(const std::string &line)
{
    util::JsonValue v;
    std::string error;
    EXPECT_TRUE(util::tryParseJson(line, &v, &error))
        << error << " in: " << line;
    return v;
}

ServiceConfig
testConfig()
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queueDepth = 8;
    cfg.memCacheEntries = 16;
    cfg.enableTestJobs = true;
    return cfg;
}

std::string
uniqueEndpoint()
{
    static int counter = 0;
    return testing::TempDir() + "/ringsim_peer_test." +
           std::to_string(::getpid()) + "." +
           std::to_string(counter++) + ".sock";
}

/** A live peer daemon on a Unix socket, torn down on scope exit. */
class LivePeer
{
  public:
    explicit LivePeer(const ServiceConfig &cfg)
        : core_(cfg), endpoint_(uniqueEndpoint()),
          server_(core_, endpoint_)
    {
        std::string error;
        started_ = server_.tryStart(&error);
        EXPECT_TRUE(started_) << error;
        if (started_)
            pump_ = std::thread([this]() { server_.serve(); });
    }

    ~LivePeer()
    {
        if (!started_)
            return;
        ServiceClient client;
        std::string error, response;
        if (client.tryConnect(endpoint_, &error))
            (void)client.tryRequest("{\"op\":\"shutdown\"}",
                                    &response, &error);
        pump_.join();
    }

    const std::string &endpoint() const { return endpoint_; }
    ServiceCore &core() { return core_; }

  private:
    ServiceCore core_;
    std::string endpoint_;
    SocketServer server_;
    bool started_ = false;
    std::thread pump_;
};

constexpr const char *kModelSubmit =
    "{\"op\":\"submit\",\"wait\":true,\"job\":{\"type\":\"model\","
    "\"benchmark\":\"mp3d\",\"procs\":8,\"refs\":2000,"
    "\"fast\":true}}";

TEST(CacheGetOp, AnswersFromTheLocalCacheOnly)
{
    ServiceCore core(testConfig());
    std::vector<std::string> errors;

    util::JsonValue bad =
        parse(core.handleLine("c", "{\"op\":\"cache_get\"}"));
    EXPECT_FALSE(bad.getBool("ok", true, &errors));

    util::JsonValue miss = parse(core.handleLine(
        "c", "{\"op\":\"cache_get\",\"key\":\"deadbeef\"}"));
    ASSERT_TRUE(miss.getBool("ok", false, &errors));
    EXPECT_FALSE(miss.getBool("hit", true, &errors));
    EXPECT_EQ(miss.find("value"), nullptr);

    // Warm the cache through a normal submit, then probe its key.
    util::JsonValue done = parse(core.handleLine("c", kModelSubmit));
    ASSERT_TRUE(done.getBool("ok", false, &errors));
    std::string key = done.getString("key", "", &errors);
    ASSERT_FALSE(key.empty());

    util::JsonValue hit = parse(core.handleLine(
        "c", "{\"op\":\"cache_get\",\"key\":\"" + key + "\"}"));
    ASSERT_TRUE(hit.getBool("ok", false, &errors));
    EXPECT_TRUE(hit.getBool("hit", false, &errors));
    // The value is the raw cached bytes — they re-parse to exactly
    // the result the submit returned.
    util::JsonValue value =
        parse(hit.getString("value", "", &errors));
    EXPECT_EQ(value.dump(), done.find("result")->dump());

    util::JsonValue stats =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    const util::JsonValue *peer = stats.find("peer");
    ASSERT_NE(peer, nullptr);
    EXPECT_EQ(peer->getU64("probes_served", 0, &errors), 2u);
}

TEST(PeerCache, WarmPeerServesAColdDaemon)
{
    LivePeer warm(testConfig());
    std::vector<std::string> errors;

    // Warm the peer directly; note the key both daemons derive (same
    // canonical spec, same empty salt).
    util::JsonValue first =
        parse(warm.core().handleLine("w", kModelSubmit));
    ASSERT_TRUE(first.getBool("ok", false, &errors));
    ASSERT_FALSE(first.getBool("cached", true, &errors));

    ServiceConfig cold_cfg = testConfig();
    cold_cfg.peers = {warm.endpoint()};
    ServiceCore cold(cold_cfg);

    // The cold daemon's local miss is answered from the peer — same
    // result bytes, tagged as a cached peer answer, no recompute.
    util::JsonValue promoted =
        parse(cold.handleLine("c", kModelSubmit));
    ASSERT_TRUE(promoted.getBool("ok", false, &errors));
    EXPECT_TRUE(promoted.getBool("cached", false, &errors));
    EXPECT_TRUE(promoted.getBool("peer", false, &errors));
    EXPECT_EQ(promoted.find("result")->dump(),
              first.find("result")->dump());

    // Promotion warmed the local memory tier: the repeat is a local
    // hit, not another network hop.
    util::JsonValue repeat = parse(cold.handleLine("c", kModelSubmit));
    EXPECT_TRUE(repeat.getBool("cached", false, &errors));
    EXPECT_FALSE(repeat.getBool("peer", false, &errors));

    util::JsonValue stats =
        parse(cold.handleLine("c", "{\"op\":\"statsz\"}"));
    const util::JsonValue *peer = stats.find("peer");
    ASSERT_NE(peer, nullptr);
    EXPECT_EQ(peer->getU64("hits", 0, &errors), 1u);
    EXPECT_EQ(peer->getU64("misses", 0, &errors), 0u);
    EXPECT_EQ(peer->getU64("peers", 0, &errors), 1u);

    // The warm daemon saw exactly one probe.
    util::JsonValue warm_stats =
        parse(warm.core().handleLine("w", "{\"op\":\"statsz\"}"));
    const util::JsonValue *served = warm_stats.find("peer");
    ASSERT_NE(served, nullptr);
    EXPECT_EQ(served->getU64("probes_served", 0, &errors), 1u);
}

TEST(PeerCache, ADeadPeerIsAPlainMiss)
{
    ServiceConfig cfg = testConfig();
    cfg.peers = {uniqueEndpoint()}; // never bound
    ServiceCore core(cfg);
    std::vector<std::string> errors;

    // The unreachable peer must cost one failed probe, not an error:
    // the job computes locally as if the tier were empty.
    util::JsonValue r = parse(core.handleLine("c", kModelSubmit));
    ASSERT_TRUE(r.getBool("ok", false, &errors));
    EXPECT_FALSE(r.getBool("cached", true, &errors));
    EXPECT_FALSE(r.getBool("peer", false, &errors));
    ASSERT_NE(r.find("result"), nullptr);

    util::JsonValue stats =
        parse(core.handleLine("c", "{\"op\":\"statsz\"}"));
    const util::JsonValue *peer = stats.find("peer");
    ASSERT_NE(peer, nullptr);
    EXPECT_EQ(peer->getU64("hits", 0, &errors), 0u);
    EXPECT_EQ(peer->getU64("misses", 0, &errors), 1u);
}

} // namespace
} // namespace ringsim::service
