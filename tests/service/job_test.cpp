/**
 * @file
 * Unit tests for job parsing, canonicalization and validation.
 */

#include <gtest/gtest.h>

#include "src/service/job.hpp"

namespace ringsim::service {
namespace {

util::JsonValue
parseJson(const std::string &text)
{
    util::JsonValue v;
    std::string error;
    EXPECT_TRUE(util::tryParseJson(text, &v, &error)) << error;
    return v;
}

bool
tryParseJob(const std::string &text, JobSpec *out, std::string *error,
            bool allow_test_jobs = false)
{
    return JobSpec::tryParse(parseJson(text), allow_test_jobs, out,
                            error);
}

TEST(JobParse, RunDefaults)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(tryParseJob("{\"type\":\"run\"}", &spec, &error))
        << error;
    EXPECT_EQ(spec.kind, JobKind::Run);
    EXPECT_EQ(spec.benchmark, trace::Benchmark::MP3D);
    EXPECT_EQ(spec.procs, 16u);
    EXPECT_EQ(spec.protocol, "snoop");
    EXPECT_EQ(spec.refs, 120'000u);
    EXPECT_TRUE(spec.cacheable());
}

TEST(JobParse, UnknownTypeRejected)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(tryParseJob("{\"type\":\"dance\"}", &spec, &error));
    EXPECT_NE(error.find("type = 'dance'"), std::string::npos)
        << error;
}

TEST(JobParse, UnknownBenchmarkRejected)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(tryParseJob(
        "{\"type\":\"run\",\"benchmark\":\"doom\"}", &spec, &error));
    EXPECT_NE(error.find("benchmark = 'doom'"), std::string::npos)
        << error;
}

TEST(JobParse, InvalidPresetComboRejected)
{
    JobSpec spec;
    std::string error;
    // MP3D is an 8/16/32 workload; 64 is FFT/WEATHER/SIMPLE-only.
    EXPECT_FALSE(tryParseJob(
        "{\"type\":\"run\",\"benchmark\":\"mp3d\",\"procs\":64}",
        &spec, &error));
    EXPECT_NE(error.find("procs = 64"), std::string::npos) << error;
}

TEST(JobParse, BusWithFaultsRejected)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(tryParseJob(
        "{\"type\":\"run\",\"protocol\":\"bus\",\"procs\":8,"
        "\"benchmark\":\"mp3d\","
        "\"faults\":{\"corrupt_rate\":0.001}}",
        &spec, &error));
    EXPECT_NE(error.find("fault"), std::string::npos) << error;
}

TEST(JobParse, FaultRatesValidated)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(tryParseJob(
        "{\"type\":\"run\",\"faults\":{\"corrupt_rate\":1.5}}",
        &spec, &error));
    EXPECT_NE(error.find("faults"), std::string::npos) << error;
}

TEST(JobParse, SweepNamesFigure)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(tryParseJob(
        "{\"type\":\"sweep\",\"figure\":\"fig6\",\"cholesky\":true}",
        &spec, &error))
        << error;
    EXPECT_EQ(spec.figure, figures::FigureId::Fig6);
    EXPECT_TRUE(spec.fig6Cholesky);
}

TEST(JobParse, SweepUnknownFigureRejected)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(tryParseJob(
        "{\"type\":\"sweep\",\"figure\":\"fig9\"}", &spec, &error));
    EXPECT_NE(error.find("figure = 'fig9'"), std::string::npos)
        << error;
}

TEST(JobParse, VerifyBoundsChecked)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(tryParseJob(
        "{\"type\":\"verify\",\"nodes\":99}", &spec, &error));
    EXPECT_FALSE(error.empty());
}

TEST(JobParse, SleepGatedByTestJobs)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(tryParseJob("{\"type\":\"sleep\",\"ms\":5}", &spec,
                             &error, /*allow_test_jobs=*/false));
    EXPECT_NE(error.find("test jobs"), std::string::npos) << error;
    ASSERT_TRUE(tryParseJob("{\"type\":\"sleep\",\"ms\":5}", &spec,
                            &error, /*allow_test_jobs=*/true))
        << error;
    EXPECT_EQ(spec.kind, JobKind::Sleep);
    EXPECT_FALSE(spec.cacheable());
}

TEST(JobParse, ZeroRefsRejected)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(
        tryParseJob("{\"type\":\"run\",\"refs\":0}", &spec, &error));
    EXPECT_NE(error.find("refs = 0"), std::string::npos) << error;
}

TEST(JobCanonical, OmittedAndExplicitDefaultsCollide)
{
    // The memoization contract: spelling a default out must hit the
    // same cache entry as omitting it.
    JobSpec a, b;
    std::string error;
    ASSERT_TRUE(tryParseJob("{\"type\":\"run\"}", &a, &error));
    ASSERT_TRUE(tryParseJob(
        "{\"type\":\"run\",\"benchmark\":\"mp3d\",\"procs\":16,"
        "\"protocol\":\"snoop\",\"refs\":120000,\"seed\":12345,"
        "\"fast\":false}",
        &b, &error));
    EXPECT_EQ(a.canonical().dump(), b.canonical().dump());
}

TEST(JobCanonical, ResultAffectingFieldsChangeTheSpec)
{
    JobSpec a, b, c;
    std::string error;
    ASSERT_TRUE(tryParseJob("{\"type\":\"run\"}", &a, &error));
    ASSERT_TRUE(
        tryParseJob("{\"type\":\"run\",\"seed\":999}", &b, &error));
    ASSERT_TRUE(tryParseJob(
        "{\"type\":\"run\",\"faults\":{\"corrupt_rate\":0.001}}", &c,
        &error));
    EXPECT_NE(a.canonical().dump(), b.canonical().dump());
    EXPECT_NE(a.canonical().dump(), c.canonical().dump());
}

TEST(JobCanonical, KindsAreDisjoint)
{
    JobSpec run, model;
    std::string error;
    ASSERT_TRUE(tryParseJob("{\"type\":\"run\"}", &run, &error));
    ASSERT_TRUE(tryParseJob("{\"type\":\"model\"}", &model, &error));
    EXPECT_NE(run.canonical().dump(), model.canonical().dump());
}

TEST(JobDescribe, NamesTheWork)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(tryParseJob(
        "{\"type\":\"sweep\",\"figure\":\"fig3\"}", &spec, &error));
    EXPECT_NE(spec.describe().find("fig3"), std::string::npos);
}

TEST(JobExecute, VerifySmallConfigRuns)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(tryParseJob(
        "{\"type\":\"verify\",\"protocol\":\"snoop\",\"nodes\":2,"
        "\"blocks\":1,\"inflight\":2}",
        &spec, &error))
        << error;
    util::JsonValue result = executeJob(spec, 1);
    std::vector<std::string> errors;
    EXPECT_EQ(result.getString("kind", "", &errors), "verify");
    EXPECT_TRUE(result.getBool("clean", false, &errors));
    EXPECT_TRUE(errors.empty());
}

TEST(JobExecute, ModelSolvesQuickly)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(tryParseJob(
        "{\"type\":\"model\",\"benchmark\":\"mp3d\",\"procs\":8,"
        "\"refs\":2000,\"fast\":true,\"cycle_ns\":40}",
        &spec, &error))
        << error;
    util::JsonValue result = executeJob(spec, 1);
    std::vector<std::string> errors;
    EXPECT_EQ(result.getString("kind", "", &errors), "model");
    double util = result.getNumber("proc_util", -1, &errors);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
    EXPECT_TRUE(errors.empty());
}

TEST(JobExecute, RunIsDeterministic)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(tryParseJob(
        "{\"type\":\"run\",\"benchmark\":\"mp3d\",\"procs\":8,"
        "\"refs\":1500,\"fast\":true}",
        &spec, &error))
        << error;
    // Byte-identical re-execution is what makes memoization legal.
    EXPECT_EQ(executeJob(spec, 1).dump(), executeJob(spec, 1).dump());
}

} // namespace
} // namespace ringsim::service
