/**
 * @file
 * Unit tests for cache-key derivation and salting.
 */

#include <gtest/gtest.h>

#include "src/service/cache_key.hpp"

namespace ringsim::service {
namespace {

TEST(CacheKey, Is32LowercaseHexChars)
{
    std::string key = cacheKey("{\"type\":\"run\"}", "");
    ASSERT_EQ(key.size(), 32u);
    for (char c : key)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << key;
}

TEST(CacheKey, DeterministicForSameInputs)
{
    EXPECT_EQ(cacheKey("spec", "salt"), cacheKey("spec", "salt"));
}

TEST(CacheKey, SpecChangesKey)
{
    EXPECT_NE(cacheKey("spec-a", ""), cacheKey("spec-b", ""));
}

TEST(CacheKey, SaltChangesKey)
{
    // This is invalidation-by-salt: bumping either salt reroutes every
    // lookup to a fresh key, so stale entries are never consulted.
    EXPECT_NE(cacheKey("spec", ""), cacheKey("spec", "v2"));
    EXPECT_NE(cacheKey("spec", "v1"), cacheKey("spec", "v2"));
}

TEST(CacheKey, LengthFramingPreventsBoundaryCollisions)
{
    // Without length framing, spec="ab" salt="c" and spec="a"
    // salt="bc" would concatenate identically.
    EXPECT_NE(cacheKey("ab", "c"), cacheKey("a", "bc"));
    EXPECT_NE(cacheKey("", "x"), cacheKey("x", ""));
}

TEST(Fingerprint64, SeedSeparatesStreams)
{
    EXPECT_NE(fingerprint64("data", 1), fingerprint64("data", 2));
}

TEST(Fingerprint64, ShortInputsDiffuse)
{
    // The splitmix finalizer should make even 1-byte inputs differ in
    // more than a few bits.
    std::uint64_t a = fingerprint64("a", 0);
    std::uint64_t b = fingerprint64("b", 0);
    int differing = __builtin_popcountll(a ^ b);
    EXPECT_GT(differing, 10);
}

TEST(CodeVersionSalt, IsNonEmpty)
{
    EXPECT_NE(std::string(codeVersionSalt()), "");
}

} // namespace
} // namespace ringsim::service
