/**
 * @file
 * Unit tests for the workload presets.
 */

#include <gtest/gtest.h>

#include "src/trace/workload.hpp"

namespace ringsim::trace {
namespace {

TEST(Workload, AllTwelvePresetsExist)
{
    auto all = allWorkloadPresets();
    ASSERT_EQ(all.size(), 12u);
    // Table 2 order: MP3D, WATER, CHOLESKY at 8/16/32, then the
    // 64-CPU programs.
    EXPECT_EQ(all[0].displayName(), "MP3D 8");
    EXPECT_EQ(all[5].displayName(), "WATER 32");
    EXPECT_EQ(all[9].displayName(), "FFT 64");
    EXPECT_EQ(all[11].displayName(), "SIMPLE 64");
}

TEST(Workload, PresetsCarryPaperTargets)
{
    auto cfg = workloadPreset(Benchmark::MP3D, 16);
    EXPECT_NEAR(cfg.targets.totalMissRate, 0.0454, 1e-9);
    EXPECT_NEAR(cfg.targets.sharedMissRate, 0.1217, 1e-9);
    EXPECT_NEAR(cfg.targets.sharedWriteFrac, 0.30, 1e-9);
}

TEST(Workload, FractionsAreSane)
{
    for (const auto &cfg : allWorkloadPresets()) {
        EXPECT_GT(cfg.sharedFrac, 0.0) << cfg.displayName();
        EXPECT_LT(cfg.sharedFrac, 1.0) << cfg.displayName();
        EXPECT_GT(cfg.instrPerData, 0.0) << cfg.displayName();
        EXPECT_GT(cfg.knobs.poolBlocks, 0u) << cfg.displayName();
        EXPECT_GT(cfg.dataRefsPerProc, 0u) << cfg.displayName();
    }
}

TEST(Workload, SplashSizesOnly)
{
    EXPECT_EXIT(workloadPreset(Benchmark::MP3D, 64),
                testing::ExitedWithCode(1), "8/16/32");
    EXPECT_EXIT(workloadPreset(Benchmark::FFT, 8),
                testing::ExitedWithCode(1), "64");
}

TEST(Workload, ScaleAdjustsRefs)
{
    auto cfg = workloadPreset(Benchmark::WATER, 8);
    Count before = cfg.dataRefsPerProc;
    cfg.scale(0.5);
    EXPECT_EQ(cfg.dataRefsPerProc, before / 2);
    cfg.scale(1e-12);
    EXPECT_EQ(cfg.dataRefsPerProc, 1u) << "clamped to at least one";
}

TEST(Workload, ScaleRejectsNonPositive)
{
    auto cfg = workloadPreset(Benchmark::WATER, 8);
    EXPECT_EXIT(cfg.scale(0.0), testing::ExitedWithCode(1), "positive");
}

TEST(Workload, NameParsing)
{
    EXPECT_EQ(benchmarkFromName("mp3d"), Benchmark::MP3D);
    EXPECT_EQ(benchmarkFromName("MP3D"), Benchmark::MP3D);
    EXPECT_EQ(benchmarkFromName("Water"), Benchmark::WATER);
    EXPECT_EQ(benchmarkFromName("cholesky"), Benchmark::CHOLESKY);
    EXPECT_EQ(benchmarkFromName("fft"), Benchmark::FFT);
    EXPECT_EQ(benchmarkFromName("weather"), Benchmark::WEATHER);
    EXPECT_EQ(benchmarkFromName("simple"), Benchmark::SIMPLE);
    EXPECT_EXIT(benchmarkFromName("nope"), testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Workload, BenchmarkNames)
{
    EXPECT_STREQ(benchmarkName(Benchmark::MP3D), "MP3D");
    EXPECT_STREQ(benchmarkName(Benchmark::SIMPLE), "SIMPLE");
}

TEST(Workload, PatternAssignment)
{
    EXPECT_EQ(workloadPreset(Benchmark::MP3D, 8).pattern,
              SharingPattern::ObjectEpisode);
    EXPECT_EQ(workloadPreset(Benchmark::WATER, 8).pattern,
              SharingPattern::ObjectEpisode);
    EXPECT_EQ(workloadPreset(Benchmark::CHOLESKY, 8).pattern,
              SharingPattern::ProducerConsumer);
    EXPECT_EQ(workloadPreset(Benchmark::FFT, 64).pattern,
              SharingPattern::AllToAll);
    EXPECT_EQ(workloadPreset(Benchmark::WEATHER, 64).pattern,
              SharingPattern::SweepNeighbor);
    EXPECT_EQ(workloadPreset(Benchmark::SIMPLE, 64).pattern,
              SharingPattern::SweepNeighbor);
}

} // namespace
} // namespace ringsim::trace
