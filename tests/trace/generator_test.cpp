/**
 * @file
 * Unit and statistical tests for the synthetic trace generators.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/trace/generator.hpp"

namespace ringsim::trace {
namespace {

struct MixCounts
{
    Count instr = 0;
    Count data = 0;
    Count shared = 0;
    Count sharedWrites = 0;
    Count priv = 0;
    Count privWrites = 0;
};

MixCounts
countMix(const WorkloadConfig &cfg, const AddressMap &map, NodeId proc)
{
    SyntheticStream stream(cfg, map, proc);
    MixCounts mix;
    TraceRecord rec;
    while (stream.next(rec)) {
        if (rec.op == Op::Instr) {
            ++mix.instr;
            continue;
        }
        ++mix.data;
        if (map.isShared(rec.addr)) {
            ++mix.shared;
            mix.sharedWrites += rec.isWrite();
        } else {
            EXPECT_TRUE(map.isPrivate(rec.addr));
            ++mix.priv;
            mix.privWrites += rec.isWrite();
        }
    }
    return mix;
}

TEST(Generator, EmitsExactDataRefCount)
{
    auto cfg = workloadPreset(Benchmark::MP3D, 8);
    cfg.dataRefsPerProc = 5000;
    AddressMap map = makeAddressMap(cfg);
    MixCounts mix = countMix(cfg, map, 0);
    EXPECT_EQ(mix.data, 5000u);
}

TEST(Generator, InstrRatioNearTarget)
{
    auto cfg = workloadPreset(Benchmark::MP3D, 8);
    cfg.dataRefsPerProc = 20000;
    AddressMap map = makeAddressMap(cfg);
    MixCounts mix = countMix(cfg, map, 0);
    double ratio = static_cast<double>(mix.instr) /
                   static_cast<double>(mix.data);
    EXPECT_NEAR(ratio, cfg.instrPerData, 0.05);
}

TEST(Generator, SharedFracNearTarget)
{
    auto cfg = workloadPreset(Benchmark::WATER, 8);
    cfg.dataRefsPerProc = 40000;
    AddressMap map = makeAddressMap(cfg);
    MixCounts mix = countMix(cfg, map, 0);
    double frac = static_cast<double>(mix.shared) /
                  static_cast<double>(mix.data);
    EXPECT_NEAR(frac, cfg.sharedFrac, 0.02);
}

TEST(Generator, PrivateWriteFracNearTarget)
{
    auto cfg = workloadPreset(Benchmark::CHOLESKY, 8);
    cfg.dataRefsPerProc = 40000;
    AddressMap map = makeAddressMap(cfg);
    MixCounts mix = countMix(cfg, map, 0);
    double frac = static_cast<double>(mix.privWrites) /
                  static_cast<double>(mix.priv);
    EXPECT_NEAR(frac, cfg.privateWriteFrac, 0.02);
}

TEST(Generator, DeterministicPerSeed)
{
    auto cfg = workloadPreset(Benchmark::FFT, 64);
    cfg.dataRefsPerProc = 2000;
    AddressMap map = makeAddressMap(cfg);
    SyntheticStream s1(cfg, map, 7);
    SyntheticStream s2(cfg, map, 7);
    TraceRecord r1, r2;
    while (s1.next(r1)) {
        ASSERT_TRUE(s2.next(r2));
        ASSERT_EQ(r1.addr, r2.addr);
        ASSERT_EQ(r1.op, r2.op);
    }
    EXPECT_FALSE(s2.next(r2));
}

TEST(Generator, DifferentProcsDiffer)
{
    auto cfg = workloadPreset(Benchmark::MP3D, 8);
    cfg.dataRefsPerProc = 2000;
    AddressMap map = makeAddressMap(cfg);
    SyntheticStream s1(cfg, map, 0);
    SyntheticStream s2(cfg, map, 1);
    TraceRecord r1, r2;
    int same = 0;
    int total = 0;
    while (s1.next(r1) && s2.next(r2)) {
        ++total;
        same += (r1.addr == r2.addr);
    }
    EXPECT_LT(same, total / 2);
}

TEST(Generator, SeedChangesStream)
{
    // The private warm sweep is deterministic by design, so compare
    // the *shared* reference streams, which must decorrelate.
    auto collect = [](std::uint64_t seed) {
        auto cfg = workloadPreset(Benchmark::MP3D, 8);
        cfg.dataRefsPerProc = 4000;
        cfg.seed = seed;
        AddressMap map = makeAddressMap(cfg);
        SyntheticStream stream(cfg, map, 0);
        std::vector<Addr> shared;
        TraceRecord rec;
        while (stream.next(rec))
            if (rec.isData() && map.isShared(rec.addr))
                shared.push_back(rec.addr);
        return shared;
    };
    auto a = collect(1);
    auto b = collect(999);
    size_t n = std::min(a.size(), b.size());
    ASSERT_GT(n, 100u);
    size_t same = 0;
    for (size_t i = 0; i < n; ++i)
        same += (a[i] == b[i]);
    EXPECT_LT(same, n / 2);
}

TEST(Generator, SharedAccessesOverlapAcrossProcs)
{
    // Cross-processor sharing must actually happen: two processors'
    // shared footprints intersect.
    auto cfg = workloadPreset(Benchmark::MP3D, 8);
    cfg.dataRefsPerProc = 20000;
    AddressMap map = makeAddressMap(cfg);
    std::set<Addr> blocks0;
    SyntheticStream s0(cfg, map, 0);
    TraceRecord rec;
    while (s0.next(rec))
        if (rec.isData() && map.isShared(rec.addr))
            blocks0.insert(rec.addr / cfg.blockBytes);
    SyntheticStream s1(cfg, map, 1);
    int overlap = 0;
    while (s1.next(rec))
        if (rec.isData() && map.isShared(rec.addr) &&
            blocks0.count(rec.addr / cfg.blockBytes))
            ++overlap;
    EXPECT_GT(overlap, 100);
}

TEST(Generator, MakeTraceSetBuildsAllProcs)
{
    auto cfg = workloadPreset(Benchmark::WATER, 16);
    cfg.dataRefsPerProc = 100;
    AddressMap map = makeAddressMap(cfg);
    TraceSet set = makeTraceSet(cfg, map);
    EXPECT_EQ(set.size(), 16u);
    TraceRecord rec;
    EXPECT_TRUE(set[15]->next(rec));
}

TEST(Generator, AllPatternsProduceWritesAndReads)
{
    for (const auto &preset : allWorkloadPresets()) {
        auto cfg = preset;
        cfg.dataRefsPerProc = 20000;
        AddressMap map = makeAddressMap(cfg);
        MixCounts mix = countMix(cfg, map, 1);
        EXPECT_GT(mix.sharedWrites, 0u) << cfg.displayName();
        EXPECT_GT(mix.shared, mix.sharedWrites) << cfg.displayName();
    }
}

} // namespace
} // namespace ringsim::trace
