/**
 * @file
 * Unit tests for binary trace file I/O.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/trace/generator.hpp"
#include "src/trace/trace_file.hpp"

namespace ringsim::trace {
namespace {

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

TEST(TraceFile, RoundTripsRecords)
{
    MaterializedTrace trace(2);
    trace[0] = {{Op::Read, 0x100}, {Op::Write, 0x2000}};
    trace[1] = {{Op::Instr, 0x80'0000'0000ULL}};

    std::string path = tempPath("roundtrip.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));
    MaterializedTrace back = readTraceFile(path);
    ASSERT_EQ(back.size(), 2u);
    ASSERT_EQ(back[0].size(), 2u);
    ASSERT_EQ(back[1].size(), 1u);
    EXPECT_EQ(back[0][0].op, Op::Read);
    EXPECT_EQ(back[0][0].addr, 0x100u);
    EXPECT_EQ(back[0][1].op, Op::Write);
    EXPECT_EQ(back[1][0].op, Op::Instr);
    std::remove(path.c_str());
}

TEST(TraceFile, RoundTripsGeneratedTrace)
{
    auto cfg = workloadPreset(Benchmark::MP3D, 8);
    cfg.dataRefsPerProc = 500;
    AddressMap map = makeAddressMap(cfg);
    TraceSet set = makeTraceSet(cfg, map);
    MaterializedTrace trace = materialize(set);

    std::string path = tempPath("generated.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));
    MaterializedTrace back = readTraceFile(path);
    ASSERT_EQ(back.size(), trace.size());
    for (size_t p = 0; p < trace.size(); ++p) {
        ASSERT_EQ(back[p].size(), trace[p].size());
        for (size_t i = 0; i < trace[p].size(); ++i) {
            EXPECT_EQ(back[p][i].addr, trace[p][i].addr);
            EXPECT_EQ(back[p][i].op, trace[p][i].op);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTrace)
{
    std::string path = tempPath("empty.trc");
    ASSERT_TRUE(writeTraceFile(path, MaterializedTrace{}));
    EXPECT_TRUE(readTraceFile(path).empty());
    std::remove(path.c_str());
}

TEST(TraceFile, ToStreamsReplays)
{
    MaterializedTrace trace(1);
    trace[0] = {{Op::Read, 1}, {Op::Write, 2}};
    TraceSet set = toStreams(std::move(trace));
    TraceRecord rec;
    ASSERT_TRUE(set[0]->next(rec));
    EXPECT_EQ(rec.addr, 1u);
    ASSERT_TRUE(set[0]->next(rec));
    EXPECT_EQ(rec.addr, 2u);
    EXPECT_FALSE(set[0]->next(rec));
}

TEST(TraceFile, MaterializeRespectsLimit)
{
    auto cfg = workloadPreset(Benchmark::WATER, 8);
    cfg.dataRefsPerProc = 1000;
    AddressMap map = makeAddressMap(cfg);
    TraceSet set = makeTraceSet(cfg, map);
    MaterializedTrace trace = materialize(set, 50);
    for (const auto &stream : trace)
        EXPECT_EQ(stream.size(), 50u);
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/nowhere.trc"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFile, CorruptMagicIsFatal)
{
    std::string path = tempPath("corrupt.trc");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("JUNKJUNKJUNKJUNK", 1, 16, f);
    std::fclose(f);
    EXPECT_EXIT(readTraceFile(path), testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedIsFatal)
{
    MaterializedTrace trace(1);
    trace[0] = {{Op::Read, 1}, {Op::Read, 2}, {Op::Read, 3}};
    std::string path = tempPath("trunc.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));
    // Chop the last few bytes off.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 5), 0);
    EXPECT_EXIT(readTraceFile(path), testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

/** Overwrite @p bytes at @p offset in an existing file. */
void
patchFile(const std::string &path, long offset, const void *bytes,
          size_t n)
{
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(bytes, 1, n, f), n);
    std::fclose(f);
}

TEST(TraceFileTryRead, MissingFileReturnsFalseWithError)
{
    MaterializedTrace out;
    std::string error;
    EXPECT_FALSE(
        tryReadTraceFile("/nonexistent/nowhere.trc", &out, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TraceFileTryRead, BadMagicReturnsFalseWithOffset)
{
    std::string path = tempPath("trybadmagic.trc");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("JUNKJUNKJUNKJUNK", 1, 16, f);
    std::fclose(f);

    MaterializedTrace out;
    std::string error;
    EXPECT_FALSE(tryReadTraceFile(path, &out, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
    EXPECT_TRUE(out.empty());
    std::remove(path.c_str());
}

TEST(TraceFileTryRead, WrongVersionNamesBothVersions)
{
    MaterializedTrace trace(1);
    trace[0] = {{Op::Read, 1}};
    std::string path = tempPath("trybadver.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));
    // The version field sits right after the 4-byte magic.
    std::uint32_t bad_version = 99;
    patchFile(path, 4, &bad_version, sizeof(bad_version));

    MaterializedTrace out;
    std::string error;
    EXPECT_FALSE(tryReadTraceFile(path, &out, &error));
    EXPECT_NE(error.find("version 99"), std::string::npos) << error;
    EXPECT_NE(error.find("expected 1"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceFileTryRead, TruncatedHeaderNamesExpectedAndActualBytes)
{
    std::string path = tempPath("shortheader.trc");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("RNGT\x01", 1, 5, f); // magic + 1 byte of version
    std::fclose(f);

    MaterializedTrace out;
    std::string error;
    EXPECT_FALSE(tryReadTraceFile(path, &out, &error));
    EXPECT_NE(error.find("truncated header"), std::string::npos);
    EXPECT_NE(error.find("expected 12 bytes"), std::string::npos)
        << error;
    EXPECT_NE(error.find("file has 5"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceFileTryRead, CorruptCountRejectedBeforeAllocation)
{
    MaterializedTrace trace(1);
    trace[0] = {{Op::Read, 1}, {Op::Read, 2}};
    std::string path = tempPath("hugecount.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));
    // The per-processor count table starts right after the 12-byte
    // header; promise 2^60 records in a 38-byte file.
    std::uint64_t huge = 1ULL << 60;
    patchFile(path, 12, &huge, sizeof(huge));

    MaterializedTrace out;
    std::string error;
    EXPECT_FALSE(tryReadTraceFile(path, &out, &error));
    EXPECT_NE(error.find("corrupt count for processor 0"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("cannot fit"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceFileTryRead, TruncationDiagnosesPromisedVsActual)
{
    MaterializedTrace trace(1);
    trace[0] = {{Op::Read, 1}, {Op::Write, 2}, {Op::Instr, 3}};
    std::string path = tempPath("trunc2.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));
    // 12 header + 8 count + 3*9 records = 47 bytes; cut to 40.
    ASSERT_EQ(truncate(path.c_str(), 40), 0);

    MaterializedTrace out;
    std::string error;
    EXPECT_FALSE(tryReadTraceFile(path, &out, &error));
    EXPECT_NE(error.find("truncated records"), std::string::npos);
    EXPECT_NE(error.find("47 bytes total"), std::string::npos) << error;
    EXPECT_NE(error.find("file has 40"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceFileTryRead, TrailingGarbageRejected)
{
    MaterializedTrace trace(1);
    trace[0] = {{Op::Read, 1}};
    std::string path = tempPath("garbage.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite("xtra", 1, 4, f);
    std::fclose(f);

    MaterializedTrace out;
    std::string error;
    EXPECT_FALSE(tryReadTraceFile(path, &out, &error));
    EXPECT_NE(error.find("trailing garbage"), std::string::npos)
        << error;
    std::remove(path.c_str());
}

TEST(TraceFileTryRead, BadOpNamesRecordAndOffset)
{
    MaterializedTrace trace(1);
    trace[0] = {{Op::Read, 1}, {Op::Read, 2}};
    std::string path = tempPath("badop.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));
    // Record 0's op byte: 12 header + 8 count + 8 addr = offset 28.
    std::uint8_t bad = 0xff;
    patchFile(path, 28, &bad, sizeof(bad));

    MaterializedTrace out;
    std::string error;
    EXPECT_FALSE(tryReadTraceFile(path, &out, &error));
    EXPECT_NE(error.find("bad op 255"), std::string::npos) << error;
    EXPECT_NE(error.find("processor 0 record 0 at offset 20"),
              std::string::npos)
        << error;
    std::remove(path.c_str());
}

TEST(TraceFileTryRead, GoodFileStillReads)
{
    MaterializedTrace trace(2);
    trace[0] = {{Op::Read, 0x10}};
    trace[1] = {{Op::Write, 0x20}, {Op::Instr, 0x30}};
    std::string path = tempPath("good.trc");
    ASSERT_TRUE(writeTraceFile(path, trace));

    MaterializedTrace out;
    std::string error;
    EXPECT_TRUE(tryReadTraceFile(path, &out, &error)) << error;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1][1].addr, 0x30u);
    std::remove(path.c_str());
}

TEST(Record, Helpers)
{
    TraceRecord r{Op::Write, 0x10};
    EXPECT_TRUE(r.isData());
    EXPECT_TRUE(r.isWrite());
    TraceRecord i{Op::Instr, 0x10};
    EXPECT_FALSE(i.isData());
    EXPECT_FALSE(i.isWrite());
    EXPECT_STREQ(opName(Op::Read), "R");
    EXPECT_STREQ(opName(Op::Write), "W");
    EXPECT_STREQ(opName(Op::Instr), "I");
}

} // namespace
} // namespace ringsim::trace
