/**
 * @file
 * Unit tests for the address map and home assignment.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/trace/address_map.hpp"

namespace ringsim::trace {
namespace {

TEST(AddressMap, RegionsDisjoint)
{
    AddressMap map(8, 16, 1);
    Addr shared = map.sharedBlock(5);
    Addr priv = map.privateBlock(3, 5);
    Addr code = map.codeBlock(3, 5);
    EXPECT_TRUE(map.isShared(shared));
    EXPECT_FALSE(map.isShared(priv));
    EXPECT_FALSE(map.isShared(code));
    EXPECT_TRUE(map.isPrivate(priv));
    EXPECT_FALSE(map.isPrivate(shared));
    EXPECT_FALSE(map.isPrivate(code));
}

TEST(AddressMap, BlockSpacing)
{
    AddressMap map(4, 16, 1);
    EXPECT_EQ(map.sharedBlock(1) - map.sharedBlock(0), 16u);
    EXPECT_EQ(map.privateBlock(0, 1) - map.privateBlock(0, 0), 16u);
}

TEST(AddressMap, PrivateHomeIsOwner)
{
    AddressMap map(8, 16, 99);
    for (NodeId p = 0; p < 8; ++p) {
        EXPECT_EQ(map.home(map.privateBlock(p, 123)), p);
        EXPECT_EQ(map.home(map.codeBlock(p, 7)), p);
    }
}

TEST(AddressMap, SharedHomesCoverAllNodes)
{
    AddressMap map(8, 16, 5);
    std::map<NodeId, int> counts;
    for (std::uint64_t i = 0; i < 4096; ++i)
        counts[map.home(map.sharedBlock(i))]++;
    EXPECT_EQ(counts.size(), 8u);
    // Random page placement: roughly balanced (within 3x of fair).
    for (const auto &[node, count] : counts) {
        EXPECT_GT(count, 4096 / 8 / 3) << "node " << node;
        EXPECT_LT(count, 4096 * 3 / 8) << "node " << node;
    }
}

TEST(AddressMap, SharedHomeIsBlockGranularAndStable)
{
    // Shared homes hash at block granularity (emulating random page
    // placement over a large heap — see address_map.cpp); all bytes
    // of one block share a home, and neighbors spread out.
    AddressMap map(8, 16, 5);
    Addr a = map.sharedBlock(100);
    EXPECT_EQ(map.home(a), map.home(a + 15));
    int moved = 0;
    for (std::uint64_t i = 0; i < 64; ++i)
        if (map.home(map.sharedBlock(i)) !=
            map.home(map.sharedBlock(i + 1)))
            ++moved;
    EXPECT_GT(moved, 32) << "consecutive blocks spread across homes";
}

TEST(AddressMap, SeedChangesPlacement)
{
    AddressMap m1(8, 16, 1);
    AddressMap m2(8, 16, 2);
    int moved = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        Addr a = m1.sharedBlock(i * 256); // distinct pages
        if (m1.home(a) != m2.home(a))
            ++moved;
    }
    EXPECT_GT(moved, 100);
}

TEST(AddressMap, PrivateRegionSetOffset)
{
    // The private region intentionally starts half a cache's index
    // space above a set boundary (see header).
    AddressMap map(8, 16, 1);
    Addr first = map.privateBlock(0, 0);
    EXPECT_EQ((first / 16) % 8192, 4096u);
}

TEST(AddressMapDeathTest, OutOfRangeProc)
{
    AddressMap map(4, 16, 1);
    EXPECT_DEATH(map.privateBlock(4, 0), "range");
}

TEST(AddressMap, SingleNodeOwnsEverything)
{
    AddressMap map(1, 16, 7);
    EXPECT_EQ(map.home(map.sharedBlock(0)), 0u);
    EXPECT_EQ(map.home(map.sharedBlock(12345)), 0u);
    EXPECT_EQ(map.home(map.privateBlock(0, 9)), 0u);
    EXPECT_EQ(map.home(map.codeBlock(0, 9)), 0u);
}

TEST(AddressMap, HomesStayInRangeForOddNodeCounts)
{
    // Non-power-of-two systems must still map every region into
    // [0, nodes); a modulo slip would fault a nonexistent node.
    for (unsigned nodes : {3u, 5u, 7u, 12u}) {
        AddressMap map(nodes, 16, 3);
        for (std::uint64_t i = 0; i < 512; ++i)
            EXPECT_LT(map.home(map.sharedBlock(i)), nodes)
                << "nodes=" << nodes << " block " << i;
        for (NodeId p = 0; p < nodes; ++p) {
            EXPECT_LT(map.home(map.privateBlock(p, 1)), nodes);
            EXPECT_LT(map.home(map.codeBlock(p, 1)), nodes);
        }
    }
}

TEST(AddressMap, InstancesWithSameSeedAgree)
{
    AddressMap m1(8, 16, 42);
    AddressMap m2(8, 16, 42);
    for (std::uint64_t i = 0; i < 256; ++i) {
        Addr a = m1.sharedBlock(i);
        EXPECT_EQ(m1.home(a), m2.home(a)) << "block " << i;
    }
}

TEST(AddressMap, RegionPredicatesAtBoundaries)
{
    AddressMap map(8, 16, 1);
    // The byte just below the shared base belongs to no region.
    EXPECT_FALSE(map.isShared(AddressMap::sharedBase - 1));
    EXPECT_TRUE(map.isShared(AddressMap::sharedBase));
    // Code is neither shared nor private.
    Addr code = map.codeBlock(0, 0);
    EXPECT_FALSE(map.isShared(code));
    EXPECT_FALSE(map.isPrivate(code));
    // First private byte of processor 0 is private, not shared.
    Addr priv = map.privateBlock(0, 0);
    EXPECT_TRUE(map.isPrivate(priv));
    EXPECT_FALSE(map.isShared(priv));
}

TEST(AddressMap, HomeIsBlockGranularInEveryRegion)
{
    AddressMap map(8, 32, 9);
    for (Addr base : {map.sharedBlock(17), map.privateBlock(3, 5),
                      map.codeBlock(5, 2)}) {
        NodeId h = map.home(base);
        for (Addr off = 1; off < 32; ++off)
            EXPECT_EQ(map.home(base + off), h) << "offset " << off;
    }
}

TEST(AddressMap, BelowSharedBaseHashesPageGranular)
{
    // Addresses below the shared base (not produced by generators)
    // still get a stable page-granular home so ad-hoc tests work.
    AddressMap map(8, 16, 11);
    Addr low = AddressMap::sharedBase / 2;
    NodeId h = map.home(low);
    EXPECT_LT(h, 8u);
    // Same page, same home; and the mapping is deterministic.
    EXPECT_EQ(map.home(low + AddressMap::pageBytes - 1 -
                       (low % AddressMap::pageBytes)),
              h);
    EXPECT_EQ(map.home(low), h);
}

TEST(AddressMapDeathTest, BlockSizeMustBePowerOfTwo)
{
    EXPECT_DEATH(AddressMap(4, 24, 1), "power of two");
    EXPECT_DEATH(AddressMap(0, 16, 1), "at least one node");
}

} // namespace
} // namespace ringsim::trace
