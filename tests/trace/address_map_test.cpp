/**
 * @file
 * Unit tests for the address map and home assignment.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/trace/address_map.hpp"

namespace ringsim::trace {
namespace {

TEST(AddressMap, RegionsDisjoint)
{
    AddressMap map(8, 16, 1);
    Addr shared = map.sharedBlock(5);
    Addr priv = map.privateBlock(3, 5);
    Addr code = map.codeBlock(3, 5);
    EXPECT_TRUE(map.isShared(shared));
    EXPECT_FALSE(map.isShared(priv));
    EXPECT_FALSE(map.isShared(code));
    EXPECT_TRUE(map.isPrivate(priv));
    EXPECT_FALSE(map.isPrivate(shared));
    EXPECT_FALSE(map.isPrivate(code));
}

TEST(AddressMap, BlockSpacing)
{
    AddressMap map(4, 16, 1);
    EXPECT_EQ(map.sharedBlock(1) - map.sharedBlock(0), 16u);
    EXPECT_EQ(map.privateBlock(0, 1) - map.privateBlock(0, 0), 16u);
}

TEST(AddressMap, PrivateHomeIsOwner)
{
    AddressMap map(8, 16, 99);
    for (NodeId p = 0; p < 8; ++p) {
        EXPECT_EQ(map.home(map.privateBlock(p, 123)), p);
        EXPECT_EQ(map.home(map.codeBlock(p, 7)), p);
    }
}

TEST(AddressMap, SharedHomesCoverAllNodes)
{
    AddressMap map(8, 16, 5);
    std::map<NodeId, int> counts;
    for (std::uint64_t i = 0; i < 4096; ++i)
        counts[map.home(map.sharedBlock(i))]++;
    EXPECT_EQ(counts.size(), 8u);
    // Random page placement: roughly balanced (within 3x of fair).
    for (const auto &[node, count] : counts) {
        EXPECT_GT(count, 4096 / 8 / 3) << "node " << node;
        EXPECT_LT(count, 4096 * 3 / 8) << "node " << node;
    }
}

TEST(AddressMap, SharedHomeIsBlockGranularAndStable)
{
    // Shared homes hash at block granularity (emulating random page
    // placement over a large heap — see address_map.cpp); all bytes
    // of one block share a home, and neighbors spread out.
    AddressMap map(8, 16, 5);
    Addr a = map.sharedBlock(100);
    EXPECT_EQ(map.home(a), map.home(a + 15));
    int moved = 0;
    for (std::uint64_t i = 0; i < 64; ++i)
        if (map.home(map.sharedBlock(i)) !=
            map.home(map.sharedBlock(i + 1)))
            ++moved;
    EXPECT_GT(moved, 32) << "consecutive blocks spread across homes";
}

TEST(AddressMap, SeedChangesPlacement)
{
    AddressMap m1(8, 16, 1);
    AddressMap m2(8, 16, 2);
    int moved = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        Addr a = m1.sharedBlock(i * 256); // distinct pages
        if (m1.home(a) != m2.home(a))
            ++moved;
    }
    EXPECT_GT(moved, 100);
}

TEST(AddressMap, PrivateRegionSetOffset)
{
    // The private region intentionally starts half a cache's index
    // space above a set boundary (see header).
    AddressMap map(8, 16, 1);
    Addr first = map.privateBlock(0, 0);
    EXPECT_EQ((first / 16) % 8192, 4096u);
}

TEST(AddressMapDeathTest, OutOfRangeProc)
{
    AddressMap map(4, 16, 1);
    EXPECT_DEATH(map.privateBlock(4, 0), "range");
}

} // namespace
} // namespace ringsim::trace
