/**
 * @file
 * Unit tests for the functional coherence engine, driving hand-built
 * reference sequences through small systems and checking states,
 * censuses and outcomes.
 */

#include <gtest/gtest.h>

#include "src/coherence/engine.hpp"

namespace ringsim::coherence {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    static constexpr unsigned procs = 4;

    EngineTest() : map_(procs, 16, 7)
    {
        EngineOptions options;
        options.check = true;
        engine_ = std::make_unique<FunctionalEngine>(map_, options);
    }

    /** A shared address whose home is NOT any of the given nodes. */
    Addr
    sharedAddrAvoiding(std::initializer_list<NodeId> avoid)
    {
        for (std::uint64_t i = 0;; ++i) {
            Addr a = map_.sharedBlock(i * 256); // distinct pages
            NodeId h = map_.home(a);
            bool ok = true;
            for (NodeId n : avoid)
                ok = ok && h != n;
            if (ok)
                return a;
        }
    }

    /** A shared address homed at @p node. */
    Addr
    sharedAddrAt(NodeId node)
    {
        for (std::uint64_t i = 0;; ++i) {
            Addr a = map_.sharedBlock(i * 256);
            if (map_.home(a) == node)
                return a;
        }
    }

    AccessOutcome
    read(NodeId p, Addr a)
    {
        AccessOutcome o;
        engine_->access(p, {trace::Op::Read, a}, &o);
        return o;
    }

    AccessOutcome
    write(NodeId p, Addr a)
    {
        AccessOutcome o;
        engine_->access(p, {trace::Op::Write, a}, &o);
        return o;
    }

    trace::AddressMap map_;
    std::unique_ptr<FunctionalEngine> engine_;
};

TEST_F(EngineTest, ColdReadMisses)
{
    Addr a = sharedAddrAvoiding({0});
    AccessOutcome o = read(0, a);
    EXPECT_EQ(o.type, AccessOutcome::Type::Miss);
    EXPECT_FALSE(o.wasDirty);
    EXPECT_FALSE(o.isWrite);
    EXPECT_TRUE(o.isShared);
    EXPECT_EQ(engine_->cacheOf(0).state(a), cache::State::ReadShared);
    EXPECT_EQ(engine_->census().sharedMisses, 1u);
}

TEST_F(EngineTest, SecondReadHits)
{
    Addr a = sharedAddrAvoiding({0});
    read(0, a);
    AccessOutcome o = read(0, a);
    EXPECT_EQ(o.type, AccessOutcome::Type::Hit);
    EXPECT_EQ(engine_->census().hits, 1u);
}

TEST_F(EngineTest, WriteAfterReadIsUpgrade)
{
    Addr a = sharedAddrAvoiding({0});
    read(0, a);
    AccessOutcome o = write(0, a);
    EXPECT_EQ(o.type, AccessOutcome::Type::Upgrade);
    EXPECT_FALSE(o.anySharers);
    EXPECT_EQ(engine_->cacheOf(0).state(a), cache::State::WriteExcl);
    EXPECT_EQ(engine_->census().upgrades, 1u);
}

TEST_F(EngineTest, UpgradeWithSharersSeesThem)
{
    Addr a = sharedAddrAvoiding({0, 1});
    read(0, a);
    read(1, a);
    AccessOutcome o = write(0, a);
    EXPECT_EQ(o.type, AccessOutcome::Type::Upgrade);
    EXPECT_TRUE(o.anySharers);
    EXPECT_TRUE(o.mapSharers);
    EXPECT_EQ(engine_->cacheOf(1).state(a), cache::State::Invalid);
}

TEST_F(EngineTest, DirtyReadDowngradesOwner)
{
    Addr a = sharedAddrAvoiding({0, 1});
    write(0, a);
    AccessOutcome o = read(1, a);
    EXPECT_EQ(o.type, AccessOutcome::Type::Miss);
    EXPECT_TRUE(o.wasDirty);
    EXPECT_EQ(o.owner, 0u);
    EXPECT_EQ(engine_->cacheOf(0).state(a), cache::State::ReadShared);
    EXPECT_EQ(engine_->cacheOf(1).state(a), cache::State::ReadShared);
    EXPECT_FALSE(engine_->memState(a).dirty);
}

TEST_F(EngineTest, WriteMissInvalidatesEverybody)
{
    Addr a = sharedAddrAvoiding({0, 1, 2});
    read(0, a);
    read(1, a);
    AccessOutcome o = write(2, a);
    EXPECT_EQ(o.type, AccessOutcome::Type::Miss);
    EXPECT_TRUE(o.isWrite);
    EXPECT_TRUE(o.anySharers);
    EXPECT_EQ(engine_->cacheOf(0).state(a), cache::State::Invalid);
    EXPECT_EQ(engine_->cacheOf(1).state(a), cache::State::Invalid);
    EXPECT_EQ(engine_->cacheOf(2).state(a), cache::State::WriteExcl);
    const MemState &ms = engine_->memState(a);
    EXPECT_TRUE(ms.dirty);
    EXPECT_EQ(ms.owner, 2u);
}

TEST_F(EngineTest, WriteMissOnDirtyTransfersOwnership)
{
    Addr a = sharedAddrAvoiding({0, 1});
    write(0, a);
    AccessOutcome o = write(1, a);
    EXPECT_TRUE(o.wasDirty);
    EXPECT_EQ(o.owner, 0u);
    EXPECT_EQ(engine_->cacheOf(0).state(a), cache::State::Invalid);
    EXPECT_EQ(engine_->memState(a).owner, 1u);
}

TEST_F(EngineTest, InstrRefsOnlyCount)
{
    engine_->access(0, {trace::Op::Instr, map_.codeBlock(0, 0)});
    EXPECT_EQ(engine_->census().instrRefs, 1u);
    EXPECT_EQ(engine_->census().dataRefs(), 0u);
}

TEST_F(EngineTest, SnoopCensusOneTraversalAlways)
{
    Addr a = sharedAddrAvoiding({0, 1});
    read(0, a);  // clean remote miss
    write(1, a); // write miss, dirty nobody... clean with sharer
    read(0, a);  // dirty miss
    const Census &c = engine_->census();
    EXPECT_EQ(c.snoop.missTraversals[1], 3u);
    EXPECT_EQ(c.snoop.missTraversals[2], 0u);
    EXPECT_EQ(c.snoop.missTraversals[0], 0u);
}

TEST_F(EngineTest, FullMapNeverExceedsTwoTraversals)
{
    Addr a = sharedAddrAvoiding({0, 1});
    read(0, a);
    read(1, a);
    read(2, a);
    write(3, a);
    read(0, a);
    write(1, a);
    const Census &c = engine_->census();
    EXPECT_EQ(c.fullMap.missTraversals[3], 0u);
    EXPECT_GT(c.fullMap.missTraversals[1] + c.fullMap.missTraversals[2],
              0u);
}

TEST_F(EngineTest, LinkedListSerialInvalidations)
{
    Addr a = sharedAddrAvoiding({2});
    // Three readers, then an upgrade by one of them (whose node is
    // not the home): the linked list purges the two others serially
    // -> 3 traversals (home trip + 2).
    read(0, a);
    read(1, a);
    read(2, a);
    write(2, a);
    const Census &c = engine_->census();
    EXPECT_EQ(c.linkedList.invTraversals[3], 1u) << "3+ bucket";
    EXPECT_EQ(c.fullMap.invTraversals[2], 1u)
        << "full map multicast caps at 2";
}

TEST_F(EngineTest, StickyPresenceVsExactList)
{
    Addr a = sharedAddrAvoiding({0, 1});
    read(0, a);
    read(1, a);
    const MemState &ms = engine_->memState(a);
    EXPECT_EQ(ms.list.size(), 2u);
    EXPECT_EQ(ms.head(), 1u) << "most recent reader heads the list";
    EXPECT_EQ(ms.presence, 0b11u);
}

TEST_F(EngineTest, LocalCleanMissIsLocalForDirectory)
{
    Addr a = sharedAddrAt(2);
    AccessOutcome o = read(2, a);
    EXPECT_EQ(o.home, 2u);
    const Census &c = engine_->census();
    EXPECT_EQ(c.fullMap.localMisses, 1u);
    EXPECT_EQ(c.fullMap.missTraversals[0], 1u);
    // The snooping protocol still probes (one traversal), but the
    // data never leaves the node.
    EXPECT_EQ(c.snoop.missTraversals[1], 1u);
    EXPECT_EQ(c.snoop.localMisses, 1u);
    EXPECT_EQ(c.snoop.blocks, 0u);
}

TEST_F(EngineTest, ResetCensusKeepsState)
{
    Addr a = sharedAddrAvoiding({0});
    read(0, a);
    engine_->resetCensus();
    EXPECT_EQ(engine_->census().sharedMisses, 0u);
    AccessOutcome o = read(0, a);
    EXPECT_EQ(o.type, AccessOutcome::Type::Hit)
        << "cache state survives the census reset";
}

TEST_F(EngineTest, VictimReportedInOutcome)
{
    // Fill two private blocks that collide in the direct-mapped cache.
    cache::Geometry g;
    Addr a = map_.privateBlock(0, 0);
    Addr b = a + g.sets() * g.blockBytes;
    write(0, a);
    AccessOutcome o = write(0, b);
    ASSERT_TRUE(o.victimValid);
    EXPECT_TRUE(o.victimDirty);
    EXPECT_EQ(o.victimBlock, a);
    EXPECT_EQ(o.victimHome, 0u);
    EXPECT_EQ(engine_->census().writebacks, 1u);
    EXPECT_FALSE(engine_->memState(a).dirty);
}

TEST_F(EngineTest, WritebackRefillIsCleanMiss)
{
    cache::Geometry g;
    Addr a = map_.privateBlock(0, 0);
    Addr b = a + g.sets() * g.blockBytes;
    write(0, a);
    write(0, b); // evicts a with write-back
    AccessOutcome o = read(0, a);
    EXPECT_EQ(o.type, AccessOutcome::Type::Miss);
    EXPECT_FALSE(o.wasDirty) << "write-back cleared the dirty bit";
}

} // namespace
} // namespace ringsim::coherence
