/**
 * @file
 * Unit tests for ring-traversal arithmetic, including the paper's
 * Figure 2 scenario.
 */

#include <gtest/gtest.h>

#include "src/coherence/classify.hpp"

namespace ringsim::coherence {
namespace {

TEST(HopDist, Basics)
{
    EXPECT_EQ(hopDist(16, 2, 13), 11u);
    EXPECT_EQ(hopDist(16, 13, 2), 5u);
    EXPECT_EQ(hopDist(16, 5, 5), 0u);
    EXPECT_EQ(hopDist(16, 15, 0), 1u);
}

TEST(HopDist, RoundTripIsRingSize)
{
    for (unsigned n : {4u, 8u, 16u, 64u}) {
        for (NodeId a = 0; a < n; ++a) {
            for (NodeId b = 0; b < n; ++b) {
                if (a != b) {
                    EXPECT_EQ(hopDist(n, a, b) + hopDist(n, b, a), n);
                }
            }
        }
    }
}

TEST(TraversalsOf, ExactMultiples)
{
    EXPECT_EQ(traversalsOf(16, 0), 0u);
    EXPECT_EQ(traversalsOf(16, 16), 1u);
    EXPECT_EQ(traversalsOf(16, 32), 2u);
}

TEST(TraversalsOfDeathTest, NonMultiplePanics)
{
    EXPECT_DEATH(traversalsOf(16, 5), "whole number");
}

TEST(ClassifyDirMiss, CleanRemoteIsOneTraversal)
{
    // Any requester/home pair: r -> h -> r is exactly one loop.
    for (NodeId r = 0; r < 16; ++r) {
        for (NodeId h = 0; h < 16; ++h) {
            if (r == h)
                continue;
            DirMiss dm = classifyDirMiss(16, r, h, false, invalidNode,
                                         false);
            EXPECT_EQ(dm.traversals, 1u);
            EXPECT_EQ(dm.cls, DirMissClass::Clean1);
            EXPECT_EQ(dm.probeHops + dm.blockHops, 16u);
        }
    }
}

TEST(ClassifyDirMiss, CleanLocalIsFree)
{
    DirMiss dm = classifyDirMiss(16, 3, 3, false, invalidNode, false);
    EXPECT_EQ(dm.traversals, 0u);
    EXPECT_EQ(dm.cls, DirMissClass::Local);
    EXPECT_EQ(dm.probeHops, 0u);
    EXPECT_EQ(dm.blockHops, 0u);
}

TEST(ClassifyDirMiss, PaperFigure2Scenario)
{
    // Figure 2(b): requester P2, home P13, dirty node P7 on a 16-node
    // ring. The dirty node is on the home->requester segment going
    // h -> d -> r, so the chain needs two traversals.
    DirMiss dm = classifyDirMiss(16, 2, 13, true, 7, false);
    EXPECT_EQ(dm.traversals, 2u);
    EXPECT_EQ(dm.cls, DirMissClass::Two);
}

TEST(ClassifyDirMiss, DirtyDownstreamOfHomeIsOneTraversal)
{
    // Dirty node between home and requester (downstream): one loop.
    // r=2, h=5, d=10: 3 + 5 + 8 = 16.
    DirMiss dm = classifyDirMiss(16, 2, 5, true, 10, false);
    EXPECT_EQ(dm.traversals, 1u);
    EXPECT_EQ(dm.cls, DirMissClass::Dirty1);
}

TEST(ClassifyDirMiss, DirtyOnRequestPathIsTwoTraversals)
{
    // Dirty node between requester and home (on the r->h path):
    // r=2, h=10, d=5: 8 + 11 + 13 = 32.
    DirMiss dm = classifyDirMiss(16, 2, 10, true, 5, false);
    EXPECT_EQ(dm.traversals, 2u);
}

TEST(ClassifyDirMiss, SymmetryClaim)
{
    // Section 3.3: if P2 and P7 share a block read-write, one of the
    // two always pays the extra traversal regardless of the home.
    for (NodeId h = 0; h < 16; ++h) {
        if (h == 2 || h == 7)
            continue;
        unsigned t27 = classifyDirMiss(16, 2, h, true, 7, false)
                           .traversals;
        unsigned t72 = classifyDirMiss(16, 7, h, true, 2, false)
                           .traversals;
        EXPECT_EQ(t27 + t72, 3u) << "home " << h;
    }
}

TEST(ClassifyDirMiss, MulticastAddsATraversal)
{
    DirMiss dm = classifyDirMiss(16, 2, 13, false, invalidNode, true);
    EXPECT_EQ(dm.traversals, 2u);
    EXPECT_EQ(dm.cls, DirMissClass::Two);
    // Local home with multicast: exactly the multicast loop.
    DirMiss local = classifyDirMiss(16, 3, 3, false, invalidNode, true);
    EXPECT_EQ(local.traversals, 1u);
    EXPECT_EQ(local.cls, DirMissClass::Clean1);
}

TEST(ClassifyDirMiss, DirtyOwnerAtHome)
{
    // Owner's cache at the home node: plain one-traversal chain.
    DirMiss dm = classifyDirMiss(16, 2, 13, true, 13, false);
    EXPECT_EQ(dm.traversals, 1u);
    EXPECT_EQ(dm.cls, DirMissClass::Dirty1);
}

TEST(DirUpgrade, Traversals)
{
    EXPECT_EQ(dirUpgradeTraversals(16, 2, 13, false), 1u);
    EXPECT_EQ(dirUpgradeTraversals(16, 2, 13, true), 2u);
    EXPECT_EQ(dirUpgradeTraversals(16, 3, 3, false), 0u);
    EXPECT_EQ(dirUpgradeTraversals(16, 3, 3, true), 1u);
}

TEST(LlistMiss, UncachedMatchesCleanDirectory)
{
    EXPECT_EQ(llistMissTraversals(16, 2, 13, invalidNode), 1u);
    EXPECT_EQ(llistMissTraversals(16, 3, 3, invalidNode), 0u);
}

TEST(LlistMiss, HeadChainOneOrTwo)
{
    // Same chain arithmetic as the dirty directory miss.
    EXPECT_EQ(llistMissTraversals(16, 2, 5, 10), 1u);
    EXPECT_EQ(llistMissTraversals(16, 2, 10, 5), 2u);
    EXPECT_EQ(llistMissTraversals(16, 2, 13, 13), 1u)
        << "head at home degenerates to a round trip";
}

TEST(LlistInvalidate, SerialRoundTrips)
{
    EXPECT_EQ(llistInvalidateTraversals(16, 2, 13, 0), 1u);
    EXPECT_EQ(llistInvalidateTraversals(16, 2, 13, 1), 2u);
    EXPECT_EQ(llistInvalidateTraversals(16, 2, 13, 5), 6u);
    EXPECT_EQ(llistInvalidateTraversals(16, 3, 3, 0), 0u);
    EXPECT_EQ(llistInvalidateTraversals(16, 3, 3, 2), 2u);
}

TEST(LlistInvalidate, HopsMatchTraversalStructure)
{
    // Remote home: one round trip (16 hops) plus 16 per sharer.
    EXPECT_EQ(llistInvalidateHops(16, 2, 13, 0), 16u);
    EXPECT_EQ(llistInvalidateHops(16, 2, 13, 3), 16u + 48u);
    EXPECT_EQ(llistInvalidateHops(16, 3, 3, 2), 32u);
}

} // namespace
} // namespace ringsim::coherence
