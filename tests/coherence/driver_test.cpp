/**
 * @file
 * Tests for the round-robin functional driver and full-workload
 * censuses (the Table 1 / Table 2 / Figure 5 machinery).
 */

#include <gtest/gtest.h>

#include "src/coherence/driver.hpp"

namespace ringsim::coherence {
namespace {

trace::WorkloadConfig
smallWorkload(trace::Benchmark b, unsigned procs)
{
    trace::WorkloadConfig cfg = trace::workloadPreset(b, procs);
    cfg.dataRefsPerProc = 20000;
    return cfg;
}

TEST(Driver, CensusAccountsEveryDataRef)
{
    auto cfg = smallWorkload(trace::Benchmark::MP3D, 8);
    DriverOptions opt;
    opt.warmupFrac = 0.0; // count everything
    Census c = runFunctional(cfg, opt);
    EXPECT_EQ(c.dataRefs(), 8u * 20000u);
    EXPECT_EQ(c.procs, 8u);
}

TEST(Driver, WarmupDiscardsPrefix)
{
    auto cfg = smallWorkload(trace::Benchmark::MP3D, 8);
    DriverOptions all;
    all.warmupFrac = 0.0;
    DriverOptions warm;
    warm.warmupFrac = 0.5;
    Census c_all = runFunctional(cfg, all);
    Census c_warm = runFunctional(cfg, warm);
    EXPECT_LT(c_warm.dataRefs(), c_all.dataRefs());
    // Post-warmup miss rate is lower than including the cold start.
    EXPECT_LT(c_warm.totalMissRate(), c_all.totalMissRate());
}

TEST(Driver, DeterministicAcrossRuns)
{
    auto cfg = smallWorkload(trace::Benchmark::CHOLESKY, 8);
    Census a = runFunctional(cfg);
    Census b = runFunctional(cfg);
    EXPECT_EQ(a.sharedMisses, b.sharedMisses);
    EXPECT_EQ(a.upgrades, b.upgrades);
    EXPECT_EQ(a.fullMap.missTraversals, b.fullMap.missTraversals);
    EXPECT_EQ(a.linkedList.invTraversals, b.linkedList.invTraversals);
}

TEST(Driver, CheckerPassesOnAllWorkloads)
{
    // The invariant checker must stay silent for every preset.
    for (auto cfg : trace::allWorkloadPresets()) {
        cfg.dataRefsPerProc = 4000;
        DriverOptions opt;
        opt.check = true;
        Census c = runFunctional(cfg, opt);
        EXPECT_GT(c.dataRefs(), 0u) << cfg.displayName();
    }
}

TEST(Driver, FullMapTraversalsNeverExceedTwo)
{
    for (trace::Benchmark b : {trace::Benchmark::MP3D,
                               trace::Benchmark::WATER,
                               trace::Benchmark::CHOLESKY}) {
        auto cfg = smallWorkload(b, 16);
        Census c = runFunctional(cfg);
        EXPECT_EQ(c.fullMap.missTraversals[3], 0u)
            << cfg.displayName();
        EXPECT_EQ(c.fullMap.invTraversals[3], 0u)
            << cfg.displayName();
    }
}

TEST(Driver, SnoopAlwaysOneTraversal)
{
    auto cfg = smallWorkload(trace::Benchmark::MP3D, 16);
    Census c = runFunctional(cfg);
    EXPECT_EQ(c.snoop.missTraversals[0], 0u);
    EXPECT_EQ(c.snoop.missTraversals[2], 0u);
    EXPECT_EQ(c.snoop.missTraversals[3], 0u);
    EXPECT_GT(c.snoop.missTraversals[1], 0u);
    EXPECT_EQ(c.snoop.invTraversals[2], 0u);
}

TEST(Driver, LinkedListHasLongInvalidations)
{
    // Table 1 shape: only the linked list produces 3+-traversal
    // transactions. MP3D's read-episode sharing shows them even at
    // short trace lengths.
    auto cfg = smallWorkload(trace::Benchmark::MP3D, 16);
    Census c = runFunctional(cfg);
    EXPECT_GT(c.linkedList.invTraversals[3], 0u);
}

TEST(Driver, MissClassesSumToRemoteMisses)
{
    auto cfg = smallWorkload(trace::Benchmark::MP3D, 16);
    Census c = runFunctional(cfg);
    EXPECT_EQ(c.fullMap.cleanMiss1 + c.fullMap.dirtyMiss1 +
                  c.fullMap.miss2,
              c.fullMap.remoteMisses());
    EXPECT_EQ(c.snoop.localMisses + c.snoop.cleanMiss1 +
                  c.snoop.dirtyMiss1,
              c.snoop.missTraversals[1]);
}

TEST(Driver, SharedMissRateOrderingMatchesPaper)
{
    // Table 2 ordering at 16 CPUs: WATER << MP3D < CHOLESKY.
    Census water =
        runFunctional(smallWorkload(trace::Benchmark::WATER, 16));
    Census mp3d =
        runFunctional(smallWorkload(trace::Benchmark::MP3D, 16));
    Census chol =
        runFunctional(smallWorkload(trace::Benchmark::CHOLESKY, 16));
    EXPECT_LT(water.sharedMissRate(), mp3d.sharedMissRate());
    EXPECT_LT(mp3d.sharedMissRate(), chol.sharedMissRate());
}

TEST(Driver, CleanMissFractionGrowsWithSystemSize)
{
    // Figure 5 shape: random page placement sends a larger share of
    // misses to remote homes as the system grows.
    auto frac = [](const Census &c) {
        Count remote = c.fullMap.remoteMisses();
        return remote ? static_cast<double>(c.fullMap.cleanMiss1) /
                            static_cast<double>(remote)
                      : 0.0;
    };
    Census c8 =
        runFunctional(smallWorkload(trace::Benchmark::MP3D, 8));
    Census c32 =
        runFunctional(smallWorkload(trace::Benchmark::MP3D, 32));
    EXPECT_LT(frac(c8), frac(c32));
}

TEST(Driver, FftIsWriteHeavy)
{
    auto cfg = smallWorkload(trace::Benchmark::FFT, 64);
    Census c = runFunctional(cfg);
    EXPECT_NEAR(c.sharedWriteFrac(), 0.5, 0.06);
}

TEST(Driver, SweepWorkloadsAreCleanMissDominated)
{
    for (trace::Benchmark b : {trace::Benchmark::WEATHER,
                               trace::Benchmark::SIMPLE}) {
        auto cfg = smallWorkload(b, 64);
        Census c = runFunctional(cfg);
        double clean = static_cast<double>(c.fullMap.cleanMiss1) /
                       static_cast<double>(c.fullMap.remoteMisses());
        EXPECT_GT(clean, 0.9) << cfg.displayName();
    }
}

} // namespace
} // namespace ringsim::coherence
