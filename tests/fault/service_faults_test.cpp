/**
 * @file
 * Unit tests for the service-layer fault injector: the decision
 * schedule is a pure function of (seed, kind, sequence), rates are
 * honored statistically, and the stateful front end counts fires.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/fault/service_faults.hpp"

namespace ringsim::fault {
namespace {

std::vector<bool>
schedule(std::uint64_t seed, ServiceFaultKind kind, double rate,
         std::size_t n)
{
    std::vector<bool> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = ServiceFaultInjector::decide(seed, kind, i, rate);
    return out;
}

TEST(ServiceFaultDecide, IsPure)
{
    // Calling twice with identical arguments must agree everywhere —
    // no hidden RNG state advances.
    auto a = schedule(42, ServiceFaultKind::Garble, 0.5, 1000);
    auto b = schedule(42, ServiceFaultKind::Garble, 0.5, 1000);
    EXPECT_EQ(a, b);
}

TEST(ServiceFaultDecide, SeedsProduceDistinctSchedules)
{
    auto a = schedule(1, ServiceFaultKind::Disconnect, 0.5, 1000);
    auto b = schedule(2, ServiceFaultKind::Disconnect, 0.5, 1000);
    EXPECT_NE(a, b);
}

TEST(ServiceFaultDecide, KindsProduceDistinctSchedules)
{
    // One seed drives every fault class, so the per-kind domain
    // separation must keep their schedules independent.
    auto a = schedule(7, ServiceFaultKind::TornWrite, 0.5, 1000);
    auto b = schedule(7, ServiceFaultKind::BitFlip, 0.5, 1000);
    EXPECT_NE(a, b);
}

TEST(ServiceFaultDecide, RateZeroNeverFires)
{
    for (std::uint64_t seq = 0; seq < 1000; ++seq)
        EXPECT_FALSE(ServiceFaultInjector::decide(
            9, ServiceFaultKind::SlowWrite, seq, 0.0));
}

TEST(ServiceFaultDecide, RateOneAlwaysFires)
{
    for (std::uint64_t seq = 0; seq < 1000; ++seq)
        EXPECT_TRUE(ServiceFaultInjector::decide(
            9, ServiceFaultKind::SlowWrite, seq, 1.0));
}

TEST(ServiceFaultDecide, ObservedRateTracksConfigured)
{
    const std::size_t n = 20'000;
    auto s = schedule(1234, ServiceFaultKind::Garble, 0.2, n);
    std::size_t fired = 0;
    for (bool b : s)
        fired += b;
    double observed = static_cast<double>(fired) / n;
    EXPECT_NEAR(observed, 0.2, 0.02);
}

TEST(ServiceFaultInjector, CountsOnlyFiringSites)
{
    ServiceFaultConfig cfg;
    cfg.seed = 5;
    cfg.garbleRate = 1.0;
    ServiceFaultInjector inj(cfg);
    EXPECT_TRUE(inj.garble());
    EXPECT_TRUE(inj.garble());
    EXPECT_FALSE(inj.disconnect()); // rate 0.0
    ServiceFaultCounters c = inj.counters();
    EXPECT_EQ(c.garbles, 2u);
    EXPECT_EQ(c.disconnects, 0u);
    EXPECT_EQ(c.slowWrites, 0u);
    EXPECT_EQ(c.tornWrites, 0u);
    EXPECT_EQ(c.bitFlips, 0u);
}

TEST(ServiceFaultInjector, MatchesThePureSchedule)
{
    ServiceFaultConfig cfg;
    cfg.seed = 77;
    cfg.tornWriteRate = 0.3;
    ServiceFaultInjector inj(cfg);
    for (std::uint64_t seq = 0; seq < 200; ++seq) {
        bool expected = ServiceFaultInjector::decide(
            77, ServiceFaultKind::TornWrite, seq, 0.3);
        EXPECT_EQ(inj.tornWrite(), expected) << "seq " << seq;
    }
}

TEST(ServiceFaultConfig, DefaultIsDisabled)
{
    ServiceFaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    EXPECT_TRUE(cfg.check().empty());
}

TEST(ServiceFaultConfig, ChaosPresetEnablesEveryClass)
{
    ServiceFaultConfig cfg = ServiceFaultConfig::chaosPreset(11);
    EXPECT_TRUE(cfg.enabled());
    EXPECT_EQ(cfg.seed, 11u);
    EXPECT_GT(cfg.slowWriteRate, 0.0);
    EXPECT_GT(cfg.disconnectRate, 0.0);
    EXPECT_GT(cfg.garbleRate, 0.0);
    EXPECT_GT(cfg.tornWriteRate, 0.0);
    EXPECT_GT(cfg.bitFlipRate, 0.0);
    EXPECT_TRUE(cfg.check().empty());
}

TEST(ServiceFaultConfig, CheckRejectsNonProbabilityRates)
{
    ServiceFaultConfig cfg;
    cfg.garbleRate = 1.5;
    ASSERT_FALSE(cfg.check().empty());
    EXPECT_NE(cfg.check().front().find("garbleRate"),
              std::string::npos);
    cfg.garbleRate = -0.1;
    EXPECT_FALSE(cfg.check().empty());
}

TEST(ServiceFaultConfig, CheckRejectsZeroChunkSlowWrites)
{
    ServiceFaultConfig cfg;
    cfg.slowWriteRate = 0.5;
    cfg.slowChunkBytes = 0;
    ASSERT_FALSE(cfg.check().empty());
    EXPECT_NE(cfg.check().front().find("slowChunkBytes"),
              std::string::npos);
}

} // namespace
} // namespace ringsim::fault
