/**
 * @file
 * Fault-injection tests: schedule determinism, config validation, the
 * injector's fault budget, ring-level fault semantics (corrupt flags,
 * drops, stalls), the one-traversal audit, and end-to-end recovery on
 * full timed systems.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "src/cache/invariant_monitor.hpp"
#include "src/core/system.hpp"
#include "src/fault/fault.hpp"
#include "src/ring/network.hpp"
#include "src/runner/experiment_runner.hpp"
#include "src/trace/workload.hpp"

namespace ringsim::fault {
namespace {

// ---------------------------------------------------------------
// The schedule is a pure function of (seed, kind, cycle, slot).
// ---------------------------------------------------------------

TEST(FaultPlan, SameSeedSameSchedule)
{
    FaultPlan a(42), b(42);
    for (Count cycle = 0; cycle < 2000; ++cycle) {
        for (unsigned slot = 0; slot < 9; ++slot) {
            EXPECT_EQ(a.decide(FaultKind::Drop, cycle, slot, 0.01),
                      b.decide(FaultKind::Drop, cycle, slot, 0.01));
            EXPECT_EQ(a.decide(FaultKind::Corrupt, cycle, slot, 0.01),
                      b.decide(FaultKind::Corrupt, cycle, slot, 0.01));
        }
    }
}

TEST(FaultPlan, QueryOrderIrrelevant)
{
    // Decisions carry no hidden RNG state: asking in a different order
    // (or asking twice) cannot change any answer.
    FaultPlan plan(7);
    std::vector<bool> forward, backward;
    for (Count cycle = 0; cycle < 500; ++cycle)
        forward.push_back(
            plan.decide(FaultKind::Drop, cycle, 3, 0.05));
    for (Count cycle = 500; cycle-- > 0;)
        backward.push_back(
            plan.decide(FaultKind::Drop, cycle, 3, 0.05));
    for (std::size_t i = 0; i < forward.size(); ++i)
        EXPECT_EQ(forward[i], backward[forward.size() - 1 - i]);
}

TEST(FaultPlan, SeedsAndKindsDecorrelated)
{
    FaultPlan a(1), b(2);
    unsigned differ = 0, kind_differ = 0, fired = 0;
    for (Count cycle = 0; cycle < 20000; ++cycle) {
        bool da = a.decide(FaultKind::Drop, cycle, 0, 0.05);
        bool db = b.decide(FaultKind::Drop, cycle, 0, 0.05);
        bool ca = a.decide(FaultKind::Corrupt, cycle, 0, 0.05);
        differ += da != db;
        kind_differ += da != ca;
        fired += da;
    }
    EXPECT_GT(differ, 0u) << "different seeds, identical schedule";
    EXPECT_GT(kind_differ, 0u) << "kinds share one schedule";
    // ~5% of 20000 = ~1000 events; allow generous slack.
    EXPECT_GT(fired, 500u);
    EXPECT_LT(fired, 2000u);
}

TEST(FaultPlan, RateEndpoints)
{
    FaultPlan plan(99);
    for (Count cycle = 0; cycle < 100; ++cycle) {
        EXPECT_FALSE(plan.decide(FaultKind::Drop, cycle, 0, 0.0));
        EXPECT_TRUE(plan.decide(FaultKind::Drop, cycle, 0, 1.0));
    }
}

// ---------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------

TEST(FaultConfig, DefaultsAreDisabledAndValid)
{
    FaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    EXPECT_TRUE(cfg.check().empty());
}

TEST(FaultConfig, BadRatesReported)
{
    FaultConfig cfg;
    cfg.corruptRate = -0.1;
    EXPECT_FALSE(cfg.check().empty());

    cfg = FaultConfig{};
    cfg.dropRate = 1.5;
    EXPECT_FALSE(cfg.check().empty());

    cfg = FaultConfig{};
    cfg.stallRate = 0.01;
    cfg.stallCycles = 0;
    EXPECT_FALSE(cfg.check().empty());

    cfg = FaultConfig{};
    cfg.corruptRate = 0.01;
    cfg.maxRetries = 0;
    EXPECT_FALSE(cfg.check().empty());
}

TEST(FaultConfigDeathTest, ValidateIsFatal)
{
    FaultConfig cfg;
    cfg.dropRate = 2.0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "rate");
}

// ---------------------------------------------------------------
// Injector budget and stats.
// ---------------------------------------------------------------

TEST(FaultInjector, BudgetCapsInjectedFaults)
{
    FaultConfig cfg;
    cfg.corruptRate = 1.0;
    cfg.dropRate = 1.0;
    cfg.maxFaults = 5;
    FaultInjector inj(cfg);
    Count granted = 0;
    for (Count cycle = 0; cycle < 100; ++cycle)
        granted += inj.dropAt(cycle, 0) ? 1 : 0;
    EXPECT_EQ(granted, 5u);
    EXPECT_EQ(inj.faultsInjected(), 5u);
    EXPECT_FALSE(inj.corruptAt(100, 0)) << "budget exhausted";
    EXPECT_EQ(inj.stats().dropped.value(), 5u);
}

// ---------------------------------------------------------------
// Ring-level fault semantics.
// ---------------------------------------------------------------

class ScriptClient : public ring::RingClient
{
  public:
    using Hook = std::function<void(ring::SlotHandle &)>;

    void onSlot(ring::SlotHandle &slot) override
    {
        if (hook)
            hook(slot);
    }

    Hook hook;
};

struct RingRig
{
    sim::Kernel kernel;
    ring::RingConfig config;
    std::unique_ptr<ring::SlotRing> net;
    std::vector<ScriptClient> clients;

    RingRig()
    {
        config.nodes = 8;
        net = std::make_unique<ring::SlotRing>(kernel, config);
        clients.resize(8);
        for (NodeId n = 0; n < 8; ++n)
            net->setClient(n, clients[n]);
    }
};

TEST(RingFaults, CorruptionFlagsSlotForNextNode)
{
    RingRig rig;
    FaultConfig cfg;
    cfg.corruptRate = 1.0;
    FaultInjector inj(cfg);
    rig.net->setFaultInjector(&inj);

    bool inserted = false;
    bool saw_corrupt = false;
    rig.clients[1].hook = [&](ring::SlotHandle &slot) {
        if (!inserted && slot.type() == ring::SlotType::Block) {
            ring::RingMessage msg;
            msg.src = 1;
            msg.dst = 5;
            msg.addr = 0x100;
            slot.insert(msg);
            inserted = true;
        }
    };
    for (NodeId n = 2; n < 8; ++n) {
        rig.clients[n].hook = [&](ring::SlotHandle &slot) {
            if (slot.occupied() && slot.corrupted()) {
                saw_corrupt = true;
                slot.remove();
            }
        };
    }
    rig.net->start(0);
    rig.kernel.run(nsToTicks(500));
    rig.net->stop();
    EXPECT_TRUE(inserted);
    EXPECT_TRUE(saw_corrupt);
    EXPECT_GT(inj.stats().corrupted.value(), 0u);
}

TEST(RingFaults, DropErasesMessage)
{
    RingRig rig;
    FaultConfig cfg;
    cfg.dropRate = 1.0;
    FaultInjector inj(cfg);
    rig.net->setFaultInjector(&inj);

    bool inserted = false;
    bool delivered = false;
    rig.clients[1].hook = [&](ring::SlotHandle &slot) {
        if (!inserted && slot.type() == ring::SlotType::Block) {
            ring::RingMessage msg;
            msg.src = 1;
            msg.dst = 5;
            msg.addr = 0x100;
            slot.insert(msg);
            inserted = true;
        }
    };
    rig.clients[5].hook = [&](ring::SlotHandle &slot) {
        if (slot.occupied() && slot.message().dst == 5) {
            slot.remove();
            delivered = true;
        }
    };
    rig.net->start(0);
    rig.kernel.run(nsToTicks(500));
    rig.net->stop();
    EXPECT_TRUE(inserted);
    EXPECT_FALSE(delivered) << "dropped message still arrived";
    EXPECT_EQ(inj.stats().dropped.value(), 1u);
    EXPECT_EQ(inj.faultsInjected(), 1u);
}

TEST(RingFaults, StallsDelayDeliveryWithoutLoss)
{
    // Same script with and without stalls: the message still arrives,
    // strictly later, and the stall cycles are counted.
    auto deliver = [](FaultInjector *inj) {
        RingRig rig;
        if (inj)
            rig.net->setFaultInjector(inj);
        bool inserted = false;
        Tick delivered = 0;
        rig.clients[1].hook = [&](ring::SlotHandle &slot) {
            if (!inserted && slot.type() == ring::SlotType::Block) {
                ring::RingMessage msg;
                msg.src = 1;
                msg.dst = 5;
                msg.addr = 0x100;
                slot.insert(msg);
                inserted = true;
            }
        };
        rig.clients[5].hook = [&](ring::SlotHandle &slot) {
            if (slot.occupied() && slot.message().dst == 5 &&
                !delivered) {
                slot.remove();
                delivered = rig.kernel.now();
            }
        };
        rig.net->start(0);
        rig.kernel.run(nsToTicks(2000));
        rig.net->stop();
        return delivered;
    };

    Tick clean = deliver(nullptr);
    FaultConfig cfg;
    cfg.stallRate = 0.2;
    cfg.stallCycles = 3;
    FaultInjector inj(cfg);
    Tick stalled = deliver(&inj);

    ASSERT_GT(clean, 0u);
    ASSERT_GT(stalled, 0u);
    EXPECT_GT(stalled, clean);
    EXPECT_GT(inj.stats().stallEvents.value(), 0u);
    EXPECT_GT(inj.stats().stallCycles.value(), 0u);
}

// ---------------------------------------------------------------
// One-traversal audit (continuous invariant monitoring).
// ---------------------------------------------------------------

TEST(RingAudit, LateRemovalReportsTraversalOverrun)
{
    RingRig rig;
    cache::InvariantMonitor monitor(cache::InvariantMonitor::Mode::Record);
    rig.net->setMonitor(&monitor);

    bool inserted = false;
    unsigned passes = 0;
    rig.clients[1].hook = [&](ring::SlotHandle &slot) {
        if (!inserted && slot.type() == ring::SlotType::Block) {
            ring::RingMessage msg;
            msg.src = 1;
            msg.dst = 5;
            msg.addr = 0x140;
            msg.payload = 77;
            slot.insert(msg);
            inserted = true;
        }
    };
    rig.clients[5].hook = [&](ring::SlotHandle &slot) {
        if (slot.occupied() && slot.message().dst == 5) {
            // A buggy interface: lets its message pass once, removes
            // it on the second traversal.
            if (++passes == 2)
                slot.remove();
        }
    };
    rig.net->start(0);
    rig.kernel.run(nsToTicks(2000));
    rig.net->stop();

    ASSERT_EQ(passes, 2u);
    ASSERT_FALSE(monitor.clean());
    ASSERT_EQ(monitor.countOf(cache::Violation::Kind::TraversalOverrun),
              1u);
    const cache::Violation &v = monitor.violations().front();
    EXPECT_EQ(v.node, 5u);
    EXPECT_EQ(v.other, 1u);
    EXPECT_EQ(v.block, 0x140u);
    EXPECT_EQ(v.txn, 77u);
    EXPECT_GE(v.slot, 0);
}

TEST(RingAudit, TimelyRemovalIsClean)
{
    RingRig rig;
    cache::InvariantMonitor monitor(cache::InvariantMonitor::Mode::Record);
    rig.net->setMonitor(&monitor);

    bool inserted = false;
    rig.clients[1].hook = [&](ring::SlotHandle &slot) {
        if (!inserted && slot.type() == ring::SlotType::Block) {
            ring::RingMessage msg;
            msg.src = 1;
            msg.dst = 5;
            msg.addr = 0x100;
            slot.insert(msg);
            inserted = true;
        }
    };
    rig.clients[5].hook = [&](ring::SlotHandle &slot) {
        if (slot.occupied() && slot.message().dst == 5)
            slot.remove();
    };
    rig.net->start(0);
    rig.kernel.run(nsToTicks(1000));
    rig.net->stop();
    EXPECT_TRUE(monitor.clean());
    EXPECT_GT(monitor.checksPerformed(), 0u);
}

// ---------------------------------------------------------------
// End-to-end: full timed systems recover from injected faults.
// ---------------------------------------------------------------

core::RingSystemConfig
faultyConfig(double rate, std::uint64_t seed)
{
    core::RingSystemConfig cfg = core::RingSystemConfig::forProcs(8);
    cfg.common.faults.corruptRate = rate;
    cfg.common.faults.dropRate = rate;
    cfg.common.faults.seed = seed;
    return cfg;
}

trace::WorkloadConfig
smallWorkload()
{
    trace::WorkloadConfig wl =
        trace::workloadPreset(trace::Benchmark::MP3D, 8);
    wl.dataRefsPerProc = 20000;
    return wl;
}

void
expectSameResult(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.procUtilization, b.procUtilization);
    EXPECT_EQ(a.networkUtilization, b.networkUtilization);
    EXPECT_EQ(a.missLatencyNs, b.missLatencyNs);
    EXPECT_EQ(a.window, b.window);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.fatalTxns, b.fatalTxns);
    EXPECT_EQ(a.timeouts, b.timeouts);
}

TEST(FaultRecovery, SnoopSystemRecoversDeterministically)
{
    core::RingSystemConfig cfg = faultyConfig(2e-5, 11);
    trace::WorkloadConfig wl = smallWorkload();
    core::RunResult a = core::runRingSystem(
        cfg, wl, core::ProtocolKind::RingSnoop);
    core::RunResult b = core::runRingSystem(
        cfg, wl, core::ProtocolKind::RingSnoop);

    EXPECT_GT(a.faultsInjected, 0u);
    EXPECT_GT(a.retries, 0u);
    EXPECT_GT(a.recovered, 0u);
    expectSameResult(a, b);
}

TEST(FaultRecovery, DirectorySystemRecoversDeterministically)
{
    core::RingSystemConfig cfg = faultyConfig(2e-5, 11);
    trace::WorkloadConfig wl = smallWorkload();
    core::RunResult a = core::runRingSystem(
        cfg, wl, core::ProtocolKind::RingDirectory);
    core::RunResult b = core::runRingSystem(
        cfg, wl, core::ProtocolKind::RingDirectory);

    EXPECT_GT(a.faultsInjected, 0u);
    EXPECT_GT(a.retries, 0u);
    expectSameResult(a, b);
}

TEST(FaultRecovery, DifferentSeedsDifferentSchedules)
{
    trace::WorkloadConfig wl = smallWorkload();
    core::RunResult a = core::runRingSystem(
        faultyConfig(2e-5, 1), wl, core::ProtocolKind::RingSnoop);
    core::RunResult b = core::runRingSystem(
        faultyConfig(2e-5, 2), wl, core::ProtocolKind::RingSnoop);
    // Same rate, different seed: same order of magnitude, different
    // pattern. The raw injected count can collide, but the different
    // fault timing must leave a mark somewhere in the results.
    bool differs = a.faultsInjected != b.faultsInjected ||
                   a.retries != b.retries ||
                   a.recovered != b.recovered ||
                   a.missLatencyNs != b.missLatencyNs ||
                   a.procUtilization != b.procUtilization;
    EXPECT_TRUE(differs);
}

TEST(FaultRecovery, FaultFreeRunReportsZeroCounters)
{
    core::RingSystemConfig cfg = core::RingSystemConfig::forProcs(8);
    trace::WorkloadConfig wl = smallWorkload();
    core::RunResult r = core::runRingSystem(
        cfg, wl, core::ProtocolKind::RingSnoop);
    EXPECT_EQ(r.faultsInjected, 0u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.recovered, 0u);
    EXPECT_EQ(r.fatalTxns, 0u);
    EXPECT_EQ(r.nacks, 0u);
    EXPECT_EQ(r.timeouts, 0u);
}

TEST(FaultRecovery, ExhaustedRetriesDegradeGracefully)
{
    // Drop everything: no transaction can ever complete on the wire,
    // every one must exhaust its retries and be declared fatal — and
    // the run must still terminate with the processors released.
    core::RingSystemConfig cfg = core::RingSystemConfig::forProcs(8);
    cfg.common.faults.dropRate = 1.0;
    cfg.common.faults.maxRetries = 2;
    trace::WorkloadConfig wl = smallWorkload();
    wl.dataRefsPerProc = 500;
    core::RunResult r = core::runRingSystem(
        cfg, wl, core::ProtocolKind::RingSnoop);
    EXPECT_GT(r.fatalTxns, 0u);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_EQ(r.recovered, 0u);
}

TEST(FaultRecovery, ResultsIndependentOfRunnerJobs)
{
    // The acceptance property behind every bench table: a fixed fault
    // seed gives byte-identical results no matter how the sweep is
    // parallelized.
    std::vector<double> rates = {0.0, 1e-5, 5e-5};
    auto make_tasks = [&]() {
        std::vector<std::function<core::RunResult()>> tasks;
        for (double rate : rates) {
            tasks.push_back([rate]() {
                return core::runRingSystem(
                    faultyConfig(rate, 11), smallWorkload(),
                    core::ProtocolKind::RingSnoop);
            });
        }
        return tasks;
    };
    std::vector<core::RunResult> serial =
        runner::runAll(make_tasks(), 1);
    std::vector<core::RunResult> parallel =
        runner::runAll(make_tasks(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResult(serial[i], parallel[i]);
}

TEST(FaultRecovery, MonitoredFaultyRunStaysCoherent)
{
    // Faults disturb timing, never functional state: the continuous
    // invariant monitor must stay clean through a faulty run.
    cache::InvariantMonitor monitor(cache::InvariantMonitor::Mode::Record);
    core::RingSystemConfig cfg = faultyConfig(2e-5, 11);
    cfg.common.monitor = &monitor;
    core::RunResult r = core::runRingSystem(
        cfg, smallWorkload(), core::ProtocolKind::RingSnoop);
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_TRUE(monitor.clean()) << monitor.summary();
    EXPECT_GT(monitor.checksPerformed(), 0u);
}

} // namespace
} // namespace ringsim::fault
