/**
 * @file
 * Tests of the static protocol model checker itself: the production
 * tables must verify clean over the whole configuration matrix, the
 * paper's traversal bounds must hold exactly (snoop = 1 ring
 * traversal, directory <= 2), and every deliberately broken
 * transition (ptable::Mutation) must be caught with the right defect
 * on every protocol it affects — and must NOT perturb the other
 * protocol's verdict.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/verify/model.hpp"

namespace ringsim::verify {
namespace {

namespace ptable = core::ptable;

ModelConfig
makeConfig(Protocol proto, unsigned nodes, unsigned blocks,
           bool faults, bool full)
{
    ModelConfig c;
    c.protocol = proto;
    c.nodes = nodes;
    c.blocks = blocks;
    c.faults = faults;
    c.fullInterleaving = full;
    return c;
}

bool
hasDefect(const ModelReport &r, Defect d)
{
    for (const Finding &f : r.findings)
        if (f.kind == d)
            return true;
    return false;
}

TEST(ProtocolModel, SnoopVerifiesCleanAcrossMatrix)
{
    for (unsigned nodes : {2u, 3u}) {
        for (unsigned blocks : {1u, 2u}) {
            for (bool faults : {false, true}) {
                ModelConfig c = makeConfig(Protocol::Snoop, nodes,
                                           blocks, faults, nodes == 2);
                ModelReport r = checkProtocol(c);
                EXPECT_TRUE(r.clean()) << r.summary();
                EXPECT_GT(r.functionalStates, 0u);
                EXPECT_GT(r.plansAudited, 0u);
                // The paper's snooping claim: every transaction
                // completes in exactly one ring traversal.
                EXPECT_EQ(r.maxTraversals, 1u) << r.summary();
                if (faults) {
                    EXPECT_GT(r.automatonStates, 0u);
                }
                if (c.fullInterleaving) {
                    EXPECT_GT(r.productStates, 0u);
                }
            }
        }
    }
}

TEST(ProtocolModel, DirectoryVerifiesCleanAcrossMatrix)
{
    for (unsigned nodes : {2u, 3u}) {
        for (unsigned blocks : {1u, 2u}) {
            for (bool faults : {false, true}) {
                ModelConfig c = makeConfig(Protocol::Directory, nodes,
                                           blocks, faults, nodes == 2);
                ModelReport r = checkProtocol(c);
                EXPECT_TRUE(r.clean()) << r.summary();
                EXPECT_GT(r.functionalStates, 0u);
                EXPECT_GT(r.plansAudited, 0u);
                // The paper's directory claim: at most two ring
                // traversals (home round trip + forward/multicast),
                // and some placement genuinely needs both.
                EXPECT_EQ(r.maxTraversals, 2u) << r.summary();
            }
        }
    }
}

TEST(ProtocolModel, FourNodesTwoBlocksVerifyClean)
{
    for (Protocol proto : {Protocol::Snoop, Protocol::Directory}) {
        ModelConfig c = makeConfig(proto, 4, 2, true, false);
        ModelReport r = checkProtocol(c);
        EXPECT_TRUE(r.clean()) << r.summary();
        EXPECT_GT(r.functionalStates, 0u);
        EXPECT_GT(r.automatonStates, 0u);
    }
}

TEST(ProtocolModel, StateSpaceGrowsWithConfiguration)
{
    ModelReport small = checkProtocol(
        makeConfig(Protocol::Snoop, 2, 1, false, false));
    ModelReport large = checkProtocol(
        makeConfig(Protocol::Snoop, 4, 2, false, false));
    EXPECT_GT(large.functionalStates, small.functionalStates);
    EXPECT_GT(large.plansAudited, small.plansAudited);
}

/** Which protocols a mutation perturbs, and the expected defect. */
struct MutationCase
{
    ptable::Mutation mutation;
    bool affectsSnoop;
    bool affectsDirectory;
    Defect expected;
};

constexpr MutationCase mutationCases[] = {
    {ptable::Mutation::DropInvalidation, true, true,
     Defect::MultipleWriters},
    {ptable::Mutation::KeepDirtyOnRead, true, true, Defect::StaleRead},
    {ptable::Mutation::SnoopExtraTraversal, true, false,
     Defect::TraversalOverrun},
    {ptable::Mutation::SnoopMemorySupplier, true, false,
     Defect::StaleSupplier},
    {ptable::Mutation::DirSkipForward, false, true,
     Defect::StaleSupplier},
    {ptable::Mutation::DirSkipMulticast, false, true,
     Defect::LostInvalidation},
    {ptable::Mutation::AcceptStaleAttempt, true, true,
     Defect::DoubleCompletion},
};

TEST(ProtocolModel, MutationTableCoversEveryMutation)
{
    ASSERT_EQ(std::size(mutationCases), ptable::allMutations.size());
    for (ptable::Mutation m : ptable::allMutations) {
        bool listed = false;
        for (const MutationCase &mc : mutationCases)
            listed = listed || mc.mutation == m;
        EXPECT_TRUE(listed) << ptable::mutationName(m);
    }
}

TEST(ProtocolModel, EveryMutationIsCaughtWithItsDefect)
{
    for (const MutationCase &mc : mutationCases) {
        for (Protocol proto : {Protocol::Snoop, Protocol::Directory}) {
            bool affected = proto == Protocol::Snoop
                                ? mc.affectsSnoop
                                : mc.affectsDirectory;
            // Faults on so the retry automaton (which catches
            // AcceptStaleAttempt) always runs.
            ModelConfig c = makeConfig(proto, 3, 1, true, false);
            c.mutation = mc.mutation;
            ModelReport r = checkProtocol(c);
            if (affected) {
                EXPECT_FALSE(r.clean())
                    << ptable::mutationName(mc.mutation) << " on "
                    << protocolName(proto) << " not caught";
                EXPECT_TRUE(hasDefect(r, mc.expected))
                    << ptable::mutationName(mc.mutation) << " on "
                    << protocolName(proto) << ": expected "
                    << defectName(mc.expected) << "; got "
                    << r.summary();
            } else {
                EXPECT_TRUE(r.clean())
                    << ptable::mutationName(mc.mutation)
                    << " leaked into " << protocolName(proto) << ": "
                    << r.summary();
            }
        }
    }
}

TEST(ProtocolModel, ConfigCheckNamesFieldAndValue)
{
    ModelConfig c;
    EXPECT_EQ(c.check(), "");

    c.nodes = 1;
    EXPECT_NE(c.check().find("nodes = 1"), std::string::npos)
        << c.check();
    c.nodes = ptable::maxTableNodes + 1;
    EXPECT_NE(c.check().find("nodes = 9"), std::string::npos)
        << c.check();

    c = ModelConfig{};
    c.blocks = 3;
    EXPECT_NE(c.check().find("blocks = 3"), std::string::npos)
        << c.check();

    c = ModelConfig{};
    c.inflight = 0;
    EXPECT_NE(c.check().find("inflight = 0"), std::string::npos)
        << c.check();

    c = ModelConfig{};
    c.maxAttempts = 7;
    EXPECT_NE(c.check().find("maxAttempts = 7"), std::string::npos)
        << c.check();
}

TEST(ProtocolModel, SummaryNamesProtocolAndVerdict)
{
    ModelReport r = checkProtocol(
        makeConfig(Protocol::Snoop, 2, 1, false, false));
    EXPECT_NE(r.summary().find("snoop"), std::string::npos);
    EXPECT_NE(r.summary().find("clean"), std::string::npos);

    ModelConfig c = makeConfig(Protocol::Directory, 2, 1, false, false);
    c.mutation = ptable::Mutation::DropInvalidation;
    ModelReport bad = checkProtocol(c);
    EXPECT_FALSE(bad.clean());
    EXPECT_EQ(bad.violationsTotal >= bad.findings.size(), true);
    EXPECT_FALSE(bad.findings.empty());
}

} // namespace
} // namespace ringsim::verify
