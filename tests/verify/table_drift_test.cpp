/**
 * @file
 * Drift guard between the production functional engine and the shared
 * guarded-action table (core/protocol_table.hpp).
 *
 * The model checker (src/verify/) proves its invariants over the
 * table's transitions; these tests prove the table IS the production
 * protocol. Exhaustive access sequences are replayed through both
 * coherence::FunctionalEngine and ptable::applyAccess()/applyEvict(),
 * comparing every cache line state, the dirty bit, the owner and the
 * presence bits after every single step. Any divergence fails the
 * build, so the checker's verdicts keep covering the real code.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/coherent_cache.hpp"
#include "src/coherence/engine.hpp"
#include "src/core/protocol_table.hpp"
#include "src/trace/address_map.hpp"

namespace ringsim {
namespace {

namespace ptable = core::ptable;

/** One move of a replayed sequence. */
struct Step
{
    NodeId proc;
    bool write;
    unsigned blockIdx; //!< index into the tracked block list
};

/**
 * Runs one sequence through the engine and the table side by side.
 * Tracked blocks are shared blocks of the address map; the sequences
 * only touch tracked blocks, so the mirror sees every state change
 * (including capacity victims, which the engine reports via the
 * access outcome).
 */
class DriftHarness
{
  public:
    DriftHarness(unsigned procs, const cache::Geometry &geom,
                 const std::vector<std::uint64_t> &sharedIndices)
        : map_(procs, geom.blockBytes, 11), procs_(procs)
    {
        coherence::EngineOptions opt;
        opt.geometry = geom;
        engine_ =
            std::make_unique<coherence::FunctionalEngine>(map_, opt);
        for (std::uint64_t idx : sharedIndices)
            blocks_.push_back(map_.sharedBlock(idx));
        mirror_.resize(blocks_.size());
    }

    /** Apply one step to both sides and compare all tracked state. */
    void step(const Step &s)
    {
        Addr addr = blocks_[s.blockIdx];
        history_ += (s.write ? " W" : " R") +
                    std::to_string(s.blockIdx) + "@p" +
                    std::to_string(s.proc);

        // The classification guard must agree before anything mutates.
        cache::AccessResult engineCls =
            engine_->cacheOf(s.proc).classify(addr, s.write);
        cache::AccessResult tableCls = ptable::classifyAccess(
            mirror_[s.blockIdx].line[s.proc], s.write);
        ASSERT_EQ(engineCls, tableCls) << "classify drift after" <<
            history_;

        coherence::AccessOutcome out;
        trace::TraceRecord ref{
            s.write ? trace::Op::Write : trace::Op::Read, addr};
        engine_->access(s.proc, ref, &out);

        switch (out.type) {
          case coherence::AccessOutcome::Type::Hit:
            break; // hits change no coherence state on either side
          case coherence::AccessOutcome::Type::Upgrade:
          case coherence::AccessOutcome::Type::Miss:
            ptable::applyAccess(mirror_[s.blockIdx], procs_, s.proc,
                                s.write);
            break;
          case coherence::AccessOutcome::Type::Instr:
            FAIL() << "data reference classified as Instr";
        }
        if (out.victimValid) {
            bool tracked = false;
            for (size_t i = 0; i < blocks_.size(); ++i) {
                if (blocks_[i] == out.victimBlock) {
                    ptable::applyEvict(mirror_[i], s.proc);
                    tracked = true;
                }
            }
            ASSERT_TRUE(tracked)
                << "victim outside the tracked set after" << history_;
        }
        compareAll();
    }

  private:
    void compareAll()
    {
        for (size_t i = 0; i < blocks_.size(); ++i) {
            const ptable::BlockState &bs = mirror_[i];
            for (NodeId q = 0; q < procs_; ++q) {
                ASSERT_EQ(engine_->cacheOf(q).state(blocks_[i]),
                          bs.line[q])
                    << "line state drift: block " << i << " proc " << q
                    << " after" << history_;
            }
            const coherence::MemState &ms =
                engine_->memState(blocks_[i]);
            ASSERT_EQ(ms.dirty, bs.dirty)
                << "dirty-bit drift: block " << i << " after"
                << history_;
            if (bs.dirty) {
                ASSERT_EQ(ms.owner, bs.owner)
                    << "owner drift: block " << i << " after"
                    << history_;
            }
            ASSERT_EQ(ms.presence,
                      static_cast<std::uint64_t>(bs.presence))
                << "presence drift: block " << i << " after"
                << history_;
        }
    }

    trace::AddressMap map_;
    unsigned procs_;
    std::unique_ptr<coherence::FunctionalEngine> engine_;
    std::vector<Addr> blocks_;
    std::vector<ptable::BlockState> mirror_;
    std::string history_;
};

/** Every sequence of @p depth steps drawn from @p moves. */
void
replayAllSequences(unsigned procs, const cache::Geometry &geom,
                   const std::vector<std::uint64_t> &sharedIndices,
                   const std::vector<Step> &moves, unsigned depth)
{
    std::vector<unsigned> pick(depth, 0);
    for (;;) {
        DriftHarness h(procs, geom, sharedIndices);
        for (unsigned d = 0; d < depth; ++d) {
            h.step(moves[pick[d]]);
            if (::testing::Test::HasFatalFailure())
                return;
        }
        // Odometer increment over the move alphabet.
        unsigned d = 0;
        while (d < depth && ++pick[d] == moves.size())
            pick[d++] = 0;
        if (d == depth)
            return;
    }
}

TEST(TableDrift, ClassifyGuardMatchesCacheTruthTable)
{
    cache::Geometry geom;
    geom.sizeBytes = 256;
    geom.blockBytes = 16;
    geom.assoc = 1;
    Addr addr = trace::AddressMap::sharedBase;

    for (bool write : {false, true}) {
        cache::CoherentCache inv(geom);
        EXPECT_EQ(inv.classify(addr, write),
                  ptable::classifyAccess(cache::State::Invalid, write));

        cache::CoherentCache rs(geom);
        rs.fill(addr, cache::State::ReadShared);
        EXPECT_EQ(rs.classify(addr, write),
                  ptable::classifyAccess(cache::State::ReadShared,
                                         write));

        cache::CoherentCache we(geom);
        we.fill(addr, cache::State::WriteExcl);
        EXPECT_EQ(we.classify(addr, write),
                  ptable::classifyAccess(cache::State::WriteExcl,
                                         write));
    }
}

TEST(TableDrift, ExhaustiveSingleBlockSequences)
{
    // 3 processors contending for one shared block, every sequence of
    // 5 accesses: 6^5 = 7776 engine-vs-table replays covering fills,
    // upgrades, downgrades, invalidation sweeps and ownership moves.
    cache::Geometry geom;
    geom.sizeBytes = 256;
    geom.blockBytes = 16;
    geom.assoc = 1;

    std::vector<Step> moves;
    for (NodeId p = 0; p < 3; ++p)
        for (bool w : {false, true})
            moves.push_back(Step{p, w, 0});
    replayAllSequences(3, geom, {0}, moves, 5);
}

TEST(TableDrift, ExhaustiveSequencesWithCapacityVictims)
{
    // A 2-line cache where shared blocks 0 and 2 map to the same set,
    // so sequences force replacements: silent RS victims must keep
    // their sticky presence bits, WE victims must write back. Every
    // sequence of 4 accesses over 2 procs x 2 ops x 2 blocks = 4096
    // replays.
    cache::Geometry geom;
    geom.sizeBytes = 32;
    geom.blockBytes = 16;
    geom.assoc = 1;

    std::vector<Step> moves;
    for (NodeId p = 0; p < 2; ++p)
        for (bool w : {false, true})
            for (unsigned b : {0u, 1u})
                moves.push_back(Step{p, w, b});
    replayAllSequences(2, geom, {0, 2}, moves, 4);
}

} // namespace
} // namespace ringsim
