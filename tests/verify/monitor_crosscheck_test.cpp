/**
 * @file
 * Cross-check between the two verification layers: the runtime
 * InvariantMonitor (watching the production engine execute) and the
 * static model checker (exploring the shared tables exhaustively).
 *
 * A deliberately broken transition — dropping the invalidation aimed
 * at one sharer, seeded through EngineOptions::TestHooks at runtime
 * and through ptable::Mutation::DropInvalidation statically — must be
 * flagged by BOTH layers, as the same invariant family (SWMR /
 * multiple writers). And with the fault seed off, both layers must
 * report the production protocol clean. This pins the two verdicts
 * together: if either layer ever stops seeing the protocol the other
 * one sees, one of these tests fails.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/cache/invariant_monitor.hpp"
#include "src/coherence/engine.hpp"
#include "src/core/protocol_table.hpp"
#include "src/trace/address_map.hpp"
#include "src/verify/model.hpp"

namespace ringsim {
namespace {

namespace ptable = core::ptable;

/** 3-node engine run: two readers, then a third node writes. */
cache::InvariantMonitor
runWriteOverSharers(bool dropOneInvalidation)
{
    cache::InvariantMonitor mon(cache::InvariantMonitor::Mode::Record);
    trace::AddressMap map(3, 16, 5);
    coherence::EngineOptions opt;
    opt.monitor = &mon;
    opt.hooks.dropOneInvalidation = dropOneInvalidation;
    coherence::FunctionalEngine engine(map, opt);

    Addr a = map.sharedBlock(0);
    engine.access(0, trace::TraceRecord{trace::Op::Read, a});
    engine.access(1, trace::TraceRecord{trace::Op::Read, a});
    // The write must invalidate both readers; with the hook on, the
    // sweep spares node 1, whose registered copy survives into the
    // writer's writeFill — the runtime twin of the static
    // DropInvalidation mutation.
    engine.access(2, trace::TraceRecord{trace::Op::Write, a});
    return mon;
}

verify::ModelReport
checkSnoop(ptable::Mutation m)
{
    verify::ModelConfig c;
    c.protocol = verify::Protocol::Snoop;
    c.nodes = 3;
    c.blocks = 1;
    c.fullInterleaving = false;
    c.mutation = m;
    return verify::checkProtocol(c);
}

TEST(MonitorCrosscheck, BothLayersFlagDroppedInvalidation)
{
    // Runtime layer: the monitor records the surviving stale copy.
    cache::InvariantMonitor mon = runWriteOverSharers(true);
    ASSERT_FALSE(mon.clean()) << "monitor missed the dropped "
                                 "invalidation";
    EXPECT_GE(mon.countOf(cache::Violation::Kind::MultipleWriters), 1u)
        << mon.summary();

    // Static layer: the model checker refutes the mutated table.
    verify::ModelReport rep =
        checkSnoop(ptable::Mutation::DropInvalidation);
    ASSERT_FALSE(rep.clean()) << "model checker missed "
                                 "DropInvalidation";
    bool swmr = false;
    for (const verify::Finding &f : rep.findings)
        swmr = swmr || f.kind == verify::Defect::MultipleWriters;
    EXPECT_TRUE(swmr) << rep.summary();

    // Same invariant family on both sides: the monitor's
    // MultipleWriters corresponds to the checker's MultipleWriters
    // defect, so a future drift in either layer breaks this pairing.
}

TEST(MonitorCrosscheck, BothLayersReportProductionTablesClean)
{
    cache::InvariantMonitor mon = runWriteOverSharers(false);
    EXPECT_TRUE(mon.clean()) << mon.summary();
    EXPECT_GT(mon.checksPerformed(), 0u)
        << "monitor saw no checks; the cross-check proves nothing";

    verify::ModelReport rep = checkSnoop(ptable::Mutation::None);
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(MonitorCrosscheck, MonitorDetailNamesTheSurvivingNode)
{
    cache::InvariantMonitor mon = runWriteOverSharers(true);
    ASSERT_FALSE(mon.clean());
    const cache::Violation &v = mon.violations().front();
    EXPECT_EQ(v.kind, cache::Violation::Kind::MultipleWriters);
    EXPECT_EQ(v.node, 2u); // the writer that gained WE
    EXPECT_NE(v.detail.find("WE"), std::string::npos) << v.detail;
}

} // namespace
} // namespace ringsim
