/**
 * @file
 * Tests of the service-lifecycle schedule explorer itself: every
 * configuration of the default matrix must verify clean, each
 * deliberately seeded mutation must be caught with the right defect
 * class, and every counterexample must carry a non-empty, numbered,
 * human-readable trace (the property the whole tool exists for — a
 * violation nobody can replay is useless).
 */

#include <gtest/gtest.h>

#include <string>

#include "src/verify/service_model.hpp"

namespace ringsim::verify {
namespace {

ServiceModelConfig
makeConfig(unsigned workers, unsigned depth,
           ServiceMutation mutation = ServiceMutation::None)
{
    ServiceModelConfig c;
    c.workers = workers;
    c.depth = depth;
    c.mutation = mutation;
    return c;
}

bool
hasDefect(const ServiceModelReport &r, ServiceDefect d)
{
    for (const ServiceFinding &f : r.findings)
        if (f.kind == d)
            return true;
    return false;
}

TEST(ServiceModel, CleanAcrossDefaultMatrix)
{
    for (unsigned workers : {1u, 2u}) {
        for (unsigned depth : {1u, 2u, 3u}) {
            ServiceModelReport r =
                checkServiceLifecycle(makeConfig(workers, depth));
            EXPECT_TRUE(r.clean()) << r.summary();
            EXPECT_FALSE(r.truncated) << r.summary();
            EXPECT_GT(r.states, 100u) << r.summary();
            EXPECT_GT(r.transitions, r.states) << r.summary();
            EXPECT_GT(r.quiescentStates, 0u) << r.summary();
        }
    }
}

TEST(ServiceModel, CleanWithEventClassesDisabled)
{
    // Turning event classes off must shrink the space, not break it:
    // the invariants hold in every sub-model too.
    ServiceModelConfig c = makeConfig(1, 2);
    c.cancels = false;
    c.disconnects = false;
    ServiceModelReport r = checkServiceLifecycle(c);
    EXPECT_TRUE(r.clean()) << r.summary();

    ServiceModelConfig minimal = makeConfig(1, 1);
    minimal.cancels = false;
    minimal.deadlines = false;
    minimal.watchdog = false;
    minimal.disconnects = false;
    minimal.degrades = false;
    ServiceModelReport plain = checkServiceLifecycle(minimal);
    EXPECT_TRUE(plain.clean()) << plain.summary();
    EXPECT_LT(plain.states, r.states);
}

TEST(ServiceModel, BadConfigsRejected)
{
    ServiceModelConfig c;
    c.jobs = 9;
    EXPECT_NE(c.check(), "");
    c = ServiceModelConfig{};
    c.workers = 0;
    EXPECT_NE(c.check(), "");
    c = ServiceModelConfig{};
    c.depth = 4;
    EXPECT_NE(c.check(), "");
    EXPECT_EQ(ServiceModelConfig{}.check(), "");
}

TEST(ServiceModel, MutationNamesRoundTrip)
{
    for (ServiceMutation m : allServiceMutations) {
        ServiceMutation parsed = ServiceMutation::None;
        ASSERT_TRUE(serviceMutationFromName(serviceMutationName(m),
                                            &parsed));
        EXPECT_EQ(parsed, m);
    }
    ServiceMutation parsed = ServiceMutation::None;
    EXPECT_FALSE(serviceMutationFromName("no-such-mutation",
                                         &parsed));
}

/** Every seeded mutation must be caught in the standard shape. */
TEST(ServiceModel, EveryMutationCaught)
{
    for (ServiceMutation m : allServiceMutations) {
        ServiceModelReport r =
            checkServiceLifecycle(makeConfig(1, 2, m));
        EXPECT_FALSE(r.clean())
            << "mutation " << serviceMutationName(m)
            << " escaped: " << r.summary();
        EXPECT_GT(r.violationsTotal, 0u);
        ASSERT_FALSE(r.findings.empty());
    }
}

/** Counterexamples must be replayable: a numbered event trace from
 *  the empty service to the violation. */
TEST(ServiceModel, CounterexamplesCarryReadableTraces)
{
    ServiceModelReport r = checkServiceLifecycle(
        makeConfig(1, 1, ServiceMutation::DropDrainRelease));
    ASSERT_FALSE(r.findings.empty());
    const ServiceFinding &f = r.findings.front();
    EXPECT_FALSE(f.detail.empty());
    ASSERT_FALSE(f.trace.empty());
    // Steps are numbered from 1 and describe concrete events.
    EXPECT_EQ(f.trace.front().rfind("1. ", 0), 0u)
        << f.trace.front();
    bool sawSubmit = false, sawDrain = false;
    for (const std::string &step : f.trace) {
        if (step.find("submit") != std::string::npos)
            sawSubmit = true;
        if (step.find("drain") != std::string::npos)
            sawDrain = true;
    }
    EXPECT_TRUE(sawSubmit) << "trace lacks the admitting submit";
    EXPECT_TRUE(sawDrain) << "trace lacks the mutated drain step";
}

TEST(ServiceModel, DropDrainReleaseLeaksSlot)
{
    ServiceModelReport r = checkServiceLifecycle(
        makeConfig(1, 2, ServiceMutation::DropDrainRelease));
    EXPECT_TRUE(hasDefect(r, ServiceDefect::SlotLeak) ||
                hasDefect(r, ServiceDefect::SlotDrift))
        << r.summary();
}

TEST(ServiceModel, DropLateReleaseLeaksSlot)
{
    ServiceModelReport r = checkServiceLifecycle(
        makeConfig(1, 2, ServiceMutation::DropLateRelease));
    EXPECT_TRUE(hasDefect(r, ServiceDefect::SlotLeak) ||
                hasDefect(r, ServiceDefect::SlotDrift))
        << r.summary();
}

TEST(ServiceModel, DoubleAnswerLateCaughtAsDoubleAnswer)
{
    ServiceModelReport r = checkServiceLifecycle(
        makeConfig(1, 2, ServiceMutation::DoubleAnswerLate));
    EXPECT_TRUE(hasDefect(r, ServiceDefect::DoubleAnswer))
        << r.summary();
}

TEST(ServiceModel, ShedLeaksSlotCaughtAsSlotViolation)
{
    // depth 1 with 3 jobs sheds constantly; the leaked slots pile up.
    ServiceModelReport r = checkServiceLifecycle(
        makeConfig(1, 1, ServiceMutation::ShedLeaksSlot));
    EXPECT_TRUE(hasDefect(r, ServiceDefect::SlotOverflow) ||
                hasDefect(r, ServiceDefect::SlotDrift) ||
                hasDefect(r, ServiceDefect::SlotLeak))
        << r.summary();
}

TEST(ServiceModel, SkipCancelAnswerLosesJob)
{
    ServiceModelReport r = checkServiceLifecycle(
        makeConfig(1, 2, ServiceMutation::SkipCancelAnswer));
    EXPECT_TRUE(hasDefect(r, ServiceDefect::LostJob)) << r.summary();
}

/** The mutation must not shrink coverage to a trivial space: the
 *  explorer keeps exploring past the first violation (up to the
 *  finding cap) so the report is informative. */
TEST(ServiceModel, MutatedRunsStillExplore)
{
    ServiceModelReport r = checkServiceLifecycle(
        makeConfig(2, 2, ServiceMutation::DropLateRelease));
    EXPECT_GT(r.states, 100u) << r.summary();
    EXPECT_FALSE(r.findings.empty());
}

} // namespace
} // namespace ringsim::verify
