/**
 * @file
 * Unit tests for the split-transaction bus model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/bus/split_bus.hpp"

namespace ringsim::bus {
namespace {

TEST(BusConfig, PaperCheckValues)
{
    BusConfig c; // 64-bit, 16-byte blocks
    c.validate();
    EXPECT_EQ(c.dataCycles(), 2u);
    EXPECT_EQ(c.responseCycles(), 4u);
    EXPECT_EQ(c.missCycles(), 6u)
        << "paper: minimum six bus cycles per remote miss";
}

TEST(BusConfig, WiderBlocksNeedMoreCycles)
{
    BusConfig c;
    c.blockBytes = 64;
    EXPECT_EQ(c.dataCycles(), 8u);
    c.widthBits = 32;
    EXPECT_EQ(c.dataCycles(), 16u);
}

TEST(BusConfigDeathTest, Validation)
{
    BusConfig c;
    c.widthBits = 12;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "width");
    c = BusConfig{};
    c.nodes = 0;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "node");
}

class SplitBusTest : public ::testing::Test
{
  protected:
    SplitBusTest() : bus_(kernel_, BusConfig{}) {}

    sim::Kernel kernel_;
    SplitBus bus_;
};

TEST_F(SplitBusTest, SingleTenureTiming)
{
    Tick start = 0, end = 0;
    bus_.request(0, 2, [&](Tick s, Tick e) {
        start = s;
        end = e;
    });
    kernel_.run();
    // One arbitration cycle, then two transfer cycles.
    EXPECT_EQ(start, 1u * 20000u);
    EXPECT_EQ(end, 3u * 20000u);
    EXPECT_EQ(bus_.tenures(), 1u);
    EXPECT_EQ(bus_.busyTime(), 2u * 20000u);
}

TEST_F(SplitBusTest, FcfsOrderAndNoOverlap)
{
    std::vector<std::pair<Tick, Tick>> grants;
    for (NodeId n = 0; n < 4; ++n) {
        bus_.request(n, 2, [&](Tick s, Tick e) {
            grants.emplace_back(s, e);
        });
    }
    kernel_.run();
    ASSERT_EQ(grants.size(), 4u);
    for (size_t i = 1; i < grants.size(); ++i)
        EXPECT_GE(grants[i].first, grants[i - 1].second)
            << "tenure " << i << " overlaps its predecessor";
}

TEST_F(SplitBusTest, QueueDelayGrowsUnderLoad)
{
    for (int i = 0; i < 8; ++i)
        bus_.request(0, 4, [](Tick, Tick) {});
    kernel_.run();
    EXPECT_GT(bus_.meanQueueDelay(), 0.0);
    EXPECT_EQ(bus_.tenures(), 8u);
}

TEST_F(SplitBusTest, LateRequestAlignsToClockEdge)
{
    Tick start = 0;
    kernel_.post(12345, [&]() {
        bus_.request(1, 1, [&](Tick s, Tick) { start = s; });
    });
    kernel_.run();
    EXPECT_EQ(start % 20000u, 0u) << "grants align to bus clock edges";
    EXPECT_GE(start, 12345u + 20000u) << "arbitration delay applies";
}

TEST_F(SplitBusTest, UtilizationAndReset)
{
    bus_.request(0, 5, [](Tick, Tick) {});
    kernel_.run();
    EXPECT_GT(bus_.utilization(), 0.0);
    bus_.resetStats();
    EXPECT_EQ(bus_.busyTime(), 0u);
    EXPECT_EQ(bus_.utilization(), 0.0);
}

TEST_F(SplitBusTest, BackToBackChaining)
{
    // A completion callback can issue the follow-up tenure (the
    // split-transaction response path).
    Tick response_end = 0;
    bus_.request(0, 2, [&](Tick, Tick) {
        bus_.request(1, 4, [&](Tick, Tick e) { response_end = e; });
    });
    kernel_.run();
    EXPECT_GT(response_end, 0u);
    EXPECT_EQ(bus_.tenures(), 2u);
}

TEST_F(SplitBusTest, DeathOnBadRequests)
{
    EXPECT_DEATH(bus_.request(99, 1, [](Tick, Tick) {}),
                 "out-of-range");
    EXPECT_DEATH(bus_.request(0, 0, [](Tick, Tick) {}), "zero");
}

} // namespace
} // namespace ringsim::bus
