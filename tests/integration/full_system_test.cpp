/**
 * @file
 * End-to-end integration tests: full timed systems with the coherence
 * checker enabled, across workloads and protocols, plus cross-checks
 * between the timed and functional engines.
 */

#include <gtest/gtest.h>

#include "src/coherence/driver.hpp"
#include "src/core/system.hpp"

namespace ringsim {
namespace {

trace::WorkloadConfig
workload(trace::Benchmark b, unsigned procs, Count refs)
{
    auto cfg = trace::workloadPreset(b, procs);
    cfg.dataRefsPerProc = refs;
    return cfg;
}

TEST(FullSystem, AllSplashWorkloadsRunCheckedOnBothRingProtocols)
{
    for (trace::Benchmark b : {trace::Benchmark::MP3D,
                               trace::Benchmark::WATER,
                               trace::Benchmark::CHOLESKY}) {
        for (unsigned procs : {8u, 16u}) {
            auto wl = workload(b, procs, 6000);
            auto cfg = core::RingSystemConfig::forProcs(procs);
            cfg.common.check = true;
            for (auto kind : {core::ProtocolKind::RingSnoop,
                              core::ProtocolKind::RingDirectory}) {
                core::RunResult r = core::runRingSystem(cfg, wl, kind);
                EXPECT_GT(r.procUtilization, 0.0)
                    << wl.displayName() << " "
                    << core::protocolName(kind);
            }
        }
    }
}

TEST(FullSystem, SixtyFourProcessorRunChecked)
{
    auto wl = workload(trace::Benchmark::FFT, 64, 3000);
    auto cfg = core::RingSystemConfig::forProcs(64);
    cfg.common.check = true;
    core::RunResult r =
        core::runRingSystem(cfg, wl, core::ProtocolKind::RingSnoop);
    EXPECT_GT(r.procUtilization, 0.0);
    EXPECT_GT(r.cleanMiss1 + r.dirtyMiss1, 0u);
}

TEST(FullSystem, BusChecked)
{
    auto wl = workload(trace::Benchmark::MP3D, 8, 6000);
    auto cfg = core::BusSystemConfig::forProcs(8);
    cfg.common.check = true;
    core::RunResult r = core::runBusSystem(cfg, wl);
    EXPECT_GT(r.procUtilization, 0.0);
}

TEST(FullSystem, TimedCensusMatchesFunctionalCounts)
{
    // The timed simulators apply state through the same functional
    // engine, so miss/upgrade totals agree with a functional pass up
    // to interleaving differences (round robin vs ring timing).
    auto wl = workload(trace::Benchmark::MP3D, 8, 15000);
    auto cfg = core::RingSystemConfig::forProcs(8);
    cfg.common.warmupFrac = 0.0;
    core::RunResult timed =
        core::runRingSystem(cfg, wl, core::ProtocolKind::RingSnoop);

    coherence::DriverOptions opt;
    opt.warmupFrac = 0.0;
    coherence::Census functional = coherence::runFunctional(wl, opt);

    // The timed window ends when the first processor finishes, so it
    // sees slightly fewer refs; compare rates, not counts.
    EXPECT_NEAR(timed.census.sharedMissRate(),
                functional.sharedMissRate(),
                0.15 * functional.sharedMissRate());
    EXPECT_NEAR(timed.census.sharedWriteFrac(),
                functional.sharedWriteFrac(), 0.03);
}

TEST(FullSystem, WarmupShrinksWindow)
{
    auto wl = workload(trace::Benchmark::WATER, 8, 12000);
    auto cfg = core::RingSystemConfig::forProcs(8);
    cfg.common.warmupFrac = 0.0;
    core::RunResult all =
        core::runRingSystem(cfg, wl, core::ProtocolKind::RingSnoop);
    cfg.common.warmupFrac = 0.5;
    core::RunResult half =
        core::runRingSystem(cfg, wl, core::ProtocolKind::RingSnoop);
    EXPECT_LT(half.window, all.window);
    EXPECT_GT(half.window, 0u);
}

TEST(FullSystem, UpgradeLatencyBelowMissLatency)
{
    // An invalidation carries no data: on the ring it is one probe
    // traversal, always cheaper than a miss (traversal + memory).
    for (auto kind : {core::ProtocolKind::RingSnoop,
                      core::ProtocolKind::RingDirectory}) {
        auto wl = workload(trace::Benchmark::MP3D, 8, 10000);
        auto cfg = core::RingSystemConfig::forProcs(8);
        core::RunResult r = core::runRingSystem(cfg, wl, kind);
        ASSERT_GT(r.upgrades, 0u);
        EXPECT_LT(r.upgradeLatencyNs, r.missLatencyNs)
            << core::protocolName(kind);
    }
}

TEST(FullSystem, RingUtilizationScalesWithMissRate)
{
    auto cfg = core::RingSystemConfig::forProcs(16);
    auto water = workload(trace::Benchmark::WATER, 16, 10000);
    auto mp3d = workload(trace::Benchmark::MP3D, 16, 10000);
    core::RunResult r_water =
        core::runRingSystem(cfg, water, core::ProtocolKind::RingSnoop);
    core::RunResult r_mp3d =
        core::runRingSystem(cfg, mp3d, core::ProtocolKind::RingSnoop);
    EXPECT_GT(r_mp3d.networkUtilization, r_water.networkUtilization);
}

TEST(FullSystem, DirectoryLocalMissesBypassTheRing)
{
    auto wl = workload(trace::Benchmark::CHOLESKY, 8, 10000);
    auto cfg = core::RingSystemConfig::forProcs(8);
    core::RunResult r = core::runRingSystem(
        cfg, wl, core::ProtocolKind::RingDirectory);
    EXPECT_GT(r.localMisses, 0u);
    // Local misses cost two bank accesses at most; remote ones add
    // at least a ring traversal.
    EXPECT_LT(r.missLatencyAllNs, r.missLatencyNs);
}

} // namespace
} // namespace ringsim
