/**
 * @file
 * Property-based (parameterized) suites: protocol invariants that
 * must hold across node counts, block sizes, seeds and protocols.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/coherence/driver.hpp"
#include "src/core/system.hpp"

namespace ringsim {
namespace {

// ---------------------------------------------------------------
// Invariants of the functional engine across (procs, seed).
// ---------------------------------------------------------------

using EngineParam = std::tuple<unsigned, std::uint64_t>;

class EngineProperty : public ::testing::TestWithParam<EngineParam>
{
  protected:
    coherence::Census
    run(trace::Benchmark b)
    {
        auto [procs, seed] = GetParam();
        auto cfg = trace::workloadPreset(b, procs);
        cfg.dataRefsPerProc = 6000;
        cfg.seed = seed;
        coherence::DriverOptions opt;
        opt.check = true; // the checker itself is the main assertion
        return coherence::runFunctional(cfg, opt);
    }
};

TEST_P(EngineProperty, CheckerHoldsAndBucketsAreConsistent)
{
    for (trace::Benchmark b : {trace::Benchmark::MP3D,
                               trace::Benchmark::WATER,
                               trace::Benchmark::CHOLESKY}) {
        coherence::Census c = run(b);

        // Snooping: single traversal, always.
        EXPECT_EQ(c.snoop.missTraversals[2], 0u);
        EXPECT_EQ(c.snoop.missTraversals[3], 0u);
        EXPECT_EQ(c.snoop.invTraversals[2], 0u);

        // Full map: never more than two traversals.
        EXPECT_EQ(c.fullMap.missTraversals[3], 0u);
        EXPECT_EQ(c.fullMap.invTraversals[3], 0u);

        // Figure 5 classes partition the full-map remote misses.
        EXPECT_EQ(c.fullMap.cleanMiss1 + c.fullMap.dirtyMiss1 +
                      c.fullMap.miss2,
                  c.fullMap.remoteMisses());

        // Total transactions agree across protocol scorings.
        Count snoop_misses = c.snoop.missTraversals[0] +
                             c.snoop.missTraversals[1];
        Count map_misses = c.fullMap.missTraversals[0] +
                           c.fullMap.remoteMisses();
        Count list_misses = c.linkedList.missTraversals[0] +
                            c.linkedList.remoteMisses();
        EXPECT_EQ(snoop_misses, map_misses);
        EXPECT_EQ(map_misses, list_misses);
        EXPECT_EQ(map_misses, c.misses());
    }
}

TEST_P(EngineProperty, MessageAccountingIsSane)
{
    coherence::Census c = run(trace::Benchmark::MP3D);
    for (const coherence::ProtocolCensus *pc :
         {&c.snoop, &c.fullMap, &c.linkedList}) {
        // Mean probe mileage is at most one full loop.
        if (pc->probes) {
            double mean_hops =
                pc->probeHops / static_cast<double>(pc->probes);
            EXPECT_GT(mean_hops, 0.0);
            EXPECT_LE(mean_hops, static_cast<double>(c.procs));
        }
        if (pc->blocks) {
            double mean_hops =
                pc->blockHops / static_cast<double>(pc->blocks);
            EXPECT_GT(mean_hops, 0.0);
            EXPECT_LE(mean_hops, static_cast<double>(c.procs));
        }
    }
    // Snoop probes travel exactly the whole ring.
    if (c.snoop.probes) {
        EXPECT_DOUBLE_EQ(
            c.snoop.probeHops / static_cast<double>(c.snoop.probes),
            static_cast<double>(c.procs));
    }
}

INSTANTIATE_TEST_SUITE_P(
    ProcsAndSeeds, EngineProperty,
    ::testing::Combine(::testing::Values(8u, 16u, 32u),
                       ::testing::Values(1u, 42u, 20260704u)));

// ---------------------------------------------------------------
// Ring geometry properties across node counts and block sizes.
// ---------------------------------------------------------------

using GeomParam = std::tuple<unsigned, size_t, unsigned>;

class RingGeometry : public ::testing::TestWithParam<GeomParam>
{
};

TEST_P(RingGeometry, StageInvariants)
{
    auto [nodes, block_bytes, link_bits] = GetParam();
    ring::RingConfig cfg;
    cfg.nodes = nodes;
    cfg.frame.blockBytes = block_bytes;
    cfg.frame.linkBits = link_bits;
    // The 2-node shape is below the paper's 8-64 evaluation range.
    cfg.allowNonPaperScale = true;
    cfg.validate();

    // Whole frames, enough stages for every node, positions distinct.
    EXPECT_EQ(cfg.totalStages() % cfg.frame.frameStages(), 0u);
    EXPECT_GE(cfg.totalStages(), nodes * cfg.minStagesPerNode);
    EXPECT_LT(cfg.totalStages(),
              nodes * cfg.minStagesPerNode + cfg.frame.frameStages());
    for (NodeId a = 0; a < nodes; ++a)
        for (NodeId b = a + 1; b < nodes; ++b)
            EXPECT_NE(cfg.nodePosition(a), cfg.nodePosition(b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingGeometry,
    ::testing::Combine(::testing::Values(2u, 8u, 16u, 32u, 64u),
                       ::testing::Values(size_t(16), size_t(32),
                                         size_t(64)),
                       ::testing::Values(16u, 32u, 64u)));

// ---------------------------------------------------------------
// Timed-system invariants across protocols and sizes (checker on).
// ---------------------------------------------------------------

using SystemParam = std::tuple<core::ProtocolKind, unsigned>;

class TimedSystemProperty
    : public ::testing::TestWithParam<SystemParam>
{
};

TEST_P(TimedSystemProperty, CheckedRunWithSaneMetrics)
{
    auto [kind, procs] = GetParam();
    auto wl = trace::workloadPreset(trace::Benchmark::MP3D, procs);
    wl.dataRefsPerProc = 5000;

    core::RunResult r;
    if (kind == core::ProtocolKind::BusSnoop) {
        auto cfg = core::BusSystemConfig::forProcs(procs);
        cfg.common.check = true;
        r = core::runBusSystem(cfg, wl);
    } else {
        auto cfg = core::RingSystemConfig::forProcs(procs);
        cfg.common.check = true;
        r = core::runRingSystem(cfg, wl, kind);
    }

    EXPECT_GT(r.procUtilization, 0.0);
    EXPECT_LE(r.procUtilization, 1.0);
    EXPECT_GE(r.networkUtilization, 0.0);
    EXPECT_LE(r.networkUtilization, 1.0);
    EXPECT_GT(r.window, 0u);
    EXPECT_GT(r.missLatencyNs, 0.0);
    // Latency floor: nothing beats one memory access.
    EXPECT_GE(r.missLatencyNs, 140.0);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAndSizes, TimedSystemProperty,
    ::testing::Combine(
        ::testing::Values(core::ProtocolKind::RingSnoop,
                          core::ProtocolKind::RingDirectory,
                          core::ProtocolKind::BusSnoop),
        ::testing::Values(8u, 16u, 32u)));

// ---------------------------------------------------------------
// Block-size sensitivity: larger blocks, fewer frames, same math.
// ---------------------------------------------------------------

class BlockSizeProperty : public ::testing::TestWithParam<size_t>
{
};

TEST_P(BlockSizeProperty, CheckedSnoopRunAtAnyBlockSize)
{
    size_t block = GetParam();
    auto wl = trace::workloadPreset(trace::Benchmark::CHOLESKY, 8);
    wl.dataRefsPerProc = 4000;
    wl.blockBytes = block;

    auto cfg = core::RingSystemConfig::forProcs(8);
    cfg.common.cacheGeometry.blockBytes = block;
    cfg.ring.frame.blockBytes = block;
    cfg.common.check = true;
    core::RunResult r =
        core::runRingSystem(cfg, wl, core::ProtocolKind::RingSnoop);
    EXPECT_GT(r.procUtilization, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeProperty,
                         ::testing::Values(size_t(16), size_t(32),
                                           size_t(64)));

} // namespace
} // namespace ringsim
