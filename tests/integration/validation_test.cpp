/**
 * @file
 * Hybrid-methodology validation: the analytic models must reproduce
 * the detailed simulator within the paper's claimed tolerances —
 * "within 15% of the simulated values for latencies, and within 5%
 * for processor and network utilizations" (Section 4.0) — at the
 * calibration operating point. Near bus saturation the M/G/1 wait is
 * known to be optimistic, so the bus latency check uses the unloaded
 * workloads.
 */

#include <gtest/gtest.h>

#include "src/core/system.hpp"
#include "src/model/bus_model.hpp"
#include "src/model/calibration.hpp"
#include "src/model/ring_model.hpp"

namespace ringsim {
namespace {

trace::WorkloadConfig
workload(trace::Benchmark b, unsigned procs)
{
    auto cfg = trace::workloadPreset(b, procs);
    cfg.dataRefsPerProc = 25000;
    return cfg;
}

void
expectWithin(double model_value, double sim_value, double rel,
             const char *what)
{
    ASSERT_GT(sim_value, 0.0) << what;
    EXPECT_NEAR(model_value, sim_value, rel * sim_value) << what;
}

class RingValidation
    : public ::testing::TestWithParam<
          std::tuple<trace::Benchmark, unsigned, model::RingProtocol>>
{
};

TEST_P(RingValidation, ModelTracksSimulation)
{
    auto [b, procs, proto] = GetParam();
    auto wl = workload(b, procs);
    coherence::Census census = model::calibrate(wl);

    auto cfg = core::RingSystemConfig::forProcs(procs);
    core::ProtocolKind kind = proto == model::RingProtocol::Snoop
        ? core::ProtocolKind::RingSnoop
        : core::ProtocolKind::RingDirectory;
    core::RunResult sim = core::runRingSystem(cfg, wl, kind);

    model::RingModelInput in;
    in.census = census;
    in.ring = cfg.ring;
    in.system = cfg.common;
    in.protocol = proto;
    model::ModelResult m = model::solveRing(in);

    // Paper tolerances: 5% on utilizations (absolute here, which is
    // stricter than relative for the small ring numbers), 15% on
    // latencies.
    EXPECT_NEAR(m.procUtilization, sim.procUtilization, 0.05);
    EXPECT_NEAR(m.networkUtilization, sim.networkUtilization, 0.05);
    expectWithin(m.missLatencyNs, sim.missLatencyNs, 0.15,
                 "miss latency");
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RingValidation,
    ::testing::Combine(
        ::testing::Values(trace::Benchmark::MP3D,
                          trace::Benchmark::WATER,
                          trace::Benchmark::CHOLESKY),
        ::testing::Values(8u, 16u),
        ::testing::Values(model::RingProtocol::Snoop,
                          model::RingProtocol::Directory)));

class BusValidation
    : public ::testing::TestWithParam<
          std::tuple<trace::Benchmark, unsigned>>
{
};

TEST_P(BusValidation, ModelTracksSimulation)
{
    auto [b, procs] = GetParam();
    auto wl = workload(b, procs);
    coherence::Census census = model::calibrate(wl);

    auto cfg = core::BusSystemConfig::forProcs(procs);
    core::RunResult sim = core::runBusSystem(cfg, wl);

    model::BusModelInput in;
    in.census = census;
    in.bus = cfg.bus;
    in.system = cfg.common;
    model::ModelResult m = model::solveBus(in);

    // Near saturation the open M/G/1 wait is optimistic (correlated
    // request/response arrivals); the tolerances widen there, as
    // documented in EXPERIMENTS.md.
    bool saturated = sim.networkUtilization >= 0.6;
    EXPECT_NEAR(m.procUtilization, sim.procUtilization,
                saturated ? 0.08 : 0.05);
    double util_tol = saturated ? 0.15 : 0.06;
    EXPECT_NEAR(m.networkUtilization, sim.networkUtilization,
                util_tol);
    if (sim.networkUtilization < 0.5) {
        expectWithin(m.missLatencyNs, sim.missLatencyNs, 0.15,
                     "bus miss latency");
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BusValidation,
    ::testing::Combine(::testing::Values(trace::Benchmark::MP3D,
                                         trace::Benchmark::WATER),
                       ::testing::Values(8u, 16u)));

TEST(Validation, HeadlineResultHolds)
{
    // Contrary to the era's common wisdom: snooping beats the
    // directory on the ring for MP3D at every size (Section 6).
    for (unsigned procs : {8u, 16u, 32u}) {
        auto wl = workload(trace::Benchmark::MP3D, procs);
        coherence::Census census = model::calibrate(wl);
        for (double cycle_ns : {20.0, 10.0, 5.0}) {
            model::RingModelInput in;
            in.census = census;
            in.ring = core::RingSystemConfig::forProcs(procs).ring;
            in.system.procCycle = nsToTicks(cycle_ns);
            in.protocol = model::RingProtocol::Snoop;
            double snoop = model::solveRing(in).procUtilization;
            in.protocol = model::RingProtocol::Directory;
            double dir = model::solveRing(in).procUtilization;
            EXPECT_GT(snoop, dir)
                << procs << " procs @ " << cycle_ns << " ns";
        }
    }
}

TEST(Validation, RingOutlastsBusAsProcessorsSpeedUp)
{
    // Figure 6 crossover: at 8 CPUs the 50 MHz bus is competitive
    // with the 250 MHz ring for slow processors but falls behind for
    // fast ones (MP3D).
    auto wl = workload(trace::Benchmark::MP3D, 8);
    coherence::Census census = model::calibrate(wl);

    auto ring_util = [&](double cycle_ns) {
        model::RingModelInput in;
        in.census = census;
        in.ring = core::RingSystemConfig::forProcs(8, 4000).ring;
        in.system.procCycle = nsToTicks(cycle_ns);
        in.protocol = model::RingProtocol::Snoop;
        return model::solveRing(in).procUtilization;
    };
    auto bus_util = [&](double cycle_ns) {
        model::BusModelInput in;
        in.census = census;
        in.bus = core::BusSystemConfig::forProcs(8, 20000).bus;
        in.system.procCycle = nsToTicks(cycle_ns);
        return model::solveBus(in).procUtilization;
    };

    // Slow processors: the bus is competitive; fast processors: it
    // falls behind. The *relative* gap must widen markedly.
    double slow_ratio = bus_util(20.0) / ring_util(20.0);
    double fast_ratio = bus_util(2.0) / ring_util(2.0);
    EXPECT_GT(slow_ratio, 0.8);
    EXPECT_LT(fast_ratio, slow_ratio - 0.1);
}

TEST(Validation, RingNeverSaturatesInPaperConfigs)
{
    // Section 6: "the network never saturates in the configurations
    // we have simulated" — ring utilization stays under 80%.
    for (trace::Benchmark b : {trace::Benchmark::MP3D,
                               trace::Benchmark::WATER,
                               trace::Benchmark::CHOLESKY}) {
        for (unsigned procs : {8u, 16u, 32u}) {
            auto wl = workload(b, procs);
            coherence::Census census = model::calibrate(wl);
            model::RingModelInput in;
            in.census = census;
            in.ring = core::RingSystemConfig::forProcs(procs).ring;
            in.system.procCycle = nsToTicks(1.0); // 1000 MIPS
            in.protocol = model::RingProtocol::Snoop;
            model::ModelResult r = model::solveRing(in);
            EXPECT_LT(r.networkUtilization, 0.85)
                << trace::benchmarkName(b) << " " << procs;
        }
    }
}

} // namespace
} // namespace ringsim
