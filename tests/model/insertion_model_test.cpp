/**
 * @file
 * Unit tests for the register-insertion ring model and the
 * slotted-vs-insertion comparison it supports.
 */

#include <gtest/gtest.h>

#include "src/model/calibration.hpp"
#include "src/model/insertion_model.hpp"

namespace ringsim::model {
namespace {

RingModelInput
input(trace::Benchmark b, unsigned procs, double cycle_ns)
{
    auto cfg = trace::workloadPreset(b, procs);
    cfg.dataRefsPerProc = 20000;
    RingModelInput in;
    in.census = calibrate(cfg);
    in.ring = core::RingSystemConfig::forProcs(procs).ring;
    in.system.procCycle = nsToTicks(cycle_ns);
    in.protocol = RingProtocol::Directory;
    return in;
}

TEST(InsertionModel, Converges)
{
    ModelResult r =
        solveInsertionRing(input(trace::Benchmark::MP3D, 16, 20));
    EXPECT_LT(r.iterations, 500u);
    EXPECT_GT(r.procUtilization, 0.0);
    EXPECT_LE(r.procUtilization, 1.0);
    EXPECT_FALSE(r.saturated);
}

TEST(InsertionModel, FasterAccessAtLightLoad)
{
    // Section 2's intuition: under light load the insertion ring's
    // access time beats the slotted ring's slot-residual wait.
    auto in = input(trace::Benchmark::WATER, 16, 20);
    ModelResult slotted = solveRing(in);
    ModelResult inserted = solveInsertionRing(in);
    ASSERT_LT(slotted.networkUtilization, 0.1);
    EXPECT_LT(inserted.missLatencyNs, slotted.missLatencyNs);
    // The advantage is bounded by about one frame residual per
    // message leg (a few slot acquisitions per miss).
    EXPECT_GT(inserted.missLatencyNs,
              slotted.missLatencyNs - 4 * 20.0);
}

TEST(InsertionModel, LoadGrowsFasterThanSlotted)
{
    // The insertion ring pays for its light-load advantage with
    // steeper queueing growth as processors speed up.
    auto in = input(trace::Benchmark::MP3D, 32, 20);
    ModelResult ins_slow = solveInsertionRing(in);
    in.system.procCycle = nsToTicks(1.0);
    ModelResult ins_fast = solveInsertionRing(in);
    EXPECT_GT(ins_fast.networkUtilization,
              ins_slow.networkUtilization);
    EXPECT_GT(ins_fast.missLatencyNs, ins_slow.missLatencyNs);
}

TEST(InsertionModelDeathTest, SnoopingRejected)
{
    auto in = input(trace::Benchmark::MP3D, 16, 20);
    in.protocol = RingProtocol::Snoop;
    EXPECT_EXIT(solveInsertionRing(in), testing::ExitedWithCode(1),
                "cannot support snooping");
}

TEST(InsertionModelDeathTest, MismatchedSizesFatal)
{
    auto in = input(trace::Benchmark::MP3D, 16, 20);
    in.ring.nodes = 8;
    EXPECT_EXIT(solveInsertionRing(in), testing::ExitedWithCode(1),
                "census");
}

} // namespace
} // namespace ringsim::model
