/**
 * @file
 * Unit tests for the ring analytic model: convergence, limits and
 * monotonicity properties.
 */

#include <gtest/gtest.h>

#include "src/model/calibration.hpp"
#include "src/model/ring_model.hpp"

namespace ringsim::model {
namespace {

coherence::Census
census(trace::Benchmark b, unsigned procs)
{
    auto cfg = trace::workloadPreset(b, procs);
    cfg.dataRefsPerProc = 20000;
    return calibrate(cfg);
}

RingModelInput
input(trace::Benchmark b, unsigned procs, double cycle_ns,
      RingProtocol proto)
{
    RingModelInput in;
    in.census = census(b, procs);
    in.ring = core::RingSystemConfig::forProcs(procs).ring;
    in.system.procCycle = nsToTicks(cycle_ns);
    in.protocol = proto;
    return in;
}

TEST(RingModel, Converges)
{
    ModelResult r = solveRing(
        input(trace::Benchmark::MP3D, 8, 20, RingProtocol::Snoop));
    EXPECT_LT(r.iterations, 500u);
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.procUtilization, 0.0);
    EXPECT_LE(r.procUtilization, 1.0);
}

TEST(RingModel, UtilizationFallsWithFasterProcessors)
{
    auto in = input(trace::Benchmark::MP3D, 16, 20,
                    RingProtocol::Snoop);
    double prev = 2.0;
    for (double cyc : {20.0, 10.0, 5.0, 2.0, 1.0}) {
        in.system.procCycle = nsToTicks(cyc);
        ModelResult r = solveRing(in);
        EXPECT_LT(r.procUtilization, prev) << "cycle " << cyc;
        prev = r.procUtilization;
    }
}

TEST(RingModel, NetworkLoadRisesWithFasterProcessors)
{
    auto in = input(trace::Benchmark::MP3D, 16, 20,
                    RingProtocol::Snoop);
    ModelResult slow = solveRing(in);
    in.system.procCycle = nsToTicks(2);
    ModelResult fast = solveRing(in);
    EXPECT_GT(fast.networkUtilization, slow.networkUtilization);
    EXPECT_GE(fast.missLatencyNs, slow.missLatencyNs);
}

TEST(RingModel, SnoopLatencyBelowDirectoryAtLowLoad)
{
    // Section 4.2: below ~70% ring utilization snooping's latency is
    // lower than the directory's.
    for (auto b : {trace::Benchmark::MP3D, trace::Benchmark::WATER,
                   trace::Benchmark::CHOLESKY}) {
        ModelResult snoop =
            solveRing(input(b, 16, 20, RingProtocol::Snoop));
        ModelResult dir =
            solveRing(input(b, 16, 20, RingProtocol::Directory));
        ASSERT_LT(snoop.networkUtilization, 0.7);
        EXPECT_LT(snoop.missLatencyNs, dir.missLatencyNs)
            << trace::benchmarkName(b);
    }
}

TEST(RingModel, SlowerRingRaisesLatency)
{
    auto in = input(trace::Benchmark::WATER, 8, 20,
                    RingProtocol::Snoop);
    ModelResult r500 = solveRing(in);
    in.ring = core::RingSystemConfig::forProcs(8, 4000).ring;
    ModelResult r250 = solveRing(in);
    EXPECT_GT(r250.missLatencyNs, r500.missLatencyNs);
    EXPECT_LT(r250.procUtilization, r500.procUtilization);
}

TEST(RingModel, PureLatencyFloor)
{
    // At idle, a snoop remote miss is bounded below by round trip +
    // memory access.
    ModelResult r = solveRing(
        input(trace::Benchmark::WATER, 8, 20, RingProtocol::Snoop));
    auto ring = core::RingSystemConfig::forProcs(8).ring;
    double floor_ns =
        ticksToNs(ring.roundTripTime()) + 140.0;
    EXPECT_GE(r.missLatencyNs, floor_ns);
}

TEST(RingModel, SaturationFlaggedAtExtremeLoad)
{
    // A pathological ring (tiny bandwidth) must be reported saturated,
    // not diverge.
    auto in = input(trace::Benchmark::MP3D, 32, 1,
                    RingProtocol::Snoop);
    in.ring.clockPeriod = 50000; // 20 MHz ring
    ModelResult r = solveRing(in);
    EXPECT_TRUE(r.saturated);
    EXPECT_GT(r.missLatencyNs, 1000.0);
}

TEST(RingModelDeathTest, MismatchedSizesFatal)
{
    auto in = input(trace::Benchmark::MP3D, 8, 20, RingProtocol::Snoop);
    in.ring.nodes = 16;
    EXPECT_EXIT(solveRing(in), testing::ExitedWithCode(1), "census");
}

} // namespace
} // namespace ringsim::model
