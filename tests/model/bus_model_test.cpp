/**
 * @file
 * Unit tests for the bus analytic model.
 */

#include <gtest/gtest.h>

#include "src/model/bus_model.hpp"
#include "src/model/calibration.hpp"

namespace ringsim::model {
namespace {

BusModelInput
input(trace::Benchmark b, unsigned procs, double cycle_ns,
      Tick bus_period = 20000)
{
    auto cfg = trace::workloadPreset(b, procs);
    cfg.dataRefsPerProc = 20000;
    BusModelInput in;
    in.census = calibrate(cfg);
    in.bus = core::BusSystemConfig::forProcs(procs, bus_period).bus;
    in.system.procCycle = nsToTicks(cycle_ns);
    return in;
}

TEST(BusModel, Converges)
{
    ModelResult r = solveBus(input(trace::Benchmark::MP3D, 8, 20));
    EXPECT_LT(r.iterations, 1000u);
    EXPECT_GT(r.procUtilization, 0.0);
    EXPECT_LE(r.procUtilization, 1.0);
    EXPECT_LE(r.networkUtilization, 1.0);
}

TEST(BusModel, ClosedLoopKeepsRhoBelowOne)
{
    // Even with absurdly fast processors the closed-queue fixed point
    // keeps the work-conserving bus at (not beyond) saturation.
    ModelResult r = solveBus(input(trace::Benchmark::MP3D, 32, 1));
    EXPECT_LE(r.networkUtilization, 1.0);
    EXPECT_TRUE(r.saturated);
}

TEST(BusModel, FasterBusIsBetter)
{
    ModelResult slow =
        solveBus(input(trace::Benchmark::MP3D, 16, 5, 20000));
    ModelResult fast =
        solveBus(input(trace::Benchmark::MP3D, 16, 5, 10000));
    EXPECT_GT(fast.procUtilization, slow.procUtilization);
    EXPECT_LT(fast.missLatencyNs, slow.missLatencyNs);
}

TEST(BusModel, LoadGrowsWithSystemSize)
{
    ModelResult small = solveBus(input(trace::Benchmark::MP3D, 8, 20));
    ModelResult big = solveBus(input(trace::Benchmark::MP3D, 32, 20));
    EXPECT_GT(big.networkUtilization, small.networkUtilization);
    EXPECT_LT(big.procUtilization, small.procUtilization);
}

TEST(BusModel, WaterBarelyLoadsTheBus)
{
    ModelResult r = solveBus(input(trace::Benchmark::WATER, 8, 20));
    EXPECT_LT(r.networkUtilization, 0.2);
    EXPECT_GT(r.procUtilization, 0.9);
}

TEST(BusModel, MissLatencyFloor)
{
    // Six bus cycles + memory access is the absolute floor.
    ModelResult r = solveBus(input(trace::Benchmark::WATER, 8, 20));
    EXPECT_GE(r.missLatencyNs, 6 * 20.0 + 140.0);
}

TEST(BusModelDeathTest, MismatchedSizesFatal)
{
    auto in = input(trace::Benchmark::MP3D, 8, 20);
    in.bus.nodes = 16;
    EXPECT_EXIT(solveBus(in), testing::ExitedWithCode(1), "census");
}

} // namespace
} // namespace ringsim::model
