/**
 * @file
 * Unit tests for the Table 4 bus-clock matcher.
 */

#include <gtest/gtest.h>

#include "src/model/calibration.hpp"
#include "src/model/matcher.hpp"

namespace ringsim::model {
namespace {

BusModelInput
busInput(trace::Benchmark b, unsigned procs, double cycle_ns)
{
    auto cfg = trace::workloadPreset(b, procs);
    cfg.dataRefsPerProc = 20000;
    BusModelInput in;
    in.census = calibrate(cfg);
    in.bus = core::BusSystemConfig::forProcs(procs).bus;
    in.system.procCycle = nsToTicks(cycle_ns);
    return in;
}

TEST(Matcher, MatchedClockReproducesTarget)
{
    BusModelInput in = busInput(trace::Benchmark::MP3D, 16, 10);
    double target = 0.6;
    double period_ns = matchBusClock(in, target);
    in.bus.clockPeriod = nsToTicks(period_ns);
    ModelResult r = solveBus(in);
    EXPECT_NEAR(r.procUtilization, target, 0.01);
}

TEST(Matcher, FasterRingNeedsFasterBus)
{
    // Table 4 shape: matching a 500 MHz ring takes a faster bus than
    // matching a 250 MHz ring.
    BusModelInput in = busInput(trace::Benchmark::MP3D, 16, 10);

    RingModelInput ring_in;
    ring_in.census = in.census;
    ring_in.system = in.system;
    ring_in.protocol = RingProtocol::Snoop;

    ring_in.ring = core::RingSystemConfig::forProcs(16, 4000).ring;
    double util250 = solveRing(ring_in).procUtilization;
    ring_in.ring = core::RingSystemConfig::forProcs(16, 2000).ring;
    double util500 = solveRing(ring_in).procUtilization;
    ASSERT_GT(util500, util250);

    double bus250 = matchBusClock(in, util250);
    double bus500 = matchBusClock(in, util500);
    EXPECT_LT(bus500, bus250);
}

TEST(Matcher, DemandGrowsWithProcessorSpeed)
{
    // Faster processors demand a faster matching bus.
    BusModelInput in10 = busInput(trace::Benchmark::MP3D, 16, 10);
    BusModelInput in25 = busInput(trace::Benchmark::MP3D, 16, 2.5);

    RingModelInput ring_in;
    ring_in.census = in10.census;
    ring_in.ring = core::RingSystemConfig::forProcs(16).ring;
    ring_in.protocol = RingProtocol::Snoop;

    ring_in.system.procCycle = nsToTicks(10);
    double t10 = solveRing(ring_in).procUtilization;
    ring_in.system.procCycle = nsToTicks(2.5);
    double t25 = solveRing(ring_in).procUtilization;

    double b10 = matchBusClock(in10, t10);
    double b25 = matchBusClock(in25, t25);
    EXPECT_LT(b25, b10);
}

TEST(Matcher, BracketEdges)
{
    BusModelInput in = busInput(trace::Benchmark::WATER, 8, 20);
    // A trivially low target: even the slowest bus exceeds it.
    EXPECT_DOUBLE_EQ(matchBusClock(in, 0.0001, 1.0, 500.0), 500.0);
    // An impossible target: even the fastest bus cannot reach it.
    EXPECT_DOUBLE_EQ(matchBusClock(in, 0.999999, 1.0, 500.0), 1.0);
}

TEST(MatcherDeathTest, BadBracketFatal)
{
    BusModelInput in = busInput(trace::Benchmark::WATER, 8, 20);
    EXPECT_EXIT(matchBusClock(in, 0.5, 10.0, 5.0),
                testing::ExitedWithCode(1), "bracket");
}

} // namespace
} // namespace ringsim::model
