/**
 * @file
 * Two-tier content-addressed result cache with crash-safe recovery.
 *
 * Tier 1 is an in-memory LRU bounded by entry count; tier 2 is an
 * on-disk store (one file per key, written atomically via a temp file
 * and rename) that survives daemon restarts. A disk hit is promoted
 * into memory. Keys are the 32-hex-char fingerprints produced by
 * cacheKey(), so invalidation-by-salt needs no sweep: entries written
 * under an old salt are simply never looked up again.
 *
 * Crash safety: every disk entry is framed with a header carrying the
 * payload length and a 64-bit content checksum ("RSC1 <len> <hex>\n").
 * Reads verify the frame; a torn, truncated, bit-flipped or
 * foreign-format file is *quarantined* (renamed aside with a
 * ".quarantined" suffix) and treated as a miss, so a corrupt entry
 * costs one recomputation, never a wrong answer. A startup scan walks
 * the store, quarantines anything unreadable and removes temp-file
 * leftovers, so a SIGKILL'd daemon restarts to a warm, consistent
 * cache.
 *
 * Chaos hooks: an attached fault::ServiceFaultInjector may tear or
 * bit-flip entries immediately after publication — the recovery path
 * above is exactly what those faults exercise.
 *
 * Thread-safe; every method may be called from any worker or
 * connection thread. Lock discipline is annotated for Clang Thread
 * Safety Analysis (core/thread_annotations.hpp): mutex_ guards the
 * memory tier and counters; disk I/O always happens *outside* the
 * lock, so a slow or chaos-stalled disk never blocks concurrent
 * memory-tier hits.
 */

#ifndef RINGSIM_SERVICE_RESULT_CACHE_HPP
#define RINGSIM_SERVICE_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/thread_annotations.hpp"
#include "util/units.hpp"

namespace ringsim::fault {
class ServiceFaultInjector;
}

namespace ringsim::service {

/** Hit/miss/eviction/recovery counters of one cache instance. */
struct CacheStats
{
    Count memHits = 0;
    Count diskHits = 0;
    Count misses = 0;
    Count stores = 0;
    Count evictions = 0;
    Count diskErrors = 0;
    Count quarantined = 0; //!< corrupt entries renamed aside
    Count scanned = 0;     //!< entries verified by the startup scan
    Count tmpCleaned = 0;  //!< orphaned temp files removed at startup
};

class ResultCache
{
  public:
    /**
     * @param mem_entries in-memory LRU capacity (>= 1).
     * @param dir on-disk store directory (created if missing);
     *            empty disables the disk tier. A non-empty dir is
     *            scanned on construction (see scanDisk()).
     */
    ResultCache(std::size_t mem_entries, std::string dir);

    /** Cached value of @p key, or nullopt. Counts the hit/miss. */
    std::optional<std::string> get(const std::string &key)
        EXCLUDES(mutex_);

    /** Store @p value under @p key in both tiers. */
    void put(const std::string &key, const std::string &value)
        EXCLUDES(mutex_);

    /** Entries currently held in memory. */
    std::size_t memEntries() const EXCLUDES(mutex_);

    /** Counter snapshot. */
    CacheStats stats() const EXCLUDES(mutex_);

    /** On-disk path of @p key ("" when the disk tier is off). */
    std::string diskPath(const std::string &key) const;

    /**
     * Frame @p payload in the on-disk entry format (exposed so tests
     * can craft valid and subtly-corrupt files).
     */
    static std::string frameEntry(const std::string &payload);

    /**
     * Unframe @p data. True and fills @p payload when the header and
     * checksum verify; false on any damage.
     */
    [[nodiscard]] static bool tryUnframeEntry(const std::string &data,
                                              std::string *payload);

    /**
     * Attach @p injector (may be nullptr) so publications can be torn
     * or bit-flipped for chaos testing. Not owned; must outlive the
     * cache or be detached first.
     */
    void setChaos(fault::ServiceFaultInjector *injector)
        EXCLUDES(mutex_);

    /**
     * Verify every on-disk entry: quarantine corrupt files, remove
     * orphaned temp files. Called by the constructor when the disk
     * tier is on; exposed for tests. Returns quarantined count.
     */
    Count scanDisk() EXCLUDES(mutex_);

  private:
    /** Insert into the LRU; evicts beyond capacity. */
    void memPutLocked(const std::string &key, std::string value)
        REQUIRES(mutex_);

    std::optional<std::string> diskGet(const std::string &key)
        EXCLUDES(mutex_);
    void diskPut(const std::string &key, const std::string &value)
        EXCLUDES(mutex_);

    /** Rename @p path aside and count it (takes the lock itself). */
    void quarantine(const std::string &path) EXCLUDES(mutex_);

    const std::size_t capacity_;
    const std::string dir_;

    mutable core::Mutex mutex_;
    /** Most recent at front; each node is (key, value). */
    std::list<std::pair<std::string, std::string>> lru_
        GUARDED_BY(mutex_);
    /** Keyed lookup only (never iterated — see the lint rule). */
    std::unordered_map<std::string, decltype(lru_)::iterator> index_
        GUARDED_BY(mutex_);
    CacheStats stats_ GUARDED_BY(mutex_);
    fault::ServiceFaultInjector *chaos_ GUARDED_BY(mutex_) = nullptr;
};

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_RESULT_CACHE_HPP
