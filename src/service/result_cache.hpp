/**
 * @file
 * Two-tier content-addressed result cache.
 *
 * Tier 1 is an in-memory LRU bounded by entry count; tier 2 is an
 * on-disk store (one file per key, written atomically via a temp file
 * and rename) that survives daemon restarts. A disk hit is promoted
 * into memory. Keys are the 32-hex-char fingerprints produced by
 * cacheKey(), so invalidation-by-salt needs no sweep: entries written
 * under an old salt are simply never looked up again.
 *
 * Thread-safe; every method may be called from any worker or
 * connection thread.
 */

#ifndef RINGSIM_SERVICE_RESULT_CACHE_HPP
#define RINGSIM_SERVICE_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/units.hpp"

namespace ringsim::service {

/** Hit/miss/eviction counters of one cache instance. */
struct CacheStats
{
    Count memHits = 0;
    Count diskHits = 0;
    Count misses = 0;
    Count stores = 0;
    Count evictions = 0;
    Count diskErrors = 0;
};

class ResultCache
{
  public:
    /**
     * @param mem_entries in-memory LRU capacity (>= 1).
     * @param dir on-disk store directory (created if missing);
     *            empty disables the disk tier.
     */
    ResultCache(std::size_t mem_entries, std::string dir);

    /** Cached value of @p key, or nullopt. Counts the hit/miss. */
    std::optional<std::string> get(const std::string &key);

    /** Store @p value under @p key in both tiers. */
    void put(const std::string &key, const std::string &value);

    /** Entries currently held in memory. */
    std::size_t memEntries() const;

    /** Counter snapshot. */
    CacheStats stats() const;

    /** On-disk path of @p key ("" when the disk tier is off). */
    std::string diskPath(const std::string &key) const;

  private:
    /** Insert into the LRU (lock held); evicts beyond capacity. */
    void memPut(const std::string &key, std::string value);

    std::optional<std::string> diskGet(const std::string &key);
    void diskPut(const std::string &key, const std::string &value);

    const std::size_t capacity_;
    const std::string dir_;

    mutable std::mutex mutex_;
    /** Most recent at front; each node is (key, value). */
    std::list<std::pair<std::string, std::string>> lru_;
    /** Keyed lookup only (never iterated — see the lint rule). */
    std::unordered_map<std::string, decltype(lru_)::iterator> index_;
    CacheStats stats_;
};

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_RESULT_CACHE_HPP
