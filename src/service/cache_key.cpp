#include "cache_key.hpp"

#include "util/logging.hpp"

namespace ringsim::service {

const char *
codeVersionSalt()
{
    // Bump with any change that can alter a result byte (protocol
    // timing, model coefficients, table formatting, trace
    // generation) — and with any change to the on-disk entry frame,
    // so pre-checksum files are never half-trusted. PR number + date
    // keeps bumps unambiguous.
    return "ringsim-pr7-2026-08-08";
}

std::uint64_t
fingerprint64(const std::string &data, std::uint64_t seed)
{
    // FNV-1a over the bytes, then a splitmix64 finalizer so short
    // inputs still diffuse into all 64 bits.
    std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

std::string
cacheKey(const std::string &canonical_spec,
         const std::string &extra_salt)
{
    // The salts are framed with their lengths so ("ab", "c") and
    // ("a", "bc") cannot collide.
    std::string salted = strprintf(
        "%zu:%s|%zu:%s|", canonical_spec.size(), canonical_spec.c_str(),
        extra_salt.size(), extra_salt.c_str());
    salted += codeVersionSalt();
    std::uint64_t lo = fingerprint64(salted, 0x5bd1e995973aULL);
    std::uint64_t hi = fingerprint64(salted, 0x27d4eb2f165667c5ULL);
    return strprintf("%016llx%016llx",
                     static_cast<unsigned long long>(hi),
                     static_cast<unsigned long long>(lo));
}

} // namespace ringsim::service
