/**
 * @file
 * Experiment-service job specifications and executors.
 *
 * A job is the unit the service schedules, executes and memoizes.
 * Five kinds exist:
 *
 *   run    one timed simulation (ring snoop/directory or bus) of one
 *          workload — returns the RunResult fields;
 *   sweep  one full figure reproduction (fig3/fig4/fig6) — returns
 *          the rendered bench output, byte-identical to the bench
 *          binary's stdout;
 *   model  one analytic-model solve (calibration census + ring or bus
 *          queueing model at one processor cycle time);
 *   verify one exhaustive protocol model-check configuration;
 *   sleep  test-only (gated by ServiceConfig::enableTestJobs): holds
 *          a worker for a fixed time, so tests can pin the pool and
 *          exercise queueing/shedding deterministically.
 *
 * Parsing is strict about types but forgiving about omissions: every
 * field has the bench default. canonical() re-serializes the spec
 * with *all* defaults materialized, in a fixed key order — that
 * string (plus salts) is the cache key, so a request that spells a
 * default out and one that omits it hit the same entry.
 */

#ifndef RINGSIM_SERVICE_JOB_HPP
#define RINGSIM_SERVICE_JOB_HPP

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "figures/figures.hpp"
#include "trace/workload.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace ringsim::service {

/** What a job asks the service to do. */
enum class JobKind { Run, Sweep, Model, Verify, Sleep };

/** Printable job-kind wire name ("run", ...). */
const char *jobKindName(JobKind k);

/** Parsed, validated description of one job. */
struct JobSpec
{
    JobKind kind = JobKind::Run;

    // -- run / model ----------------------------------------------
    trace::Benchmark benchmark = trace::Benchmark::MP3D;
    unsigned procs = 16;
    /** "snoop", "directory" or "bus". */
    std::string protocol = "snoop";
    /** Ring clock period (ring protocols) / bus period, in ticks. */
    Tick period = 0; //!< 0 = protocol default (2000 ring, 20000 bus)
    /** model only: processor cycle time of the solve, in ns. */
    double cycleNs = 20;

    // -- shared workload knobs ------------------------------------
    Count refs = 120'000;
    std::uint64_t seed = 12345;
    bool fast = false;
    fault::FaultConfig faults;

    // -- sweep ----------------------------------------------------
    figures::FigureId figure = figures::FigureId::Fig3;
    bool csv = false;
    bool fig6Cholesky = false;

    /**
     * Sweep-part index: -1 computes the whole figure; >= 0 computes
     * exactly one registered block (the fleet's sweep-sharding unit)
     * and returns its rows instead of rendered text. Part specs are
     * cacheable like any sweep — the index joins the canonical spec —
     * but never degrade: a model-only part would poison the
     * reassembled figure with mixed tiers.
     */
    std::int64_t sweepPart = -1;

    // -- verify ---------------------------------------------------
    unsigned vNodes = 2;
    unsigned vBlocks = 1;
    unsigned vInflight = 2;
    bool vFaults = false;
    bool vFull = true;

    // -- sleep (test only) ----------------------------------------
    std::uint64_t sleepMs = 0;

    // -- service-level knobs (never part of the cache key: they
    //    bound *when* a job runs, not *what* it computes) ----------

    /**
     * Wall-clock budget from admission, in ms; 0 = none. A queued
     * job past its deadline is cancelled before dispatch; a running
     * one is abandoned like a watchdog timeout.
     */
    std::uint64_t deadlineMs = 0;

    /**
     * May the service answer with the analytic-model tier instead of
     * shedding or abandoning this job? ("degrade": false opts out.)
     * Only honored when the daemon enables degradeToModel.
     */
    bool allowDegraded = true;

    /**
     * Parse a request's "job" object. On success fills @p out and
     * returns true; on failure returns false and fills @p error with
     * "field = value"-style diagnostics.
     */
    [[nodiscard]] static bool tryParse(const util::JsonValue &json,
                                       bool allow_test_jobs,
                                       JobSpec *out, std::string *error);

    /**
     * The canonical spec: every result-affecting field materialized,
     * keys in fixed order. Equal canonical strings => byte-equal
     * results (the memoization contract).
     */
    util::JsonValue canonical() const;

    /** False for job kinds whose result must not be memoized. */
    bool cacheable() const { return kind != JobKind::Sleep; }

    /**
     * True for job kinds the analytic model can stand in for: a run
     * degrades to the queueing-model solve of the same
     * configuration, a sweep to its model series (sim validation
     * rows omitted), a model job to itself (executed inline).
     */
    bool degradable() const
    {
        if (kind == JobKind::Sweep)
            return sweepPart < 0;
        return kind == JobKind::Run || kind == JobKind::Model;
    }

    /** One-line human description (logs, statsz). */
    std::string describe() const;
};

/**
 * Execute @p spec synchronously on the calling thread and return the
 * result object ({"kind": ..., ...}). @p sweep_jobs is the internal
 * fan-out used by sweep jobs. Throws std::runtime_error on failure.
 */
util::JsonValue executeJob(const JobSpec &spec, unsigned sweep_jobs);

/**
 * Execute the analytic-model stand-in for @p spec (which must be
 * degradable()) and return the result object tagged
 * "degraded": true with the model's documented error bound. Costs a
 * calibration census plus a queueing-model solve — milliseconds
 * where the exact job costs seconds. Throws std::runtime_error on
 * failure.
 */
util::JsonValue executeDegraded(const JobSpec &spec,
                                unsigned sweep_jobs);

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_JOB_HPP
