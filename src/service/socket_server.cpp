#include "socket_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "fault/service_faults.hpp"
#include "util/logging.hpp"
#include "util/posix_error.hpp"

namespace ringsim::service {

namespace {

/**
 * Write all of @p data to @p fd. When @p chunk is nonzero, write at
 * most @p chunk bytes per send with @p delay_us between them (the
 * chaos slow-write path). Returns false on any send failure.
 */
bool
sendAll(int fd, const char *data, std::size_t size, std::size_t chunk,
        unsigned delay_us)
{
    std::size_t off = 0;
    while (off < size) {
        std::size_t want = size - off;
        if (chunk != 0)
            want = std::min(want, chunk);
        // MSG_NOSIGNAL: a client that hung up mid-response must
        // surface as EPIPE here, not SIGPIPE the daemon.
        ssize_t w = ::send(fd, data + off, want, MSG_NOSIGNAL);
        if (w <= 0)
            return false;
        off += static_cast<std::size_t>(w);
        if (chunk != 0 && off < size && delay_us != 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(delay_us));
    }
    return true;
}

} // namespace

bool
tryParseEndpoint(const std::string &endpoint, int *tcp_port,
                 std::string *unix_path, std::string *error)
{
    *tcp_port = -1;
    unix_path->clear();
    if (endpoint.rfind("tcp:", 0) == 0) {
        const std::string port = endpoint.substr(4);
        char *end = nullptr;
        long v = std::strtol(port.c_str(), &end, 10);
        if (port.empty() || *end != '\0' || v < 1 || v > 65535) {
            *error = "endpoint = '" + endpoint +
                     "': tcp port must be 1..65535";
            return false;
        }
        *tcp_port = static_cast<int>(v);
        return true;
    }
    std::string path = endpoint;
    if (path.rfind("unix:", 0) == 0)
        path = path.substr(5);
    if (path.empty()) {
        *error = "endpoint = '" + endpoint +
                 "': expected tcp:PORT or a socket path";
        return false;
    }
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
        *error = strprintf("endpoint = '%s': socket path longer than "
                           "%zu bytes",
                           endpoint.c_str(),
                           sizeof(sockaddr_un{}.sun_path) - 1);
        return false;
    }
    *unix_path = std::move(path);
    return true;
}

std::vector<std::string>
splitEndpointList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > start)
            out.push_back(list.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

SocketServer::SocketServer(LineService &core, std::string endpoint)
    : core_(core), endpoint_(std::move(endpoint))
{
}

SocketServer::~SocketServer()
{
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
    // Pump threads exit on their own (each polls shutdownRequested
    // with a 100 ms bound); joinAll just waits for them.
    conns_.joinAll();
    if (unix_path_bound_)
        ::unlink(unix_path_.c_str());
}

bool
SocketServer::tryStart(std::string *error)
{
    int tcp_port = -1;
    if (!tryParseEndpoint(endpoint_, &tcp_port, &unix_path_, error))
        return false;

    if (tcp_port > 0) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            *error = strprintf("socket: %s", util::errnoString(errno).c_str());
            return false;
        }
        int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(tcp_port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            *error = strprintf("bind 127.0.0.1:%d: %s", tcp_port,
                               util::errnoString(errno).c_str());
            return false;
        }
    } else {
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            *error = strprintf("socket: %s", util::errnoString(errno).c_str());
            return false;
        }
        // A stale socket file from a dead daemon would fail the bind.
        ::unlink(unix_path_.c_str());
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, unix_path_.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            *error = strprintf("bind %s: %s", unix_path_.c_str(),
                               util::errnoString(errno).c_str());
            return false;
        }
        unix_path_bound_ = true;
    }
    if (::listen(listen_fd_, 64) != 0) {
        *error = strprintf("listen: %s", util::errnoString(errno).c_str());
        return false;
    }
    return true;
}

void
SocketServer::serve()
{
    std::uint64_t serial = 0;
    while (!core_.shutdownRequested()) {
        // Poll with a short timeout so a shutdown request taken on a
        // connection thread stops the accept loop promptly.
        pollfd pfd{listen_fd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::string client = strprintf(
            "conn%llu", static_cast<unsigned long long>(++serial));
        conns_.launch([this, fd, client]() {
            handleConnection(fd, client);
        });
        // Join ended connections as we go so a long-running daemon
        // serving many short connections does not accumulate one
        // thread object (and stack) per connection ever accepted.
        conns_.reapFinished();
    }
}

void
SocketServer::handleConnection(int fd, std::string client)
{
    std::string buffer;
    char chunk[4096];
    fault::ServiceFaultInjector *chaos = core_.chaosInjector();
    for (;;) {
        // Bounded wait instead of a blocking read: an idle client
        // holding its connection open must not pin this thread (and
        // the destructor's join) past a shutdown request.
        pollfd pfd{fd, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 100);
        if (core_.shutdownRequested())
            break;
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0)
            continue;
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (;;) {
            std::size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (line.empty())
                continue;
            std::string response = core_.handleLine(client, line);
            response += '\n';

            // Chaos: a disconnect sends a bare response prefix and
            // drops the connection; a garble stomps the line's first
            // byte (the newline survives, so the client's framing
            // sees one complete line that can never parse — a flip
            // deeper in the payload could yield *valid* JSON with
            // altered data, which no client could detect); a slow
            // write dribbles the response out in tiny chunks.
            if (chaos && chaos->disconnect()) {
                sendAll(fd, response.data(), response.size() / 2, 0,
                        0);
                ::close(fd);
                core_.clientGone(client);
                return;
            }
            if (chaos && chaos->garble() && response.size() > 1)
                response[0] = '#';
            std::size_t slow_chunk =
                chaos && chaos->slowWrite()
                    ? std::max(1u, chaos->config().slowChunkBytes)
                    : 0;
            if (!sendAll(fd, response.data(), response.size(),
                         slow_chunk,
                         chaos ? chaos->config().slowChunkDelayUs
                               : 0)) {
                ::close(fd);
                core_.clientGone(client);
                return;
            }
        }
        buffer.erase(0, start);
    }
    ::close(fd);
    core_.clientGone(client);
}

} // namespace ringsim::service
