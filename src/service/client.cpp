#include "client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <chrono>
#include <thread>
#include <utility>

#include "service/socket_server.hpp"
#include "util/logging.hpp"
#include "util/posix_error.hpp"

namespace ringsim::service {

ServiceClient::~ServiceClient()
{
    closeFd();
}

ServiceClient::ServiceClient(ServiceClient &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)),
      buffer_(std::move(other.buffer_))
{
}

ServiceClient &
ServiceClient::operator=(ServiceClient &&other) noexcept
{
    if (this != &other) {
        closeFd();
        fd_ = std::exchange(other.fd_, -1);
        endpoint_ = std::move(other.endpoint_);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

void
ServiceClient::closeFd()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
ServiceClient::tryConnect(const std::string &endpoint,
                          std::string *error)
{
    closeFd();
    endpoint_ = endpoint;
    int tcp_port = -1;
    std::string unix_path;
    if (!tryParseEndpoint(endpoint, &tcp_port, &unix_path, error))
        return false;

    if (tcp_port > 0) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0) {
            *error = strprintf("socket: %s", util::errnoString(errno).c_str());
            return false;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(tcp_port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            *error = strprintf("connect 127.0.0.1:%d: %s", tcp_port,
                               util::errnoString(errno).c_str());
            closeFd();
            return false;
        }
        return true;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        *error = strprintf("socket: %s", util::errnoString(errno).c_str());
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *error = strprintf("connect %s: %s", unix_path.c_str(),
                           util::errnoString(errno).c_str());
        closeFd();
        return false;
    }
    return true;
}

bool
ServiceClient::tryRequest(const std::string &line,
                          std::string *response, std::string *error)
{
    if (fd_ < 0) {
        *error = "not connected";
        return false;
    }
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        // MSG_NOSIGNAL: a daemon that died mid-request must surface
        // as an EPIPE error string, not SIGPIPE-kill the client.
        ssize_t w = ::send(fd_, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (w <= 0) {
            *error = strprintf("write: %s", util::errnoString(errno).c_str());
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    for (;;) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            *response = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n <= 0) {
            *error = n == 0 ? "connection closed by server"
                            : strprintf("read: %s",
                                        util::errnoString(errno).c_str());
            return false;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
ServiceClient::tryCall(const util::JsonValue &request,
                       util::JsonValue *response, std::string *error)
{
    std::string line;
    if (!tryRequest(request.dump(), &line, error))
        return false;
    if (!util::tryParseJson(line, response, error)) {
        *error = "unparsable response: " + *error;
        return false;
    }
    std::vector<std::string> errors;
    if (!response->getBool("ok", false, &errors)) {
        std::string msg =
            response->getString("error", "request failed", &errors);
        if (const util::JsonValue *ra =
                response->find("retry_after_ms")) {
            if (ra->isNumber())
                msg += strprintf(" (retry after %llu ms)",
                                 static_cast<unsigned long long>(
                                     ra->asU64()));
        }
        *error = msg;
        return false;
    }
    return true;
}

bool
ServiceClient::tryCallResilient(const util::JsonValue &request,
                                util::JsonValue *response,
                                std::string *error, unsigned attempts)
{
    std::string last_error = "no attempts made";
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (!connected()) {
            if (endpoint_.empty()) {
                *error = "not connected";
                return false;
            }
            if (!tryConnect(endpoint_, &last_error)) {
                // The daemon may be mid-restart; linear backoff.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50 * (attempt + 1)));
                continue;
            }
        }
        std::string line;
        if (!tryRequest(request.dump(), &line, &last_error)) {
            // Transport failure: the connection is in an unknown
            // state (a half-written request, a half-read response) —
            // drop it and start clean.
            closeFd();
            continue;
        }
        util::JsonValue parsed;
        std::string parse_error;
        if (!util::tryParseJson(line, &parsed, &parse_error)) {
            // A garbled line. Framing is still sound (one line in,
            // one line out) but trust nothing: reconnect.
            last_error = "unparsable response: " + parse_error;
            closeFd();
            continue;
        }
        std::vector<std::string> errors;
        if (parsed.getBool("ok", false, &errors)) {
            *response = std::move(parsed);
            return true;
        }
        const util::JsonValue *ra = parsed.find("retry_after_ms");
        if (ra && ra->isNumber()) {
            // An overload shed is transient by definition: honor the
            // hint (bounded — the hint is advisory, the cap is ours)
            // and try again.
            std::uint64_t wait_ms = std::min<std::uint64_t>(
                ra->asU64(), 2'000);
            last_error = parsed.getString("error", "overloaded",
                                          &errors);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(wait_ms));
            continue;
        }
        // A non-transient application error (bad request, unknown
        // id): retrying cannot help.
        *error = parsed.getString("error", "request failed", &errors);
        return false;
    }
    *error = strprintf("gave up after %u attempts: %s", attempts,
                       last_error.c_str());
    return false;
}

} // namespace ringsim::service
