/**
 * @file
 * ringsim_serve: the experiment-service daemon.
 *
 * Accepts NDJSON requests (one per line) on a Unix or loopback TCP
 * socket, schedules jobs onto a bounded worker pool with per-client
 * fairness, and memoizes results in a two-tier content-addressed
 * cache. See src/service/server.hpp for the protocol.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "service/config.hpp"
#include "service/server.hpp"
#include "service/socket_server.hpp"
#include "util/logging.hpp"

using namespace ringsim;

namespace {

void
usage()
{
    std::cout <<
        "usage: ringsim_serve [flags]\n"
        "  --endpoint E       tcp:PORT | unix:PATH | PATH "
        "(default ringsim.sock)\n"
        "  --workers N        concurrent job executors (default 2)\n"
        "  --queue-depth N    admitted-but-unfinished bound "
        "(default 64)\n"
        "  --mem-cache N      in-memory cache entries (default 128)\n"
        "  --cache-dir PATH   on-disk cache directory (default off)\n"
        "  --salt S           extra cache salt (default "
        "$RINGSIM_CACHE_SALT)\n"
        "  --watchdog-ms N    per-job budget (default "
        "$RINGSIM_WATCHDOG_MS, else 600000; 0 disables)\n"
        "  --jobs-per-sweep N workers inside one sweep job "
        "(default auto)\n"
        "  --retry-after-ms N base shed backoff hint (default 250)\n"
        "  --retain N         finished records kept for polling "
        "(default 1024)\n"
        "  --test-jobs        accept the test-only sleep job kind\n"
        "  --degrade          answer shed/abandoned run|sweep|model\n"
        "                     jobs from the analytic-model tier,\n"
        "                     tagged degraded:true (default off)\n"
        "  --chaos SEED       deterministic fault injection: slow,\n"
        "                     garbled and dropped responses, torn and\n"
        "                     bit-flipped disk-cache entries, dropped\n"
        "                     peer-cache probes\n"
        "  --peers E1,E2,...  peer daemon endpoints: on a local cache\n"
        "                     miss, ask each peer's cache before\n"
        "                     simulating (the fleet cache tier)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // A client that disconnects mid-response must not take the whole
    // daemon (and every other client's in-flight jobs) with it. Socket
    // writes also pass MSG_NOSIGNAL; this covers any other fd.
    std::signal(SIGPIPE, SIG_IGN);

    std::string endpoint = "ringsim.sock";
    service::ServiceConfig cfg =
        service::ServiceConfig::withEnvDefaults();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--endpoint") {
            endpoint = need_value("--endpoint");
        } else if (arg == "--workers") {
            cfg.workers = static_cast<unsigned>(std::strtoul(
                need_value("--workers").c_str(), nullptr, 10));
        } else if (arg == "--queue-depth") {
            cfg.queueDepth = std::strtoull(
                need_value("--queue-depth").c_str(), nullptr, 10);
        } else if (arg == "--mem-cache") {
            cfg.memCacheEntries = std::strtoull(
                need_value("--mem-cache").c_str(), nullptr, 10);
        } else if (arg == "--cache-dir") {
            cfg.cacheDir = need_value("--cache-dir");
        } else if (arg == "--salt") {
            cfg.salt = need_value("--salt");
        } else if (arg == "--watchdog-ms") {
            cfg.watchdog = std::chrono::milliseconds(std::strtoll(
                need_value("--watchdog-ms").c_str(), nullptr, 10));
        } else if (arg == "--jobs-per-sweep") {
            cfg.jobsPerSweep = static_cast<unsigned>(std::strtoul(
                need_value("--jobs-per-sweep").c_str(), nullptr, 10));
        } else if (arg == "--retry-after-ms") {
            cfg.retryAfterMs = std::strtoull(
                need_value("--retry-after-ms").c_str(), nullptr, 10);
        } else if (arg == "--retain") {
            cfg.retainDone = std::strtoull(
                need_value("--retain").c_str(), nullptr, 10);
        } else if (arg == "--test-jobs") {
            cfg.enableTestJobs = true;
        } else if (arg == "--degrade") {
            cfg.degradeToModel = true;
        } else if (arg == "--chaos") {
            cfg.chaos = fault::ServiceFaultConfig::chaosPreset(
                std::strtoull(need_value("--chaos").c_str(), nullptr,
                              10));
        } else if (arg == "--peers") {
            for (std::string &peer : service::splitEndpointList(
                     need_value("--peers")))
                cfg.peers.push_back(std::move(peer));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            fatal("unknown flag '%s' (try --help)", arg.c_str());
        }
    }
    cfg.validate();

    service::ServiceCore core(cfg);
    service::SocketServer server(core, endpoint);
    std::string error;
    if (!server.tryStart(&error))
        fatal("cannot serve: %s", error.c_str());
    inform("service: listening on %s", endpoint.c_str());
    server.serve();
    inform("service: shutdown complete");
    return 0;
}
