/**
 * @file
 * Experiment-service configuration.
 *
 * One ServiceConfig describes a ringsim_serve daemon: how many jobs
 * execute concurrently, how deep the admission queue may grow before
 * requests are shed, where the two cache tiers live, and the salt
 * that invalidates every cached result when the code changes.
 *
 * Environment defaults (read through util::env, see the getenv lint
 * rule): RINGSIM_WATCHDOG_MS seeds the per-job watchdog and
 * RINGSIM_CACHE_SALT adds an operator salt on top of the built-in
 * code-version salt.
 */

#ifndef RINGSIM_SERVICE_CONFIG_HPP
#define RINGSIM_SERVICE_CONFIG_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/service_faults.hpp"

namespace ringsim::service {

/** Tunables of one daemon instance. */
struct ServiceConfig
{
    /** Concurrent job executor threads. */
    unsigned workers = 2;

    /**
     * Worker threads *inside* one job (a figure sweep fans out onto
     * the experiment runner); 0 = auto ($RINGSIM_JOBS, else hardware).
     */
    unsigned jobsPerSweep = 0;

    /**
     * Bound on jobs admitted but not yet finished (queued + running).
     * A submit over this bound is shed with a structured retry_after
     * response — the queue can never grow without limit.
     */
    std::size_t queueDepth = 64;

    /** In-memory result-cache capacity, in entries. */
    std::size_t memCacheEntries = 128;

    /** On-disk result-cache directory; empty disables the disk tier. */
    std::string cacheDir;

    /**
     * Operator salt appended to the built-in code-version salt in
     * every cache key. Defaults to $RINGSIM_CACHE_SALT (empty when
     * unset). Changing either salt invalidates every cached entry.
     */
    std::string salt;

    /**
     * Per-job wall-clock watchdog. A job over budget is reported
     * timed_out to pollers (its thread cannot be interrupted; a late
     * completion is counted and discarded). Defaults to
     * $RINGSIM_WATCHDOG_MS, else 10 minutes. Zero disables.
     */
    std::chrono::milliseconds watchdog{0};

    /** Completed job records retained for polling (oldest dropped). */
    std::size_t retainDone = 1024;

    /**
     * Base advisory backoff returned with a shed response. The
     * effective hint scales with how overcommitted the queue is.
     */
    std::uint64_t retryAfterMs = 250;

    /**
     * Accept the test-only "sleep" job kind (used by the test suite
     * to pin workers deterministically). Never enable in production.
     */
    bool enableTestJobs = false;

    /**
     * Graceful degradation to the analytic model: when admission
     * would shed a run/sweep/model job (or the watchdog abandons
     * one), answer with the millisecond model estimate instead,
     * tagged degraded:true with the paper's ~15% error bound. A
     * request opts out with "degrade": false. Off by default — a
     * degraded answer is *not* byte-identical to the simulation.
     */
    bool degradeToModel = false;

    /**
     * Service-layer chaos injection (--chaos SEED uses
     * fault::ServiceFaultConfig::chaosPreset). All-zero rates — the
     * default — disable injection entirely.
     */
    fault::ServiceFaultConfig chaos;

    /**
     * Peer daemon endpoints of the fleet cache tier. On a local
     * cache miss a cacheable submit asks each peer's cache
     * ({"op":"cache_get"}) before simulating, so a warm answer
     * anywhere serves the whole fleet. A cache_get never computes and
     * never consults *its* peers — one hop, no recursion. A dead
     * peer is a plain miss. Empty (the default) disables the tier.
     */
    std::vector<std::string> peers;

    /** A config with the environment defaults applied. */
    static ServiceConfig withEnvDefaults();

    /**
     * All misconfigurations, as human-readable "field = value"
     * messages (empty when the config is sound).
     */
    [[nodiscard]] std::vector<std::string> check() const;

    /** fatal() with the first check() error, if any. */
    void validate() const;
};

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_CONFIG_HPP
