/**
 * @file
 * Content-addressed cache keys for experiment results.
 *
 * A key is a 128-bit fingerprint (as 32 hex chars) of the job's
 * *canonical* specification — the JSON object produced by
 * JobSpec::canonical(), which lists every field that can influence
 * the result (workload, configuration, fault schedule, internal
 * sweep shape) with defaults materialized and keys in a fixed order —
 * concatenated with the cache salt.
 *
 * Memoizing on this key is legal because PR 1 and PR 3 proved runs
 * byte-identical for identical inputs at any worker count: two
 * requests with equal canonical specs produce equal bytes, so a
 * cached result is indistinguishable from a recomputation.
 *
 * The salt has two parts: the built-in code-version salt (bumped
 * whenever a change can alter any result byte — see DESIGN.md §13)
 * and an operator salt (ServiceConfig::salt / $RINGSIM_CACHE_SALT).
 * Changing either silently invalidates every existing entry: the new
 * keys simply never match the old files.
 */

#ifndef RINGSIM_SERVICE_CACHE_KEY_HPP
#define RINGSIM_SERVICE_CACHE_KEY_HPP

#include <cstdint>
#include <string>

namespace ringsim::service {

/**
 * The built-in code-version salt. Bump the literal in cache_key.cpp
 * with any PR that can change a result byte.
 */
const char *codeVersionSalt();

/** 64-bit FNV-1a-with-finalizer over @p data (exposed for tests). */
std::uint64_t fingerprint64(const std::string &data,
                            std::uint64_t seed);

/**
 * The cache key of @p canonical_spec under @p extra_salt: 32 lowercase
 * hex characters, safe as a file name.
 */
std::string cacheKey(const std::string &canonical_spec,
                     const std::string &extra_salt);

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_CACHE_KEY_HPP
