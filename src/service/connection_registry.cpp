#include "connection_registry.hpp"

#include <algorithm>
#include <utility>

namespace ringsim::service {

ConnectionRegistry::~ConnectionRegistry()
{
    joinAll();
}

std::uint64_t
ConnectionRegistry::launch(std::function<void()> body)
{
    core::MutexLock lock(mutex_);
    std::uint64_t id = next_id_++;
    ++launched_;
    Slot slot;
    slot.id = id;
    // The thread starts while the lock is held: its finish(id) blocks
    // on mutex_ until this slot is registered, so a body that returns
    // instantly cannot race its own registration.
    slot.thread = std::thread([this, id, body = std::move(body)]() {
        body();
        finish(id);
    });
    live_.push_back(std::move(slot));
    return id;
}

void
ConnectionRegistry::finish(std::uint64_t id)
{
    core::MutexLock lock(mutex_);
    // The body has returned either way; count it even when joinAll()
    // already claimed the slot (its join is waiting on this thread).
    ++finished_count_;
    auto it = std::find_if(live_.begin(), live_.end(),
                           [&](const Slot &s) { return s.id == id; });
    if (it == live_.end())
        return;
    finished_.push_back(std::move(*it));
    live_.erase(it);
}

void
ConnectionRegistry::reapFinished()
{
    // Claim under the lock, join outside it: the joined thread's own
    // finish() needs the lock to return.
    std::vector<Slot> done;
    {
        core::MutexLock lock(mutex_);
        done.swap(finished_);
        joined_ += done.size();
    }
    for (Slot &s : done)
        if (s.thread.joinable())
            s.thread.join();
}

void
ConnectionRegistry::joinAll()
{
    std::vector<Slot> all;
    {
        core::MutexLock lock(mutex_);
        all.reserve(live_.size() + finished_.size());
        for (Slot &s : live_)
            all.push_back(std::move(s));
        live_.clear();
        for (Slot &s : finished_)
            all.push_back(std::move(s));
        finished_.clear();
        joined_ += all.size();
    }
    // A still-live body later calls finish(id), finds its slot gone
    // and returns — joining here simply waits for that.
    for (Slot &s : all)
        if (s.thread.joinable())
            s.thread.join();
}

ConnectionRegistry::Counts
ConnectionRegistry::counts() const
{
    core::MutexLock lock(mutex_);
    Counts c;
    c.launched = launched_;
    c.finished = finished_count_;
    c.joined = joined_;
    c.live = live_.size();
    return c;
}

} // namespace ringsim::service
