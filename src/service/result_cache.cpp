#include "result_cache.hpp"

#include <sys/stat.h>

#include <atomic>
#include <cstdio>

#include "util/logging.hpp"

namespace ringsim::service {

ResultCache::ResultCache(std::size_t mem_entries, std::string dir)
    : capacity_(mem_entries ? mem_entries : 1), dir_(std::move(dir))
{
    if (!dir_.empty()) {
        // Best-effort create; an unwritable directory degrades to a
        // memory-only cache (counted in diskErrors per operation).
        ::mkdir(dir_.c_str(), 0755);
    }
}

std::string
ResultCache::diskPath(const std::string &key) const
{
    if (dir_.empty())
        return "";
    return dir_ + "/" + key + ".json";
}

std::optional<std::string>
ResultCache::get(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            // Touch: move to the front of the LRU.
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.memHits;
            return lru_.front().second;
        }
    }
    std::optional<std::string> disk = diskGet(key);
    std::lock_guard<std::mutex> lock(mutex_);
    if (disk) {
        ++stats_.diskHits;
        memPut(key, *disk);
        return disk;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
ResultCache::put(const std::string &key, const std::string &value)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stores;
        memPut(key, value);
    }
    diskPut(key, value);
}

std::size_t
ResultCache::memEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ResultCache::memPut(const std::string &key, std::string value)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::optional<std::string>
ResultCache::diskGet(const std::string &key)
{
    std::string path = diskPath(key);
    if (path.empty())
        return std::nullopt;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string data;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.diskErrors;
        return std::nullopt;
    }
    return data;
}

void
ResultCache::diskPut(const std::string &key, const std::string &value)
{
    std::string path = diskPath(key);
    if (path.empty())
        return;
    // Atomic publish: a reader either sees the whole entry or none.
    // The temp name is unique per store so concurrent writers of the
    // same key cannot interleave into one temp file.
    static std::atomic<unsigned> tmp_serial{0};
    std::string tmp = path + strprintf(".tmp%u", tmp_serial++);
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    bool ok = f != nullptr;
    if (f) {
        ok = std::fwrite(value.data(), 1, value.size(), f) ==
             value.size();
        ok = (std::fclose(f) == 0) && ok;
    }
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.diskErrors;
    }
}

} // namespace ringsim::service
