#include "result_cache.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "fault/service_faults.hpp"
#include "service/cache_key.hpp"
#include "util/logging.hpp"

namespace ringsim::service {

namespace {

/** Magic of the framed on-disk entry format (see frameEntry). */
constexpr const char *kEntryMagic = "RSC1";

/** Checksum domain separator so an entry is not its own cache key. */
constexpr std::uint64_t kEntryChecksumSeed = 0x52534331ULL;

/** Suffix a corrupt entry is renamed to when quarantined. */
constexpr const char *kQuarantineSuffix = ".quarantined";

/** Whole-file read; nullopt on open/IO failure. */
std::optional<std::string>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string data;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok)
        return std::nullopt;
    return data;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/**
 * Advisory flock on the cache directory's lock file, coordinating
 * *processes* (the in-process mutex_ cannot see a second daemon
 * sharing --cache-dir). Publishers take the lock shared — concurrent
 * publishes are safe with each other (unique temp names, atomic
 * rename) — while the startup quarantine scan takes it exclusive:
 * without that, daemon B's scan can see daemon A's in-flight .tmp
 * file and delete it between A's write and A's rename, losing A's
 * publish. A missing or unlockable lock file degrades to the old
 * unguarded behavior (single-daemon directories never contend).
 */
class ScopedDirLock
{
  public:
    ScopedDirLock(const std::string &dir, int op)
    {
        if (dir.empty())
            return;
        std::string path = dir + "/.cache.lock";
        fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                     0644);
        if (fd_ < 0)
            return;
        if (::flock(fd_, op) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~ScopedDirLock()
    {
        if (fd_ >= 0)
            ::close(fd_); // closing releases the flock
    }

    ScopedDirLock(const ScopedDirLock &) = delete;
    ScopedDirLock &operator=(const ScopedDirLock &) = delete;

  private:
    int fd_ = -1;
};

} // namespace

ResultCache::ResultCache(std::size_t mem_entries, std::string dir)
    : capacity_(mem_entries ? mem_entries : 1), dir_(std::move(dir))
{
    if (!dir_.empty()) {
        // Best-effort create; an unwritable directory degrades to a
        // memory-only cache (counted in diskErrors per operation).
        ::mkdir(dir_.c_str(), 0755);
        scanDisk();
    }
}

std::string
ResultCache::diskPath(const std::string &key) const
{
    if (dir_.empty())
        return "";
    return dir_ + "/" + key + ".json";
}

std::string
ResultCache::frameEntry(const std::string &payload)
{
    std::uint64_t sum = fingerprint64(payload, kEntryChecksumSeed);
    std::string framed = strprintf(
        "%s %zu %016llx\n", kEntryMagic, payload.size(),
        static_cast<unsigned long long>(sum));
    framed += payload;
    return framed;
}

bool
ResultCache::tryUnframeEntry(const std::string &data,
                             std::string *payload)
{
    std::size_t nl = data.find('\n');
    if (nl == std::string::npos)
        return false;
    const std::string header = data.substr(0, nl);
    char magic[8] = {};
    unsigned long long len = 0, sum = 0;
    if (std::sscanf(header.c_str(), "%7s %llu %llx", magic, &len,
                    &sum) != 3)
        return false;
    if (std::strcmp(magic, kEntryMagic) != 0)
        return false;
    // A torn write shows up as a short payload; damage past the
    // header as a checksum mismatch. Trailing junk is also damage.
    if (data.size() - (nl + 1) != len)
        return false;
    std::string body = data.substr(nl + 1);
    if (fingerprint64(body, kEntryChecksumSeed) != sum)
        return false;
    *payload = std::move(body);
    return true;
}

void
ResultCache::setChaos(fault::ServiceFaultInjector *injector)
{
    core::MutexLock lock(mutex_);
    chaos_ = injector;
}

std::optional<std::string>
ResultCache::get(const std::string &key)
{
    {
        core::MutexLock lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            // Touch: move to the front of the LRU.
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.memHits;
            return lru_.front().second;
        }
    }
    std::optional<std::string> disk = diskGet(key);
    core::MutexLock lock(mutex_);
    if (disk) {
        ++stats_.diskHits;
        memPutLocked(key, *disk);
        return disk;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
ResultCache::put(const std::string &key, const std::string &value)
{
    {
        core::MutexLock lock(mutex_);
        ++stats_.stores;
        memPutLocked(key, value);
    }
    diskPut(key, value);
}

std::size_t
ResultCache::memEntries() const
{
    core::MutexLock lock(mutex_);
    return lru_.size();
}

CacheStats
ResultCache::stats() const
{
    core::MutexLock lock(mutex_);
    return stats_;
}

void
ResultCache::memPutLocked(const std::string &key, std::string value)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void
ResultCache::quarantine(const std::string &path)
{
    // Rename, never delete: the damaged bytes stay available for a
    // post-mortem, and the entry path is free for a clean rewrite.
    std::string aside = path + kQuarantineSuffix;
    bool ok = std::rename(path.c_str(), aside.c_str()) == 0;
    if (!ok)
        ok = std::remove(path.c_str()) == 0;
    core::MutexLock lock(mutex_);
    if (ok)
        ++stats_.quarantined;
    else
        ++stats_.diskErrors;
}

std::optional<std::string>
ResultCache::diskGet(const std::string &key)
{
    std::string path = diskPath(key);
    if (path.empty())
        return std::nullopt;
    std::optional<std::string> data = readFile(path);
    if (!data) {
        // Missing file is a plain miss; a file we cannot read is a
        // disk error.
        if (::access(path.c_str(), F_OK) == 0) {
            core::MutexLock lock(mutex_);
            ++stats_.diskErrors;
        }
        return std::nullopt;
    }
    std::string payload;
    if (!tryUnframeEntry(*data, &payload)) {
        warn("cache: quarantining corrupt entry %s (%zu bytes)",
             path.c_str(), data->size());
        quarantine(path);
        return std::nullopt;
    }
    return payload;
}

void
ResultCache::diskPut(const std::string &key, const std::string &value)
{
    std::string path = diskPath(key);
    if (path.empty())
        return;
    std::string framed = frameEntry(value);
    // Atomic publish: a reader either sees the whole entry or none.
    // The temp name is unique per store so concurrent writers of the
    // same key cannot interleave into one temp file. The shared dir
    // lock keeps a peer daemon's startup scan from reaping the temp
    // file mid-publish.
    ScopedDirLock dir_lock(dir_, LOCK_SH);
    static std::atomic<unsigned> tmp_serial{0};
    std::string tmp = path + strprintf(".tmp%u", tmp_serial++);
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    bool ok = f != nullptr;
    if (f) {
        ok = std::fwrite(framed.data(), 1, framed.size(), f) ==
             framed.size();
        ok = (std::fclose(f) == 0) && ok;
    }
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        core::MutexLock lock(mutex_);
        ++stats_.diskErrors;
        return;
    }

    fault::ServiceFaultInjector *chaos;
    {
        core::MutexLock lock(mutex_);
        chaos = chaos_;
    }
    if (!chaos)
        return;
    // Chaos: damage the just-published entry the way a crash or a
    // failing disk would, so verify-on-load must catch it. The memory
    // tier still holds the good value; the damage surfaces after a
    // restart or an eviction.
    if (chaos->tornWrite()) {
        if (::truncate(path.c_str(), static_cast<off_t>(
                           framed.size() / 2)) != 0) {
            core::MutexLock lock(mutex_);
            ++stats_.diskErrors;
        }
    } else if (chaos->bitFlip()) {
        std::FILE *rw = std::fopen(path.c_str(), "r+b");
        bool flipped = rw != nullptr;
        if (rw) {
            long mid = static_cast<long>(framed.size() / 2);
            flipped = std::fseek(rw, mid, SEEK_SET) == 0;
            if (flipped) {
                int c = std::fgetc(rw);
                flipped = c != EOF &&
                          std::fseek(rw, mid, SEEK_SET) == 0 &&
                          std::fputc(c ^ 0x20, rw) != EOF;
            }
            std::fclose(rw);
        }
        if (!flipped) {
            core::MutexLock lock(mutex_);
            ++stats_.diskErrors;
        }
    }
}

Count
ResultCache::scanDisk()
{
    if (dir_.empty())
        return 0;
    // Exclusive against publishers (shared lock in diskPut) and
    // other scanners: a .tmp seen under this lock is a true orphan
    // from a crashed daemon, never an in-flight publish.
    ScopedDirLock dir_lock(dir_, LOCK_EX);
    std::vector<std::string> entries, orphans;
    DIR *d = ::opendir(dir_.c_str());
    if (!d) {
        core::MutexLock lock(mutex_);
        ++stats_.diskErrors;
        return 0;
    }
    while (dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        if (name.find(".tmp") != std::string::npos)
            orphans.push_back(name);
        else if (endsWith(name, ".json"))
            entries.push_back(name);
        // .quarantined files are left for the operator.
    }
    ::closedir(d);
    // readdir order is filesystem-defined; sort so the scan (and its
    // log lines) are reproducible.
    std::sort(entries.begin(), entries.end());
    std::sort(orphans.begin(), orphans.end());

    for (const std::string &name : orphans) {
        // A temp file can only be an interrupted publish: the rename
        // never happened, so nothing references it.
        if (std::remove((dir_ + "/" + name).c_str()) == 0) {
            core::MutexLock lock(mutex_);
            ++stats_.tmpCleaned;
        }
    }

    Count bad = 0;
    for (const std::string &name : entries) {
        std::string path = dir_ + "/" + name;
        std::optional<std::string> data = readFile(path);
        std::string payload;
        bool ok = data && tryUnframeEntry(*data, &payload);
        {
            core::MutexLock lock(mutex_);
            ++stats_.scanned;
        }
        if (!ok) {
            warn("cache: startup scan quarantining %s", path.c_str());
            quarantine(path);
            ++bad;
        }
    }
    if (bad > 0)
        inform("cache: startup scan quarantined %llu of %zu entries",
               static_cast<unsigned long long>(bad), entries.size());
    return bad;
}

} // namespace ringsim::service
