/**
 * @file
 * NDJSON socket front-end for the experiment service.
 *
 * One SocketServer binds a listening endpoint and pumps lines between
 * connections and a ServiceCore: every received line is one request,
 * every response is one line. All protocol logic lives in the core —
 * this file is transport only.
 *
 * Endpoints:
 *   "tcp:PORT"     listen on 127.0.0.1:PORT (loopback only; the
 *                  service runs arbitrary-cost jobs and has no auth)
 *   "unix:PATH"    listen on a Unix-domain stream socket
 *   "PATH"         shorthand for unix:PATH
 */

#ifndef RINGSIM_SERVICE_SOCKET_SERVER_HPP
#define RINGSIM_SERVICE_SOCKET_SERVER_HPP

#include <string>
#include <vector>

#include "service/connection_registry.hpp"
#include "service/line_service.hpp"

namespace ringsim::service {

class SocketServer
{
  public:
    SocketServer(LineService &core, std::string endpoint);

    /** Closes the listener and joins connection threads. */
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /**
     * Bind and listen. Returns false (and fills @p error) on any
     * socket failure; the daemon should exit rather than retry.
     */
    [[nodiscard]] bool tryStart(std::string *error);

    /**
     * Accept-and-pump until the core accepts a shutdown request.
     * Call after tryStart() succeeded.
     */
    void serve();

    /** The endpoint string this server was built with. */
    const std::string &endpoint() const { return endpoint_; }

    /** Connection-thread lifecycle counters (for tests). */
    ConnectionRegistry::Counts connectionCounts() const
    {
        return conns_.counts();
    }

  private:
    void handleConnection(int fd, std::string client);

    LineService &core_;
    const std::string endpoint_;
    int listen_fd_ = -1;
    bool unix_path_bound_ = false;
    std::string unix_path_;
    /** Pump threads, one per accepted connection. */
    ConnectionRegistry conns_;
};

/**
 * Split an endpoint string. Returns true and fills either @p tcp_port
 * (tcp) or @p unix_path (unix); false with @p error on a malformed
 * endpoint.
 */
[[nodiscard]] bool tryParseEndpoint(const std::string &endpoint,
                                    int *tcp_port,
                                    std::string *unix_path,
                                    std::string *error);

/**
 * Split a comma-separated endpoint list ("tcp:7001,tcp:7002,..."),
 * dropping empty segments. Shared by --peers, --workers endpoint
 * lists and the multi-endpoint ringsim_submit form.
 */
std::vector<std::string> splitEndpointList(const std::string &list);

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_SOCKET_SERVER_HPP
