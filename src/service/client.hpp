/**
 * @file
 * Blocking NDJSON client for the experiment service.
 *
 * A ServiceClient holds one connection and exchanges one request line
 * for one response line. The benches use it to route sweeps through a
 * daemon (--service); ringsim_submit is a thin CLI over it.
 */

#ifndef RINGSIM_SERVICE_CLIENT_HPP
#define RINGSIM_SERVICE_CLIENT_HPP

#include <string>

#include "util/json.hpp"

namespace ringsim::service {

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(ServiceClient &&other) noexcept;
    ServiceClient &operator=(ServiceClient &&other) noexcept;
    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Connect to @p endpoint (same grammar as the server:
     * tcp:PORT / unix:PATH / PATH). False + @p error on failure.
     */
    [[nodiscard]] bool tryConnect(const std::string &endpoint,
                                  std::string *error);

    /** True while a connection is open. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Send @p line and block for the one-line response (returned
     * without the newline). False + @p error on transport failure.
     */
    [[nodiscard]] bool tryRequest(const std::string &line,
                                  std::string *response,
                                  std::string *error);

    /**
     * tryRequest + parse. False + @p error on transport or JSON
     * failure, or when the response says {"ok":false} (the server's
     * "error" member, and any retry_after_ms hint, become @p error).
     */
    [[nodiscard]] bool tryCall(const util::JsonValue &request,
                               util::JsonValue *response,
                               std::string *error);

    /**
     * tryCall that survives a chaotic daemon: a dropped connection,
     * a garbled (unparsable) response line, or an overload shed is
     * retried up to @p attempts times — reconnecting as needed and
     * honoring the server's retry_after_ms hint. Legal for every
     * current op because requests are idempotent: a submit replayed
     * after a lost response re-answers from the memo cache.
     * Non-transient {"ok":false} errors fail immediately.
     */
    [[nodiscard]] bool tryCallResilient(const util::JsonValue &request,
                                        util::JsonValue *response,
                                        std::string *error,
                                        unsigned attempts = 8);

  private:
    void closeFd();

    int fd_ = -1;
    std::string endpoint_; //!< last tryConnect target (for retries)
    std::string buffer_;   //!< bytes read past the last response line
};

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_CLIENT_HPP
