/**
 * @file
 * ringsim_submit: command-line client for ringsim_serve.
 *
 *   ringsim_submit --endpoint E ping
 *   ringsim_submit --endpoint E submit [--wait] [--text]
 *                  [--client NAME] [--deadline-ms N] [--no-degrade]
 *                  '<job json>'   ("-" = stdin)
 *   ringsim_submit --endpoint E poll ID
 *   ringsim_submit --endpoint E cancel ID
 *   ringsim_submit --endpoint E stream ID [--interval-ms N]
 *   ringsim_submit --endpoint E statsz
 *   ringsim_submit --endpoint E shutdown
 *
 * Every command prints the server's response line; --text unwraps a
 * sweep result's rendered table instead, so a routed figure run can be
 * diffed byte-for-byte against the bench binary's stdout.
 *
 * Requests ride the resilient client call: a dropped connection, a
 * garbled response or an overload shed is retried transparently, so
 * the CLI keeps working against a daemon running with --chaos.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "service/client.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

using namespace ringsim;

namespace {

void
usage()
{
    std::cout <<
        "usage: ringsim_submit [--endpoint E] COMMAND\n"
        "  ping\n"
        "  submit [--wait] [--text] [--client NAME]\n"
        "         [--deadline-ms N] [--no-degrade] '<job json>'\n"
        "  poll ID\n"
        "  cancel ID\n"
        "  stream ID [--interval-ms N]\n"
        "  statsz\n"
        "  shutdown\n"
        "Job JSON of '-' is read from stdin. Default endpoint: "
        "ringsim.sock\n";
}

service::ServiceClient
connectOrDie(const std::string &endpoint)
{
    service::ServiceClient client;
    std::string error;
    if (!client.tryConnect(endpoint, &error))
        fatal("%s", error.c_str());
    return client;
}

util::JsonValue
callOrDie(service::ServiceClient &client,
          const util::JsonValue &request)
{
    util::JsonValue response;
    std::string error;
    if (!client.tryCallResilient(request, &response, &error))
        fatal("%s", error.c_str());
    return response;
}

/** Print a response; with @p text, unwrap result.text when present. */
void
printResponse(const util::JsonValue &response, bool text)
{
    if (text) {
        if (const util::JsonValue *result = response.find("result")) {
            if (const util::JsonValue *t = result->find("text")) {
                std::cout << t->asString();
                return;
            }
        }
    }
    std::cout << response.dump() << "\n";
}

int
cmdSubmit(service::ServiceClient &client, int argc, char **argv,
          int i)
{
    bool wait = false, text = false, no_degrade = false;
    std::uint64_t deadline_ms = 0;
    std::string who, job_text;
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--wait") {
            wait = true;
        } else if (arg == "--text") {
            text = true;
        } else if (arg == "--no-degrade") {
            no_degrade = true;
        } else if (arg == "--deadline-ms") {
            if (i + 1 >= argc)
                fatal("--deadline-ms needs a value");
            deadline_ms = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--client") {
            if (i + 1 >= argc)
                fatal("--client needs a value");
            who = argv[++i];
        } else if (job_text.empty()) {
            job_text = arg;
        } else {
            fatal("unexpected argument '%s'", arg.c_str());
        }
    }
    if (job_text.empty())
        fatal("submit needs a job JSON argument ('-' = stdin)");
    if (job_text == "-") {
        std::string line;
        job_text.clear();
        while (std::getline(std::cin, line))
            job_text += line;
    }
    util::JsonValue job;
    std::string error;
    if (!util::tryParseJson(job_text, &job, &error))
        fatal("bad job json: %s", error.c_str());
    if (deadline_ms > 0)
        job.set("deadline_ms", util::JsonValue::integer(deadline_ms));
    if (no_degrade)
        job.set("degrade", util::JsonValue::boolean(false));

    util::JsonValue req = util::JsonValue::object();
    req.set("op", util::JsonValue::string("submit"));
    if (!who.empty())
        req.set("client", util::JsonValue::string(who));
    req.set("wait", util::JsonValue::boolean(wait));
    req.set("job", std::move(job));
    printResponse(callOrDie(client, req), text);
    return 0;
}

/** Poll until the job leaves the pool, reporting state changes. */
int
cmdStream(service::ServiceClient &client, std::uint64_t id,
          std::uint64_t interval_ms)
{
    std::string last_state;
    for (;;) {
        util::JsonValue req = util::JsonValue::object();
        req.set("op", util::JsonValue::string("poll"));
        req.set("id", util::JsonValue::integer(id));
        util::JsonValue response = callOrDie(client, req);
        std::vector<std::string> errors;
        std::string state = response.getString("state", "?", &errors);
        if (state != last_state) {
            std::cerr << "job " << id << ": " << state << "\n";
            last_state = state;
        }
        if (state != "queued" && state != "running") {
            printResponse(response, false);
            return state == "done" ? 0 : 1;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string endpoint = "ringsim.sock";
    int i = 1;
    if (i < argc && std::string(argv[i]) == "--endpoint") {
        if (i + 1 >= argc)
            fatal("--endpoint needs a value");
        endpoint = argv[i + 1];
        i += 2;
    }
    if (i >= argc) {
        usage();
        return 2;
    }
    std::string cmd = argv[i++];
    if (cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }

    service::ServiceClient client = connectOrDie(endpoint);
    if (cmd == "ping" || cmd == "statsz" || cmd == "shutdown") {
        util::JsonValue req = util::JsonValue::object();
        req.set("op", util::JsonValue::string(cmd));
        printResponse(callOrDie(client, req), false);
        return 0;
    }
    if (cmd == "submit")
        return cmdSubmit(client, argc, argv, i);
    if (cmd == "poll" || cmd == "cancel" || cmd == "stream") {
        if (i >= argc)
            fatal("%s needs a job id", cmd.c_str());
        std::uint64_t id =
            std::strtoull(argv[i++], nullptr, 10);
        if (cmd == "poll" || cmd == "cancel") {
            util::JsonValue req = util::JsonValue::object();
            req.set("op", util::JsonValue::string(cmd));
            req.set("id", util::JsonValue::integer(id));
            printResponse(callOrDie(client, req), false);
            return 0;
        }
        std::uint64_t interval_ms = 200;
        if (i < argc && std::string(argv[i]) == "--interval-ms") {
            if (i + 1 >= argc)
                fatal("--interval-ms needs a value");
            interval_ms = std::strtoull(argv[i + 1], nullptr, 10);
        }
        return cmdStream(client, id, interval_ms);
    }
    fatal("unknown command '%s' (try --help)", cmd.c_str());
}
