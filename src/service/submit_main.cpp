/**
 * @file
 * ringsim_submit: command-line client for ringsim_serve /
 * ringsim_fleetd.
 *
 *   ringsim_submit --endpoint E ping
 *   ringsim_submit --endpoint E submit [--wait] [--text]
 *                  [--client NAME] [--deadline-ms N] [--no-degrade]
 *                  '<job json>'   ("-" = stdin)
 *   ringsim_submit --endpoint E poll ID
 *   ringsim_submit --endpoint E cancel ID
 *   ringsim_submit --endpoint E stream ID [--interval-ms N]
 *   ringsim_submit --endpoint E statsz
 *   ringsim_submit --endpoint E shutdown
 *
 * --service E1,E2,... targets a fleet of daemons directly, with
 * deterministic routing: a submit connects to the shard its job's
 * canonical cache key owns (the same shard function ringsim_fleetd
 * uses, so the CLI and a coordinator agree on placement), and fails
 * over along the key's failover order when that daemon is down.
 * Other commands try the endpoints in listed order. Job ids are
 * per-daemon — poll/cancel/stream a multi-endpoint id on the daemon
 * that answered the submit (printed as "endpoint").
 *
 * Every command prints the server's response line; --text unwraps a
 * sweep result's rendered table instead, so a routed figure run can be
 * diffed byte-for-byte against the bench binary's stdout.
 *
 * Requests ride the resilient client call: a dropped connection, a
 * garbled response or an overload shed is retried transparently, so
 * the CLI keeps working against a daemon running with --chaos.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "fleet/shard.hpp"
#include "service/cache_key.hpp"
#include "service/client.hpp"
#include "service/job.hpp"
#include "service/socket_server.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

using namespace ringsim;

namespace {

void
usage()
{
    std::cout <<
        "usage: ringsim_submit [--endpoint E | --service E1,E2,...] "
        "COMMAND\n"
        "  ping\n"
        "  submit [--wait] [--text] [--client NAME]\n"
        "         [--deadline-ms N] [--no-degrade] '<job json>'\n"
        "  poll ID\n"
        "  cancel ID\n"
        "  stream ID [--interval-ms N]\n"
        "  statsz\n"
        "  shutdown\n"
        "Job JSON of '-' is read from stdin. Default endpoint: "
        "ringsim.sock\n"
        "--service routes a submit to its job's shard (failing over\n"
        "deterministically) and other commands to the first "
        "reachable\n"
        "endpoint in listed order.\n";
}

/**
 * Connect to the first reachable endpoint of @p order (indices into
 * @p endpoints); fatal() when none answers. Fills @p *chosen.
 */
service::ServiceClient
connectOrDie(const std::vector<std::string> &endpoints,
             const std::vector<std::size_t> &order,
             std::string *chosen)
{
    std::string first_error;
    for (std::size_t index : order) {
        service::ServiceClient client;
        std::string error;
        if (client.tryConnect(endpoints[index], &error)) {
            *chosen = endpoints[index];
            return client;
        }
        if (first_error.empty())
            first_error = endpoints[index] + ": " + error;
        if (endpoints.size() > 1)
            warn("%s: %s (failing over)", endpoints[index].c_str(),
                 error.c_str());
    }
    fatal("no endpoint reachable: %s", first_error.c_str());
}

/** The listed-order identity permutation 0..n-1. */
std::vector<std::size_t>
listedOrder(std::size_t n)
{
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        order.push_back(i);
    return order;
}

util::JsonValue
callOrDie(service::ServiceClient &client,
          const util::JsonValue &request)
{
    util::JsonValue response;
    std::string error;
    if (!client.tryCallResilient(request, &response, &error))
        fatal("%s", error.c_str());
    return response;
}

/** Print a response; with @p text, unwrap result.text when present. */
void
printResponse(const util::JsonValue &response, bool text)
{
    if (text) {
        if (const util::JsonValue *result = response.find("result")) {
            if (const util::JsonValue *t = result->find("text")) {
                std::cout << t->asString();
                return;
            }
        }
    }
    std::cout << response.dump() << "\n";
}

int
cmdSubmit(const std::vector<std::string> &endpoints, int argc,
          char **argv, int i)
{
    bool wait = false, text = false, no_degrade = false;
    std::uint64_t deadline_ms = 0;
    std::string who, job_text;
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--wait") {
            wait = true;
        } else if (arg == "--text") {
            text = true;
        } else if (arg == "--no-degrade") {
            no_degrade = true;
        } else if (arg == "--deadline-ms") {
            if (i + 1 >= argc)
                fatal("--deadline-ms needs a value");
            deadline_ms = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--client") {
            if (i + 1 >= argc)
                fatal("--client needs a value");
            who = argv[++i];
        } else if (job_text.empty()) {
            job_text = arg;
        } else {
            fatal("unexpected argument '%s'", arg.c_str());
        }
    }
    if (job_text.empty())
        fatal("submit needs a job JSON argument ('-' = stdin)");
    if (job_text == "-") {
        std::string line;
        job_text.clear();
        while (std::getline(std::cin, line))
            job_text += line;
    }
    util::JsonValue job;
    std::string error;
    if (!util::tryParseJson(job_text, &job, &error))
        fatal("bad job json: %s", error.c_str());
    if (deadline_ms > 0)
        job.set("deadline_ms", util::JsonValue::integer(deadline_ms));
    if (no_degrade)
        job.set("degrade", util::JsonValue::boolean(false));

    // Deterministic placement: route to the shard the job's
    // canonical key owns, exactly as a fleet coordinator would, so a
    // repeat submission from any client lands on the same daemon's
    // warm cache. An unparsable spec falls back to listed order and
    // lets the daemon produce the real diagnostic.
    std::vector<std::size_t> order = listedOrder(endpoints.size());
    if (endpoints.size() > 1) {
        service::JobSpec spec;
        std::string spec_error;
        if (service::JobSpec::tryParse(job, true, &spec,
                                       &spec_error)) {
            std::string key =
                service::cacheKey(spec.canonical().dump(), "");
            order = fleet::failoverOrder(key, endpoints.size());
        }
    }
    std::string chosen;
    service::ServiceClient client =
        connectOrDie(endpoints, order, &chosen);

    util::JsonValue req = util::JsonValue::object();
    req.set("op", util::JsonValue::string("submit"));
    if (!who.empty())
        req.set("client", util::JsonValue::string(who));
    req.set("wait", util::JsonValue::boolean(wait));
    req.set("job", std::move(job));
    util::JsonValue response = callOrDie(client, req);
    if (endpoints.size() > 1 && !text)
        response.set("endpoint", util::JsonValue::string(chosen));
    printResponse(response, text);
    return 0;
}

/** Poll until the job leaves the pool, reporting state changes. */
int
cmdStream(service::ServiceClient &client, std::uint64_t id,
          std::uint64_t interval_ms)
{
    std::string last_state;
    for (;;) {
        util::JsonValue req = util::JsonValue::object();
        req.set("op", util::JsonValue::string("poll"));
        req.set("id", util::JsonValue::integer(id));
        util::JsonValue response = callOrDie(client, req);
        std::vector<std::string> errors;
        std::string state = response.getString("state", "?", &errors);
        if (state != last_state) {
            std::cerr << "job " << id << ": " << state << "\n";
            last_state = state;
        }
        if (state != "queued" && state != "running") {
            printResponse(response, false);
            return state == "done" ? 0 : 1;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> endpoints;
    int i = 1;
    while (i < argc) {
        std::string arg = argv[i];
        if (arg == "--endpoint") {
            if (i + 1 >= argc)
                fatal("--endpoint needs a value");
            endpoints.push_back(argv[i + 1]);
            i += 2;
        } else if (arg == "--service") {
            if (i + 1 >= argc)
                fatal("--service needs a value");
            for (std::string &endpoint :
                 service::splitEndpointList(argv[i + 1]))
                endpoints.push_back(std::move(endpoint));
            i += 2;
        } else {
            break;
        }
    }
    if (endpoints.empty())
        endpoints.push_back("ringsim.sock");
    if (i >= argc) {
        usage();
        return 2;
    }
    std::string cmd = argv[i++];
    if (cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }

    if (cmd == "submit")
        return cmdSubmit(endpoints, argc, argv, i);

    std::string chosen;
    service::ServiceClient client = connectOrDie(
        endpoints, listedOrder(endpoints.size()), &chosen);
    if (cmd == "ping" || cmd == "statsz" || cmd == "shutdown") {
        util::JsonValue req = util::JsonValue::object();
        req.set("op", util::JsonValue::string(cmd));
        printResponse(callOrDie(client, req), false);
        return 0;
    }
    if (cmd == "poll" || cmd == "cancel" || cmd == "stream") {
        if (i >= argc)
            fatal("%s needs a job id", cmd.c_str());
        std::uint64_t id =
            std::strtoull(argv[i++], nullptr, 10);
        if (cmd == "poll" || cmd == "cancel") {
            util::JsonValue req = util::JsonValue::object();
            req.set("op", util::JsonValue::string(cmd));
            req.set("id", util::JsonValue::integer(id));
            printResponse(callOrDie(client, req), false);
            return 0;
        }
        std::uint64_t interval_ms = 200;
        if (i < argc && std::string(argv[i]) == "--interval-ms") {
            if (i + 1 >= argc)
                fatal("--interval-ms needs a value");
            interval_ms = std::strtoull(argv[i + 1], nullptr, 10);
        }
        return cmdStream(client, id, interval_ms);
    }
    fatal("unknown command '%s' (try --help)", cmd.c_str());
}
