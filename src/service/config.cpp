#include "config.hpp"

#include "runner/experiment_runner.hpp"
#include "service/socket_server.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace ringsim::service {

ServiceConfig
ServiceConfig::withEnvDefaults()
{
    ServiceConfig cfg;
    cfg.watchdog =
        runner::watchdogBudget(std::chrono::milliseconds(600'000));
    if (auto salt = util::envString("RINGSIM_CACHE_SALT"))
        cfg.salt = *salt;
    return cfg;
}

std::vector<std::string>
ServiceConfig::check() const
{
    std::vector<std::string> errors;
    if (workers == 0)
        errors.push_back(
            "workers = 0: the service needs at least one executor");
    if (workers > 256)
        errors.push_back(strprintf(
            "workers = %u: more than 256 executors is almost "
            "certainly a misconfiguration",
            workers));
    if (queueDepth == 0)
        errors.push_back(
            "queueDepth = 0: every request would be shed");
    if (watchdog.count() < 0)
        errors.push_back(strprintf(
            "watchdog = %lld ms: watchdog budget cannot be negative",
            static_cast<long long>(watchdog.count())));
    if (retainDone == 0)
        errors.push_back(
            "retainDone = 0: async submissions could never be polled");
    for (std::string &e : chaos.check())
        errors.push_back("chaos: " + std::move(e));
    for (const std::string &peer : peers) {
        int tcp_port = -1;
        std::string unix_path, peer_error;
        if (!tryParseEndpoint(peer, &tcp_port, &unix_path,
                              &peer_error))
            errors.push_back("peers: " + peer_error);
    }
    return errors;
}

void
ServiceConfig::validate() const
{
    std::vector<std::string> errors = check();
    if (!errors.empty())
        fatal("service config: %s", errors.front().c_str());
}

} // namespace ringsim::service
