/**
 * @file
 * Transport-facing interface of an NDJSON line service.
 *
 * SocketServer pumps lines between connections and *some* request
 * handler; PR 5 hard-wired that handler to ServiceCore. The fleet
 * coordinator (src/fleet/) speaks the identical line protocol, so the
 * pump is generalized over this interface: one implementation is a
 * worker daemon (ServiceCore), another is the fleet router
 * (fleet::FleetCore), and both reuse the same accept loop, chaos
 * hooks and connection lifecycle.
 */

#ifndef RINGSIM_SERVICE_LINE_SERVICE_HPP
#define RINGSIM_SERVICE_LINE_SERVICE_HPP

#include <string>

namespace ringsim::fault {
class ServiceFaultInjector;
}

namespace ringsim::service {

class LineService
{
  public:
    virtual ~LineService() = default;

    /**
     * Handle one NDJSON request line from @p client (the connection's
     * identity) and return the one-line response (no trailing
     * newline). Must be safe to call from concurrent connection
     * threads.
     */
    virtual std::string handleLine(const std::string &client,
                                   const std::string &line) = 0;

    /** True once a shutdown request has been accepted. */
    virtual bool shutdownRequested() const = 0;

    /** The connection identified by @p client closed. */
    virtual void clientGone(const std::string &client) = 0;

    /** The chaos injector, or nullptr when chaos is off. */
    virtual fault::ServiceFaultInjector *chaosInjector()
    {
        return nullptr;
    }
};

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_LINE_SERVICE_HPP
