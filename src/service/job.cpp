#include "job.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/system.hpp"
#include "model/bus_model.hpp"
#include "model/calibration.hpp"
#include "model/result.hpp"
#include "model/ring_model.hpp"
#include "util/logging.hpp"
#include "verify/model.hpp"

namespace ringsim::service {

const char *
jobKindName(JobKind k)
{
    switch (k) {
      case JobKind::Run:
        return "run";
      case JobKind::Sweep:
        return "sweep";
      case JobKind::Model:
        return "model";
      case JobKind::Verify:
        return "verify";
      case JobKind::Sleep:
        return "sleep";
    }
    return "?";
}

namespace {

/** Non-fatal benchmark name lookup (the trace:: parser fatal()s). */
bool
tryBenchmarkFromName(const std::string &name, trace::Benchmark *out)
{
    std::string lower;
    for (char c : name)
        lower += static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    const struct
    {
        const char *name;
        trace::Benchmark b;
    } table[] = {
        {"mp3d", trace::Benchmark::MP3D},
        {"water", trace::Benchmark::WATER},
        {"cholesky", trace::Benchmark::CHOLESKY},
        {"fft", trace::Benchmark::FFT},
        {"weather", trace::Benchmark::WEATHER},
        {"simple", trace::Benchmark::SIMPLE},
    };
    for (const auto &entry : table) {
        if (lower == entry.name) {
            *out = entry.b;
            return true;
        }
    }
    return false;
}

/** The paper's valid (benchmark, procs) combinations. */
bool
validPreset(trace::Benchmark b, unsigned procs)
{
    switch (b) {
      case trace::Benchmark::MP3D:
      case trace::Benchmark::WATER:
      case trace::Benchmark::CHOLESKY:
        return procs == 8 || procs == 16 || procs == 32;
      case trace::Benchmark::FFT:
      case trace::Benchmark::WEATHER:
      case trace::Benchmark::SIMPLE:
        return procs == 64;
    }
    return false;
}

/** Lowercase wire name of a benchmark. */
std::string
benchmarkWireName(trace::Benchmark b)
{
    std::string lower;
    for (const char *p = trace::benchmarkName(b); *p; ++p)
        lower += static_cast<char>(std::tolower(
            static_cast<unsigned char>(*p)));
    return lower;
}

bool
parseFaults(const util::JsonValue &json, fault::FaultConfig *out,
            std::string *error)
{
    const util::JsonValue *f = json.find("faults");
    if (!f)
        return true; // fault-free default
    if (!f->isObject()) {
        *error = "faults = <non-object>: expected a JSON object";
        return false;
    }
    std::vector<std::string> errors;
    out->corruptRate = f->getNumber("corrupt_rate", 0.0, &errors);
    out->dropRate = f->getNumber("drop_rate", 0.0, &errors);
    out->stallRate = f->getNumber("stall_rate", 0.0, &errors);
    out->stallCycles = static_cast<unsigned>(
        f->getU64("stall_cycles", out->stallCycles, &errors));
    out->seed = f->getU64("seed", out->seed, &errors);
    out->maxFaults = f->getU64("max_faults", 0, &errors);
    out->maxRetries = static_cast<unsigned>(
        f->getU64("max_retries", out->maxRetries, &errors));
    out->retryTimeout = f->getU64("retry_timeout", 0, &errors);
    out->backoffBase = f->getU64("backoff_base", 0, &errors);
    if (errors.empty())
        for (std::string &e : out->check())
            errors.push_back(std::move(e));
    if (!errors.empty()) {
        *error = "faults: " + errors.front();
        return false;
    }
    return true;
}

/** Fault parameters as a canonical (fully materialized) object. */
util::JsonValue
canonicalFaults(const fault::FaultConfig &f)
{
    util::JsonValue o = util::JsonValue::object();
    o.set("corrupt_rate", util::JsonValue::number(f.corruptRate));
    o.set("drop_rate", util::JsonValue::number(f.dropRate));
    o.set("stall_rate", util::JsonValue::number(f.stallRate));
    o.set("stall_cycles", util::JsonValue::integer(f.stallCycles));
    o.set("seed", util::JsonValue::integer(f.seed));
    o.set("max_faults", util::JsonValue::integer(f.maxFaults));
    o.set("max_retries", util::JsonValue::integer(f.maxRetries));
    o.set("retry_timeout", util::JsonValue::integer(f.retryTimeout));
    o.set("backoff_base", util::JsonValue::integer(f.backoffBase));
    return o;
}

} // namespace

bool
JobSpec::tryParse(const util::JsonValue &json, bool allow_test_jobs,
                  JobSpec *out, std::string *error)
{
    if (!json.isObject()) {
        *error = "job = <non-object>: expected a JSON object";
        return false;
    }
    JobSpec spec;
    std::vector<std::string> errors;
    std::string type = json.getString("type", "", &errors);
    if (type == "run")
        spec.kind = JobKind::Run;
    else if (type == "sweep")
        spec.kind = JobKind::Sweep;
    else if (type == "model")
        spec.kind = JobKind::Model;
    else if (type == "verify")
        spec.kind = JobKind::Verify;
    else if (type == "sleep")
        spec.kind = JobKind::Sleep;
    else {
        *error = "type = '" + type +
                 "': expected run, sweep, model, verify or sleep";
        return false;
    }

    if (spec.kind == JobKind::Sleep) {
        if (!allow_test_jobs) {
            *error = "type = 'sleep': test jobs are disabled "
                     "(--test-jobs)";
            return false;
        }
        spec.sleepMs = json.getU64("ms", 10, &errors);
        // Deadlines apply to every kind; tests pin workers with
        // sleep jobs and need expirable queued work behind them.
        spec.deadlineMs = json.getU64("deadline_ms", 0, &errors);
        if (!errors.empty()) {
            *error = errors.front();
            return false;
        }
        *out = spec;
        return true;
    }

    // Shared workload knobs.
    spec.refs = json.getU64("refs", spec.refs, &errors);
    spec.seed = json.getU64("seed", spec.seed, &errors);
    spec.fast = json.getBool("fast", spec.fast, &errors);
    // Service-level knobs (excluded from canonical(): they bound
    // scheduling, not the computed bytes).
    spec.deadlineMs = json.getU64("deadline_ms", 0, &errors);
    spec.allowDegraded = json.getBool("degrade", true, &errors);
    if (spec.refs == 0) {
        *error = "refs = 0: must be positive";
        return false;
    }
    if (!parseFaults(json, &spec.faults, error))
        return false;

    if (spec.kind == JobKind::Sweep) {
        std::string fig = json.getString("figure", "", &errors);
        if (!figures::tryFigureFromName(fig, &spec.figure)) {
            *error = "figure = '" + fig +
                     "': expected fig3, fig4 or fig6";
            return false;
        }
        spec.csv = json.getBool("csv", false, &errors);
        spec.fig6Cholesky = json.getBool("cholesky", false, &errors);
        if (const util::JsonValue *part = json.find("part")) {
            if (!part->isNumber()) {
                *error = "part = <non-number>: expected a block index";
                return false;
            }
            spec.sweepPart = static_cast<std::int64_t>(
                json.getU64("part", 0, &errors));
            std::size_t count = figures::figureBlockCount(
                spec.figure, figures::FigureOptions{},
                spec.fig6Cholesky);
            if (spec.sweepPart < 0 ||
                static_cast<std::size_t>(spec.sweepPart) >= count) {
                *error = strprintf(
                    "part = %lld: %s has %zu blocks (0..%zu)",
                    static_cast<long long>(spec.sweepPart),
                    figures::figureName(spec.figure), count,
                    count - 1);
                return false;
            }
        }
    } else if (spec.kind == JobKind::Verify) {
        std::string proto = json.getString("protocol", "snoop",
                                           &errors);
        if (proto != "snoop" && proto != "directory") {
            *error = "protocol = '" + proto +
                     "': verify checks snoop or directory";
            return false;
        }
        spec.protocol = proto;
        spec.vNodes = static_cast<unsigned>(
            json.getU64("nodes", spec.vNodes, &errors));
        spec.vBlocks = static_cast<unsigned>(
            json.getU64("blocks", spec.vBlocks, &errors));
        spec.vInflight = static_cast<unsigned>(
            json.getU64("inflight", spec.vInflight, &errors));
        spec.vFaults = json.getBool("with_faults", false, &errors);
        spec.vFull = json.getBool("full", true, &errors);
        verify::ModelConfig mc;
        mc.protocol = proto == "snoop" ? verify::Protocol::Snoop
                                       : verify::Protocol::Directory;
        mc.nodes = spec.vNodes;
        mc.blocks = spec.vBlocks;
        mc.inflight = spec.vInflight;
        mc.faults = spec.vFaults;
        mc.fullInterleaving = spec.vFull;
        std::string mc_error = mc.check();
        if (!mc_error.empty()) {
            *error = mc_error;
            return false;
        }
    } else {
        // run / model
        std::string b = json.getString("benchmark", "mp3d", &errors);
        if (!tryBenchmarkFromName(b, &spec.benchmark)) {
            *error = "benchmark = '" + b +
                     "': expected mp3d, water, cholesky, fft, "
                     "weather or simple";
            return false;
        }
        spec.procs = static_cast<unsigned>(
            json.getU64("procs", spec.procs, &errors));
        if (!validPreset(spec.benchmark, spec.procs)) {
            *error = strprintf(
                "procs = %u: %s is defined for %s processors",
                spec.procs, benchmarkWireName(spec.benchmark).c_str(),
                spec.benchmark == trace::Benchmark::MP3D ||
                        spec.benchmark == trace::Benchmark::WATER ||
                        spec.benchmark == trace::Benchmark::CHOLESKY
                    ? "8/16/32"
                    : "64");
            return false;
        }
        std::string proto = json.getString("protocol", "snoop",
                                           &errors);
        if (proto != "snoop" && proto != "directory" &&
            proto != "bus") {
            *error = "protocol = '" + proto +
                     "': expected snoop, directory or bus";
            return false;
        }
        spec.protocol = proto;
        spec.period = json.getU64("period", 0, &errors);
        if (spec.kind == JobKind::Model)
            spec.cycleNs = json.getNumber("cycle_ns", spec.cycleNs,
                                          &errors);
        if (spec.cycleNs <= 0) {
            *error = strprintf("cycle_ns = %g: must be positive",
                               spec.cycleNs);
            return false;
        }
        if (proto == "bus" && spec.faults.enabled()) {
            *error = "faults: the bus has no fault model; fault "
                     "injection is ring-only";
            return false;
        }
    }
    if (!errors.empty()) {
        *error = errors.front();
        return false;
    }
    *out = spec;
    return true;
}

util::JsonValue
JobSpec::canonical() const
{
    util::JsonValue o = util::JsonValue::object();
    o.set("type", util::JsonValue::string(jobKindName(kind)));
    switch (kind) {
      case JobKind::Sleep:
        o.set("ms", util::JsonValue::integer(sleepMs));
        return o;
      case JobKind::Verify:
        o.set("protocol", util::JsonValue::string(protocol));
        o.set("nodes", util::JsonValue::integer(vNodes));
        o.set("blocks", util::JsonValue::integer(vBlocks));
        o.set("inflight", util::JsonValue::integer(vInflight));
        o.set("with_faults", util::JsonValue::boolean(vFaults));
        o.set("full", util::JsonValue::boolean(vFull));
        return o;
      case JobKind::Sweep:
        o.set("figure",
              util::JsonValue::string(figures::figureName(figure)));
        o.set("csv", util::JsonValue::boolean(csv));
        o.set("cholesky", util::JsonValue::boolean(fig6Cholesky));
        // A part spec is a distinct cacheable unit; a whole sweep
        // keeps its pre-part canonical form (warm caches survive).
        if (sweepPart >= 0)
            o.set("part", util::JsonValue::integer(
                              static_cast<std::uint64_t>(sweepPart)));
        break;
      case JobKind::Run:
      case JobKind::Model:
        o.set("benchmark",
              util::JsonValue::string(benchmarkWireName(benchmark)));
        o.set("procs", util::JsonValue::integer(procs));
        o.set("protocol", util::JsonValue::string(protocol));
        o.set("period", util::JsonValue::integer(period));
        if (kind == JobKind::Model)
            o.set("cycle_ns", util::JsonValue::number(cycleNs));
        break;
    }
    o.set("refs", util::JsonValue::integer(refs));
    o.set("seed", util::JsonValue::integer(seed));
    o.set("fast", util::JsonValue::boolean(fast));
    o.set("faults", canonicalFaults(faults));
    return o;
}

std::string
JobSpec::describe() const
{
    switch (kind) {
      case JobKind::Run:
      case JobKind::Model:
        return strprintf("%s %s/%u %s", jobKindName(kind),
                         benchmarkWireName(benchmark).c_str(), procs,
                         protocol.c_str());
      case JobKind::Sweep:
        if (sweepPart >= 0)
            return strprintf("sweep %s part %lld%s",
                             figures::figureName(figure),
                             static_cast<long long>(sweepPart),
                             fast ? " (fast)" : "");
        return strprintf("sweep %s%s", figures::figureName(figure),
                         fast ? " (fast)" : "");
      case JobKind::Verify:
        return strprintf("verify %s n=%u b=%u", protocol.c_str(),
                         vNodes, vBlocks);
      case JobKind::Sleep:
        return strprintf("sleep %llu ms",
                         static_cast<unsigned long long>(sleepMs));
    }
    return "?";
}

namespace {

trace::WorkloadConfig
workloadFor(const JobSpec &spec)
{
    trace::WorkloadConfig wl =
        trace::workloadPreset(spec.benchmark, spec.procs);
    wl.dataRefsPerProc = spec.fast ? spec.refs / 4 : spec.refs;
    wl.seed = spec.seed;
    return wl;
}

util::JsonValue
runResultJson(const core::RunResult &r,
              const trace::WorkloadConfig &wl)
{
    util::JsonValue o = util::JsonValue::object();
    o.set("kind", util::JsonValue::string("run"));
    o.set("protocol",
          util::JsonValue::string(core::protocolName(r.protocol)));
    o.set("workload", util::JsonValue::string(wl.displayName()));
    o.set("proc_util", util::JsonValue::number(r.procUtilization));
    o.set("net_util", util::JsonValue::number(r.networkUtilization));
    o.set("miss_lat_ns", util::JsonValue::number(r.missLatencyNs));
    o.set("miss_lat_all_ns",
          util::JsonValue::number(r.missLatencyAllNs));
    o.set("upgrade_lat_ns",
          util::JsonValue::number(r.upgradeLatencyNs));
    o.set("acquire_wait_ns",
          util::JsonValue::number(r.acquireWaitNs));
    o.set("window", util::JsonValue::integer(r.window));
    o.set("local_misses", util::JsonValue::integer(r.localMisses));
    o.set("clean_miss1", util::JsonValue::integer(r.cleanMiss1));
    o.set("dirty_miss1", util::JsonValue::integer(r.dirtyMiss1));
    o.set("miss2", util::JsonValue::integer(r.miss2));
    o.set("upgrades", util::JsonValue::integer(r.upgrades));
    o.set("faults_injected",
          util::JsonValue::integer(r.faultsInjected));
    o.set("retries", util::JsonValue::integer(r.retries));
    o.set("recovered", util::JsonValue::integer(r.recovered));
    o.set("fatal_txns", util::JsonValue::integer(r.fatalTxns));
    o.set("nacks", util::JsonValue::integer(r.nacks));
    o.set("timeouts", util::JsonValue::integer(r.timeouts));
    return o;
}

util::JsonValue
executeRun(const JobSpec &spec)
{
    trace::WorkloadConfig wl = workloadFor(spec);
    if (spec.protocol == "bus") {
        core::BusSystemConfig cfg = core::BusSystemConfig::forProcs(
            spec.procs, spec.period ? spec.period : 20000);
        return runResultJson(core::runBusSystem(cfg, wl), wl);
    }
    core::RingSystemConfig cfg = core::RingSystemConfig::forProcs(
        spec.procs, spec.period ? spec.period : 2000);
    cfg.common.faults = spec.faults;
    core::ProtocolKind kind = spec.protocol == "snoop"
                                  ? core::ProtocolKind::RingSnoop
                                  : core::ProtocolKind::RingDirectory;
    return runResultJson(core::runRingSystem(cfg, wl, kind), wl);
}

util::JsonValue
executeModel(const JobSpec &spec)
{
    trace::WorkloadConfig wl = workloadFor(spec);
    coherence::Census census = model::calibrate(wl);
    model::ModelResult r;
    if (spec.protocol == "bus") {
        model::BusModelInput in;
        in.census = census;
        in.bus = core::BusSystemConfig::forProcs(
                     spec.procs, spec.period ? spec.period : 20000)
                     .bus;
        in.system.procCycle = nsToTicks(spec.cycleNs);
        r = model::solveBus(in);
    } else {
        model::RingModelInput in;
        in.census = census;
        in.ring = core::RingSystemConfig::forProcs(
                      spec.procs, spec.period ? spec.period : 2000)
                      .ring;
        in.system.procCycle = nsToTicks(spec.cycleNs);
        in.protocol = spec.protocol == "snoop"
                          ? model::RingProtocol::Snoop
                          : model::RingProtocol::Directory;
        r = model::solveRing(in);
    }
    util::JsonValue o = util::JsonValue::object();
    o.set("kind", util::JsonValue::string("model"));
    o.set("workload", util::JsonValue::string(wl.displayName()));
    o.set("protocol", util::JsonValue::string(spec.protocol));
    o.set("cycle_ns", util::JsonValue::number(spec.cycleNs));
    o.set("proc_util", util::JsonValue::number(r.procUtilization));
    o.set("net_util", util::JsonValue::number(r.networkUtilization));
    o.set("miss_lat_ns", util::JsonValue::number(r.missLatencyNs));
    return o;
}

util::JsonValue
executeSweep(const JobSpec &spec, unsigned sweep_jobs)
{
    figures::FigureOptions opt;
    opt.refs = spec.refs;
    opt.seed = spec.seed;
    opt.fast = spec.fast;
    opt.jobs = sweep_jobs;
    opt.faults = spec.faults;
    if (spec.sweepPart >= 0) {
        // One block of the figure: the rows travel back as strings so
        // the coordinator's reassembly is a pure concatenation — no
        // numeric re-formatting between worker and assembled output.
        std::vector<figures::FigureRow> rows = figures::runFigureBlock(
            spec.figure, opt,
            static_cast<std::size_t>(spec.sweepPart),
            spec.fig6Cholesky);
        util::JsonValue jrows = util::JsonValue::array();
        for (const figures::FigureRow &row : rows) {
            util::JsonValue jrow = util::JsonValue::array();
            for (const std::string &cell : row)
                jrow.append(util::JsonValue::string(cell));
            jrows.append(std::move(jrow));
        }
        util::JsonValue o = util::JsonValue::object();
        o.set("kind", util::JsonValue::string("sweep_part"));
        o.set("figure", util::JsonValue::string(
                            figures::figureName(spec.figure)));
        o.set("part", util::JsonValue::integer(
                          static_cast<std::uint64_t>(spec.sweepPart)));
        o.set("rows", std::move(jrows));
        return o;
    }
    std::string text = figures::renderFigure(
        spec.figure, opt, spec.csv, spec.fig6Cholesky);
    util::JsonValue o = util::JsonValue::object();
    o.set("kind", util::JsonValue::string("sweep"));
    o.set("figure",
          util::JsonValue::string(figures::figureName(spec.figure)));
    o.set("text", util::JsonValue::string(std::move(text)));
    return o;
}

util::JsonValue
executeVerify(const JobSpec &spec)
{
    verify::ModelConfig mc;
    mc.protocol = spec.protocol == "snoop"
                      ? verify::Protocol::Snoop
                      : verify::Protocol::Directory;
    mc.nodes = spec.vNodes;
    mc.blocks = spec.vBlocks;
    mc.inflight = spec.vInflight;
    mc.faults = spec.vFaults;
    mc.fullInterleaving = spec.vFull;
    verify::ModelReport report = verify::checkProtocol(mc);
    util::JsonValue o = util::JsonValue::object();
    o.set("kind", util::JsonValue::string("verify"));
    o.set("protocol", util::JsonValue::string(spec.protocol));
    o.set("clean", util::JsonValue::boolean(report.clean()));
    o.set("violations",
          util::JsonValue::integer(report.violationsTotal));
    o.set("functional_states",
          util::JsonValue::integer(report.functionalStates));
    o.set("product_states",
          util::JsonValue::integer(report.productStates));
    o.set("summary", util::JsonValue::string(report.summary()));
    return o;
}

util::JsonValue
executeSleep(const JobSpec &spec)
{
    std::this_thread::sleep_for(
        std::chrono::milliseconds(spec.sleepMs));
    util::JsonValue o = util::JsonValue::object();
    o.set("kind", util::JsonValue::string("sleep"));
    o.set("slept_ms", util::JsonValue::integer(spec.sleepMs));
    return o;
}

} // namespace

util::JsonValue
executeJob(const JobSpec &spec, unsigned sweep_jobs)
{
    switch (spec.kind) {
      case JobKind::Run:
        return executeRun(spec);
      case JobKind::Sweep:
        return executeSweep(spec, sweep_jobs);
      case JobKind::Model:
        return executeModel(spec);
      case JobKind::Verify:
        return executeVerify(spec);
      case JobKind::Sleep:
        return executeSleep(spec);
    }
    throw std::runtime_error("unreachable job kind");
}

util::JsonValue
executeDegraded(const JobSpec &spec, unsigned sweep_jobs)
{
    util::JsonValue o;
    switch (spec.kind) {
      case JobKind::Run:
      case JobKind::Model: {
        // A run degrades to the queueing-model solve of the same
        // configuration (a model job "degrades" to itself: it is
        // already the fast tier, so answering inline is exact).
        JobSpec model_spec = spec;
        model_spec.kind = JobKind::Model;
        o = executeModel(model_spec);
        o.set("exact_kind",
              util::JsonValue::string(jobKindName(spec.kind)));
        break;
      }
      case JobKind::Sweep: {
        if (spec.sweepPart >= 0)
            throw std::runtime_error(
                "sweep parts have no degraded tier");
        figures::FigureOptions opt;
        opt.refs = spec.refs;
        opt.seed = spec.seed;
        opt.fast = spec.fast;
        opt.jobs = sweep_jobs;
        opt.faults = spec.faults;
        opt.modelOnly = true;
        std::string text = figures::renderFigure(
            spec.figure, opt, spec.csv, spec.fig6Cholesky);
        o = util::JsonValue::object();
        o.set("kind", util::JsonValue::string("sweep"));
        o.set("figure", util::JsonValue::string(
                            figures::figureName(spec.figure)));
        o.set("model_only", util::JsonValue::boolean(true));
        o.set("text", util::JsonValue::string(std::move(text)));
        break;
      }
      default:
        throw std::runtime_error(
            strprintf("job kind %s has no degraded tier",
                      jobKindName(spec.kind)));
    }
    o.set("degraded", util::JsonValue::boolean(true));
    // Model jobs answered by the model are exact; everything else
    // carries the paper's calibrated accuracy envelope.
    o.set("error_bound",
          util::JsonValue::number(
              spec.kind == JobKind::Model ? 0.0
                                          : model::kModelErrorBound));
    return o;
}

} // namespace ringsim::service
