/**
 * @file
 * Joinable registry of connection pump threads.
 *
 * The socket front-end spawns one thread per accepted connection.
 * Tracking them used to be ad hoc — a shared_ptr<atomic<bool>> "done"
 * flag per thread plus a manual sweep in the accept loop — which
 * worked but was unannotated, untested and easy to get subtly wrong.
 * ConnectionRegistry owns the whole lifecycle instead:
 *
 *   launch(body)   registers a slot and starts a thread that runs
 *                  @p body and then retires its own slot. The slot is
 *                  registered while the registry lock is held, so a
 *                  body that returns instantly cannot race its own
 *                  registration.
 *   reapFinished() joins every retired thread (call opportunistically
 *                  from the accept loop so a long-running daemon never
 *                  accumulates one thread object per connection ever
 *                  accepted).
 *   joinAll()      claims every slot — live or retired — and joins the
 *                  threads; the destructor calls it. Live bodies must
 *                  already have a reason to exit (closed fds, a
 *                  shutdown flag): the registry joins, it does not
 *                  interrupt.
 *
 * Thread-safe; lock discipline is annotated for Clang Thread Safety
 * Analysis (core/thread_annotations.hpp). Joins always happen outside
 * the lock, so a retiring thread's finish() can never deadlock
 * against a concurrent reap.
 */

#ifndef RINGSIM_SERVICE_CONNECTION_REGISTRY_HPP
#define RINGSIM_SERVICE_CONNECTION_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"

namespace ringsim::service {

class ConnectionRegistry
{
  public:
    ConnectionRegistry() = default;

    /** Joins every remaining thread (joinAll). */
    ~ConnectionRegistry();

    ConnectionRegistry(const ConnectionRegistry &) = delete;
    ConnectionRegistry &operator=(const ConnectionRegistry &) = delete;

    /**
     * Start a thread running @p body; returns its registry id. The
     * thread retires its own slot when @p body returns.
     */
    std::uint64_t launch(std::function<void()> body) EXCLUDES(mutex_);

    /** Join threads whose body has returned. */
    void reapFinished() EXCLUDES(mutex_);

    /** Join every thread, live or retired. */
    void joinAll() EXCLUDES(mutex_);

    /** Lifecycle counters (for tests and introspection). */
    struct Counts
    {
        std::uint64_t launched = 0; //!< threads ever started
        std::uint64_t finished = 0; //!< bodies that returned
        std::uint64_t joined = 0;   //!< threads claimed for joining
        std::size_t live = 0;       //!< bodies still running
    };
    Counts counts() const EXCLUDES(mutex_);

  private:
    struct Slot
    {
        std::uint64_t id = 0;
        std::thread thread;
    };

    /** Retire the calling thread's slot (no-op if already claimed). */
    void finish(std::uint64_t id) EXCLUDES(mutex_);

    mutable core::Mutex mutex_;
    std::vector<Slot> live_ GUARDED_BY(mutex_);
    std::vector<Slot> finished_ GUARDED_BY(mutex_);
    std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
    std::uint64_t launched_ GUARDED_BY(mutex_) = 0;
    std::uint64_t finished_count_ GUARDED_BY(mutex_) = 0;
    std::uint64_t joined_ GUARDED_BY(mutex_) = 0;
};

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_CONNECTION_REGISTRY_HPP
