#include "server.hpp"

#include <algorithm>

#include "service/cache_key.hpp"
#include "service/client.hpp"
#include "util/logging.hpp"

namespace ringsim::service {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

util::JsonValue
errorResponse(const char *op, const std::string &message)
{
    util::JsonValue o = util::JsonValue::object();
    o.set("ok", util::JsonValue::boolean(false));
    if (op)
        o.set("op", util::JsonValue::string(op));
    o.set("error", util::JsonValue::string(message));
    return o;
}

} // namespace

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::TimedOut:
        return "timed_out";
      case JobState::Cancelled:
        return "cancelled";
    }
    return "?";
}

ServiceCore::ServiceCore(const ServiceConfig &cfg)
    : cfg_(cfg), latency_hist_(0, 60'000, 600)
{
    cfg_.validate();
    cache_ = std::make_unique<ResultCache>(cfg_.memCacheEntries,
                                           cfg_.cacheDir);
    if (cfg_.chaos.enabled()) {
        chaos_ =
            std::make_unique<fault::ServiceFaultInjector>(cfg_.chaos);
        cache_->setChaos(chaos_.get());
        warn("service: CHAOS injection enabled (seed %llu) — "
             "expect torn writes, garbled and dropped responses",
             static_cast<unsigned long long>(cfg_.chaos.seed));
    }
    pool_ = std::make_unique<runner::ExperimentRunner>(cfg_.workers);
    inform("service: %u workers, queue depth %zu, cache %zu entries%s",
           pool_->jobs(), cfg_.queueDepth, cfg_.memCacheEntries,
           cfg_.cacheDir.empty() ? "" : (" + disk " + cfg_.cacheDir)
                                            .c_str());
}

ServiceCore::~ServiceCore()
{
    pool_->waitAll();
}

bool
ServiceCore::shutdownRequested() const
{
    core::MutexLock lock(mutex_);
    return shutdown_;
}

std::string
ServiceCore::handleLine(const std::string &client,
                        const std::string &line)
{
    util::JsonValue req;
    std::string parse_error;
    if (!tryParseJson(line, &req, &parse_error)) {
        core::MutexLock lock(mutex_);
        bad_requests_.inc();
        return errorResponse(nullptr, "bad request: " + parse_error)
            .dump();
    }
    if (!req.isObject()) {
        core::MutexLock lock(mutex_);
        bad_requests_.inc();
        return errorResponse(nullptr,
                             "bad request: expected a JSON object")
            .dump();
    }
    std::vector<std::string> errors;
    std::string op = req.getString("op", "", &errors);
    if (op == "ping") {
        util::JsonValue o = util::JsonValue::object();
        o.set("ok", util::JsonValue::boolean(true));
        o.set("op", util::JsonValue::string("ping"));
        return o.dump();
    }
    if (op == "submit")
        return handleSubmit(client, req);
    if (op == "poll")
        return handlePoll(req);
    if (op == "cancel")
        return handleCancel(req);
    if (op == "cache_get")
        return handleCacheGet(req);
    if (op == "statsz")
        return handleStatsz();
    if (op == "shutdown") {
        {
            core::MutexLock lock(mutex_);
            shutdown_ = true;
        }
        done_cv_.notify_all();
        util::JsonValue o = util::JsonValue::object();
        o.set("ok", util::JsonValue::boolean(true));
        o.set("op", util::JsonValue::string("shutdown"));
        return o.dump();
    }
    core::MutexLock lock(mutex_);
    bad_requests_.inc();
    return errorResponse(nullptr,
                         "op = '" + op +
                             "': expected ping, submit, poll, "
                             "cancel, cache_get, statsz or shutdown")
        .dump();
}

std::string
ServiceCore::handleSubmit(const std::string &client,
                          const util::JsonValue &req)
{
    std::vector<std::string> errors;
    std::string who = req.getString("client", client, &errors);
    bool wait = req.getBool("wait", false, &errors);
    const util::JsonValue *job = req.find("job");
    if (!job) {
        core::MutexLock lock(mutex_);
        bad_requests_.inc();
        return errorResponse("submit", "job = <missing>: a submit "
                                       "needs a job object")
            .dump();
    }
    JobSpec spec;
    std::string parse_error;
    if (!JobSpec::tryParse(*job, cfg_.enableTestJobs, &spec,
                           &parse_error) ||
        !errors.empty()) {
        core::MutexLock lock(mutex_);
        bad_requests_.inc();
        return errorResponse("submit", parse_error.empty()
                                           ? errors.front()
                                           : parse_error)
            .dump();
    }

    std::string key;
    if (spec.cacheable()) {
        key = cacheKey(spec.canonical().dump(), cfg_.salt);
        std::optional<std::string> hit = cache_->get(key);
        bool from_peer = false;
        if (!hit && !cfg_.peers.empty()) {
            // Fleet cache tier: a warm answer on any peer beats
            // recomputing here. The raw bytes travel as an opaque
            // string, so promotion preserves them exactly.
            hit = peerLookup(key);
            from_peer = hit.has_value();
        }
        if (hit) {
            // A corrupt disk entry must recompute, not error out.
            util::JsonValue result;
            std::string cache_error;
            if (tryParseJson(*hit, &result, &cache_error)) {
                if (from_peer)
                    cache_->put(key, *hit);
                std::uint64_t id;
                {
                    core::MutexLock lock(mutex_);
                    submitted_.inc();
                    cache_answers_.inc();
                    id = next_id_++;
                }
                util::JsonValue o = util::JsonValue::object();
                o.set("ok", util::JsonValue::boolean(true));
                o.set("op", util::JsonValue::string("submit"));
                o.set("id", util::JsonValue::integer(id));
                o.set("state", util::JsonValue::string("done"));
                o.set("cached", util::JsonValue::boolean(true));
                if (from_peer)
                    o.set("peer", util::JsonValue::boolean(true));
                o.set("key", util::JsonValue::string(key));
                o.set("result", std::move(result));
                return o.dump();
            }
            warn("service: dropping unparsable cache entry %s: %s",
                 key.c_str(), cache_error.c_str());
        }
    }

    // Admission decision under the lock; the shed/degraded responses
    // (and the degraded-model solve itself) compose outside it.
    std::uint64_t id = 0;
    bool shed = false;
    bool try_degrade = false;
    bool coalesced = false;
    std::string coalesced_state;
    std::size_t busy = 0;
    std::uint64_t factor = 1;
    {
        core::MutexLock lock(mutex_);
        submitted_.inc();
        // Single-flight: an identical cacheable spec already admitted
        // and not yet terminal answers this submit too — attach to
        // the leader's id instead of executing twice. Consumes no
        // admission slot, so coalescing keeps working under overload
        // (exactly when duplicate retries pile up).
        if (!key.empty()) {
            auto flight = inflight_.find(key);
            if (flight != inflight_.end()) {
                auto leader = jobs_.find(flight->second);
                if (leader != jobs_.end() &&
                    (leader->second.state == JobState::Queued ||
                     leader->second.state == JobState::Running)) {
                    coalesced_.inc();
                    coalesced = true;
                    id = flight->second;
                    coalesced_state =
                        jobStateName(leader->second.state);
                } else {
                    // finishLocked erases terminal leaders; a stale
                    // entry here means the record was evicted.
                    inflight_.erase(flight);
                }
            }
        }
        if (coalesced) {
            // Fall through to the wait loop (or the async response)
            // below with the leader's id.
        } else if (active_ >= cfg_.queueDepth) {
            shed = true;
            shed_.inc();
            // Scale the hint with how many "pool drains" of work are
            // already queued: a deeper backlog earns a longer backoff.
            std::size_t queued = active_ - std::min<std::size_t>(
                                               active_, pool_->jobs());
            factor = 1 + queued / std::max(1u, pool_->jobs());
            busy = active_;
            if (cfg_.degradeToModel && spec.allowDegraded &&
                spec.degradable()) {
                try_degrade = true;
                id = next_id_++;
            }
        } else {
            admitted_.inc();
            ++active_;
            id = next_id_++;
            JobRecord rec;
            rec.id = id;
            rec.client = who;
            rec.spec = spec;
            rec.key = key;
            rec.enqueued = Clock::now();
            jobs_.emplace(id, std::move(rec));

            // Find (or open) this client's FIFO. The client set is
            // tiny — a linear scan keeps the visit order
            // deterministic.
            auto it = std::find_if(queues_.begin(), queues_.end(),
                                   [&](const ClientQueue &q) {
                                       return q.name == who;
                                   });
            if (it == queues_.end()) {
                queues_.push_back(ClientQueue{who, {}});
                it = std::prev(queues_.end());
            }
            it->pending.push_back(id);
            if (!key.empty())
                inflight_[key] = id;
        }
    }

    if (shed) {
        if (try_degrade) {
            // Model-tier fallback: answer in milliseconds on this
            // connection's thread instead of shedding. The estimate
            // is never cached — the exact answer should still be
            // computed (and memoized) on a calm retry.
            try {
                util::JsonValue result =
                    executeDegraded(spec, cfg_.jobsPerSweep);
                {
                    core::MutexLock lock(mutex_);
                    degraded_.inc();
                }
                util::JsonValue o = util::JsonValue::object();
                o.set("ok", util::JsonValue::boolean(true));
                o.set("op", util::JsonValue::string("submit"));
                o.set("id", util::JsonValue::integer(id));
                o.set("state", util::JsonValue::string("done"));
                o.set("cached", util::JsonValue::boolean(false));
                o.set("degraded", util::JsonValue::boolean(true));
                o.set("result", std::move(result));
                return o.dump();
            } catch (const std::exception &e) {
                warn("service: degraded fallback failed: %s",
                     e.what());
            }
        }
        util::JsonValue o =
            errorResponse("submit",
                          strprintf("overloaded: %zu of %zu "
                                    "slots busy",
                                    busy, cfg_.queueDepth));
        o.set("retry_after_ms",
              util::JsonValue::integer(cfg_.retryAfterMs * factor +
                                       retryJitter(who)));
        return o.dump();
    }

    if (!coalesced)
        pool_->submit([this]() { runOne(); });

    if (!wait) {
        util::JsonValue o = util::JsonValue::object();
        o.set("ok", util::JsonValue::boolean(true));
        o.set("op", util::JsonValue::string("submit"));
        o.set("id", util::JsonValue::integer(id));
        o.set("state", util::JsonValue::string(
                           coalesced ? coalesced_state.c_str()
                                     : "queued"));
        o.set("cached", util::JsonValue::boolean(false));
        if (coalesced)
            o.set("coalesced", util::JsonValue::boolean(true));
        if (!key.empty())
            o.set("key", util::JsonValue::string(key));
        return o.dump();
    }

    // Synchronous submit: block this connection until the job leaves
    // the pool (or the lazy watchdog declares it overdue).
    core::UniqueLock lock(mutex_);
    for (;;) {
        reapOverdueLocked(Clock::now());
        auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            return errorResponse("submit",
                                 strprintf("id = %llu: record "
                                           "evicted before wait "
                                           "finished",
                                           static_cast<unsigned long
                                                       long>(id)))
                .dump();
        }
        if (it->second.state != JobState::Queued &&
            it->second.state != JobState::Running) {
            util::JsonValue o = jobJsonLocked(it->second);
            o.set("op", util::JsonValue::string("submit"));
            if (coalesced)
                o.set("coalesced", util::JsonValue::boolean(true));
            return o.dump();
        }
        done_cv_.wait_for(lock.native(),
                          std::chrono::milliseconds(50));
    }
}

std::string
ServiceCore::handlePoll(const util::JsonValue &req)
{
    std::vector<std::string> errors;
    std::uint64_t id = req.getU64("id", 0, &errors);

    // First pass under the lock: either render the job's state, or —
    // for the first poll of a watchdog-abandoned degradable job —
    // claim the degradation escalation and fall through to compute
    // the model estimate off-lock.
    JobSpec degrade_spec;
    {
        core::MutexLock lock(mutex_);
        if (!errors.empty() || id == 0) {
            bad_requests_.inc();
            return errorResponse("poll",
                                 errors.empty()
                                     ? "id = 0: a poll needs the "
                                       "id a submit returned"
                                     : errors.front())
                .dump();
        }
        reapOverdueLocked(Clock::now());
        auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            return errorResponse(
                       "poll",
                       strprintf("id = %llu: unknown or expired job",
                                 static_cast<unsigned long long>(id)))
                .dump();
        }
        // degradeStarted claims the escalation exactly once across
        // concurrent pollers.
        if (it->second.state == JobState::TimedOut &&
            cfg_.degradeToModel && it->second.spec.allowDegraded &&
            it->second.spec.degradable() &&
            !it->second.degradeStarted) {
            it->second.degradeStarted = true;
            degrade_spec = it->second.spec;
        } else {
            util::JsonValue o = jobJsonLocked(it->second);
            o.set("op", util::JsonValue::string("poll"));
            return o.dump();
        }
    }

    // Watchdog escalation: compute the model-tier estimate outside
    // the lock so other requests keep flowing, then attach it (if
    // the record still exists) so the caller gets a partial answer
    // instead of a bare timeout.
    std::string result, error;
    try {
        result = executeDegraded(degrade_spec, cfg_.jobsPerSweep)
                     .dump();
    } catch (const std::exception &e) {
        error = e.what();
    }

    core::MutexLock lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        return errorResponse(
                   "poll",
                   strprintf("id = %llu: record evicted during "
                             "degraded escalation",
                             static_cast<unsigned long long>(id)))
            .dump();
    }
    if (error.empty()) {
        degraded_.inc();
        it->second.degraded = true;
        it->second.result = std::move(result);
    } else {
        warn("service: degraded escalation for job %llu failed: %s",
             static_cast<unsigned long long>(id), error.c_str());
    }
    util::JsonValue o = jobJsonLocked(it->second);
    o.set("op", util::JsonValue::string("poll"));
    return o.dump();
}

std::string
ServiceCore::handleCancel(const util::JsonValue &req)
{
    std::vector<std::string> errors;
    std::uint64_t id = req.getU64("id", 0, &errors);
    core::MutexLock lock(mutex_);
    if (!errors.empty() || id == 0) {
        bad_requests_.inc();
        return errorResponse("cancel",
                             errors.empty()
                                 ? "id = 0: a cancel needs the id a "
                                   "submit returned"
                                 : errors.front())
            .dump();
    }
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        return errorResponse("cancel",
                             strprintf("id = %llu: unknown or "
                                       "expired job",
                                       static_cast<unsigned long long>(
                                           id)))
            .dump();
    }
    JobRecord &rec = it->second;
    if (rec.state == JobState::Queued ||
        rec.state == JobState::Running) {
        // A queued job never runs (its pool task releases the slot
        // when it drains); a running one is abandoned like a
        // watchdog timeout — the thread finishes and is discarded.
        cancelled_.inc();
        finishLocked(rec, JobState::Cancelled, "cancelled by request");
        done_cv_.notify_all();
    }
    util::JsonValue o = jobJsonLocked(rec);
    o.set("op", util::JsonValue::string("cancel"));
    return o.dump();
}

void
ServiceCore::clientGone(const std::string &client)
{
    core::MutexLock lock(mutex_);
    for (const ClientQueue &q : queues_) {
        if (q.name != client)
            continue;
        for (std::uint64_t id : q.pending) {
            auto it = jobs_.find(id);
            if (it == jobs_.end() ||
                it->second.state != JobState::Queued)
                continue;
            cancelled_.inc();
            finishLocked(it->second, JobState::Cancelled,
                         "cancelled: client disconnected");
        }
    }
    done_cv_.notify_all();
}

std::string
ServiceCore::handleCacheGet(const util::JsonValue &req)
{
    std::vector<std::string> errors;
    std::string key = req.getString("key", "", &errors);
    if (!errors.empty() || key.empty()) {
        core::MutexLock lock(mutex_);
        bad_requests_.inc();
        return errorResponse("cache_get",
                             errors.empty()
                                 ? "key = '': a cache_get needs a "
                                   "cache key"
                                 : errors.front())
            .dump();
    }
    {
        core::MutexLock lock(mutex_);
        peer_probes_.inc();
    }
    // Cache only, never compute, never consult *our* peers: the
    // fleet lookup is one hop deep by construction, so a ring of
    // peers cannot amplify one miss into a probe storm.
    std::optional<std::string> hit = cache_->get(key);
    util::JsonValue o = util::JsonValue::object();
    o.set("ok", util::JsonValue::boolean(true));
    o.set("op", util::JsonValue::string("cache_get"));
    o.set("hit", util::JsonValue::boolean(hit.has_value()));
    if (hit) {
        // Raw bytes as an opaque JSON string: re-parsing the result
        // into an object here could re-format numbers and break the
        // byte-identity contract on promotion.
        o.set("value", util::JsonValue::string(std::move(*hit)));
    }
    return o.dump();
}

std::optional<std::string>
ServiceCore::peerLookup(const std::string &key)
{
    util::JsonValue req = util::JsonValue::object();
    req.set("op", util::JsonValue::string("cache_get"));
    req.set("key", util::JsonValue::string(key));
    for (const std::string &endpoint : cfg_.peers) {
        // Chaos: a dropped probe models an unreachable peer — the
        // lookup degrades to a miss and the job recomputes locally,
        // so delivered bytes never change.
        if (chaos_ && chaos_->peerDrop())
            continue;
        ServiceClient peer;
        std::string error;
        // A dead or slow peer is a plain miss: one connect attempt,
        // no resilient retries — recomputing locally is always
        // cheaper than waiting out a peer's restart.
        if (!peer.tryConnect(endpoint, &error))
            continue;
        util::JsonValue resp;
        if (!peer.tryCall(req, &resp, &error))
            continue;
        std::vector<std::string> errors;
        if (!resp.getBool("hit", false, &errors))
            continue;
        std::string value = resp.getString("value", "", &errors);
        if (value.empty())
            continue;
        core::MutexLock lock(mutex_);
        peer_hits_.inc();
        return value;
    }
    core::MutexLock lock(mutex_);
    peer_misses_.inc();
    return std::nullopt;
}

std::uint64_t
ServiceCore::retryJitter(const std::string &client) const
{
    // Deterministic per-client spread in [0, retryAfterMs) so a
    // thundering herd of shed clients desynchronizes instead of all
    // retrying on the same beat. Same client => same jitter, so the
    // backoff stays reproducible in tests.
    if (cfg_.retryAfterMs == 0)
        return 0;
    return fingerprint64(client, 0x6a09e667f3bcc908ULL) %
           cfg_.retryAfterMs;
}

std::string
ServiceCore::handleStatsz()
{
    CacheStats cs = cache_->stats();
    core::MutexLock lock(mutex_);
    reapOverdueLocked(Clock::now());

    util::JsonValue o = util::JsonValue::object();
    o.set("ok", util::JsonValue::boolean(true));
    o.set("op", util::JsonValue::string("statsz"));
    o.set("workers", util::JsonValue::integer(pool_->jobs()));
    o.set("queue_depth", util::JsonValue::integer(cfg_.queueDepth));
    o.set("active", util::JsonValue::integer(active_));
    o.set("running", util::JsonValue::integer(running_.size()));
    o.set("submitted", util::JsonValue::integer(submitted_.value()));
    o.set("admitted", util::JsonValue::integer(admitted_.value()));
    o.set("shed", util::JsonValue::integer(shed_.value()));
    o.set("completed", util::JsonValue::integer(completed_.value()));
    o.set("failed", util::JsonValue::integer(failed_.value()));
    o.set("timed_out", util::JsonValue::integer(timed_out_.value()));
    o.set("late_completions",
          util::JsonValue::integer(late_completions_.value()));
    o.set("cache_answers",
          util::JsonValue::integer(cache_answers_.value()));
    o.set("bad_requests",
          util::JsonValue::integer(bad_requests_.value()));
    o.set("cancelled", util::JsonValue::integer(cancelled_.value()));
    o.set("deadline_expired",
          util::JsonValue::integer(deadline_expired_.value()));
    o.set("degraded", util::JsonValue::integer(degraded_.value()));
    o.set("coalesced", util::JsonValue::integer(coalesced_.value()));

    util::JsonValue peer = util::JsonValue::object();
    peer.set("probes_served",
             util::JsonValue::integer(peer_probes_.value()));
    peer.set("hits", util::JsonValue::integer(peer_hits_.value()));
    peer.set("misses", util::JsonValue::integer(peer_misses_.value()));
    peer.set("peers", util::JsonValue::integer(cfg_.peers.size()));
    o.set("peer", std::move(peer));

    util::JsonValue cache = util::JsonValue::object();
    cache.set("mem_hits", util::JsonValue::integer(cs.memHits));
    cache.set("disk_hits", util::JsonValue::integer(cs.diskHits));
    cache.set("misses", util::JsonValue::integer(cs.misses));
    cache.set("stores", util::JsonValue::integer(cs.stores));
    cache.set("evictions", util::JsonValue::integer(cs.evictions));
    cache.set("disk_errors", util::JsonValue::integer(cs.diskErrors));
    cache.set("quarantined",
              util::JsonValue::integer(cs.quarantined));
    cache.set("scanned", util::JsonValue::integer(cs.scanned));
    cache.set("tmp_cleaned", util::JsonValue::integer(cs.tmpCleaned));
    o.set("cache", std::move(cache));

    if (chaos_) {
        fault::ServiceFaultCounters fc = chaos_->counters();
        util::JsonValue chaos = util::JsonValue::object();
        chaos.set("seed", util::JsonValue::integer(cfg_.chaos.seed));
        chaos.set("slow_writes",
                  util::JsonValue::integer(fc.slowWrites));
        chaos.set("disconnects",
                  util::JsonValue::integer(fc.disconnects));
        chaos.set("garbles", util::JsonValue::integer(fc.garbles));
        chaos.set("torn_writes",
                  util::JsonValue::integer(fc.tornWrites));
        chaos.set("bit_flips", util::JsonValue::integer(fc.bitFlips));
        chaos.set("peer_drops",
                  util::JsonValue::integer(fc.peerDrops));
        o.set("chaos", std::move(chaos));
    }

    util::JsonValue lat = util::JsonValue::object();
    lat.set("count", util::JsonValue::integer(latency_ms_.count()));
    lat.set("mean_ms", util::JsonValue::number(latency_ms_.mean()));
    lat.set("min_ms", util::JsonValue::number(
                          latency_ms_.count() ? latency_ms_.min() : 0));
    lat.set("max_ms", util::JsonValue::number(
                          latency_ms_.count() ? latency_ms_.max() : 0));
    lat.set("p50_ms",
            util::JsonValue::number(latency_hist_.quantile(0.50)));
    lat.set("p90_ms",
            util::JsonValue::number(latency_hist_.quantile(0.90)));
    lat.set("p99_ms",
            util::JsonValue::number(latency_hist_.quantile(0.99)));
    o.set("latency", std::move(lat));
    return o.dump();
}

std::uint64_t
ServiceCore::pickNextLocked()
{
    // Round-robin: resume the sweep one past the last served client,
    // take the head of the first non-empty FIFO.
    const std::size_t n = queues_.size();
    for (std::size_t step = 0; step < n; ++step) {
        std::size_t i = (rr_next_ + step) % n;
        if (!queues_[i].pending.empty()) {
            std::uint64_t id = queues_[i].pending.front();
            queues_[i].pending.pop_front();
            rr_next_ = (i + 1) % n;
            return id;
        }
    }
    return 0;
}

void
ServiceCore::runOne()
{
    std::uint64_t id = 0;
    JobSpec spec;
    std::string key;
    {
        core::MutexLock lock(mutex_);
        id = pickNextLocked();
        // A record can vanish before this task picks it up (reaped
        // waiter, evicted job) or stop being runnable (cancelled or
        // deadline-expired while queued), but the task still owns one
        // admission slot — leaking it would shrink the effective
        // queue depth permanently.
        auto it = id != 0 ? jobs_.find(id) : jobs_.end();
        if (it == jobs_.end() ||
            it->second.state != JobState::Queued) {
            --active_;
            done_cv_.notify_all();
            return;
        }
        it->second.state = JobState::Running;
        it->second.started = Clock::now();
        running_.push_back(id);
        spec = it->second.spec;
        key = it->second.key;
    }

    std::string result, error;
    bool ok = true;
    try {
        result = executeJob(spec, cfg_.jobsPerSweep).dump();
    } catch (const std::exception &e) {
        ok = false;
        error = e.what();
    }

    // Publish to the cache *before* taking the lock: the disk write
    // (and any chaos stall on it) must not serialize the whole
    // service, and memoization-before-visibility keeps the warm-hit
    // guarantee — a waiter that observes Done can resubmit and hit.
    // A job cancelled or abandoned while running still publishes:
    // its result is deterministic and correct, only unclaimed.
    if (ok && !key.empty())
        cache_->put(key, result);

    core::MutexLock lock(mutex_);
    running_.erase(std::remove(running_.begin(), running_.end(), id),
                   running_.end());
    --active_;
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        done_cv_.notify_all();
        return;
    }
    JobRecord &rec = it->second;
    if (rec.state == JobState::TimedOut ||
        rec.state == JobState::Cancelled) {
        // The lazy watchdog (or an explicit cancel) already answered
        // for this job; the thread was merely abandoned, not
        // interrupted. Count and discard.
        late_completions_.inc();
        done_cv_.notify_all();
        return;
    }
    double ms = msSince(rec.enqueued, Clock::now());
    latency_ms_.add(ms);
    latency_hist_.add(ms);
    if (ok) {
        completed_.inc();
        finishLocked(rec, JobState::Done, std::move(result));
    } else {
        failed_.inc();
        finishLocked(rec, JobState::Failed, std::move(error));
    }
    done_cv_.notify_all();
}

void
ServiceCore::reapOverdueLocked(Clock::time_point now)
{
    // Running jobs: the watchdog budget counts from dispatch, a
    // deadline from admission. Either one expiring abandons the
    // thread (it cannot be interrupted; the late completion is
    // counted and discarded).
    for (std::uint64_t id : running_) {
        auto it = jobs_.find(id);
        if (it == jobs_.end() ||
            it->second.state != JobState::Running)
            continue;
        JobRecord &rec = it->second;
        if (cfg_.watchdog.count() > 0 &&
            now - rec.started >= cfg_.watchdog) {
            timed_out_.inc();
            finishLocked(rec, JobState::TimedOut,
                         strprintf("watchdog: exceeded %lld ms",
                                   static_cast<long long>(
                                       cfg_.watchdog.count())));
            continue;
        }
        std::uint64_t dl = rec.spec.deadlineMs;
        if (dl > 0 &&
            now - rec.enqueued >= std::chrono::milliseconds(dl)) {
            timed_out_.inc();
            deadline_expired_.inc();
            finishLocked(rec, JobState::TimedOut,
                         strprintf("deadline: exceeded %llu ms "
                                   "while running",
                                   static_cast<unsigned long long>(
                                       dl)));
        }
    }

    // Queued jobs: a deadline that expires before dispatch cancels
    // the job in place. The id stays in its client FIFO — the pool
    // task that eventually picks it sees a non-Queued record and
    // just releases the admission slot.
    for (const ClientQueue &q : queues_) {
        for (std::uint64_t id : q.pending) {
            auto it = jobs_.find(id);
            if (it == jobs_.end() ||
                it->second.state != JobState::Queued)
                continue;
            JobRecord &rec = it->second;
            std::uint64_t dl = rec.spec.deadlineMs;
            if (dl == 0 ||
                now - rec.enqueued < std::chrono::milliseconds(dl))
                continue;
            cancelled_.inc();
            deadline_expired_.inc();
            finishLocked(rec, JobState::Cancelled,
                         strprintf("deadline: %llu ms expired "
                                   "before dispatch",
                                   static_cast<unsigned long long>(
                                       dl)));
        }
    }
    done_cv_.notify_all();
}

void
ServiceCore::finishLocked(JobRecord &rec, JobState state,
                          std::string result_or_error)
{
    // The leader is terminal: detach its single-flight entry so the
    // next identical submit starts (or cache-hits) fresh. Waiters
    // blocked on this id read the terminal answer below — a
    // cancelled or timed-out leader answers them with that state
    // rather than orphaning them.
    if (!rec.key.empty()) {
        auto flight = inflight_.find(rec.key);
        if (flight != inflight_.end() && flight->second == rec.id)
            inflight_.erase(flight);
    }
    rec.state = state;
    if (state == JobState::Done)
        rec.result = std::move(result_or_error);
    else
        rec.error = std::move(result_or_error);
    done_order_.push_back(rec.id);
    trimDoneLocked();
}

void
ServiceCore::trimDoneLocked()
{
    // A timed-out record whose thread is still running (id still in
    // running_) is re-queued instead of erased — the late completion
    // needs the record. The scan bound keeps this a single pass.
    std::size_t scan = done_order_.size();
    while (done_order_.size() > cfg_.retainDone && scan-- > 0) {
        std::uint64_t victim = done_order_.front();
        done_order_.pop_front();
        bool thread_live = std::find(running_.begin(), running_.end(),
                                     victim) != running_.end();
        if (thread_live) {
            done_order_.push_back(victim);
            continue;
        }
        jobs_.erase(victim);
    }
}

util::JsonValue
ServiceCore::jobJsonLocked(const JobRecord &rec) const
{
    util::JsonValue o = util::JsonValue::object();
    o.set("ok", util::JsonValue::boolean(true));
    o.set("id", util::JsonValue::integer(rec.id));
    o.set("state",
          util::JsonValue::string(jobStateName(rec.state)));
    o.set("cached", util::JsonValue::boolean(false));
    if (!rec.key.empty())
        o.set("key", util::JsonValue::string(rec.key));
    if (rec.state == JobState::Done ||
        (rec.degraded && !rec.result.empty())) {
        // A degraded estimate rides along even when the state is
        // timed_out: the caller sees both the abandonment and the
        // model-tier partial answer.
        util::JsonValue result;
        std::string parse_error;
        if (tryParseJson(rec.result, &result, &parse_error))
            o.set("result", std::move(result));
        else
            o.set("error", util::JsonValue::string(
                               "internal: stored result unparsable: " +
                               parse_error));
    }
    if (rec.degraded)
        o.set("degraded", util::JsonValue::boolean(true));
    if (rec.state == JobState::Failed ||
        rec.state == JobState::TimedOut ||
        rec.state == JobState::Cancelled) {
        o.set("error", util::JsonValue::string(rec.error));
    }
    return o;
}

} // namespace ringsim::service
