/**
 * @file
 * Experiment-service core: admission, scheduling and memoization.
 *
 * ServiceCore is the transport-independent heart of ringsim_serve. It
 * speaks one NDJSON request per line through handleLine() and returns
 * one NDJSON response line, so the socket server is a thin pump and
 * tests can drive the whole service in-process.
 *
 * Request shapes (all objects, one per line):
 *
 *   {"op":"ping"}
 *   {"op":"submit","client":"c1","wait":false,"job":{...}}
 *   {"op":"poll","id":7}
 *   {"op":"cancel","id":7}
 *   {"op":"statsz"}
 *   {"op":"shutdown"}
 *
 * Scheduling: admitted jobs are executed by a runner::ExperimentRunner
 * pool of ServiceConfig::workers threads. Admission is bounded —
 * (queued + running) never exceeds queueDepth; a submit over the bound
 * is shed with {"ok":false,"error":"overloaded...","retry_after_ms":N}
 * where the hint scales with occupancy. Dispatch is round-robin over
 * clients (each pool slot picks the next job from the least-recently
 * served client's FIFO), so one chatty client cannot starve others.
 *
 * Memoization: a cacheable job's canonical spec is hashed (cacheKey)
 * and looked up in the two-tier ResultCache before admission; a hit
 * answers instantly without consuming a pool slot. Results are stored
 * on completion. The determinism contract (PR 1/3: byte-identical
 * results at any worker count) is what makes this legal.
 *
 * Watchdog: jobs running past ServiceConfig::watchdog are reported
 * timed_out. Detection is lazy — overdue jobs are marked when any
 * poll/statsz/wait touches the table — because a compute thread cannot
 * be interrupted; a late completion is counted and discarded.
 *
 * Deadlines and cancellation: a job may carry deadline_ms (wall clock
 * from admission). A queued job past its deadline is cancelled before
 * it ever runs; a running one is abandoned exactly like a watchdog
 * timeout. {"op":"cancel","id":N} cancels explicitly, and a client
 * that disconnects takes its still-queued jobs with it
 * (clientGone()). Cancelled/expired queued jobs release their
 * admission slot when their pool task drains.
 *
 * Degradation: with ServiceConfig::degradeToModel, a run/sweep/model
 * submit that admission would shed is answered immediately from the
 * analytic-model tier, tagged degraded:true with an error bound; a
 * watchdog-abandoned job surfaces the same estimate as a partial
 * result on the next poll. Degraded answers are never cached.
 *
 * Concurrency: one core::Mutex guards every piece of job state (the
 * annotations below are checked by Clang Thread Safety Analysis, see
 * core/thread_annotations.hpp and DESIGN.md §15). Job execution, the
 * degraded-model solve and cache publication all happen *outside*
 * the lock — the locked sections are bookkeeping only. The lifecycle
 * transitions those sections implement are model-checked exhaustively
 * by the src/verify/ service schedule explorer.
 */

#ifndef RINGSIM_SERVICE_SERVER_HPP
#define RINGSIM_SERVICE_SERVER_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.hpp"
#include "runner/experiment_runner.hpp"
#include "service/config.hpp"
#include "service/job.hpp"
#include "service/line_service.hpp"
#include "service/result_cache.hpp"
#include "stats/stats.hpp"

namespace ringsim::service {

/** Lifecycle of one admitted job. */
enum class JobState {
    Queued,
    Running,
    Done,
    Failed,
    TimedOut,
    Cancelled,
};

/** Printable state name ("queued", ...). */
const char *jobStateName(JobState s);

class ServiceCore : public LineService
{
  public:
    explicit ServiceCore(const ServiceConfig &cfg);

    /** Drains the pool (running jobs finish; queued jobs still run). */
    ~ServiceCore() override;

    ServiceCore(const ServiceCore &) = delete;
    ServiceCore &operator=(const ServiceCore &) = delete;

    /**
     * Handle one NDJSON request line from @p client (the connection's
     * identity, used for fairness when the request names no "client")
     * and return the one-line response (no trailing newline).
     */
    std::string handleLine(const std::string &client,
                           const std::string &line) override
        EXCLUDES(mutex_);

    /** True once a shutdown request has been accepted. */
    bool shutdownRequested() const override EXCLUDES(mutex_);

    /**
     * The connection identified by @p client is gone: cancel its
     * still-queued jobs (running jobs finish — their results are
     * cacheable even if nobody is left to read them).
     */
    void clientGone(const std::string &client) override
        EXCLUDES(mutex_);

    /** The cache (exposed for tests and statsz). */
    const ResultCache &cache() const { return *cache_; }

    /** The chaos injector, or nullptr when chaos is off. */
    fault::ServiceFaultInjector *chaosInjector() override
    {
        return chaos_.get();
    }

  private:
    struct JobRecord
    {
        std::uint64_t id = 0;
        std::string client;
        JobSpec spec;
        std::string key; //!< cache key ("" when not cacheable)
        JobState state = JobState::Queued;
        std::string result; //!< dumped result object (Done/degraded)
        std::string error;  //!< failure text (Failed/TimedOut/...)
        bool degraded = false;       //!< result is a model estimate
        bool degradeStarted = false; //!< escalation claimed (once)
        std::chrono::steady_clock::time_point enqueued;
        std::chrono::steady_clock::time_point started;
    };

    std::string handleSubmit(const std::string &client,
                             const util::JsonValue &req)
        EXCLUDES(mutex_);
    std::string handlePoll(const util::JsonValue &req)
        EXCLUDES(mutex_);
    std::string handleCancel(const util::JsonValue &req)
        EXCLUDES(mutex_);
    std::string handleCacheGet(const util::JsonValue &req)
        EXCLUDES(mutex_);
    std::string handleStatsz() EXCLUDES(mutex_);

    /**
     * Ask each configured peer's cache for @p key (one hop: the
     * remote cache_get answers from its ResultCache only). Returns
     * the raw cached result bytes on the first hit. Runs off-lock —
     * a slow or dead peer must not serialize the service.
     */
    std::optional<std::string> peerLookup(const std::string &key)
        EXCLUDES(mutex_);

    /** Deterministic per-client retry jitter in [0, retryAfterMs). */
    std::uint64_t retryJitter(const std::string &client) const;

    /** Pool slot body: pick the next job fairly and execute it. */
    void runOne() EXCLUDES(mutex_);

    /** Pick the next job id round-robin over clients. */
    std::uint64_t pickNextLocked() REQUIRES(mutex_);

    /**
     * Mark running jobs past the watchdog budget or their deadline,
     * and cancel queued jobs whose deadline expired.
     */
    void reapOverdueLocked(std::chrono::steady_clock::time_point now)
        REQUIRES(mutex_);

    /** Retire @p rec into the done set. */
    void finishLocked(JobRecord &rec, JobState state,
                      std::string result_or_error) REQUIRES(mutex_);

    /** Drop oldest retained records beyond cfg_.retainDone. */
    void trimDoneLocked() REQUIRES(mutex_);

    /** Render a job's poll/submit view. */
    util::JsonValue jobJsonLocked(const JobRecord &rec) const
        REQUIRES(mutex_);

    const ServiceConfig cfg_;
    std::unique_ptr<ResultCache> cache_;
    std::unique_ptr<fault::ServiceFaultInjector> chaos_;
    std::unique_ptr<runner::ExperimentRunner> pool_;

    mutable core::Mutex mutex_;
    std::condition_variable done_cv_;
    bool shutdown_ GUARDED_BY(mutex_) = false;
    std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;

    /** Keyed lookup only (never iterated — see the lint rule). */
    std::unordered_map<std::uint64_t, JobRecord> jobs_
        GUARDED_BY(mutex_);

    /**
     * Single-flight index: cache key -> id of the one admitted job
     * computing it. A cacheable submit whose key is already in
     * flight attaches to that job (same id, "coalesced": true, no
     * admission slot) instead of executing again; the entry is
     * erased when the leader reaches any terminal state, at which
     * point waiters read the leader's answer — including a
     * cancellation or timeout, so a dead leader answers its waiters
     * rather than orphaning them. Keyed lookup only (never
     * iterated — see the lint rule).
     */
    std::unordered_map<std::string, std::uint64_t> inflight_
        GUARDED_BY(mutex_);

    /** Ids of running jobs, in start order (for the lazy watchdog). */
    std::vector<std::uint64_t> running_ GUARDED_BY(mutex_);

    /** Retained finished ids, oldest first (for trimDoneLocked). */
    std::deque<std::uint64_t> done_order_ GUARDED_BY(mutex_);

    /** Per-client pending FIFOs, visited round-robin. */
    struct ClientQueue
    {
        std::string name;
        std::deque<std::uint64_t> pending;
    };
    std::vector<ClientQueue> queues_ GUARDED_BY(mutex_);
    std::size_t rr_next_ GUARDED_BY(mutex_) = 0;

    /** queued + running (admission bound). */
    std::size_t active_ GUARDED_BY(mutex_) = 0;

    // Counters for /statsz.
    stats::Counter submitted_ GUARDED_BY(mutex_);
    stats::Counter admitted_ GUARDED_BY(mutex_);
    stats::Counter shed_ GUARDED_BY(mutex_);
    stats::Counter completed_ GUARDED_BY(mutex_);
    stats::Counter failed_ GUARDED_BY(mutex_);
    stats::Counter timed_out_ GUARDED_BY(mutex_);
    stats::Counter late_completions_ GUARDED_BY(mutex_);
    stats::Counter cache_answers_ GUARDED_BY(mutex_);
    stats::Counter bad_requests_ GUARDED_BY(mutex_);
    /** Explicit + disconnect cancellations. */
    stats::Counter cancelled_ GUARDED_BY(mutex_);
    /** Deadline expiries, queued or running. */
    stats::Counter deadline_expired_ GUARDED_BY(mutex_);
    /** Model-tier answers served. */
    stats::Counter degraded_ GUARDED_BY(mutex_);
    /** Submits attached to an identical in-flight job. */
    stats::Counter coalesced_ GUARDED_BY(mutex_);
    /** Peer cache_get requests this daemon answered. */
    stats::Counter peer_probes_ GUARDED_BY(mutex_);
    /** Local misses answered from a peer's cache. */
    stats::Counter peer_hits_ GUARDED_BY(mutex_);
    /** Peer lookups that found nothing (recompute follows). */
    stats::Counter peer_misses_ GUARDED_BY(mutex_);

    /** Job service latency (admission to completion), milliseconds. */
    stats::Sampler latency_ms_ GUARDED_BY(mutex_);
    stats::Histogram latency_hist_ GUARDED_BY(mutex_);
};

} // namespace ringsim::service

#endif // RINGSIM_SERVICE_SERVER_HPP
