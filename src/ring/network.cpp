#include "network.hpp"

#include "cache/invariant_monitor.hpp"
#include "fault/fault.hpp"
#include "util/logging.hpp"

namespace ringsim::ring {

SlotType
SlotHandle::type() const
{
    return ring_.slots_[slot_].type;
}

bool
SlotHandle::occupied() const
{
    return ring_.slots_[slot_].occupied;
}

bool
SlotHandle::corrupted() const
{
    const SlotRing::Slot &s = ring_.slots_[slot_];
    return s.occupied && s.corrupt;
}

const RingMessage &
SlotHandle::message() const
{
    const SlotRing::Slot &s = ring_.slots_[slot_];
    if (!s.occupied)
        panic("message() on an empty slot");
    return s.msg;
}

RingMessage
SlotHandle::remove()
{
    SlotRing::Slot &s = ring_.slots_[slot_];
    if (!s.occupied)
        panic("remove() on an empty slot");
    if (ring_.monitor_) {
        // One-traversal completion: a message inserted at absolute
        // rotation R moves one stage per rotation, so by removal it
        // has traveled rotations - R stages. Self-removal (a probe
        // returning to its source) is exactly one full loop; anything
        // longer means a destination let its message pass.
        Count traveled = ring_.rotations_ - s.insertedAtRot;
        if (traveled > ring_.config_.totalStages()) {
            cache::Violation v;
            v.kind = cache::Violation::Kind::TraversalOverrun;
            v.block = s.msg.addr;
            v.node = node_;
            v.other = s.insertedBy;
            v.txn = s.msg.payload;
            v.slot = static_cast<int>(slot_);
            v.detail = strprintf(
                "slot %u: message from node %u removed at node %u "
                "after %llu stages (one traversal is %u)",
                slot_, s.insertedBy, node_,
                static_cast<unsigned long long>(traveled),
                ring_.config_.totalStages());
            ring_.monitor_->report(std::move(v));
        } else {
            ring_.monitor_->noteCheck();
        }
    }
    s.occupied = false;
    s.corrupt = false;
    freedHere_ = true;
    unsigned t = SlotRing::typeIndex(s.type);
    --ring_.occupiedCount_[t];
    ++ring_.removed_[t];
    return s.msg;
}

bool
SlotHandle::canInsert(Addr addr) const
{
    const SlotRing::Slot &s = ring_.slots_[slot_];
    if (s.occupied)
        return false;
    if (freedHere_ && ring_.config_.antiStarvation)
        return false;
    if (s.type == SlotType::Block)
        return true;
    return ring_.probeTypeFor(addr) == s.type;
}

void
SlotHandle::insert(const RingMessage &msg)
{
    if (!canInsert(msg.addr))
        panic("insert() into an unavailable slot (node %u)", node_);
    SlotRing::Slot &s = ring_.slots_[slot_];
    s.occupied = true;
    s.corrupt = false;
    s.msg = msg;
    s.insertedAtRot = ring_.rotations_;
    s.insertedBy = node_;
    unsigned t = SlotRing::typeIndex(s.type);
    ++ring_.occupiedCount_[t];
    ++ring_.inserted_[t];
}

SlotRing::SlotRing(sim::Kernel &kernel, const RingConfig &config)
    : kernel_(kernel), config_(config),
      ticker_(kernel, config.clockPeriod,
              [this](Count cycle) { tick(cycle); })
{
    config_.validate();

    unsigned stages = config_.totalStages();
    unsigned frames = config_.framesOnRing();
    const FrameLayout &frame = config_.frame;

    headerSlot_.assign(stages, -1);
    slots_.clear();
    for (unsigned f = 0; f < frames; ++f) {
        unsigned frame_base = f * frame.frameStages();
        for (unsigned s = 0; s < slotsPerFrame; ++s) {
            Slot slot;
            slot.type = FrameLayout::slotTypeAt(s);
            unsigned idx = static_cast<unsigned>(slots_.size());
            slots_.push_back(slot);
            headerSlot_[frame_base + frame.slotOffset(s)] =
                static_cast<int>(idx);
        }
    }

    nodePos_.assign(config_.nodes, 0);
    for (NodeId n = 0; n < config_.nodes; ++n)
        nodePos_[n] = config_.nodePosition(n);

    clients_.assign(config_.nodes, nullptr);
}

void
SlotRing::setClient(NodeId n, RingClient &client)
{
    if (n >= clients_.size())
        panic("setClient: node %u out of range", n);
    clients_[n] = &client;
}

void
SlotRing::start(Tick start_at)
{
    for (NodeId n = 0; n < config_.nodes; ++n)
        if (!clients_[n])
            panic("SlotRing started with no client at node %u", n);
    ticker_.start(start_at);
}

void
SlotRing::stop()
{
    ticker_.stop();
}

void
SlotRing::injectFaults(Count cycle)
{
    for (unsigned s = 0; s < slots_.size(); ++s) {
        Slot &slot = slots_[s];
        if (!slot.occupied)
            continue;
        if (injector_->dropAt(cycle, s)) {
            // Latch upset: the message vanishes; only the sender's
            // retry timeout can recover it. Not counted as removed.
            slot.occupied = false;
            slot.corrupt = false;
            --occupiedCount_[typeIndex(slot.type)];
        } else if (!slot.corrupt && injector_->corruptAt(cycle, s)) {
            slot.corrupt = true;
        }
    }
}

void
SlotRing::tick(Count cycle)
{
    unsigned stages = config_.totalStages();

    // Accumulate slot occupancy before this cycle's changes; the
    // integral divided by (cycles * slots-of-type) is the utilization.
    // Time passes during a stall, so this accrues there too.
    for (unsigned t = 0; t < 3; ++t)
        occupancyIntegral_[t] += occupiedCount_[t];
    ++cycles_;

    if (injector_) {
        if (stallRemaining_ == 0)
            stallRemaining_ = injector_->stallFor(cycle);
        if (stallRemaining_ > 0) {
            // The pipeline holds: nothing moves, nobody is visited.
            --stallRemaining_;
            return;
        }
        injectFaults(cycle);
    }

    // The pattern has advanced rot_ stages, so the pattern offset now
    // at physical position p is (p - rot_) mod stages. A node sees a
    // slot when that offset is the slot's header stage. Without
    // stalls, rot_ == cycle % stages.
    for (NodeId n = 0; n < config_.nodes; ++n) {
        unsigned pos = nodePos_[n];
        unsigned off = (pos + stages - rot_) % stages;
        int slot_idx = headerSlot_[off];
        if (slot_idx < 0)
            continue;
        SlotHandle handle(*this, static_cast<unsigned>(slot_idx), n);
        clients_[n]->onSlot(handle);
    }

    rot_ = (rot_ + 1) % stages;
    ++rotations_;
}

Count
SlotRing::inserted(SlotType t) const
{
    return inserted_[typeIndex(t)];
}

Count
SlotRing::removed(SlotType t) const
{
    return removed_[typeIndex(t)];
}

double
SlotRing::occupancy(SlotType t) const
{
    if (cycles_ == 0)
        return 0.0;
    unsigned slots_of_type = config_.slotsOfType(t);
    return static_cast<double>(occupancyIntegral_[typeIndex(t)]) /
           (static_cast<double>(cycles_) * slots_of_type);
}

double
SlotRing::totalOccupancy() const
{
    if (cycles_ == 0)
        return 0.0;
    std::uint64_t integral = occupancyIntegral_[0] +
                             occupancyIntegral_[1] + occupancyIntegral_[2];
    return static_cast<double>(integral) /
           (static_cast<double>(cycles_) * config_.totalSlots());
}

unsigned
SlotRing::occupiedNow() const
{
    return occupiedCount_[0] + occupiedCount_[1] + occupiedCount_[2];
}

void
SlotRing::resetStats()
{
    cycles_ = 0;
    for (unsigned t = 0; t < 3; ++t) {
        occupancyIntegral_[t] = 0;
        inserted_[t] = 0;
        removed_[t] = 0;
    }
}

SlotType
SlotRing::probeTypeFor(Addr addr) const
{
    Addr block = addr / config_.frame.blockBytes;
    return (block % 2 == 0) ? SlotType::ProbeEven : SlotType::ProbeOdd;
}

} // namespace ringsim::ring
