#include "network.hpp"

#include "cache/invariant_monitor.hpp"
#include "fault/fault.hpp"
#include "util/logging.hpp"

namespace ringsim::ring {

RingMessage
SlotHandle::remove()
{
    SlotRing::Slot &s = ring_.slots_[slot_];
    if (!s.occupied)
        panic("remove() on an empty slot");
    if (ring_.monitor_) {
        // One-traversal completion: a message inserted at absolute
        // rotation R moves one stage per rotation, so by removal it
        // has traveled rotations - R stages. Self-removal (a probe
        // returning to its source) is exactly one full loop; anything
        // longer means a destination let its message pass.
        Count traveled = ring_.rotations_ - s.insertedAtRot;
        if (traveled > ring_.config_.totalStages()) {
            cache::Violation v;
            v.kind = cache::Violation::Kind::TraversalOverrun;
            v.block = s.msg.addr;
            v.node = node_;
            v.other = s.insertedBy;
            v.txn = s.msg.payload;
            v.slot = static_cast<int>(slot_);
            v.detail = strprintf(
                "slot %u: message from node %u removed at node %u "
                "after %llu stages (one traversal is %u)",
                slot_, s.insertedBy, node_,
                static_cast<unsigned long long>(traveled),
                ring_.config_.totalStages());
            ring_.monitor_->report(std::move(v));
        } else {
            ring_.monitor_->noteCheck();
        }
    }
    s.occupied = false;
    s.corrupt = false;
    freedHere_ = true;
    unsigned t = SlotRing::typeIndex(s.type);
    --ring_.occupiedCount_[t];
    ++ring_.removed_[t];
    return s.msg;
}

void
SlotHandle::insert(const RingMessage &msg)
{
    if (!canInsert(msg.addr))
        panic("insert() into an unavailable slot (node %u)", node_);
    SlotRing::Slot &s = ring_.slots_[slot_];
    s.occupied = true;
    s.corrupt = false;
    s.msg = msg;
    s.insertedAtRot = ring_.rotations_;
    s.insertedBy = node_;
    unsigned t = SlotRing::typeIndex(s.type);
    ++ring_.occupiedCount_[t];
    ++ring_.inserted_[t];
}

SlotRing::SlotRing(sim::Kernel &kernel, const RingConfig &config)
    : kernel_(kernel), config_(config),
      ticker_(kernel, config.clockPeriod,
              [this](Count cycle) { tick(cycle); })
{
    config_.validate();

    unsigned stages = config_.totalStages();
    unsigned frames = config_.framesOnRing();
    const FrameLayout &frame = config_.frame;

    headerSlot_.assign(stages, -1);
    slots_.clear();
    for (unsigned f = 0; f < frames; ++f) {
        unsigned frame_base = f * frame.frameStages();
        for (unsigned s = 0; s < slotsPerFrame; ++s) {
            Slot slot;
            slot.type = FrameLayout::slotTypeAt(s);
            unsigned idx = static_cast<unsigned>(slots_.size());
            slots_.push_back(slot);
            headerSlot_[frame_base + frame.slotOffset(s)] =
                static_cast<int>(idx);
        }
    }

    nodePos_.assign(config_.nodes, 0);
    for (NodeId n = 0; n < config_.nodes; ++n)
        nodePos_[n] = config_.nodePosition(n);

    clients_.assign(config_.nodes, nullptr);

    // Precompute the visitation schedule: for each rotation offset r,
    // the (node, slot) pairs whose header lands on a node, in the same
    // ascending-node order the reference scan dispatches. Each node
    // anchors one stage, so the table holds at most nodes entries per
    // rotation and exactly nodes * slots entries overall.
    visitHead_.assign(stages + 1, 0);
    visits_.clear();
    for (unsigned r = 0; r < stages; ++r) {
        visitHead_[r] = static_cast<std::uint32_t>(visits_.size());
        for (NodeId n = 0; n < config_.nodes; ++n) {
            unsigned off = (nodePos_[n] + stages - r) % stages;
            int slot_idx = headerSlot_[off];
            if (slot_idx < 0)
                continue;
            visits_.push_back(
                Visit{n, static_cast<std::uint32_t>(slot_idx)});
        }
    }
    visitHead_[stages] = static_cast<std::uint32_t>(visits_.size());

    tracked_.assign(config_.nodes, 0);
    pending_.assign(config_.nodes, 0);
}

void
SlotRing::setClient(NodeId n, RingClient &client)
{
    if (n >= clients_.size())
        panic("setClient: node %u out of range", n);
    clients_[n] = &client;
    // The new client has not promised no-op empty visits; revoke any
    // opt-in the previous one made.
    if (tracked_[n]) {
        tracked_[n] = 0;
        --trackedCount_;
    }
    if (pending_[n]) {
        pending_[n] = 0;
        --pendingCount_;
    }
}

void
SlotRing::enableIdleSkip(NodeId n)
{
    if (n >= tracked_.size())
        panic("enableIdleSkip: node %u out of range", n);
    if (!tracked_[n]) {
        tracked_[n] = 1;
        ++trackedCount_;
    }
}

void
SlotRing::notifyPending(NodeId n)
{
    if (n >= pending_.size())
        panic("notifyPending: node %u out of range", n);
    if (!pending_[n]) {
        pending_[n] = 1;
        ++pendingCount_;
    }
}

void
SlotRing::clearPending(NodeId n)
{
    if (n >= pending_.size())
        panic("clearPending: node %u out of range", n);
    if (pending_[n]) {
        pending_[n] = 0;
        --pendingCount_;
    }
}

void
SlotRing::start(Tick start_at)
{
    for (NodeId n = 0; n < config_.nodes; ++n)
        if (!clients_[n])
            panic("SlotRing started with no client at node %u", n);
    ticker_.start(start_at);
}

void
SlotRing::stop()
{
    ticker_.stop();
}

void
SlotRing::injectFaults(Count cycle)
{
    for (unsigned s = 0; s < slots_.size(); ++s) {
        Slot &slot = slots_[s];
        if (!slot.occupied)
            continue;
        if (injector_->dropAt(cycle, s)) {
            // Latch upset: the message vanishes; only the sender's
            // retry timeout can recover it. Not counted as removed.
            slot.occupied = false;
            slot.corrupt = false;
            --occupiedCount_[typeIndex(slot.type)];
        } else if (!slot.corrupt && injector_->corruptAt(cycle, s)) {
            slot.corrupt = true;
        }
    }
}

void
SlotRing::tick(Count cycle)
{
    // Accumulate slot occupancy before this cycle's changes; the
    // integral divided by (cycles * slots-of-type) is the utilization.
    // Time passes during a stall, so this accrues there too.
    for (unsigned t = 0; t < 3; ++t)
        occupancyIntegral_[t] += occupiedCount_[t];
    ++cycles_;

    if (injector_) {
        if (stallRemaining_ == 0)
            stallRemaining_ = injector_->stallFor(cycle);
        if (stallRemaining_ > 0) {
            // The pipeline holds: nothing moves, nobody is visited.
            --stallRemaining_;
            return;
        }
        injectFaults(cycle);
    }

    if (config_.referenceTickPath)
        referenceTick();
    else
        scheduledTick();
}

void
SlotRing::referenceTick()
{
    unsigned stages = config_.totalStages();

    // The pattern has advanced rot_ stages, so the pattern offset now
    // at physical position p is (p - rot_) mod stages. A node sees a
    // slot when that offset is the slot's header stage. Without
    // stalls, rot_ == cycle % stages.
    for (NodeId n = 0; n < config_.nodes; ++n) {
        unsigned pos = nodePos_[n];
        unsigned off = (pos + stages - rot_) % stages;
        int slot_idx = headerSlot_[off];
        if (slot_idx < 0)
            continue;
        SlotHandle handle(*this, static_cast<unsigned>(slot_idx), n);
        clients_[n]->onSlot(handle);
    }

    rot_ = (rot_ + 1) % stages;
    ++rotations_;
}

void
SlotRing::scheduledTick()
{
    unsigned stages = config_.totalStages();
    unsigned occupied =
        occupiedCount_[0] + occupiedCount_[1] + occupiedCount_[2];

    if (occupied == 0 && pendingCount_ == 0 &&
        trackedCount_ == config_.nodes) {
        // Fully quiescent: no message on the ring and every node both
        // opted into idle skipping and reports nothing to insert. No
        // onSlot call this cycle could do anything.
        rot_ = (rot_ + 1) % stages;
        ++rotations_;
        // With a fault injector attached the seeded schedule is a
        // function of (cycle, slot), so every cycle must still be
        // presented to it — no jumping.
        if (!injector_)
            maybeFastForward();
        return;
    }

    const Visit *v = visits_.data() + visitHead_[rot_];
    const Visit *end = visits_.data() + visitHead_[rot_ + 1];
    for (; v != end; ++v) {
        // A tracked node with nothing pending only reacts to occupied
        // slots; untracked nodes are always visited.
        if (!slots_[v->slot].occupied && tracked_[v->node] &&
            !pending_[v->node])
            continue;
        SlotHandle handle(*this, v->slot, v->node);
        clients_[v->node]->onSlot(handle);
    }

    rot_ = (rot_ + 1) % stages;
    ++rotations_;
}

void
SlotRing::maybeFastForward()
{
    // Land the next real tick on the last grid point strictly before
    // the earliest foreign event (or on the last one not beyond the
    // run bound when the queue is otherwise empty). Ticker::process
    // assigned the pending firing's sequence number before this
    // handler ran and the quiescent path schedules nothing, so sliding
    // that firing forward keeps every (when, seq) ordering against the
    // rest of the system exactly as the cycle-by-cycle path would —
    // the event streams, and therefore the statistics, are identical.
    Tick horizon = kernel_.nextEventTimeExcluding(ticker_);
    Tick bound;
    if (horizon != sim::Kernel::kNoEvent) {
        bound = horizon;
    } else {
        Tick limit = kernel_.runLimit();
        if (limit == sim::Kernel::kNoEvent)
            return;
        // Events scheduled exactly at the bound still fire.
        bound = limit + 1;
    }
    Tick pend = ticker_.when();
    if (bound <= pend)
        return;
    Count skip =
        static_cast<Count>((bound - 1 - pend) / config_.clockPeriod);
    if (skip == 0)
        return;
    ticker_.fastForward(skip);
    // Account for the skipped cycles as the idle ticks they replace.
    // The occupancy integrals gain nothing: every count is zero.
    cycles_ += skip;
    rotations_ += skip;
    rot_ = static_cast<unsigned>((rot_ + skip) % config_.totalStages());
}

Count
SlotRing::inserted(SlotType t) const
{
    return inserted_[typeIndex(t)];
}

Count
SlotRing::removed(SlotType t) const
{
    return removed_[typeIndex(t)];
}

double
SlotRing::occupancy(SlotType t) const
{
    if (cycles_ == 0)
        return 0.0;
    unsigned slots_of_type = config_.slotsOfType(t);
    return static_cast<double>(occupancyIntegral_[typeIndex(t)]) /
           (static_cast<double>(cycles_) * slots_of_type);
}

double
SlotRing::totalOccupancy() const
{
    if (cycles_ == 0)
        return 0.0;
    std::uint64_t integral = occupancyIntegral_[0] +
                             occupancyIntegral_[1] + occupancyIntegral_[2];
    return static_cast<double>(integral) /
           (static_cast<double>(cycles_) * config_.totalSlots());
}

unsigned
SlotRing::occupiedNow() const
{
    return occupiedCount_[0] + occupiedCount_[1] + occupiedCount_[2];
}

void
SlotRing::resetStats()
{
    cycles_ = 0;
    for (unsigned t = 0; t < 3; ++t) {
        occupancyIntegral_[t] = 0;
        inserted_[t] = 0;
        removed_[t] = 0;
    }
}

} // namespace ringsim::ring
