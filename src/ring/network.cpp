#include "network.hpp"

#include "util/logging.hpp"

namespace ringsim::ring {

SlotType
SlotHandle::type() const
{
    return ring_.slots_[slot_].type;
}

bool
SlotHandle::occupied() const
{
    return ring_.slots_[slot_].occupied;
}

const RingMessage &
SlotHandle::message() const
{
    const SlotRing::Slot &s = ring_.slots_[slot_];
    if (!s.occupied)
        panic("message() on an empty slot");
    return s.msg;
}

RingMessage
SlotHandle::remove()
{
    SlotRing::Slot &s = ring_.slots_[slot_];
    if (!s.occupied)
        panic("remove() on an empty slot");
    s.occupied = false;
    freedHere_ = true;
    unsigned t = SlotRing::typeIndex(s.type);
    --ring_.occupiedCount_[t];
    ++ring_.removed_[t];
    return s.msg;
}

bool
SlotHandle::canInsert(Addr addr) const
{
    const SlotRing::Slot &s = ring_.slots_[slot_];
    if (s.occupied)
        return false;
    if (freedHere_ && ring_.config_.antiStarvation)
        return false;
    if (s.type == SlotType::Block)
        return true;
    return ring_.probeTypeFor(addr) == s.type;
}

void
SlotHandle::insert(const RingMessage &msg)
{
    if (!canInsert(msg.addr))
        panic("insert() into an unavailable slot (node %u)", node_);
    SlotRing::Slot &s = ring_.slots_[slot_];
    s.occupied = true;
    s.msg = msg;
    unsigned t = SlotRing::typeIndex(s.type);
    ++ring_.occupiedCount_[t];
    ++ring_.inserted_[t];
}

SlotRing::SlotRing(sim::Kernel &kernel, const RingConfig &config)
    : kernel_(kernel), config_(config),
      ticker_(kernel, config.clockPeriod,
              [this](Count cycle) { tick(cycle); })
{
    config_.validate();

    unsigned stages = config_.totalStages();
    unsigned frames = config_.framesOnRing();
    const FrameLayout &frame = config_.frame;

    headerSlot_.assign(stages, -1);
    slots_.clear();
    for (unsigned f = 0; f < frames; ++f) {
        unsigned frame_base = f * frame.frameStages();
        for (unsigned s = 0; s < slotsPerFrame; ++s) {
            Slot slot;
            slot.type = FrameLayout::slotTypeAt(s);
            unsigned idx = static_cast<unsigned>(slots_.size());
            slots_.push_back(slot);
            headerSlot_[frame_base + frame.slotOffset(s)] =
                static_cast<int>(idx);
        }
    }

    nodePos_.assign(config_.nodes, 0);
    for (NodeId n = 0; n < config_.nodes; ++n)
        nodePos_[n] = config_.nodePosition(n);

    clients_.assign(config_.nodes, nullptr);
}

void
SlotRing::setClient(NodeId n, RingClient &client)
{
    if (n >= clients_.size())
        panic("setClient: node %u out of range", n);
    clients_[n] = &client;
}

void
SlotRing::start(Tick start_at)
{
    for (NodeId n = 0; n < config_.nodes; ++n)
        if (!clients_[n])
            panic("SlotRing started with no client at node %u", n);
    ticker_.start(start_at);
}

void
SlotRing::stop()
{
    ticker_.stop();
}

void
SlotRing::tick(Count cycle)
{
    unsigned stages = config_.totalStages();
    unsigned rot = static_cast<unsigned>(cycle % stages);

    // Accumulate slot occupancy before this cycle's changes; the
    // integral divided by (cycles * slots-of-type) is the utilization.
    for (unsigned t = 0; t < 3; ++t)
        occupancyIntegral_[t] += occupiedCount_[t];
    ++cycles_;

    // The pattern has advanced `rot` stages, so the pattern offset now
    // at physical position p is (p - rot) mod stages. A node sees a
    // slot when that offset is the slot's header stage.
    for (NodeId n = 0; n < config_.nodes; ++n) {
        unsigned pos = nodePos_[n];
        unsigned off = (pos + stages - rot) % stages;
        int slot_idx = headerSlot_[off];
        if (slot_idx < 0)
            continue;
        SlotHandle handle(*this, static_cast<unsigned>(slot_idx), n);
        clients_[n]->onSlot(handle);
    }
}

Count
SlotRing::inserted(SlotType t) const
{
    return inserted_[typeIndex(t)];
}

Count
SlotRing::removed(SlotType t) const
{
    return removed_[typeIndex(t)];
}

double
SlotRing::occupancy(SlotType t) const
{
    if (cycles_ == 0)
        return 0.0;
    unsigned slots_of_type = config_.slotsOfType(t);
    return static_cast<double>(occupancyIntegral_[typeIndex(t)]) /
           (static_cast<double>(cycles_) * slots_of_type);
}

double
SlotRing::totalOccupancy() const
{
    if (cycles_ == 0)
        return 0.0;
    std::uint64_t integral = occupancyIntegral_[0] +
                             occupancyIntegral_[1] + occupancyIntegral_[2];
    return static_cast<double>(integral) /
           (static_cast<double>(cycles_) * config_.totalSlots());
}

unsigned
SlotRing::occupiedNow() const
{
    return occupiedCount_[0] + occupiedCount_[1] + occupiedCount_[2];
}

void
SlotRing::resetStats()
{
    cycles_ = 0;
    for (unsigned t = 0; t < 3; ++t) {
        occupancyIntegral_[t] = 0;
        inserted_[t] = 0;
        removed_[t] = 0;
    }
}

SlotType
SlotRing::probeTypeFor(Addr addr) const
{
    Addr block = addr / config_.frame.blockBytes;
    return (block % 2 == 0) ? SlotType::ProbeEven : SlotType::ProbeOdd;
}

} // namespace ringsim::ring
