#include "network.hpp"

#include <bit>

#include "cache/invariant_monitor.hpp"
#include "fault/fault.hpp"
#include "util/logging.hpp"

namespace ringsim::ring {

void
RingClient::onVisits(SlotRing &ring, const SlotVisit *begin,
                     const SlotVisit *end)
{
    for (const SlotVisit *v = begin; v != end; ++v) {
        SlotHandle handle = ring.visitHandle(*v);
        onSlot(handle);
    }
}

RingMessage
SlotHandle::remove()
{
    if (!occupied())
        panic("remove() on an empty slot");
    unsigned s = slot_;
    if (ring_.monitor_) {
        // One-traversal completion: a message inserted at absolute
        // rotation R moves one stage per rotation, so by removal it
        // has traveled rotations - R stages. Self-removal (a probe
        // returning to its source) is exactly one full loop; anything
        // longer means a destination let its message pass.
        Count traveled = ring_.rotations_ - ring_.insertedAtRot_[s];
        if (traveled > ring_.config_.totalStages()) {
            cache::Violation v;
            v.kind = cache::Violation::Kind::TraversalOverrun;
            v.block = ring_.msgs_[s].addr;
            v.node = node_;
            v.other = ring_.insertedBy_[s];
            v.txn = ring_.msgs_[s].payload;
            v.slot = static_cast<int>(s);
            v.detail = strprintf(
                "slot %u: message from node %u removed at node %u "
                "after %llu stages (one traversal is %u)",
                s, ring_.insertedBy_[s], node_,
                static_cast<unsigned long long>(traveled),
                ring_.config_.totalStages());
            ring_.monitor_->report(std::move(v));
        } else {
            ring_.monitor_->noteCheck();
        }
    }
    unsigned t = SlotRing::typeIndex(ring_.types_[s]);
    std::uint64_t bit = std::uint64_t(1) << (s & 63);
    ring_.occ_[t * ring_.words_ + (s >> 6)] &= ~bit;
    ring_.occAny_[s >> 6] &= ~bit;
    ring_.corrupt_[s >> 6] &= ~bit;
    ring_.accrueOccupancy();
    --ring_.occCnt_[t];
    --ring_.occTotal_;
    ++ring_.occEpoch_;
    freedHere_ = true;
    ++ring_.removed_[t];
    return ring_.msgs_[s];
}

void
SlotHandle::insert(const RingMessage &msg)
{
    if (!canInsert(msg.addr))
        panic("insert() into an unavailable slot (node %u)", node_);
    unsigned s = slot_;
    unsigned t = SlotRing::typeIndex(ring_.types_[s]);
    std::uint64_t bit = std::uint64_t(1) << (s & 63);
    ring_.occ_[t * ring_.words_ + (s >> 6)] |= bit;
    ring_.occAny_[s >> 6] |= bit;
    ring_.corrupt_[s >> 6] &= ~bit;
    ring_.accrueOccupancy();
    ++ring_.occCnt_[t];
    ++ring_.occTotal_;
    ++ring_.occEpoch_;
    ring_.msgs_[s] = msg;
    ring_.insertedAtRot_[s] = ring_.rotations_;
    ring_.insertedBy_[s] = node_;
    ++ring_.inserted_[t];
}

void
SlotRing::TickEvent::process()
{
    // Mirror of sim::Ticker::process with the handler call
    // devirtualized to ring_.tick(); see the class comment. Any
    // change to Ticker's schedule/consume protocol must land here
    // too (the golden equivalence tests catch a divergence).
    if (!batching_) {
        Count this_cycle = cycle_++;
        // Reschedule before the handler so the handler may stop() us.
        kernel_.schedule(*this, kernel_.now() + period_);
        ring_.tick(this_cycle);
        return;
    }
    for (;;) {
        Count this_cycle = cycle_++;
        kernel_.phantomSchedule(*this, kernel_.now() + period_);
        ring_.tick(this_cycle);
        if (!kernel_.consumeIfNext(*this))
            return;
    }
}

SlotRing::SlotRing(sim::Kernel &kernel, const RingConfig &config)
    : kernel_(kernel), config_(config),
      ticker_(*this, kernel, config.clockPeriod)
{
    config_.validate();

    unsigned stages = config_.totalStages();
    unsigned frames = config_.framesOnRing();
    const FrameLayout &frame = config_.frame;

    headerSlot_.assign(stages, -1);
    types_.clear();
    for (unsigned f = 0; f < frames; ++f) {
        unsigned frame_base = f * frame.frameStages();
        for (unsigned s = 0; s < slotsPerFrame; ++s) {
            unsigned idx = static_cast<unsigned>(types_.size());
            types_.push_back(FrameLayout::slotTypeAt(s));
            headerSlot_[frame_base + frame.slotOffset(s)] =
                static_cast<int>(idx);
        }
    }
    nslots_ = static_cast<unsigned>(types_.size());
    stages_ = config_.totalStages();
    words_ = (nslots_ + 63) / 64;
    occ_.assign(std::size_t(3) * words_, 0);
    occAny_.assign(words_, 0);
    corrupt_.assign(words_, 0);
    msgs_.assign(nslots_, RingMessage{});
    insertedAtRot_.assign(nslots_, 0);
    insertedBy_.assign(nslots_, invalidNode);
    blockShift_ = frame.blockShift();

    nodePos_.assign(config_.nodes, 0);
    for (NodeId n = 0; n < config_.nodes; ++n)
        nodePos_[n] = config_.nodePosition(n);

    clients_.assign(config_.nodes, nullptr);

    // Precompute the visitation schedule: for each rotation offset r,
    // the (node, slot) pairs whose header lands on a node, in the same
    // ascending-node order the reference scan dispatches. Each node
    // anchors one stage, so the table holds at most nodes entries per
    // rotation and exactly nodes * slots entries overall.
    visitHead_.assign(stages + 1, 0);
    visits_.clear();
    for (unsigned r = 0; r < stages; ++r) {
        visitHead_[r] = static_cast<std::uint32_t>(visits_.size());
        for (NodeId n = 0; n < config_.nodes; ++n) {
            unsigned off = (nodePos_[n] + stages - r) % stages;
            int slot_idx = headerSlot_[off];
            if (slot_idx < 0)
                continue;
            visits_.push_back(
                SlotVisit{n, static_cast<std::uint32_t>(slot_idx)});
        }
    }
    visitHead_[stages] = static_cast<std::uint32_t>(visits_.size());

    // Per-rotation gather tables. The ascending-node schedule of one
    // rotation touches slot indices in a two-segment pattern: a
    // strictly ascending run of high indices (nodes whose stage sits
    // below the rotation offset — their header offset wrapped), then a
    // strictly ascending run of low indices, every high index above
    // every low one. When that shape holds for every rotation (it does
    // for all ring geometries config::check admits; this is verified,
    // not assumed), iterating occupancy bits ascending within hi then
    // lo reproduces node order and the gather can be word-granular.
    rotMaskHi_.assign(std::size_t(stages) * words_, 0);
    rotMaskLo_.assign(std::size_t(stages) * words_, 0);
    visitNode_.assign(std::size_t(stages) * nslots_, invalidNode);
    masksValid_ = true;
    for (unsigned r = 0; r < stages; ++r) {
        std::uint32_t head = visitHead_[r];
        std::uint32_t tail = visitHead_[r + 1];
        NodeId *vn = visitNode_.data() + std::size_t(r) * nslots_;
        for (std::uint32_t i = head; i < tail; ++i)
            vn[visits_[i].slot] = visits_[i].node;
        if (head == tail)
            continue;
        std::uint32_t split = head + 1;
        while (split < tail &&
               visits_[split].slot > visits_[split - 1].slot)
            ++split;
        bool ok = true;
        for (std::uint32_t j = split; j < tail && ok; ++j) {
            if (j > split && visits_[j].slot <= visits_[j - 1].slot)
                ok = false;
            if (visits_[j].slot >= visits_[head].slot)
                ok = false;
        }
        if (!ok) {
            masksValid_ = false;
            continue;
        }
        std::uint64_t *hi = rotMaskHi_.data() + std::size_t(r) * words_;
        std::uint64_t *lo = rotMaskLo_.data() + std::size_t(r) * words_;
        for (std::uint32_t i = head; i < split; ++i)
            hi[visits_[i].slot >> 6] |=
                std::uint64_t(1) << (visits_[i].slot & 63);
        for (std::uint32_t i = split; i < tail; ++i)
            lo[visits_[i].slot >> 6] |=
                std::uint64_t(1) << (visits_[i].slot & 63);
    }

    // Scratch for one rotation's gathered visits. Sized once — a
    // rotation visits at most one slot per node — and filled through
    // raw pointers, so the gather loop carries no size/capacity
    // bookkeeping.
    batch_.assign(config_.nodes, SlotVisit{});
    batchCache_.assign(std::size_t(stages) * config_.nodes,
                       SlotVisit{});
    batchLen_.assign(stages, 0);
    batchEpoch_.assign(stages, 0);

    tracked_.assign(config_.nodes, 0);
    pending_.assign(config_.nodes, 0);

    // One kernel dispatch can carry many back-to-back ring cycles; the
    // event stream is unchanged (see Ticker::enableBatching).
    ticker_.enableBatching();
}

void
SlotRing::setClient(NodeId n, RingClient &client)
{
    if (n >= clients_.size())
        panic("setClient: node %u out of range", n);
    clients_[n] = &client;
    // The new client has not promised no-op empty visits; revoke any
    // opt-in the previous one made.
    if (tracked_[n]) {
        tracked_[n] = 0;
        --trackedCount_;
    }
    if (pending_[n]) {
        pending_[n] = 0;
        --pendingCount_;
    }
    refreshUniformClient();
    updateFastDispatch();
}

void
SlotRing::refreshUniformClient()
{
    RingClient *u = clients_.empty() ? nullptr : clients_[0];
    for (RingClient *c : clients_) {
        if (c != u) {
            u = nullptr;
            break;
        }
    }
    uniformClient_ = u;
}

void
SlotRing::updateFastDispatch()
{
    fastDispatch_ = masksValid_ && uniformClient_ != nullptr &&
                    pendingCount_ == 0 &&
                    trackedCount_ == config_.nodes &&
                    injector_ == nullptr && !config_.referenceTickPath;
}

void
SlotRing::enableIdleSkip(NodeId n)
{
    if (n >= tracked_.size())
        panic("enableIdleSkip: node %u out of range", n);
    if (!tracked_[n]) {
        tracked_[n] = 1;
        ++trackedCount_;
        updateFastDispatch();
    }
}

void
SlotRing::notifyPending(NodeId n)
{
    if (n >= pending_.size())
        panic("notifyPending: node %u out of range", n);
    if (!pending_[n]) {
        pending_[n] = 1;
        ++pendingCount_;
        fastDispatch_ = false;
    }
}

void
SlotRing::clearPending(NodeId n)
{
    if (n >= pending_.size())
        panic("clearPending: node %u out of range", n);
    if (pending_[n]) {
        pending_[n] = 0;
        --pendingCount_;
        if (pendingCount_ == 0)
            updateFastDispatch();
    }
}

void
SlotRing::start(Tick start_at)
{
    for (NodeId n = 0; n < config_.nodes; ++n)
        if (!clients_[n])
            panic("SlotRing started with no client at node %u", n);
    ticker_.start(start_at);
}

void
SlotRing::stop()
{
    ticker_.stop();
}

void
SlotRing::injectFaults(Count cycle)
{
    // Ascending slot order over occupied slots, exactly as the AoS
    // scan did — the injector's seeded schedule is a function of
    // (cycle, slot), so enumeration order is part of the contract.
    for (unsigned w = 0; w < words_; ++w) {
        std::uint64_t m = occAny_[w];
        while (m) {
            unsigned s =
                w * 64 + static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            if (injector_->dropAt(cycle, s)) {
                // Latch upset: the message vanishes; only the sender's
                // retry timeout can recover it. Not counted as removed.
                unsigned t = typeIndex(types_[s]);
                std::uint64_t bit = std::uint64_t(1) << (s & 63);
                occ_[t * words_ + w] &= ~bit;
                occAny_[w] &= ~bit;
                corrupt_[w] &= ~bit;
                accrueOccupancy();
                --occCnt_[t];
                --occTotal_;
                ++occEpoch_;
            } else if (!bitTest(corrupt_, s) &&
                       injector_->corruptAt(cycle, s)) {
                bitSet(corrupt_, s);
            }
        }
    }
}

inline void
SlotRing::tick(Count cycle)
{
    // Slot occupancy accrues into the utilization integral lazily —
    // a closed form between occupancy changes (see accrueOccupancy) —
    // so advancing time is all this cycle pays. Time passes during a
    // stall, so the integral accrues there too.
    ++cycles_;

    if (fastDispatch_) {
        // The bitmap dispatch cycle, inline in tick() so it fuses
        // with the batched process() loop: one uniform client,
        // verified masks, every node tracked, nothing pending, no
        // injector, scheduled path (see updateFastDispatch) — the
        // cycle's work reduces to the incrementally maintained
        // occupancy counters plus one batched dispatch.
        unsigned occ = occTotal_;
        if (occ == 0) {
            // Quiescent (nothing pending or injected is implied by
            // the flag).
            if (++rot_ == stages_)
                rot_ = 0;
            ++rotations_;
            maybeFastForward();
            return;
        }
        unsigned r = rot_;
        const SlotVisit *begin;
        const SlotVisit *end;
        // Saturated shortcut: a completely full ring (the common
        // saturated regime) means the precomputed span already is the
        // batch, without touching a mask word.
        if (occ == nslots_) {
            begin = visits_.data() + visitHead_[r];
            end = visits_.data() + visitHead_[r + 1];
        } else {
            const SlotVisit *row =
                batchCache_.data() + std::size_t(r) * config_.nodes;
            std::uint32_t len = batchLen_[r];
            if (batchEpoch_[r] != occEpoch_)
                len = rebuildBatchRow(r);
            begin = row;
            end = row + len;
        }
        if (begin != end)
            uniformClient_->onVisits(*this, begin, end);
        if (++rot_ == stages_)
            rot_ = 0;
        ++rotations_;
        return;
    }

    if (injector_) {
        if (stallRemaining_ == 0)
            stallRemaining_ = injector_->stallFor(cycle);
        if (stallRemaining_ > 0) {
            // The pipeline holds: nothing moves, nobody is visited.
            --stallRemaining_;
            return;
        }
        injectFaults(cycle);
    }

    if (config_.referenceTickPath)
        referenceTick();
    else
        scheduledTick();
}

void
SlotRing::referenceTick()
{
    unsigned stages = stages_;

    // The pattern has advanced rot_ stages, so the pattern offset now
    // at physical position p is (p - rot_) mod stages. A node sees a
    // slot when that offset is the slot's header stage. Without
    // stalls, rot_ == cycle % stages.
    for (NodeId n = 0; n < config_.nodes; ++n) {
        unsigned pos = nodePos_[n];
        unsigned off = (pos + stages - rot_) % stages;
        int slot_idx = headerSlot_[off];
        if (slot_idx < 0)
            continue;
        SlotHandle handle(*this, static_cast<unsigned>(slot_idx), n);
        clients_[n]->onSlot(handle);
    }

    if (++rot_ == stages)
        rot_ = 0;
    ++rotations_;
}

std::uint32_t
SlotRing::rebuildBatchRow(unsigned r)
{
    // Word-granular gather: occupancy bits ascending within hi then
    // lo reproduce ascending node order (the shape the constructor
    // verified). The row is config_.nodes wide — the most one
    // rotation can visit — so plain stores suffice; the result is
    // cached until the next occupancy change.
    SlotVisit *row = batchCache_.data() + std::size_t(r) * config_.nodes;
    const std::uint64_t *hi = rotMaskHi_.data() + std::size_t(r) * words_;
    const std::uint64_t *lo = rotMaskLo_.data() + std::size_t(r) * words_;
    const NodeId *vn = visitNode_.data() + std::size_t(r) * nslots_;
    SlotVisit *out = row;
    for (unsigned w = 0; w < words_; ++w) {
        std::uint64_t m = occAny_[w] & hi[w];
        while (m) {
            unsigned s =
                w * 64 + static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            *out++ = SlotVisit{vn[s], s};
        }
    }
    for (unsigned w = 0; w < words_; ++w) {
        std::uint64_t m = occAny_[w] & lo[w];
        while (m) {
            unsigned s =
                w * 64 + static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            *out++ = SlotVisit{vn[s], s};
        }
    }
    std::uint32_t len = static_cast<std::uint32_t>(out - row);
    batchLen_[r] = len;
    batchEpoch_[r] = occEpoch_;
    return len;
}

void
SlotRing::scheduledTick()
{
    bool empty_ring = true;
    for (unsigned w = 0; w < words_; ++w) {
        if (occAny_[w]) {
            empty_ring = false;
            break;
        }
    }

    if (empty_ring && pendingCount_ == 0 &&
        trackedCount_ == config_.nodes) {
        // Fully quiescent: no message on the ring and every node both
        // opted into idle skipping and reports nothing to insert. No
        // onSlot call this cycle could do anything.
        if (++rot_ == stages_)
            rot_ = 0;
        ++rotations_;
        // With a fault injector attached the seeded schedule is a
        // function of (cycle, slot), so every cycle must still be
        // presented to it — no jumping.
        if (!injector_)
            maybeFastForward();
        return;
    }

    unsigned r = rot_;
    if (uniformClient_) {
        batchedTick(r);
    } else {
        const SlotVisit *v = visits_.data() + visitHead_[r];
        const SlotVisit *end = visits_.data() + visitHead_[r + 1];
        for (; v != end; ++v) {
            // A tracked node with nothing pending only reacts to
            // occupied slots; untracked nodes are always visited.
            if (!bitTest(occAny_, v->slot) && tracked_[v->node] &&
                !pending_[v->node])
                continue;
            SlotHandle handle(*this, v->slot, v->node);
            clients_[v->node]->onSlot(handle);
        }
    }

    if (++rot_ == stages_)
        rot_ = 0;
    ++rotations_;
}

void
SlotRing::batchedTick(unsigned r)
{
    // Gather the rotation's live visits, then hand them to the single
    // client in one call. Gathering before dispatch is equivalent to
    // the lazy walk because a handler may only mutate the visited
    // slot and the visited node's own pending flags (the onVisits
    // contract), and no slot or node appears twice in one rotation.
    //
    // This is the uniform-client path *outside* fastDispatch_ — some
    // node must be visited even on an empty slot (untracked or
    // pending), or the mask shape failed verification — so it gathers
    // with the same per-visit predicate the lazy walk uses; the
    // word-granular bitmap gather lives in fastTick().
    SlotVisit *out = batch_.data();
    const SlotVisit *v = visits_.data() + visitHead_[r];
    const SlotVisit *vend = visits_.data() + visitHead_[r + 1];
    for (; v != vend; ++v) {
        if (!bitTest(occAny_, v->slot) && tracked_[v->node] &&
            !pending_[v->node])
            continue;
        *out++ = *v;
    }
    if (out != batch_.data())
        uniformClient_->onVisits(*this, batch_.data(), out);
}

void
SlotRing::maybeFastForward()
{
    // Land the next real tick on the last grid point strictly before
    // the earliest foreign event (or on the last one not beyond the
    // run bound when the queue is otherwise empty). Ticker::process
    // assigned the pending firing's sequence number before this
    // handler ran and the quiescent path schedules nothing, so sliding
    // that firing forward keeps every (when, seq) ordering against the
    // rest of the system exactly as the cycle-by-cycle path would —
    // the event streams, and therefore the statistics, are identical.
    Tick horizon = kernel_.nextEventTimeExcluding(ticker_);
    Tick bound;
    if (horizon != sim::Kernel::kNoEvent) {
        bound = horizon;
    } else {
        Tick limit = kernel_.runLimit();
        if (limit == sim::Kernel::kNoEvent)
            return;
        // Events scheduled exactly at the bound still fire.
        bound = limit + 1;
    }
    Tick pend = ticker_.when();
    if (bound <= pend)
        return;
    Count skip =
        static_cast<Count>((bound - 1 - pend) / config_.clockPeriod);
    if (skip == 0)
        return;
    ticker_.fastForward(skip);
    // Account for the skipped cycles as the idle ticks they replace.
    // The occupancy integrals gain nothing: every count is zero.
    cycles_ += skip;
    rotations_ += skip;
    rot_ = static_cast<unsigned>((rot_ + skip) % config_.totalStages());
}

Count
SlotRing::inserted(SlotType t) const
{
    return inserted_[typeIndex(t)];
}

Count
SlotRing::removed(SlotType t) const
{
    return removed_[typeIndex(t)];
}

double
SlotRing::occupancy(SlotType t) const
{
    if (cycles_ == 0)
        return 0.0;
    unsigned slots_of_type = config_.slotsOfType(t);
    return static_cast<double>(accruedIntegral(typeIndex(t))) /
           (static_cast<double>(cycles_) * slots_of_type);
}

double
SlotRing::totalOccupancy() const
{
    if (cycles_ == 0)
        return 0.0;
    std::uint64_t integral = accruedIntegral(0) + accruedIntegral(1) +
                             accruedIntegral(2);
    return static_cast<double>(integral) /
           (static_cast<double>(cycles_) * config_.totalSlots());
}

unsigned
SlotRing::occupiedNow() const
{
    unsigned c = 0;
    for (unsigned w = 0; w < words_; ++w)
        c += static_cast<unsigned>(std::popcount(occAny_[w]));
    return c;
}

void
SlotRing::resetStats()
{
    cycles_ = 0;
    occAccruedAt_ = 0;
    for (unsigned t = 0; t < 3; ++t) {
        occupancyIntegral_[t] = 0;
        inserted_[t] = 0;
        removed_[t] = 0;
    }
}

} // namespace ringsim::ring
