/**
 * @file
 * Slot and frame geometry of the slotted ring.
 *
 * Section 3.3: the ring's bandwidth is divided into fixed *frames*,
 * each holding one probe slot for even-address blocks, one probe slot
 * for odd-address blocks, and one block slot. Probes carry a block
 * address plus control (8 bytes here); block messages carry a header
 * (8 bytes) plus one cache block. A slot occupies
 * ceil(bytes / link_width) consecutive pipeline stages.
 *
 * Check values from the paper: 32-bit links and 16-byte blocks give a
 * 10-stage frame (2 + 2 + 6) and a 20 ns frame time at 500 MHz; the
 * full Table 3 matrix is reproduced by snoopInterArrival().
 */

#ifndef RINGSIM_RING_FRAME_LAYOUT_HPP
#define RINGSIM_RING_FRAME_LAYOUT_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ringsim::ring {

/** The three kinds of slots that make up a frame. */
enum class SlotType : unsigned char {
    ProbeEven, //!< probe slot reserved for even block addresses
    ProbeOdd,  //!< probe slot reserved for odd block addresses
    Block,     //!< block (data) slot
};

/** Printable name of a slot type. */
const char *slotTypeName(SlotType t);

/** Number of slots in one frame. */
inline constexpr unsigned slotsPerFrame = 3;

/** Frame geometry for a given link width and cache block size. */
struct FrameLayout
{
    /** Link (and latch) width in bits. */
    unsigned linkBits = 32;

    /** Cache block size carried by a block slot, in bytes. */
    size_t blockBytes = 16;

    /** Probe message size: block address + control/routing info. */
    static constexpr size_t probeBytes = 8;

    /** Block message header size (same format as a probe). */
    static constexpr size_t headerBytes = 8;

    /** Bytes transferred per stage. */
    size_t wordBytes() const { return linkBits / 8; }

    /** Stages occupied by one probe slot. */
    unsigned probeStages() const;

    /** Stages occupied by one block slot (header + data). */
    unsigned blockSlotStages() const;

    /** Stages occupied by a whole frame. */
    unsigned frameStages() const;

    /** Stages occupied by a slot of the given type. */
    unsigned slotStages(SlotType t) const;

    /** Stage offset of slot @p s (0..2) from the frame start. */
    unsigned slotOffset(unsigned s) const;

    /** Type of the @p s -th slot in a frame (even probe, odd, block). */
    static SlotType slotTypeAt(unsigned s);

    /**
     * log2(blockBytes) when it is a power of two, else -1. Lets the
     * probe-parity test (address / blockBytes, then parity) on the
     * slot-insert hot path become a shift; callers must keep the
     * divide as the fallback for non-power-of-two layouts.
     */
    int blockShift() const;

    /** All layout misconfigurations, as human-readable messages. */
    [[nodiscard]] std::vector<std::string> check() const;

    /** Sanity-check the layout (width divides sizes and is nonzero). */
    void validate() const;
};

/**
 * Minimum probe inter-arrival time per dual-directory bank (Table 3).
 *
 * With a 2-way interleaved dual directory, the even/odd probe slots of
 * a frame hit different banks, so a bank sees at most one probe per
 * frame: the minimum spacing is exactly the frame time.
 *
 * @param link_bits ring data-path width in bits.
 * @param block_bytes cache block size in bytes.
 * @param ring_period ring clock period in ticks.
 * @return the frame time in ticks.
 */
Tick snoopInterArrival(unsigned link_bits, size_t block_bytes,
                       Tick ring_period);

} // namespace ringsim::ring

#endif // RINGSIM_RING_FRAME_LAYOUT_HPP
