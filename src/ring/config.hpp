/**
 * @file
 * Whole-ring configuration: node count, clocking and stage placement.
 *
 * Section 4.2: each ring interface contributes a minimum of 3 pipeline
 * stages; the ring length is then rounded up to a whole number of
 * frames by adding extra stages. Check value: 8 nodes, 32-bit links,
 * 16-byte blocks => 24 stages rounded to 30 (3 frames), 60 ns round
 * trip at 500 MHz.
 */

#ifndef RINGSIM_RING_CONFIG_HPP
#define RINGSIM_RING_CONFIG_HPP

#include <string>
#include <vector>

#include "ring/frame_layout.hpp"
#include "util/units.hpp"

namespace ringsim::ring {

/** Static description of one slotted ring. */
struct RingConfig
{
    /** Number of nodes (ring interfaces). */
    unsigned nodes = 8;

    /** Ring clock period in ticks; 2000 ps = 500 MHz. */
    Tick clockPeriod = 2000;

    /** Minimum pipeline stages contributed by each node. */
    unsigned minStagesPerNode = 3;

    /**
     * Anti-starvation rule (Section 5.0): a node may not reuse a slot
     * in the same visit in which it removed a message from it. The
     * paper reports the rule costs nothing; bench/ablation_ring
     * verifies that claim by toggling this.
     */
    bool antiStarvation = true;

    /**
     * Permit node counts outside the paper's 8–64 evaluation range
     * (tests exploring degenerate geometries set this).
     */
    bool allowNonPaperScale = false;

    /**
     * Use the original scan-driven tick (walk every node, modulo per
     * node, visit even empty slots) instead of the schedule-driven
     * fast path. The two must produce byte-identical statistics; the
     * golden-equivalence test runs both and compares. Keep this off
     * outside that test — it exists as the executable specification
     * the fast path is checked against.
     */
    bool referenceTickPath = false;

    /** Slot/frame geometry. */
    FrameLayout frame;

    /** Total pipeline stages (rounded up to whole frames). */
    unsigned totalStages() const;

    /** Number of frames circulating on the ring. */
    unsigned framesOnRing() const;

    /** Number of slots circulating on the ring. */
    unsigned totalSlots() const { return framesOnRing() * slotsPerFrame; }

    /** Slots of a given type circulating on the ring. */
    unsigned slotsOfType(SlotType t) const;

    /** Pure (uncontended) time for one full traversal. */
    Tick roundTripTime() const {
        return static_cast<Tick>(totalStages()) * clockPeriod;
    }

    /** Time between consecutive same-type slot headers at one node. */
    Tick frameTime() const {
        return static_cast<Tick>(frame.frameStages()) * clockPeriod;
    }

    /** Pipeline-stage position of node @p n (evenly spread). */
    unsigned nodePosition(NodeId n) const;

    /**
     * Downstream stage distance from node @p from to node @p to
     * (0 when equal; always < totalStages()).
     */
    unsigned stageDistance(NodeId from, NodeId to) const;

    /** Pure propagation time from node @p from to node @p to. */
    Tick hopTime(NodeId from, NodeId to) const {
        return static_cast<Tick>(stageDistance(from, to)) * clockPeriod;
    }

    /**
     * All misconfigurations, as human-readable messages (empty when
     * the config is sound). Callers that can recover use this;
     * validate() is the fail-fast wrapper.
     */
    [[nodiscard]] std::vector<std::string> check() const;

    /** Validate all parameters; fatal() on misconfiguration. */
    void validate() const;
};

} // namespace ringsim::ring

#endif // RINGSIM_RING_CONFIG_HPP
