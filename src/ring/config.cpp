#include "config.hpp"

#include "util/logging.hpp"

namespace ringsim::ring {

unsigned
RingConfig::totalStages() const
{
    unsigned minimum = nodes * minStagesPerNode;
    unsigned per_frame = frame.frameStages();
    unsigned frames = (minimum + per_frame - 1) / per_frame;
    return frames * per_frame;
}

unsigned
RingConfig::framesOnRing() const
{
    return totalStages() / frame.frameStages();
}

unsigned
RingConfig::slotsOfType(SlotType t) const
{
    // One slot of each type per frame; two probe slots split by parity.
    (void)t;
    return framesOnRing();
}

unsigned
RingConfig::nodePosition(NodeId n) const
{
    if (n >= nodes)
        panic("node %u out of range (ring has %u nodes)", n, nodes);
    // Spread nodes evenly around the (possibly padded) ring.
    return static_cast<unsigned>(
        (static_cast<std::uint64_t>(n) * totalStages()) / nodes);
}

unsigned
RingConfig::stageDistance(NodeId from, NodeId to) const
{
    unsigned s = totalStages();
    unsigned a = nodePosition(from);
    unsigned b = nodePosition(to);
    return (b + s - a) % s;
}

std::vector<std::string>
RingConfig::check() const
{
    std::vector<std::string> errors;
    if (nodes == 0) {
        errors.push_back(
            "nodes = 0: ring must have at least one node");
    } else if (!allowNonPaperScale && (nodes < 8 || nodes > 64)) {
        errors.push_back(strprintf(
            "nodes = %u: outside the paper's 8-64 evaluation "
            "range (set allowNonPaperScale to override)",
            nodes));
    }
    if (clockPeriod == 0) {
        errors.push_back(
            "clockPeriod = 0: ring clock period must be nonzero");
    } else if (clockPeriod > 1'000'000) {
        errors.push_back(strprintf(
            "clockPeriod = %llu ps: ring clock is below 1 MHz; the "
            "paper evaluates 250 and 500 MHz rings",
            static_cast<unsigned long long>(clockPeriod)));
    }
    if (minStagesPerNode == 0)
        errors.push_back("minStagesPerNode = 0: ring interfaces "
                         "contribute at least one stage");
    for (std::string &e : frame.check())
        errors.push_back(std::move(e));
    return errors;
}

void
RingConfig::validate() const
{
    std::vector<std::string> errors = check();
    if (!errors.empty())
        fatal("%s", errors.front().c_str());
}

} // namespace ringsim::ring
