#include "config.hpp"

#include "util/logging.hpp"

namespace ringsim::ring {

unsigned
RingConfig::totalStages() const
{
    unsigned minimum = nodes * minStagesPerNode;
    unsigned per_frame = frame.frameStages();
    unsigned frames = (minimum + per_frame - 1) / per_frame;
    return frames * per_frame;
}

unsigned
RingConfig::framesOnRing() const
{
    return totalStages() / frame.frameStages();
}

unsigned
RingConfig::slotsOfType(SlotType t) const
{
    // One slot of each type per frame; two probe slots split by parity.
    (void)t;
    return framesOnRing();
}

unsigned
RingConfig::nodePosition(NodeId n) const
{
    if (n >= nodes)
        panic("node %u out of range (ring has %u nodes)", n, nodes);
    // Spread nodes evenly around the (possibly padded) ring.
    return static_cast<unsigned>(
        (static_cast<std::uint64_t>(n) * totalStages()) / nodes);
}

unsigned
RingConfig::stageDistance(NodeId from, NodeId to) const
{
    unsigned s = totalStages();
    unsigned a = nodePosition(from);
    unsigned b = nodePosition(to);
    return (b + s - a) % s;
}

void
RingConfig::validate() const
{
    if (nodes == 0)
        fatal("ring must have at least one node");
    if (clockPeriod == 0)
        fatal("ring clock period must be nonzero");
    if (minStagesPerNode == 0)
        fatal("ring interfaces contribute at least one stage");
    frame.validate();
}

} // namespace ringsim::ring
