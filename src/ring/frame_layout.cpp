#include "frame_layout.hpp"

#include "util/logging.hpp"

namespace ringsim::ring {

namespace {

unsigned
ceilDiv(size_t a, size_t b)
{
    return static_cast<unsigned>((a + b - 1) / b);
}

} // namespace

const char *
slotTypeName(SlotType t)
{
    switch (t) {
      case SlotType::ProbeEven:
        return "probe-even";
      case SlotType::ProbeOdd:
        return "probe-odd";
      case SlotType::Block:
        return "block";
    }
    return "?";
}

unsigned
FrameLayout::probeStages() const
{
    return ceilDiv(probeBytes, wordBytes());
}

unsigned
FrameLayout::blockSlotStages() const
{
    return ceilDiv(headerBytes, wordBytes()) +
           ceilDiv(blockBytes, wordBytes());
}

unsigned
FrameLayout::frameStages() const
{
    return 2 * probeStages() + blockSlotStages();
}

unsigned
FrameLayout::slotStages(SlotType t) const
{
    return t == SlotType::Block ? blockSlotStages() : probeStages();
}

unsigned
FrameLayout::slotOffset(unsigned s) const
{
    switch (s) {
      case 0:
        return 0;
      case 1:
        return probeStages();
      case 2:
        return 2 * probeStages();
    }
    panic("slot index %u out of range", s);
}

SlotType
FrameLayout::slotTypeAt(unsigned s)
{
    switch (s) {
      case 0:
        return SlotType::ProbeEven;
      case 1:
        return SlotType::ProbeOdd;
      case 2:
        return SlotType::Block;
    }
    panic("slot index %u out of range", s);
}

int
FrameLayout::blockShift() const
{
    if (blockBytes == 0 || (blockBytes & (blockBytes - 1)) != 0)
        return -1;
    int shift = 0;
    while ((size_t(1) << shift) != blockBytes)
        ++shift;
    return shift;
}

std::vector<std::string>
FrameLayout::check() const
{
    std::vector<std::string> errors;
    if (linkBits == 0 || linkBits % 8 != 0) {
        errors.push_back(strprintf(
            "ring link width %u bits is not a multiple of 8", linkBits));
    }
    if (blockBytes == 0)
        errors.push_back("ring block size must be nonzero");
    return errors;
}

void
FrameLayout::validate() const
{
    std::vector<std::string> errors = check();
    if (!errors.empty())
        fatal("%s", errors.front().c_str());
}

Tick
snoopInterArrival(unsigned link_bits, size_t block_bytes, Tick ring_period)
{
    FrameLayout layout;
    layout.linkBits = link_bits;
    layout.blockBytes = block_bytes;
    layout.validate();
    return static_cast<Tick>(layout.frameStages()) * ring_period;
}

} // namespace ringsim::ring
