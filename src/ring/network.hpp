/**
 * @file
 * Cycle-level model of the unidirectional slotted ring.
 *
 * The ring is a circular pipeline of totalStages() latch stages whose
 * contents advance one stage per ring clock. The slot pattern (frames
 * of even-probe / odd-probe / block slots) is fixed; rather than
 * copying latch contents we rotate a read index, and we invoke a
 * node's RingClient exactly when a slot *header* stage reaches that
 * node's position. Protocol controllers implement RingClient and use
 * the SlotHandle to snoop, remove, or insert messages.
 *
 * Access-control rules enforced here (Sections 2.0 and 5.0):
 *  - a message may only be inserted into an empty slot whose type
 *    matches (probe parity must match the block address);
 *  - anti-starvation: a node may not reuse a slot in the same visit in
 *    which it removed a message from it.
 *
 * The steady-state tick is schedule-driven and data-oriented
 * (DESIGN.md section 11). Slot state lives in structure-of-arrays
 * form: per-type occupancy and corruption bitmaps plus a dense message
 * array on the hot side, traversal-audit fields on a cold side touched
 * only by insert/remove/monitor paths. A visitation table precomputed
 * per rotation offset replaces the per-node modulo scan; on a
 * saturated ring the occupancy bitmap is ANDed with per-rotation slot
 * masks so only live visits are even enumerated, and the whole
 * rotation is handed to the (single, devirtualized) client in one
 * RingClient::onVisits call. Nodes that opted in via enableIdleSkip()
 * are only visited when the arriving slot is occupied or the node
 * flagged pending work via notifyPending(), and a fully quiescent ring
 * fast-forwards across idle cycles in O(1). The original scan loop is
 * retained behind RingConfig::referenceTickPath and the two are held
 * byte-identical by tests/ring/golden_equivalence_test.cpp.
 */

#ifndef RINGSIM_RING_NETWORK_HPP
#define RINGSIM_RING_NETWORK_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "ring/config.hpp"
#include "sim/kernel.hpp"
#include "stats/stats.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace ringsim::fault {
class FaultInjector;
} // namespace ringsim::fault

namespace ringsim::cache {
class InvariantMonitor;
} // namespace ringsim::cache

namespace ringsim::ring {

/** Destination value meaning "snooped by everyone" (broadcast probes). */
inline constexpr NodeId broadcastNode = invalidNode - 1;

/** A message occupying one slot. */
struct RingMessage
{
    NodeId src = invalidNode;  //!< inserting node
    NodeId dst = invalidNode;  //!< destination, or broadcastNode
    Addr addr = 0;             //!< block base address
    std::uint32_t kind = 0;    //!< protocol-defined opcode
    std::uint64_t payload = 0; //!< protocol-defined extra field
};

class SlotRing;

/** One (node, slot) dispatch in a rotation's visitation schedule. */
struct SlotVisit
{
    NodeId node;
    std::uint32_t slot;
};

/**
 * A node's view of the slot whose header just reached it. Valid only
 * for the duration of the RingClient::onSlot call (or, for a batched
 * client, until the onVisits call returns).
 */
class SlotHandle
{
  public:
    /** Type of the visiting slot. */
    SlotType type() const;

    /** True if the slot carries a message. */
    bool occupied() const;

    /**
     * True if the carried message's payload was corrupted by fault
     * injection (detected via its CRC; the header survives).
     */
    bool corrupted() const;

    /** The carried message; panics when empty. */
    const RingMessage &message() const;

    /**
     * Take the message out of the slot, freeing it. Only meaningful
     * for the destination (or the source, for self-removed probes);
     * the protocol is responsible for honoring that.
     */
    RingMessage remove();

    /**
     * True if insert() would succeed: the slot is empty, was not freed
     * by this node in this visit, and @p addr has the parity this slot
     * serves (always true for block slots).
     */
    bool canInsert(Addr addr) const;

    /** Place @p msg into the slot; panics unless canInsert(msg.addr). */
    void insert(const RingMessage &msg);

    /** The node being visited. */
    NodeId node() const { return node_; }

  private:
    friend class SlotRing;

    SlotHandle(SlotRing &ring_owner, unsigned slot_idx, NodeId node_id)
        : ring_(ring_owner), slot_(slot_idx), node_(node_id)
    {}

    SlotRing &ring_;
    unsigned slot_;
    NodeId node_;
    bool freedHere_ = false;
};

/** Interface implemented by each node's protocol controller. */
class RingClient
{
  public:
    virtual ~RingClient() = default;

    /** A slot header reached this node's interface. */
    virtual void onSlot(SlotHandle &slot) = 0;

    /**
     * Batch hook: all live visits of one rotation, in the same order
     * the per-visit path would dispatch them (ascending node). Called
     * instead of per-visit onSlot when one client object serves every
     * node (setClient with the same object for all nodes); the default
     * implementation loops over onSlot, so implementing it is an
     * optimization, never a requirement.
     *
     * Contract for implementers (see DESIGN.md section 11): the visit
     * list is gathered before the first dispatch, so a handler must
     * only mutate state attributed to the node being visited — its own
     * slot via the SlotHandle, and its own node's pending flags via
     * notifyPending()/clearPending(). It must not call setClient() or
     * touch another node's pending flags synchronously; cross-node
     * effects go through kernel events, exactly as the per-visit path
     * already requires.
     */
    virtual void onVisits(SlotRing &ring, const SlotVisit *begin,
                          const SlotVisit *end);
};

/**
 * The slotted ring proper: owns the slots, advances them every clock,
 * and dispatches slot headers to the registered clients.
 */
class SlotRing
{
  public:
    /**
     * @param kernel event kernel driving the simulation.
     * @param config ring geometry and clocking (validated here).
     */
    SlotRing(sim::Kernel &kernel, const RingConfig &config);

    /** Attach the protocol controller for node @p n (required). */
    void setClient(NodeId n, RingClient &client);

    /**
     * Declare that node @p n's client is a pure reactor: its onSlot()
     * has no effect when the slot is empty and the node has no pending
     * work (it neither mutates state nor gathers statistics on such
     * visits). The ring then skips those calls, and once every node
     * has opted in it may fast-forward across fully idle stretches.
     *
     * A client that opts in MUST call notifyPending()/clearPending()
     * as work to insert appears and drains; otherwise it would never
     * be offered an empty slot. setClient() revokes the opt-in for
     * that node (the new client has not promised anything).
     */
    void enableIdleSkip(NodeId n);

    /**
     * Node @p n has work it wants to put on the ring: visit it on
     * every slot (so it can be offered empty ones) until
     * clearPending(). Idempotent; meaningful only after
     * enableIdleSkip(n).
     */
    void notifyPending(NodeId n);

    /** Node @p n no longer has anything to insert. Idempotent. */
    void clearPending(NodeId n);

    /**
     * Attach a fault injector (null detaches). Borrowed; must outlive
     * the ring. With no injector the ring is the paper's ideal ring.
     */
    void setFaultInjector(fault::FaultInjector *injector) {
        injector_ = injector;
        updateFastDispatch();
    }

    /**
     * Attach an invariant monitor (null detaches). Borrowed. When set,
     * the ring reports messages that overrun one full traversal
     * without being removed by their destination.
     */
    void setMonitor(cache::InvariantMonitor *monitor) {
        monitor_ = monitor;
    }

    /** Begin rotating at time @p start_at. */
    void start(Tick start_at = 0);

    /** Stop rotating (removes the pending tick). */
    void stop();

    /** The ring's configuration. */
    const RingConfig &config() const { return config_; }

    /** Time for the non-header stages of a slot to drain at a node. */
    Tick slotTailTime(SlotType t) const {
        return static_cast<Tick>(config_.frame.slotStages(t) - 1) *
               config_.clockPeriod;
    }

    /** Ring cycles elapsed. */
    Count cycles() const { return cycles_; }

    /** Messages inserted so far, by slot type (0=even,1=odd,2=block). */
    Count inserted(SlotType t) const;

    /** Messages removed so far, by slot type. */
    Count removed(SlotType t) const;

    /** Average occupancy (0..1) of slots of type @p t so far. */
    double occupancy(SlotType t) const;

    /** Average occupancy of all slots (the paper's ring utilization). */
    double totalOccupancy() const;

    /** Slots currently occupied (for tests). */
    unsigned occupiedNow() const;

    /** Which parity probe slot serves @p addr. */
    SlotType probeTypeFor(Addr addr) const;

    /** Handle for one scheduled visit (for onVisits implementations). */
    SlotHandle visitHandle(const SlotVisit &v) {
        return SlotHandle(*this, v.slot, v.node);
    }

    /**
     * Zero the occupancy/throughput statistics. Used at the end of the
     * warmup window so reported figures cover only the measured phase.
     *
     * Warm-up-reset semantics — what is and is not cleared:
     *  - cleared: cycles_ (the denominator of every occupancy figure),
     *    the per-type occupancy integrals, and the inserted/removed
     *    message counts. After a mid-run reset, occupancy(t) is the
     *    average over post-reset cycles only.
     *  - untouched: slots in flight (messages keep circulating and the
     *    occupancy integral immediately re-accrues from the live
     *    occupied counts), rot_ (physical pipeline position — resetting
     *    it would teleport the slot pattern), and rotations_ (feeds the
     *    one-traversal audit of messages inserted before the reset).
     *
     * Pinned by RingNetwork.ResetStatsMidRunOccupancy.
     */
    void resetStats();

  private:
    friend class SlotHandle;

    /**
     * One ring cycle. Forced inline: its only caller is the batched
     * TickEvent::process loop in the same translation unit, and the
     * steady (fastDispatch_) body must fuse into that loop — left to
     * the inliner's budget it stays an out-of-line call per cycle.
     */
    [[gnu::always_inline]] void tick(Count cycle);
    void referenceTick();
    /** Regather rotation @p r's batch into its cache row (stamping
     *  it with the current epoch) and return the row length. Off the
     *  steady path: runs once per occupancy change per rotation. */
    std::uint32_t rebuildBatchRow(unsigned r);
    /** General (guarded) schedule-driven cycle. */
    void scheduledTick();
    /** Gather one rotation's live visits and batch-dispatch them. */
    void batchedTick(unsigned r);
    void injectFaults(Count cycle);

    /**
     * From a fully quiescent tick (no occupied slot, no pending node,
     * every node tracked, no injector), jump the ticker, rot_, cycles_
     * and rotations_ across the idle gap up to — but never onto — the
     * next foreign kernel event, in O(1). The occupancy integrals need
     * no adjustment: every maintained count is zero across the gap.
     */
    void maybeFastForward();

    static unsigned typeIndex(SlotType t) {
        return static_cast<unsigned>(t);
    }

    // --- Hot slot state: structure-of-arrays bitmaps -----------------
    //
    // occ_[t*words_ + w] is the occupancy bitmap of type-t slots;
    // occAny_[w] is the union across types (the word the gather loop
    // ANDs with the rotation masks). corrupt_ ⊆ occAny_ marks payload
    // corruption. Slot types are fixed at construction (types_), so
    // per-type counts are popcounts of the per-type words.

    bool bitTest(const std::vector<std::uint64_t> &bm, unsigned s) const {
        return (bm[s >> 6] >> (s & 63)) & 1;
    }
    void bitSet(std::vector<std::uint64_t> &bm, unsigned s) {
        bm[s >> 6] |= std::uint64_t(1) << (s & 63);
    }
    void bitClear(std::vector<std::uint64_t> &bm, unsigned s) {
        bm[s >> 6] &= ~(std::uint64_t(1) << (s & 63));
    }

    /** Occupied slots of type index @p t. Maintained incrementally at
     *  insert/remove/drop (a per-cycle popcount is an out-of-line
     *  libcall on baseline x86-64). */
    unsigned occupiedOfType(unsigned t) const { return occCnt_[t]; }

    /**
     * Fold the cycles since the last occupancy change into the
     * integrals. Must run before any occCnt_ mutation; between
     * mutations the integral is a closed form (count × elapsed), so
     * the tick path carries no per-cycle accumulation at all.
     */
    void accrueOccupancy() {
        Count elapsed = cycles_ - occAccruedAt_;
        if (elapsed) {
            for (unsigned t = 0; t < 3; ++t)
                occupancyIntegral_[t] +=
                    static_cast<std::uint64_t>(occCnt_[t]) * elapsed;
            occAccruedAt_ = cycles_;
        }
    }

    /** The integral including the not-yet-folded tail (for readers). */
    std::uint64_t accruedIntegral(unsigned t) const {
        return occupancyIntegral_[t] +
               static_cast<std::uint64_t>(occCnt_[t]) *
                   (cycles_ - occAccruedAt_);
    }

    /** Recompute uniformClient_ after a setClient(). */
    void refreshUniformClient();

    /**
     * Recompute fastDispatch_: true when the per-cycle guards of the
     * bitmap dispatch all hold — one uniform client, verified
     * rotation masks, every node tracked, nothing pending. Folding
     * them into one flag (maintained at the rare transitions) keeps
     * the tick preamble to a single predictable branch.
     */
    void updateFastDispatch();

    /**
     * The ring's clock, with the per-cycle handler devirtualized:
     * process() repeats sim::Ticker's schedule/consume protocol but
     * calls SlotRing::tick directly, so the batched cycle loop and
     * the fast-dispatch tick body inline into one frame instead of
     * paying a std::function dispatch per ring cycle.
     */
    class TickEvent final : public sim::Ticker
    {
      public:
        TickEvent(SlotRing &ring, sim::Kernel &kernel, Tick period)
            : sim::Ticker(kernel, period), ring_(ring)
        {
        }
        void process() override;

      private:
        SlotRing &ring_;
    };

    sim::Kernel &kernel_;
    RingConfig config_;
    TickEvent ticker_;

    /** Pipeline stages (== config_.totalStages(), cached: the ctor
     *  call chain behind it — two divisions — is off the tick path). */
    unsigned stages_ = 0;
    /** Slots on the ring (== config_.totalSlots()). */
    unsigned nslots_ = 0;
    /** Bitmap words per mask (ceil(nslots_ / 64)). */
    unsigned words_ = 0;

    /** Per-slot type, fixed at construction. */
    std::vector<SlotType> types_;
    /** Per-type occupancy bitmaps, 3 * words_ words. */
    std::vector<std::uint64_t> occ_;
    /** Per-type occupied-slot counts (== popcount of occ_[t]). */
    unsigned occCnt_[3] = {0, 0, 0};
    /** Total occupied slots (sum of occCnt_; one load on the tick
     *  path). */
    unsigned occTotal_ = 0;
    /** Union of the three per-type occupancy bitmaps. */
    std::vector<std::uint64_t> occAny_;
    /** Payload-corruption bitmap (always a subset of occAny_). */
    std::vector<std::uint64_t> corrupt_;
    /** Dense message payloads, indexed by slot. */
    std::vector<RingMessage> msgs_;

    // Cold traversal-audit state, touched only on insert/remove and by
    // the invariant monitor — kept out of the per-visit cache
    // footprint on purpose.
    std::vector<Count> insertedAtRot_;
    std::vector<NodeId> insertedBy_;

    /** headerSlot_[stage offset] = slot index whose header sits there,
     *  or -1 for a non-header stage. */
    std::vector<int> headerSlot_;
    /** nodeAtPos_[stage] = node anchored at that stage, or invalid. */
    std::vector<NodeId> nodePos_;
    std::vector<RingClient *> clients_;
    /** The single client serving every node, or null if mixed. */
    RingClient *uniformClient_ = nullptr;

    /**
     * Visitation schedule: visits_[visitHead_[r] .. visitHead_[r+1])
     * are the (node, slot) pairs whose header reaches the node at
     * rotation offset r, in ascending node order — the same dispatch
     * order the reference scan produces.
     */
    std::vector<SlotVisit> visits_;
    std::vector<std::uint32_t> visitHead_;

    /**
     * Per-rotation slot masks for the word-granular gather. At
     * rotation r the schedule's ascending-node order visits two
     * ascending-slot-index segments: first the nodes whose stage
     * position is below r (their headers wrapped — high slot indices),
     * then the rest (low indices), every high index above every low
     * one. rotMaskHi_/rotMaskLo_ hold those two segments' slot bits
     * (words_ words per rotation), so iterating set bits of
     * (occAny & hi) ascending then (occAny & lo) ascending reproduces
     * node order exactly. masksValid_ is set only after the
     * constructor has verified that two-segment shape for every
     * rotation; otherwise the gather falls back to the schedule walk.
     */
    std::vector<std::uint64_t> rotMaskHi_;
    std::vector<std::uint64_t> rotMaskLo_;
    /** visitNode_[r * nslots_ + slot] = node visited, per rotation. */
    std::vector<NodeId> visitNode_;
    bool masksValid_ = false;
    /** See updateFastDispatch(). */
    bool fastDispatch_ = false;

    /** Scratch for one rotation's gathered visits; permanently sized
     *  to one entry per node (a rotation's maximum) so the gather
     *  loops write through raw pointers with no vector bookkeeping. */
    std::vector<SlotVisit> batch_;

    /**
     * Per-rotation gather cache. The gathered batch of rotation r is
     * a pure function of (occupancy bitmap, r), and the bitmap only
     * changes on insert/remove/drop — which bump occEpoch_. A
     * rotation whose stamp matches the epoch replays its cached batch
     * (one compare), so a ring whose population changes rarely — or,
     * as in the saturated benchmarks, not at all — regathers each
     * rotation once per change instead of once per lap.
     * batchCache_ rows are config_.nodes wide, indexed by rotation.
     */
    std::vector<SlotVisit> batchCache_;
    std::vector<std::uint32_t> batchLen_;
    std::vector<std::uint64_t> batchEpoch_;
    /** Bumped on every occupancy-bitmap mutation; starts at 1 so the
     *  zero-initialized stamps are invalid. */
    std::uint64_t occEpoch_ = 1;

    /** tracked_[n]: node n opted into idle skipping (enableIdleSkip). */
    std::vector<std::uint8_t> tracked_;
    /** pending_[n]: tracked node n wants to insert (notifyPending). */
    std::vector<std::uint8_t> pending_;
    unsigned trackedCount_ = 0;
    unsigned pendingCount_ = 0;

    fault::FaultInjector *injector_ = nullptr;
    cache::InvariantMonitor *monitor_ = nullptr;

    Count cycles_ = 0;
    /** Current pattern rotation (== cycle % stages with no stalls). */
    unsigned rot_ = 0;
    /** Absolute rotations performed (monotone; stalls pause it). */
    Count rotations_ = 0;
    /** Remaining cycles of an injected stall. */
    unsigned stallRemaining_ = 0;
    /** log2(blockBytes) when it is a power of two, else -1. */
    int blockShift_ = -1;
    std::uint64_t occupancyIntegral_[3] = {0, 0, 0};
    /** Cycle count already folded into occupancyIntegral_. */
    Count occAccruedAt_ = 0;
    Count inserted_[3] = {0, 0, 0};
    Count removed_[3] = {0, 0, 0};
};

// SlotHandle accessors are on the per-slot hot path of every protocol
// engine; defining them here (after SlotRing is complete) lets the
// compiler fold them into the onSlot bodies instead of paying a call
// per query.

inline SlotType
SlotHandle::type() const
{
    return ring_.types_[slot_];
}

inline bool
SlotHandle::occupied() const
{
    return ring_.bitTest(ring_.occAny_, slot_);
}

inline bool
SlotHandle::corrupted() const
{
    // corrupt_ is maintained as a subset of occAny_, so one bit test
    // answers "occupied and corrupted".
    return ring_.bitTest(ring_.corrupt_, slot_);
}

inline const RingMessage &
SlotHandle::message() const
{
    if (!occupied())
        panic("message() on an empty slot");
    return ring_.msgs_[slot_];
}

inline SlotType
SlotRing::probeTypeFor(Addr addr) const
{
    // blockBytes is a power of two in every paper configuration; the
    // shift is cached at construction and the divide kept as the
    // fallback (FrameLayout.ProbeParityShiftMatchesDivide pins the
    // two agree).
    Addr block = blockShift_ >= 0
                     ? addr >> static_cast<unsigned>(blockShift_)
                     : addr / config_.frame.blockBytes;
    return (block % 2 == 0) ? SlotType::ProbeEven : SlotType::ProbeOdd;
}

inline bool
SlotHandle::canInsert(Addr addr) const
{
    if (occupied())
        return false;
    if (freedHere_ && ring_.config_.antiStarvation)
        return false;
    SlotType t = ring_.types_[slot_];
    if (t == SlotType::Block)
        return true;
    return ring_.probeTypeFor(addr) == t;
}

} // namespace ringsim::ring

#endif // RINGSIM_RING_NETWORK_HPP
