/**
 * @file
 * Cycle-level model of the unidirectional slotted ring.
 *
 * The ring is a circular pipeline of totalStages() latch stages whose
 * contents advance one stage per ring clock. The slot pattern (frames
 * of even-probe / odd-probe / block slots) is fixed; rather than
 * copying latch contents we rotate a read index, and we invoke a
 * node's RingClient exactly when a slot *header* stage reaches that
 * node's position. Protocol controllers implement RingClient and use
 * the SlotHandle to snoop, remove, or insert messages.
 *
 * Access-control rules enforced here (Sections 2.0 and 5.0):
 *  - a message may only be inserted into an empty slot whose type
 *    matches (probe parity must match the block address);
 *  - anti-starvation: a node may not reuse a slot in the same visit in
 *    which it removed a message from it.
 *
 * The steady-state tick is schedule-driven (DESIGN.md section 11): a
 * visitation table precomputed per rotation offset replaces the
 * per-node modulo scan, nodes that opted in via enableIdleSkip() are
 * only visited when the arriving slot is occupied or the node flagged
 * pending work via notifyPending(), and a fully quiescent ring
 * fast-forwards across idle cycles in O(1). The original scan loop is
 * retained behind RingConfig::referenceTickPath and the two are held
 * byte-identical by tests/ring/golden_equivalence_test.cpp.
 */

#ifndef RINGSIM_RING_NETWORK_HPP
#define RINGSIM_RING_NETWORK_HPP

#include <cstdint>
#include <vector>

#include "ring/config.hpp"
#include "sim/kernel.hpp"
#include "stats/stats.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace ringsim::fault {
class FaultInjector;
} // namespace ringsim::fault

namespace ringsim::cache {
class InvariantMonitor;
} // namespace ringsim::cache

namespace ringsim::ring {

/** Destination value meaning "snooped by everyone" (broadcast probes). */
inline constexpr NodeId broadcastNode = invalidNode - 1;

/** A message occupying one slot. */
struct RingMessage
{
    NodeId src = invalidNode;  //!< inserting node
    NodeId dst = invalidNode;  //!< destination, or broadcastNode
    Addr addr = 0;             //!< block base address
    std::uint32_t kind = 0;    //!< protocol-defined opcode
    std::uint64_t payload = 0; //!< protocol-defined extra field
};

class SlotRing;

/**
 * A node's view of the slot whose header just reached it. Valid only
 * for the duration of the RingClient::onSlot call.
 */
class SlotHandle
{
  public:
    /** Type of the visiting slot. */
    SlotType type() const;

    /** True if the slot carries a message. */
    bool occupied() const;

    /**
     * True if the carried message's payload was corrupted by fault
     * injection (detected via its CRC; the header survives).
     */
    bool corrupted() const;

    /** The carried message; panics when empty. */
    const RingMessage &message() const;

    /**
     * Take the message out of the slot, freeing it. Only meaningful
     * for the destination (or the source, for self-removed probes);
     * the protocol is responsible for honoring that.
     */
    RingMessage remove();

    /**
     * True if insert() would succeed: the slot is empty, was not freed
     * by this node in this visit, and @p addr has the parity this slot
     * serves (always true for block slots).
     */
    bool canInsert(Addr addr) const;

    /** Place @p msg into the slot; panics unless canInsert(msg.addr). */
    void insert(const RingMessage &msg);

    /** The node being visited. */
    NodeId node() const { return node_; }

  private:
    friend class SlotRing;

    SlotHandle(SlotRing &ring_owner, unsigned slot_idx, NodeId node_id)
        : ring_(ring_owner), slot_(slot_idx), node_(node_id)
    {}

    SlotRing &ring_;
    unsigned slot_;
    NodeId node_;
    bool freedHere_ = false;
};

/** Interface implemented by each node's protocol controller. */
class RingClient
{
  public:
    virtual ~RingClient() = default;

    /** A slot header reached this node's interface. */
    virtual void onSlot(SlotHandle &slot) = 0;
};

/**
 * The slotted ring proper: owns the slots, advances them every clock,
 * and dispatches slot headers to the registered clients.
 */
class SlotRing
{
  public:
    /**
     * @param kernel event kernel driving the simulation.
     * @param config ring geometry and clocking (validated here).
     */
    SlotRing(sim::Kernel &kernel, const RingConfig &config);

    /** Attach the protocol controller for node @p n (required). */
    void setClient(NodeId n, RingClient &client);

    /**
     * Declare that node @p n's client is a pure reactor: its onSlot()
     * has no effect when the slot is empty and the node has no pending
     * work (it neither mutates state nor gathers statistics on such
     * visits). The ring then skips those calls, and once every node
     * has opted in it may fast-forward across fully idle stretches.
     *
     * A client that opts in MUST call notifyPending()/clearPending()
     * as work to insert appears and drains; otherwise it would never
     * be offered an empty slot. setClient() revokes the opt-in for
     * that node (the new client has not promised anything).
     */
    void enableIdleSkip(NodeId n);

    /**
     * Node @p n has work it wants to put on the ring: visit it on
     * every slot (so it can be offered empty ones) until
     * clearPending(). Idempotent; meaningful only after
     * enableIdleSkip(n).
     */
    void notifyPending(NodeId n);

    /** Node @p n no longer has anything to insert. Idempotent. */
    void clearPending(NodeId n);

    /**
     * Attach a fault injector (null detaches). Borrowed; must outlive
     * the ring. With no injector the ring is the paper's ideal ring.
     */
    void setFaultInjector(fault::FaultInjector *injector) {
        injector_ = injector;
    }

    /**
     * Attach an invariant monitor (null detaches). Borrowed. When set,
     * the ring reports messages that overrun one full traversal
     * without being removed by their destination.
     */
    void setMonitor(cache::InvariantMonitor *monitor) {
        monitor_ = monitor;
    }

    /** Begin rotating at time @p start_at. */
    void start(Tick start_at = 0);

    /** Stop rotating (removes the pending tick). */
    void stop();

    /** The ring's configuration. */
    const RingConfig &config() const { return config_; }

    /** Time for the non-header stages of a slot to drain at a node. */
    Tick slotTailTime(SlotType t) const {
        return static_cast<Tick>(config_.frame.slotStages(t) - 1) *
               config_.clockPeriod;
    }

    /** Ring cycles elapsed. */
    Count cycles() const { return cycles_; }

    /** Messages inserted so far, by slot type (0=even,1=odd,2=block). */
    Count inserted(SlotType t) const;

    /** Messages removed so far, by slot type. */
    Count removed(SlotType t) const;

    /** Average occupancy (0..1) of slots of type @p t so far. */
    double occupancy(SlotType t) const;

    /** Average occupancy of all slots (the paper's ring utilization). */
    double totalOccupancy() const;

    /** Slots currently occupied (for tests). */
    unsigned occupiedNow() const;

    /** Which parity probe slot serves @p addr. */
    SlotType probeTypeFor(Addr addr) const;

    /**
     * Zero the occupancy/throughput statistics. Used at the end of the
     * warmup window so reported figures cover only the measured phase.
     *
     * Warm-up-reset semantics — what is and is not cleared:
     *  - cleared: cycles_ (the denominator of every occupancy figure),
     *    the per-type occupancy integrals, and the inserted/removed
     *    message counts. After a mid-run reset, occupancy(t) is the
     *    average over post-reset cycles only.
     *  - untouched: slots in flight (messages keep circulating and the
     *    occupancy integral immediately re-accrues from the live
     *    occupied counts), rot_ (physical pipeline position — resetting
     *    it would teleport the slot pattern), and rotations_ (feeds the
     *    one-traversal audit of messages inserted before the reset).
     *
     * Pinned by RingNetwork.ResetStatsMidRunOccupancy.
     */
    void resetStats();

  private:
    friend class SlotHandle;

    struct Slot
    {
        SlotType type;
        bool occupied = false;
        bool corrupt = false;
        RingMessage msg;
        /** Absolute rotation count at insertion (traversal audit). */
        Count insertedAtRot = 0;
        NodeId insertedBy = invalidNode;
    };

    /** One (node, slot) dispatch in the precomputed schedule. */
    struct Visit
    {
        NodeId node;
        std::uint32_t slot;
    };

    void tick(Count cycle);
    void referenceTick();
    void scheduledTick();
    void injectFaults(Count cycle);

    /**
     * From a fully quiescent tick (no occupied slot, no pending node,
     * every node tracked, no injector), jump the ticker, rot_, cycles_
     * and rotations_ across the idle gap up to — but never onto — the
     * next foreign kernel event, in O(1). The occupancy integrals need
     * no adjustment: every maintained count is zero across the gap.
     */
    void maybeFastForward();

    static unsigned typeIndex(SlotType t) {
        return static_cast<unsigned>(t);
    }

    sim::Kernel &kernel_;
    RingConfig config_;
    sim::Ticker ticker_;

    std::vector<Slot> slots_;
    /** headerSlot_[stage offset] = slot index whose header sits there,
     *  or -1 for a non-header stage. */
    std::vector<int> headerSlot_;
    /** nodeAtPos_[stage] = node anchored at that stage, or invalid. */
    std::vector<NodeId> nodePos_;
    std::vector<RingClient *> clients_;

    /**
     * Visitation schedule: visits_[visitHead_[r] .. visitHead_[r+1])
     * are the (node, slot) pairs whose header reaches the node at
     * rotation offset r, in ascending node order — the same dispatch
     * order the reference scan produces.
     */
    std::vector<Visit> visits_;
    std::vector<std::uint32_t> visitHead_;

    /** tracked_[n]: node n opted into idle skipping (enableIdleSkip). */
    std::vector<std::uint8_t> tracked_;
    /** pending_[n]: tracked node n wants to insert (notifyPending). */
    std::vector<std::uint8_t> pending_;
    unsigned trackedCount_ = 0;
    unsigned pendingCount_ = 0;

    fault::FaultInjector *injector_ = nullptr;
    cache::InvariantMonitor *monitor_ = nullptr;

    Count cycles_ = 0;
    /** Current pattern rotation (== cycle % stages with no stalls). */
    unsigned rot_ = 0;
    /** Absolute rotations performed (monotone; stalls pause it). */
    Count rotations_ = 0;
    /** Remaining cycles of an injected stall. */
    unsigned stallRemaining_ = 0;
    unsigned occupiedCount_[3] = {0, 0, 0};
    std::uint64_t occupancyIntegral_[3] = {0, 0, 0};
    Count inserted_[3] = {0, 0, 0};
    Count removed_[3] = {0, 0, 0};
};

// SlotHandle accessors are on the per-slot hot path of every protocol
// engine; defining them here (after SlotRing is complete) lets the
// compiler fold them into the onSlot bodies instead of paying a call
// per query.

inline SlotType
SlotHandle::type() const
{
    return ring_.slots_[slot_].type;
}

inline bool
SlotHandle::occupied() const
{
    return ring_.slots_[slot_].occupied;
}

inline bool
SlotHandle::corrupted() const
{
    const SlotRing::Slot &s = ring_.slots_[slot_];
    return s.occupied && s.corrupt;
}

inline const RingMessage &
SlotHandle::message() const
{
    const SlotRing::Slot &s = ring_.slots_[slot_];
    if (!s.occupied)
        panic("message() on an empty slot");
    return s.msg;
}

inline SlotType
SlotRing::probeTypeFor(Addr addr) const
{
    Addr block = addr / config_.frame.blockBytes;
    return (block % 2 == 0) ? SlotType::ProbeEven : SlotType::ProbeOdd;
}

inline bool
SlotHandle::canInsert(Addr addr) const
{
    const SlotRing::Slot &s = ring_.slots_[slot_];
    if (s.occupied)
        return false;
    if (freedHere_ && ring_.config_.antiStarvation)
        return false;
    if (s.type == SlotType::Block)
        return true;
    return ring_.probeTypeFor(addr) == s.type;
}

} // namespace ringsim::ring

#endif // RINGSIM_RING_NETWORK_HPP
