/**
 * @file
 * Cycle-level model of the unidirectional slotted ring.
 *
 * The ring is a circular pipeline of totalStages() latch stages whose
 * contents advance one stage per ring clock. The slot pattern (frames
 * of even-probe / odd-probe / block slots) is fixed; rather than
 * copying latch contents we rotate a read index, and we invoke a
 * node's RingClient exactly when a slot *header* stage reaches that
 * node's position. Protocol controllers implement RingClient and use
 * the SlotHandle to snoop, remove, or insert messages.
 *
 * Access-control rules enforced here (Sections 2.0 and 5.0):
 *  - a message may only be inserted into an empty slot whose type
 *    matches (probe parity must match the block address);
 *  - anti-starvation: a node may not reuse a slot in the same visit in
 *    which it removed a message from it.
 */

#ifndef RINGSIM_RING_NETWORK_HPP
#define RINGSIM_RING_NETWORK_HPP

#include <cstdint>
#include <vector>

#include "ring/config.hpp"
#include "sim/kernel.hpp"
#include "stats/stats.hpp"
#include "util/units.hpp"

namespace ringsim::fault {
class FaultInjector;
} // namespace ringsim::fault

namespace ringsim::cache {
class InvariantMonitor;
} // namespace ringsim::cache

namespace ringsim::ring {

/** Destination value meaning "snooped by everyone" (broadcast probes). */
inline constexpr NodeId broadcastNode = invalidNode - 1;

/** A message occupying one slot. */
struct RingMessage
{
    NodeId src = invalidNode;  //!< inserting node
    NodeId dst = invalidNode;  //!< destination, or broadcastNode
    Addr addr = 0;             //!< block base address
    std::uint32_t kind = 0;    //!< protocol-defined opcode
    std::uint64_t payload = 0; //!< protocol-defined extra field
};

class SlotRing;

/**
 * A node's view of the slot whose header just reached it. Valid only
 * for the duration of the RingClient::onSlot call.
 */
class SlotHandle
{
  public:
    /** Type of the visiting slot. */
    SlotType type() const;

    /** True if the slot carries a message. */
    bool occupied() const;

    /**
     * True if the carried message's payload was corrupted by fault
     * injection (detected via its CRC; the header survives).
     */
    bool corrupted() const;

    /** The carried message; panics when empty. */
    const RingMessage &message() const;

    /**
     * Take the message out of the slot, freeing it. Only meaningful
     * for the destination (or the source, for self-removed probes);
     * the protocol is responsible for honoring that.
     */
    RingMessage remove();

    /**
     * True if insert() would succeed: the slot is empty, was not freed
     * by this node in this visit, and @p addr has the parity this slot
     * serves (always true for block slots).
     */
    bool canInsert(Addr addr) const;

    /** Place @p msg into the slot; panics unless canInsert(msg.addr). */
    void insert(const RingMessage &msg);

    /** The node being visited. */
    NodeId node() const { return node_; }

  private:
    friend class SlotRing;

    SlotHandle(SlotRing &ring_owner, unsigned slot_idx, NodeId node_id)
        : ring_(ring_owner), slot_(slot_idx), node_(node_id)
    {}

    SlotRing &ring_;
    unsigned slot_;
    NodeId node_;
    bool freedHere_ = false;
};

/** Interface implemented by each node's protocol controller. */
class RingClient
{
  public:
    virtual ~RingClient() = default;

    /** A slot header reached this node's interface. */
    virtual void onSlot(SlotHandle &slot) = 0;
};

/**
 * The slotted ring proper: owns the slots, advances them every clock,
 * and dispatches slot headers to the registered clients.
 */
class SlotRing
{
  public:
    /**
     * @param kernel event kernel driving the simulation.
     * @param config ring geometry and clocking (validated here).
     */
    SlotRing(sim::Kernel &kernel, const RingConfig &config);

    /** Attach the protocol controller for node @p n (required). */
    void setClient(NodeId n, RingClient &client);

    /**
     * Attach a fault injector (null detaches). Borrowed; must outlive
     * the ring. With no injector the ring is the paper's ideal ring.
     */
    void setFaultInjector(fault::FaultInjector *injector) {
        injector_ = injector;
    }

    /**
     * Attach an invariant monitor (null detaches). Borrowed. When set,
     * the ring reports messages that overrun one full traversal
     * without being removed by their destination.
     */
    void setMonitor(cache::InvariantMonitor *monitor) {
        monitor_ = monitor;
    }

    /** Begin rotating at time @p start_at. */
    void start(Tick start_at = 0);

    /** Stop rotating (removes the pending tick). */
    void stop();

    /** The ring's configuration. */
    const RingConfig &config() const { return config_; }

    /** Time for the non-header stages of a slot to drain at a node. */
    Tick slotTailTime(SlotType t) const {
        return static_cast<Tick>(config_.frame.slotStages(t) - 1) *
               config_.clockPeriod;
    }

    /** Ring cycles elapsed. */
    Count cycles() const { return cycles_; }

    /** Messages inserted so far, by slot type (0=even,1=odd,2=block). */
    Count inserted(SlotType t) const;

    /** Messages removed so far, by slot type. */
    Count removed(SlotType t) const;

    /** Average occupancy (0..1) of slots of type @p t so far. */
    double occupancy(SlotType t) const;

    /** Average occupancy of all slots (the paper's ring utilization). */
    double totalOccupancy() const;

    /** Slots currently occupied (for tests). */
    unsigned occupiedNow() const;

    /** Which parity probe slot serves @p addr. */
    SlotType probeTypeFor(Addr addr) const;

    /**
     * Zero the occupancy/throughput statistics (slots in flight are
     * untouched). Used at the end of the warmup window.
     */
    void resetStats();

  private:
    friend class SlotHandle;

    struct Slot
    {
        SlotType type;
        bool occupied = false;
        bool corrupt = false;
        RingMessage msg;
        /** Absolute rotation count at insertion (traversal audit). */
        Count insertedAtRot = 0;
        NodeId insertedBy = invalidNode;
    };

    void tick(Count cycle);
    void injectFaults(Count cycle);

    static unsigned typeIndex(SlotType t) {
        return static_cast<unsigned>(t);
    }

    sim::Kernel &kernel_;
    RingConfig config_;
    sim::Ticker ticker_;

    std::vector<Slot> slots_;
    /** headerSlot_[stage offset] = slot index whose header sits there,
     *  or -1 for a non-header stage. */
    std::vector<int> headerSlot_;
    /** nodeAtPos_[stage] = node anchored at that stage, or invalid. */
    std::vector<NodeId> nodePos_;
    std::vector<RingClient *> clients_;

    fault::FaultInjector *injector_ = nullptr;
    cache::InvariantMonitor *monitor_ = nullptr;

    Count cycles_ = 0;
    /** Current pattern rotation (== cycle % stages with no stalls). */
    unsigned rot_ = 0;
    /** Absolute rotations performed (monotone; stalls pause it). */
    Count rotations_ = 0;
    /** Remaining cycles of an injected stall. */
    unsigned stallRemaining_ = 0;
    unsigned occupiedCount_[3] = {0, 0, 0};
    std::uint64_t occupancyIntegral_[3] = {0, 0, 0};
    Count inserted_[3] = {0, 0, 0};
    Count removed_[3] = {0, 0, 0};
};

} // namespace ringsim::ring

#endif // RINGSIM_RING_NETWORK_HPP
