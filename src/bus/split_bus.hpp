/**
 * @file
 * Split-transaction shared bus timing model.
 *
 * Section 4.3: the comparison target is a split-transaction version of
 * FutureBus+ — 64-bit wide, clocked at 50 or 100 MHz, with a 3-state
 * write-invalidate snooping protocol and memory partitioned among the
 * nodes. A remote miss occupies the bus for a 2-cycle request tenure
 * and a 4-cycle response tenure (header + 16 B / 64-bit = 2 data
 * cycles + ack): six bus cycles minimum, excluding arbitration and the
 * memory fetch, matching the paper's check value.
 *
 * The bus is a single FCFS resource; tenures are granted back-to-back
 * on cycle boundaries with a one-cycle (overlapped) arbitration delay.
 */

#ifndef RINGSIM_BUS_SPLIT_BUS_HPP
#define RINGSIM_BUS_SPLIT_BUS_HPP

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/kernel.hpp"
#include "stats/stats.hpp"
#include "util/units.hpp"

namespace ringsim::bus {

/** Static description of a split-transaction bus. */
struct BusConfig
{
    /** Nodes attached to the bus. */
    unsigned nodes = 8;

    /** Bus clock period in ticks; 20000 ps = 50 MHz. */
    Tick clockPeriod = 20000;

    /** Data path width in bits. */
    unsigned widthBits = 64;

    /** Cache block size moved by a response, in bytes. */
    size_t blockBytes = 16;

    /** Cycles of a request (address) tenure. */
    unsigned requestCycles = 2;

    /** Non-data cycles of a response tenure (header + ack). */
    unsigned responseOverheadCycles = 2;

    /** Arbitration latency added before a grant (overlapped). */
    unsigned arbitrationCycles = 1;

    /** Data cycles needed to move one block. */
    unsigned dataCycles() const {
        size_t bytes_per_cycle = widthBits / 8;
        return static_cast<unsigned>(
            (blockBytes + bytes_per_cycle - 1) / bytes_per_cycle);
    }

    /** Total cycles of a block response tenure. */
    unsigned responseCycles() const {
        return responseOverheadCycles + dataCycles();
    }

    /** Minimum bus cycles for a remote miss (request + response). */
    unsigned missCycles() const {
        return requestCycles + responseCycles();
    }

    /** Validate parameters; fatal() on misconfiguration. */
    void validate() const;
};

/**
 * The bus resource. Clients submit tenures; the bus grants them FCFS,
 * aligned to clock edges, and reports start and end times.
 */
class SplitBus
{
  public:
    /** Called when a tenure is granted; args are (start, end) ticks. */
    using Grant = std::function<void(Tick start, Tick end)>;

    SplitBus(sim::Kernel &kernel, const BusConfig &config);

    /** The bus configuration. */
    const BusConfig &config() const { return config_; }

    /**
     * Request a tenure of @p cycles bus cycles for node @p node.
     * @p on_complete fires when the tenure's last cycle finishes.
     */
    void request(NodeId node, unsigned cycles, Grant on_complete);

    /** Total ticks the bus has spent transferring. */
    Tick busyTime() const { return busyTime_; }

    /** Bus utilization so far: busy time / elapsed time. */
    double utilization() const;

    /** Tenures granted so far. */
    Count tenures() const { return tenures_; }

    /** Transactions currently queued (incl. the one in flight). */
    size_t queueDepth() const { return queue_.size() + (active_ ? 1 : 0); }

    /** Mean queueing delay (request to grant) in ticks. */
    double meanQueueDelay() const { return queueDelay_.mean(); }

    /** Zero the busy-time/tenure statistics (end of warmup). */
    void resetStats();

  private:
    struct Pending
    {
        NodeId node;
        unsigned cycles;
        Grant onComplete;
        Tick submitted;
    };

    /** Round @p t up to the next bus clock edge. */
    Tick alignUp(Tick t) const;

    /** Start the next queued tenure if the bus is idle. */
    void tryStart();

    sim::Kernel &kernel_;
    BusConfig config_;
    std::deque<Pending> queue_;
    bool active_ = false;
    Tick freeAt_ = 0;
    Tick busyTime_ = 0;
    Tick statsStart_ = 0;
    Count tenures_ = 0;
    stats::Sampler queueDelay_;
};

} // namespace ringsim::bus

#endif // RINGSIM_BUS_SPLIT_BUS_HPP
