#include "split_bus.hpp"

#include "util/logging.hpp"

namespace ringsim::bus {

void
BusConfig::validate() const
{
    if (nodes == 0)
        fatal("bus must have at least one node");
    if (clockPeriod == 0)
        fatal("bus clock period must be nonzero");
    if (widthBits == 0 || widthBits % 8 != 0)
        fatal("bus width %u bits is not a multiple of 8", widthBits);
    if (blockBytes == 0)
        fatal("bus block size must be nonzero");
    if (requestCycles == 0)
        fatal("bus request tenure must be nonzero");
}

SplitBus::SplitBus(sim::Kernel &kernel, const BusConfig &config)
    : kernel_(kernel), config_(config)
{
    config_.validate();
}

Tick
SplitBus::alignUp(Tick t) const
{
    Tick p = config_.clockPeriod;
    return ((t + p - 1) / p) * p;
}

void
SplitBus::request(NodeId node, unsigned cycles, Grant on_complete)
{
    if (node >= config_.nodes)
        panic("bus request from out-of-range node %u", node);
    if (cycles == 0)
        panic("bus request for zero cycles");
    queue_.push_back(
        Pending{node, cycles, std::move(on_complete), kernel_.now()});
    tryStart();
}

void
SplitBus::tryStart()
{
    if (active_ || queue_.empty())
        return;

    Pending txn = std::move(queue_.front());
    queue_.pop_front();
    active_ = true;

    // Arbitration overlaps with the previous transfer (FutureBus+
    // style): it runs from the submission time, so a queued requester
    // that has been waiting longer than the arbitration delay is
    // granted the instant the bus frees up.
    Tick arb = static_cast<Tick>(config_.arbitrationCycles) *
               config_.clockPeriod;
    Tick start = alignUp(std::max(txn.submitted + arb, freeAt_));
    Tick length = static_cast<Tick>(txn.cycles) * config_.clockPeriod;
    Tick end = start + length;

    freeAt_ = end;
    busyTime_ += length;
    ++tenures_;
    queueDelay_.add(static_cast<double>(start - txn.submitted));

    kernel_.post(end, [this, txn = std::move(txn), start, end]() {
        active_ = false;
        txn.onComplete(start, end);
        tryStart();
    });
}

double
SplitBus::utilization() const
{
    Tick now = kernel_.now();
    if (now <= statsStart_)
        return 0.0;
    return static_cast<double>(busyTime_) /
           static_cast<double>(now - statsStart_);
}

void
SplitBus::resetStats()
{
    busyTime_ = 0;
    tenures_ = 0;
    queueDelay_.reset();
    statsStart_ = kernel_.now();
}

} // namespace ringsim::bus
