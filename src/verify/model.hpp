/**
 * @file
 * Static protocol model checker over the shared guarded-action tables.
 *
 * checkProtocol() exhaustively explores a small configuration (2-4
 * nodes, 1-2 blocks) of one ring protocol and checks the paper's
 * structural claims against the SAME transition declarations the
 * production controllers execute (core/protocol_table.hpp):
 *
 *  1. Functional closure — BFS over every reachable global block state
 *     under applyAccess()/applyEvict(), checking SWMR (single writer,
 *     multiple readers), directory/cache agreement, and stale-read
 *     freedom in every reachable state.
 *  2. Plan audits — for every reachable state, requester, operation
 *     and home placement, the snoop/directory plan is audited: snoop
 *     transactions take exactly one ring traversal, directory
 *     transactions at most two, a dirty block is always supplied by
 *     its owner, and every write to a shared block carries its
 *     invalidation (probe broadcast or multicast). Leg accounting must
 *     balance, so transactions can neither hang nor double-complete.
 *  3. Retry automaton — with faults enabled, the NACK/watchdog retry
 *     schedule is explored per transaction (attempt x pending legs x
 *     superseded legs still in flight): stale-attempt events must be
 *     ignored, every path must terminate (deadlock freedom), and a
 *     strictly decreasing measure bounds retries (livelock freedom).
 *  4. Product space — optionally, the genuine interleaving of several
 *     concurrent transactions over the functional state, re-checking
 *     the state invariants after every step and the per-transaction
 *     progress measure on every transition.
 *
 * A Mutation seeds one deliberately broken transition; the self-tests
 * prove each one is caught.
 */

#ifndef RINGSIM_VERIFY_MODEL_HPP
#define RINGSIM_VERIFY_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol_table.hpp"
#include "util/units.hpp"

namespace ringsim::verify {

/** Which timed protocol's tables to check. */
enum class Protocol { Snoop, Directory };

/** Printable protocol name. */
const char *protocolName(Protocol p);

/** One exhaustive-check job. */
struct ModelConfig
{
    Protocol protocol = Protocol::Snoop;
    unsigned nodes = 2;  //!< ring size (2..maxTableNodes)
    unsigned blocks = 1; //!< distinct blocks modeled (1..2)
    /** Concurrent transactions in the product space (1..2). */
    unsigned inflight = 2;
    /** Model the NACK/watchdog retry schedule. */
    bool faults = false;
    /** Retry budget when @ref faults (mirrors FaultConfig::maxRetries,
     *  kept small to bound the automaton). */
    unsigned maxAttempts = 3;
    /** Run the full product-space interleaving (phase 4). */
    bool fullInterleaving = true;
    /** Deliberately broken transition to seed (tests). */
    core::ptable::Mutation mutation = core::ptable::Mutation::None;

    /** Validate ranges; returns a message naming the bad field. */
    [[nodiscard]] std::string check() const;
};

/** What a check can find wrong. */
enum class Defect {
    MultipleWriters,   //!< SWMR broken: WE copy alongside another copy
    StaleRead,         //!< a copy read while a remote cache was dirty
    DirectoryMismatch, //!< dirty bit/owner/presence vs cache lines
    TraversalOverrun,  //!< snoop > 1 or directory > 2 ring traversals
    LostInvalidation,  //!< write to a shared block with no invalidation
    StaleSupplier,     //!< dirty block served from stale home memory
    DoubleCompletion,  //!< a superseded attempt completed a transaction
    Deadlock,          //!< a reachable state with no way forward
    Livelock,          //!< retry/leg measure failed to decrease
};

/** Printable defect name. */
const char *defectName(Defect d);

/** One concrete counterexample. */
struct Finding
{
    Defect kind = Defect::Deadlock;
    std::string detail; //!< human-readable state/transition context
};

/** Exploration statistics and verdict. */
struct ModelReport
{
    ModelConfig config;

    std::uint64_t functionalStates = 0;
    std::uint64_t functionalTransitions = 0;
    std::uint64_t plansAudited = 0;
    std::uint64_t automatonStates = 0;
    std::uint64_t productStates = 0;
    std::uint64_t productTransitions = 0;
    /** Worst ring-traversal count any audited plan needs. */
    unsigned maxTraversals = 0;

    std::uint64_t violationsTotal = 0;
    /** First few findings (capped; violationsTotal has the count). */
    std::vector<Finding> findings;

    [[nodiscard]] bool clean() const { return violationsTotal == 0; }

    /** One-line result, e.g. for the CLI table. */
    std::string summary() const;
};

/** Exhaustively check one configuration. */
[[nodiscard]] ModelReport checkProtocol(const ModelConfig &config);

} // namespace ringsim::verify

#endif // RINGSIM_VERIFY_MODEL_HPP
