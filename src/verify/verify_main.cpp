/**
 * @file
 * ringsim_verify: exhaustive protocol model checker CLI.
 *
 * With no arguments, checks both ring protocols across the default
 * matrix (2/3/4 nodes x 1/2 blocks, faults off and on), then explores
 * the experiment-service job lifecycle across its own small matrix
 * (workers x depth), and prints one summary line per configuration.
 * Exit status is 0 only when every configuration is clean, so the
 * build/CI can gate on it.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "verify/model.hpp"
#include "verify/service_model.hpp"

namespace {

using namespace ringsim;
using verify::ModelConfig;
using verify::ModelReport;

void
usage()
{
    std::printf(
        "usage: ringsim_verify [options]\n"
        "  --protocol=snoop|directory   check one protocol only\n"
        "  --nodes=N                    ring size (2..%u)\n",
        core::ptable::maxTableNodes);
    std::printf(
        "  --blocks=B                   blocks modeled (1..2)\n"
        "  --inflight=K                 concurrent transactions "
        "(1..3)\n"
        "  --faults=on|off              model the retry schedule\n"
        "  --full=on|off                product-space interleaving\n"
        "  --mutate=NAME                seed a broken transition\n"
        "  --list-mutations             print mutation names\n"
        "  --service                    service-lifecycle group only\n"
        "  --service-mutate=NAME        seed a broken service "
        "transition\n"
        "  --list-service-mutations     print service mutation names\n"
        "  --json                       machine-readable report\n"
        "With no --nodes/--protocol, runs the full default matrix\n"
        "(both protocol and service-lifecycle groups).\n");
}

/** Whether the product space is cheap enough for this point of the
 *  default matrix (single configs always honor --full). */
bool
defaultFullInterleaving(unsigned nodes, bool faults)
{
    return faults ? nodes <= 2 : nodes <= 3;
}

void
printJson(const std::vector<ModelReport> &reports,
          const std::vector<verify::ServiceModelReport> &service)
{
    std::printf("{\"protocol\": [\n");
    for (size_t i = 0; i < reports.size(); ++i) {
        const ModelReport &r = reports[i];
        std::printf(
            "  {\"protocol\": \"%s\", \"nodes\": %u, \"blocks\": %u,"
            " \"faults\": %s, \"full\": %s, \"mutation\": \"%s\",\n"
            "   \"functionalStates\": %llu, "
            "\"functionalTransitions\": %llu,"
            " \"plansAudited\": %llu, \"automatonStates\": %llu,\n"
            "   \"productStates\": %llu, \"productTransitions\": "
            "%llu, \"maxTraversals\": %u, \"violations\": %llu}%s\n",
            verify::protocolName(r.config.protocol), r.config.nodes,
            r.config.blocks, r.config.faults ? "true" : "false",
            r.config.fullInterleaving ? "true" : "false",
            core::ptable::mutationName(r.config.mutation),
            static_cast<unsigned long long>(r.functionalStates),
            static_cast<unsigned long long>(r.functionalTransitions),
            static_cast<unsigned long long>(r.plansAudited),
            static_cast<unsigned long long>(r.automatonStates),
            static_cast<unsigned long long>(r.productStates),
            static_cast<unsigned long long>(r.productTransitions),
            r.maxTraversals,
            static_cast<unsigned long long>(r.violationsTotal),
            i + 1 < reports.size() ? "," : "");
    }
    std::printf("], \"service\": [\n");
    for (size_t i = 0; i < service.size(); ++i) {
        const verify::ServiceModelReport &r = service[i];
        std::printf(
            "  {\"jobs\": %u, \"clients\": %u, \"workers\": %u, "
            "\"depth\": %u, \"mutation\": \"%s\",\n"
            "   \"states\": %llu, \"transitions\": %llu, "
            "\"quiescent\": %llu, \"truncated\": %s, "
            "\"violations\": %llu}%s\n",
            r.config.jobs, r.config.clients, r.config.workers,
            r.config.depth,
            verify::serviceMutationName(r.config.mutation),
            static_cast<unsigned long long>(r.states),
            static_cast<unsigned long long>(r.transitions),
            static_cast<unsigned long long>(r.quiescentStates),
            r.truncated ? "true" : "false",
            static_cast<unsigned long long>(r.violationsTotal),
            i + 1 < service.size() ? "," : "");
    }
    std::printf("]}\n");
}

/** The default service-lifecycle matrix: every worker/depth shape the
 *  tiny model supports, all event classes enabled. */
std::vector<verify::ServiceModelConfig>
serviceMatrix(verify::ServiceMutation mutation)
{
    std::vector<verify::ServiceModelConfig> jobs;
    for (unsigned workers : {1u, 2u}) {
        for (unsigned depth : {1u, 2u, 3u}) {
            verify::ServiceModelConfig c;
            c.workers = workers;
            c.depth = depth;
            c.mutation = mutation;
            jobs.push_back(c);
        }
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool haveProtocol = false, haveNodes = false;
    bool haveFaults = false, haveFull = false;
    bool serviceOnly = false;
    verify::ServiceMutation serviceMutation =
        verify::ServiceMutation::None;
    ModelConfig base;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both --opt=value and --opt value.
        auto value = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix) - 1; // without the '='
            if (arg.compare(0, n + 1, prefix) == 0)
                return arg.c_str() + n + 1;
            if (arg.compare(0, n, prefix, n) == 0 &&
                arg.size() == n && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        }
        if (arg == "--json") {
            json = true;
            continue;
        }
        if (arg == "--list-mutations") {
            for (auto m : core::ptable::allMutations)
                std::printf("%s\n", core::ptable::mutationName(m));
            return 0;
        }
        if (arg == "--list-service-mutations") {
            for (auto m : verify::allServiceMutations)
                std::printf("%s\n", verify::serviceMutationName(m));
            return 0;
        }
        if (arg == "--service") {
            serviceOnly = true;
            continue;
        }
        if (const char *v = value("--service-mutate=")) {
            if (!verify::serviceMutationFromName(v,
                                                 &serviceMutation)) {
                std::fprintf(stderr,
                             "unknown service mutation \"%s\" "
                             "(--list-service-mutations)\n",
                             v);
                return 2;
            }
            serviceOnly = true;
            continue;
        }
        if (const char *v = value("--protocol=")) {
            if (std::strcmp(v, "snoop") == 0) {
                base.protocol = verify::Protocol::Snoop;
            } else if (std::strcmp(v, "directory") == 0) {
                base.protocol = verify::Protocol::Directory;
            } else {
                std::fprintf(stderr,
                             "unknown protocol \"%s\"\n", v);
                return 2;
            }
            haveProtocol = true;
            continue;
        }
        if (const char *v = value("--nodes=")) {
            base.nodes = static_cast<unsigned>(std::atoi(v));
            haveNodes = true;
            continue;
        }
        if (const char *v = value("--blocks=")) {
            base.blocks = static_cast<unsigned>(std::atoi(v));
            continue;
        }
        if (const char *v = value("--inflight=")) {
            base.inflight = static_cast<unsigned>(std::atoi(v));
            continue;
        }
        // --name, --name=on|off, or --name on|off (bare means on).
        auto onOff = [&](const char *name, bool *out, bool *have) {
            size_t n = std::strlen(name);
            if (arg.compare(0, n, name) == 0 && arg.size() > n &&
                arg[n] == '=') {
                *out = arg.compare(n + 1, std::string::npos,
                                   "on") == 0;
                *have = true;
                return true;
            }
            if (arg == name) {
                if (i + 1 < argc &&
                    (std::strcmp(argv[i + 1], "on") == 0 ||
                     std::strcmp(argv[i + 1], "off") == 0))
                    *out = std::strcmp(argv[++i], "on") == 0;
                else
                    *out = true;
                *have = true;
                return true;
            }
            return false;
        };
        if (onOff("--faults", &base.faults, &haveFaults))
            continue;
        if (onOff("--full", &base.fullInterleaving, &haveFull))
            continue;
        if (const char *v = value("--mutate=")) {
            if (!core::ptable::mutationFromName(v,
                                                &base.mutation)) {
                std::fprintf(stderr, "unknown mutation \"%s\" "
                                     "(--list-mutations)\n", v);
                return 2;
            }
            continue;
        }
        std::fprintf(stderr, "unknown option \"%s\"\n",
                     arg.c_str());
        usage();
        return 2;
    }

    std::vector<ModelConfig> jobs;
    if (serviceOnly) {
        // Service-lifecycle group only; no protocol configurations.
    } else if (haveProtocol || haveNodes) {
        ModelConfig c = base;
        std::string err = c.check();
        if (!err.empty()) {
            std::fprintf(stderr, "bad configuration: %s\n",
                         err.c_str());
            return 2;
        }
        jobs.push_back(c);
    } else {
        for (auto proto : {verify::Protocol::Snoop,
                           verify::Protocol::Directory}) {
            for (unsigned nodes : {2u, 3u, 4u}) {
                for (unsigned blocks : {1u, 2u}) {
                    for (bool faults : {false, true}) {
                        if (haveFaults && faults != base.faults)
                            continue;
                        ModelConfig c = base;
                        c.protocol = proto;
                        c.nodes = nodes;
                        c.blocks = blocks;
                        c.faults = faults;
                        if (!haveFull)
                            c.fullInterleaving =
                                defaultFullInterleaving(nodes,
                                                        faults);
                        jobs.push_back(c);
                    }
                }
            }
        }
    }

    // The service-lifecycle group runs in the default matrix and
    // whenever --service/--service-mutate asks for it; a single
    // protocol configuration (--protocol/--nodes) skips it.
    std::vector<verify::ServiceModelConfig> serviceJobs;
    if (serviceOnly || !(haveProtocol || haveNodes))
        serviceJobs = serviceMatrix(serviceMutation);

    std::vector<ModelReport> reports;
    std::uint64_t violations = 0;
    for (const ModelConfig &job : jobs) {
        ModelReport rep = verify::checkProtocol(job);
        violations += rep.violationsTotal;
        if (!json) {
            std::printf("%s\n", rep.summary().c_str());
            for (const verify::Finding &f : rep.findings)
                std::printf("    %s: %s\n",
                            verify::defectName(f.kind),
                            f.detail.c_str());
        }
        reports.push_back(std::move(rep));
    }

    std::vector<verify::ServiceModelReport> serviceReports;
    for (const verify::ServiceModelConfig &job : serviceJobs) {
        verify::ServiceModelReport rep =
            verify::checkServiceLifecycle(job);
        violations += rep.violationsTotal;
        if (rep.truncated)
            ++violations;
        if (!json) {
            std::printf("%s\n", rep.summary().c_str());
            for (const verify::ServiceFinding &f : rep.findings) {
                std::printf("    %s: %s\n",
                            verify::serviceDefectName(f.kind),
                            f.detail.c_str());
                for (const std::string &step : f.trace)
                    std::printf("        %s\n", step.c_str());
            }
        }
        serviceReports.push_back(std::move(rep));
    }

    if (json)
        printJson(reports, serviceReports);
    else
        std::printf("%zu configuration%s checked, %llu violation%s\n",
                    reports.size() + serviceReports.size(),
                    reports.size() + serviceReports.size() == 1
                        ? ""
                        : "s",
                    static_cast<unsigned long long>(violations),
                    violations == 1 ? "" : "s");
    return violations == 0 ? 0 : 1;
}
