#include "service_model.hpp"

#include <array>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "util/logging.hpp"

namespace ringsim::verify {

namespace {

constexpr unsigned kMaxJobs = 3;
constexpr unsigned kMaxClients = 2;
/** Duplicate submissions that may attach to one leader job. */
constexpr unsigned kMaxWaiters = 2;
constexpr std::uint64_t kStateCap = 2'000'000;
constexpr std::size_t kFindingCap = 4;

/** Lifecycle stage of one modeled job. */
enum class Stage : std::uint8_t {
    NotSubmitted,
    Shed,      //!< rejected at admission (answered immediately)
    Queued,    //!< admitted, waiting in its client FIFO
    Running,   //!< a pool thread is executing it
    Done,      //!< completed and answered
    TimedOut,  //!< abandoned by the watchdog (thread may live on)
    Cancelled, //!< cancel/deadline/disconnect (thread may live on)
};

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::NotSubmitted:
        return "not-submitted";
      case Stage::Shed:
        return "shed";
      case Stage::Queued:
        return "queued";
      case Stage::Running:
        return "running";
      case Stage::Done:
        return "done";
      case Stage::TimedOut:
        return "timed_out";
      case Stage::Cancelled:
        return "cancelled";
    }
    return "?";
}

/** One job's model state (mirrors ServiceCore's JobRecord plus the
 *  implicit facts the code keeps in counters and thread liveness). */
struct JobCell
{
    Stage stage = Stage::NotSubmitted;
    bool threadLive = false;   //!< a pool thread is executing it
    bool slotHeld = false;     //!< holds one admission slot
    bool cancelUsed = false;   //!< explicit cancel already explored
    bool deadlineUsed = false; //!< queued-deadline expiry explored
    bool degraded = false;     //!< degraded escalation attached
    std::uint8_t answers = 0;  //!< terminal answers rendered
    /** Single-flight state: duplicate submissions of this job's spec
     *  that coalesced onto it instead of executing. Waiters consume
     *  no admission slot; the leader's terminal answer must serve
     *  each exactly once. */
    std::uint8_t waiters = 0;       //!< currently blocked waiters
    std::uint8_t attached = 0;      //!< waiters ever attached
    std::uint8_t waiterAnswers = 0; //!< answers rendered to waiters
};

/** One global state of the modeled service. */
struct State
{
    std::array<JobCell, kMaxJobs> jobs{};
    /** Per-client pending FIFOs (job indices; cancelled ids stay). */
    std::array<std::vector<std::uint8_t>, kMaxClients> fifo;
    std::uint8_t rrNext = 0; //!< round-robin resume point
    std::uint8_t active = 0; //!< the code's queued+running counter
    std::array<bool, kMaxClients> disconnected{};

    std::string
    key() const
    {
        // Flat fixed buffer: 4 chars per job, '|', up to
        // (kMaxJobs + 1) per FIFO, rrNext, active, one per client.
        char buf[4 * kMaxJobs + 1 + (kMaxJobs + 1) * kMaxClients +
                 2 + kMaxClients];
        std::size_t i = 0;
        for (const JobCell &j : jobs) {
            buf[i++] = static_cast<char>(
                '0' + static_cast<unsigned>(j.stage));
            unsigned flags = (j.threadLive ? 1u : 0) |
                             (j.slotHeld ? 2u : 0) |
                             (j.cancelUsed ? 4u : 0) |
                             (j.deadlineUsed ? 8u : 0) |
                             (j.degraded ? 16u : 0);
            buf[i++] = static_cast<char>('a' + flags);
            buf[i++] = static_cast<char>('0' + j.answers);
            // waiters/attached/waiterAnswers packed base-5: each is
            // bounded by 2*kMaxWaiters = 4.
            unsigned flight = j.waiters * 25u + j.attached * 5u +
                              j.waiterAnswers;
            buf[i++] = static_cast<char>('!' + flight);
        }
        buf[i++] = '|';
        for (const auto &q : fifo) {
            for (std::uint8_t id : q)
                if (i < sizeof(buf))
                    buf[i++] = static_cast<char>('0' + id);
            if (i < sizeof(buf))
                buf[i++] = ',';
        }
        buf[i++] = static_cast<char>('0' + rrNext);
        buf[i++] = static_cast<char>('A' + active);
        for (bool d : disconnected)
            buf[i++] = d ? 'D' : '.';
        return std::string(buf, i);
    }
};

/** BFS bookkeeping: how a state was first reached. */
struct Prev
{
    std::string parentKey;
    std::string event;
};

struct Explorer
{
    const ServiceModelConfig &cfg;
    ServiceModelReport &report;
    /** cfg.jobs/cfg.clients clamped to the array bounds (validated
     *  upstream; the clamp lets the compiler see the range). */
    unsigned nJobs;
    unsigned nClients;
    std::unordered_map<std::string, Prev> visited;
    std::deque<State> frontier;

    unsigned
    clientOf(unsigned job) const
    {
        return job % nClients;
    }

    unsigned
    liveThreads(const State &s) const
    {
        unsigned n = 0;
        for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j)
            n += s.jobs[j].threadLive ? 1 : 0;
        return n;
    }

    unsigned
    slotsHeld(const State &s) const
    {
        unsigned n = 0;
        for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j)
            n += s.jobs[j].slotHeld ? 1 : 0;
        return n;
    }

    bool
    fifosEmpty(const State &s) const
    {
        for (unsigned c = 0; c < kMaxClients && c < nClients; ++c)
            if (!s.fifo[c].empty())
                return false;
        return true;
    }

    bool
    allSubmitted(const State &s) const
    {
        for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j)
            if (s.jobs[j].stage == Stage::NotSubmitted)
                return false;
        return true;
    }

    /** Mandatory work is drained: nothing left that must still run. */
    bool
    quiescent(const State &s) const
    {
        return allSubmitted(s) && fifosEmpty(s) &&
               liveThreads(s) == 0;
    }

    void
    fail(const State &s, const std::string &key, ServiceDefect kind,
         std::string detail)
    {
        ++report.violationsTotal;
        if (report.findings.size() >= kFindingCap)
            return;
        ServiceFinding f;
        f.kind = kind;
        f.detail = std::move(detail);
        // Walk the parent chain back to the initial state; the trace
        // reads forward once reversed.
        std::vector<std::string> steps;
        std::string at = key;
        for (;;) {
            auto it = visited.find(at);
            if (it == visited.end() || it->second.event.empty())
                break;
            steps.push_back(it->second.event);
            at = it->second.parentKey;
        }
        f.trace.reserve(steps.size());
        for (std::size_t i = steps.size(); i-- > 0;)
            f.trace.push_back(strprintf(
                "%zu. %s", steps.size() - i, steps[i].c_str()));
        (void)s;
        report.findings.push_back(std::move(f));
    }

    /** Check invariants of @p s; record findings against @p key. */
    void
    checkState(const State &s, const std::string &key)
    {
        if (s.active > cfg.depth)
            fail(s, key, ServiceDefect::SlotOverflow,
                 strprintf("active = %u exceeds queue depth %u",
                           s.active, cfg.depth));
        if (s.active != slotsHeld(s))
            fail(s, key, ServiceDefect::SlotDrift,
                 strprintf("active = %u but %u jobs hold a slot",
                           s.active, slotsHeld(s)));
        for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
            if (s.jobs[j].answers > 1)
                fail(s, key, ServiceDefect::DoubleAnswer,
                     strprintf("job %u answered %u times", j,
                               s.jobs[j].answers));
            if (s.jobs[j].waiterAnswers > s.jobs[j].attached)
                fail(s, key, ServiceDefect::DoubleAnswer,
                     strprintf("job %u rendered %u waiter answers "
                               "for %u attached waiters",
                               j, s.jobs[j].waiterAnswers,
                               s.jobs[j].attached));
        }
        if (!quiescent(s))
            return;
        ++report.quiescentStates;
        if (s.active != 0)
            fail(s, key, ServiceDefect::SlotLeak,
                 strprintf("quiescent with active = %u (slots never "
                           "released)",
                           s.active));
        for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
            const JobCell &cell = s.jobs[j];
            if (cell.stage == Stage::Queued ||
                cell.stage == Stage::Running)
                fail(s, key, ServiceDefect::StuckJob,
                     strprintf("quiescent with job %u still %s", j,
                               stageName(cell.stage)));
            bool admitted = cell.stage != Stage::NotSubmitted &&
                            cell.stage != Stage::Shed;
            if (admitted && cell.answers == 0)
                fail(s, key, ServiceDefect::LostJob,
                     strprintf("job %u reached %s but was never "
                               "answered",
                               j, stageName(cell.stage)));
            // Waiters hold no pool thread and no FIFO entry, so an
            // orphan is *exactly* a quiescent state that still has
            // one: a connection blocked forever on a finished
            // flight.
            if (cell.waiters != 0)
                fail(s, key, ServiceDefect::OrphanedWaiter,
                     strprintf("quiescent with %u waiter%s still "
                               "blocked on job %u (%s)",
                               cell.waiters,
                               cell.waiters == 1 ? "" : "s", j,
                               stageName(cell.stage)));
            else if (cell.waiterAnswers < cell.attached)
                fail(s, key, ServiceDefect::OrphanedWaiter,
                     strprintf("job %u attached %u waiters but "
                               "answered only %u",
                               j, cell.attached, cell.waiterAnswers));
        }
    }

    /** Enqueue @p next if unseen; always counts the transition. */
    void
    push(const State &from, State next, std::string event)
    {
        ++report.transitions;
        std::string k = next.key();
        if (visited.find(k) != visited.end())
            return;
        visited.emplace(k, Prev{from.key(), std::move(event)});
        checkState(next, k);
        frontier.push_back(std::move(next));
    }

    /**
     * Render one terminal answer for job @p j in @p s. Every terminal
     * transition — done, shed, cancelled, timed out — also answers
     * the job's attached waiters and retires its in-flight entry;
     * this is exactly why a dead leader cannot orphan its waiters in
     * the real ServiceCore/FleetCore (finishLocked answers before
     * anything can observe the terminal state).
     */
    void
    answer(State &s, unsigned j, Stage terminal) const
    {
        s.jobs[j].stage = terminal;
        ++s.jobs[j].answers;
        if (cfg.mutation == ServiceMutation::DropWaiterAnswer)
            return; // waiters stay blocked on the finished flight
        s.jobs[j].waiterAnswers = static_cast<std::uint8_t>(
            s.jobs[j].waiterAnswers + s.jobs[j].waiters);
        s.jobs[j].waiters = 0;
    }

    void
    expand(const State &s)
    {
        const ServiceMutation mut = cfg.mutation;

        // submit(j): shed at the bound, admit below it.
        for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
            if (s.jobs[j].stage != Stage::NotSubmitted)
                continue;
            unsigned c = clientOf(j);
            State n = s;
            if (s.active >= cfg.depth) {
                answer(n, j, Stage::Shed);
                if (mut == ServiceMutation::ShedLeaksSlot)
                    ++n.active;
                push(s, std::move(n),
                     strprintf("submit job %u (client c%u) -> shed, "
                               "answered overloaded (active %u/%u)",
                               j, c, s.active, cfg.depth));
            } else {
                n.jobs[j].stage = Stage::Queued;
                n.jobs[j].slotHeld = true;
                ++n.active;
                n.fifo[c].push_back(static_cast<std::uint8_t>(j));
                push(s, std::move(n),
                     strprintf("submit job %u (client c%u) -> "
                               "admitted, queued (active %u/%u)",
                               j, c, s.active + 1, cfg.depth));
            }
        }

        // dispatch: a free worker picks the round-robin next id. A
        // picked id whose job is no longer Queued is drained — the
        // task releases the admission slot it carries.
        if (!fifosEmpty(s) && liveThreads(s) < cfg.workers) {
            State n = s;
            unsigned picked = kMaxJobs;
            for (unsigned step = 0; step < nClients; ++step) {
                unsigned i = (n.rrNext + step) % nClients;
                if (n.fifo[i].empty())
                    continue;
                picked = n.fifo[i].front();
                n.fifo[i].erase(n.fifo[i].begin());
                n.rrNext =
                    static_cast<std::uint8_t>((i + 1) % nClients);
                break;
            }
            // The scan always finds an id (every admitted job puts
            // exactly one id in a FIFO); the guard just makes the
            // bound visible to the compiler.
            if (picked < kMaxJobs) {
                JobCell &cell = n.jobs[picked];
                if (cell.stage == Stage::Queued) {
                    cell.stage = Stage::Running;
                    cell.threadLive = true;
                    push(s, std::move(n),
                         strprintf("dispatch -> job %u running",
                                   picked));
                } else {
                    std::string event = strprintf(
                        "dispatch -> job %u already %s; task drains "
                        "and releases its slot",
                        picked, stageName(cell.stage));
                    if (mut != ServiceMutation::DropDrainRelease) {
                        cell.slotHeld = false;
                        --n.active;
                    }
                    push(s, std::move(n), std::move(event));
                }
            }
        }

        // complete(j): the executing thread finishes. On a live job
        // that's the Done answer; on a cancelled/abandoned one it is
        // a late completion — released and discarded, never
        // re-answered.
        for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
            if (!s.jobs[j].threadLive)
                continue;
            State n = s;
            JobCell &cell = n.jobs[j];
            cell.threadLive = false;
            if (cell.stage == Stage::Running) {
                answer(n, j, Stage::Done);
                cell.slotHeld = false;
                --n.active;
                push(s, std::move(n),
                     strprintf("complete job %u -> done, answered, "
                               "slot released",
                               j));
            } else {
                const char *was = stageName(cell.stage);
                if (mut != ServiceMutation::DropLateRelease) {
                    cell.slotHeld = false;
                    --n.active;
                }
                if (mut == ServiceMutation::DoubleAnswerLate)
                    answer(n, j, Stage::Done);
                if (mut == ServiceMutation::DoubleAnswerWaiters)
                    // The buggy late path replays every waiter
                    // answer the terminal transition already
                    // rendered.
                    cell.waiterAnswers = static_cast<std::uint8_t>(
                        cell.waiterAnswers + cell.attached);
                push(s, std::move(n),
                     strprintf("complete job %u -> late completion "
                               "(job was %s), discarded",
                               j, was));
            }
        }

        // attach: a duplicate submission of an in-flight spec joins
        // the leader job as a waiter — no admission slot, no FIFO
        // entry, no thread; just a blocked connection the leader's
        // terminal answer must serve. The stale-inflight mutation
        // models a finish path that forgot to erase the in-flight
        // entry: the duplicate then attaches to a dead leader.
        if (cfg.coalesce) {
            for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
                const JobCell &cell = s.jobs[j];
                if (cell.attached >= kMaxWaiters)
                    continue;
                bool in_flight = cell.stage == Stage::Queued ||
                                 cell.stage == Stage::Running;
                bool stale =
                    mut == ServiceMutation::StaleInflightAttach &&
                    (cell.stage == Stage::Done ||
                     cell.stage == Stage::TimedOut ||
                     cell.stage == Stage::Cancelled);
                if (!in_flight && !stale)
                    continue;
                State n = s;
                ++n.jobs[j].waiters;
                ++n.jobs[j].attached;
                push(s, std::move(n),
                     strprintf("duplicate submit of job %u's spec -> "
                               "coalesced onto %s leader as waiter "
                               "%u",
                               j, stageName(cell.stage),
                               cell.attached + 1u));
            }
        }

        // cancel(j): explicit cancel of a queued or running job.
        if (cfg.cancels) {
            for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
                const JobCell &cell = s.jobs[j];
                if (cell.cancelUsed ||
                    (cell.stage != Stage::Queued &&
                     cell.stage != Stage::Running))
                    continue;
                const char *was = stageName(cell.stage);
                State n = s;
                n.jobs[j].cancelUsed = true;
                if (cfg.mutation == ServiceMutation::SkipCancelAnswer)
                    n.jobs[j].stage = Stage::Cancelled;
                else
                    answer(n, j, Stage::Cancelled);
                push(s, std::move(n),
                     strprintf("cancel job %u (%s) -> cancelled%s", j,
                               was,
                               std::strcmp(was, "running") == 0
                                   ? ", thread abandoned"
                                   : ", stays in FIFO until drained"));
            }
        }

        // deadline expiry on a queued job: cancelled before dispatch.
        if (cfg.deadlines) {
            for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
                if (s.jobs[j].deadlineUsed ||
                    s.jobs[j].stage != Stage::Queued)
                    continue;
                State n = s;
                n.jobs[j].deadlineUsed = true;
                answer(n, j, Stage::Cancelled);
                push(s, std::move(n),
                     strprintf("deadline expires on queued job %u -> "
                               "cancelled before dispatch",
                               j));
            }
        }

        // watchdog (or running-deadline) fire: abandon the thread.
        if (cfg.watchdog) {
            for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
                if (s.jobs[j].stage != Stage::Running)
                    continue;
                State n = s;
                answer(n, j, Stage::TimedOut);
                push(s, std::move(n),
                     strprintf("watchdog fires on job %u -> "
                               "timed_out, thread abandoned",
                               j));
            }
        }

        // disconnect(c): the client's queued jobs are swept.
        if (cfg.disconnects) {
            for (unsigned c = 0; c < kMaxClients && c < nClients; ++c) {
                if (s.disconnected[c])
                    continue;
                State n = s;
                n.disconnected[c] = true;
                unsigned swept = 0;
                for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
                    if (clientOf(j) != c ||
                        n.jobs[j].stage != Stage::Queued)
                        continue;
                    answer(n, j, Stage::Cancelled);
                    ++swept;
                }
                push(s, std::move(n),
                     strprintf("client c%u disconnects -> %u queued "
                               "job%s cancelled",
                               c, swept, swept == 1 ? "" : "s"));
            }
        }

        // degraded escalation: first poll of an abandoned job
        // attaches the model-tier estimate (no accounting change).
        if (cfg.degrades) {
            for (unsigned j = 0; j < kMaxJobs && j < nJobs; ++j) {
                if (s.jobs[j].stage != Stage::TimedOut ||
                    s.jobs[j].degraded)
                    continue;
                State n = s;
                n.jobs[j].degraded = true;
                push(s, std::move(n),
                     strprintf("poll job %u -> degraded escalation "
                               "attaches model estimate",
                               j));
            }
        }
    }

    void
    run()
    {
        State init;
        std::string k0 = init.key();
        visited.emplace(k0, Prev{});
        checkState(init, k0);
        frontier.push_back(init);
        while (!frontier.empty()) {
            if (visited.size() > kStateCap) {
                report.truncated = true;
                break;
            }
            State s = std::move(frontier.front());
            frontier.pop_front();
            ++report.states;
            expand(s);
        }
    }
};

} // namespace

const char *
serviceMutationName(ServiceMutation m)
{
    switch (m) {
      case ServiceMutation::None:
        return "none";
      case ServiceMutation::DropDrainRelease:
        return "drop-drain-release";
      case ServiceMutation::DropLateRelease:
        return "drop-late-release";
      case ServiceMutation::DoubleAnswerLate:
        return "double-answer-late";
      case ServiceMutation::ShedLeaksSlot:
        return "shed-leaks-slot";
      case ServiceMutation::SkipCancelAnswer:
        return "skip-cancel-answer";
      case ServiceMutation::DropWaiterAnswer:
        return "drop-waiter-answer";
      case ServiceMutation::StaleInflightAttach:
        return "stale-inflight-attach";
      case ServiceMutation::DoubleAnswerWaiters:
        return "double-answer-waiters";
    }
    return "?";
}

bool
serviceMutationFromName(const std::string &name, ServiceMutation *out)
{
    if (name == "none") {
        *out = ServiceMutation::None;
        return true;
    }
    for (ServiceMutation m : allServiceMutations) {
        if (name == serviceMutationName(m)) {
            *out = m;
            return true;
        }
    }
    return false;
}

const char *
serviceDefectName(ServiceDefect d)
{
    switch (d) {
      case ServiceDefect::SlotOverflow:
        return "slot-overflow";
      case ServiceDefect::SlotDrift:
        return "slot-drift";
      case ServiceDefect::SlotLeak:
        return "slot-leak";
      case ServiceDefect::LostJob:
        return "lost-job";
      case ServiceDefect::DoubleAnswer:
        return "double-answer";
      case ServiceDefect::StuckJob:
        return "stuck-job";
      case ServiceDefect::OrphanedWaiter:
        return "orphaned-waiter";
    }
    return "?";
}

std::string
ServiceModelConfig::check() const
{
    if (jobs < 1 || jobs > kMaxJobs)
        return strprintf("jobs = %u: must be 1..%u", jobs, kMaxJobs);
    if (clients < 1 || clients > kMaxClients)
        return strprintf("clients = %u: must be 1..%u", clients,
                         kMaxClients);
    if (workers < 1 || workers > 2)
        return strprintf("workers = %u: must be 1..2", workers);
    if (depth < 1 || depth > 3)
        return strprintf("depth = %u: must be 1..3", depth);
    return "";
}

std::string
ServiceModelReport::summary() const
{
    char flags[8];
    std::size_t nf = 0;
    if (config.cancels)
        flags[nf++] = 'c';
    if (config.deadlines)
        flags[nf++] = 'd';
    if (config.watchdog)
        flags[nf++] = 'w';
    if (config.disconnects)
        flags[nf++] = 'x';
    if (config.degrades)
        flags[nf++] = 'g';
    if (config.coalesce)
        flags[nf++] = 'f';
    if (nf == 0)
        flags[nf++] = '-';
    flags[nf] = '\0';
    std::string verdict;
    if (truncated)
        verdict = "TRUNCATED";
    else if (violationsTotal == 0)
        verdict = "clean";
    else
        verdict = strprintf(
            "%llu VIOLATIONS",
            static_cast<unsigned long long>(violationsTotal));
    return strprintf(
        "service jobs=%u clients=%u workers=%u depth=%u [%s] "
        "mutation=%-18s %8llu states %9llu transitions %6llu "
        "quiescent  %s",
        config.jobs, config.clients, config.workers, config.depth,
        flags, serviceMutationName(config.mutation),
        static_cast<unsigned long long>(states),
        static_cast<unsigned long long>(transitions),
        static_cast<unsigned long long>(quiescentStates),
        verdict.c_str());
}

ServiceModelReport
checkServiceLifecycle(const ServiceModelConfig &config)
{
    ServiceModelReport report;
    report.config = config;
    std::string err = config.check();
    if (!err.empty()) {
        ++report.violationsTotal;
        ServiceFinding f;
        f.kind = ServiceDefect::StuckJob;
        f.detail = "bad configuration: " + err;
        report.findings.push_back(std::move(f));
        return report;
    }
    Explorer ex{config, report,
                std::min(config.jobs, kMaxJobs),
                std::min(config.clients, kMaxClients),
                {}, {}};
    ex.run();
    return report;
}

} // namespace ringsim::verify
