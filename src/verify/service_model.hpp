/**
 * @file
 * Deterministic schedule explorer for the service job lifecycle.
 *
 * checkServiceLifecycle() BFS-explores every interleaving of a small
 * configuration (up to 3 jobs, 2 clients, 2 workers) of the
 * experiment-service state machine that src/service/server.cpp
 * implements under its one mutex: bounded admission, per-client
 * round-robin FIFOs, pool-task dispatch decoupled from job identity,
 * lazy watchdog abandonment, deadlines, explicit cancellation,
 * disconnect sweeps, degraded escalation, and late-completion
 * accounting. The model steps the same transitions the locked
 * sections of ServiceCore perform; the explorer proves that no
 * interleaving of them can break the service's accounting:
 *
 *  - Admission-slot conservation: the `active` counter the code
 *    maintains always equals the number of jobs genuinely holding a
 *    slot, never exceeds the queue depth, and drains to zero at
 *    quiescence. This covers the subtle paths — a pool task that
 *    picks an already-cancelled job must release the slot it carries;
 *    a late completion of an abandoned job must release exactly once.
 *  - No lost jobs: every admitted job reaches exactly one answered
 *    terminal state (done, timed_out or cancelled), no matter how
 *    cancels, deadlines, watchdog fires and disconnects interleave
 *    with dispatch and completion.
 *  - No double answers: a thread finishing after its job was
 *    cancelled or abandoned is counted as a late completion and
 *    discarded — it never re-answers the job.
 *  - Cancellation-race safety: cancel-vs-complete, deadline-vs-
 *    dispatch and disconnect-vs-shed races all resolve to a single
 *    consistent terminal state.
 *  - Single-flight coalescing safety (the fleet layer's protocol,
 *    also run by each worker daemon): a duplicate submission of an
 *    in-flight spec attaches as a waiter to the leader job without
 *    consuming an admission slot; *every* leader terminal state —
 *    including leader death by cancel, deadline or watchdog — answers
 *    all attached waiters exactly once. No interleaving can orphan a
 *    waiter (blocked forever on a finished flight) or answer one
 *    twice, and a waiter never starts an execution of its own.
 *
 * A ServiceMutation seeds one deliberately broken transition (for
 * example a drain path that forgets to release its admission slot);
 * the self-tests prove every mutation is caught, and the report's
 * counterexample is a numbered, human-readable event trace that can
 * be replayed against the real ServiceCore (see
 * tests/service/lifecycle_race_test.cpp).
 *
 * Event model notes: a deadline expiring on a *running* job is
 * structurally identical to a watchdog fire (Running -> TimedOut,
 * thread abandoned), so one event covers both; record eviction
 * (trimDone) is not modeled — the checked configurations correspond
 * to retainDone >= jobs.
 */

#ifndef RINGSIM_VERIFY_SERVICE_MODEL_HPP
#define RINGSIM_VERIFY_SERVICE_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace ringsim::verify {

/** Deliberately broken service transition to seed (tests). */
enum class ServiceMutation {
    None,
    /** The pool task draining a cancelled queued job forgets to
     *  release its admission slot. */
    DropDrainRelease,
    /** A late completion (thread outliving a cancelled/abandoned job)
     *  forgets to release its admission slot. */
    DropLateRelease,
    /** A late completion re-answers the job as done instead of being
     *  discarded. */
    DoubleAnswerLate,
    /** The shed path consumes an admission slot it never admits. */
    ShedLeaksSlot,
    /** A cancel transitions the job but never renders an answer. */
    SkipCancelAnswer,
    /** A leader's terminal transition forgets to answer its attached
     *  waiters (they block forever on the finished flight). */
    DropWaiterAnswer,
    /** The leader's finish path forgets to erase the in-flight map
     *  entry, so a later duplicate attaches to a dead leader. */
    StaleInflightAttach,
    /** A late completion replays the waiter answers its job already
     *  rendered at its terminal transition. */
    DoubleAnswerWaiters,
};

/** All mutations, for CLI listing and test sweeps. */
inline constexpr ServiceMutation allServiceMutations[] = {
    ServiceMutation::DropDrainRelease,
    ServiceMutation::DropLateRelease,
    ServiceMutation::DoubleAnswerLate,
    ServiceMutation::ShedLeaksSlot,
    ServiceMutation::SkipCancelAnswer,
    ServiceMutation::DropWaiterAnswer,
    ServiceMutation::StaleInflightAttach,
    ServiceMutation::DoubleAnswerWaiters,
};

/** Printable mutation name ("drop-drain-release", ...). */
const char *serviceMutationName(ServiceMutation m);

/** Parse a mutation name; false if unknown. */
[[nodiscard]] bool serviceMutationFromName(const std::string &name,
                                           ServiceMutation *out);

/** One exhaustive service-lifecycle check job. */
struct ServiceModelConfig
{
    unsigned jobs = 3;    //!< jobs submitted (1..3)
    unsigned clients = 2; //!< submitting clients (1..2)
    unsigned workers = 1; //!< pool worker threads (1..2)
    unsigned depth = 2;   //!< admission bound, queued+running (1..3)

    bool cancels = true;     //!< explore explicit cancel events
    bool deadlines = true;   //!< explore queued-deadline expiry
    bool watchdog = true;    //!< explore running-job abandonment
    bool disconnects = true; //!< explore client-disconnect sweeps
    bool degrades = true;    //!< explore degraded escalation on poll
    bool coalesce = true;    //!< explore single-flight waiter attach

    ServiceMutation mutation = ServiceMutation::None;

    /** Validate ranges; returns a message naming the bad field. */
    [[nodiscard]] std::string check() const;
};

/** What the explorer can find wrong. */
enum class ServiceDefect {
    SlotOverflow, //!< active exceeded the admission bound
    SlotDrift,    //!< active != jobs actually holding a slot
    SlotLeak,     //!< quiescent state with active != 0
    LostJob,      //!< admitted job never answered
    DoubleAnswer, //!< job (or one of its waiters) answered twice
    StuckJob,     //!< quiescent state with a queued/running job
    OrphanedWaiter, //!< coalesced waiter never answered
};

/** Printable defect name. */
const char *serviceDefectName(ServiceDefect d);

/** One concrete counterexample: a defect plus the event trace that
 *  reaches it from the empty service. */
struct ServiceFinding
{
    ServiceDefect kind = ServiceDefect::SlotLeak;
    std::string detail; //!< one-line description of the violation
    /** Numbered events from the initial state to the violation. */
    std::vector<std::string> trace;
};

/** Exploration statistics and verdict. */
struct ServiceModelReport
{
    ServiceModelConfig config;

    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t quiescentStates = 0;
    /** True if the state cap was hit (never in shipped configs). */
    bool truncated = false;

    std::uint64_t violationsTotal = 0;
    /** First few findings (capped; violationsTotal has the count). */
    std::vector<ServiceFinding> findings;

    [[nodiscard]] bool clean() const
    {
        return violationsTotal == 0 && !truncated;
    }

    /** One-line result, e.g. for the CLI table. */
    std::string summary() const;
};

/** Exhaustively explore one configuration. */
[[nodiscard]] ServiceModelReport
checkServiceLifecycle(const ServiceModelConfig &config);

} // namespace ringsim::verify

#endif // RINGSIM_VERIFY_SERVICE_MODEL_HPP
