#include "model.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

#include "coherence/classify.hpp"
#include "util/logging.hpp"

namespace ringsim::verify {

using core::ptable::BlockState;
using core::ptable::Mutation;
using core::ptable::RequestView;
using core::ptable::SnoopSupplier;

namespace {

/** Stored counterexamples are capped; violationsTotal keeps counting. */
constexpr size_t maxFindings = 16;

/** Safety valve: a mutated table can inflate the reachable space. */
constexpr std::uint64_t stateCap = 2'000'000;

constexpr std::uint32_t
bit(NodeId p)
{
    return std::uint32_t(1) << p;
}

/** Shared flag/count bookkeeping for all phases. */
struct Ctx
{
    const ModelConfig &cfg;
    ModelReport &rep;

    void flag(Defect kind, std::string detail)
    {
        ++rep.violationsTotal;
        if (rep.findings.size() < maxFindings)
            rep.findings.push_back({kind, std::move(detail)});
    }
};

/*
 * Functional state encoding: per block, 2 bits per line state, one
 * dirty bit, 4 owner bits (0xF = none) and one presence bit per node.
 * At most (2n + 5 + n) bits per block; two 8-node blocks still fit a
 * single 64-bit key.
 */
unsigned
blockBits(unsigned nodes)
{
    return 3 * nodes + 5;
}

std::uint64_t
encodeBlock(const BlockState &bs, unsigned nodes)
{
    std::uint64_t v = 0;
    for (unsigned p = 0; p < nodes; ++p)
        v |= std::uint64_t(static_cast<unsigned>(bs.line[p]))
             << (2 * p);
    v |= std::uint64_t(bs.dirty ? 1 : 0) << (2 * nodes);
    std::uint64_t owner =
        bs.owner == invalidNode ? 0xF : std::uint64_t(bs.owner);
    v |= owner << (2 * nodes + 1);
    v |= std::uint64_t(bs.presence) << (2 * nodes + 5);
    return v;
}

BlockState
decodeBlock(std::uint64_t v, unsigned nodes)
{
    BlockState bs;
    for (unsigned p = 0; p < nodes; ++p)
        bs.line[p] =
            static_cast<cache::State>((v >> (2 * p)) & 0x3);
    bs.dirty = ((v >> (2 * nodes)) & 0x1) != 0;
    std::uint64_t owner = (v >> (2 * nodes + 1)) & 0xF;
    bs.owner = owner == 0xF ? invalidNode
                            : static_cast<NodeId>(owner);
    bs.presence = static_cast<std::uint32_t>(
        (v >> (2 * nodes + 5)) & ((std::uint64_t(1) << nodes) - 1));
    return bs;
}

std::uint64_t
encodeSys(const std::vector<BlockState> &sys, unsigned nodes)
{
    std::uint64_t v = 0;
    for (size_t b = 0; b < sys.size(); ++b)
        v |= encodeBlock(sys[b], nodes) << (b * blockBits(nodes));
    return v;
}

std::vector<BlockState>
decodeSys(std::uint64_t v, unsigned nodes, unsigned blocks)
{
    std::vector<BlockState> sys(blocks);
    std::uint64_t mask =
        (std::uint64_t(1) << blockBits(nodes)) - 1;
    for (unsigned b = 0; b < blocks; ++b)
        sys[b] =
            decodeBlock((v >> (b * blockBits(nodes))) & mask, nodes);
    return sys;
}

std::string
describeBlock(const BlockState &bs, unsigned nodes, unsigned b)
{
    std::ostringstream os;
    os << "block " << b << " [";
    for (unsigned p = 0; p < nodes; ++p) {
        switch (bs.line[p]) {
          case cache::State::Invalid:
            os << 'I';
            break;
          case cache::State::ReadShared:
            os << 'S';
            break;
          case cache::State::WriteExcl:
            os << 'W';
            break;
        }
    }
    os << "] dirty=" << (bs.dirty ? 1 : 0);
    if (bs.owner != invalidNode)
        os << " owner=" << bs.owner;
    os << " presence=0x" << std::hex << bs.presence << std::dec;
    return os.str();
}

/**
 * Phase 1/4 state invariants. SWMR: a WriteExcl copy tolerates no
 * other copy. Directory agreement: the dirty bit points at a live WE
 * owner, a clean entry has no WE line, and the sticky presence map is
 * a superset of the cached copies. Stale-read freedom: no readable
 * copy may coexist with a remote dirty owner.
 */
void
checkState(Ctx &ctx, const std::vector<BlockState> &sys)
{
    unsigned nodes = ctx.cfg.nodes;
    for (unsigned b = 0; b < sys.size(); ++b) {
        const BlockState &bs = sys[b];
        NodeId writer = invalidNode;
        for (unsigned p = 0; p < nodes; ++p)
            if (bs.line[p] == cache::State::WriteExcl)
                writer = p;

        for (unsigned p = 0; p < nodes; ++p) {
            if (bs.line[p] == cache::State::Invalid)
                continue;
            if (writer != invalidNode && p != writer) {
                ctx.flag(Defect::MultipleWriters,
                         describeBlock(bs, nodes, b) + ": node " +
                             std::to_string(p) +
                             " holds a copy alongside writer " +
                             std::to_string(writer));
            }
            if ((bs.presence & bit(p)) == 0) {
                ctx.flag(Defect::DirectoryMismatch,
                         describeBlock(bs, nodes, b) +
                             ": presence bit clear for holder " +
                             std::to_string(p));
            }
            if (bs.dirty && bs.owner != p) {
                ctx.flag(Defect::StaleRead,
                         describeBlock(bs, nodes, b) + ": node " +
                             std::to_string(p) +
                             " can read while node " +
                             (bs.owner == invalidNode
                                  ? std::string("?")
                                  : std::to_string(bs.owner)) +
                             " is dirty");
            }
        }

        if (bs.dirty &&
            (bs.owner == invalidNode || bs.owner >= nodes ||
             bs.line[bs.owner] != cache::State::WriteExcl)) {
            ctx.flag(Defect::DirectoryMismatch,
                     describeBlock(bs, nodes, b) +
                         ": dirty without a WriteExcl owner");
        }
        if (!bs.dirty && writer != invalidNode) {
            ctx.flag(Defect::DirectoryMismatch,
                     describeBlock(bs, nodes, b) +
                         ": clean entry but node " +
                         std::to_string(writer) + " is WriteExcl");
        }
    }
}

/**
 * Phase 1: BFS closure of the functional guarded actions over every
 * (block, node, access/evict) transition. Returns the reachable set
 * (encoded) for the plan audits and the product space to iterate.
 */
std::vector<std::uint64_t>
exploreFunctional(Ctx &ctx)
{
    unsigned nodes = ctx.cfg.nodes;
    unsigned blocks = ctx.cfg.blocks;
    std::unordered_set<std::uint64_t> seen;
    std::deque<std::uint64_t> frontier;
    std::vector<std::uint64_t> reachable;

    std::vector<BlockState> init(blocks);
    std::uint64_t key0 = encodeSys(init, nodes);
    seen.insert(key0);
    reachable.push_back(key0);
    frontier.push_back(key0);
    checkState(ctx, init);

    auto visit = [&](const std::vector<BlockState> &next) {
        ++ctx.rep.functionalTransitions;
        std::uint64_t key = encodeSys(next, nodes);
        if (seen.size() < stateCap && seen.insert(key).second) {
            checkState(ctx, next);
            reachable.push_back(key);
            frontier.push_back(key);
        }
    };

    while (!frontier.empty()) {
        std::uint64_t key = frontier.front();
        frontier.pop_front();
        std::vector<BlockState> sys = decodeSys(key, nodes, blocks);
        for (unsigned b = 0; b < blocks; ++b) {
            for (NodeId p = 0; p < nodes; ++p) {
                for (bool is_write : {false, true}) {
                    if (core::ptable::classifyAccess(
                            sys[b].line[p], is_write) ==
                        cache::AccessResult::Hit)
                        continue;
                    std::vector<BlockState> next = sys;
                    core::ptable::applyAccess(next[b], nodes, p,
                                              is_write,
                                              ctx.cfg.mutation);
                    visit(next);
                }
                if (sys[b].line[p] != cache::State::Invalid) {
                    std::vector<BlockState> next = sys;
                    core::ptable::applyEvict(next[b], p);
                    visit(next);
                }
            }
        }
    }
    ctx.rep.functionalStates = seen.size();
    // reachable is in BFS insertion order — deterministic, unlike the
    // hash set's iteration order, so audits and findings reproduce.
    std::sort(reachable.begin(), reachable.end());
    return reachable;
}

/** The request view of (state, requester, op); false when it is a hit
 *  or an incoherent placement the timed layer can never see. */
bool
requestAt(const BlockState &bs, unsigned nodes, NodeId p,
          bool is_write, NodeId home, RequestView *out)
{
    cache::AccessResult res =
        core::ptable::classifyAccess(bs.line[p], is_write);
    if (res == cache::AccessResult::Hit)
        return false;
    if (bs.dirty && (bs.owner == p || bs.owner >= nodes))
        return false; // broken-state artifact; phase 1 already flagged
    out->isUpgrade = res == cache::AccessResult::UpgradeMiss;
    out->isWrite = is_write;
    out->homeIsLocal = home == p;
    out->wasDirty = bs.dirty;
    out->mapSharers = (bs.presence & ~bit(p)) != 0;
    return true;
}

void
auditSnoopPlan(Ctx &ctx, const RequestView &rv, const char *where)
{
    core::ptable::SnoopPlan plan =
        core::ptable::snoopPlan(rv, ctx.cfg.mutation);
    ++ctx.rep.plansAudited;
    ctx.rep.maxTraversals =
        std::max(ctx.rep.maxTraversals, plan.probeLoops);

    if (plan.probeLoops > 1)
        ctx.flag(Defect::TraversalOverrun,
                 std::string(where) + ": snoop probe makes " +
                     std::to_string(plan.probeLoops) +
                     " ring traversals");
    if (plan.probeLoops < 1)
        ctx.flag(Defect::LostInvalidation,
                 std::string(where) +
                     ": transaction launches no probe");
    if (rv.wasDirty && plan.supplier != SnoopSupplier::OwnerCache)
        ctx.flag(Defect::StaleSupplier,
                 std::string(where) +
                     ": dirty block served from home memory");
    if (!rv.wasDirty && !rv.isUpgrade &&
        plan.supplier != SnoopSupplier::HomeMemory)
        ctx.flag(Defect::StaleSupplier,
                 std::string(where) +
                     ": clean block served from a cache");
    if (rv.isUpgrade && !plan.probeReturnLeg)
        ctx.flag(Defect::LostInvalidation,
                 std::string(where) + ": invalidation completes "
                                      "before its probe returns");

    unsigned scheduled = (plan.probeReturnLeg ? 1u : 0u) +
                         (plan.localBankLeg ? 1u : 0u) +
                         (plan.remoteData ? 1u : 0u);
    if (plan.legs > scheduled)
        ctx.flag(Defect::Deadlock,
                 std::string(where) + ": waits for " +
                     std::to_string(plan.legs) + " legs but only " +
                     std::to_string(scheduled) + " are scheduled");
    if (plan.legs < scheduled)
        ctx.flag(Defect::DoubleCompletion,
                 std::string(where) +
                     ": more completion events than legs");
}

void
auditDirPlan(Ctx &ctx, const BlockState &bs, const RequestView &rv,
             NodeId p, NodeId home, const char *where)
{
    NodeId owner = rv.wasDirty ? bs.owner : invalidNode;
    core::ptable::DirPlan plan = core::ptable::dirPlan(
        ctx.cfg.nodes, p, home, owner, rv, ctx.cfg.mutation);
    ++ctx.rep.plansAudited;
    ctx.rep.maxTraversals =
        std::max(ctx.rep.maxTraversals, plan.traversals);

    if (plan.traversals > 2)
        ctx.flag(Defect::TraversalOverrun,
                 std::string(where) + ": directory plan needs " +
                     std::to_string(plan.traversals) +
                     " ring traversals");
    if (rv.wasDirty && !plan.forwardToOwner)
        ctx.flag(Defect::StaleSupplier,
                 std::string(where) + ": dirty block served without "
                                      "forwarding to its owner");
    if (core::ptable::dirNeedsMulticast(rv) && !plan.multicast)
        ctx.flag(Defect::LostInvalidation,
                 std::string(where) + ": write to a shared block "
                                      "skips the invalidation "
                                      "multicast");
    if (!rv.isUpgrade && !plan.respondData)
        ctx.flag(Defect::Deadlock,
                 std::string(where) +
                     ": miss response carries no data");
    if (!rv.isUpgrade && !rv.wasDirty && !plan.homeBankFetch)
        ctx.flag(Defect::StaleSupplier,
                 std::string(where) +
                     ": clean miss without a home memory fetch");
    if (!plan.requestLeg && !rv.homeIsLocal)
        ctx.flag(Defect::Deadlock,
                 std::string(where) +
                     ": remote home never sees the request");
}

/**
 * Phase 2: audit the transaction plan of every (reachable state,
 * block, requester, operation, home placement).
 */
void
auditPlans(Ctx &ctx, const std::vector<std::uint64_t> &reachable)
{
    unsigned nodes = ctx.cfg.nodes;
    unsigned blocks = ctx.cfg.blocks;
    for (std::uint64_t key : reachable) {
        std::vector<BlockState> sys = decodeSys(key, nodes, blocks);
        for (unsigned b = 0; b < blocks; ++b) {
            for (NodeId p = 0; p < nodes; ++p) {
                for (bool is_write : {false, true}) {
                    for (NodeId home = 0; home < nodes; ++home) {
                        RequestView rv;
                        if (!requestAt(sys[b], nodes, p, is_write,
                                       home, &rv))
                            continue;
                        std::string where =
                            describeBlock(sys[b], nodes, b) +
                            " req=" + std::to_string(p) +
                            (is_write ? " write" : " read") +
                            " home=" + std::to_string(home);
                        if (ctx.cfg.protocol == Protocol::Snoop)
                            auditSnoopPlan(ctx, rv, where.c_str());
                        else
                            auditDirPlan(ctx, sys[b], rv, p, home,
                                         where.c_str());
                    }
                }
            }
        }
    }
}

/**
 * Phase 3: the per-transaction retry automaton. State: (attempt,
 * pending legs of the live attempt, superseded legs still in flight,
 * done). Events: a live leg arrives, the watchdog fires (relaunch or,
 * past the budget, graceful give-up), a superseded leg arrives. The
 * tag guard must drop superseded legs; AcceptStaleAttempt disables it
 * and must be caught as DoubleCompletion.
 */
void
exploreRetryAutomaton(Ctx &ctx, unsigned legs)
{
    constexpr unsigned staleCap = 3;
    unsigned maxAttempts = ctx.cfg.faults ? ctx.cfg.maxAttempts : 1;

    auto pack = [](unsigned a, unsigned p, unsigned s, bool done) {
        return (a << 16) | (p << 8) | (s << 1) | (done ? 1u : 0u);
    };

    std::unordered_set<std::uint32_t> seen;
    std::deque<std::uint32_t> frontier;
    std::uint32_t init = pack(1, legs, 0, false);
    seen.insert(init);
    frontier.push_back(init);

    // Lexicographic progress measure (attempt first, then pending
    // legs, then superseded legs still draining): every non-final
    // step of a correct schedule strictly decreases it.
    auto measure = [&](unsigned a, unsigned p, unsigned s) {
        unsigned attemptWeight = (legs + 1) * (staleCap + 1);
        return (maxAttempts + 1 - a) * attemptWeight +
               p * (staleCap + 1) + s;
    };

    while (!frontier.empty()) {
        std::uint32_t key = frontier.front();
        frontier.pop_front();
        unsigned a = key >> 16;
        unsigned p = (key >> 8) & 0xFF;
        unsigned s = (key >> 1) & 0x7F;
        bool done = (key & 1) != 0;

        auto visit = [&](unsigned na, unsigned np, unsigned ns,
                         bool ndone) {
            if (!done && !ndone &&
                measure(na, np, ns) >= measure(a, p, s))
                ctx.flag(Defect::Livelock,
                         "retry automaton step fails to decrease "
                         "its progress measure (attempt " +
                             std::to_string(a) + " -> " +
                             std::to_string(na) + ")");
            std::uint32_t nk = pack(na, np, ns, ndone);
            if (seen.insert(nk).second)
                frontier.push_back(nk);
        };

        if (done) {
            // Superseded legs draining after completion must be
            // ignored (the transaction is gone from the table).
            if (s > 0) {
                if (ctx.cfg.mutation == Mutation::AcceptStaleAttempt)
                    ctx.flag(Defect::DoubleCompletion,
                             "a superseded attempt's leg completed "
                             "an already-finished transaction");
                visit(a, p, s - 1, true);
            }
            continue;
        }

        bool any = false;
        if (p > 0) { // a live leg arrives
            any = true;
            visit(a, p - 1, s, p == 1);
        }
        if (ctx.cfg.faults) { // the watchdog fires
            any = true;
            if (a < maxAttempts)
                visit(a + 1, legs, std::min(s + p, staleCap), false);
            else
                visit(a, p, s, true); // graceful give-up completes
        }
        if (s > 0) { // a superseded leg arrives
            any = true;
            if (ctx.cfg.mutation == Mutation::AcceptStaleAttempt) {
                ctx.flag(Defect::DoubleCompletion,
                         "tag guard disabled: a superseded "
                         "attempt's leg advanced attempt " +
                             std::to_string(a));
                visit(a, p > 0 ? p - 1 : 0, s - 1, p <= 1);
            } else {
                visit(a, p, s - 1, false);
            }
        }
        if (!any)
            ctx.flag(Defect::Deadlock,
                     "retry automaton stuck at attempt " +
                         std::to_string(a) + " with " +
                         std::to_string(p) + " pending legs");
    }
    ctx.rep.automatonStates += seen.size();
}

/** Legs a freshly issued transaction waits for (by protocol). */
unsigned
issueLegs(const Ctx &ctx, const RequestView &rv)
{
    if (ctx.cfg.protocol == Protocol::Snoop)
        return std::max(
            1u, core::ptable::snoopPlan(rv, ctx.cfg.mutation).legs);
    return 1;
}

/**
 * Phase 4: genuine product-space interleaving. A state is the
 * functional state plus up to `inflight` transaction slots (block,
 * requester, op, pending legs, attempt); transitions interleave
 * issues, leg completions, watchdog retries and evictions one step at
 * a time. The functional state is applied atomically at issue — this
 * phase *demonstrates* that no interleaving of the timing legs can
 * reach a state phase 1 cannot, and re-checks every invariant on
 * every step plus a per-transaction progress measure.
 */
void
exploreProduct(Ctx &ctx,
               const std::vector<std::uint64_t> &functional)
{
    unsigned nodes = ctx.cfg.nodes;
    unsigned blocks = ctx.cfg.blocks;
    unsigned inflight = ctx.cfg.inflight;
    unsigned maxAttempts = ctx.cfg.faults ? ctx.cfg.maxAttempts : 1;

    struct Slot
    {
        bool active = false;
        std::uint8_t block = 0;
        std::uint8_t req = 0;
        bool isWrite = false;
        std::uint8_t legs = 0;
        std::uint8_t legs0 = 0;
        std::uint8_t attempt = 0;
    };

    auto packSlot = [](const Slot &s) -> std::uint32_t {
        if (!s.active)
            return 0;
        return 1u | (std::uint32_t(s.block) << 1) |
               (std::uint32_t(s.req) << 3) |
               (std::uint32_t(s.isWrite) << 6) |
               (std::uint32_t(s.legs) << 7) |
               (std::uint32_t(s.legs0) << 10) |
               (std::uint32_t(s.attempt) << 13);
    };
    auto unpackSlot = [](std::uint32_t v) {
        Slot s;
        if (!(v & 1))
            return s;
        s.active = true;
        s.block = (v >> 1) & 0x3;
        s.req = (v >> 3) & 0x7;
        s.isWrite = ((v >> 6) & 1) != 0;
        s.legs = (v >> 7) & 0x7;
        s.legs0 = (v >> 10) & 0x7;
        s.attempt = (v >> 13) & 0x7;
        return s;
    };

    struct Key
    {
        std::uint64_t sys;
        std::uint64_t slots;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        size_t operator()(const Key &k) const
        {
            std::uint64_t h = k.sys * 0x9E3779B97F4A7C15ull;
            h ^= k.slots + 0x9E3779B97F4A7C15ull + (h << 6) +
                 (h >> 2);
            return static_cast<size_t>(h);
        }
    };

    // Slots are interchangeable: canonicalize by sorting.
    auto encodeKey = [&](std::uint64_t sys,
                         std::vector<Slot> &slots) {
        std::vector<std::uint32_t> packed;
        packed.reserve(slots.size());
        for (const Slot &s : slots)
            packed.push_back(packSlot(s));
        std::sort(packed.begin(), packed.end());
        std::uint64_t v = 0;
        for (size_t i = 0; i < packed.size(); ++i)
            v |= std::uint64_t(packed[i]) << (i * 16);
        return Key{sys, v};
    };
    auto decodeSlots = [&](std::uint64_t v) {
        std::vector<Slot> slots(inflight);
        for (unsigned i = 0; i < inflight; ++i)
            slots[i] = unpackSlot((v >> (i * 16)) & 0xFFFF);
        return slots;
    };

    auto slotMeasure = [&](const Slot &s) -> unsigned {
        return (maxAttempts + 1 - s.attempt) * 8 + s.legs;
    };

    std::unordered_set<Key, KeyHash> seen;
    std::deque<Key> frontier;
    std::vector<Slot> none(inflight);
    std::vector<BlockState> init(blocks);
    Key key0 = encodeKey(encodeSys(init, nodes), none);
    seen.insert(key0);
    frontier.push_back(key0);

    while (!frontier.empty() && seen.size() < stateCap) {
        Key key = frontier.front();
        frontier.pop_front();
        std::vector<BlockState> sys =
            decodeSys(key.sys, nodes, blocks);
        std::vector<Slot> slots = decodeSlots(key.slots);

        bool anyActive = false, anyStep = false;
        auto visit = [&](std::uint64_t nsys,
                         std::vector<Slot> &nslots,
                         bool checkSys) {
            anyStep = true;
            ++ctx.rep.productTransitions;
            Key nk = encodeKey(nsys, nslots);
            if (seen.insert(nk).second) {
                if (checkSys)
                    checkState(ctx,
                               decodeSys(nsys, nodes, blocks));
                frontier.push_back(nk);
            }
        };

        // Issue into the first idle slot (slots are symmetric); a
        // processor with a transaction in flight is stalled.
        int idle = -1;
        std::uint32_t busyProcs = 0;
        for (unsigned i = 0; i < inflight; ++i) {
            if (slots[i].active) {
                anyActive = true;
                busyProcs |= bit(slots[i].req);
            } else if (idle < 0) {
                idle = static_cast<int>(i);
            }
        }

        if (idle >= 0) {
            for (unsigned b = 0; b < blocks; ++b) {
                for (NodeId p = 0; p < nodes; ++p) {
                    if (busyProcs & bit(p))
                        continue;
                    for (bool is_write : {false, true}) {
                        RequestView rv;
                        if (!requestAt(sys[b], nodes, p, is_write,
                                       b % nodes, &rv))
                            continue;
                        std::vector<BlockState> nsys = sys;
                        core::ptable::applyAccess(
                            nsys[b], nodes, p, is_write,
                            ctx.cfg.mutation);
                        std::vector<Slot> nslots = slots;
                        Slot &s = nslots[idle];
                        s.active = true;
                        s.block = static_cast<std::uint8_t>(b);
                        s.req = static_cast<std::uint8_t>(p);
                        s.isWrite = is_write;
                        s.legs = s.legs0 = static_cast<std::uint8_t>(
                            issueLegs(ctx, rv));
                        s.attempt = 1;
                        visit(encodeSys(nsys, nodes), nslots, true);
                    }
                }
            }
        }

        // Evictions are local and instantaneous (write-backs ride
        // the block-traffic channel without a transaction).
        for (unsigned b = 0; b < blocks; ++b) {
            for (NodeId p = 0; p < nodes; ++p) {
                if (sys[b].line[p] == cache::State::Invalid)
                    continue;
                std::vector<BlockState> nsys = sys;
                core::ptable::applyEvict(nsys[b], p);
                std::vector<Slot> nslots = slots;
                visit(encodeSys(nsys, nodes), nslots, true);
            }
        }

        // Timing legs and retries of the active transactions.
        for (unsigned i = 0; i < inflight; ++i) {
            if (!slots[i].active)
                continue;
            unsigned before = slotMeasure(slots[i]);

            { // one leg completes
                std::vector<Slot> nslots = slots;
                Slot &s = nslots[i];
                if (s.legs <= 1)
                    s = Slot{};
                else
                    --s.legs;
                if (s.active && slotMeasure(s) >= before)
                    ctx.flag(Defect::Livelock,
                             "leg completion fails to decrease the "
                             "transaction progress measure");
                visit(key.sys, nslots, false);
            }

            if (ctx.cfg.faults) { // the watchdog fires
                std::vector<Slot> nslots = slots;
                Slot &s = nslots[i];
                if (s.attempt < maxAttempts) {
                    ++s.attempt;
                    s.legs = s.legs0;
                    if (slotMeasure(s) >= before)
                        ctx.flag(Defect::Livelock,
                                 "a retry fails to decrease the "
                                 "transaction progress measure");
                } else {
                    s = Slot{}; // graceful give-up
                }
                visit(key.sys, nslots, false);
            }
        }

        if (anyActive && !anyStep)
            ctx.flag(Defect::Deadlock,
                     "a state with in-flight transactions has no "
                     "enabled transition");
        (void)functional;
    }
    ctx.rep.productStates = seen.size();
}

} // namespace

const char *
protocolName(Protocol p)
{
    return p == Protocol::Snoop ? "snoop" : "directory";
}

const char *
defectName(Defect d)
{
    switch (d) {
      case Defect::MultipleWriters:
        return "multiple-writers";
      case Defect::StaleRead:
        return "stale-read";
      case Defect::DirectoryMismatch:
        return "directory-mismatch";
      case Defect::TraversalOverrun:
        return "traversal-overrun";
      case Defect::LostInvalidation:
        return "lost-invalidation";
      case Defect::StaleSupplier:
        return "stale-supplier";
      case Defect::DoubleCompletion:
        return "double-completion";
      case Defect::Deadlock:
        return "deadlock";
      case Defect::Livelock:
        return "livelock";
    }
    return "?";
}

std::string
ModelConfig::check() const
{
    if (nodes < 2 || nodes > core::ptable::maxTableNodes)
        return "nodes = " + std::to_string(nodes) +
               ": model supports 2.." +
               std::to_string(core::ptable::maxTableNodes);
    if (blocks < 1 || blocks > 2)
        return "blocks = " + std::to_string(blocks) +
               ": model supports 1..2";
    if (inflight < 1 || inflight > 3)
        return "inflight = " + std::to_string(inflight) +
               ": model supports 1..3";
    if (maxAttempts < 1 || maxAttempts > 6)
        return "maxAttempts = " + std::to_string(maxAttempts) +
               ": model supports 1..6";
    return "";
}

std::string
ModelReport::summary() const
{
    std::ostringstream os;
    os << protocolName(config.protocol) << " n=" << config.nodes
       << " b=" << config.blocks
       << " faults=" << (config.faults ? "on" : "off") << ": "
       << functionalStates << " functional states, " << plansAudited
       << " plans, " << automatonStates << " automaton states";
    if (config.fullInterleaving)
        os << ", " << productStates << " product states";
    os << ", max " << maxTraversals << " traversal"
       << (maxTraversals == 1 ? "" : "s") << " -- ";
    if (clean())
        os << "clean";
    else
        os << violationsTotal << " violation"
           << (violationsTotal == 1 ? "" : "s") << " ("
           << defectName(findings.empty() ? Defect::Deadlock
                                          : findings.front().kind)
           << ")";
    return os.str();
}

ModelReport
checkProtocol(const ModelConfig &config)
{
    ModelReport rep;
    rep.config = config;
    std::string err = config.check();
    if (!err.empty())
        panic("checkProtocol: %s", err.c_str());

    Ctx ctx{config, rep};
    std::vector<std::uint64_t> reachable = exploreFunctional(ctx);
    auditPlans(ctx, reachable);

    // The retry automaton shape depends only on the leg count; both
    // protocols use 1- and 2-leg transactions.
    exploreRetryAutomaton(ctx, 1);
    exploreRetryAutomaton(ctx, 2);

    if (config.fullInterleaving)
        exploreProduct(ctx, reachable);
    return rep;
}

} // namespace ringsim::verify
