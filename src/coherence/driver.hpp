/**
 * @file
 * Round-robin functional-run driver.
 *
 * Interleaves the per-processor streams one reference at a time (the
 * untimed stand-in for equal processor progress), discards a warmup
 * prefix so cold-cache effects don't distort the census, and returns
 * the measured Census.
 */

#ifndef RINGSIM_COHERENCE_DRIVER_HPP
#define RINGSIM_COHERENCE_DRIVER_HPP

#include "coherence/engine.hpp"
#include "trace/workload.hpp"

namespace ringsim::coherence {

/** Options of a functional run. */
struct DriverOptions
{
    /** Cache geometry; block size is taken from the workload. */
    cache::Geometry geometry;

    /** Fraction of each processor's data refs treated as warmup. */
    double warmupFrac = 0.3;

    /** Enable the coherence invariant checker. */
    bool check = false;
};

/**
 * Generate @p cfg's trace and run it through the functional engine.
 * @return the post-warmup census.
 */
Census runFunctional(const trace::WorkloadConfig &cfg,
                     const DriverOptions &options = {});

} // namespace ringsim::coherence

#endif // RINGSIM_COHERENCE_DRIVER_HPP
