/**
 * @file
 * Coherence-event censuses.
 *
 * The hybrid methodology (paper Section 4.0) drives analytic models
 * with event counts measured by simulation. A Census is that record:
 * the reference mix, hit/miss behavior (identical for all three
 * write-invalidate protocols, which share the MSI state machine), and
 * one ProtocolCensus per protocol with its transaction classification,
 * ring-traversal distribution and message mileage.
 */

#ifndef RINGSIM_COHERENCE_CENSUS_HPP
#define RINGSIM_COHERENCE_CENSUS_HPP

#include <array>

#include "util/units.hpp"

namespace ringsim::coherence {

/** Index of the last (open) bucket of the traversal histograms. */
inline constexpr unsigned maxTraversalBucket = 3;

/**
 * Per-protocol transaction accounting.
 *
 * Traversal histograms: bucket 0 counts purely local transactions
 * (no ring use); bucket i (1..2) counts transactions needing i full
 * ring traversals; bucket 3 counts 3-or-more.
 */
struct ProtocolCensus
{
    /** Remote miss traversal distribution. */
    std::array<Count, maxTraversalBucket + 1> missTraversals{};

    /** Invalidation (upgrade) traversal distribution. */
    std::array<Count, maxTraversalBucket + 1> invTraversals{};

    /** Directory miss classes (Figure 5 naming). */
    Count cleanMiss1 = 0; //!< clean block, remote home, one traversal
    Count dirtyMiss1 = 0; //!< dirty block, one traversal
    Count miss2 = 0;      //!< remaining remote misses (two traversals)
    Count localMisses = 0; //!< served without using the ring

    /** Probe messages inserted and their total mileage in node hops. */
    Count probes = 0;
    double probeHops = 0;

    /** Block messages inserted and their total mileage in node hops. */
    Count blocks = 0;
    double blockHops = 0;

    /** Remote misses (ring transactions that fetch data). */
    Count remoteMisses() const {
        return missTraversals[1] + missTraversals[2] + missTraversals[3];
    }

    /** Invalidations that used the ring. */
    Count remoteInvalidations() const {
        return invTraversals[1] + invTraversals[2] + invTraversals[3];
    }
};

/** The full census of one workload run. */
struct Census
{
    unsigned procs = 0;

    /** Reference mix. */
    Count instrRefs = 0;
    Count privateReads = 0;
    Count privateWrites = 0;
    Count sharedReads = 0;
    Count sharedWrites = 0;

    /** Hit/miss behavior (protocol independent). */
    Count hits = 0;
    Count privateMisses = 0;
    Count sharedMisses = 0;
    Count upgrades = 0;
    Count writebacks = 0;

    /** Per-protocol accounting. */
    ProtocolCensus snoop;
    ProtocolCensus fullMap;
    ProtocolCensus linkedList;

    Count dataRefs() const {
        return privateReads + privateWrites + sharedReads + sharedWrites;
    }

    Count privateRefs() const { return privateReads + privateWrites; }
    Count sharedRefs() const { return sharedReads + sharedWrites; }
    Count misses() const { return privateMisses + sharedMisses; }

    double totalMissRate() const {
        Count d = dataRefs();
        return d ? static_cast<double>(misses()) / d : 0.0;
    }

    double sharedMissRate() const {
        Count s = sharedRefs();
        return s ? static_cast<double>(sharedMisses) / s : 0.0;
    }

    double privateMissRate() const {
        Count p = privateRefs();
        return p ? static_cast<double>(privateMisses) / p : 0.0;
    }

    double privateWriteFrac() const {
        Count p = privateRefs();
        return p ? static_cast<double>(privateWrites) / p : 0.0;
    }

    double sharedWriteFrac() const {
        Count s = sharedRefs();
        return s ? static_cast<double>(sharedWrites) / s : 0.0;
    }
};

} // namespace ringsim::coherence

#endif // RINGSIM_COHERENCE_CENSUS_HPP
