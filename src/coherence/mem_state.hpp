/**
 * @file
 * Memory-side per-block coherence state.
 *
 * One structure serves all three protocols:
 *  - the snooping protocol only needs the dirty bit (Section 3.1);
 *  - the full-map directory adds presence bits, which are *sticky*:
 *    silent RS replacement leaves the bit set, so presence is always a
 *    superset of the true holders (invalidations may chase evicted
 *    copies — realistic full-map behavior);
 *  - the linked-list protocol keeps the exact sharing list in order
 *    (SCI rollout removes an entry when a cache evicts a copy).
 */

#ifndef RINGSIM_COHERENCE_MEM_STATE_HPP
#define RINGSIM_COHERENCE_MEM_STATE_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace ringsim::coherence {

/** Home-node state of one block. */
struct MemState
{
    /** Set while some cache holds the block WE. */
    bool dirty = false;

    /** The WE holder when dirty. */
    NodeId owner = invalidNode;

    /** Sticky full-map presence bits (bit i = node i). */
    std::uint64_t presence = 0;

    /** Exact sharing list, head first (linked-list protocol). */
    std::vector<NodeId> list;

    /** Presence bits other than @p node. */
    std::uint64_t
    presenceExcept(NodeId node) const
    {
        return presence & ~(std::uint64_t(1) << node);
    }

    /** True if @p node is on the sharing list. */
    bool
    onList(NodeId node) const
    {
        return std::find(list.begin(), list.end(), node) != list.end();
    }

    /** Sharing-list length excluding @p node. */
    unsigned
    listSizeExcept(NodeId node) const
    {
        auto size = static_cast<unsigned>(list.size());
        return onList(node) ? size - 1 : size;
    }

    /** Current list head, or invalidNode when the list is empty. */
    NodeId
    head() const
    {
        return list.empty() ? invalidNode : list.front();
    }

    /** Put @p node at the head (moving it if already listed). */
    void
    prepend(NodeId node)
    {
        detach(node);
        list.insert(list.begin(), node);
    }

    /** Remove @p node from the list (rollout); no-op if absent. */
    void
    detach(NodeId node)
    {
        list.erase(std::remove(list.begin(), list.end(), node),
                   list.end());
    }

    /** Make @p node the sole holder in WE state. */
    void
    makeExclusive(NodeId node)
    {
        dirty = true;
        owner = node;
        presence = std::uint64_t(1) << node;
        list.clear();
        list.push_back(node);
    }

    /** Clear ownership after a write-back. */
    void
    clearOwner()
    {
        dirty = false;
        owner = invalidNode;
    }
};

} // namespace ringsim::coherence

#endif // RINGSIM_COHERENCE_MEM_STATE_HPP
