/**
 * @file
 * Ring-traversal arithmetic shared by the functional engine and the
 * timed protocol controllers.
 *
 * Nodes sit on a unidirectional ring in index order; the downstream
 * distance from a to b is (b - a) mod n hops. A chain of forwards
 * r -> h -> o -> r always covers a whole number of ring traversals
 * because each leg is shorter than the ring and the chain returns to
 * its start — Section 3.2's "one extra trip" condition falls out of
 * this arithmetic.
 */

#ifndef RINGSIM_COHERENCE_CLASSIFY_HPP
#define RINGSIM_COHERENCE_CLASSIFY_HPP

#include <vector>

#include "util/units.hpp"

namespace ringsim::coherence {

/** Downstream hop distance from @p from to @p to on an @p n node ring. */
unsigned hopDist(unsigned n, NodeId from, NodeId to);

/** Whole ring traversals covered by a closed chain of @p hops hops. */
unsigned traversalsOf(unsigned n, unsigned hops);

/** Figure 5 class of a directory miss. */
enum class DirMissClass {
    Local,  //!< served at the requester, no ring transaction
    Clean1, //!< clean block, remote home, one traversal
    Dirty1, //!< dirty block, one traversal
    Two,    //!< two traversals
};

/** Classification result for a full-map directory miss. */
struct DirMiss
{
    unsigned traversals = 0; //!< 0 for local
    unsigned probeHops = 0;  //!< probe mileage on the ring
    unsigned blockHops = 0;  //!< block-message mileage on the ring
    DirMissClass cls = DirMissClass::Local;
};

/**
 * Classify a full-map directory miss (read or write).
 *
 * @param n ring size in nodes.
 * @param requester missing node.
 * @param home block's home node.
 * @param dirty true if a remote cache owns the block.
 * @param owner the owning cache when @p dirty.
 * @param multicast true when the home must launch a full-ring
 *        invalidation (write miss to a block with presence bits set).
 */
DirMiss classifyDirMiss(unsigned n, NodeId requester, NodeId home,
                        bool dirty, NodeId owner, bool multicast);

/**
 * Traversals of a full-map upgrade (invalidation).
 * One home round trip, plus a full-ring multicast when other presence
 * bits are set.
 */
unsigned dirUpgradeTraversals(unsigned n, NodeId requester, NodeId home,
                              bool sharers);

/**
 * Traversals of a linked-list (SCI-flavored) miss.
 *
 * Section 3.2: "Each miss request to a cached block is first
 * transferred to the home node, which then forwards the request to
 * the head node; this transaction requires one or two ring traversals,
 * depending on the relative positions of the requester, the home and
 * the head." Uncached blocks are a plain home round trip.
 *
 * @param head current list head (data supplier when the list is
 *        nonempty), or invalidNode when the block is uncached.
 */
unsigned llistMissTraversals(unsigned n, NodeId requester, NodeId home,
                             NodeId head);

/**
 * Traversals of a linked-list invalidation.
 *
 * Section 3.2: invalidating the sharing list takes extra traversals;
 * in the worst case a block shared by n nodes costs n traversals. The
 * writer first visits the home to detach/attach as head (one round
 * trip unless it *is* the home), then purges each remaining sharer
 * with a serial round trip — one traversal per sharer.
 *
 * @param sharers list entries other than the requester.
 */
unsigned llistInvalidateTraversals(unsigned n, NodeId requester,
                                   NodeId home, unsigned sharers);

/** Probe mileage of the serial invalidation above, in hops. */
unsigned llistInvalidateHops(unsigned n, NodeId requester, NodeId home,
                             unsigned sharers);

/**
 * A directory read of a dirty block refreshes the home memory. The
 * owner's block message covers the home for free when the home sits on
 * the owner -> requester arc; past it, the owner must send a separate
 * copy. Shared by the functional census and the timed directory
 * controller so the two cannot disagree.
 */
bool dirRefreshCopy(unsigned n, NodeId owner, NodeId requester,
                    NodeId home);

} // namespace ringsim::coherence

#endif // RINGSIM_COHERENCE_CLASSIFY_HPP
