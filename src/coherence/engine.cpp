#include "engine.hpp"

#include <algorithm>

#include "coherence/classify.hpp"
#include "util/logging.hpp"

namespace ringsim::coherence {

namespace {

/** Bucket a traversal count into the 0/1/2/3+ histogram. */
unsigned
bucketOf(unsigned traversals)
{
    return std::min(traversals, maxTraversalBucket);
}

} // namespace

FunctionalEngine::FunctionalEngine(const trace::AddressMap &map,
                                   const EngineOptions &options)
    : map_(map), geom_(options.geometry), hooks_(options.hooks),
      procs_(map.nodes())
{
    geom_.validate();
    caches_.reserve(procs_);
    for (unsigned p = 0; p < procs_; ++p)
        caches_.emplace_back(geom_);
    if (options.check || options.monitor) {
        checker_ = std::make_unique<cache::CoherenceChecker>(procs_);
        checker_->setMonitor(options.monitor);
    }
    census_.procs = procs_;
}

const cache::CoherentCache &
FunctionalEngine::cacheOf(NodeId proc) const
{
    if (proc >= procs_)
        panic("cacheOf: proc %u out of range", proc);
    return caches_[proc];
}

const MemState &
FunctionalEngine::memState(Addr addr)
{
    return mem_[geom_.blockBase(addr)];
}

void
FunctionalEngine::resetCensus()
{
    unsigned procs = census_.procs;
    census_ = Census{};
    census_.procs = procs;
}

void
FunctionalEngine::access(NodeId p, const trace::TraceRecord &ref,
                         AccessOutcome *outcome)
{
    if (p >= procs_)
        panic("access: proc %u out of range", p);

    if (ref.op == trace::Op::Instr) {
        // Instruction fetches never miss (Section 4.1): count only.
        ++census_.instrRefs;
        if (outcome) {
            *outcome = AccessOutcome{};
            outcome->type = AccessOutcome::Type::Instr;
        }
        return;
    }

    bool is_write = ref.isWrite();
    bool shared = map_.isShared(ref.addr);
    if (shared) {
        ++(is_write ? census_.sharedWrites : census_.sharedReads);
    } else {
        ++(is_write ? census_.privateWrites : census_.privateReads);
    }

    Addr block = geom_.blockBase(ref.addr);
    NodeId home = map_.home(ref.addr);
    if (outcome) {
        *outcome = AccessOutcome{};
        outcome->isWrite = is_write;
        outcome->isShared = shared;
        outcome->block = block;
        outcome->home = home;
    }

    cache::AccessResult res = caches_[p].classify(ref.addr, is_write);
    if (res == cache::AccessResult::Hit) {
        caches_[p].touch(ref.addr);
        ++census_.hits;
        if (is_write && checker_)
            checker_->writeHit(p, block);
        if (outcome)
            outcome->type = AccessOutcome::Type::Hit;
        return;
    }

    if (res == cache::AccessResult::UpgradeMiss) {
        if (outcome) {
            outcome->type = AccessOutcome::Type::Upgrade;
            MemState &ms = mem_[block];
            outcome->mapSharers = ms.presenceExcept(p) != 0;
            outcome->anySharers = ms.listSizeExcept(p) != 0;
        }
        handleUpgrade(p, block, home);
        return;
    }

    ++(shared ? census_.sharedMisses : census_.privateMisses);
    handleMiss(p, ref.addr, block, home, is_write, outcome);
}

unsigned
FunctionalEngine::invalidateOthers(NodeId p, Addr block, MemState &ms)
{
    // Test hook: drop the invalidation aimed at the highest-numbered
    // holder, so the copy (and its checker bookkeeping) survives.
    NodeId spare = invalidNode;
    if (hooks_.dropOneInvalidation) {
        for (NodeId q = procs_; q-- > 0;) {
            if (q != p &&
                caches_[q].state(block) != cache::State::Invalid) {
                spare = q;
                break;
            }
        }
    }

    unsigned holders = 0;
    for (NodeId q = 0; q < procs_; ++q) {
        if (q == p || q == spare)
            continue;
        cache::State st = caches_[q].state(block);
        if (st == cache::State::Invalid)
            continue;
        ++holders;
        if (st == cache::State::WriteExcl) {
            // The owner's data reaches the requester; as far as the
            // version bookkeeping goes the owner flushes, then drops.
            if (checker_) {
                checker_->downgrade(q, block);
                checker_->drop(q, block);
            }
        } else if (checker_) {
            checker_->drop(q, block);
        }
        caches_[q].invalidate(block);
        ms.detach(q);
    }
    return holders;
}

void
FunctionalEngine::handleUpgrade(NodeId p, Addr block, NodeId home)
{
    MemState &ms = mem_[block];
    ++census_.upgrades;

    if (ms.dirty)
        panic("upgrade while the block is dirty elsewhere");

    // Protocol views of "are there other sharers?".
    bool map_sharers = ms.presenceExcept(p) != 0;
    unsigned list_sharers = ms.listSizeExcept(p);

    // --- Snooping: every upgrade broadcasts one probe (the memory has
    // no sharer information), exactly one traversal.
    ++census_.snoop.invTraversals[1];
    ++census_.snoop.probes;
    census_.snoop.probeHops += procs_;

    // --- Full map: home round trip (request + ack probes) plus a
    // full-ring multicast when other presence bits are set.
    {
        unsigned trav = dirUpgradeTraversals(procs_, p, home, map_sharers);
        ++census_.fullMap.invTraversals[bucketOf(trav)];
        if (p != home) {
            census_.fullMap.probes += 2;
            census_.fullMap.probeHops +=
                hopDist(procs_, p, home) + hopDist(procs_, home, p);
        }
        if (map_sharers) {
            ++census_.fullMap.probes;
            census_.fullMap.probeHops += procs_;
        }
    }

    // --- Linked list: become head via the home, then purge the exact
    // list with one serial round trip per remaining sharer.
    {
        unsigned trav = llistInvalidateTraversals(procs_, p, home,
                                                  list_sharers);
        ++census_.linkedList.invTraversals[bucketOf(trav)];
        census_.linkedList.probes +=
            2 * list_sharers + (p == home ? 0 : 2);
        census_.linkedList.probeHops +=
            llistInvalidateHops(procs_, p, home, list_sharers);
    }

    invalidateOthers(p, block, ms);
    caches_[p].upgrade(block);
    if (checker_)
        checker_->writeFill(p, block);
    ms.makeExclusive(p);
}

void
FunctionalEngine::scoreSnoopMiss(NodeId p, NodeId home, NodeId supplier,
                                 bool dirty)
{
    // Every miss broadcasts its probe (Section 3.1: "miss and
    // invalidation requests are broadcasted through the ring"); the
    // dirty bit only decides who responds. When the responder is the
    // requester's own node the data never enters a block slot.
    ++census_.snoop.missTraversals[1];
    ++census_.snoop.probes;
    census_.snoop.probeHops += procs_;
    if (supplier == p) {
        ++census_.snoop.localMisses;
    } else if (dirty) {
        ++census_.snoop.dirtyMiss1;
    } else {
        ++census_.snoop.cleanMiss1;
    }
    if (supplier != p) {
        ++census_.snoop.blocks;
        census_.snoop.blockHops += hopDist(procs_, supplier, p);
    }
    (void)home;
}

void
FunctionalEngine::handleMiss(NodeId p, Addr addr, Addr block,
                             NodeId home, bool is_write,
                             AccessOutcome *outcome)
{
    MemState &ms = mem_[block];
    bool dirty = ms.dirty;
    NodeId owner = ms.owner;
    if (outcome) {
        outcome->type = AccessOutcome::Type::Miss;
        outcome->wasDirty = dirty;
        outcome->owner = owner;
        outcome->mapSharers = ms.presenceExcept(p) != 0;
        outcome->anySharers = ms.listSizeExcept(p) != 0;
    }
    if (dirty && owner == p)
        panic("miss on a block this processor owns dirty");

    bool map_sharers = ms.presenceExcept(p) != 0;
    unsigned list_sharers = ms.listSizeExcept(p);
    NodeId head = ms.head();

    // ---------------- Snooping protocol scoring ----------------
    {
        NodeId supplier = dirty ? owner : home;
        scoreSnoopMiss(p, home, supplier, dirty);
    }

    // ---------------- Full-map directory scoring ----------------
    {
        bool multicast = is_write && !dirty && map_sharers;
        DirMiss dm = classifyDirMiss(procs_, p, home, dirty, owner,
                                     multicast);
        ++census_.fullMap.missTraversals[bucketOf(dm.traversals)];
        switch (dm.cls) {
          case DirMissClass::Local:
            ++census_.fullMap.localMisses;
            break;
          case DirMissClass::Clean1:
            ++census_.fullMap.cleanMiss1;
            break;
          case DirMissClass::Dirty1:
            ++census_.fullMap.dirtyMiss1;
            break;
          case DirMissClass::Two:
            ++census_.fullMap.miss2;
            break;
        }
        if (dm.probeHops || dm.traversals) {
            census_.fullMap.probes += dirty ? 2 : (p == home ? 0 : 1);
            if (multicast)
                ++census_.fullMap.probes;
            census_.fullMap.probeHops += dm.probeHops;
            if (dm.blockHops) {
                ++census_.fullMap.blocks;
                census_.fullMap.blockHops += dm.blockHops;
            }
        }
        // A dirty block read back through the directory also refreshes
        // the home memory; if the home is not on the owner->requester
        // path the owner sends a second block message.
        if (dirty && !is_write && home != owner && home != p) {
            unsigned to_req = hopDist(procs_, owner, p);
            unsigned to_home = hopDist(procs_, owner, home);
            if (to_home > to_req) {
                ++census_.fullMap.blocks;
                census_.fullMap.blockHops += to_home;
            }
        }
    }

    // ---------------- Linked-list scoring ----------------
    {
        unsigned trav;
        if (is_write && !dirty && list_sharers > 0) {
            // Write miss to a clean shared block: fetch via the home,
            // then purge the list with serial round trips.
            trav = llistInvalidateTraversals(procs_, p, home,
                                             list_sharers);
            census_.linkedList.probes +=
                2 * list_sharers + (p == home ? 0 : 2);
            census_.linkedList.probeHops +=
                llistInvalidateHops(procs_, p, home, list_sharers);
            if (p != home) {
                ++census_.linkedList.blocks;
                census_.linkedList.blockHops += hopDist(procs_, home, p);
            }
        } else {
            // Reads, uncached writes and dirty-block writes all follow
            // the miss chain requester -> home (-> head/owner) ->
            // requester.
            NodeId supplier = dirty ? owner : head;
            trav = llistMissTraversals(procs_, p, home, supplier);
            if (p != home || supplier != invalidNode) {
                if (dirty || (supplier != invalidNode &&
                              supplier != home)) {
                    census_.linkedList.probes += 2;
                    census_.linkedList.probeHops +=
                        hopDist(procs_, p, home) +
                        hopDist(procs_, home,
                                supplier == invalidNode ? home
                                                        : supplier);
                    NodeId from = supplier == invalidNode ? home
                                                          : supplier;
                    ++census_.linkedList.blocks;
                    census_.linkedList.blockHops +=
                        hopDist(procs_, from, p);
                } else if (p != home) {
                    ++census_.linkedList.probes;
                    census_.linkedList.probeHops +=
                        hopDist(procs_, p, home);
                    ++census_.linkedList.blocks;
                    census_.linkedList.blockHops +=
                        hopDist(procs_, home, p);
                }
            }
        }
        ++census_.linkedList.missTraversals[bucketOf(trav)];
        if (trav == 0)
            ++census_.linkedList.localMisses;
    }

    // ---------------- State transition (common) ----------------
    if (is_write) {
        invalidateOthers(p, block, ms);
        cache::Victim victim =
            caches_[p].fill(addr, cache::State::WriteExcl);
        if (checker_)
            checker_->writeFill(p, block);
        ms.makeExclusive(p);
        handleVictim(p, victim, outcome);
    } else {
        if (dirty) {
            caches_[owner].downgrade(block);
            // The downgrade copies the owner's data back to memory, so
            // by the time the requester fills, memory is fresh — the
            // checker sees a memory-sourced fill either way.
            if (checker_)
                checker_->downgrade(owner, block);
            ms.clearOwner();
            ms.presence |= std::uint64_t(1) << owner;
            if (!ms.onList(owner))
                ms.prepend(owner);
        }
        cache::Victim victim =
            caches_[p].fill(addr, cache::State::ReadShared);
        if (checker_)
            checker_->readFill(p, block, /*from_memory=*/true);
        ms.presence |= std::uint64_t(1) << p;
        ms.prepend(p);
        handleVictim(p, victim, outcome);
    }
}

void
FunctionalEngine::handleVictim(NodeId p, const cache::Victim &victim,
                               AccessOutcome *outcome)
{
    if (!victim.valid)
        return;
    Addr vblock = victim.blockAddr;
    MemState &vms = mem_[vblock];
    NodeId vhome = map_.home(vblock);
    if (outcome) {
        outcome->victimValid = true;
        outcome->victimDirty = victim.state == cache::State::WriteExcl;
        outcome->victimBlock = vblock;
        outcome->victimHome = vhome;
    }

    if (victim.state == cache::State::WriteExcl) {
        ++census_.writebacks;
        if (checker_)
            checker_->writeback(p, vblock);
        vms.clearOwner();
        vms.presence &= ~(std::uint64_t(1) << p);
        vms.detach(p);
        if (vhome != p) {
            unsigned hops = hopDist(procs_, p, vhome);
            for (ProtocolCensus *pc :
                 {&census_.snoop, &census_.fullMap,
                  &census_.linkedList}) {
                ++pc->blocks;
                pc->blockHops += hops;
            }
        }
    } else {
        // Silent RS replacement for snooping and full map (presence
        // bits go stale); the linked list must roll the node out with
        // a neighbor-patching probe round trip.
        if (checker_)
            checker_->drop(p, vblock);
        if (vms.onList(p)) {
            vms.detach(p);
            census_.linkedList.probes += 2;
            census_.linkedList.probeHops += procs_;
        }
    }
}

} // namespace ringsim::coherence
