/**
 * @file
 * Functional (untimed) coherence engine.
 *
 * Runs references through per-processor MSI caches and home-node state,
 * and — because the snooping, full-map and linked-list protocols share
 * the same cache-state machine and differ only in *how* transactions
 * move on the ring — scores all three protocols' transaction costs in
 * a single pass. Its Census feeds:
 *
 *  - Table 1 (full map vs linked list traversal distributions),
 *  - Table 2 (trace characteristics under the 128 KB cache),
 *  - Figure 5 (directory miss-class breakdown),
 *  - the analytic models (message counts and mileage).
 *
 * Message mileage bookkeeping per protocol is documented inline; all
 * distances are node hops on the unidirectional ring (nodes in index
 * order). A CoherenceChecker (optional) asserts the single-writer and
 * no-stale-read invariants on every action.
 */

#ifndef RINGSIM_COHERENCE_ENGINE_HPP
#define RINGSIM_COHERENCE_ENGINE_HPP

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/checker.hpp"
#include "cache/coherent_cache.hpp"
#include "coherence/census.hpp"
#include "coherence/mem_state.hpp"
#include "trace/address_map.hpp"
#include "trace/record.hpp"

namespace ringsim::coherence {

/** What one access did — consumed by the timed protocol controllers. */
struct AccessOutcome
{
    /** How the reference resolved. */
    enum class Type {
        Instr,   //!< instruction fetch (never misses)
        Hit,     //!< cache hit
        Upgrade, //!< write to an RS copy (invalidation)
        Miss,    //!< read or write miss (data fetch)
    };

    Type type = Type::Hit;
    bool isWrite = false;
    bool isShared = false;

    Addr block = 0;            //!< block base address
    NodeId home = invalidNode; //!< home node of the block

    /** Miss details (valid when type == Miss). */
    bool wasDirty = false;       //!< a remote cache owned the block
    NodeId owner = invalidNode;  //!< that owner
    bool mapSharers = false;     //!< full-map presence bits (other
                                 //!< than requester) were set
    bool anySharers = false;     //!< other caches actually held copies

    /** Victim details (valid when type == Miss and a block was
     *  displaced). */
    bool victimValid = false;
    bool victimDirty = false;    //!< displaced block needs write-back
    Addr victimBlock = 0;
    NodeId victimHome = invalidNode;
};

/** Options of a functional run. */
struct EngineOptions
{
    /** Cache geometry (paper default: 128 KB direct mapped, 16 B). */
    cache::Geometry geometry;

    /** Run the coherence invariant checker (slower; on in tests). */
    bool check = false;

    /**
     * Continuous invariant monitoring: when non-null, the checker runs
     * (as if check were set) and routes violations to this sink
     * instead of panicking. Borrowed; must outlive the engine.
     */
    cache::InvariantMonitor *monitor = nullptr;

    /**
     * Test-only protocol fault seeds. Production code leaves these
     * off; tests use them to prove the invariant monitor and the
     * static model checker both catch a broken transition.
     */
    struct TestHooks
    {
        /**
         * Every invalidation sweep skips its highest-numbered holder,
         * leaving a recognizably stale copy behind (the functional
         * twin of ptable::Mutation::DropInvalidation).
         */
        bool dropOneInvalidation = false;
    };
    TestHooks hooks;
};

/** The engine proper. */
class FunctionalEngine
{
  public:
    /**
     * @param map address map defining homes (must outlive the engine).
     * @param options run options.
     */
    FunctionalEngine(const trace::AddressMap &map,
                     const EngineOptions &options);

    /**
     * Apply one reference from processor @p proc.
     * @param outcome when non-null, filled with what the access did.
     */
    void access(NodeId proc, const trace::TraceRecord &ref,
                AccessOutcome *outcome = nullptr);

    /** Accumulated census. */
    const Census &census() const { return census_; }

    /** Zero the census (cache and directory state kept — warmup). */
    void resetCensus();

    /** Processor @p proc's cache (tests). */
    const cache::CoherentCache &cacheOf(NodeId proc) const;

    /** Home state of the block containing @p addr (tests). */
    const MemState &memState(Addr addr);

    /** The checker, or null when disabled. */
    const cache::CoherenceChecker *checker() const {
        return checker_.get();
    }

  private:
    void handleUpgrade(NodeId p, Addr block, NodeId home);
    void handleMiss(NodeId p, Addr addr, Addr block, NodeId home,
                    bool is_write, AccessOutcome *outcome);
    void handleVictim(NodeId p, const cache::Victim &victim,
                      AccessOutcome *outcome);

    /** Invalidate every other cached copy; returns how many existed. */
    unsigned invalidateOthers(NodeId p, Addr block, MemState &ms);

    /** Score a snooping-protocol data miss (probe + block reply). */
    void scoreSnoopMiss(NodeId p, NodeId home, NodeId supplier,
                        bool dirty);

    const trace::AddressMap &map_;
    cache::Geometry geom_;
    EngineOptions::TestHooks hooks_;
    unsigned procs_;
    std::vector<cache::CoherentCache> caches_;
    std::unordered_map<Addr, MemState> mem_;
    std::unique_ptr<cache::CoherenceChecker> checker_;
    Census census_;
};

} // namespace ringsim::coherence

#endif // RINGSIM_COHERENCE_ENGINE_HPP
