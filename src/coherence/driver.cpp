#include "driver.hpp"

#include <vector>

#include "trace/generator.hpp"
#include "util/logging.hpp"

namespace ringsim::coherence {

Census
runFunctional(const trace::WorkloadConfig &cfg,
              const DriverOptions &options)
{
    trace::AddressMap map = trace::makeAddressMap(cfg);
    trace::TraceSet streams = trace::makeTraceSet(cfg, map);

    EngineOptions engine_options;
    engine_options.geometry = options.geometry;
    engine_options.geometry.blockBytes = cfg.blockBytes;
    engine_options.check = options.check;
    FunctionalEngine engine(map, engine_options);

    auto warmup_target = static_cast<Count>(
        options.warmupFrac * static_cast<double>(cfg.dataRefsPerProc));
    bool warmed = warmup_target == 0;

    std::vector<bool> alive(cfg.procs, true);
    std::vector<Count> data_seen(cfg.procs, 0);
    unsigned live = cfg.procs;
    trace::TraceRecord rec;

    while (live > 0) {
        for (NodeId p = 0; p < cfg.procs; ++p) {
            if (!alive[p])
                continue;
            if (!streams[p]->next(rec)) {
                alive[p] = false;
                --live;
                continue;
            }
            engine.access(p, rec);
            if (rec.isData())
                ++data_seen[p];
        }
        if (!warmed && data_seen[0] >= warmup_target) {
            engine.resetCensus();
            warmed = true;
        }
    }
    return engine.census();
}

} // namespace ringsim::coherence
