#include "classify.hpp"

#include "util/logging.hpp"

namespace ringsim::coherence {

unsigned
hopDist(unsigned n, NodeId from, NodeId to)
{
    if (from >= n || to >= n)
        panic("hopDist: node out of range (%u, %u of %u)", from, to, n);
    return (to + n - from) % n;
}

unsigned
traversalsOf(unsigned n, unsigned hops)
{
    if (hops % n != 0)
        panic("chain of %u hops is not a whole number of traversals "
              "on a %u node ring", hops, n);
    return hops / n;
}

DirMiss
classifyDirMiss(unsigned n, NodeId requester, NodeId home, bool dirty,
                NodeId owner, bool multicast)
{
    DirMiss out;
    if (dirty) {
        if (owner == requester)
            panic("dirty miss with requester as owner");
        // Chain: requester -> home (request probe), home -> owner
        // (forward probe), owner -> requester (block message).
        unsigned to_home = hopDist(n, requester, home);
        unsigned to_owner = hopDist(n, home, owner);
        unsigned to_req = hopDist(n, owner, requester);
        out.probeHops = to_home + to_owner;
        out.blockHops = to_req;
        unsigned chain = to_home + to_owner + to_req;
        out.traversals = traversalsOf(n, chain);
        if (out.traversals == 0) {
            // requester == home == owner cannot happen; a zero chain
            // means requester == home and owner == requester: absurd.
            panic("zero-length dirty miss chain");
        }
        out.cls = out.traversals == 1 ? DirMissClass::Dirty1
                                      : DirMissClass::Two;
        return out;
    }

    unsigned to_home = hopDist(n, requester, home);
    unsigned back = hopDist(n, home, requester);
    if (multicast) {
        // Home launches a full-ring invalidation probe and awaits its
        // return before replying (Section 3.2).
        out.probeHops = to_home + n;
        out.blockHops = back;
        out.traversals = traversalsOf(n, to_home + n + back);
        out.cls = out.traversals == 1 ? DirMissClass::Clean1
                                      : DirMissClass::Two;
        if (requester == home)
            out.cls = DirMissClass::Clean1; // one traversal, clean
        return out;
    }

    if (requester == home) {
        out.cls = DirMissClass::Local;
        return out;
    }
    out.probeHops = to_home;
    out.blockHops = back;
    out.traversals = traversalsOf(n, to_home + back);
    out.cls = DirMissClass::Clean1;
    return out;
}

unsigned
dirUpgradeTraversals(unsigned n, NodeId requester, NodeId home,
                     bool sharers)
{
    unsigned round_trip =
        requester == home
            ? 0
            : traversalsOf(n, hopDist(n, requester, home) +
                                  hopDist(n, home, requester));
    return round_trip + (sharers ? 1 : 0);
}

unsigned
llistMissTraversals(unsigned n, NodeId requester, NodeId home,
                    NodeId head)
{
    if (head == invalidNode || head == home) {
        // Uncached (or the home itself heads the list): a plain home
        // round trip; free when the requester is the home.
        if (requester == home)
            return 0;
        return traversalsOf(n, hopDist(n, requester, home) +
                                   hopDist(n, home, requester));
    }
    unsigned chain = hopDist(n, requester, home) +
                     hopDist(n, home, head) +
                     hopDist(n, head, requester);
    if (chain == 0)
        return 0; // requester == home == head (cannot happen on a miss)
    return traversalsOf(n, chain);
}

unsigned
llistInvalidateHops(unsigned n, NodeId requester, NodeId home,
                    unsigned sharers)
{
    unsigned hops = 0;
    if (requester != home)
        hops += hopDist(n, requester, home) + hopDist(n, home, requester);
    // Each purge is a full round trip: requester -> sharer -> requester.
    hops += sharers * n;
    return hops;
}

bool
dirRefreshCopy(unsigned n, NodeId owner, NodeId requester, NodeId home)
{
    if (home == owner || home == requester)
        return false;
    return hopDist(n, owner, home) > hopDist(n, owner, requester);
}

unsigned
llistInvalidateTraversals(unsigned n, NodeId requester, NodeId home,
                          unsigned sharers)
{
    (void)n; // geometry does not matter: each purge is a round trip
    return (requester == home ? 0 : 1) + sharers;
}

} // namespace ringsim::coherence
