/**
 * @file
 * Deterministic fault injection for the slotted ring.
 *
 * The paper's ring is ideal: no slot is ever lost and every message
 * completes in exactly one traversal. This subsystem relaxes that by
 * injecting three fault classes into the ring pipeline:
 *
 *  - slot corruption: an occupied slot's payload is flagged corrupt
 *    (header ECC survives, payload CRC fails); the first interface to
 *    see it discards the message and NACKs the sender;
 *  - slot drops: an occupied slot's message vanishes entirely (latch
 *    upset), recoverable only by the sender's retry timeout;
 *  - transient link stalls: the whole pipeline holds for a few cycles
 *    (resynchronisation), delaying but never losing traffic.
 *
 * The schedule is a pure function of (seed, fault kind, ring cycle,
 * slot index) — no RNG state advances — so a given seed produces the
 * identical fault pattern regardless of host, thread count or how the
 * queries interleave. Same seed => same faults, replayable byte for
 * byte.
 */

#ifndef RINGSIM_FAULT_FAULT_HPP
#define RINGSIM_FAULT_FAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.hpp"
#include "util/units.hpp"

namespace ringsim::fault {

/** The injectable fault classes. */
enum class FaultKind : unsigned {
    Corrupt, //!< payload corruption, detected and NACKed
    Drop,    //!< message lost outright, recovered by timeout
    Stall,   //!< transient whole-ring pipeline stall
};

/** Printable fault-kind name. */
const char *faultKindName(FaultKind k);

/** Fault-injection and recovery parameters of one run. */
struct FaultConfig
{
    /** Per occupied slot, per ring cycle: corruption probability. */
    double corruptRate = 0.0;

    /** Per occupied slot, per ring cycle: drop probability. */
    double dropRate = 0.0;

    /** Per ring cycle: probability a transient stall begins. */
    double stallRate = 0.0;

    /** Length of one injected stall, in ring cycles. */
    unsigned stallCycles = 4;

    /** Seed of the deterministic fault schedule. */
    std::uint64_t seed = 1;

    /** Cap on injected corrupt+drop faults; 0 = unlimited. */
    Count maxFaults = 0;

    /** Retries before a transaction is declared a fatal fault. */
    unsigned maxRetries = 8;

    /**
     * Base retransmission timeout in ticks; 0 = auto (derived from
     * the ring round trip and the memory service times).
     */
    Tick retryTimeout = 0;

    /**
     * Base of the exponential retry backoff in ticks; 0 = auto (one
     * ring round trip). Attempt k waits base << (k - 1).
     */
    Tick backoffBase = 0;

    /** True when any fault rate is nonzero. */
    bool enabled() const {
        return corruptRate > 0.0 || dropRate > 0.0 || stallRate > 0.0;
    }

    /** All misconfigurations, as human-readable messages. */
    [[nodiscard]] std::vector<std::string> check() const;

    /** fatal() with the first check() error, if any. */
    void validate() const;
};

/**
 * The deterministic fault schedule: answers "does fault K occur at
 * (cycle, slot)?" as a pure hash of the inputs.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

    /** True when @p kind fires at (@p cycle, @p slot) under @p rate. */
    bool decide(FaultKind kind, Count cycle, unsigned slot,
                double rate) const;

  private:
    std::uint64_t seed_;
};

/** Fault and recovery event counters of one run. */
struct FaultStats
{
    stats::Counter corrupted;    //!< slots flagged corrupt
    stats::Counter dropped;      //!< messages lost outright
    stats::Counter stallEvents;  //!< stalls begun
    stats::Counter stallCycles;  //!< total stalled ring cycles
    stats::Counter nacks;        //!< NACKs sent by detecting nodes
    stats::Counter timeouts;     //!< watchdog expirations
    stats::Counter retries;      //!< transaction relaunches
    stats::Counter recovered;    //!< transactions completed after >= 1 retry
    stats::Counter fatals;       //!< transactions that exhausted retries
    stats::Counter staleEvents;  //!< late events from superseded attempts
    stats::Counter lostWritebacks; //!< traffic-only messages lost

    /** Append every counter to @p reg as "<prefix>.<name>". */
    void recordTo(stats::Registry &reg, const std::string &prefix) const;
};

/**
 * Stateful front end the ring queries each cycle: applies the plan,
 * enforces the fault budget, and owns the run's fault statistics.
 */
class FaultInjector
{
  public:
    /** @param config validated fault parameters. */
    explicit FaultInjector(const FaultConfig &config);

    const FaultConfig &config() const { return config_; }

    /**
     * Ring cycle @p cycle: stall length to begin now (0 = none).
     * Counts the stall when it fires.
     */
    unsigned stallFor(Count cycle);

    /** Should the message in @p slot be dropped this cycle? */
    bool dropAt(Count cycle, unsigned slot);

    /** Should the message in @p slot be corrupted this cycle? */
    bool corruptAt(Count cycle, unsigned slot);

    /** Corrupt + drop faults injected so far. */
    Count faultsInjected() const { return injected_; }

    FaultStats &stats() { return stats_; }
    const FaultStats &stats() const { return stats_; }

  private:
    bool budgetLeft() const {
        return config_.maxFaults == 0 || injected_ < config_.maxFaults;
    }

    FaultConfig config_;
    FaultPlan plan_;
    FaultStats stats_;
    Count injected_ = 0;
};

} // namespace ringsim::fault

#endif // RINGSIM_FAULT_FAULT_HPP
