#include "fault.hpp"

#include "util/logging.hpp"

namespace ringsim::fault {

namespace {

/** splitmix64 finalizer; bit-stable on every platform. */
std::uint64_t
mix(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::Corrupt:
        return "corrupt";
      case FaultKind::Drop:
        return "drop";
      case FaultKind::Stall:
        return "stall";
    }
    return "?";
}

std::vector<std::string>
FaultConfig::check() const
{
    std::vector<std::string> errors;
    auto rate_ok = [&](double rate, const char *name) {
        if (rate < 0.0 || rate > 1.0 || rate != rate) {
            errors.push_back(strprintf(
                "%sRate = %g: fault rate is not a probability in "
                "[0, 1]",
                name, rate));
        }
    };
    rate_ok(corruptRate, "corrupt");
    rate_ok(dropRate, "drop");
    rate_ok(stallRate, "stall");
    if (stallRate > 0.0 && stallCycles == 0)
        errors.push_back(strprintf(
            "stallCycles = 0: fault stalls (stallRate = %g) need a "
            "nonzero length",
            stallRate));
    if (maxRetries == 0)
        errors.push_back(
            "maxRetries = 0: fault recovery needs at least one retry");
    return errors;
}

void
FaultConfig::validate() const
{
    std::vector<std::string> errors = check();
    if (!errors.empty())
        fatal("%s", errors.front().c_str());
}

bool
FaultPlan::decide(FaultKind kind, Count cycle, unsigned slot,
                  double rate) const
{
    if (rate <= 0.0)
        return false;
    std::uint64_t h = mix(seed_ ^
                          (static_cast<std::uint64_t>(kind) + 1) *
                              0xd6e8feb86659fd93ULL);
    h = mix(h ^ cycle);
    h = mix(h ^ slot);
    // Top 53 bits -> uniform double in [0, 1).
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < rate;
}

void
FaultStats::recordTo(stats::Registry &reg,
                     const std::string &prefix) const
{
    auto rec = [&](const char *name, const stats::Counter &c) {
        reg.record(prefix + "." + name,
                   static_cast<double>(c.value()));
    };
    rec("corrupted", corrupted);
    rec("dropped", dropped);
    rec("stall_events", stallEvents);
    rec("stall_cycles", stallCycles);
    rec("nacks", nacks);
    rec("timeouts", timeouts);
    rec("retries", retries);
    rec("recovered", recovered);
    rec("fatals", fatals);
    rec("stale_events", staleEvents);
    rec("lost_writebacks", lostWritebacks);
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), plan_(config.seed)
{
    config_.validate();
}

unsigned
FaultInjector::stallFor(Count cycle)
{
    if (!plan_.decide(FaultKind::Stall, cycle, 0, config_.stallRate))
        return 0;
    stats_.stallEvents.inc();
    stats_.stallCycles.inc(config_.stallCycles);
    return config_.stallCycles;
}

bool
FaultInjector::dropAt(Count cycle, unsigned slot)
{
    if (!budgetLeft() ||
        !plan_.decide(FaultKind::Drop, cycle, slot, config_.dropRate))
        return false;
    ++injected_;
    stats_.dropped.inc();
    return true;
}

bool
FaultInjector::corruptAt(Count cycle, unsigned slot)
{
    if (!budgetLeft() ||
        !plan_.decide(FaultKind::Corrupt, cycle, slot,
                      config_.corruptRate))
        return false;
    ++injected_;
    stats_.corrupted.inc();
    return true;
}

} // namespace ringsim::fault
