#include "service_faults.hpp"

#include "util/logging.hpp"

namespace ringsim::fault {

namespace {

/** splitmix64 finalizer; bit-stable on every platform. */
std::uint64_t
mix(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

const char *
serviceFaultKindName(ServiceFaultKind k)
{
    switch (k) {
      case ServiceFaultKind::SlowWrite:
        return "slow_write";
      case ServiceFaultKind::Disconnect:
        return "disconnect";
      case ServiceFaultKind::Garble:
        return "garble";
      case ServiceFaultKind::TornWrite:
        return "torn_write";
      case ServiceFaultKind::BitFlip:
        return "bit_flip";
      case ServiceFaultKind::PeerDrop:
        return "peer_drop";
    }
    return "?";
}

ServiceFaultConfig
ServiceFaultConfig::chaosPreset(std::uint64_t seed)
{
    // Rates high enough that a four-client smoke run trips every
    // class several times, low enough that bounded client retries
    // (ServiceClient::tryCallResilient) always converge.
    ServiceFaultConfig cfg;
    cfg.seed = seed;
    cfg.slowWriteRate = 0.10;
    cfg.disconnectRate = 0.05;
    cfg.garbleRate = 0.05;
    cfg.tornWriteRate = 0.15;
    cfg.bitFlipRate = 0.15;
    cfg.peerDropRate = 0.20;
    return cfg;
}

std::vector<std::string>
ServiceFaultConfig::check() const
{
    std::vector<std::string> errors;
    auto rate_ok = [&](double rate, const char *name) {
        if (rate < 0.0 || rate > 1.0 || rate != rate) {
            errors.push_back(strprintf(
                "%sRate = %g: fault rate is not a probability in "
                "[0, 1]",
                name, rate));
        }
    };
    rate_ok(slowWriteRate, "slowWrite");
    rate_ok(disconnectRate, "disconnect");
    rate_ok(garbleRate, "garble");
    rate_ok(tornWriteRate, "tornWrite");
    rate_ok(bitFlipRate, "bitFlip");
    rate_ok(peerDropRate, "peerDrop");
    if (slowWriteRate > 0.0 && slowChunkBytes == 0)
        errors.push_back(strprintf(
            "slowChunkBytes = 0: slow writes (slowWriteRate = %g) "
            "need a nonzero chunk",
            slowWriteRate));
    return errors;
}

void
ServiceFaultConfig::validate() const
{
    std::vector<std::string> errors = check();
    if (!errors.empty())
        fatal("%s", errors.front().c_str());
}

ServiceFaultInjector::ServiceFaultInjector(
    const ServiceFaultConfig &config)
    : config_(config)
{
    config_.validate();
}

bool
ServiceFaultInjector::decide(std::uint64_t seed,
                             ServiceFaultKind kind, std::uint64_t seq,
                             double rate)
{
    if (rate <= 0.0)
        return false;
    std::uint64_t h = mix(seed ^
                          (static_cast<std::uint64_t>(kind) + 1) *
                              0xd6e8feb86659fd93ULL);
    h = mix(h ^ seq);
    // Top 53 bits -> uniform double in [0, 1).
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < rate;
}

bool
ServiceFaultInjector::fire(ServiceFaultKind kind,
                           std::atomic<std::uint64_t> &seq,
                           double rate,
                           std::atomic<std::uint64_t> &counter)
{
    std::uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
    if (!decide(config_.seed, kind, n, rate))
        return false;
    counter.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ServiceFaultInjector::slowWrite()
{
    return fire(ServiceFaultKind::SlowWrite, slow_seq_,
                config_.slowWriteRate, slow_fired_);
}

bool
ServiceFaultInjector::disconnect()
{
    return fire(ServiceFaultKind::Disconnect, disconnect_seq_,
                config_.disconnectRate, disconnect_fired_);
}

bool
ServiceFaultInjector::garble()
{
    return fire(ServiceFaultKind::Garble, garble_seq_,
                config_.garbleRate, garble_fired_);
}

bool
ServiceFaultInjector::tornWrite()
{
    return fire(ServiceFaultKind::TornWrite, torn_seq_,
                config_.tornWriteRate, torn_fired_);
}

bool
ServiceFaultInjector::bitFlip()
{
    return fire(ServiceFaultKind::BitFlip, flip_seq_,
                config_.bitFlipRate, flip_fired_);
}

bool
ServiceFaultInjector::peerDrop()
{
    return fire(ServiceFaultKind::PeerDrop, peer_seq_,
                config_.peerDropRate, peer_fired_);
}

ServiceFaultCounters
ServiceFaultInjector::counters() const
{
    ServiceFaultCounters c;
    c.slowWrites = slow_fired_.load(std::memory_order_relaxed);
    c.disconnects = disconnect_fired_.load(std::memory_order_relaxed);
    c.garbles = garble_fired_.load(std::memory_order_relaxed);
    c.tornWrites = torn_fired_.load(std::memory_order_relaxed);
    c.bitFlips = flip_fired_.load(std::memory_order_relaxed);
    c.peerDrops = peer_fired_.load(std::memory_order_relaxed);
    return c;
}

} // namespace ringsim::fault
