/**
 * @file
 * Deterministic fault injection for the experiment *service* layer.
 *
 * PR 2's FaultPlan hardens the simulated ring; this file lifts the
 * same discipline to the daemon that serves it. An enabled injector
 * perturbs the service's I/O edges:
 *
 *  - slow writes: a response is sent in small chunks with short
 *    delays, exercising clients that assume one read per line;
 *  - disconnects: the connection is closed after a response prefix,
 *    exercising client reconnect-and-retry;
 *  - garbles: a byte of the NDJSON response is flipped, exercising
 *    client-side parse rejection and retry;
 *  - torn cache writes: a just-published disk-cache entry is
 *    truncated, exercising verify-on-load and quarantine;
 *  - cache bit-flips: a byte of a published entry is flipped,
 *    exercising the per-entry checksum.
 *
 * Like the ring's FaultPlan, every decision is a pure function of
 * (seed, fault kind, site sequence number) — no RNG state advances —
 * so one seed reproduces the identical decision sequence at every
 * site. (Thread interleaving still varies across runs; determinism
 * is per-site, which is what makes a chaos failure replayable.)
 *
 * None of the faults may change the bytes of a successfully delivered
 * non-degraded answer: the injector breaks transports and storage,
 * and the recovery machinery must hide that — the chaos smoke test
 * asserts exactly this.
 */

#ifndef RINGSIM_FAULT_SERVICE_FAULTS_HPP
#define RINGSIM_FAULT_SERVICE_FAULTS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ringsim::fault {

/** The injectable service-layer fault classes. */
enum class ServiceFaultKind : unsigned {
    SlowWrite,  //!< response sent in tiny chunks with delays
    Disconnect, //!< connection closed after a response prefix
    Garble,     //!< one response byte flipped (unparsable NDJSON)
    TornWrite,  //!< disk-cache entry truncated after publish
    BitFlip,    //!< disk-cache entry byte flipped after publish
    PeerDrop,   //!< fleet peer-cache probe treated as unreachable
};

/** Printable service-fault-kind name. */
const char *serviceFaultKindName(ServiceFaultKind k);

/** Fault-injection parameters of one daemon instance. */
struct ServiceFaultConfig
{
    /** Seed of the deterministic decision schedule. */
    std::uint64_t seed = 1;

    /** Per response: probability of a chunked slow write. */
    double slowWriteRate = 0.0;

    /** Per response: probability of a mid-response disconnect. */
    double disconnectRate = 0.0;

    /** Per response: probability one byte is flipped. */
    double garbleRate = 0.0;

    /** Per disk-cache publish: probability the file is truncated. */
    double tornWriteRate = 0.0;

    /** Per disk-cache publish: probability one byte is flipped. */
    double bitFlipRate = 0.0;

    /**
     * Per peer-cache probe: probability the peer is treated as
     * unreachable (the probe is skipped and counted). A dropped
     * probe degrades the lookup to a plain miss — recompute — so
     * like every other class it can never change delivered bytes.
     */
    double peerDropRate = 0.0;

    /** Chunk size of one slow write, in bytes. */
    unsigned slowChunkBytes = 7;

    /** Delay between slow-write chunks, in microseconds. */
    unsigned slowChunkDelayUs = 200;

    /** True when any fault rate is nonzero. */
    bool enabled() const
    {
        return slowWriteRate > 0.0 || disconnectRate > 0.0 ||
               garbleRate > 0.0 || tornWriteRate > 0.0 ||
               bitFlipRate > 0.0 || peerDropRate > 0.0;
    }

    /**
     * The preset used by `ringsim_serve --chaos SEED` and the chaos
     * smoke script: every class enabled at a rate the recovery
     * machinery must absorb without failing a request.
     */
    static ServiceFaultConfig chaosPreset(std::uint64_t seed);

    /** All misconfigurations, as human-readable messages. */
    [[nodiscard]] std::vector<std::string> check() const;

    /** fatal() with the first check() error, if any. */
    void validate() const;
};

/** Injected-fault counters of one daemon instance (for statsz). */
struct ServiceFaultCounters
{
    Count slowWrites = 0;
    Count disconnects = 0;
    Count garbles = 0;
    Count tornWrites = 0;
    Count bitFlips = 0;
    Count peerDrops = 0;
};

/**
 * Stateful front end the service's I/O edges query: applies the pure
 * decision schedule and owns the injection counters. Thread-safe —
 * connection threads and cache writers share one injector. The class
 * is deliberately lock-free: every member is an independent atomic
 * (a per-site sequence number or a fire counter), no invariant spans
 * two of them, and counters() reads a snapshot that may be mid-update
 * — exact cross-site consistency is not part of its contract. That is
 * why, unlike every mutex-guarded service class, there is nothing
 * here for thread-safety annotations to check.
 */
class ServiceFaultInjector
{
  public:
    /** @param config validated fault parameters. */
    explicit ServiceFaultInjector(const ServiceFaultConfig &config);

    const ServiceFaultConfig &config() const { return config_; }

    /**
     * Pure decision: does @p kind fire at sequence number @p seq
     * under @p rate with @p seed? Exposed for determinism tests.
     */
    static bool decide(std::uint64_t seed, ServiceFaultKind kind,
                       std::uint64_t seq, double rate);

    /** Next response: should it be written slowly? Counts the fire. */
    bool slowWrite();

    /** Next response: disconnect mid-write? Counts the fire. */
    bool disconnect();

    /** Next response: flip a byte? Counts the fire. */
    bool garble();

    /** Next cache publish: truncate the file? Counts the fire. */
    bool tornWrite();

    /** Next cache publish: flip a byte? Counts the fire. */
    bool bitFlip();

    /** Next peer-cache probe: drop it? Counts the fire. */
    bool peerDrop();

    /** Counter snapshot. */
    ServiceFaultCounters counters() const;

  private:
    bool fire(ServiceFaultKind kind, std::atomic<std::uint64_t> &seq,
              double rate, std::atomic<std::uint64_t> &counter);

    const ServiceFaultConfig config_;

    // Per-site sequence numbers (one independent schedule per site).
    std::atomic<std::uint64_t> slow_seq_{0};
    std::atomic<std::uint64_t> disconnect_seq_{0};
    std::atomic<std::uint64_t> garble_seq_{0};
    std::atomic<std::uint64_t> torn_seq_{0};
    std::atomic<std::uint64_t> flip_seq_{0};
    std::atomic<std::uint64_t> peer_seq_{0};

    std::atomic<std::uint64_t> slow_fired_{0};
    std::atomic<std::uint64_t> disconnect_fired_{0};
    std::atomic<std::uint64_t> garble_fired_{0};
    std::atomic<std::uint64_t> torn_fired_{0};
    std::atomic<std::uint64_t> flip_fired_{0};
    std::atomic<std::uint64_t> peer_fired_{0};
};

} // namespace ringsim::fault

#endif // RINGSIM_FAULT_SERVICE_FAULTS_HPP
