/**
 * @file
 * Worker routing: liveness-aware forwarding with deterministic
 * failover.
 *
 * A WorkerPool tracks one connection-less record per worker endpoint
 * (alive flag, counters, last error) and forwards a request to the
 * workers in the key's failover order (fleet/shard). Three outcomes
 * are kept distinct because they demand different reactions:
 *
 *  - transport failure (dead socket, garbled line): the worker is
 *    marked dead and the request *requeues* onto the next shard —
 *    this is the requeue-on-worker-death path, and it is correct for
 *    every op because requests are idempotent (a replayed submit
 *    re-answers from the memo cache, byte-identically);
 *  - overload shed ({"ok":false} with retry_after_ms): the worker is
 *    alive, just full — try the next shard, and report "all shed" to
 *    the caller so it can degrade fleet-wide;
 *  - application error or success: deterministic — every worker would
 *    answer the same — so it is returned as-is, never failed over.
 *
 * Dead workers are re-probed lazily: the next forward whose failover
 * order crosses one pings it if probeMs has elapsed, so recovery
 * needs no watchdog thread.
 */

#ifndef RINGSIM_FLEET_ROUTER_HPP
#define RINGSIM_FLEET_ROUTER_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"
#include "util/json.hpp"

namespace ringsim::fleet {

/** Point-in-time per-worker state, for statsz aggregation. */
struct WorkerSnapshot
{
    std::string endpoint;
    bool alive = true;
    std::uint64_t forwards = 0;  ///< successful round trips
    std::uint64_t failures = 0;  ///< transport failures observed
    std::uint64_t sheds = 0;     ///< overload rejections observed
    std::string lastError;       ///< most recent failure, "" if none
};

/** How one tryForward() ended. */
enum class ForwardOutcome
{
    Answered,   ///< *response holds a worker's answer (ok either way)
    AllShed,    ///< every reachable worker shed; degrade or back off
    AllDead,    ///< no worker reachable at all
};

class WorkerPool
{
  public:
    /**
     * @param endpoints worker endpoints in shard order (nonempty)
     * @param attempts  transport attempts per worker per forward
     * @param probe_ms  min interval between re-probes of a dead worker
     */
    WorkerPool(std::vector<std::string> endpoints, unsigned attempts,
               std::uint64_t probe_ms);

    std::size_t size() const { return endpoints_.size(); }

    /**
     * Forward @p request to the fleet in @p shard_key's failover
     * order. On Answered, @p *response is the answering worker's
     * parsed reply and @p *worker its index. On AllShed/AllDead,
     * @p *error summarizes the last failure. Thread safe; the socket
     * round trips run unlocked.
     */
    ForwardOutcome tryForward(const util::JsonValue &request,
                              const std::string &shard_key,
                              util::JsonValue *response,
                              std::size_t *worker, std::string *error)
        EXCLUDES(mutex_);

    /**
     * One round trip to worker @p index specifically (statsz
     * aggregation, tests). No failover; dead workers are still
     * attempted (and probed as a side effect). False + @p error on
     * transport failure.
     */
    [[nodiscard]] bool tryCallWorker(std::size_t index,
                                     const util::JsonValue &request,
                                     util::JsonValue *response,
                                     std::string *error)
        EXCLUDES(mutex_);

    /** Jobs that failed over past at least one dead worker. */
    std::uint64_t requeues() const EXCLUDES(mutex_);

    /** Per-worker state, indexed like the endpoint list. */
    std::vector<WorkerSnapshot> snapshot() const EXCLUDES(mutex_);

  private:
    using Clock = std::chrono::steady_clock;

    struct Worker
    {
        bool alive = true;
        std::uint64_t forwards = 0;
        std::uint64_t failures = 0;
        std::uint64_t sheds = 0;
        std::string lastError;
        Clock::time_point lastProbe{}; ///< last liveness re-probe
    };

    /**
     * True when worker @p index should be attempted: alive, or dead
     * with probeMs elapsed (in which case the attempt *is* the
     * probe).
     */
    bool shouldAttempt(std::size_t index) EXCLUDES(mutex_);

    void noteSuccess(std::size_t index) EXCLUDES(mutex_);
    void noteTransportFailure(std::size_t index,
                              const std::string &error)
        EXCLUDES(mutex_);
    void noteShed(std::size_t index, const std::string &error)
        EXCLUDES(mutex_);

    const std::vector<std::string> endpoints_;
    const unsigned attempts_;
    const std::chrono::milliseconds probeInterval_;

    mutable core::Mutex mutex_;
    std::vector<Worker> workers_ GUARDED_BY(mutex_);
    std::uint64_t requeues_ GUARDED_BY(mutex_) = 0;
};

} // namespace ringsim::fleet

#endif // RINGSIM_FLEET_ROUTER_HPP
