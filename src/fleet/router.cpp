#include "router.hpp"

#include "fleet/shard.hpp"
#include "service/client.hpp"
#include "util/logging.hpp"

namespace ringsim::fleet {

namespace {

/**
 * One request/response round trip on a fresh connection. Distinguishes
 * transport failure (false) from an answer (true) — an answer may
 * still say ok:false, which the caller classifies as shed vs
 * application error.
 */
bool
tryRoundTrip(const std::string &endpoint, unsigned attempts,
             const util::JsonValue &request, util::JsonValue *response,
             std::string *error)
{
    service::ServiceClient client;
    if (!client.tryConnect(endpoint, error))
        return false;
    std::string line = request.dump();
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        std::string reply;
        if (!client.tryRequest(line, &reply, error)) {
            // Reconnect once per remaining attempt; a worker that
            // dropped mid-read stays dead for a SIGKILL, but survives
            // a single chaotic disconnect.
            if (attempt + 1 < attempts &&
                client.tryConnect(endpoint, error))
                continue;
            return false;
        }
        if (!util::tryParseJson(reply, response, error)) {
            *error = "garbled response: " + *error;
            if (attempt + 1 < attempts)
                continue;
            return false;
        }
        return true;
    }
    return false;
}

/** True when a parsed {"ok":false} reply is an overload shed. */
bool
isShed(const util::JsonValue &response)
{
    const util::JsonValue *ok = response.find("ok");
    if (ok == nullptr || !ok->isBool() || ok->asBool())
        return false;
    return response.find("retry_after_ms") != nullptr;
}

} // namespace

WorkerPool::WorkerPool(std::vector<std::string> endpoints,
                       unsigned attempts, std::uint64_t probe_ms)
    : endpoints_(std::move(endpoints)),
      attempts_(attempts == 0 ? 1 : attempts),
      probeInterval_(std::chrono::milliseconds(probe_ms))
{
    if (endpoints_.empty())
        panic("WorkerPool: no endpoints");
    core::MutexLock lock(mutex_);
    workers_.resize(endpoints_.size());
}

bool
WorkerPool::shouldAttempt(std::size_t index)
{
    core::MutexLock lock(mutex_);
    Worker &worker = workers_[index];
    if (worker.alive)
        return true;
    Clock::time_point now = Clock::now();
    if (now - worker.lastProbe < probeInterval_)
        return false;
    // The attempt itself is the probe: success revives the worker,
    // failure re-stamps lastProbe via noteTransportFailure.
    worker.lastProbe = now;
    return true;
}

void
WorkerPool::noteSuccess(std::size_t index)
{
    core::MutexLock lock(mutex_);
    Worker &worker = workers_[index];
    worker.alive = true;
    ++worker.forwards;
    worker.lastError.clear();
}

void
WorkerPool::noteTransportFailure(std::size_t index,
                                 const std::string &error)
{
    core::MutexLock lock(mutex_);
    Worker &worker = workers_[index];
    worker.alive = false;
    worker.lastProbe = Clock::now();
    ++worker.failures;
    worker.lastError = error;
}

void
WorkerPool::noteShed(std::size_t index, const std::string &error)
{
    core::MutexLock lock(mutex_);
    Worker &worker = workers_[index];
    worker.alive = true; // shedding is a sign of life
    ++worker.sheds;
    worker.lastError = error;
}

ForwardOutcome
WorkerPool::tryForward(const util::JsonValue &request,
                       const std::string &shard_key,
                       util::JsonValue *response, std::size_t *worker,
                       std::string *error)
{
    std::vector<std::size_t> order =
        failoverOrder(shard_key, endpoints_.size());
    bool any_shed = false;
    bool failed_over = false;
    std::string last_error = "no worker attempted";
    for (std::size_t index : order) {
        if (!shouldAttempt(index)) {
            failed_over = true;
            continue;
        }
        util::JsonValue reply;
        std::string attempt_error;
        if (!tryRoundTrip(endpoints_[index], attempts_, request,
                          &reply, &attempt_error)) {
            noteTransportFailure(index, attempt_error);
            last_error =
                endpoints_[index] + ": " + attempt_error;
            failed_over = true;
            continue;
        }
        if (isShed(reply)) {
            std::string shed_error = "overloaded";
            if (const util::JsonValue *msg = reply.find("error");
                msg != nullptr && msg->isString())
                shed_error = msg->asString();
            noteShed(index, shed_error);
            last_error = endpoints_[index] + ": " + shed_error;
            any_shed = true;
            continue;
        }
        // Success or a deterministic application error: either way
        // the answer is authoritative, so stop here.
        noteSuccess(index);
        if (failed_over) {
            core::MutexLock lock(mutex_);
            ++requeues_;
        }
        *response = std::move(reply);
        *worker = index;
        return ForwardOutcome::Answered;
    }
    *error = last_error;
    return any_shed ? ForwardOutcome::AllShed : ForwardOutcome::AllDead;
}

bool
WorkerPool::tryCallWorker(std::size_t index,
                          const util::JsonValue &request,
                          util::JsonValue *response, std::string *error)
{
    if (index >= endpoints_.size())
        panic("tryCallWorker: index %zu of %zu", index,
              endpoints_.size());
    util::JsonValue reply;
    if (!tryRoundTrip(endpoints_[index], attempts_, request, &reply,
                      error)) {
        noteTransportFailure(index, *error);
        return false;
    }
    noteSuccess(index);
    *response = std::move(reply);
    return true;
}

std::uint64_t
WorkerPool::requeues() const
{
    core::MutexLock lock(mutex_);
    return requeues_;
}

std::vector<WorkerSnapshot>
WorkerPool::snapshot() const
{
    core::MutexLock lock(mutex_);
    std::vector<WorkerSnapshot> out;
    out.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        WorkerSnapshot snap;
        snap.endpoint = endpoints_[i];
        snap.alive = workers_[i].alive;
        snap.forwards = workers_[i].forwards;
        snap.failures = workers_[i].failures;
        snap.sheds = workers_[i].sheds;
        snap.lastError = workers_[i].lastError;
        out.push_back(std::move(snap));
    }
    return out;
}

} // namespace ringsim::fleet
