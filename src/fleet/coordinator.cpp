#include "coordinator.hpp"

#include <exception>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "figures/figures.hpp"
#include "fleet/shard.hpp"
#include "runner/experiment_runner.hpp"
#include "service/cache_key.hpp"
#include "util/logging.hpp"

namespace ringsim::fleet {

namespace {

util::JsonValue
errorResponse(const char *op, const std::string &message)
{
    util::JsonValue o = util::JsonValue::object();
    o.set("ok", util::JsonValue::boolean(false));
    if (op)
        o.set("op", util::JsonValue::string(op));
    o.set("error", util::JsonValue::string(message));
    return o;
}

/**
 * Counters summed across worker statsz responses into the "totals"
 * section. Fixed allowlist rather than "every numeric member" so a
 * future per-worker gauge (queue_depth, workers) does not silently
 * turn into a nonsense fleet total.
 */
const char *const kSummedCounters[] = {
    "submitted",  "admitted",  "shed",          "completed",
    "failed",     "timed_out", "cache_answers", "cancelled",
    "degraded",   "coalesced", "bad_requests",  "late_completions",
    "deadline_expired",
};

/** The per-part rows of a worker's sweep_part result, or throw. */
std::vector<figures::FigureRow>
extractPartRows(const util::JsonValue &response, std::size_t part)
{
    const util::JsonValue *result = response.find("result");
    if (result == nullptr || !result->isObject())
        throw std::runtime_error(
            "part " + std::to_string(part) +
            ": worker response has no result object");
    const util::JsonValue *kind = result->find("kind");
    if (kind == nullptr || !kind->isString() ||
        kind->asString() != "sweep_part")
        throw std::runtime_error("part " + std::to_string(part) +
                                 ": result is not a sweep_part");
    const util::JsonValue *rows = result->find("rows");
    if (rows == nullptr || !rows->isArray())
        throw std::runtime_error("part " + std::to_string(part) +
                                 ": sweep_part has no rows array");
    std::vector<figures::FigureRow> out;
    out.reserve(rows->items().size());
    for (const util::JsonValue &jrow : rows->items()) {
        if (!jrow.isArray())
            throw std::runtime_error("part " + std::to_string(part) +
                                     ": row is not an array");
        figures::FigureRow row;
        row.reserve(jrow.items().size());
        for (const util::JsonValue &cell : jrow.items()) {
            if (!cell.isString())
                throw std::runtime_error(
                    "part " + std::to_string(part) +
                    ": row cell is not a string");
            row.push_back(cell.asString());
        }
        out.push_back(std::move(row));
    }
    return out;
}

/**
 * validate() before the WorkerPool touches the endpoint list, so a
 * misconfiguration dies with fatal()'s message instead of a panic.
 */
const FleetConfig &
validated(const FleetConfig &cfg)
{
    cfg.validate();
    return cfg;
}

} // namespace

FleetCore::FleetCore(const FleetConfig &cfg)
    : cfg_(cfg), pool_(validated(cfg_).workers,
                       cfg_.attemptsPerWorker, cfg_.probeMs)
{
    inform("fleet: %zu workers, sweep split %s, degrade %s",
           pool_.size(), cfg_.splitSweeps ? "on" : "off",
           cfg_.degradeToModel ? "on" : "off");
}

bool
FleetCore::shutdownRequested() const
{
    core::MutexLock lock(mutex_);
    return shutdown_;
}

void
FleetCore::clientGone(const std::string &client)
{
    // Submits answer synchronously on the connection's thread; a
    // vanished client abandons nothing the coordinator tracks.
    (void)client;
}

std::string
FleetCore::handleLine(const std::string &client,
                      const std::string &line)
{
    util::JsonValue req;
    std::string parse_error;
    if (!util::tryParseJson(line, &req, &parse_error) ||
        !req.isObject()) {
        core::MutexLock lock(mutex_);
        ++bad_requests_;
        return errorResponse(nullptr,
                             "bad request: " +
                                 (parse_error.empty()
                                      ? "expected a JSON object"
                                      : parse_error))
            .dump();
    }
    std::vector<std::string> errors;
    std::string op = req.getString("op", "", &errors);
    if (op == "ping") {
        util::JsonValue o = util::JsonValue::object();
        o.set("ok", util::JsonValue::boolean(true));
        o.set("op", util::JsonValue::string("ping"));
        o.set("role", util::JsonValue::string("fleet"));
        return o.dump();
    }
    if (op == "submit")
        return handleSubmit(client, req);
    if (op == "poll")
        return handlePoll(req);
    if (op == "statsz")
        return handleStatsz();
    if (op == "shutdown") {
        core::MutexLock lock(mutex_);
        shutdown_ = true;
        util::JsonValue o = util::JsonValue::object();
        o.set("ok", util::JsonValue::boolean(true));
        o.set("op", util::JsonValue::string("shutdown"));
        return o.dump();
    }
    if (op == "cancel")
        return errorResponse("cancel",
                             "fleet submits complete synchronously; "
                             "cancel against a worker daemon")
            .dump();
    {
        core::MutexLock lock(mutex_);
        ++bad_requests_;
    }
    return errorResponse(nullptr, "op = '" + op +
                                      "': expected ping, submit, "
                                      "poll, statsz or shutdown")
        .dump();
}

std::string
FleetCore::handleSubmit(const std::string &client,
                        const util::JsonValue &req)
{
    const util::JsonValue *job = req.find("job");
    if (job == nullptr) {
        core::MutexLock lock(mutex_);
        ++bad_requests_;
        return errorResponse("submit",
                             "job = <missing>: a submit carries its "
                             "job spec inline")
            .dump();
    }
    service::JobSpec spec;
    std::string parse_error;
    if (!service::JobSpec::tryParse(*job, cfg_.enableTestJobs, &spec,
                                    &parse_error)) {
        core::MutexLock lock(mutex_);
        ++bad_requests_;
        return errorResponse("submit", parse_error.empty()
                                           ? "bad job spec"
                                           : parse_error)
            .dump();
    }

    std::string identity =
        service::cacheKey(spec.canonical().dump(), cfg_.salt);
    std::uint64_t id;
    {
        core::MutexLock lock(mutex_);
        id = next_id_++;
        ++submitted_;
    }

    // Single-flight: only cacheable specs coalesce — two sleep jobs
    // (test-only, side-effect-shaped) must both run.
    bool coalescable = spec.cacheable();
    if (coalescable) {
        std::string leader_bytes;
        if (flights_.join(identity, &leader_bytes) ==
            SingleFlight::Role::Waiter) {
            // Re-tag the leader's response with this submission's id.
            // The result payload travels untouched; parse→dump of our
            // own response is stable (dump∘parse∘dump = dump).
            util::JsonValue o;
            std::string retag_error;
            if (!util::tryParseJson(leader_bytes, &o, &retag_error))
                panic("fleet: unparsable published response: %s",
                      retag_error.c_str());
            o.set("id", util::JsonValue::integer(id));
            o.set("coalesced", util::JsonValue::boolean(true));
            std::string response = o.dump();
            retain(id, response);
            return response;
        }
    }

    std::string response;
    try {
        response = leadSubmit(*job, spec, identity, id);
        if (coalescable)
            flights_.publish(identity, response);
    } catch (...) {
        // leadSubmit reports failures as error responses; reaching
        // here means a genuine leader death. Waiters re-elect.
        if (coalescable)
            flights_.abort(identity);
        throw;
    }
    retain(id, response);
    (void)client;
    return response;
}

std::string
FleetCore::leadSubmit(const util::JsonValue &job,
                      const service::JobSpec &spec,
                      const std::string &identity, std::uint64_t id)
{
    if (spec.kind == service::JobKind::Sweep && spec.sweepPart < 0 &&
        cfg_.splitSweeps) {
        std::size_t blocks = figures::figureBlockCount(
            spec.figure, figures::FigureOptions{}, spec.fig6Cholesky);
        if (blocks > 1)
            return splitSweep(job, spec, id);
    }
    return forwardWhole(job, spec, identity, id);
}

std::string
FleetCore::forwardWhole(const util::JsonValue &job,
                        const service::JobSpec &spec,
                        const std::string &identity, std::uint64_t id)
{
    util::JsonValue wreq = util::JsonValue::object();
    wreq.set("op", util::JsonValue::string("submit"));
    wreq.set("wait", util::JsonValue::boolean(true));
    wreq.set("job", job);

    util::JsonValue reply;
    std::size_t worker = 0;
    std::string error;
    ForwardOutcome outcome =
        pool_.tryForward(wreq, identity, &reply, &worker, &error);
    if (outcome != ForwardOutcome::Answered)
        return degradeOrFail(spec, id, error);

    {
        core::MutexLock lock(mutex_);
        ++forwarded_;
    }
    reply.set("id", util::JsonValue::integer(id));
    reply.set("worker",
              util::JsonValue::string(cfg_.workers[worker]));
    return reply.dump();
}

std::string
FleetCore::splitSweep(const util::JsonValue &job,
                      const service::JobSpec &spec, std::uint64_t id)
{
    std::size_t blocks = figures::figureBlockCount(
        spec.figure, figures::FigureOptions{}, spec.fig6Cholesky);
    unsigned fanout = cfg_.fanout != 0
                          ? cfg_.fanout
                          : static_cast<unsigned>(2 * pool_.size());
    if (fanout > blocks)
        fanout = static_cast<unsigned>(blocks);

    std::vector<std::function<std::vector<figures::FigureRow>()>>
        tasks;
    tasks.reserve(blocks);
    for (std::size_t part = 0; part < blocks; ++part) {
        // The subjob is the client's own job object plus a part
        // index; its shard key is the *part spec's* canonical key,
        // so parts spread across the fleet while repeats of the same
        // part hit the same worker's warm cache.
        util::JsonValue part_job = job;
        part_job.set("part", util::JsonValue::integer(
                                 static_cast<std::uint64_t>(part)));
        service::JobSpec part_spec = spec;
        part_spec.sweepPart = static_cast<std::int64_t>(part);
        std::string part_key = service::cacheKey(
            part_spec.canonical().dump(), cfg_.salt);

        util::JsonValue wreq = util::JsonValue::object();
        wreq.set("op", util::JsonValue::string("submit"));
        wreq.set("wait", util::JsonValue::boolean(true));
        wreq.set("job", std::move(part_job));

        tasks.push_back([this, wreq = std::move(wreq),
                         part_key = std::move(part_key), part]() {
            util::JsonValue reply;
            std::size_t worker = 0;
            std::string error;
            ForwardOutcome outcome = pool_.tryForward(
                wreq, part_key, &reply, &worker, &error);
            if (outcome != ForwardOutcome::Answered)
                throw std::runtime_error(
                    "part " + std::to_string(part) + ": " + error);
            std::vector<std::string> errors;
            if (!reply.getBool("ok", false, &errors))
                throw std::runtime_error(
                    "part " + std::to_string(part) + ": " +
                    reply.getString("error", "worker error",
                                    &errors));
            return extractPartRows(reply, part);
        });
    }

    std::vector<std::vector<figures::FigureRow>> rows_per_block;
    try {
        rows_per_block =
            runner::runAll(std::move(tasks), fanout);
    } catch (const std::exception &e) {
        return degradeOrFail(spec, id, e.what());
    }

    figures::FigureOptions opt;
    opt.refs = spec.refs;
    opt.seed = spec.seed;
    opt.fast = spec.fast;
    opt.faults = spec.faults;
    std::string text =
        figures::assembleFigure(spec.figure, opt, rows_per_block,
                                spec.csv, spec.fig6Cholesky);

    {
        core::MutexLock lock(mutex_);
        ++sweep_splits_;
        parts_forwarded_ += blocks;
    }

    // Same result shape a worker's whole-sweep execution produces,
    // so clients cannot tell (and must not care) whether a sweep was
    // split.
    util::JsonValue result = util::JsonValue::object();
    result.set("kind", util::JsonValue::string("sweep"));
    result.set("figure", util::JsonValue::string(
                             figures::figureName(spec.figure)));
    result.set("text", util::JsonValue::string(std::move(text)));

    util::JsonValue o = util::JsonValue::object();
    o.set("ok", util::JsonValue::boolean(true));
    o.set("op", util::JsonValue::string("submit"));
    o.set("id", util::JsonValue::integer(id));
    o.set("state", util::JsonValue::string("done"));
    o.set("cached", util::JsonValue::boolean(false));
    o.set("split", util::JsonValue::integer(blocks));
    o.set("result", std::move(result));
    return o.dump();
}

std::string
FleetCore::degradeOrFail(const service::JobSpec &spec,
                         std::uint64_t id, const std::string &why)
{
    if (cfg_.degradeToModel && spec.allowDegraded &&
        spec.degradable()) {
        try {
            util::JsonValue result =
                service::executeDegraded(spec, cfg_.jobsPerSweep);
            {
                core::MutexLock lock(mutex_);
                ++degraded_;
            }
            util::JsonValue o = util::JsonValue::object();
            o.set("ok", util::JsonValue::boolean(true));
            o.set("op", util::JsonValue::string("submit"));
            o.set("id", util::JsonValue::integer(id));
            o.set("state", util::JsonValue::string("done"));
            o.set("cached", util::JsonValue::boolean(false));
            o.set("degraded", util::JsonValue::boolean(true));
            o.set("result", std::move(result));
            return o.dump();
        } catch (const std::exception &e) {
            warn("fleet: degraded fallback failed: %s", e.what());
        }
    }
    {
        core::MutexLock lock(mutex_);
        ++failures_;
    }
    util::JsonValue o = errorResponse(
        "submit", "fleet unavailable: " + why);
    o.set("id", util::JsonValue::integer(id));
    o.set("retry_after_ms",
          util::JsonValue::integer(cfg_.retryAfterMs));
    return o.dump();
}

std::string
FleetCore::handlePoll(const util::JsonValue &req)
{
    std::vector<std::string> errors;
    std::uint64_t id = req.getU64("id", 0, &errors);
    if (!errors.empty() || id == 0)
        return errorResponse("poll",
                             "id = <missing>: poll needs the id a "
                             "submit returned")
            .dump();
    core::MutexLock lock(mutex_);
    auto it = done_.find(id);
    if (it == done_.end())
        return errorResponse("poll",
                             "id = " + std::to_string(id) +
                                 ": unknown (expired or never "
                                 "submitted)")
            .dump();
    // Replay the retained response with the op corrected; the rest —
    // including the result bytes — is exactly what submit returned.
    util::JsonValue o;
    std::string parse_error;
    if (!util::tryParseJson(it->second, &o, &parse_error))
        panic("fleet: unparsable retained response: %s",
              parse_error.c_str());
    o.set("op", util::JsonValue::string("poll"));
    return o.dump();
}

std::string
FleetCore::handleStatsz()
{
    util::JsonValue o = util::JsonValue::object();
    o.set("ok", util::JsonValue::boolean(true));
    o.set("op", util::JsonValue::string("statsz"));
    o.set("role", util::JsonValue::string("fleet"));

    {
        core::MutexLock lock(mutex_);
        util::JsonValue fleet = util::JsonValue::object();
        fleet.set("workers", util::JsonValue::integer(pool_.size()));
        fleet.set("submitted", util::JsonValue::integer(submitted_));
        fleet.set("forwarded", util::JsonValue::integer(forwarded_));
        fleet.set("coalesced",
                  util::JsonValue::integer(flights_.coalesced()));
        fleet.set("promoted",
                  util::JsonValue::integer(flights_.promoted()));
        fleet.set("inflight",
                  util::JsonValue::integer(flights_.inflight()));
        fleet.set("requeues",
                  util::JsonValue::integer(pool_.requeues()));
        fleet.set("sweep_splits",
                  util::JsonValue::integer(sweep_splits_));
        fleet.set("parts_forwarded",
                  util::JsonValue::integer(parts_forwarded_));
        fleet.set("degraded", util::JsonValue::integer(degraded_));
        fleet.set("failures", util::JsonValue::integer(failures_));
        fleet.set("bad_requests",
                  util::JsonValue::integer(bad_requests_));
        fleet.set("retained",
                  util::JsonValue::integer(done_.size()));
        o.set("fleet", std::move(fleet));
    }

    // Per-worker: liveness from the router plus each live worker's
    // own statsz, fetched on this connection's thread.
    util::JsonValue statsz_req = util::JsonValue::object();
    statsz_req.set("op", util::JsonValue::string("statsz"));
    std::vector<WorkerSnapshot> snaps = pool_.snapshot();
    util::JsonValue workers = util::JsonValue::array();
    util::JsonValue totals = util::JsonValue::object();
    std::vector<std::uint64_t> sums(
        sizeof(kSummedCounters) / sizeof(kSummedCounters[0]), 0);
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        util::JsonValue w = util::JsonValue::object();
        w.set("endpoint",
              util::JsonValue::string(snaps[i].endpoint));
        w.set("alive", util::JsonValue::boolean(snaps[i].alive));
        w.set("forwards",
              util::JsonValue::integer(snaps[i].forwards));
        w.set("failures",
              util::JsonValue::integer(snaps[i].failures));
        w.set("sheds", util::JsonValue::integer(snaps[i].sheds));
        if (!snaps[i].lastError.empty())
            w.set("last_error",
                  util::JsonValue::string(snaps[i].lastError));
        util::JsonValue wstats;
        std::string error;
        if (pool_.tryCallWorker(i, statsz_req, &wstats, &error)) {
            std::vector<std::string> ignored;
            for (std::size_t c = 0; c < sums.size(); ++c)
                sums[c] += wstats.getU64(kSummedCounters[c], 0,
                                         &ignored);
            w.set("statsz", std::move(wstats));
        } else {
            w.set("statsz", util::JsonValue::null());
        }
        workers.append(std::move(w));
    }
    for (std::size_t c = 0; c < sums.size(); ++c)
        totals.set(kSummedCounters[c],
                   util::JsonValue::integer(sums[c]));
    o.set("workers", std::move(workers));
    o.set("totals", std::move(totals));
    return o.dump();
}

void
FleetCore::retain(std::uint64_t id, const std::string &response)
{
    core::MutexLock lock(mutex_);
    done_.emplace(id, response);
    done_order_.push_back(id);
    while (done_order_.size() > cfg_.retainDone) {
        done_.erase(done_order_.front());
        done_order_.pop_front();
    }
}

} // namespace ringsim::fleet
