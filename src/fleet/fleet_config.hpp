/**
 * @file
 * Fleet-coordinator configuration.
 *
 * One FleetConfig describes a ringsim_fleetd instance: the worker
 * daemons it routes to, how aggressively sweep jobs fan out across
 * them, how dead workers are re-probed, and whether the coordinator
 * may degrade to the analytic-model tier when the whole fleet is
 * unavailable or overloaded.
 */

#ifndef RINGSIM_FLEET_FLEET_CONFIG_HPP
#define RINGSIM_FLEET_FLEET_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace ringsim::fleet {

/** Tunables of one fleet-coordinator instance. */
struct FleetConfig
{
    /** Worker daemon endpoints, in shard order. At least one. */
    std::vector<std::string> workers;

    /**
     * Concurrent subjob forwards of one split sweep; 0 = auto
     * (2 x worker count, capped by the part count). Each forward
     * blocks on one worker, so the useful ceiling is the fleet's
     * total executor count.
     */
    unsigned fanout = 0;

    /**
     * Minimum interval between liveness re-probes of a worker marked
     * dead, in ms. Probing is lazy — the next request that would
     * route to (or past) a dead worker pings it if this much time
     * has elapsed — so recovery needs no dedicated thread.
     */
    std::uint64_t probeMs = 500;

    /**
     * Transport attempts per worker before failing over to the next
     * shard (ServiceClient::tryCallResilient semantics). Small by
     * design: a dead worker should cost milliseconds, not a retry
     * storm, because the failover path recomputes correctly anyway.
     */
    unsigned attemptsPerWorker = 2;

    /** Advisory backoff hint when every worker is unavailable. */
    std::uint64_t retryAfterMs = 250;

    /** Completed responses retained for polling (oldest dropped). */
    std::size_t retainDone = 1024;

    /**
     * Split sweep jobs into per-block subjobs fanned out across the
     * fleet (reassembled byte-identically). Off forwards a sweep to
     * one worker whole.
     */
    bool splitSweeps = true;

    /**
     * When no worker can answer (all dead, or all shedding), answer
     * degradable jobs from the coordinator's own analytic-model tier
     * (tagged degraded:true) instead of failing. Mirrors the worker
     * flag of the same name; off by default for the same reason.
     */
    bool degradeToModel = false;

    /** Sweep fan-out of *local* degraded solves; 0 = auto. */
    unsigned jobsPerSweep = 0;

    /** Accept the test-only sleep job kind (forwarded to workers). */
    bool enableTestJobs = false;

    /**
     * Salt joined into the fleet-side identity key used for sharding
     * and single-flight coalescing. Independent of worker cache
     * salts — it routes, it does not address storage.
     */
    std::string salt;

    /**
     * All misconfigurations, as human-readable "field = value"
     * messages (empty when the config is sound).
     */
    [[nodiscard]] std::vector<std::string> check() const;

    /** fatal() with the first check() error, if any. */
    void validate() const;
};

} // namespace ringsim::fleet

#endif // RINGSIM_FLEET_FLEET_CONFIG_HPP
