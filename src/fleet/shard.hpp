/**
 * @file
 * Deterministic job-to-worker sharding.
 *
 * The shard of a job is a pure function of its 128-bit canonical-spec
 * cache key (service/cache_key): equal specs always route to the same
 * worker, so each worker's memory cache warms on exactly its shard of
 * the spec space and repeat submissions hit without a peer hop. The
 * failover order (shard, shard+1, ... mod n) is equally
 * deterministic, so every coordinator — and every multi-endpoint
 * ringsim_submit client — agrees on which worker serves a key when
 * its primary is dead.
 */

#ifndef RINGSIM_FLEET_SHARD_HPP
#define RINGSIM_FLEET_SHARD_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace ringsim::fleet {

/**
 * The worker index in [0, n) that owns @p key (a cache key or any
 * identity string). Pure; @p n must be nonzero.
 */
std::size_t shardIndex(const std::string &key, std::size_t n);

/**
 * The deterministic failover order for @p key over @p n workers:
 * its shard first, then each successor mod n, every index exactly
 * once.
 */
std::vector<std::size_t> failoverOrder(const std::string &key,
                                       std::size_t n);

} // namespace ringsim::fleet

#endif // RINGSIM_FLEET_SHARD_HPP
