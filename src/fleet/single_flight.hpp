/**
 * @file
 * Coordinator-level single-flight coalescing.
 *
 * When N clients submit the same canonical spec concurrently, exactly
 * one forward (the *leader*) should reach the worker fleet; the other
 * N-1 (*waiters*) block and receive the leader's bytes. Workers
 * already coalesce duplicates that reach the same daemon
 * (service/server.cpp); this class closes the remaining window where
 * duplicates arrive at the coordinator faster than any worker can
 * publish a cache entry.
 *
 * Leader death is the hard case: a leader whose forward throws must
 * not orphan its waiters, and its waiters must not all stampede the
 * fleet at once. abort() wakes every waiter and exactly one of them
 * is promoted to the new leader (its join() call returns Leader); the
 * rest keep waiting on the successor flight. The verified transition
 * model in src/verify/service_model.* checks precisely this protocol:
 * no double execution, no orphaned waiter, for every interleaving.
 */

#ifndef RINGSIM_FLEET_SINGLE_FLIGHT_HPP
#define RINGSIM_FLEET_SINGLE_FLIGHT_HPP

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/thread_annotations.hpp"

namespace ringsim::fleet {

/**
 * Keyed rendezvous: the first join() per key leads, later join()s
 * wait for the leader's published value. Thread safe.
 */
class SingleFlight
{
  public:
    /** What a join() caller must do next. */
    enum class Role
    {
        /** Execute the work, then publish() or abort(). Always. */
        Leader,
        /** *value holds the leader's bytes; nothing left to do. */
        Waiter,
    };

    /**
     * Join the flight for @p key. Returns Leader when the caller owns
     * execution (including promotion after a prior leader aborted);
     * returns Waiter with the published bytes in @p *value otherwise.
     * May block; a Leader return never blocks on other flights.
     */
    Role join(const std::string &key, std::string *value)
        EXCLUDES(mutex_);

    /**
     * Publish the leader's result bytes to every waiter of @p key and
     * retire the flight. Leader-only.
     */
    void publish(const std::string &key, std::string value)
        EXCLUDES(mutex_);

    /**
     * Retire the flight for @p key without a value; one blocked
     * waiter (if any) is promoted to leader. Leader-only — call on
     * every failure path so waiters are never orphaned.
     */
    void abort(const std::string &key) EXCLUDES(mutex_);

    /** Joins answered with a leader's bytes (no execution of theirs). */
    std::uint64_t coalesced() const EXCLUDES(mutex_);

    /** Waiters promoted to leader after an abort. */
    std::uint64_t promoted() const EXCLUDES(mutex_);

    /** Flights currently executing. */
    std::uint64_t inflight() const EXCLUDES(mutex_);

  private:
    /**
     * One in-flight execution. Waiters hold the shared_ptr across
     * their wait, so publish/abort can drop the map entry immediately
     * — late joiners after publish start a fresh flight (the worker
     * cache makes the repeat cheap) instead of reading stale bytes
     * forever.
     */
    struct Flight
    {
        bool done = false;    ///< publish() ran; value is valid.
        bool aborted = false; ///< abort() ran; re-join for promotion.
        std::string value;
    };

    mutable core::Mutex mutex_;
    std::condition_variable settled_cv_;
    /// Keyed lookup only (never iterated): key -> live flight.
    std::unordered_map<std::string, std::shared_ptr<Flight>>
        flights_ GUARDED_BY(mutex_);
    std::uint64_t coalesced_ GUARDED_BY(mutex_) = 0;
    std::uint64_t promoted_ GUARDED_BY(mutex_) = 0;
};

} // namespace ringsim::fleet

#endif // RINGSIM_FLEET_SINGLE_FLIGHT_HPP
