#include "single_flight.hpp"

namespace ringsim::fleet {

SingleFlight::Role
SingleFlight::join(const std::string &key, std::string *value)
{
    core::UniqueLock lock(mutex_);
    bool saw_abort = false;
    for (;;) {
        auto it = flights_.find(key);
        if (it == flights_.end()) {
            flights_.emplace(key, std::make_shared<Flight>());
            if (saw_abort)
                ++promoted_;
            return Role::Leader;
        }
        // Hold the flight by shared_ptr: publish/abort erase the map
        // entry before we wake, but the object outlives the erase.
        std::shared_ptr<Flight> flight = it->second;
        while (!flight->done && !flight->aborted)
            settled_cv_.wait(lock.native());
        if (flight->done) {
            *value = flight->value;
            ++coalesced_;
            return Role::Waiter;
        }
        // Aborted: the flight is gone from the map. The first waiter
        // to loop around finds no entry becomes the new leader; the
        // rest re-attach to the successor flight. No one is orphaned,
        // and at most one execution runs per key at a time.
        saw_abort = true;
    }
}

void
SingleFlight::publish(const std::string &key, std::string value)
{
    core::MutexLock lock(mutex_);
    auto it = flights_.find(key);
    if (it == flights_.end())
        return; // publish after abort: waiters already re-flighted.
    it->second->done = true;
    it->second->value = std::move(value);
    flights_.erase(it);
    settled_cv_.notify_all();
}

void
SingleFlight::abort(const std::string &key)
{
    core::MutexLock lock(mutex_);
    auto it = flights_.find(key);
    if (it == flights_.end())
        return;
    it->second->aborted = true;
    flights_.erase(it);
    settled_cv_.notify_all();
}

std::uint64_t
SingleFlight::coalesced() const
{
    core::MutexLock lock(mutex_);
    return coalesced_;
}

std::uint64_t
SingleFlight::promoted() const
{
    core::MutexLock lock(mutex_);
    return promoted_;
}

std::uint64_t
SingleFlight::inflight() const
{
    core::MutexLock lock(mutex_);
    return flights_.size();
}

} // namespace ringsim::fleet
