/**
 * @file
 * FleetCore: the coordinator behind ringsim_fleetd.
 *
 * Speaks the same NDJSON protocol as a worker daemon (submit / poll /
 * ping / statsz / shutdown), so every existing client — benches,
 * ringsim_submit, the smoke scripts — can point at a fleet without
 * changes. Behind the socket it owns no simulator: it routes.
 *
 *  - Every job is identified by the 128-bit cache key of its
 *    canonical spec (the same identity workers memoize under), and
 *    that key picks the job's worker shard deterministically
 *    (fleet/shard) — equal specs land on the same warm cache.
 *  - Duplicate in-flight specs coalesce in a SingleFlight: one
 *    forward executes, the rest wait for its bytes. Combined with the
 *    workers' own coalescing, a duplicate executes at most once
 *    fleet-wide.
 *  - Sweep jobs split into per-block subjobs fanned out across the
 *    fleet through an ExperimentRunner pool and reassembled
 *    byte-identically to a direct renderFigure() run (the PR 1 output
 *    contract is what makes this legal).
 *  - A worker that dies mid-job is detected by its broken socket; the
 *    job requeues onto the next shard in the deterministic failover
 *    order. When no worker can answer at all, degradable jobs fall
 *    back to the coordinator's own analytic-model tier (--degrade).
 *  - statsz aggregates: fleet-level counters, a per-worker section
 *    (liveness + each worker's own statsz), and summed totals.
 *
 * Submits are answered synchronously on the connection's thread —
 * the fleet's concurrency lives in the worker daemons, so the
 * coordinator has no queue to manage, only sockets to wait on. An
 * explicit "wait": false still gets its final answer in the submit
 * response; poll remains available for re-reading it.
 */

#ifndef RINGSIM_FLEET_COORDINATOR_HPP
#define RINGSIM_FLEET_COORDINATOR_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "core/thread_annotations.hpp"
#include "fleet/fleet_config.hpp"
#include "fleet/router.hpp"
#include "fleet/single_flight.hpp"
#include "service/job.hpp"
#include "service/line_service.hpp"
#include "util/json.hpp"

namespace ringsim::fleet {

class FleetCore : public service::LineService
{
  public:
    explicit FleetCore(const FleetConfig &cfg);

    std::string handleLine(const std::string &client,
                           const std::string &line) override
        EXCLUDES(mutex_);
    bool shutdownRequested() const override EXCLUDES(mutex_);
    void clientGone(const std::string &client) override;

    /** The routing layer (tests, statsz). */
    WorkerPool &pool() { return pool_; }

  private:
    std::string handleSubmit(const std::string &client,
                             const util::JsonValue &req)
        EXCLUDES(mutex_);
    std::string handlePoll(const util::JsonValue &req)
        EXCLUDES(mutex_);
    std::string handleStatsz() EXCLUDES(mutex_);

    /**
     * Leader path: actually answer @p spec (forward, split or
     * degrade). Returns a complete response line; never throws.
     */
    std::string leadSubmit(const util::JsonValue &job,
                           const service::JobSpec &spec,
                           const std::string &identity,
                           std::uint64_t id) EXCLUDES(mutex_);

    /** Forward @p job whole to @p identity's shard (with failover). */
    std::string forwardWhole(const util::JsonValue &job,
                             const service::JobSpec &spec,
                             const std::string &identity,
                             std::uint64_t id) EXCLUDES(mutex_);

    /**
     * Split a whole-figure sweep into per-block subjobs, fan them out
     * across the fleet, reassemble byte-identically.
     */
    std::string splitSweep(const util::JsonValue &job,
                           const service::JobSpec &spec,
                           std::uint64_t id) EXCLUDES(mutex_);

    /**
     * Last resort when no worker answered: local model-tier degrade
     * when allowed, else an error with a retry_after_ms hint.
     */
    std::string degradeOrFail(const service::JobSpec &spec,
                              std::uint64_t id,
                              const std::string &why)
        EXCLUDES(mutex_);

    void retain(std::uint64_t id, const std::string &response)
        EXCLUDES(mutex_);

    FleetConfig cfg_;
    WorkerPool pool_;
    SingleFlight flights_;

    mutable core::Mutex mutex_;
    bool shutdown_ GUARDED_BY(mutex_) = false;
    std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;

    std::uint64_t submitted_ GUARDED_BY(mutex_) = 0;
    std::uint64_t forwarded_ GUARDED_BY(mutex_) = 0;
    std::uint64_t sweep_splits_ GUARDED_BY(mutex_) = 0;
    std::uint64_t parts_forwarded_ GUARDED_BY(mutex_) = 0;
    std::uint64_t degraded_ GUARDED_BY(mutex_) = 0;
    std::uint64_t failures_ GUARDED_BY(mutex_) = 0;
    std::uint64_t bad_requests_ GUARDED_BY(mutex_) = 0;

    /// Finished responses for poll. Keyed lookup only (never
    /// iterated); done_order_ drives retention trimming.
    std::unordered_map<std::uint64_t, std::string> done_
        GUARDED_BY(mutex_);
    std::deque<std::uint64_t> done_order_ GUARDED_BY(mutex_);
};

} // namespace ringsim::fleet

#endif // RINGSIM_FLEET_COORDINATOR_HPP
