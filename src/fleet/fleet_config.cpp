#include "fleet_config.hpp"

#include "service/socket_server.hpp"
#include "util/logging.hpp"

namespace ringsim::fleet {

std::vector<std::string>
FleetConfig::check() const
{
    std::vector<std::string> errors;
    if (workers.empty())
        errors.push_back(
            "workers = []: a fleet needs at least one worker "
            "endpoint");
    for (const std::string &worker : workers) {
        int tcp_port = -1;
        std::string unix_path, endpoint_error;
        if (!service::tryParseEndpoint(worker, &tcp_port, &unix_path,
                                       &endpoint_error))
            errors.push_back("workers: " + endpoint_error);
    }
    for (std::size_t i = 0; i < workers.size(); ++i) {
        for (std::size_t j = i + 1; j < workers.size(); ++j) {
            if (workers[i] == workers[j])
                errors.push_back(
                    "workers: endpoint '" + workers[i] +
                    "' listed twice (shards would double up)");
        }
    }
    if (attemptsPerWorker == 0)
        errors.push_back("attemptsPerWorker = 0: every forward "
                         "would fail without trying");
    if (retainDone == 0)
        errors.push_back(
            "retainDone = 0: async submissions could never be polled");
    return errors;
}

void
FleetConfig::validate() const
{
    std::vector<std::string> errors = check();
    if (!errors.empty())
        fatal("fleet config: %s", errors.front().c_str());
}

} // namespace ringsim::fleet
